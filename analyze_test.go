package systemr_test

import (
	"regexp"
	"strings"
	"testing"

	"systemr"
	"systemr/internal/exec"
	"systemr/internal/testutil"
)

// scrubTimes replaces the wall-time annotations — the only nondeterministic
// part of EXPLAIN ANALYZE output — so goldens can pin everything else.
var timeRe = regexp.MustCompile(`time=[^}]*`)

func scrubTimes(s string) string { return timeRe.ReplaceAllString(s, "time=X") }

// TestExplainAnalyzeGolden pins EXPLAIN ANALYZE on the paper's EMP/DEPT/JOB
// three-table join: every operator line carries the optimizer's estimated
// rows and cost next to the measured actual rows, loop count, and attributed
// page fetches. The buffer pool is flushed first so the fetch counts are the
// deterministic cold-cache values.
func TestExplainAnalyzeGolden(t *testing.T) {
	db := newEmpDeptJobDB(t)
	db.Pool().Flush()
	got, err := db.ExplainAnalyze("SELECT E.NAME, D.DNAME, J.TITLE FROM EMP E, DEPT D, JOB J " +
		"WHERE E.DNO = D.DNO AND E.JOB = J.JOB AND J.TITLE = 'CLERK'")
	if err != nil {
		t.Fatal(err)
	}
	// With histograms the estimates land exactly on the actuals: TITLE has 4
	// distinct values, so TITLE = 'CLERK' estimates 1/4 (one JOB row, 75 EMP
	// matches through the joins) where the Table 1 default of 1/10 used to
	// yield est 30 vs act 75 on every line above the scans. With no ORDER BY
	// there is no interesting order to exploit, so the hash join beats the
	// sort-both-sides merge plan — and wins on actuals too (8 fetches / 106
	// RSI calls). The hash line reports the build side its table was
	// pre-sized from.
	want := strings.Join([]string{
		"QUERY BLOCK (main)",
		"  PROJECT E.NAME, D.DNAME, J.TITLE  {est rows=75.0 cost=10.7 | act rows=75 fetches=0 time=X}",
		"    HASHJOIN build inner[1.0] probe outer[0.1]  {est rows=75.0 cost=10.7 | act rows=75 fetches=0 time=X} [build: est rows=30.0 act rows=30 mem=1290B]",
		"      NLJOIN bind: $3=outer[2.0]  {est rows=75.0 cost=5.3 | act rows=75 fetches=0 time=X}",
		"        SEGSCAN J (JOB) sarg: (c1 = 'CLERK')  {est rows=1.0 cost=1.0 | act rows=1 fetches=1 time=X}",
		"        INDEXSCAN E via EMP_JOB(JOB) key:[$3 .. $3] sarg: (c2 = $3)  {est rows=75.0 cost=4.2 | act rows=75 fetches=6 time=X}",
		"      SEGSCAN D (DEPT)  {est rows=30.0 cost=2.0 | act rows=30 fetches=1 time=X}",
		"statement: fetches=8 writes=0 rsi=106 cost=11.5 (W=0.033)",
		"",
	}, "\n")
	if scrubTimes(got) != want {
		t.Fatalf("EXPLAIN ANALYZE golden drifted.\n--- got ---\n%s\n--- want ---\n%s", scrubTimes(got), want)
	}
}

// TestExplainAnalyzeRowConsistency executes a multi-join query through the
// instrumented operator tree and checks the actuals are internally
// consistent: the root's row count is the statement's row count, page
// fetches attributed across the tree sum to the statement's total, and every
// operator's bookkeeping is self-consistent.
func TestExplainAnalyzeRowConsistency(t *testing.T) {
	testutil.AssertNoLeaks(t)
	db := newEmpDeptJobDB(t)
	q, err := db.PlanSelect("SELECT E.NAME, D.DNAME, J.TITLE FROM EMP E, DEPT D, JOB J " +
		"WHERE E.DNO = D.DNO AND E.JOB = J.JOB ORDER BY D.DNAME")
	if err != nil {
		t.Fatal(err)
	}
	db.Pool().Flush()
	rows, stats, analysis, err := exec.RunQueryAnalyze(db.Runtime(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if analysis == nil {
		t.Fatal("no analysis returned")
	}
	if len(rows) != stats.Rows {
		t.Fatalf("stats.Rows=%d, returned %d rows", stats.Rows, len(rows))
	}
	root := analysis.Root
	if root.Stats().Rows != int64(stats.Rows) {
		t.Fatalf("root operator rows=%d, ExecStats rows=%d", root.Stats().Rows, stats.Rows)
	}
	// The statement's fetch total is exactly the root's inclusive delta (no
	// subqueries here), which in turn is the sum of self-attributed fetches.
	if root.Stats().Fetches != stats.IO.PageFetches {
		t.Fatalf("root inclusive fetches=%d, statement fetches=%d", root.Stats().Fetches, stats.IO.PageFetches)
	}
	var selfSum int64
	var walk func(o exec.Operator)
	walk = func(o exec.Operator) {
		s := o.Stats()
		if s.Rows > s.Nexts {
			t.Fatalf("%s: rows=%d exceeds next calls=%d", o.Plan().Label(), s.Rows, s.Nexts)
		}
		if s.Opens == 0 && s.Nexts > 0 {
			t.Fatalf("%s: produced rows without being opened", o.Plan().Label())
		}
		self := s.Fetches
		for _, k := range o.Children() {
			if k.Stats().Fetches > s.Fetches {
				t.Fatalf("%s: child inclusive fetches exceed parent's", o.Plan().Label())
			}
			self -= k.Stats().Fetches
		}
		if self < 0 {
			t.Fatalf("%s: negative self fetches %d", o.Plan().Label(), self)
		}
		selfSum += self
		for _, k := range o.Children() {
			walk(k)
		}
	}
	walk(root)
	if selfSum != stats.IO.PageFetches {
		t.Fatalf("self-attributed fetches sum to %d, statement total %d", selfSum, stats.IO.PageFetches)
	}
}

// TestExplainAnalyzeEstimateVsActual checks the point of the feature: a
// selectivity the Table 1 defaults get wrong shows up as an estimate-vs-
// actual gap on the scan's own line.
func TestExplainAnalyzeEstimateVsActual(t *testing.T) {
	// Histograms are disabled so the paper's uniform model is what gets
	// measured: with them on, SAL > 10 estimates exactly 300 (see the golden
	// test) and there is no gap to display.
	db := newEmpDeptJobDBCfg(t, systemr.Config{DisableHistograms: true})
	// SAL > 10 matches every employee, but the paper's open-range default
	// estimates 1/3 — the scan line must show the divergence.
	got, err := db.ExplainAnalyze("SELECT NAME FROM EMP WHERE SAL > 10.0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "est rows=100.0") || !strings.Contains(got, "act rows=300") {
		t.Fatalf("expected est rows=100.0 vs act rows=300 divergence:\n%s", got)
	}
	if db.LastStats().Rows != 300 {
		t.Fatalf("EXPLAIN ANALYZE did not publish execution stats: %+v", db.LastStats())
	}
}

// TestExplainAnalyzeSubqueryCounts pins how nested blocks render: estimates
// only, with the parent reporting how often the block was evaluated under
// the Section 6 same-value cache and how many page fetches the block spent
// across those evaluations (I/O that is excluded from the outer operators'
// attribution).
func TestExplainAnalyzeSubqueryCounts(t *testing.T) {
	db := newEmpDeptJobDB(t)
	db.Pool().Flush()
	got, err := db.ExplainAnalyze("SELECT NAME FROM EMP WHERE SAL > " +
		"(SELECT AVG(SAL) FROM EMP)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "QUERY BLOCK (subquery #1)  [evaluated 1 time, fetches=4; estimates only]") {
		t.Fatalf("subquery block header missing eval count and fetches:\n%s", got)
	}
	// The subquery's fetches belong to its block: the outer scan re-reads the
	// same (now resident) pages, so its own line attributes zero fetches and
	// the outer tree does not double-count the subquery's I/O.
	if !strings.Contains(got, "SEGSCAN EMP sarg: (c3 > (subquery#1))  {est rows=100.0 cost=7.3 | act rows=150 fetches=0 ") {
		t.Fatalf("outer scan double-counted subquery fetches:\n%s", got)
	}
}

// Package systemr is an embeddable relational database engine that
// reproduces the query-processing architecture of
//
//	P. Griffiths Selinger, M. M. Astrahan, D. D. Chamberlin, R. A. Lorie,
//	T. G. Price. "Access Path Selection in a Relational Database Management
//	System." SIGMOD 1979.
//
// SQL statements pass through the paper's four phases — parsing,
// optimization (catalog lookup, Table 1 selectivities, Table 2 access path
// costs, dynamic-programming join enumeration with interesting orders),
// plan construction, and execution against a Research-Storage-System-style
// storage engine with segment scans, B-tree index scans, and search
// arguments.
//
// Quick start:
//
//	db := systemr.Open(systemr.Config{})
//	db.MustExec("CREATE TABLE EMP (NAME VARCHAR, DNO INTEGER, JOB INTEGER, SAL FLOAT)")
//	db.MustExec("CREATE INDEX EMP_DNO ON EMP (DNO)")
//	db.MustExec("INSERT INTO EMP VALUES ('SMITH', 50, 5, 10000.0)")
//	db.MustExec("UPDATE STATISTICS")
//	res, err := db.Query("SELECT NAME FROM EMP WHERE DNO = 50")
//	text, err := db.Explain("SELECT NAME FROM EMP WHERE DNO = 50")
package systemr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"systemr/internal/catalog"
	"systemr/internal/compile"
	"systemr/internal/core"
	"systemr/internal/exec"
	"systemr/internal/governor"
	"systemr/internal/lock"
	"systemr/internal/plan"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/storage"
	"systemr/internal/txn"
	"systemr/internal/value"
)

// Config tunes a database instance.
type Config struct {
	// BufferPages is the buffer-pool size in 4K pages (default 64). It is
	// both the execution-time cache and the "System R buffer" the
	// optimizer's Table 2 alternatives test against.
	BufferPages int
	// W is the optimizer's CPU weighting factor (default 0.033):
	// COST = PAGE FETCHES + W * RSI CALLS.
	W float64
	// BTreeOrder overrides index node fan-out (testing knob; 0 = default).
	BTreeOrder int
	// Optimizer ablations (see core.Config).
	DisableJoinHeuristic     bool
	DisableInterestingOrders bool
	DisableSargs             bool
	NestedLoopsOnly          bool
	MergeOnly                bool
	// DisableHashJoin removes the hash-join method from enumeration,
	// restoring the paper's original two-method search space.
	DisableHashJoin bool
	// DisableHistograms ignores the per-column equi-depth histograms UPDATE
	// STATISTICS builds, reverting every selectivity estimate to Table 1
	// defaults and index ICARDs — the paper's original estimation model.
	DisableHistograms bool
	// Naive bypasses access path selection entirely: segment scans,
	// FROM-order nested loops, no search arguments — the no-optimizer
	// baseline of the evaluation harness.
	Naive bool

	// ExecBatchSize is the number of rows the executor moves per operator
	// batch (0 = default 256). It only amortizes per-row instrumentation —
	// it never changes plan choice, so it does not participate in the plan
	// cache key. Negative values are treated as the default.
	ExecBatchSize int
	// DegreeOfParallelism > 1 partitions eligible segment scans across that
	// many worker goroutines via a Parallel exchange operator planted at
	// compile time (so it salts the plan-cache key). 0 or 1 means serial.
	DegreeOfParallelism int
	// ParallelMinPages is the smallest relation (in segment pages) worth a
	// Parallel exchange: scans of smaller relations stay serial even when
	// DegreeOfParallelism > 1, because worker startup and row hand-off cost
	// more than they save on a handful of pages. 0 means the default (8);
	// negative means no threshold (every eligible scan parallelizes).
	ParallelMinPages int

	// DisableSnapshotReads turns MVCC snapshot reads off: SELECTs take
	// shared table locks again (pure strict 2PL, the pre-MVCC engine) and
	// block behind writers. Reads are still version-aware — they see the
	// latest committed versions — so the switch only changes concurrency,
	// not results. Benchmark baseline and escape hatch.
	DisableSnapshotReads bool
	// VacuumEvery triggers automatic version garbage collection after that
	// many committed writing transactions (0 = default 512; negative
	// disables). Vacuum also runs on demand via DB.Vacuum.
	VacuumEvery int

	// PlanCacheSize bounds the shared compiled-plan cache in entries: a
	// repeated SELECT (same normalized text, same host-variable types,
	// unchanged catalog version) executes its cached plan and skips
	// parse/sem/optimize entirely. 0 means the default (256); negative
	// disables caching, recompiling every statement as the seed engine did.
	PlanCacheSize int

	// RecompileMissRatio closes the estimation feedback loop: after every
	// execution of a cached plan, the engine compares the optimizer's
	// estimated result rows with the measured actual rows, and once the
	// symmetric miss factor max(est,act)/min(est,act) reaches this ratio the
	// plan is marked; the next execution refreshes statistics on the tables
	// the plan reads (non-blocking — skipped under catalog contention) and
	// recompiles against them. 0 means the default (10); negative disables
	// feedback entirely.
	RecompileMissRatio float64

	// Execution governor knobs (0 = unlimited). Violations surface as a
	// *StatementError wrapping ErrBudgetExceeded, with the partial ExecStats
	// attached.

	// MaxRowsScanned bounds the tuples a statement may examine across all of
	// its scans (not the rows it returns).
	MaxRowsScanned int64
	// MaxPageFetches bounds buffer-pool misses charged to a statement.
	MaxPageFetches int64
	// StatementTimeout bounds each statement's wall-clock execution,
	// including lock waits.
	StatementTimeout time.Duration
	// LockTimeout bounds each lock-acquisition wait (0 = wait forever). The
	// wait-for-graph deadlock detector resolves true deadlocks immediately;
	// the timeout is the fallback for waits it cannot classify, such as a
	// lock held by a stalled transaction. A tripped timeout surfaces as a
	// *StatementError wrapping ErrLockTimeout.
	LockTimeout time.Duration
}

// DB is an embedded database instance. Methods are safe for concurrent use:
// each statement acquires table-level shared/exclusive locks under two-phase
// locking (the RSS's locking duty at coarse granularity — see DESIGN.md), so
// concurrent readers proceed in parallel while writers and DDL serialize per
// table. DB-level Exec autocommits: each statement runs as its own
// transaction, atomic under undo logging, with locks released at statement
// end. Begin and Conn open multi-statement transactions that retain locks to
// commit/rollback (strict 2PL) with wait-for-graph deadlock detection.
// Measured statistics (LastStats) describe the whole engine and are only
// meaningful for single-client measurement runs.
type DB struct {
	mu       sync.Mutex // guards last
	cfg      Config
	disk     *storage.Disk
	stats    *storage.IOStats
	pool     *storage.BufferPool
	cat      *catalog.Catalog
	locks    *lock.Manager
	compiler *compile.Pipeline
	plans    *compile.Cache // nil when caching is disabled
	metrics  *dbMetrics
	last     ExecStats

	mutFault   atomic.Value // txn.FaultFunc consulted by every new transaction
	activeTxns atomic.Int64 // explicit transactions currently Active

	txns *txn.Registry // XID allocation, snapshots, vacuum horizon

	commits   atomic.Int64 // committed writing txns since the last auto-vacuum
	vacuuming atomic.Bool  // serializes vacuum passes (auto and manual)
}

// DefaultPlanCacheSize is the plan cache's entry bound when
// Config.PlanCacheSize is zero.
const DefaultPlanCacheSize = 256

// DefaultParallelMinPages is the parallel-scan page threshold when
// Config.ParallelMinPages is zero: a few multiples of the executor's batch
// size in pages, below which exchange overhead dominates.
const DefaultParallelMinPages = 8

// DefaultVacuumEvery is the auto-vacuum commit interval when
// Config.VacuumEvery is zero.
const DefaultVacuumEvery = 512

// DefaultRecompileMissRatio is the misestimation factor that marks a cached
// plan for statistics refresh + recompilation when Config.RecompileMissRatio
// is zero: an order of magnitude off in either direction.
const DefaultRecompileMissRatio = 10

// Result is the outcome of a statement.
type Result struct {
	// Columns are the output column names (empty for non-queries).
	Columns []string
	// Rows hold native Go values: int64, float64, string, or nil for NULL.
	Rows [][]any
	// Affected counts rows inserted, deleted, or updated.
	Affected int
	// Plan carries EXPLAIN output.
	Plan string
}

// ExecStats reports the measured cost of the last statement in the paper's
// units.
type ExecStats struct {
	PageFetches   int64
	PagesWritten  int64
	LogicalReads  int64
	RSICalls      int64
	SubqueryEvals int
	Rows          int
}

// Cost evaluates PAGE FETCHES (including temporary-list writes) + W * RSI.
func (s ExecStats) Cost(w float64) float64 {
	return float64(s.PageFetches+s.PagesWritten) + w*float64(s.RSICalls)
}

// Open creates an empty database.
func Open(cfg Config) *DB {
	if cfg.BufferPages <= 0 {
		cfg.BufferPages = 64
	}
	if cfg.W == 0 {
		cfg.W = core.DefaultW
	}
	if cfg.ExecBatchSize <= 0 {
		cfg.ExecBatchSize = exec.DefaultBatchSize
	}
	if cfg.DegreeOfParallelism <= 0 {
		cfg.DegreeOfParallelism = 1
	}
	disk := storage.NewDisk()
	stats := &storage.IOStats{}
	cat := catalog.New(disk)
	cat.BTreeOrder = cfg.BTreeOrder
	if cfg.ParallelMinPages == 0 {
		cfg.ParallelMinPages = DefaultParallelMinPages
	}
	if cfg.VacuumEvery == 0 {
		cfg.VacuumEvery = DefaultVacuumEvery
	}
	if cfg.RecompileMissRatio == 0 {
		cfg.RecompileMissRatio = DefaultRecompileMissRatio
	}
	db := &DB{
		cfg:   cfg,
		disk:  disk,
		stats: stats,
		pool:  storage.NewBufferPool(disk, cfg.BufferPages, stats),
		cat:   cat,
		locks: lock.NewManager(),
		txns:  txn.NewRegistry(),
	}
	if cfg.LockTimeout > 0 {
		db.locks.SetLockTimeout(cfg.LockTimeout)
	}
	db.compiler = compile.NewPipeline(cat, db.OptimizerConfig(), cfg.Naive, !cfg.DisableSnapshotReads)
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = DefaultPlanCacheSize
		}
		db.plans = compile.NewCache(size)
	}
	db.metrics = newDBMetrics(db)
	return db
}

// Exec parses and executes one SQL statement under statement-scope table
// locks.
func (db *DB) Exec(text string) (*Result, error) {
	return db.ExecContext(context.Background(), text)
}

// ExecContext is Exec observing ctx: cancellation or an expired deadline
// aborts the statement — during lock acquisition, compilation, or mid-scan,
// within a bounded number of RSI calls — releasing its locks and scans and
// returning a *StatementError wrapping ErrCanceled or ErrBudgetExceeded.
// The configured StatementTimeout, if any, is layered onto ctx.
//
// The statement autocommits: it runs as its own transaction, its mutations
// undo-logged, so an abort (governor, cancellation, injected fault, or
// contained panic) rolls the database back to the exact pre-statement
// state before the error returns.
//
// A SELECT whose normalized text is in the plan cache takes the compiled
// fast path: the cached entry supplies the lock set, and parse, semantic
// analysis, and optimization are all skipped (the System R premise —
// compile once, execute many).
func (db *DB) ExecContext(ctx context.Context, text string) (*Result, error) {
	return db.execText(ctx, nil, text)
}

// execText runs one statement, either autocommitted (cur == nil: an
// ephemeral transaction scoped to the statement) or inside the explicit
// transaction cur, whose locks and undo log accumulate across statements.
// Statement atomicity is uniform: the undo-log position is marked before
// dispatch and every mutation logged after the mark is reverted — while the
// statement's exclusive locks are still held — if the statement fails.
func (db *DB) execText(ctx context.Context, cur *txn.Txn, text string) (res *Result, err error) {
	start := time.Now()
	defer func() { db.observeStatement(start, err) }()
	if db.cfg.StatementTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, db.cfg.StatementTimeout)
		defer cancel()
	}
	explicit := cur != nil
	if explicit {
		switch cur.State() {
		case txn.Aborted:
			return nil, fmt.Errorf("%w; ROLLBACK to start over", ErrTxnAborted)
		case txn.Finished:
			return nil, errors.New("systemr: transaction has already committed or rolled back")
		}
	}
	norm, normOK := sql.Normalize(text)
	if normOK && db.plans != nil {
		if e, ok := db.plans.Peek(db.planKey(norm, "")); ok {
			return db.execCachedSelect(ctx, cur, norm, e)
		}
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt:
		return nil, errors.New("systemr: transaction control needs a session: use DB.Conn (SQL) or DB.Begin (API)")
	case *sql.CreateTableStmt, *sql.CreateIndexStmt, *sql.DropTableStmt,
		*sql.DropIndexStmt, *sql.UpdateStatsStmt:
		if explicit {
			return nil, errors.New("systemr: DDL and UPDATE STATISTICS cannot run inside a transaction (catalog changes are not undoable); commit first")
		}
	}
	if !explicit {
		cur = db.beginTxn()
		defer db.finishAuto(cur)
	}
	if err := cur.Locks.AcquireContext(ctx, compile.LockRequests(stmt, !db.cfg.DisableSnapshotReads)); err != nil {
		return nil, db.lockFailed(cur, explicit, err)
	}
	if !explicit {
		// The statement snapshot is (re)captured after its locks are granted:
		// a writer that waited behind a committing transaction must read the
		// post-commit state, not conflict with it. Explicit transactions keep
		// their BEGIN-time snapshot (repeatable reads) — there the conflict
		// is the correct first-updater-wins outcome.
		db.txns.Refresh(cur.Reg())
	}
	mark := cur.Mark()
	res, err = db.execStmt(ctx, cur, norm, stmt)
	if err != nil {
		if errors.Is(err, txn.ErrWriteConflict) {
			return nil, db.writeConflict(cur, explicit, err)
		}
		if uerr := cur.UndoTo(mark); uerr != nil {
			err = errors.Join(err, uerr)
		}
		return nil, err
	}
	return res, nil
}

// writeConflict handles a first-updater-wins conflict: the statement's
// snapshot is stale against a concurrently committed writer, so no statement
// of this transaction can proceed on it — the whole transaction rolls back,
// like a deadlock victim, and the caller retries from BEGIN. An explicit
// transaction is left Aborted until the session acknowledges with ROLLBACK;
// an autocommitted statement's deferred cleanup releases the rest.
func (db *DB) writeConflict(cur *txn.Txn, explicit bool, err error) error {
	if uerr := cur.UndoAll(); uerr != nil {
		err = errors.Join(err, uerr)
	}
	if explicit {
		cur.MarkAborted()
		db.txns.Finish(cur.Reg())
		cur.Locks.ReleaseAll()
		db.activeTxns.Add(-1)
		if m := db.metrics; m != nil {
			m.txnRollbacks.Inc()
		}
	}
	return &StatementError{Err: err}
}

// execCachedSelect is the plan-cache fast path. The peeked entry supplies
// the statement's lock set; the catalog-version check happens after those
// locks are held (the shared catalog lock excludes DDL, pinning the
// version), so a plan that went stale between the peek and the acquire is
// recompiled, never executed.
func (db *DB) execCachedSelect(ctx context.Context, cur *txn.Txn, norm string, e *compile.CompiledPlan) (res *Result, err error) {
	// Feedback: a plan whose estimates missed by the configured ratio gets
	// its statistics refreshed before this execution acquires any locks; the
	// refresh bumps the catalog version, so resolveSelect below recompiles
	// against the new statistics instead of serving the discredited plan.
	if e.NeedsRecompile() {
		db.refreshFeedbackStats(e)
	}
	explicit := cur != nil
	if !explicit {
		cur = db.beginTxn()
		defer db.finishAuto(cur)
	}
	if lerr := cur.Locks.AcquireContext(ctx, e.Locks); lerr != nil {
		return nil, db.lockFailed(cur, explicit, lerr)
	}
	if !explicit {
		db.txns.Refresh(cur.Reg()) // statement snapshot: see execText
	}
	gov := db.newGovernor(ctx)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	cp, _, err := db.resolveSelect(gov, norm, "", nil)
	if err != nil {
		return nil, err
	}
	return db.runSelect(gov, cur, cp)
}

// beginTxn creates a transaction over the engine's lock manager and disk,
// registered with the XID/snapshot registry and carrying the installed
// mutation fault hook. Used both for explicit transactions (Begin) and the
// ephemeral transaction backing each autocommitted statement — so an
// explicit transaction reads under one snapshot for its whole life
// (repeatable reads) while autocommit captures a fresh snapshot per
// statement.
func (db *DB) beginTxn() *txn.Txn {
	t := txn.New(db.locks.Begin(), db.disk, db.txns.Begin())
	if f, ok := db.mutFault.Load().(txn.FaultFunc); ok && f != nil {
		t.SetFault(f)
	}
	return t
}

// finishAuto ends an autocommitted statement's ephemeral transaction: any
// failed statement already undid its mutations, so all that remains is to
// deregister its snapshot — before lock release, so the registry's commit
// point stays inside the statement's exclusive-lock window — release the
// statement's locks, and account a writing commit toward auto-vacuum.
func (db *DB) finishAuto(t *txn.Txn) {
	t.Finish()
	db.txns.Finish(t.Reg())
	t.Locks.ReleaseAll()
	if t.Mutations() > 0 {
		db.noteCommit()
	}
}

// lockFailed handles a failed lock acquisition. A deadlock-victim or
// lock-timeout abort inside an explicit transaction rolls the whole
// transaction back immediately — its locks are what the rest of the cycle
// is waiting on — leaving it Aborted until the session acknowledges with
// ROLLBACK. Autocommitted statements hold no prior state; their deferred
// cleanup releases whatever was granted.
func (db *DB) lockFailed(cur *txn.Txn, explicit bool, err error) error {
	if explicit && (errors.Is(err, lock.ErrDeadlock) || errors.Is(err, lock.ErrLockTimeout)) {
		if uerr := cur.UndoAll(); uerr != nil {
			err = errors.Join(err, uerr)
		}
		cur.MarkAborted()
		db.txns.Finish(cur.Reg())
		cur.Locks.ReleaseAll()
		db.activeTxns.Add(-1)
		if m := db.metrics; m != nil {
			m.txnRollbacks.Inc()
		}
	}
	return lockErr(err)
}

// lockErr wraps a lock-acquisition failure as a *StatementError. Deadlock
// and lock-timeout sentinels pass through for errors.Is dispatch; context
// failures are classified by the governor (canceled vs deadline).
func lockErr(err error) error {
	if errors.Is(err, lock.ErrDeadlock) || errors.Is(err, lock.ErrLockTimeout) {
		return &StatementError{Err: err}
	}
	return &StatementError{Err: governor.CtxErr(err)}
}

// SetMutationFault installs a fault hook consulted before every logged
// mutation (insert or delete) of every subsequently created transaction,
// including autocommitted statements: hook(n) is called with the 1-based
// ordinal of the transaction's nth mutation, and a non-nil error fails the
// statement at exactly that point — before the mutation applies. The
// crash-consistency tests sweep it over every ordinal to prove statement
// rollback restores the exact pre-statement state. nil removes the hook.
func (db *DB) SetMutationFault(hook func(n int64) error) {
	db.mutFault.Store(txn.FaultFunc(hook))
}

// planKey builds the plan-cache key for a normalized SELECT. The degree of
// parallelism salts the key because it changes the compiled plan's shape —
// the Parallel exchange is planted at compile time — so plans compiled under
// a different DOP can never be served. ExecBatchSize is execution-only and
// deliberately does not participate.
func (db *DB) planKey(norm, argSig string) string {
	if db.cfg.DegreeOfParallelism > 1 {
		argSig = fmt.Sprintf("dop=%d\x00%s", db.cfg.DegreeOfParallelism, argSig)
	}
	return compile.Key(norm, argSig)
}

// resolveSelect produces an executable plan for a SELECT: served from the
// plan cache when the cached entry's catalog version still matches, else
// compiled under the statement's governor budget and cached. It must run
// while the statement's locks are held — the shared catalog lock pins the
// version between the check and execution. sel, when non-nil, is the
// already-parsed statement matching norm (the cold path reuses its parse);
// otherwise norm itself is parsed (Normalize preserves identifier case, so
// the recompiled plan is textually faithful, output names included).
func (db *DB) resolveSelect(gov *governor.Budget, norm, argSig string, sel *sql.SelectStmt) (*compile.CompiledPlan, bool, error) {
	key := db.planKey(norm, argSig)
	version := db.cat.Version()
	if db.plans != nil {
		if e, ok := db.plans.Peek(key); ok {
			if e.Version == version {
				db.plans.Hit(key)
				return e, true, nil
			}
			db.plans.Invalidate(key, e)
		}
	}
	var cp *compile.CompiledPlan
	var err error
	cstart := time.Now()
	if sel != nil {
		cp, err = db.compiler.CompileSelect(gov, sel, norm)
	} else {
		cp, err = db.compiler.CompileSelectText(gov, norm)
	}
	db.observeCompile(cstart)
	if err != nil {
		return nil, false, wrapGovErr(err, ExecStats{})
	}
	if db.plans != nil {
		db.plans.Miss()
		db.plans.Put(key, cp)
	}
	return cp, false, nil
}

// MustExec is Exec, panicking on error — for setup code and examples.
func (db *DB) MustExec(text string) *Result {
	res, err := db.Exec(text)
	if err != nil {
		panic(fmt.Sprintf("systemr: %s: %v", text, err))
	}
	return res
}

// Query is Exec restricted to SELECT statements.
func (db *DB) Query(text string) (*Result, error) {
	return db.QueryContext(context.Background(), text)
}

// QueryContext is Query observing ctx (see ExecContext).
func (db *DB) QueryContext(ctx context.Context, text string) (*Result, error) {
	res, err := db.ExecContext(ctx, text)
	if err != nil {
		return nil, err
	}
	if res.Columns == nil {
		return nil, fmt.Errorf("systemr: statement is not a query: %s", text)
	}
	return res, nil
}

// Explain plans a SELECT and returns the optimizer's chosen plan as text.
func (db *DB) Explain(text string) (string, error) {
	return db.ExplainContext(context.Background(), text)
}

// ExplainContext is Explain observing ctx (see ExecContext).
func (db *DB) ExplainContext(ctx context.Context, text string) (string, error) {
	res, err := db.ExecContext(ctx, "EXPLAIN "+text)
	if err != nil {
		return "", err
	}
	return res.Plan, nil
}

// ExplainAnalyze plans a SELECT, executes it, and returns the plan annotated
// per operator with the optimizer's estimated rows and cost next to the
// measured actual rows, attributed page fetches, and wall time.
func (db *DB) ExplainAnalyze(text string) (string, error) {
	return db.ExplainAnalyzeContext(context.Background(), text)
}

// ExplainAnalyzeContext is ExplainAnalyze observing ctx (see ExecContext);
// the measured execution is governed like any other statement.
func (db *DB) ExplainAnalyzeContext(ctx context.Context, text string) (string, error) {
	res, err := db.ExecContext(ctx, "EXPLAIN ANALYZE "+text)
	if err != nil {
		return "", err
	}
	return res.Plan, nil
}

// LastStats returns the measured execution statistics of the most recent
// statement.
func (db *DB) LastStats() ExecStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.last
}

// The following accessors expose internal components for this module's
// experiment drivers and tests. External users interact through SQL.

// Catalog returns the system catalogs.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Pool returns the buffer pool (e.g. to Flush for cold-cache measurements,
// or to install a storage.FaultInjector).
func (db *DB) Pool() *storage.BufferPool { return db.pool }

// Locks returns the table-lock manager (leak checks assert
// Locks().Outstanding() == 0 between statements).
func (db *DB) Locks() *lock.Manager { return db.locks }

// Runtime returns an ungoverned executor runtime bound to this database,
// carrying its own fresh statement accumulator and no snapshot — it reads
// the latest committed versions (single-statement tooling: experiment
// drivers and tests).
func (db *DB) Runtime() *exec.Runtime { return db.runtime(nil, nil) }

// RunPlanned executes an already-built plan ungoverned, under a freshly
// pinned snapshot that is released when it returns, and reports the raw
// executor statistics. Experiment drivers measure alternative plans through
// this instead of exec.RunQuery(db.Runtime(), …) so their reads are
// snapshot-consistent and the vacuum horizon is held for exactly the run.
func (db *DB) RunPlanned(q *plan.Query) ([]value.Row, *exec.Stats, error) {
	reg := db.txns.Begin()
	defer db.txns.Finish(reg)
	return exec.RunQuery(db.runtime(nil, reg.Snap), q)
}

// runtime binds an executor runtime with the statement's governor budget,
// the MVCC snapshot its scans read under, and the statement's own I/O
// accumulator, so every page access and RSI call of the statement is
// measured on its own ledger — exact under concurrency — while still
// aggregating into the pool's DB-global counters. The configured batch size
// and the batch/parallel metric observers ride along.
func (db *DB) runtime(g *governor.Budget, snap *storage.Snapshot) *exec.Runtime {
	rt := &exec.Runtime{Pool: db.pool, Disk: db.disk, Budget: g, IO: g.IO(),
		BatchSize: db.cfg.ExecBatchSize, Snap: snap}
	if m := db.metrics; m != nil {
		rt.OnBatch = func(rows int) { m.execBatchRows.Observe(float64(rows)) }
		rt.OnParallel = func(workers int) { m.parallelDegree.Observe(float64(workers)) }
	}
	return rt
}

// newGovernor creates one statement's execution budget from the configured
// limits, over a fresh per-statement I/O accumulator: the fetch budget is
// enforced against this statement's fetches alone, and the same accumulator
// becomes the statement's measurement ledger via runtime.
func (db *DB) newGovernor(ctx context.Context) *governor.Budget {
	return governor.New(ctx, governor.Limits{
		MaxRowsScanned: db.cfg.MaxRowsScanned,
		MaxPageFetches: db.cfg.MaxPageFetches,
	}, &storage.IOStats{})
}

// OptimizerConfig returns the core optimizer configuration this database
// plans with.
func (db *DB) OptimizerConfig() core.Config {
	return core.Config{
		W:                        db.cfg.W,
		BufferPages:              db.cfg.BufferPages,
		DisableJoinHeuristic:     db.cfg.DisableJoinHeuristic,
		DisableInterestingOrders: db.cfg.DisableInterestingOrders,
		DisableSargs:             db.cfg.DisableSargs,
		NestedLoopsOnly:          db.cfg.NestedLoopsOnly,
		MergeOnly:                db.cfg.MergeOnly,
		DisableHashJoin:          db.cfg.DisableHashJoin,
		DisableHistograms:        db.cfg.DisableHistograms,
		DegreeOfParallelism:      db.cfg.DegreeOfParallelism,
		ParallelMinPages:         db.cfg.ParallelMinPages,
	}
}

// noteCommit accounts one committed writing transaction toward the
// auto-vacuum trigger and runs a vacuum pass every Config.VacuumEvery
// commits. Called after the transaction released its locks.
func (db *DB) noteCommit() {
	if db.cfg.VacuumEvery <= 0 {
		return
	}
	if db.commits.Add(1)%int64(db.cfg.VacuumEvery) == 0 {
		db.Vacuum()
	}
}

// Vacuum reclaims dead row versions: every version whose deleting
// transaction is older than the oldest snapshot any live transaction or
// cursor could still read under is physically removed, along with its index
// entries. Each table is vacuumed under a briefly-held exclusive lock,
// acquired without waiting — tables locked by concurrent writers are simply
// skipped until the next pass, so vacuum never blocks or deadlocks user
// work. It returns the number of versions reclaimed. Runs automatically
// every Config.VacuumEvery committed writes; call it directly for immediate
// reclamation (tests, maintenance windows).
func (db *DB) Vacuum() int {
	if !db.vacuuming.CompareAndSwap(false, true) {
		return 0
	}
	defer db.vacuuming.Store(false)
	horizon := db.txns.Horizon()
	var onChain func(int)
	if m := db.metrics; m != nil {
		m.vacuumRuns.Inc()
		onChain = func(length int) { m.versionChainLen.Observe(float64(length)) }
	}
	total := 0
	for _, t := range db.cat.Tables() {
		if t.System {
			continue
		}
		n, err := db.vacuumTable(t, horizon, onChain)
		total += n
		if err != nil {
			break
		}
	}
	if m := db.metrics; m != nil {
		m.vacuumReclaimed.Add(float64(total))
	}
	return total
}

// vacuumTable vacuums one table under a non-blocking exclusive lock. A table
// locked by a concurrent writer is skipped until the next pass: (0, nil).
func (db *DB) vacuumTable(t *catalog.Table, horizon storage.XID, onChain func(int)) (int, error) {
	held := db.locks.TryAcquire([]lock.Request{
		{Table: compile.CatalogLock, Mode: lock.Shared},
		{Table: t.Name, Mode: lock.Exclusive},
	})
	if held == nil {
		return 0, nil
	}
	defer held.Release()
	return rss.VacuumTable(t, db.disk, horizon, onChain)
}

// PlanSelect analyzes and optimizes a SELECT without executing it
// (ungoverned, uncached — the experiment drivers' entry point).
func (db *DB) PlanSelect(text string) (*plan.Query, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("systemr: not a SELECT: %s", text)
	}
	blk, err := sem.Analyze(sel, db.cat)
	if err != nil {
		return nil, err
	}
	return db.planBlock(nil, blk)
}

// planBlock runs access path selection (or the naive baseline) through the
// compile pipeline, under the statement's governor budget when one is given.
func (db *DB) planBlock(gov *governor.Budget, blk *sem.Block) (*plan.Query, error) {
	if err := gov.Check(); err != nil {
		return nil, wrapGovErr(err, ExecStats{})
	}
	cstart := time.Now()
	q, err := db.compiler.PlanBlock(blk)
	db.observeCompile(cstart)
	return q, err
}

// PlanCacheStats reports plan-cache observability: served hits, compiling
// misses, version invalidations, LRU evictions, occupancy, the pipeline's
// total optimizer invocations, and the current catalog version. All zero
// counters with Capacity 0 means caching is disabled.
type PlanCacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Evictions     int64
	Entries       int
	Capacity      int
	// Compilations counts every optimizer invocation (cached or not) — the
	// counter that must NOT move when a repeated statement hits the cache.
	Compilations int64
	// CatalogVersion is the catalog's current version/stats epoch.
	CatalogVersion uint64
}

// PlanCacheStats returns a snapshot of the plan cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	s := PlanCacheStats{
		Compilations:   db.compiler.Compilations(),
		CatalogVersion: db.cat.Version(),
	}
	if db.plans != nil {
		cs := db.plans.Stats()
		s.Hits, s.Misses = cs.Hits, cs.Misses
		s.Invalidations, s.Evictions = cs.Invalidations, cs.Evictions
		s.Entries, s.Capacity = cs.Entries, cs.Capacity
	}
	return s
}

// execStmt dispatches one parsed statement under a fresh governor budget,
// writing through cur's undo log. norm is the statement's normalized text
// ("" only if normalization failed, which implies parsing failed first).
// execStmt is the panic-containment boundary: an internal panic is recovered
// here and converted to a *PanicError, which the caller treats like any
// statement failure — undo to the statement mark, locks and scans released —
// so the database stays usable and consistent.
func (db *DB) execStmt(ctx context.Context, cur *txn.Txn, norm string, stmt sql.Statement) (res *Result, err error) {
	gov := db.newGovernor(ctx)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	switch st := stmt.(type) {
	case *sql.CreateTableStmt:
		cols := make([]catalog.Column, len(st.Cols))
		for i, c := range st.Cols {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type}
		}
		if _, err := db.cat.CreateTable(st.Name, cols, st.Segment); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CreateIndexStmt:
		if _, err := db.cat.CreateIndex(st.Name, st.Table, st.Columns, st.Unique, st.Clustered); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropTableStmt:
		if err := db.cat.DropTable(st.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropIndexStmt:
		if err := db.cat.DropIndex(st.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.UpdateStatsStmt:
		if st.Table != "" {
			if !db.cat.UpdateStatisticsFor(st.Table) {
				return nil, fmt.Errorf("systemr: table %s does not exist", st.Table)
			}
			return &Result{}, nil
		}
		db.cat.UpdateStatistics()
		return &Result{}, nil
	case *sql.InsertStmt:
		return db.execInsert(gov, cur, st)
	case *sql.SelectStmt:
		return db.execSelect(gov, cur, norm, st)
	case *sql.ExplainStmt:
		return db.execExplain(gov, cur, norm, st)
	case *sql.DeleteStmt:
		return db.execDelete(gov, cur, st)
	case *sql.UpdateStmt:
		return db.execUpdate(gov, cur, st)
	default:
		return nil, fmt.Errorf("systemr: unsupported statement %T", stmt)
	}
}

// evalConstExpr evaluates INSERT VALUES expressions: literals and constant
// arithmetic.
func evalConstExpr(e sql.Expr) (value.Value, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return x.Val, nil
	case *sql.NegExpr:
		v, err := evalConstExpr(x.E)
		if err != nil {
			return value.Value{}, err
		}
		return value.Arith('-', value.NewInt(0), v), nil
	case *sql.BinaryExpr:
		l, err := evalConstExpr(x.L)
		if err != nil {
			return value.Value{}, err
		}
		r, err := evalConstExpr(x.R)
		if err != nil {
			return value.Value{}, err
		}
		switch x.Op {
		case sql.OpAdd:
			return value.Arith('+', l, r), nil
		case sql.OpSub:
			return value.Arith('-', l, r), nil
		case sql.OpMul:
			return value.Arith('*', l, r), nil
		case sql.OpDiv:
			return value.Arith('/', l, r), nil
		}
	}
	return value.Value{}, fmt.Errorf("systemr: VALUES requires constant expressions, got %s", e)
}

// execStatsFrom converts the executor's measured statistics to the public
// ExecStats.
func execStatsFrom(stats *exec.Stats) ExecStats {
	if stats == nil {
		return ExecStats{}
	}
	return ExecStats{
		PageFetches:   stats.IO.PageFetches,
		PagesWritten:  stats.IO.PagesWritten,
		LogicalReads:  stats.IO.LogicalReads,
		RSICalls:      stats.IO.RSICalls,
		SubqueryEvals: stats.SubqueryEvals,
		Rows:          stats.Rows,
	}
}

// setLast records the statement's measured statistics (including the partial
// cost of an aborted statement).
func (db *DB) setLast(s ExecStats) {
	db.mu.Lock()
	db.last = s
	db.mu.Unlock()
	if m := db.metrics; m != nil {
		m.stmtCost.Add(s.Cost(db.cfg.W))
		m.stmtFetches.Add(float64(s.PageFetches + s.PagesWritten))
		m.stmtRSI.Add(float64(s.RSICalls))
		m.stmtRows.Add(float64(s.Rows))
	}
}

// wrapGovErr converts a governor abort (cancellation, deadline, budget) into
// a *StatementError carrying the partial stats; other errors pass through.
func wrapGovErr(err error, stats ExecStats) error {
	if errors.Is(err, governor.ErrCanceled) || errors.Is(err, governor.ErrBudgetExceeded) {
		return &StatementError{Err: err, Stats: stats}
	}
	return err
}

func (db *DB) execInsert(gov *governor.Budget, cur *txn.Txn, st *sql.InsertStmt) (*Result, error) {
	t, ok := db.cat.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("systemr: table %s does not exist", st.Table)
	}
	if t.System {
		return nil, fmt.Errorf("systemr: %s is a read-only system catalog", t.Name)
	}
	n := 0
	for _, rowExprs := range st.Rows {
		if err := gov.Tick(); err != nil {
			return nil, wrapGovErr(err, ExecStats{Rows: n})
		}
		row := make(value.Row, len(rowExprs))
		for i, e := range rowExprs {
			v, err := evalConstExpr(e)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if _, err := cur.Insert(t, row, storage.NoPrevTID); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// execSelect is the cold (cache-miss or cache-disabled) SELECT path: resolve
// a plan — which caches the freshly compiled plan for next time — then run it.
func (db *DB) execSelect(gov *governor.Budget, cur *txn.Txn, norm string, sel *sql.SelectStmt) (*Result, error) {
	cp, _, err := db.resolveSelect(gov, norm, "", sel)
	if err != nil {
		return nil, err
	}
	return db.runSelect(gov, cur, cp)
}

// runSelect executes a compiled plan under the statement's governor and
// transaction snapshot, and materializes the result. The plan itself is
// never mutated — all execution state lives in the run — so cached plans
// execute concurrently.
func (db *DB) runSelect(gov *governor.Budget, cur *txn.Txn, cp *compile.CompiledPlan) (*Result, error) {
	rows, stats, err := exec.RunQuery(db.runtime(gov, cur.Snapshot()), cp.Query)
	es := execStatsFrom(stats)
	db.setLast(es)
	if err != nil {
		return nil, wrapGovErr(err, es)
	}
	out := make([][]any, len(rows))
	for i, r := range rows {
		out[i] = toNative(r)
	}
	cols := cp.Query.OutNames
	if cols == nil {
		cols = []string{}
	}
	db.noteFeedback(cp, float64(len(rows)))
	return &Result{Columns: cols, Rows: out}, nil
}

// noteFeedback compares a finished execution's actual result rows with the
// plan's compile-time estimate and records the symmetric miss factor on the
// plan. Crossing the configured ratio marks the plan: the next execution
// refreshes statistics on the tables it reads and recompiles.
func (db *DB) noteFeedback(cp *compile.CompiledPlan, actual float64) {
	ratio := db.cfg.RecompileMissRatio
	if ratio < 0 || cp.Query == nil || cp.Query.Root == nil {
		return
	}
	miss := compile.MissFactor(cp.Query.Root.Est().Rows, actual)
	cp.NoteMiss(miss)
	if m := db.metrics; m != nil {
		m.estMissFactor.Observe(miss)
	}
	if miss >= ratio && !cp.NeedsRecompile() {
		cp.MarkRecompile()
		if m := db.metrics; m != nil {
			m.feedbackMarks.Inc()
		}
	}
}

// refreshFeedbackStats runs the statistics refresh a marked plan asked for:
// UPDATE STATISTICS on each table the plan reads, under a non-blocking
// exclusive catalog lock (the same discipline as the SQL statement). Exactly
// one concurrent execution wins the mark; under catalog contention the
// refresh is skipped and the mark restored, so a later execution retries —
// feedback is advisory and must never block or deadlock a query.
func (db *DB) refreshFeedbackStats(e *compile.CompiledPlan) {
	if !e.TakeRecompile() {
		return
	}
	held := db.locks.TryAcquire([]lock.Request{{Table: compile.CatalogLock, Mode: lock.Exclusive}})
	if held == nil {
		e.MarkRecompile()
		return
	}
	defer held.Release()
	for _, t := range e.Reads {
		db.cat.UpdateStatisticsFor(t)
	}
	if m := db.metrics; m != nil {
		m.feedbackRefreshes.Inc()
	}
}

// selectNorm recovers a SELECT's normalized text from its EXPLAIN wrapper's,
// so EXPLAIN SELECT ... shares (and reports on) the plain SELECT's cache slot.
func selectNorm(norm string) string {
	norm = strings.TrimPrefix(norm, "EXPLAIN ")
	return strings.TrimPrefix(norm, "ANALYZE ")
}

// execExplain plans (and for EXPLAIN ANALYZE also executes) the wrapped
// statement under the same governor as any other statement: a canceled
// context or exhausted budget aborts it, and ANALYZE's execution is governed
// exactly like a plain SELECT. EXPLAIN of a SELECT goes through the plan
// cache — sharing the plain SELECT's slot — and annotates the plan with a
// note when it was served from cache.
func (db *DB) execExplain(gov *governor.Budget, cur *txn.Txn, norm string, st *sql.ExplainStmt) (*Result, error) {
	if err := gov.Check(); err != nil {
		return nil, wrapGovErr(err, ExecStats{})
	}
	var q *plan.Query
	var cacheNote string
	var cp *compile.CompiledPlan
	switch inner := st.Stmt.(type) {
	case *sql.SelectStmt:
		sel, hit, err := db.resolveSelect(gov, selectNorm(norm), "", inner)
		if err != nil {
			return nil, err
		}
		if hit {
			cacheNote = fmt.Sprintf("plan cache: hit (compiled at catalog version %d)\n", sel.Version)
		}
		cp = sel
		q = cp.Query
	case *sql.DeleteStmt:
		blk, err := sem.AnalyzeDelete(inner, db.cat)
		if err != nil {
			return nil, err
		}
		if q, err = db.planBlock(gov, blk); err != nil {
			return nil, err
		}
	case *sql.UpdateStmt:
		blk, _, err := sem.AnalyzeUpdate(inner, db.cat)
		if err != nil {
			return nil, err
		}
		if q, err = db.planBlock(gov, blk); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("systemr: EXPLAIN does not support %T", st.Stmt)
	}
	if !st.Analyze {
		return &Result{Plan: q.Explain() + cacheNote}, nil
	}
	rows, stats, analysis, err := exec.RunQueryAnalyze(db.runtime(gov, cur.Snapshot()), q, nil)
	es := execStatsFrom(stats)
	db.setLast(es)
	if err != nil {
		return nil, wrapGovErr(err, es)
	}
	if cp != nil {
		// EXPLAIN ANALYZE executions feed the estimation loop like any other.
		db.noteFeedback(cp, float64(len(rows)))
	}
	return &Result{Plan: analysis.Format(db.cfg.W) + cacheNote}, nil
}

// collectMatches locates the tuples a DELETE/UPDATE affects through the
// optimizer's chosen access path (the paper: "retrieval for data
// manipulation is treated similarly"). The scan runs under the statement's
// snapshot: the tuples a writer modifies are exactly the tuples it sees.
func (db *DB) collectMatches(gov *governor.Budget, cur *txn.Txn, blk *sem.Block) ([]storage.TID, []value.Row, error) {
	q, err := db.planBlock(gov, blk)
	if err != nil {
		return nil, nil, err
	}
	tids, rows, err := exec.CollectTIDs(db.runtime(gov, cur.Snapshot()), q)
	if err != nil {
		return nil, nil, wrapGovErr(err, ExecStats{Rows: int(gov.RowsScanned())})
	}
	return tids, rows, nil
}

func (db *DB) execDelete(gov *governor.Budget, cur *txn.Txn, st *sql.DeleteStmt) (*Result, error) {
	blk, err := sem.AnalyzeDelete(st, db.cat)
	if err != nil {
		return nil, err
	}
	if blk.Rels[0].Table.System {
		return nil, fmt.Errorf("systemr: %s is a read-only system catalog", blk.Rels[0].Table.Name)
	}
	tids, rows, err := db.collectMatches(gov, cur, blk)
	if err != nil {
		return nil, err
	}
	t := blk.Rels[0].Table
	for i, tid := range tids {
		if err := gov.Tick(); err != nil {
			return nil, wrapGovErr(err, ExecStats{Rows: i})
		}
		if err := cur.Delete(t, tid, rows[i]); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(tids)}, nil
}

func (db *DB) execUpdate(gov *governor.Budget, cur *txn.Txn, st *sql.UpdateStmt) (*Result, error) {
	blk, sets, err := sem.AnalyzeUpdate(st, db.cat)
	if err != nil {
		return nil, err
	}
	if blk.Rels[0].Table.System {
		return nil, fmt.Errorf("systemr: %s is a read-only system catalog", blk.Rels[0].Table.Name)
	}
	tids, rows, err := db.collectMatches(gov, cur, blk)
	if err != nil {
		return nil, err
	}
	q, err := db.planBlock(gov, blk)
	if err != nil {
		return nil, err
	}
	pc := exec.NewPredContext(db.runtime(gov, cur.Snapshot()), q)
	t := blk.Rels[0].Table
	for i, tid := range tids {
		if err := gov.Tick(); err != nil {
			return nil, wrapGovErr(err, ExecStats{Rows: i})
		}
		newRow := rows[i].Clone()
		for _, set := range sets {
			v, err := pc.Eval(rows[i], set.Expr)
			if err != nil {
				return nil, err
			}
			newRow[set.Col] = v
		}
		// UPDATE is mark+insert per row: the old version is delete-marked in
		// place (older snapshots keep seeing it) and the new version links
		// back to it. Undo reverses both halves — removing the new version
		// and clearing the old one's mark.
		if err := cur.Delete(t, tid, rows[i]); err != nil {
			return nil, err
		}
		if _, err := cur.Insert(t, newRow, tid); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(tids)}, nil
}

func toNative(r value.Row) []any {
	out := make([]any, len(r))
	for i, v := range r {
		switch v.Kind {
		case value.KindInt:
			out[i] = v.Int
		case value.KindFloat:
			out[i] = v.Float
		case value.KindString:
			out[i] = v.Str
		default:
			out[i] = nil
		}
	}
	return out
}

// FormatResult renders a result as an aligned text table (the rsql shell's
// output format).
func FormatResult(res *Result) string {
	if res.Plan != "" {
		return res.Plan
	}
	if res.Columns == nil {
		return fmt.Sprintf("OK (%d rows affected)\n", res.Affected)
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := "NULL"
			if v != nil {
				s = fmt.Sprintf("%v", v)
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range res.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range res.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range cells {
		for ci, s := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[ci], s)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(res.Rows))
	return b.String()
}

// Tables lists the catalog's relations with their statistics, sorted by
// name — the rsql shell's \d command.
func (db *DB) Tables() string {
	ts := db.cat.Tables()
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "%s (", t.Name)
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		}
		fmt.Fprintf(&b, ")  NCARD=%d TCARD=%d P=%.2f\n", t.Stats.NCard, t.Stats.TCard, t.Stats.P)
		for _, ix := range t.Indexes {
			kind := ""
			if ix.Unique {
				kind += " UNIQUE"
			}
			if ix.Clustered {
				kind += " CLUSTERED"
			}
			fmt.Fprintf(&b, "  index %s(%s)%s  ICARD=%d NINDX=%d\n",
				ix.Name, strings.Join(ix.ColumnNames(), ","), kind, ix.Stats.ICard, ix.Stats.NIndx)
		}
	}
	return b.String()
}

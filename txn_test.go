package systemr_test

// End-to-end tests of multi-statement transactions: BEGIN/COMMIT/ROLLBACK
// through the Conn session and the Begin API, statement-level atomicity
// inside transactions, autocommit atomicity, transaction-scope lock
// retention, and the idempotence of Commit/Rollback.

import (
	"strings"
	"testing"
	"time"

	"systemr"
)

// newTxnDB builds a small two-table database with a unique index.
func newTxnDB(t testing.TB) *systemr.DB {
	t.Helper()
	db := systemr.Open(systemr.Config{})
	db.MustExec("CREATE TABLE T (K INTEGER, V INTEGER)")
	db.MustExec("CREATE UNIQUE INDEX T_K ON T (K)")
	db.MustExec("CREATE TABLE U (K INTEGER, V INTEGER)")
	for i := 1; i <= 5; i++ {
		db.MustExec("INSERT INTO T VALUES (" + itoa(i) + ", " + itoa(10*i) + ")")
		db.MustExec("INSERT INTO U VALUES (" + itoa(i) + ", " + itoa(10*i) + ")")
	}
	db.MustExec("UPDATE STATISTICS")
	return db
}

// dumpSQL captures the database as its SQL script — the byte-exact oracle
// the rollback tests compare against.
func dumpSQL(t testing.TB, db *systemr.DB) string {
	t.Helper()
	var b strings.Builder
	if err := db.DumpSQL(&b); err != nil {
		t.Fatalf("DumpSQL: %v", err)
	}
	return b.String()
}

func count(t testing.TB, q interface {
	Query(string) (*systemr.Result, error)
}, text string) int64 {
	t.Helper()
	res, err := q.Query(text)
	if err != nil {
		t.Fatalf("%s: %v", text, err)
	}
	return res.Rows[0][0].(int64)
}

func TestTxnCommitPublishes(t *testing.T) {
	db := newTxnDB(t)
	conn := db.Conn()
	if _, err := conn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if !conn.InTxn() {
		t.Fatal("InTxn = false after BEGIN")
	}
	if _, err := conn.Exec("INSERT INTO T VALUES (6, 60)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("UPDATE T SET V = V + 1 WHERE K = 1"); err != nil {
		t.Fatal(err)
	}
	// The transaction sees its own writes.
	if got := count(t, conn, "SELECT COUNT(*) FROM T"); got != 6 {
		t.Fatalf("count inside txn = %d, want 6", got)
	}
	if _, err := conn.Exec("COMMIT TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	if conn.InTxn() {
		t.Fatal("InTxn = true after COMMIT")
	}
	assertClean(t, db)
	if got := count(t, db, "SELECT COUNT(*) FROM T WHERE V = 11"); got != 1 {
		t.Fatalf("committed update invisible: %d rows with V=11", got)
	}
	if got := count(t, db, "SELECT COUNT(*) FROM T"); got != 6 {
		t.Fatalf("count after commit = %d, want 6", got)
	}
}

func TestTxnRollbackRestoresExactState(t *testing.T) {
	db := newTxnDB(t)
	before := dumpSQL(t, db)
	conn := db.Conn()
	for _, s := range []string{
		"BEGIN WORK",
		"INSERT INTO T VALUES (7, 70)",
		"UPDATE T SET V = V * 2 WHERE K < 3",
		"DELETE FROM T WHERE K = 5",
		"DELETE FROM U WHERE K > 2",
	} {
		if _, err := conn.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := conn.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	assertClean(t, db)
	if after := dumpSQL(t, db); after != before {
		t.Fatalf("dump changed across BEGIN..ROLLBACK:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	// The unique index is consistent with the restored heap: key 5 is taken
	// again, key 7 is free.
	if _, err := db.Exec("INSERT INTO T VALUES (5, 0)"); err == nil {
		t.Fatal("restored key 5 did not reject a duplicate")
	}
	if _, err := db.Exec("INSERT INTO T VALUES (7, 70)"); err != nil {
		t.Fatalf("key 7 should be free after rollback: %v", err)
	}
}

func TestStatementFailureKeepsTxnAlive(t *testing.T) {
	db := newTxnDB(t)
	conn := db.Conn()
	if _, err := conn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO T VALUES (8, 80)"); err != nil {
		t.Fatal(err)
	}
	// Multi-row insert whose second row collides: the whole statement rolls
	// back (row 9 must not survive), but the transaction continues.
	if _, err := conn.Exec("INSERT INTO T VALUES (9, 90), (1, 0)"); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if got := count(t, conn, "SELECT COUNT(*) FROM T WHERE K = 9"); got != 0 {
		t.Fatal("failed statement's first row survived inside the txn")
	}
	if _, err := conn.Exec("INSERT INTO T VALUES (10, 100)"); err != nil {
		t.Fatalf("transaction unusable after statement failure: %v", err)
	}
	if _, err := conn.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if got := count(t, db, "SELECT COUNT(*) FROM T"); got != 7 {
		t.Fatalf("count = %d, want 7 (5 seed + rows 8 and 10)", got)
	}
	if got := count(t, db, "SELECT COUNT(*) FROM T WHERE K = 9"); got != 0 {
		t.Fatal("failed statement's first row survived the commit")
	}
}

func TestAutocommitStatementAtomicity(t *testing.T) {
	db := newTxnDB(t)
	before := dumpSQL(t, db)
	if _, err := db.Exec("INSERT INTO T VALUES (11, 110), (12, 120), (1, 0)"); err == nil {
		t.Fatal("duplicate key accepted")
	}
	assertClean(t, db)
	if after := dumpSQL(t, db); after != before {
		t.Fatalf("failed autocommit statement left state behind:\n%s", after)
	}
}

func TestCommitAndRollbackIdempotent(t *testing.T) {
	db := newTxnDB(t)
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO T VALUES (20, 200)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("second Commit: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("Rollback after Commit: %v", err)
	}
	if got := count(t, db, "SELECT COUNT(*) FROM T WHERE K = 20"); got != 1 {
		t.Fatal("Rollback after Commit undid the committed work")
	}
	if _, err := tx.Exec("INSERT INTO T VALUES (21, 210)"); err == nil {
		t.Fatal("statement accepted on a finished transaction")
	}

	tx2 := db.Begin()
	if _, err := tx2.Exec("INSERT INTO T VALUES (22, 220)"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatalf("second Rollback: %v", err)
	}
	if got := count(t, db, "SELECT COUNT(*) FROM T WHERE K = 22"); got != 0 {
		t.Fatal("rolled-back row visible")
	}
	assertClean(t, db)
}

func TestDDLRejectedInsideTxn(t *testing.T) {
	db := newTxnDB(t)
	conn := db.Conn()
	if _, err := conn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{
		"CREATE TABLE W (A INTEGER)",
		"CREATE INDEX T_V ON T (V)",
		"DROP TABLE U",
		"UPDATE STATISTICS",
	} {
		if _, err := conn.Exec(s); err == nil {
			t.Fatalf("%s accepted inside a transaction", s)
		}
	}
	// The rejections did not poison the transaction.
	if _, err := conn.Exec("INSERT INTO T VALUES (30, 300)"); err != nil {
		t.Fatalf("transaction unusable after DDL rejection: %v", err)
	}
	if _, err := conn.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	assertClean(t, db)
}

func TestTxnControlNeedsSession(t *testing.T) {
	db := newTxnDB(t)
	for _, s := range []string{"BEGIN", "COMMIT", "ROLLBACK WORK"} {
		_, err := db.Exec(s)
		if err == nil || !strings.Contains(err.Error(), "DB.Conn") {
			t.Fatalf("DB.Exec(%q) = %v, want session hint", s, err)
		}
	}
	conn := db.Conn()
	if _, err := conn.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT without BEGIN accepted")
	}
	if _, err := conn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("BEGIN"); err == nil {
		t.Fatal("nested BEGIN accepted")
	}
	if _, err := conn.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

func TestTxnLockRetention(t *testing.T) {
	db := newTxnDB(t)
	conn := db.Conn()
	if _, err := conn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("UPDATE T SET V = 0 WHERE K = 1"); err != nil {
		t.Fatal(err)
	}
	// A concurrent writer must block until COMMIT releases the X lock —
	// strict two-phase locking, not statement-scope.
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(entered)
		_, err := db.Exec("UPDATE T SET V = 1 WHERE K = 1")
		done <- err
	}()
	<-entered
	select {
	case err := <-done:
		t.Fatalf("concurrent writer finished while txn held the lock (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := conn.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("writer after commit: %v", err)
	}
	assertClean(t, db)
	if got := count(t, db, "SELECT COUNT(*) FROM T WHERE V = 1"); got != 1 {
		t.Fatal("second writer's update lost")
	}
}

func TestConnCloseRollsBack(t *testing.T) {
	db := newTxnDB(t)
	before := dumpSQL(t, db)
	conn := db.Conn()
	if _, err := conn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("DELETE FROM T WHERE K > 1"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	assertClean(t, db)
	if after := dumpSQL(t, db); after != before {
		t.Fatal("Conn.Close did not roll back the open transaction")
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestTxnMetrics(t *testing.T) {
	db := newTxnDB(t)
	conn := db.Conn()
	mustConn := func(s string) {
		t.Helper()
		if _, err := conn.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	mustConn("BEGIN")
	m := sampleMap(db)
	if got := m["systemr_txns_active"].Value; got != 1 {
		t.Fatalf("txns_active = %g, want 1", got)
	}
	mustConn("INSERT INTO T VALUES (40, 400)")
	mustConn("COMMIT")
	mustConn("BEGIN")
	mustConn("ROLLBACK")
	m = sampleMap(db)
	if got := m["systemr_txn_begins_total"].Value; got != 2 {
		t.Fatalf("txn_begins_total = %g, want 2", got)
	}
	if got := m["systemr_txn_commits_total"].Value; got != 1 {
		t.Fatalf("txn_commits_total = %g, want 1", got)
	}
	if got := m["systemr_txn_rollbacks_total"].Value; got != 1 {
		t.Fatalf("txn_rollbacks_total = %g, want 1", got)
	}
	if got := m["systemr_txns_active"].Value; got != 0 {
		t.Fatalf("txns_active = %g, want 0", got)
	}
}

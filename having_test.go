package systemr_test

import (
	"strings"
	"testing"

	"systemr/internal/core"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/testutil"
)

func TestHavingBasics(t *testing.T) {
	db := newEmpDeptJobDB(t)
	// Every DNO has exactly 10 employees; filter on an aggregate.
	res, err := db.Query("SELECT DNO, COUNT(*) FROM EMP WHERE SAL > 11000 GROUP BY DNO HAVING COUNT(*) >= 10 ORDER BY DNO")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[1].(int64) < 10 {
			t.Fatalf("HAVING leaked group: %v", r)
		}
	}
	// AVG filter with arithmetic.
	res, err = db.Query("SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO HAVING AVG(SAL) > 11400 AND COUNT(*) > 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[1].(float64) <= 11400 {
			t.Fatalf("avg filter leaked: %v", r)
		}
	}
	// Scalar aggregate with HAVING over the single group.
	res, err = db.Query("SELECT COUNT(*) FROM EMP HAVING COUNT(*) > 1000000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("scalar group should be filtered: %v", res.Rows)
	}
}

func TestHavingErrors(t *testing.T) {
	db := newEmpDeptJobDB(t)
	if _, err := db.Query("SELECT NAME FROM EMP HAVING COUNT(*) > 1 GROUP BY NAME"); err == nil {
		t.Fatal("HAVING before GROUP BY must not parse")
	}
	if _, err := db.Query("SELECT NAME FROM EMP HAVING NAME = 'X'"); err == nil ||
		!strings.Contains(err.Error(), "HAVING requires") {
		t.Fatalf("HAVING without aggregation: %v", err)
	}
	if _, err := db.Query("SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO HAVING SAL > 1"); err == nil ||
		!strings.Contains(err.Error(), "GROUP BY") {
		t.Fatalf("non-grouped column in HAVING: %v", err)
	}
}

// TestHavingDifferential cross-checks HAVING queries against the reference
// evaluator under all ablations.
func TestHavingDifferential(t *testing.T) {
	db := newEmpDeptJobDB(t)
	queries := []string{
		"SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO HAVING COUNT(*) > 9",
		"SELECT JOB, MIN(SAL), MAX(SAL) FROM EMP GROUP BY JOB HAVING MAX(SAL) - MIN(SAL) > 1000",
		"SELECT LOC, COUNT(*) FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO GROUP BY LOC HAVING COUNT(*) BETWEEN 50 AND 150",
		"SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO HAVING NOT COUNT(*) = 10",
		"SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO HAVING DNO IN (1, 2, 3) ORDER BY DNO DESC",
	}
	for _, query := range queries {
		st, err := sql.Parse(query)
		if err != nil {
			t.Fatalf("parse %q: %v", query, err)
		}
		blk, err := sem.Analyze(st.(*sql.SelectStmt), db.Catalog())
		if err != nil {
			t.Fatalf("analyze %q: %v", query, err)
		}
		want, err := testutil.RunBlock(db.Catalog().Disk(), blk)
		if err != nil {
			t.Fatalf("reference %q: %v", query, err)
		}
		for name, cfg := range ablations(db.OptimizerConfig()) {
			got, _ := runPlanned(t, db, query, cfg)
			if !testutil.SameMultiset(got, want) {
				q, _ := core.New(db.Catalog(), cfg).Optimize(blk)
				t.Fatalf("config %s: mismatch for %q: want %d rows, got %d\nplan:\n%s",
					name, query, len(want), len(got), q.Explain())
			}
		}
	}
}

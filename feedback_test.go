package systemr_test

// Feedback-driven re-optimization: a cached plan whose runtime row count
// misses its compile-time estimate by the configured ratio (default 10×) is
// marked; the next execution refreshes statistics on the tables the plan
// reads, which bumps the catalog version and recompiles the statement against
// honest numbers. The loop is advisory — it must never recompile well-behaved
// plans, and it must be disableable.

import (
	"fmt"
	"strings"
	"testing"

	"systemr"
)

// feedbackDB: T(K, V) with 100 unique K values, indexed and analyzed, so
// "K = 5" compiles with an exact estimate of one row.
func feedbackDB(t *testing.T, cfg systemr.Config) *systemr.DB {
	t.Helper()
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 32
	}
	db := systemr.Open(cfg)
	db.MustExec("CREATE TABLE T (K INTEGER, V INTEGER)")
	var vals []string
	for i := 0; i < 100; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i*10))
	}
	db.MustExec("INSERT INTO T VALUES " + strings.Join(vals, ", "))
	db.MustExec("CREATE INDEX T_K ON T (K)")
	db.MustExec("UPDATE STATISTICS")
	return db
}

// skewT invalidates the statistics without telling the optimizer: 50 more
// rows with K = 5, so the analyzed one-row estimate is off by 51×.
func skewT(t *testing.T, db *systemr.DB) {
	t.Helper()
	var vals []string
	for i := 0; i < 50; i++ {
		vals = append(vals, "(5, 0)")
	}
	db.MustExec("INSERT INTO T VALUES " + strings.Join(vals, ", "))
}

func countRows(t *testing.T, db *systemr.DB, q string) int {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

// TestFeedbackRecompilesMissedPlan walks the whole loop: estimate exact →
// data skews under the cached plan → the ≥10× miss marks it → the next
// execution refreshes statistics and recompiles → the recompiled plan is
// served from cache afterwards.
func TestFeedbackRecompilesMissedPlan(t *testing.T) {
	db := feedbackDB(t, systemr.Config{})
	const q = "SELECT V FROM T WHERE K = 5"

	if got := countRows(t, db, q); got != 1 {
		t.Fatalf("pre-skew rows = %d, want 1", got)
	}
	s1 := db.PlanCacheStats()

	skewT(t, db)

	// Served from cache: the stale plan runs once more, observes 51 actual
	// rows against its 1-row estimate, and is marked for recompilation.
	if got := countRows(t, db, q); got != 51 {
		t.Fatalf("post-skew rows = %d, want 51", got)
	}
	s2 := db.PlanCacheStats()
	if s2.Compilations != s1.Compilations {
		t.Fatalf("the miss-observing execution must still use the cached plan: %d -> %d compilations",
			s1.Compilations, s2.Compilations)
	}

	// The marked plan's next execution refreshes statistics (catalog version
	// bumps) and recompiles exactly once.
	if got := countRows(t, db, q); got != 51 {
		t.Fatalf("recompiled execution rows = %d, want 51", got)
	}
	s3 := db.PlanCacheStats()
	if s3.Compilations != s2.Compilations+1 {
		t.Fatalf("marked plan must recompile exactly once: %d -> %d compilations",
			s2.Compilations, s3.Compilations)
	}
	if s3.CatalogVersion == s2.CatalogVersion {
		t.Fatalf("feedback refresh must bump the catalog version: %d", s3.CatalogVersion)
	}

	// The recompiled plan now estimates the hot key exactly...
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "rows=51.0") {
		t.Fatalf("recompiled plan should estimate the hot key's 51 rows:\n%s", plan)
	}
	// ...so it is served from cache with no further feedback churn.
	if got := countRows(t, db, q); got != 51 {
		t.Fatalf("steady-state rows = %d, want 51", got)
	}
	s4 := db.PlanCacheStats()
	if s4.Compilations != s3.Compilations {
		t.Fatalf("recompiled plan must be served from cache: %d -> %d compilations",
			s3.Compilations, s4.Compilations)
	}
	if s4.Hits <= s2.Hits {
		t.Fatalf("steady state should hit the cache: %+v", s4)
	}
}

// TestFeedbackDisabled: RecompileMissRatio < 0 turns the loop off — the
// stale plan keeps being served no matter how wrong it is.
func TestFeedbackDisabled(t *testing.T) {
	db := feedbackDB(t, systemr.Config{RecompileMissRatio: -1})
	const q = "SELECT V FROM T WHERE K = 5"
	countRows(t, db, q)
	s1 := db.PlanCacheStats()
	skewT(t, db)
	for i := 0; i < 3; i++ {
		if got := countRows(t, db, q); got != 51 {
			t.Fatalf("rows = %d, want 51", got)
		}
	}
	s2 := db.PlanCacheStats()
	if s2.Compilations != s1.Compilations {
		t.Fatalf("disabled feedback must never recompile: %d -> %d compilations",
			s1.Compilations, s2.Compilations)
	}
}

// TestFeedbackThreshold: the ratio is configurable — a 51× miss under a
// 100× threshold stays cached.
func TestFeedbackThreshold(t *testing.T) {
	db := feedbackDB(t, systemr.Config{RecompileMissRatio: 100})
	const q = "SELECT V FROM T WHERE K = 5"
	countRows(t, db, q)
	s1 := db.PlanCacheStats()
	skewT(t, db)
	for i := 0; i < 3; i++ {
		countRows(t, db, q)
	}
	s2 := db.PlanCacheStats()
	if s2.Compilations != s1.Compilations {
		t.Fatalf("51x miss under a 100x threshold must not recompile: %d -> %d",
			s1.Compilations, s2.Compilations)
	}
}

package systemr_test

import (
	"context"
	"testing"

	"systemr"
	"systemr/internal/rss"
	"systemr/internal/testutil"
	"systemr/internal/workload"
)

func TestCursorStreaming(t *testing.T) {
	db := newEmpDeptJobDB(t)
	stmt, err := db.Prepare("SELECT NAME, SAL FROM EMP WHERE DNO = 3 ORDER BY SAL")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns()) != 2 {
		t.Fatalf("columns: %v", rows.Columns())
	}
	count := 0
	prev := -1.0
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		sal := row[1].(float64)
		if sal < prev {
			t.Fatal("cursor rows out of order")
		}
		prev = sal
	}
	if count != 10 {
		t.Fatalf("streamed %d rows", count)
	}
	rows.Close() // idempotent after drain

	// Early close releases locks: a writer must be able to proceed.
	rows, err = stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := rows.Next(); !ok {
		t.Fatal("expected at least one row")
	}
	rows.Close()
	if _, err := db.Exec("INSERT INTO EMP VALUES ('W', 3, 5, 1.0)"); err != nil {
		t.Fatalf("write after cursor close: %v", err)
	}

	// Re-open still works (plans are reusable).
	rows, err = stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 11 {
		t.Fatalf("after insert: %d rows", n)
	}
}

// TestCursorMidStreamClose closes OpenContext cursors partway through their
// result streams — one streaming through a nested-loop join with live RSS
// scans, one mid merge-join over sorted temporary lists — and checks the
// lifecycle invariants: every scan and lock is released, and LastStats
// reports the rows streamed up to the close.
func TestCursorMidStreamClose(t *testing.T) {
	testutil.AssertNoLeaks(t)
	scenarios := []struct {
		name   string
		engine systemr.Config
		query  string
	}{
		// Default engine: nested-loop join, so the outer scan is a live RSS
		// scan at the moment of the close.
		{"nested-loop", systemr.Config{},
			"SELECT E.NAME, D.DNAME FROM EMP E, DEPT D WHERE E.DNO = D.DNO"},
		// Merge-only engine with ORDER BY: the close lands mid merge-join
		// and mid sort-result, releasing temporary lists.
		{"merge-join-sort", systemr.Config{MergeOnly: true},
			"SELECT E.NAME, D.DNAME FROM EMP E, DEPT D WHERE E.DNO = D.DNO ORDER BY E.NAME"},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			db := workload.NewEmpDB(workload.EmpConfig{Emps: 300, Depts: 30, Jobs: 4, Engine: sc.engine})
			stmt, err := db.Prepare(sc.query)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := stmt.OpenContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			const streamed = 7
			for i := 0; i < streamed; i++ {
				if _, ok, err := rows.Next(); err != nil || !ok {
					t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
				}
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("mid-stream close: %v", err)
			}
			if n := rss.OpenScans(); n != 0 {
				t.Fatalf("%d RSI scans still open after mid-stream close", n)
			}
			if n := db.Locks().Outstanding(); n != 0 {
				t.Fatalf("%d locks still held after mid-stream close", n)
			}
			st := db.LastStats()
			if st.Rows != streamed {
				t.Fatalf("LastStats.Rows = %d, want %d (rows streamed before close)", st.Rows, streamed)
			}
			if st.RSICalls == 0 {
				t.Fatalf("LastStats missing measured work: %+v", st)
			}
			// The database is fully usable afterwards, including writes.
			if _, err := db.Exec("INSERT INTO EMP VALUES ('X', 1, 1, 1.0, 0, 9999)"); err != nil {
				t.Fatalf("write after mid-stream close: %v", err)
			}
		})
	}
}

// A second Close is a no-op: it returns nil and must not republish the
// cursor's statistics over LastStats published by statements run in
// between.
func TestRowsCloseIdempotent(t *testing.T) {
	testutil.AssertNoLeaks(t)
	db := newEmpDeptJobDB(t)
	stmt, err := db.Prepare("SELECT NAME FROM EMP WHERE DNO = 3")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rows.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	cursorStats := db.LastStats()

	// Run another statement, then re-close the drained cursor.
	if _, err := db.Query("SELECT NAME, SAL, DNO, JOB FROM EMP"); err != nil {
		t.Fatal(err)
	}
	fullScan := db.LastStats()
	if fullScan == cursorStats {
		t.Fatalf("full scan stats %+v indistinguishable from cursor stats", fullScan)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if got := db.LastStats(); got != fullScan {
		t.Fatalf("second Close republished stats: got %+v, want %+v", got, fullScan)
	}

	// Locks released exactly once: a writer proceeds, and the scan-leak
	// accounting registered above stays balanced.
	if _, err := db.Exec("UPDATE EMP SET SAL = SAL WHERE DNO = 3"); err != nil {
		t.Fatalf("write after double close: %v", err)
	}
}

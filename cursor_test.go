package systemr_test

import (
	"testing"
)

func TestCursorStreaming(t *testing.T) {
	db := newEmpDeptJobDB(t)
	stmt, err := db.Prepare("SELECT NAME, SAL FROM EMP WHERE DNO = 3 ORDER BY SAL")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns()) != 2 {
		t.Fatalf("columns: %v", rows.Columns())
	}
	count := 0
	prev := -1.0
	for {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		sal := row[1].(float64)
		if sal < prev {
			t.Fatal("cursor rows out of order")
		}
		prev = sal
	}
	if count != 10 {
		t.Fatalf("streamed %d rows", count)
	}
	rows.Close() // idempotent after drain

	// Early close releases locks: a writer must be able to proceed.
	rows, err = stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := rows.Next(); !ok {
		t.Fatal("expected at least one row")
	}
	rows.Close()
	if _, err := db.Exec("INSERT INTO EMP VALUES ('W', 3, 5, 1.0)"); err != nil {
		t.Fatalf("write after cursor close: %v", err)
	}

	// Re-open still works (plans are reusable).
	rows, err = stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 11 {
		t.Fatalf("after insert: %d rows", n)
	}
}

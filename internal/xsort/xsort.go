// Package xsort is the sorting component of Section 5: it sorts tuple
// streams "into a temporary list" through the buffer pool, with run
// generation bounded by the buffer size and multi-pass merging, so that a
// sort's measured page I/O corresponds to the optimizer's C-sort model
// (write + read of TEMPPAGES per pass).
package xsort

import (
	"fmt"
	"sort"

	"systemr/internal/governor"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// Input supplies the rows to sort, one per call; ok=false ends the stream.
type Input func() (value.Row, bool, error)

// Config tunes a sort.
type Config struct {
	Pool *storage.BufferPool
	Disk *storage.Disk
	// Keys are the column positions to order by; Desc flips per-key
	// direction (shorter Desc = ascending for the remainder).
	Keys []int
	Desc []bool
	// BufferBytes bounds in-memory run size; 0 derives it from the pool
	// capacity (the paper's sorts were bounded by the same buffer).
	BufferBytes int
	// CountRSI, when set, charges one RSI call per tuple written into the
	// temporary list and one per tuple delivered from it, mirroring the cost
	// model's CPU term for sorts.
	CountRSI bool
	// Stmt, when non-nil, is the statement's own I/O accumulator: the sort's
	// temp-page writes, re-fetches, and RSI charges count into it in addition
	// to the pool's DB-global aggregate.
	Stmt *storage.IOStats
	// Budget, when non-nil, is the statement's execution governor; merge
	// passes and temp-list delivery tick it so a canceled statement aborts
	// even after its input scans have drained.
	Budget *governor.Budget
}

// Result streams the sorted rows from the temporary list.
type Result struct {
	cfg     Config
	readers []*runReader
	heap    []heapEntry
	rows    int
	pages   []storage.PageID
	closed  bool
}

type run struct {
	seg   *storage.Segment
	pages []storage.PageID
	rows  int
}

type runReader struct {
	disk   *storage.Disk
	io     storage.StmtIO
	budget *governor.Budget
	pages  []storage.PageID
	pi     int
	slot   uint16
	page   *storage.Page
}

type heapEntry struct {
	row value.Row
	src int
}

// Sort consumes the input, sorts it, and returns a Result for streaming the
// ordered rows. The temporary list always materializes through the buffer
// pool — System R sorts into temporary lists even when the data would fit in
// memory.
func Sort(cfg Config, in Input) (*Result, error) {
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = cfg.Pool.Capacity() * storage.PageSize
	}
	fanin := cfg.Pool.Capacity() - 1
	if fanin < 2 {
		fanin = 2
	}

	// Phase 1: run generation.
	var runs []*run
	var buf []value.Row
	bufBytes := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sortRows(buf, cfg.Keys, cfg.Desc)
		r, err := writeRun(cfg, buf, true)
		if err != nil {
			return err
		}
		runs = append(runs, r)
		buf = buf[:0]
		bufBytes = 0
		return nil
	}
	for {
		if err := cfg.Budget.Tick(); err != nil {
			return nil, err
		}
		row, ok, err := in()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		buf = append(buf, row)
		bufBytes += rowBytes(row)
		if bufBytes >= cfg.BufferBytes {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		// Empty input: still produce an (empty) result.
		return &Result{cfg: cfg}, nil
	}

	// Phase 2: reduce the run count to the merge fan-in with intermediate
	// passes (each pass rewrites the merged rows into a new run).
	for len(runs) > fanin {
		var next []*run
		for i := 0; i < len(runs); i += fanin {
			end := i + fanin
			if end > len(runs) {
				end = len(runs)
			}
			merged, err := mergeRuns(cfg, runs[i:end])
			if err != nil {
				return nil, err
			}
			next = append(next, merged)
		}
		runs = next
	}

	// Phase 3: stream the final merge.
	res := &Result{cfg: cfg}
	for _, r := range runs {
		res.pages = append(res.pages, r.pages...)
		rd := newRunReader(cfg, r)
		res.readers = append(res.readers, rd)
		row, ok, err := rd.next()
		if err != nil {
			return nil, err
		}
		if ok {
			res.push(heapEntry{row: row, src: len(res.readers) - 1})
		}
	}
	return res, nil
}

func rowBytes(r value.Row) int { return len(storage.EncodeRow(r)) }

func sortRows(rows []value.Row, keys []int, desc []bool) {
	sort.SliceStable(rows, func(i, j int) bool {
		return value.CompareRows(rows[i], rows[j], keys, desc) < 0
	})
}

// writeRun materializes sorted rows into a fresh temp segment, charging page
// writes (and optionally RSI calls) to the pool.
func writeRun(cfg Config, rows []value.Row, countRSI bool) (*run, error) {
	seg := storage.NewSegment(-1, cfg.Disk)
	for _, row := range rows {
		if err := cfg.Budget.Tick(); err != nil {
			return nil, err
		}
		if _, err := seg.Insert(1, storage.EncodeRow(row)); err != nil {
			return nil, fmt.Errorf("xsort: writing temporary list: %w", err)
		}
		if countRSI && cfg.CountRSI {
			cfg.io().AddRSICall()
		}
	}
	pages := seg.Pages()
	for _, p := range pages {
		cfg.io().MarkWritten(p)
	}
	return &run{seg: seg, pages: pages, rows: len(rows)}, nil
}

// mergeRuns merges several sorted runs into one new run (an intermediate
// sort pass: pages of the inputs are fetched, pages of the output written).
func mergeRuns(cfg Config, in []*run) (*run, error) {
	readers := make([]*runReader, len(in))
	var heap []heapEntry
	push := func(e heapEntry) { heap = heapPush(heap, e, cfg.Keys, cfg.Desc) }
	for i, r := range in {
		readers[i] = newRunReader(cfg, r)
		row, ok, err := readers[i].next()
		if err != nil {
			return nil, err
		}
		if ok {
			push(heapEntry{row: row, src: i})
		}
	}
	var out []value.Row
	for len(heap) > 0 {
		if err := cfg.Budget.Tick(); err != nil {
			return nil, err
		}
		var e heapEntry
		heap, e = heapPop(heap, cfg.Keys, cfg.Desc)
		out = append(out, e.row)
		row, ok, err := readers[e.src].next()
		if err != nil {
			return nil, err
		}
		if ok {
			heap = heapPush(heap, heapEntry{row: row, src: e.src}, cfg.Keys, cfg.Desc)
		}
	}
	for _, r := range in {
		releaseRun(cfg, r)
	}
	return writeRun(cfg, out, false)
}

func releaseRun(cfg Config, r *run) {
	for _, p := range r.pages {
		cfg.Pool.Evict(p)
	}
}

// io returns the statement-scoped accounting view of the pool.
func (cfg Config) io() storage.StmtIO { return cfg.Pool.View(cfg.Stmt) }

func newRunReader(cfg Config, r *run) *runReader {
	return &runReader{disk: cfg.Disk, io: cfg.io(), budget: cfg.Budget, pages: r.pages}
}

// next reads the following row of the run, fetching temp pages through the
// buffer pool.
func (rd *runReader) next() (value.Row, bool, error) {
	for {
		if err := rd.budget.Tick(); err != nil {
			return nil, false, err
		}
		if rd.page == nil || rd.slot >= rd.page.NumSlots() {
			if rd.pi >= len(rd.pages) {
				return nil, false, nil
			}
			page, err := rd.io.Fetch(rd.pages[rd.pi])
			if err != nil {
				return nil, false, err
			}
			rd.page = page
			rd.pi++
			rd.slot = 0
			continue
		}
		rec, _, ok := rd.page.Record(rd.slot)
		rd.slot++
		if !ok {
			continue
		}
		row, err := storage.DecodeRow(rec)
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
}

// Binary min-heap over heapEntry, ordered by the sort keys then source index
// (stability across runs).

func heapLess(a, b heapEntry, keys []int, desc []bool) bool {
	if c := value.CompareRows(a.row, b.row, keys, desc); c != 0 {
		return c < 0
	}
	return a.src < b.src
}

func heapPush(h []heapEntry, e heapEntry, keys []int, desc []bool) []heapEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(h[i], h[p], keys, desc) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func heapPop(h []heapEntry, keys []int, desc []bool) ([]heapEntry, heapEntry) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && heapLess(h[l], h[smallest], keys, desc) {
			smallest = l
		}
		if r < len(h) && heapLess(h[r], h[smallest], keys, desc) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return h, top
}

func (res *Result) push(e heapEntry) {
	res.heap = heapPush(res.heap, e, res.cfg.Keys, res.cfg.Desc)
}

// Next returns the next row in sorted order.
func (res *Result) Next() (value.Row, bool, error) {
	if len(res.heap) == 0 {
		return nil, false, nil
	}
	if err := res.cfg.Budget.Tick(); err != nil {
		return nil, false, err
	}
	var e heapEntry
	res.heap, e = heapPop(res.heap, res.cfg.Keys, res.cfg.Desc)
	row, ok, err := res.readers[e.src].next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		res.push(heapEntry{row: row, src: e.src})
	}
	res.rows++
	if res.cfg.CountRSI {
		res.cfg.io().AddRSICall()
	}
	return e.row, true, nil
}

// Close releases the temporary pages from the buffer pool.
func (res *Result) Close() {
	if res.closed {
		return
	}
	res.closed = true
	for _, p := range res.pages {
		res.cfg.Pool.Evict(p)
	}
}

package xsort

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"systemr/internal/governor"
	"systemr/internal/storage"
	"systemr/internal/value"
)

func sliceInput(rows []value.Row) Input {
	i := 0
	return func() (value.Row, bool, error) {
		if i >= len(rows) {
			return nil, false, nil
		}
		r := rows[i]
		i++
		return r, true, nil
	}
}

func drain(t *testing.T, res *Result) []value.Row {
	t.Helper()
	var out []value.Row
	for {
		row, ok, err := res.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

func randomRows(rnd *rand.Rand, n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(rnd.Intn(50))),
			value.NewInt(int64(i)),
			value.NewString(string(rune('a' + rnd.Intn(26)))),
		}
	}
	return rows
}

func newEnv(capacity int) (Config, *storage.IOStats) {
	disk := storage.NewDisk()
	stats := &storage.IOStats{}
	pool := storage.NewBufferPool(disk, capacity, stats)
	return Config{Pool: pool, Disk: disk}, stats
}

func TestSortMatchesStdlib(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rnd.Intn(2000)
		rows := randomRows(rnd, n)
		want := make([]value.Row, n)
		copy(want, rows)
		sort.SliceStable(want, func(i, j int) bool {
			return value.CompareRows(want[i], want[j], []int{0, 2}, nil) < 0
		})

		cfg, _ := newEnv(4) // tiny buffer forces spills and merge passes
		cfg.Keys = []int{0, 2}
		res, err := Sort(cfg, sliceInput(rows))
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, res)
		res.Close()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if value.CompareRows(got[i], want[i], []int{0, 2}, nil) != 0 {
				t.Fatalf("trial %d: row %d differs: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSortDescending(t *testing.T) {
	cfg, _ := newEnv(8)
	cfg.Keys = []int{0}
	cfg.Desc = []bool{true}
	rows := randomRows(rand.New(rand.NewSource(4)), 300)
	res, err := Sort(cfg, sliceInput(rows))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, res)
	for i := 1; i < len(got); i++ {
		if value.Compare(got[i-1][0], got[i][0]) < 0 {
			t.Fatalf("row %d not descending: %v then %v", i, got[i-1], got[i])
		}
	}
}

func TestSortStableWithinEqualKeys(t *testing.T) {
	// Column 1 is the original position; equal keys must keep input order.
	cfg, _ := newEnv(4)
	cfg.Keys = []int{0}
	rows := randomRows(rand.New(rand.NewSource(5)), 1000)
	res, err := Sort(cfg, sliceInput(rows))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, res)
	for i := 1; i < len(got); i++ {
		if value.Compare(got[i-1][0], got[i][0]) == 0 && got[i-1][1].Int > got[i][1].Int {
			t.Fatalf("instability at %d: serial %d before %d", i, got[i-1][1].Int, got[i][1].Int)
		}
	}
}

func TestSortEmptyInput(t *testing.T) {
	cfg, _ := newEnv(4)
	cfg.Keys = []int{0}
	res, err := Sort(cfg, sliceInput(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, res); len(rows) != 0 {
		t.Fatalf("empty input produced %d rows", len(rows))
	}
}

func TestSortAccounting(t *testing.T) {
	cfg, stats := newEnv(4)
	cfg.Keys = []int{0}
	cfg.CountRSI = true
	const n = 2000
	rows := randomRows(rand.New(rand.NewSource(6)), n)
	res, err := Sort(cfg, sliceInput(rows))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	res.Close()
	s := stats.Snapshot()
	// One RSI call per tuple written into the temp list plus one per tuple
	// read out of the final merge.
	if s.RSICalls != 2*n {
		t.Fatalf("RSI calls = %d, want %d", s.RSICalls, 2*n)
	}
	if s.PagesWritten == 0 || s.PageFetches == 0 {
		t.Fatalf("sort must do page I/O: %+v", s)
	}
	// With a 4-page buffer and ~2000 small rows the data spills across
	// multiple runs; total I/O stays within a small multiple of the data
	// size (multi-pass merges).
	if s.PageFetches > 10*s.PagesWritten {
		t.Fatalf("suspicious fetch/write ratio: %+v", s)
	}
}

func TestSortSinglePassWhenFitsBuffer(t *testing.T) {
	cfg, stats := newEnv(64)
	cfg.Keys = []int{0}
	rows := randomRows(rand.New(rand.NewSource(7)), 100)
	res, err := Sort(cfg, sliceInput(rows))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	s := stats.Snapshot()
	// Everything fits one run: pages written once, read once.
	if s.PagesWritten != s.PageFetches {
		t.Fatalf("single-run sort should write and read the same pages: %+v", s)
	}
}

func TestResultCloseEvictsTempPages(t *testing.T) {
	cfg, _ := newEnv(16)
	cfg.Keys = []int{0}
	rows := randomRows(rand.New(rand.NewSource(8)), 500)
	res, err := Sort(cfg, sliceInput(rows))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	res.Close()
	for _, p := range res.pages {
		if cfg.Pool.Resident(p) {
			t.Fatalf("temp page %d still resident after Close", p)
		}
	}
	res.Close() // idempotent
}

func TestSortMultiPassMerge(t *testing.T) {
	// Capacity 3 → fanin 2: many runs force intermediate merge passes.
	cfg, stats := newEnv(3)
	cfg.Keys = []int{0}
	cfg.BufferBytes = 256 // tiny runs
	rows := randomRows(rand.New(rand.NewSource(9)), 3000)
	res, err := Sort(cfg, sliceInput(rows))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, res)
	res.Close()
	if len(got) != 3000 {
		t.Fatalf("rows: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if value.Compare(got[i-1][0], got[i][0]) > 0 {
			t.Fatalf("unsorted at %d", i)
		}
	}
	s := stats.Snapshot()
	// Multi-pass: pages written exceed a single materialization.
	if s.PagesWritten <= s.PageFetches/4 {
		t.Logf("io: %+v", s)
	}
	if s.PagesWritten == 0 {
		t.Fatal("expected temp writes")
	}
}

func TestSortInputErrorPropagates(t *testing.T) {
	cfg, _ := newEnv(4)
	cfg.Keys = []int{0}
	calls := 0
	in := func() (value.Row, bool, error) {
		calls++
		if calls > 10 {
			return nil, false, errInput
		}
		return value.Row{value.NewInt(int64(calls))}, true, nil
	}
	if _, err := Sort(cfg, in); err == nil {
		t.Fatal("input error must propagate")
	}
}

var errInput = errTest("input broke")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestSortDescTailDefaultsAscending(t *testing.T) {
	cfg, _ := newEnv(8)
	cfg.Keys = []int{0, 1}
	cfg.Desc = []bool{true} // second key defaults ascending
	rows := randomRows(rand.New(rand.NewSource(10)), 400)
	res, err := Sort(cfg, sliceInput(rows))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, res)
	for i := 1; i < len(got); i++ {
		c0 := value.Compare(got[i-1][0], got[i][0])
		if c0 < 0 {
			t.Fatalf("first key not descending at %d", i)
		}
		if c0 == 0 && value.Compare(got[i-1][1], got[i][1]) > 0 {
			t.Fatalf("second key not ascending at %d", i)
		}
	}
}

// A canceled statement aborts during run generation: the phase-1 input
// loop ticks the governor, so the sort stops within one check interval
// instead of draining its whole input first.
func TestSortCanceledDuringRunGeneration(t *testing.T) {
	cfg, _ := newEnv(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Budget = governor.New(ctx, governor.Limits{}, nil)
	cfg.Keys = []int{0}
	cfg.BufferBytes = 256 // force spilled runs
	rnd := rand.New(rand.NewSource(7))
	rows := randomRows(rnd, 500)
	consumed := 0
	in := func() (value.Row, bool, error) {
		if consumed >= len(rows) {
			return nil, false, nil
		}
		r := rows[consumed]
		consumed++
		return r, true, nil
	}
	res, err := Sort(cfg, in)
	if err == nil {
		res.Close()
		t.Fatal("sort under canceled context succeeded")
	}
	if !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if consumed >= len(rows) {
		t.Fatalf("input fully drained (%d rows) despite canceled budget", consumed)
	}
}

// A page-fetch budget aborts the sort while it reads spilled runs back:
// the merge passes and the run readers fetch temp pages through the
// governed loops, so ErrBudgetExceeded surfaces mid-sort, not after.
func TestSortBudgetExceededDuringSpillReads(t *testing.T) {
	cfg, stats := newEnv(4)
	cfg.Keys = []int{0}
	cfg.BufferBytes = 256 // many runs -> intermediate merge passes
	cfg.Budget = governor.New(context.Background(), governor.Limits{MaxPageFetches: 2}, stats)
	rnd := rand.New(rand.NewSource(8))
	res, err := Sort(cfg, sliceInput(randomRows(rnd, 400)))
	if err == nil {
		// If the runs fit the first merge, the budget trips on delivery.
		defer res.Close()
		for err == nil {
			_, ok, nerr := res.Next()
			if nerr != nil {
				err = nerr
			} else if !ok {
				break
			}
		}
	}
	if !errors.Is(err, governor.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

package rss

import (
	"errors"
	"strings"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/storage"
	"systemr/internal/value"
)

type env struct {
	disk  *storage.Disk
	stats *storage.IOStats
	pool  *storage.BufferPool
	cat   *catalog.Catalog
}

func newEnv(t *testing.T, bufferPages int) *env {
	t.Helper()
	disk := storage.NewDisk()
	stats := &storage.IOStats{}
	return &env{
		disk:  disk,
		stats: stats,
		pool:  storage.NewBufferPool(disk, bufferPages, stats),
		cat:   catalog.New(disk),
	}
}

// newEmp creates EMP(DNO INT, SAL INT, NAME STR) with n rows: DNO = i%10,
// SAL = i, NAME = "E<i>".
func (e *env) newEmp(t *testing.T, n int) *catalog.Table {
	t.Helper()
	tab, err := e.cat.CreateTable("EMP", []catalog.Column{
		{Name: "DNO", Type: value.KindInt},
		{Name: "SAL", Type: value.KindInt},
		{Name: "NAME", Type: value.KindString},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, _, err := Insert(tab, value.Row{
			value.NewInt(int64(i % 10)),
			value.NewInt(int64(i)),
			value.NewString("E" + strings.Repeat("x", i%5)),
		}, storage.FrozenXID, storage.NoPrevTID, e.disk)
		if err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func drainScan(t *testing.T, s Scan) []value.Row {
	t.Helper()
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var out []value.Row
	for {
		row, _, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

func TestSegmentScanAll(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 100)
	rows := drainScan(t, &SegmentScan{Table: tab, Pool: e.pool})
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	if e.stats.Snapshot().RSICalls != 100 {
		t.Fatalf("RSI calls = %d", e.stats.Snapshot().RSICalls)
	}
}

func TestSegmentScanSargsFilterWithoutRSICalls(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 100)
	sargs := SargSet{{Disjuncts: [][]SargTerm{{{Col: 0, Op: value.OpEq, Val: value.NewInt(3)}}}}}
	rows := drainScan(t, &SegmentScan{Table: tab, Pool: e.pool, Sargs: sargs})
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The SARG-rejected tuples must not cost RSI calls — the paper's point.
	if got := e.stats.Snapshot().RSICalls; got != 10 {
		t.Fatalf("RSI calls = %d, want 10", got)
	}
}

func TestSargDNFSemantics(t *testing.T) {
	row := value.Row{value.NewInt(5), value.NewInt(50)}
	eq5 := SargTerm{Col: 0, Op: value.OpEq, Val: value.NewInt(5)}
	lt10 := SargTerm{Col: 1, Op: value.OpLt, Val: value.NewInt(10)}
	gt40 := SargTerm{Col: 1, Op: value.OpGt, Val: value.NewInt(40)}

	s := Sarg{Disjuncts: [][]SargTerm{{eq5, lt10}, {eq5, gt40}}}
	if !s.Match(row) {
		t.Fatal("second disjunct should match")
	}
	s = Sarg{Disjuncts: [][]SargTerm{{eq5, lt10}}}
	if s.Match(row) {
		t.Fatal("conjunct with failing term must not match")
	}
	if !(Sarg{}).Match(row) {
		t.Fatal("empty sarg is always true")
	}
	set := SargSet{
		{Disjuncts: [][]SargTerm{{eq5}}},
		{Disjuncts: [][]SargTerm{{gt40}}},
	}
	if !set.Match(row) {
		t.Fatal("conjunction of matching DNFs must match")
	}
	set = append(set, Sarg{Disjuncts: [][]SargTerm{{lt10}}})
	if set.Match(row) {
		t.Fatal("one failing DNF fails the set")
	}
	if (SargTerm{Col: 9, Op: value.OpEq, Val: value.NewInt(1)}).Match(row) {
		t.Fatal("out-of-range column must not match")
	}
}

func TestIndexScanRange(t *testing.T) {
	e := newEnv(t, 16)
	e.newEmp(t, 100)
	if _, err := e.cat.CreateIndex("EMP_SAL", "EMP", []string{"SAL"}, true, false); err != nil {
		t.Fatal(err)
	}
	ix, _ := e.cat.Index("EMP_SAL")

	scan := &IndexScan{
		Index: ix, Pool: e.pool,
		Lo: []value.Value{value.NewInt(10)}, LoInc: true,
		Hi: []value.Value{value.NewInt(19)}, HiInc: true,
	}
	rows := drainScan(t, scan)
	if len(rows) != 10 {
		t.Fatalf("closed range: %d rows", len(rows))
	}
	for i, r := range rows {
		if r[1].Int != int64(10+i) {
			t.Fatalf("row %d out of key order: %v", i, r)
		}
	}

	scan = &IndexScan{
		Index: ix, Pool: e.pool,
		Lo: []value.Value{value.NewInt(10)}, LoInc: false,
		Hi: []value.Value{value.NewInt(19)}, HiInc: false,
	}
	if rows := drainScan(t, scan); len(rows) != 8 {
		t.Fatalf("open range: %d rows", len(rows))
	}

	scan = &IndexScan{Index: ix, Pool: e.pool, Hi: []value.Value{value.NewInt(4)}, HiInc: true}
	if rows := drainScan(t, scan); len(rows) != 5 {
		t.Fatalf("unbounded low: %d rows", len(rows))
	}

	scan = &IndexScan{Index: ix, Pool: e.pool, Lo: []value.Value{value.NewInt(95)}, LoInc: true}
	if rows := drainScan(t, scan); len(rows) != 5 {
		t.Fatalf("unbounded high: %d rows", len(rows))
	}
}

func TestIndexScanDuplicatesAndSargs(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 100)
	if _, err := e.cat.CreateIndex("EMP_DNO", "EMP", []string{"DNO"}, false, false); err != nil {
		t.Fatal(err)
	}
	ix, _ := e.cat.Index("EMP_DNO")
	scan := &IndexScan{
		Index: ix, Pool: e.pool,
		Lo: []value.Value{value.NewInt(3)}, LoInc: true,
		Hi: []value.Value{value.NewInt(3)}, HiInc: true,
		Sargs: SargSet{{Disjuncts: [][]SargTerm{{{Col: 1, Op: value.OpGe, Val: value.NewInt(50)}}}}},
	}
	rows := drainScan(t, scan)
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r[0].Int != 3 || r[1].Int < 50 {
			t.Fatalf("bad row %v", r)
		}
	}
	_ = tab
}

func TestIndexScanSkipsDeleted(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 20)
	e.cat.CreateIndex("EMP_SAL", "EMP", []string{"SAL"}, true, false)
	ix, _ := e.cat.Index("EMP_SAL")

	// Delete the tuple with SAL=5 via a scan (stale index entries must be
	// skipped even before index maintenance runs... here we also maintain).
	scan := &SegmentScan{Table: tab, Pool: e.pool}
	scan.Open()
	for {
		row, tid, ok, _ := scan.Next()
		if !ok {
			break
		}
		if row[1].Int == 5 {
			if err := MarkDeleted(tab, tid, 1, e.disk); err != nil {
				t.Fatal(err)
			}
		}
	}
	scan.Close()
	rows := drainScan(t, &IndexScan{Index: ix, Pool: e.pool})
	if len(rows) != 19 {
		t.Fatalf("got %d rows after delete", len(rows))
	}
	for _, r := range rows {
		if r[1].Int == 5 {
			t.Fatal("deleted tuple returned")
		}
	}
}

func TestInsertValidation(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 1)
	if _, _, err := Insert(tab, value.Row{value.NewInt(1)}, storage.FrozenXID, storage.NoPrevTID, e.disk); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, _, err := Insert(tab, value.Row{value.NewString("x"), value.NewInt(1), value.NewString("n")}, storage.FrozenXID, storage.NoPrevTID, e.disk); err == nil {
		t.Fatal("type mismatch must fail")
	}
	// Int widens into float columns.
	tab2, _ := e.cat.CreateTable("F", []catalog.Column{{Name: "X", Type: value.KindFloat}}, "")
	if _, _, err := Insert(tab2, value.Row{value.NewInt(3)}, storage.FrozenXID, storage.NoPrevTID, e.disk); err != nil {
		t.Fatal(err)
	}
	rows := drainScan(t, &SegmentScan{Table: tab2, Pool: e.pool})
	if rows[0][0].Kind != value.KindFloat || rows[0][0].Float != 3 {
		t.Fatalf("widening failed: %v", rows[0])
	}
	// NULLs store into any column.
	if _, _, err := Insert(tab2, value.Row{value.Null()}, storage.FrozenXID, storage.NoPrevTID, e.disk); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueIndexRejectsDuplicates(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 10)
	if _, err := e.cat.CreateIndex("EMP_SAL", "EMP", []string{"SAL"}, true, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Insert(tab, value.Row{value.NewInt(0), value.NewInt(5), value.NewString("dup")}, storage.FrozenXID, storage.NoPrevTID, e.disk); err == nil {
		t.Fatal("unique violation must fail")
	}
	// A distinct key still inserts and maintains the index.
	if _, _, err := Insert(tab, value.Row{value.NewInt(0), value.NewInt(999), value.NewString("new")}, storage.FrozenXID, storage.NoPrevTID, e.disk); err != nil {
		t.Fatal(err)
	}
	ix, _ := e.cat.Index("EMP_SAL")
	if ix.Tree.Len() != 11 {
		t.Fatalf("index has %d entries", ix.Tree.Len())
	}
}

// TestClearDeletedUndoesMark: ClearDeleted brings a delete-marked version
// back at its original TID, visible to both scan types again. MVCC deletes
// leave index entries in place (visibility filters them out).
func TestClearDeletedUndoesMark(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 10)
	if _, err := e.cat.CreateIndex("EMP_SAL", "EMP", []string{"SAL"}, true, false); err != nil {
		t.Fatal(err)
	}
	ix, _ := e.cat.Index("EMP_SAL")
	tid, _, err := Insert(tab, value.Row{value.NewInt(3), value.NewInt(500), value.NewString("victim")}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	if err != nil {
		t.Fatal(err)
	}
	const xid = 7
	if err := MarkDeleted(tab, tid, xid, e.disk); err != nil {
		t.Fatal(err)
	}
	// The index entry stays; scans skip the dead version.
	if ix.Tree.Len() != 11 {
		t.Fatalf("index has %d entries after delete mark, want 11", ix.Tree.Len())
	}
	if rows := drainScan(t, &IndexScan{Index: ix, Pool: e.pool}); len(rows) != 10 {
		t.Fatalf("index scan sees %d rows after delete mark, want 10", len(rows))
	}
	if err := MarkDeleted(tab, tid, xid, e.disk); err == nil {
		t.Fatal("re-marking by the same txn must fail")
	}
	if err := MarkDeleted(tab, tid, 9, e.disk); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("marking an already-deleted version = %v, want write conflict", err)
	}
	if err := ClearDeleted(tab, tid, xid, e.disk); err != nil {
		t.Fatal(err)
	}
	if err := ClearDeleted(tab, tid, xid, e.disk); err == nil {
		t.Fatal("clearing a live version must fail")
	}
	if rows := drainScan(t, &IndexScan{Index: ix, Pool: e.pool}); len(rows) != 11 {
		t.Fatalf("index scan sees %d rows after clear, want 11", len(rows))
	}
	h, got, rel, ok, err := e.disk.Page(tid.Page).ReadVersioned(tid.Slot)
	if err != nil || !ok || rel != tab.ID {
		t.Fatalf("restored version unreadable: ok=%v rel=%d err=%v", ok, rel, err)
	}
	if h.Xmax != 0 {
		t.Fatalf("xmax = %d after clear, want 0", h.Xmax)
	}
	if len(got) != 3 || got[1].Int != 500 || got[2].Str != "victim" {
		t.Fatalf("restored row = %v", got)
	}
}

// TestRemoveReclaimsVersion: Remove physically deletes a version and its
// index entries — the undo path for an aborted insert, and vacuum's tool.
func TestRemoveReclaimsVersion(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 10)
	if _, err := e.cat.CreateIndex("EMP_SAL", "EMP", []string{"SAL"}, true, false); err != nil {
		t.Fatal(err)
	}
	ix, _ := e.cat.Index("EMP_SAL")
	tid, row, err := Insert(tab, value.Row{value.NewInt(3), value.NewInt(500), value.NewString("victim")}, 7, storage.NoPrevTID, e.disk)
	if err != nil {
		t.Fatal(err)
	}
	if err := Remove(tab, tid, row, e.disk); err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 10 {
		t.Fatalf("index has %d entries after remove, want 10", ix.Tree.Len())
	}
	if _, _, _, ok, _ := e.disk.Page(tid.Page).ReadVersioned(tid.Slot); ok {
		t.Fatal("removed version still readable")
	}
	if err := Remove(tab, tid, row, e.disk); err == nil {
		t.Fatal("double remove must fail")
	}
}

// TestVacuumTableReclaimsDeadVersions: versions whose deleter committed
// before the horizon are physically reclaimed; live and recently-dead
// versions survive.
func TestVacuumTableReclaimsDeadVersions(t *testing.T) {
	e := newEnv(t, 16)
	tab := e.newEmp(t, 10)
	if _, err := e.cat.CreateIndex("EMP_SAL", "EMP", []string{"SAL"}, true, false); err != nil {
		t.Fatal(err)
	}
	ix, _ := e.cat.Index("EMP_SAL")

	// Mark SAL=3 deleted by txn 5 (old) and SAL=4 deleted by txn 9 (recent).
	scan := &SegmentScan{Table: tab, Pool: e.pool}
	scan.Open()
	for {
		row, tid, ok, _ := scan.Next()
		if !ok {
			break
		}
		switch row[1].Int {
		case 3:
			if err := MarkDeleted(tab, tid, 5, e.disk); err != nil {
				t.Fatal(err)
			}
		case 4:
			if err := MarkDeleted(tab, tid, 9, e.disk); err != nil {
				t.Fatal(err)
			}
		}
	}
	scan.Close()

	var chains int
	reclaimed, err := VacuumTable(tab, e.disk, 8, func(int) { chains++ })
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 1 {
		t.Fatalf("reclaimed %d versions, want 1 (only xmax=5 < horizon 8)", reclaimed)
	}
	if chains != 8 {
		t.Fatalf("observed %d live chains, want 8", chains)
	}
	// The reclaimed version's index entry is gone; the recent one's remains.
	if ix.Tree.Len() != 9 {
		t.Fatalf("index has %d entries after vacuum, want 9", ix.Tree.Len())
	}
	if rows := drainScan(t, &SegmentScan{Table: tab, Pool: e.pool}); len(rows) != 8 {
		t.Fatalf("scan sees %d rows, want 8", len(rows))
	}
}

func TestSegmentScanTouchesEveryPageOnce(t *testing.T) {
	e := newEnv(t, 1000)
	tab := e.newEmp(t, 2000)
	e.stats.Reset()
	e.pool.Flush()
	drainScan(t, &SegmentScan{Table: tab, Pool: e.pool})
	s := e.stats.Snapshot()
	want := int64(tab.Segment.NumPages())
	if s.PageFetches != want {
		t.Fatalf("segment scan fetched %d pages, segment has %d", s.PageFetches, want)
	}
}

func TestClosedScanErrors(t *testing.T) {
	e := newEnv(t, 4)
	tab := e.newEmp(t, 5)
	s := &SegmentScan{Table: tab, Pool: e.pool}
	if _, _, _, err := s.Next(); err == nil {
		t.Fatal("Next before Open must error")
	}
	e.cat.CreateIndex("EMP_SAL", "EMP", []string{"SAL"}, true, false)
	ix, _ := e.cat.Index("EMP_SAL")
	is := &IndexScan{Index: ix, Pool: e.pool}
	if _, _, _, err := is.Next(); err == nil {
		t.Fatal("index Next before Open must error")
	}
}

func TestSargAnd(t *testing.T) {
	eq := SargTerm{Col: 0, Op: value.OpEq, Val: value.NewInt(1)}
	gt := SargTerm{Col: 1, Op: value.OpGt, Val: value.NewInt(5)}
	s := Sarg{}.And(eq)
	if len(s.Disjuncts) != 1 || len(s.Disjuncts[0]) != 1 {
		t.Fatalf("And on empty: %+v", s)
	}
	two := Sarg{Disjuncts: [][]SargTerm{{eq}, {gt}}}
	conj := two.And(gt)
	if len(conj.Disjuncts) != 2 || len(conj.Disjuncts[0]) != 2 || len(conj.Disjuncts[1]) != 2 {
		t.Fatalf("And distributes into every disjunct: %+v", conj)
	}
	row := value.Row{value.NewInt(1), value.NewInt(9)}
	if !conj.Match(row) {
		t.Fatal("conjunction should match")
	}
	if (SargTerm{Col: 0, Op: value.OpEq, Val: value.NewInt(1)}).String() == "" {
		t.Fatal("term renders")
	}
}

// Package rss implements the tuple-oriented Research Storage Interface of
// Section 3: OPEN/NEXT/CLOSE scans over stored relations. Two scan types
// exist, exactly as in the paper —
//
//   - segment scans, which touch every non-empty page of the relation's
//     segment once and return the tuples belonging to the requested relation;
//   - index scans, which walk B-tree leaf pages between optional starting and
//     stopping key values and fetch the matching data tuples in key order.
//
// Both scan types accept search arguments (SARGs): a boolean expression of
// sargable predicates ("column comparison-operator value") in disjunctive
// normal form, applied to each tuple *before* it is returned, so that
// rejected tuples never cost an RSI call — the paper's CPU-saving mechanism.
//
// The RSI is also the MVCC visibility boundary. Heap records are versions
// (storage.VersionHeader + row); both scan types carry the caller's
// storage.Snapshot and return only versions visible to it, so nothing above
// the RSS ever sees an uncommitted or superseded tuple. The write path
// creates versions (Insert), flips delete marks in place (MarkDeleted, with
// first-updater-wins conflict detection → ErrWriteConflict), physically
// undoes them (ClearDeleted, Remove — the transaction layer's rollback
// primitives), and garbage-collects versions no live snapshot can reach
// (VacuumTable).
package rss

import (
	"errors"
	"fmt"
	"sync/atomic"

	"systemr/internal/btree"
	"systemr/internal/catalog"
	"systemr/internal/governor"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// openScans counts currently open RSI scans engine-wide. Leak checks assert
// it returns to zero after every statement, including error and panic paths.
var openScans atomic.Int64

// OpenScans returns the number of RSI scans currently open.
func OpenScans() int64 { return openScans.Load() }

// ErrWriteConflict reports a first-updater-wins conflict: the tuple a
// transaction tried to delete or update already carries another
// transaction's delete mark. Because writers hold exclusive table locks,
// that other transaction has necessarily committed — the row version this
// statement's snapshot saw is stale. Retryable, like lock.ErrDeadlock: roll
// the transaction back and run it again against a fresh snapshot.
var ErrWriteConflict = errors.New("rss: write conflict: tuple concurrently updated or deleted")

// SargTerm is one sargable predicate: column <op> value.
type SargTerm struct {
	Col int
	Op  value.CmpOp
	Val value.Value
}

// Match evaluates the term against a stored row.
func (t SargTerm) Match(row value.Row) bool {
	if t.Col < 0 || t.Col >= len(row) {
		return false
	}
	return t.Op.Apply(row[t.Col], t.Val)
}

// String renders the term for EXPLAIN output.
func (t SargTerm) String() string {
	return fmt.Sprintf("col%d %s %s", t.Col, t.Op, t.Val.SQL())
}

// Sarg is a search argument in disjunctive normal form: the row qualifies if
// every term of at least one disjunct holds. A Sarg with no disjuncts is
// always true.
type Sarg struct {
	Disjuncts [][]SargTerm
}

// And returns the conjunction of s with a single term, distributing it into
// every disjunct (keeps DNF shape).
func (s Sarg) And(t SargTerm) Sarg {
	if len(s.Disjuncts) == 0 {
		return Sarg{Disjuncts: [][]SargTerm{{t}}}
	}
	out := make([][]SargTerm, len(s.Disjuncts))
	for i, d := range s.Disjuncts {
		nd := make([]SargTerm, len(d)+1)
		copy(nd, d)
		nd[len(d)] = t
		out[i] = nd
	}
	return Sarg{Disjuncts: out}
}

// SargSet is a conjunction of search arguments: one DNF per boolean factor,
// all of which a tuple must satisfy.
type SargSet []Sarg

// Match evaluates the conjunction.
func (ss SargSet) Match(row value.Row) bool {
	for _, s := range ss {
		if !s.Match(row) {
			return false
		}
	}
	return true
}

// Match evaluates the DNF against a row.
func (s Sarg) Match(row value.Row) bool {
	if len(s.Disjuncts) == 0 {
		return true
	}
	for _, conj := range s.Disjuncts {
		all := true
		for _, t := range conj {
			if !t.Match(row) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// Scan is the RSI: OPEN positions the scan, each NEXT returns one qualifying
// tuple, CLOSE releases it. Every tuple returned by Next costs one RSI call
// in the shared IOStats.
type Scan interface {
	Open() error
	Next() (value.Row, storage.TID, bool, error)
	Close() error
}

// SegmentScan finds all tuples of a relation by examining every page of its
// segment — including pages that hold only other relations' tuples, which is
// why its cost is TCARD/P.
type SegmentScan struct {
	Table *catalog.Table
	Pool  *storage.BufferPool
	Sargs SargSet
	// Stmt, when non-nil, is the statement's own I/O accumulator: the scan's
	// page fetches and RSI calls are counted into it in addition to the
	// pool's DB-global aggregate, so the statement's measured cost is exact
	// under concurrency.
	Stmt *storage.IOStats
	// Budget, when non-nil, is the statement's execution governor, checked
	// at OPEN, on every page transition, and per tuple examined.
	Budget *governor.Budget
	// Part/NParts restrict the scan to one contiguous 1/NParts share of the
	// segment's pages (NParts 0 or 1 scans the whole segment): the unit of
	// intra-query parallelism. The page list is sliced at OPEN, so every
	// partition sees the same snapshot boundary its siblings do.
	Part   int
	NParts int
	// Snap is the caller's visibility snapshot: only versions it can see are
	// returned. Nil means "latest committed" (visible ⇔ no delete mark) —
	// correct only for callers that exclude concurrent writers.
	Snap *storage.Snapshot

	io     storage.StmtIO
	pages  []storage.PageID
	pi     int
	slot   uint16
	nslots uint16
	page   *storage.Page
	open   bool
}

// Open positions the scan before the first page.
func (s *SegmentScan) Open() error {
	if err := s.Budget.Check(); err != nil {
		return err
	}
	s.io = s.Pool.View(s.Stmt)
	s.pages = s.Table.Segment.Pages()
	if s.NParts > 1 {
		lo := s.Part * len(s.pages) / s.NParts
		hi := (s.Part + 1) * len(s.pages) / s.NParts
		s.pages = s.pages[lo:hi]
	}
	s.pi = -1
	s.page = nil
	s.slot = 0
	s.nslots = 0
	if !s.open {
		s.open = true
		openScans.Add(1)
	}
	return nil
}

// Next returns the next qualifying tuple of the relation.
func (s *SegmentScan) Next() (value.Row, storage.TID, bool, error) {
	if !s.open {
		return nil, storage.TID{}, false, fmt.Errorf("rss: Next on closed segment scan of %s", s.Table.Name)
	}
	for {
		if s.page == nil || s.slot >= s.nslots {
			s.pi++
			if s.pi >= len(s.pages) {
				return nil, storage.TID{}, false, nil
			}
			if err := s.Budget.Check(); err != nil {
				return nil, storage.TID{}, false, err
			}
			page, err := s.io.Fetch(s.pages[s.pi])
			if err != nil {
				return nil, storage.TID{}, false, err
			}
			s.page = page
			// The slot window is frozen at page entry: versions appended to
			// this page afterwards were created after the snapshot and could
			// not be visible anyway.
			s.nslots = page.SlotCount()
			s.slot = 0
			continue
		}
		slot := s.slot
		s.slot++
		h, row, rel, ok, err := s.page.ReadVersioned(slot)
		if err != nil {
			return nil, storage.TID{}, false, err
		}
		if !ok || rel != s.Table.ID {
			continue
		}
		if !s.Snap.Visible(h) {
			s.io.AddVersionScanned(true)
			continue
		}
		s.io.AddVersionScanned(false)
		if err := s.Budget.CheckRow(); err != nil {
			return nil, storage.TID{}, false, err
		}
		if !s.Sargs.Match(row) {
			continue
		}
		s.io.AddRSICall()
		return row, storage.TID{Page: s.pages[s.pi], Slot: slot}, true, nil
	}
}

// Close ends the scan. Idempotent.
func (s *SegmentScan) Close() error {
	if s.open {
		s.open = false
		openScans.Add(-1)
	}
	s.page = nil
	return nil
}

// IndexScan walks an index between starting and stopping key prefixes and
// returns the data tuples in key order. Lo/Hi are prefixes of the index key;
// nil means unbounded on that side.
type IndexScan struct {
	Index *catalog.Index
	Pool  *storage.BufferPool
	Lo    []value.Value
	LoInc bool
	Hi    []value.Value
	HiInc bool
	Sargs SargSet
	// Stmt, when non-nil, is the statement's own I/O accumulator (see
	// SegmentScan.Stmt).
	Stmt *storage.IOStats
	// Budget, when non-nil, is the statement's execution governor, checked
	// at OPEN and per index entry examined.
	Budget *governor.Budget
	// Snap is the caller's visibility snapshot (see SegmentScan.Snap). Dead
	// versions keep their index entries until vacuum, so the heap fetch
	// arbitrates visibility here exactly as in the segment scan.
	Snap *storage.Snapshot

	io   storage.StmtIO
	it   *btree.Iterator
	open bool
}

// Open descends the B-tree to the starting key.
func (s *IndexScan) Open() error {
	if err := s.Budget.Check(); err != nil {
		return err
	}
	s.io = s.Pool.View(s.Stmt)
	s.it = s.Index.Tree.Seek(s.io, s.Lo)
	if !s.open {
		s.open = true
		openScans.Add(1)
	}
	return nil
}

// Next returns the next qualifying tuple in index key order.
func (s *IndexScan) Next() (value.Row, storage.TID, bool, error) {
	if !s.open {
		return nil, storage.TID{}, false, fmt.Errorf("rss: Next on closed index scan of %s", s.Index.Name)
	}
	for {
		e, ok := s.it.Next()
		if !ok {
			return nil, storage.TID{}, false, nil
		}
		if err := s.Budget.CheckRow(); err != nil {
			return nil, storage.TID{}, false, err
		}
		if len(s.Lo) > 0 && !s.LoInc && btree.ComparePrefix(e.Key, s.Lo) == 0 {
			continue // strictly-greater start bound
		}
		if len(s.Hi) > 0 {
			cmp := btree.ComparePrefix(e.Key, s.Hi)
			if cmp > 0 || (cmp == 0 && !s.HiInc) {
				return nil, storage.TID{}, false, nil
			}
		}
		page, err := s.io.Fetch(e.TID.Page)
		if err != nil {
			return nil, storage.TID{}, false, err
		}
		h, row, rel, live, err := page.ReadVersioned(e.TID.Slot)
		if err != nil {
			return nil, storage.TID{}, false, err
		}
		if !live || rel != s.Index.Table.ID {
			continue // stale index entry (vacuumed or undone version)
		}
		if !s.Snap.Visible(h) {
			s.io.AddVersionScanned(true)
			continue
		}
		s.io.AddVersionScanned(false)
		if !s.Sargs.Match(row) {
			continue
		}
		s.io.AddRSICall()
		return row, e.TID, true, nil
	}
}

// Close ends the scan. Idempotent.
func (s *IndexScan) Close() error {
	if s.open {
		s.open = false
		openScans.Add(-1)
	}
	s.it = nil
	return nil
}

// Insert validates a row against the table schema, stores it as a new
// version created by xid, and maintains every index. prev links the version
// this one supersedes (UPDATE) or NoPrevTID (INSERT). Unique-index
// violations are detected against *live* heap versions — dead versions keep
// their index entries until vacuum, so the index alone cannot arbitrate.
// The returned row is the stored image (after coercion) — the image a
// transaction's undo log must record, since index keys are derived from it.
func Insert(t *catalog.Table, row value.Row, xid storage.XID, prev storage.TID, disk *storage.Disk) (storage.TID, value.Row, error) {
	if len(row) != len(t.Columns) {
		return storage.TID{}, nil, fmt.Errorf("rss: table %s has %d columns, row has %d", t.Name, len(t.Columns), len(row))
	}
	coerced := make(value.Row, len(row))
	for i, v := range row {
		cv, err := coerce(v, t.Columns[i].Type)
		if err != nil {
			return storage.TID{}, nil, fmt.Errorf("rss: column %s of %s: %w", t.Columns[i].Name, t.Name, err)
		}
		coerced[i] = cv
	}
	for _, ix := range t.Indexes {
		if ix.Unique && indexHasLiveKey(ix, ix.KeyFor(coerced), disk) {
			return storage.TID{}, nil, fmt.Errorf("rss: duplicate key %v violates unique index %s", ix.KeyFor(coerced), ix.Name)
		}
	}
	rec := storage.EncodeVersionedRow(storage.VersionHeader{Xmin: xid, Prev: prev}, coerced)
	tid, err := t.Segment.Insert(t.ID, rec)
	if err != nil {
		return storage.TID{}, nil, err
	}
	for _, ix := range t.Indexes {
		ix.Tree.Insert(ix.KeyFor(coerced), tid)
	}
	return tid, coerced, nil
}

// indexHasLiveKey reports whether a live heap version carries key in ix.
// Reading "no delete mark" as live is exact here: the inserting transaction
// holds the table's exclusive lock, so any mark it finds is its own or a
// committed writer's, and any unmarked version is a genuine duplicate (its
// own earlier insert, or a committed row).
func indexHasLiveKey(ix *catalog.Index, key value.Row, disk *storage.Disk) bool {
	it := ix.Tree.Seek(storage.StmtIO{}, key)
	for {
		e, ok := it.Next()
		if !ok || btree.ComparePrefix(e.Key, key) != 0 {
			return false
		}
		h, _, rel, live, err := disk.Page(e.TID.Page).ReadVersioned(e.TID.Slot)
		if err == nil && live && rel == ix.Table.ID && h.Xmax == 0 {
			return true
		}
	}
}

// MarkDeleted stamps xid as the deleter of the version at tid — DELETE (and
// the delete half of UPDATE) under MVCC: the version stays in place and in
// its indexes so older snapshots keep seeing it; only readers whose snapshot
// includes xid's commit observe the deletion. A version already marked by
// another transaction loses first-updater-wins: that writer committed (table
// X locks serialize writers), so the statement's snapshot is stale and the
// caller gets ErrWriteConflict.
func MarkDeleted(t *catalog.Table, tid storage.TID, xid storage.XID, disk *storage.Disk) error {
	prior, live, swapped := disk.Page(tid.Page).SwapXmax(tid.Slot, 0, xid)
	if swapped {
		return nil
	}
	if !live {
		return fmt.Errorf("rss: tuple %v of %s already removed", tid, t.Name)
	}
	if prior == xid {
		return fmt.Errorf("rss: tuple %v of %s already deleted by this transaction", tid, t.Name)
	}
	return fmt.Errorf("rss: tuple %v of %s already deleted by txn %d: %w", tid, t.Name, prior, ErrWriteConflict)
}

// ClearDeleted undoes a MarkDeleted by xid: the delete mark is cleared in
// place, resurrecting the version for every snapshot byte-exactly (nothing
// else of the record was touched, and its index entries never left).
func ClearDeleted(t *catalog.Table, tid storage.TID, xid storage.XID, disk *storage.Disk) error {
	if _, _, swapped := disk.Page(tid.Page).SwapXmax(tid.Slot, xid, 0); !swapped {
		return fmt.Errorf("rss: undo: tuple %v of %s does not carry txn %d's delete mark", tid, t.Name, xid)
	}
	return nil
}

// Remove physically deletes the version at tid (whose decoded image is row)
// and its index entries: the undo of an Insert, and vacuum's reclamation
// primitive. The slot is never reused, so surviving TIDs and physical dump
// order are unperturbed.
func Remove(t *catalog.Table, tid storage.TID, row value.Row, disk *storage.Disk) error {
	page := disk.Page(tid.Page)
	if !page.Delete(tid.Slot) {
		return fmt.Errorf("rss: version %v of %s already removed", tid, t.Name)
	}
	for _, ix := range t.Indexes {
		ix.Tree.Delete(ix.KeyFor(row), tid)
	}
	return nil
}

// VacuumTable reclaims every version of t deleted by a transaction older
// than horizon (the registry's oldest reachable XID): no live or future
// snapshot can see such a version, so its slot is freed and its index
// entries are dropped. onChain, when non-nil, observes the version-chain
// length behind each live version before reclamation (metrics). The caller
// must hold t's exclusive lock.
func VacuumTable(t *catalog.Table, disk *storage.Disk, horizon storage.XID, onChain func(length int)) (int, error) {
	pages := t.Segment.Pages()
	if onChain != nil {
		for _, pid := range pages {
			page := disk.Page(pid)
			for slot := uint16(0); slot < page.SlotCount(); slot++ {
				//sysrcheck:ignore snappin vacuum reads raw version chains under the registry horizon, not under a snapshot: it must see versions no snapshot can, to reclaim them
				h, _, rel, ok, err := page.ReadVersioned(slot)
				if err != nil || !ok || rel != t.ID || h.Xmax != 0 {
					continue
				}
				length := 1
				for prev := h.Prev; prev != storage.NoPrevTID; {
					ph, _, prel, pok, perr := disk.Page(prev.Page).ReadVersioned(prev.Slot)
					if perr != nil || !pok || prel != t.ID {
						break
					}
					length++
					prev = ph.Prev
				}
				onChain(length)
			}
		}
	}
	reclaimed := 0
	for _, pid := range pages {
		page := disk.Page(pid)
		for slot := uint16(0); slot < page.SlotCount(); slot++ {
			h, row, rel, ok, err := page.ReadVersioned(slot)
			if err != nil {
				return reclaimed, err
			}
			if !ok || rel != t.ID || h.Xmax == 0 || h.Xmax >= horizon {
				continue
			}
			if err := Remove(t, storage.TID{Page: pid, Slot: slot}, row, disk); err != nil {
				return reclaimed, err
			}
			reclaimed++
		}
	}
	return reclaimed, nil
}

// coerce converts v to the column type, allowing the int→float widening the
// SQL front end relies on.
func coerce(v value.Value, want value.Kind) (value.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch want {
	case value.KindInt:
		if v.Kind == value.KindInt {
			return v, nil
		}
	case value.KindFloat:
		switch v.Kind {
		case value.KindFloat:
			return v, nil
		case value.KindInt:
			return value.NewFloat(float64(v.Int)), nil
		}
	case value.KindString:
		if v.Kind == value.KindString {
			return v, nil
		}
	}
	return value.Value{}, fmt.Errorf("cannot store %s value %s in %s column", v.Kind, v.SQL(), want)
}

package catalog

// System catalogs as relations. System R stored its catalogs as ordinary
// tables that could be queried through SQL ("the OPTIMIZER ... looks them up
// in the System R catalogs"); we do the same: five read-only relations —
//
//	SYSTABLES   (TNAME, NCARD, TCARD, PFRAC)
//	SYSCOLUMNS  (TNAME, CNAME, COLNO, COLTYPE)
//	SYSINDEXES  (INAME, TNAME, COLNAMES, UNIQUEFLAG, CLUSTERFLAG, ICARD, NINDX)
//	SYSCOLSTATS (TNAME, CNAME, NDISTINCT, NULLS, NROWS, NBUCKETS)
//	SYSHIST     (TNAME, CNAME, BUCKETNO, HIKEY, NROWS, NDISTINCT)
//
// rebuilt by UPDATE STATISTICS (the same command that refreshes the
// statistics they publish). SYSCOLSTATS and SYSHIST publish the per-column
// histogram statistics (histogram.go), one SYSHIST row per bucket. They live
// in private segments and are themselves listed in SYSTABLES, as in System R.

import (
	"sort"
	"strings"

	"systemr/internal/storage"
	"systemr/internal/value"
)

// System catalog table names.
const (
	SysTables   = "SYSTABLES"
	SysColumns  = "SYSCOLUMNS"
	SysIndexes  = "SYSINDEXES"
	SysColStats = "SYSCOLSTATS"
	SysHist     = "SYSHIST"
)

// IsSystemTable reports whether name is one of the system catalogs.
func IsSystemTable(name string) bool {
	switch strings.ToUpper(name) {
	case SysTables, SysColumns, SysIndexes, SysColStats, SysHist:
		return true
	}
	return false
}

// ensureSystemCatalogs creates the three catalog relations on first use.
func (c *Catalog) ensureSystemCatalogsLocked() error {
	if _, ok := c.tables[SysTables]; ok {
		return nil
	}
	mk := func(name string, cols []Column) error {
		seg := c.segmentLocked("__SYSCAT_" + name)
		t := &Table{ID: c.nextRel, Name: name, Columns: cols, Segment: seg, System: true}
		c.nextRel++
		c.tables[name] = t
		c.byID[t.ID] = t
		return nil
	}
	if err := mk(SysTables, []Column{
		{Name: "TNAME", Type: value.KindString},
		{Name: "NCARD", Type: value.KindInt},
		{Name: "TCARD", Type: value.KindInt},
		{Name: "PFRAC", Type: value.KindFloat},
	}); err != nil {
		return err
	}
	if err := mk(SysColumns, []Column{
		{Name: "TNAME", Type: value.KindString},
		{Name: "CNAME", Type: value.KindString},
		{Name: "COLNO", Type: value.KindInt},
		{Name: "COLTYPE", Type: value.KindString},
	}); err != nil {
		return err
	}
	if err := mk(SysIndexes, []Column{
		{Name: "INAME", Type: value.KindString},
		{Name: "TNAME", Type: value.KindString},
		{Name: "COLNAMES", Type: value.KindString},
		{Name: "UNIQUEFLAG", Type: value.KindInt},
		{Name: "CLUSTERFLAG", Type: value.KindInt},
		{Name: "ICARD", Type: value.KindInt},
		{Name: "NINDX", Type: value.KindInt},
	}); err != nil {
		return err
	}
	if err := mk(SysColStats, []Column{
		{Name: "TNAME", Type: value.KindString},
		{Name: "CNAME", Type: value.KindString},
		{Name: "NDISTINCT", Type: value.KindInt},
		{Name: "NULLS", Type: value.KindInt},
		{Name: "NROWS", Type: value.KindInt},
		{Name: "NBUCKETS", Type: value.KindInt},
	}); err != nil {
		return err
	}
	return mk(SysHist, []Column{
		{Name: "TNAME", Type: value.KindString},
		{Name: "CNAME", Type: value.KindString},
		{Name: "BUCKETNO", Type: value.KindInt},
		{Name: "HIKEY", Type: value.KindString},
		{Name: "NROWS", Type: value.KindInt},
		{Name: "NDISTINCT", Type: value.KindInt},
	})
}

// refreshSystemCatalogsLocked rewrites the catalog relations from current
// metadata. Old tuples are deleted in place (their pages are reused on the
// next refresh cycle's inserts only when space permits; the segments stay
// small in practice).
func (c *Catalog) refreshSystemCatalogsLocked() error {
	if err := c.ensureSystemCatalogsLocked(); err != nil {
		return err
	}
	clear := func(t *Table) {
		for _, pid := range t.Segment.Pages() {
			page := c.disk.Page(pid)
			for s := uint16(0); s < page.NumSlots(); s++ {
				if _, rel, ok := page.Record(s); ok && rel == t.ID {
					page.Delete(s)
				}
			}
		}
	}
	st := c.tables[SysTables]
	sc := c.tables[SysColumns]
	si := c.tables[SysIndexes]
	scs := c.tables[SysColStats]
	sh := c.tables[SysHist]
	clear(st)
	clear(sc)
	clear(si)
	clear(scs)
	clear(sh)

	// Catalog rows are frozen: created by XID 0 ("always committed"), so
	// they are visible to every snapshot without registry traffic.
	insert := func(t *Table, row value.Row) error {
		rec := storage.EncodeVersionedRow(storage.VersionHeader{Xmin: storage.FrozenXID, Prev: storage.NoPrevTID}, row)
		_, err := t.Segment.Insert(t.ID, rec)
		return err
	}
	// Deterministic order: sorted table names.
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := c.tables[n]
		if err := insert(st, value.Row{
			value.NewString(t.Name),
			value.NewInt(int64(t.Stats.NCard)),
			value.NewInt(int64(t.Stats.TCard)),
			value.NewFloat(t.Stats.P),
		}); err != nil {
			return err
		}
		for i, col := range t.Columns {
			if err := insert(sc, value.Row{
				value.NewString(t.Name),
				value.NewString(col.Name),
				value.NewInt(int64(i)),
				value.NewString(col.Type.String()),
			}); err != nil {
				return err
			}
		}
		for _, ix := range t.Indexes {
			if err := insert(si, value.Row{
				value.NewString(ix.Name),
				value.NewString(t.Name),
				value.NewString(strings.Join(ix.ColumnNames(), ",")),
				boolInt(ix.Unique),
				boolInt(ix.Clustered),
				value.NewInt(int64(ix.Stats.ICard)),
				value.NewInt(int64(ix.Stats.NIndx)),
			}); err != nil {
				return err
			}
		}
		for ci, cs := range t.ColStats {
			if !cs.HasStats {
				continue
			}
			nrows, nbuckets := int64(0), 0
			if cs.Hist != nil {
				nrows, nbuckets = cs.Hist.NRows, len(cs.Hist.Buckets)
			}
			if err := insert(scs, value.Row{
				value.NewString(t.Name),
				value.NewString(t.Columns[ci].Name),
				value.NewInt(int64(cs.NDistinct)),
				value.NewInt(int64(cs.NullCount)),
				value.NewInt(nrows),
				value.NewInt(int64(nbuckets)),
			}); err != nil {
				return err
			}
			if cs.Hist == nil {
				continue
			}
			for bi, b := range cs.Hist.Buckets {
				if err := insert(sh, value.Row{
					value.NewString(t.Name),
					value.NewString(t.Columns[ci].Name),
					value.NewInt(int64(bi)),
					value.NewString(b.Hi.String()),
					value.NewInt(b.Rows),
					value.NewInt(b.Distinct),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func boolInt(b bool) value.Value {
	if b {
		return value.NewInt(1)
	}
	return value.NewInt(0)
}

package catalog

// Per-column statistics beyond Section 4: equi-depth histograms and
// distinct-value counts, built by UPDATE STATISTICS independently of any
// index. Table 1's uniformity assumption (1/ICARD for equality, linear
// interpolation between the index's low and high key for ranges) is the
// paper's known weak spot on skewed data; a histogram answers the same
// questions — "how many rows equal v", "how many rows fall below v" — from
// the observed distribution instead.
//
// The histogram is equi-depth with heavy-hitter isolation: sorted column
// values are grouped by value, groups are packed into buckets of roughly
// NRows/MaxHistBuckets rows each, and a value group at least one bucket deep
// gets a bucket of its own. A value group is never split across buckets, so
// a bucket's Rows/Distinct ratio is an exact per-key average for the keys it
// holds, and the hottest keys are estimated exactly.
//
// Everything here answers in ROW COUNTS, not fractions. Selectivity
// fractions are computed (and clamped) only in internal/core, behind its
// clamp01 single entry point — the PR 4 invariant the selclamp analyzer
// enforces.

import (
	"sort"

	"systemr/internal/value"
)

// MaxHistBuckets bounds the buckets per column histogram. 64 buckets resolve
// ~1.5% of the rows per bucket while keeping the syscat publication and the
// per-predicate estimation walk small.
const MaxHistBuckets = 64

// ColStats are the per-column statistics UPDATE STATISTICS builds for every
// column of an analyzed relation (indexed or not).
type ColStats struct {
	// HasStats is false until UPDATE STATISTICS runs (or when the column's
	// rows could not be decoded).
	HasStats bool
	// NDistinct counts distinct non-null values observed.
	NDistinct int
	// NullCount counts NULLs observed.
	NullCount int
	// Hist is the equi-depth histogram over non-null values; nil when the
	// column had no non-null rows.
	Hist *Histogram
}

// EffNDistinct returns the distinct-value count floored at 1, so 1/NDistinct
// estimates stay finite for analyzed-but-empty columns.
func (s ColStats) EffNDistinct() float64 {
	if !s.HasStats || s.NDistinct < 1 {
		return 1
	}
	return float64(s.NDistinct)
}

// Bucket is one equi-depth histogram bucket: the rows with values in
// (previous bucket's Hi, Hi] — the first bucket's range starts at the
// histogram's Lo, inclusive.
type Bucket struct {
	Hi       value.Value // inclusive upper boundary
	Rows     int64       // rows in the bucket
	Distinct int64       // distinct values in the bucket
}

// Histogram is an equi-depth histogram over one column's non-null values.
type Histogram struct {
	Lo      value.Value // smallest value observed
	Buckets []Bucket    // ascending by Hi
	NRows   int64       // total non-null rows
}

// buildColStats sorts one column's observed values and packs them into an
// equi-depth histogram. vals may be reordered in place.
func buildColStats(vals []value.Value, maxBuckets int) ColStats {
	cs := ColStats{HasStats: true}
	// NULLs sort first under value.Compare; strip them off the front.
	sort.Slice(vals, func(i, j int) bool { return value.Compare(vals[i], vals[j]) < 0 })
	firstNonNull := 0
	for firstNonNull < len(vals) && vals[firstNonNull].IsNull() {
		firstNonNull++
	}
	cs.NullCount = firstNonNull
	vals = vals[firstNonNull:]
	if len(vals) == 0 {
		return cs
	}
	if maxBuckets < 1 {
		maxBuckets = MaxHistBuckets
	}
	// depth: target rows per bucket, rounded up so we never exceed maxBuckets.
	depth := (int64(len(vals)) + int64(maxBuckets) - 1) / int64(maxBuckets)
	if depth < 1 {
		depth = 1
	}
	h := &Histogram{Lo: vals[0], NRows: int64(len(vals))}
	var cur Bucket
	flush := func() {
		if cur.Rows > 0 {
			h.Buckets = append(h.Buckets, cur)
			cur = Bucket{}
		}
	}
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && value.Compare(vals[j], vals[i]) == 0 {
			j++
		}
		group := int64(j - i)
		cs.NDistinct++
		// A heavy hitter (a group at least one bucket deep) is isolated in
		// its own bucket so its exact count survives; groups are never split,
		// so closing the current bucket first keeps boundaries on group edges.
		if group >= depth {
			flush()
		}
		cur.Hi = vals[i]
		cur.Rows += group
		cur.Distinct++
		if cur.Rows >= depth {
			flush()
		}
		i = j
	}
	flush()
	cs.Hist = h
	return cs
}

// TotalRows returns the histogram's non-null row count.
func (h *Histogram) TotalRows() float64 { return float64(h.NRows) }

// maxKey returns the histogram's largest value.
func (h *Histogram) maxKey() value.Value { return h.Buckets[len(h.Buckets)-1].Hi }

// bucketFor returns the index of the bucket containing v: the first bucket
// whose Hi is >= v. ok is false when v lies outside [Lo, maxKey] — under
// stale statistics data may exist there anyway, which the caller floors.
func (h *Histogram) bucketFor(v value.Value) (int, bool) {
	if len(h.Buckets) == 0 || value.Compare(v, h.Lo) < 0 || value.Compare(v, h.maxKey()) > 0 {
		return 0, false
	}
	i := sort.Search(len(h.Buckets), func(i int) bool {
		return value.Compare(h.Buckets[i].Hi, v) >= 0
	})
	return i, true
}

// EqRows estimates the rows equal to v as the containing bucket's average
// rows per key. ok is false when v is outside the histogram's key range
// (nothing was observed there when statistics ran).
func (h *Histogram) EqRows(v value.Value) (rows float64, ok bool) {
	i, ok := h.bucketFor(v)
	if !ok {
		return 0, false
	}
	b := h.Buckets[i]
	d := b.Distinct
	if d < 1 {
		d = 1
	}
	return float64(b.Rows) / float64(d), true
}

// LtRows estimates the rows strictly below v: every bucket wholly below,
// plus an intra-bucket share of the containing one — linear interpolation
// when the boundary values are arithmetic, half the bucket otherwise
// (character columns have no distance metric, as in Table 1).
func (h *Histogram) LtRows(v value.Value) float64 {
	if len(h.Buckets) == 0 || value.Compare(v, h.Lo) <= 0 {
		return 0
	}
	if value.Compare(v, h.maxKey()) > 0 {
		return float64(h.NRows)
	}
	i, _ := h.bucketFor(v)
	below := int64(0)
	for k := 0; k < i; k++ {
		below += h.Buckets[k].Rows
	}
	b := h.Buckets[i]
	lower := h.Lo
	if i > 0 {
		lower = h.Buckets[i-1].Hi
	}
	return float64(below) + h.bucketShareBelow(b, lower, v)
}

// bucketShareBelow estimates how many of bucket b's rows lie strictly below
// v, where lower is the bucket's lower boundary (the previous Hi, or Lo).
func (h *Histogram) bucketShareBelow(b Bucket, lower, v value.Value) float64 {
	perKey := float64(b.Rows)
	if b.Distinct > 0 {
		perKey = float64(b.Rows) / float64(b.Distinct)
	}
	if b.Distinct <= 1 {
		// Singleton bucket: every row equals Hi; none are strictly below a
		// v <= Hi.
		return 0
	}
	if value.Compare(v, b.Hi) == 0 {
		// Everything but v's own rows.
		part := float64(b.Rows) - perKey
		if part < 0 {
			return 0
		}
		return part
	}
	hiF, loF, vF := b.Hi.AsFloat(), lower.AsFloat(), v.AsFloat()
	if b.Hi.Kind.Arithmetic() && lower.Kind.Arithmetic() && v.Kind.Arithmetic() && hiF > loF {
		part := float64(b.Rows) * (vF - loF) / (hiF - loF)
		if part < 0 {
			part = 0
		}
		if part > float64(b.Rows) {
			part = float64(b.Rows)
		}
		return part
	}
	// No distance metric: assume half the bucket.
	return float64(b.Rows) / 2
}

// LeRows estimates the rows at or below v.
func (h *Histogram) LeRows(v value.Value) float64 {
	rows := h.LtRows(v)
	if eq, ok := h.EqRows(v); ok {
		rows += eq
	}
	total := float64(h.NRows)
	if rows > total {
		return total
	}
	return rows
}

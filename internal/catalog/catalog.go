// Package catalog maintains the System R catalogs: relation and index
// definitions plus the statistics Section 4 lists —
//
//	NCARD(T)  cardinality of relation T
//	TCARD(T)  pages holding tuples of T
//	P(T)      TCARD(T) / non-empty pages of T's segment
//	ICARD(I)  distinct keys in index I
//	NINDX(I)  pages of index I
//
// and, per index, the minimum and maximum key value of the leading column,
// which the optimizer's linear-interpolation selectivity needs.
//
// As in the paper, statistics are not maintained on every INSERT/DELETE
// (that would serialize catalog access); they are refreshed by the
// UPDATE STATISTICS command, so they can be stale relative to the data.
package catalog

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"systemr/internal/btree"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// Column describes one column of a relation.
type Column struct {
	Name string
	Type value.Kind
}

// RelStats are the per-relation statistics of Section 4.
type RelStats struct {
	// HasStats is false until UPDATE STATISTICS runs; the paper: "a lack of
	// statistics implies that the relation is small, so an arbitrary factor
	// is chosen".
	HasStats bool
	NCard    int     // relation cardinality
	TCard    int     // data pages holding tuples of the relation
	P        float64 // fraction of segment's non-empty pages holding the relation
}

// Default statistics assumed for relations that have never been analyzed.
const (
	DefaultNCard = 100
	DefaultTCard = 10
	DefaultP     = 1.0
)

// EffNCard returns NCARD or its small-relation default.
func (s RelStats) EffNCard() float64 {
	if !s.HasStats {
		return DefaultNCard
	}
	return float64(s.NCard)
}

// EffTCard returns TCARD or its default.
func (s RelStats) EffTCard() float64 {
	if !s.HasStats {
		return DefaultTCard
	}
	return float64(s.TCard)
}

// EffP returns P or its default; never zero so TCARD/P stays finite.
func (s RelStats) EffP() float64 {
	if !s.HasStats || s.P <= 0 {
		return DefaultP
	}
	return s.P
}

// IndexStats are the per-index statistics of Section 4.
type IndexStats struct {
	HasStats  bool
	ICard     int // distinct full keys
	ICardLead int // distinct values of the leading key column
	NIndx     int // index pages
	// Low/High are the smallest and largest values of the leading key column
	// (valid only for arithmetic columns' interpolation).
	Low, High value.Value
}

// DefaultICard is assumed for unanalyzed indexes.
const DefaultICard = 10

// EffICard returns ICARD or its default, never below 1. An analyzed-but-
// empty index (post-DML statistics can legitimately report ICARD = 0) floors
// at 1 rather than falling back to the unanalyzed default, so 1/ICARD
// selectivity estimates stay finite and in [0, 1].
func (s IndexStats) EffICard() float64 {
	if !s.HasStats {
		return DefaultICard
	}
	if s.ICard < 1 {
		return 1
	}
	return float64(s.ICard)
}

// EffICardLead returns the leading-column distinct count or its default,
// floored at 1 for analyzed empty indexes (see EffICard).
func (s IndexStats) EffICardLead() float64 {
	if !s.HasStats {
		return DefaultICard
	}
	if s.ICardLead < 1 {
		return 1
	}
	return float64(s.ICardLead)
}

// EffNIndx returns NINDX or its default.
func (s IndexStats) EffNIndx() float64 {
	if !s.HasStats || s.NIndx < 1 {
		return 1
	}
	return float64(s.NIndx)
}

// Table is a stored relation: schema plus its physical storage handle.
type Table struct {
	ID      storage.RelID
	Name    string
	Columns []Column
	Segment *storage.Segment
	Indexes []*Index
	Stats   RelStats
	// ColStats holds per-column histogram statistics, parallel to Columns;
	// empty until UPDATE STATISTICS runs. Like Stats it is replaced
	// wholesale under the exclusive catalog lock, never mutated in place.
	ColStats []ColStats
	// System marks the read-only system catalog relations.
	System bool
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ClusteredIndex returns the table's clustered index, or nil. System R
// allows at most one.
func (t *Table) ClusteredIndex() *Index {
	for _, ix := range t.Indexes {
		if ix.Clustered {
			return ix
		}
	}
	return nil
}

// Index is a B-tree access path on one or more columns of a table.
type Index struct {
	Name      string
	Table     *Table
	ColIdxs   []int // ordinals of the key columns, major first
	Unique    bool
	Clustered bool
	Tree      *btree.BTree
	Stats     IndexStats
}

// KeyFor extracts the index key from a full row.
func (ix *Index) KeyFor(row value.Row) value.Row {
	key := make(value.Row, len(ix.ColIdxs))
	for i, c := range ix.ColIdxs {
		key[i] = row[c]
	}
	return key
}

// ColumnNames returns the key column names, major first.
func (ix *Index) ColumnNames() []string {
	names := make([]string, len(ix.ColIdxs))
	for i, c := range ix.ColIdxs {
		names[i] = ix.Table.Columns[c].Name
	}
	return names
}

// Catalog is the set of all relations and indexes, plus segment bookkeeping.
type Catalog struct {
	mu       sync.RWMutex
	disk     *storage.Disk
	tables   map[string]*Table
	byID     map[storage.RelID]*Table
	segments map[string]*storage.Segment
	nextRel  storage.RelID
	nextSeg  int
	// version is the catalog's monotonically increasing version/stats epoch.
	// It bumps on every dependency change a compiled plan could embed —
	// CREATE/DROP TABLE, CREATE/DROP INDEX, and statistics refresh — so a
	// plan compiled at version V is valid exactly while Version() == V
	// (System R's access-module invalidation). Lazy system-catalog
	// materialization does not bump: it only adds read-side tables no
	// existing plan can reference.
	version atomic.Uint64
	// BTreeOrder overrides index fan-out (tests use small orders).
	BTreeOrder int
}

// New creates an empty catalog over disk.
func New(disk *storage.Disk) *Catalog {
	c := &Catalog{
		disk:     disk,
		tables:   make(map[string]*Table),
		byID:     make(map[storage.RelID]*Table),
		segments: make(map[string]*storage.Segment),
		nextRel:  1,
	}
	c.version.Store(1)
	return c
}

// Version returns the current catalog version/stats epoch. Reading it while
// holding the engine's shared catalog lock pins it: DDL and UPDATE
// STATISTICS run under the exclusive catalog lock, so the version cannot
// move under an executing statement.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// bump advances the catalog version after a dependency change.
func (c *Catalog) bump() { c.version.Add(1) }

// Disk exposes the underlying simulated disk.
func (c *Catalog) Disk() *storage.Disk { return c.disk }

// CreateTable registers a new relation. segment names the segment to store
// it in; "" allocates a private segment. Sharing a segment between relations
// reproduces the paper's P(T) < 1 scenarios.
func (c *Catalog) CreateTable(name string, cols []Column, segment string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToUpper(name)
	if IsSystemTable(key) {
		return nil, fmt.Errorf("catalog: %s is a reserved system catalog name", name)
	}
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %s already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %s must have at least one column", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		up := strings.ToUpper(col.Name)
		if seen[up] {
			return nil, fmt.Errorf("catalog: duplicate column %s in table %s", col.Name, name)
		}
		seen[up] = true
	}
	seg := c.segmentLocked(segment)
	t := &Table{
		ID:      c.nextRel,
		Name:    key,
		Columns: cols,
		Segment: seg,
	}
	c.nextRel++
	c.tables[key] = t
	c.byID[t.ID] = t
	c.bump()
	return t, nil
}

func (c *Catalog) segmentLocked(name string) *storage.Segment {
	if name == "" {
		name = fmt.Sprintf("__private_%d", c.nextSeg)
	}
	name = strings.ToUpper(name)
	if seg, ok := c.segments[name]; ok {
		return seg
	}
	seg := storage.NewSegment(c.nextSeg, c.disk)
	c.nextSeg++
	c.segments[name] = seg
	return seg
}

// DropTable removes a relation and its indexes from the catalog. The
// segment pages are not reclaimed (System R segments were recycled by
// utilities, not by DROP).
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToUpper(name)
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	if t.System {
		return fmt.Errorf("catalog: cannot drop system catalog %s", name)
	}
	delete(c.tables, key)
	delete(c.byID, t.ID)
	c.bump()
	return nil
}

// Table looks a relation up by name (case-insensitive). The system catalogs
// (SYSTABLES, SYSCOLUMNS, SYSINDEXES) materialize on first reference.
func (c *Catalog) Table(name string) (*Table, bool) {
	key := strings.ToUpper(name)
	if IsSystemTable(key) {
		c.mu.Lock()
		if err := c.ensureSystemCatalogsLocked(); err != nil {
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Unlock()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key]
	return t, ok
}

// Tables returns all relations (unordered).
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// CreateIndex builds a B-tree index on the given columns of a table and
// bulk-loads it from the stored tuples. A table may have any number of
// indexes (including zero), but at most one clustered index.
func (c *Catalog) CreateIndex(name, table string, columns []string, unique, clustered bool) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToUpper(table)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %s does not exist", table)
	}
	if t.System {
		return nil, fmt.Errorf("catalog: cannot index system catalog %s", table)
	}
	upper := strings.ToUpper(name)
	for _, ix := range t.Indexes {
		if ix.Name == upper {
			return nil, fmt.Errorf("catalog: index %s already exists on %s", name, table)
		}
	}
	if clustered && t.ClusteredIndex() != nil {
		return nil, fmt.Errorf("catalog: table %s already has a clustered index", table)
	}
	colIdxs := make([]int, len(columns))
	for i, cn := range columns {
		ci := t.ColumnIndex(cn)
		if ci < 0 {
			return nil, fmt.Errorf("catalog: column %s does not exist in table %s", cn, table)
		}
		colIdxs[i] = ci
	}
	ix := &Index{
		Name:      upper,
		Table:     t,
		ColIdxs:   colIdxs,
		Unique:    unique,
		Clustered: clustered,
	}
	// Gather (key, TID) pairs from the stored tuples and bulk-load the tree
	// bottom-up (sorted, packed pages — System R's index build).
	var entries []btree.Entry
	for _, pid := range t.Segment.Pages() {
		page := c.disk.Page(pid)
		for s := uint16(0); s < page.NumSlots(); s++ {
			rec, rel, ok := page.Record(s)
			if !ok || rel != t.ID {
				continue
			}
			// Every stored version is indexed, delete-marked ones included:
			// indexes cover the whole version history until vacuum reclaims
			// it, exactly as the incremental insert path maintains them.
			_, body, err := storage.ParseVersionHeader(rec)
			if err != nil {
				return nil, fmt.Errorf("catalog: building index %s: %w", name, err)
			}
			row, err := storage.DecodeRow(body)
			if err != nil {
				return nil, fmt.Errorf("catalog: building index %s: %w", name, err)
			}
			entries = append(entries, btree.Entry{Key: ix.KeyFor(row), TID: storage.TID{Page: pid, Slot: s}})
		}
	}
	ix.Tree = btree.BulkLoad(c.disk, btree.Config{Order: c.BTreeOrder}, entries)
	if unique {
		if key, dup := firstDuplicateKey(c.disk, t.ID, ix.Tree); dup {
			return nil, fmt.Errorf("catalog: duplicate key %v violates unique index %s", key, name)
		}
	}
	t.Indexes = append(t.Indexes, ix)
	c.bump()
	return ix, nil
}

// DropIndex removes an index (found by name on any table) from the catalog
// and bumps the version, invalidating every plan compiled against it. The
// index pages are not reclaimed, matching DropTable.
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	upper := strings.ToUpper(name)
	for _, t := range c.tables {
		for i, ix := range t.Indexes {
			if ix.Name != upper {
				continue
			}
			// Build a fresh slice: executing statements traverse the old one
			// (they cannot run concurrently with DDL — the exclusive catalog
			// lock excludes them — but cached plans may still hold it).
			keep := make([]*Index, 0, len(t.Indexes)-1)
			keep = append(keep, t.Indexes[:i]...)
			keep = append(keep, t.Indexes[i+1:]...)
			t.Indexes = keep
			c.bump()
			return nil
		}
	}
	return fmt.Errorf("catalog: index %s does not exist", name)
}

// firstDuplicateKey scans the leaf chain for two entries sharing a full key
// whose heap versions are both live (no delete mark): dead versions awaiting
// vacuum are indexed but cannot violate uniqueness.
func firstDuplicateKey(disk *storage.Disk, rel storage.RelID, tree *btree.BTree) (value.Row, bool) {
	live := func(e btree.Entry) bool {
		//sysrcheck:ignore snappin CREATE INDEX checks uniqueness against the latest committed versions under the schema X lock; snapshot semantics are wrong here — a duplicate visible to any current snapshot but already deleted must not fail the build
		h, _, r, ok, err := disk.Page(e.TID.Page).ReadVersioned(e.TID.Slot)
		return err == nil && ok && r == rel && h.Xmax == 0
	}
	it := tree.Seek(storage.StmtIO{}, nil)
	var prev btree.Entry
	havePrev := false
	for {
		e, ok := it.Next()
		if !ok {
			return nil, false
		}
		if !live(e) {
			continue
		}
		if havePrev && value.CompareKey(prev.Key, e.Key) == 0 {
			return e.Key, true
		}
		prev, havePrev = e, true
	}
}

// Index finds an index by name on any table.
func (c *Catalog) Index(name string) (*Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	upper := strings.ToUpper(name)
	for _, t := range c.tables {
		for _, ix := range t.Indexes {
			if ix.Name == upper {
				return ix, true
			}
		}
	}
	return nil, false
}

// UpdateStatistics recomputes every statistic of Section 4 from the stored
// data — the UPDATE STATISTICS command of the paper — and rewrites the
// queryable system catalogs to publish them. (The SYSTABLES rows describing
// the system catalogs themselves reflect the previous refresh cycle, a
// System R-style staleness.)
func (c *Catalog) UpdateStatistics() {
	c.updateStatistics("")
}

// UpdateStatisticsFor refreshes one relation's statistics (and republishes
// the system catalogs). It returns false when the table does not exist.
func (c *Catalog) UpdateStatisticsFor(name string) bool {
	c.mu.RLock()
	_, ok := c.tables[strings.ToUpper(name)]
	c.mu.RUnlock()
	if !ok {
		return false
	}
	c.updateStatistics(strings.ToUpper(name))
	return true
}

func (c *Catalog) updateStatistics(only string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.tables {
		if only != "" && t.Name != only {
			continue
		}
		// NCARD counts live (latest-committed) rows: delete-marked versions
		// awaiting vacuum occupy pages (they still shape TCARD) but are not
		// tuples the optimizer's cardinality model should see. The same pass
		// collects every live row's column values for the per-column
		// equi-depth histograms.
		ncard := 0
		colVals := make([][]value.Value, len(t.Columns))
		decodable := true
		for _, pid := range t.Segment.Pages() {
			page := c.disk.Page(pid)
			for s := uint16(0); s < page.NumSlots(); s++ {
				rec, rel, ok := page.Record(s)
				if !ok || rel != t.ID {
					continue
				}
				h, body, err := storage.ParseVersionHeader(rec)
				if err != nil || h.Xmax != 0 {
					continue
				}
				ncard++
				if !decodable {
					continue
				}
				row, err := storage.DecodeRow(body)
				if err != nil || len(row) != len(t.Columns) {
					decodable = false
					continue
				}
				for ci := range colVals {
					colVals[ci] = append(colVals[ci], row[ci])
				}
			}
		}
		tcard := t.Segment.PagesHolding(t.ID)
		nonEmpty := t.Segment.NonEmptyPages()
		p := 1.0
		if nonEmpty > 0 {
			p = float64(tcard) / float64(nonEmpty)
		}
		t.Stats = RelStats{HasStats: true, NCard: ncard, TCard: tcard, P: p}
		if decodable {
			colStats := make([]ColStats, len(t.Columns))
			for ci := range colStats {
				colStats[ci] = buildColStats(colVals[ci], MaxHistBuckets)
			}
			t.ColStats = colStats
		} else {
			t.ColStats = nil
		}
		for _, ix := range t.Indexes {
			icard, icardLead, nindx, low, high := ix.Tree.Stats()
			ix.Stats = IndexStats{HasStats: true, ICard: icard, ICardLead: icardLead, NIndx: nindx, Low: low, High: high}
		}
	}
	// A statistics refresh changes what the optimizer would choose: advance
	// the epoch so plans costed against the old statistics recompile.
	c.bump()
	// Publish the refreshed statistics through the queryable catalogs.
	if err := c.refreshSystemCatalogsLocked(); err != nil {
		// The catalogs are advisory; statistics themselves are already
		// updated. Refresh failures (full pages) leave stale catalog rows.
		return
	}
}

package catalog

import (
	"testing"

	"systemr/internal/value"
)

func ints(ns ...int64) []value.Value {
	vs := make([]value.Value, len(ns))
	for i, n := range ns {
		vs[i] = value.NewInt(n)
	}
	return vs
}

func TestBuildColStatsCounts(t *testing.T) {
	vals := append(ints(3, 1, 2, 2, 3, 3), value.Value{}) // one NULL
	cs := buildColStats(vals, 64)
	if !cs.HasStats || cs.NDistinct != 3 || cs.NullCount != 1 {
		t.Fatalf("stats: %+v", cs)
	}
	if cs.Hist == nil || cs.Hist.NRows != 6 {
		t.Fatalf("histogram rows: %+v", cs.Hist)
	}
	if cs.EffNDistinct() != 3 {
		t.Fatalf("EffNDistinct: %v", cs.EffNDistinct())
	}
}

func TestBuildColStatsEmptyAndAllNull(t *testing.T) {
	empty := buildColStats(nil, 64)
	if !empty.HasStats || empty.Hist != nil || empty.EffNDistinct() != 1 {
		t.Fatalf("empty column: %+v", empty)
	}
	nulls := buildColStats([]value.Value{{}, {}}, 64)
	if nulls.NullCount != 2 || nulls.NDistinct != 0 || nulls.Hist != nil {
		t.Fatalf("all-null column: %+v", nulls)
	}
}

// TestHistogramEquiDepth checks bucket packing: 1000 uniform values into 64
// buckets of roughly equal depth, with every group on a bucket boundary.
func TestHistogramEquiDepth(t *testing.T) {
	var vals []value.Value
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, value.NewInt(i%100)) // 100 keys × 10 rows
	}
	cs := buildColStats(vals, 64)
	h := cs.Hist
	if cs.NDistinct != 100 {
		t.Fatalf("NDistinct = %d", cs.NDistinct)
	}
	if len(h.Buckets) > 64 {
		t.Fatalf("bucket count %d exceeds the cap", len(h.Buckets))
	}
	total, distinct := int64(0), int64(0)
	for _, b := range h.Buckets {
		total += b.Rows
		distinct += b.Distinct
	}
	if total != 1000 || distinct != 100 {
		t.Fatalf("bucket sums: rows=%d distinct=%d", total, distinct)
	}
	// Uniform data: every key estimates its exact 10 rows.
	rows, ok := h.EqRows(value.NewInt(42))
	if !ok || rows != 10 {
		t.Fatalf("EqRows(42) = %v, %v", rows, ok)
	}
}

// TestHistogramHeavyHitterIsolation: a value group at least one bucket deep
// gets its own singleton bucket, so the hottest key's count survives exactly.
func TestHistogramHeavyHitterIsolation(t *testing.T) {
	var vals []value.Value
	for i := int64(0); i < 500; i++ {
		vals = append(vals, value.NewInt(7)) // heavy hitter: half the rows
	}
	for i := int64(0); i < 500; i++ {
		vals = append(vals, value.NewInt(1000+i))
	}
	cs := buildColStats(vals, 64)
	rows, ok := cs.Hist.EqRows(value.NewInt(7))
	if !ok || rows != 500 {
		t.Fatalf("heavy hitter EqRows = %v, %v (want exactly 500)", rows, ok)
	}
	// A singleton bucket contributes nothing strictly below its key.
	if lt := cs.Hist.LtRows(value.NewInt(7)); lt != 0 {
		t.Fatalf("LtRows(7) = %v, want 0 (7 is the smallest value)", lt)
	}
	// Tail keys estimate their per-key average, not the hitter's.
	rows, ok = cs.Hist.EqRows(value.NewInt(1250))
	if !ok || rows > 20 {
		t.Fatalf("tail EqRows = %v, %v (want a per-key average near 1)", rows, ok)
	}
}

func TestHistogramRangeCounts(t *testing.T) {
	var vals []value.Value
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, value.NewInt(i))
	}
	cs := buildColStats(vals, 64)
	h := cs.Hist
	if lt := h.LtRows(value.NewInt(500)); lt < 450 || lt > 550 {
		t.Fatalf("LtRows(500) = %v, want ≈500", lt)
	}
	if le := h.LeRows(value.NewInt(999)); le != 1000 {
		t.Fatalf("LeRows(max) = %v, want 1000", le)
	}
	if lt := h.LtRows(value.NewInt(0)); lt != 0 {
		t.Fatalf("LtRows(min) = %v, want 0", lt)
	}
	if lt := h.LtRows(value.NewInt(5000)); lt != 1000 {
		t.Fatalf("LtRows beyond max = %v, want all rows", lt)
	}
	if _, ok := h.EqRows(value.NewInt(5000)); ok {
		t.Fatal("EqRows beyond the key range must report ok=false")
	}
	if _, ok := h.EqRows(value.NewInt(-3)); ok {
		t.Fatal("EqRows below the key range must report ok=false")
	}
}

// TestHistogramStrings: no distance metric, so intra-bucket interpolation
// falls back to half the bucket, and exact boundary keys still count exactly.
func TestHistogramStrings(t *testing.T) {
	var vals []value.Value
	for _, s := range []string{"APPLE", "BANANA", "CHERRY", "DATE"} {
		for i := 0; i < 10; i++ {
			vals = append(vals, value.NewString(s))
		}
	}
	cs := buildColStats(vals, 2)
	rows, ok := cs.Hist.EqRows(value.NewString("BANANA"))
	if !ok || rows != 10 {
		t.Fatalf("EqRows(BANANA) = %v, %v", rows, ok)
	}
	lt := cs.Hist.LtRows(value.NewString("CHERRY"))
	if lt < 10 || lt > 30 {
		t.Fatalf("LtRows(CHERRY) = %v, want within a bucket of the true 20", lt)
	}
}

package catalog

import (
	"strings"
	"testing"

	"systemr/internal/storage"
	"systemr/internal/value"
)

func newCat() *Catalog { return New(storage.NewDisk()) }

func cols(names ...string) []Column {
	out := make([]Column, len(names))
	for i, n := range names {
		out[i] = Column{Name: n, Type: value.KindInt}
	}
	return out
}

func insertRows(t *testing.T, tab *Table, rows []value.Row) {
	t.Helper()
	for _, r := range rows {
		rec := storage.EncodeVersionedRow(storage.VersionHeader{Xmin: storage.FrozenXID, Prev: storage.NoPrevTID}, r)
		if _, err := tab.Segment.Insert(tab.ID, rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := newCat()
	if _, err := c.CreateTable("T", cols("A", "B"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", cols("A"), ""); err == nil {
		t.Fatal("duplicate table (case-insensitive) must fail")
	}
	if _, err := c.CreateTable("U", nil, ""); err == nil {
		t.Fatal("zero columns must fail")
	}
	if _, err := c.CreateTable("V", cols("A", "a"), ""); err == nil {
		t.Fatal("duplicate column must fail")
	}
	tab, ok := c.Table("t")
	if !ok || tab.Name != "T" {
		t.Fatal("case-insensitive lookup failed")
	}
	if tab.ColumnIndex("b") != 1 || tab.ColumnIndex("Z") != -1 {
		t.Fatal("ColumnIndex broken")
	}
}

func TestDropTable(t *testing.T) {
	c := newCat()
	c.CreateTable("T", cols("A"), "")
	if err := c.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("T"); ok {
		t.Fatal("table still visible after drop")
	}
	if err := c.DropTable("T"); err == nil {
		t.Fatal("double drop must fail")
	}
}

func TestSharedSegments(t *testing.T) {
	c := newCat()
	a, _ := c.CreateTable("A", cols("X"), "SEG1")
	b, _ := c.CreateTable("B", cols("X"), "seg1")
	d, _ := c.CreateTable("D", cols("X"), "")
	if a.Segment != b.Segment {
		t.Fatal("same-named segments (case-insensitive) must be shared")
	}
	if a.Segment == d.Segment {
		t.Fatal("private segment must be distinct")
	}
}

func TestCreateIndexAndBulkLoad(t *testing.T) {
	c := newCat()
	tab, _ := c.CreateTable("T", cols("A", "B"), "")
	rows := []value.Row{
		{value.NewInt(3), value.NewInt(30)},
		{value.NewInt(1), value.NewInt(10)},
		{value.NewInt(2), value.NewInt(20)},
	}
	insertRows(t, tab, rows)
	ix, err := c.CreateIndex("T_A", "T", []string{"A"}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 3 {
		t.Fatalf("bulk load inserted %d entries", ix.Tree.Len())
	}
	it := ix.Tree.Seek(storage.StmtIO{}, nil)
	prev := int64(-1)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e.Key[0].Int <= prev {
			t.Fatal("index not sorted")
		}
		prev = e.Key[0].Int
	}
	if _, err := c.CreateIndex("T_A", "T", []string{"A"}, false, false); err == nil {
		t.Fatal("duplicate index name must fail")
	}
	if _, err := c.CreateIndex("T_Z", "T", []string{"Z"}, false, false); err == nil {
		t.Fatal("unknown column must fail")
	}
	if _, err := c.CreateIndex("U_A", "U", []string{"A"}, false, false); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestUniqueIndexViolationOnBuild(t *testing.T) {
	c := newCat()
	tab, _ := c.CreateTable("T", cols("A"), "")
	insertRows(t, tab, []value.Row{{value.NewInt(1)}, {value.NewInt(1)}})
	if _, err := c.CreateIndex("T_A", "T", []string{"A"}, true, false); err == nil {
		t.Fatal("unique index over duplicate data must fail")
	} else if !strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSingleClusteredIndex(t *testing.T) {
	c := newCat()
	c.CreateTable("T", cols("A", "B"), "")
	if _, err := c.CreateIndex("T_A", "T", []string{"A"}, false, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("T_B", "T", []string{"B"}, false, true); err == nil {
		t.Fatal("second clustered index must fail")
	}
	tab, _ := c.Table("T")
	if tab.ClusteredIndex() == nil || tab.ClusteredIndex().Name != "T_A" {
		t.Fatal("ClusteredIndex lookup broken")
	}
}

func TestUpdateStatistics(t *testing.T) {
	c := newCat()
	tab, _ := c.CreateTable("T", []Column{{Name: "A", Type: value.KindInt}, {Name: "PAD", Type: value.KindString}}, "")
	pad := strings.Repeat("x", 500)
	var rows []value.Row
	for i := 0; i < 40; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i % 8)), value.NewString(pad)})
	}
	insertRows(t, tab, rows)
	c.CreateIndex("T_A", "T", []string{"A"}, false, false)
	c.UpdateStatistics()

	st := tab.Stats
	if !st.HasStats || st.NCard != 40 {
		t.Fatalf("NCARD: %+v", st)
	}
	// ~510 bytes per record (+slot) → 8 per page → 5 pages.
	if st.TCard < 5 || st.TCard > 7 {
		t.Fatalf("TCARD=%d", st.TCard)
	}
	if st.P != 1.0 {
		t.Fatalf("P=%f for a private segment", st.P)
	}
	ist := tab.Indexes[0].Stats
	if ist.ICard != 8 || ist.ICardLead != 8 {
		t.Fatalf("ICARD=%d lead=%d", ist.ICard, ist.ICardLead)
	}
	if ist.Low.Int != 0 || ist.High.Int != 7 {
		t.Fatalf("key range [%v, %v]", ist.Low, ist.High)
	}
	if ist.NIndx < 1 {
		t.Fatalf("NINDX=%d", ist.NIndx)
	}
}

func TestUpdateStatisticsSharedSegmentP(t *testing.T) {
	c := newCat()
	a, _ := c.CreateTable("A", []Column{{Name: "PAD", Type: value.KindString}}, "S")
	b, _ := c.CreateTable("B", []Column{{Name: "PAD", Type: value.KindString}}, "S")
	pad := value.Row{value.NewString(strings.Repeat("y", 1000))}
	for i := 0; i < 12; i++ {
		insertRows(t, a, []value.Row{pad})
	}
	a.Segment.InterleaveBreak()
	for i := 0; i < 12; i++ {
		insertRows(t, b, []value.Row{pad})
	}
	c.UpdateStatistics()
	if a.Stats.P >= 1.0 || b.Stats.P >= 1.0 {
		t.Fatalf("shared segment should give P < 1: A=%f B=%f", a.Stats.P, b.Stats.P)
	}
	if p := a.Stats.P + b.Stats.P; p < 0.99 || p > 1.01 {
		t.Fatalf("P fractions should sum to 1 without shared pages, got %f", p)
	}
}

func TestStatDefaults(t *testing.T) {
	var rs RelStats
	if rs.EffNCard() != DefaultNCard || rs.EffTCard() != DefaultTCard || rs.EffP() != DefaultP {
		t.Fatal("relation defaults wrong")
	}
	var is IndexStats
	if is.EffICard() != DefaultICard || is.EffICardLead() != DefaultICard || is.EffNIndx() != 1 {
		t.Fatal("index defaults wrong")
	}
	rs = RelStats{HasStats: true, NCard: 5, TCard: 2, P: 0.5}
	if rs.EffNCard() != 5 || rs.EffTCard() != 2 || rs.EffP() != 0.5 {
		t.Fatal("real statistics not passed through")
	}
}

func TestIndexKeyFor(t *testing.T) {
	c := newCat()
	tab, _ := c.CreateTable("T", cols("A", "B", "C"), "")
	ix, _ := c.CreateIndex("T_CA", "T", []string{"C", "A"}, false, false)
	key := ix.KeyFor(value.Row{value.NewInt(1), value.NewInt(2), value.NewInt(3)})
	if key[0].Int != 3 || key[1].Int != 1 {
		t.Fatalf("KeyFor = %v", key)
	}
	names := ix.ColumnNames()
	if names[0] != "C" || names[1] != "A" {
		t.Fatalf("ColumnNames = %v", names)
	}
	_ = tab
	if _, ok := c.Index("t_ca"); !ok {
		t.Fatal("index lookup by name failed")
	}
}

// TestVersionBumps: every DDL statement and statistics refresh advances the
// catalog version; reads and lazy system-catalog materialization do not.
func TestVersionBumps(t *testing.T) {
	c := newCat()
	if c.Version() != 1 {
		t.Fatalf("fresh catalog version = %d, want 1", c.Version())
	}
	step := func(what string, f func()) {
		t.Helper()
		before := c.Version()
		f()
		if c.Version() != before+1 {
			t.Fatalf("%s: version %d -> %d, want +1", what, before, c.Version())
		}
	}
	step("CREATE TABLE", func() { c.CreateTable("T", cols("A"), "") })
	step("CREATE INDEX", func() { c.CreateIndex("T_A", "T", []string{"A"}, false, false) })
	step("UPDATE STATISTICS", func() { c.UpdateStatistics() })
	step("UPDATE STATISTICS FOR", func() { c.UpdateStatisticsFor("T") })
	step("DROP INDEX", func() {
		if err := c.DropIndex("T_A"); err != nil {
			t.Fatal(err)
		}
	})
	step("DROP TABLE", func() {
		if err := c.DropTable("T"); err != nil {
			t.Fatal(err)
		}
	})
	// Reads — including the first Tables() call, which materializes the
	// system catalogs lazily — must not move the version.
	before := c.Version()
	c.Tables()
	c.Table("SYSTABLES")
	if c.Version() != before {
		t.Fatalf("read-side access bumped version %d -> %d", before, c.Version())
	}
}

func TestDropIndex(t *testing.T) {
	c := newCat()
	tab, _ := c.CreateTable("T", cols("A", "B"), "")
	c.CreateIndex("T_A", "T", []string{"A"}, false, false)
	c.CreateIndex("T_B", "T", []string{"B"}, false, false)
	held := tab.Indexes                        // a cached plan's view of the index list
	if err := c.DropIndex("t_a"); err != nil { // case-insensitive
		t.Fatal(err)
	}
	if len(tab.Indexes) != 1 || tab.Indexes[0].Name != "T_B" {
		t.Fatalf("indexes after drop: %v", tab.Indexes)
	}
	if _, ok := c.Index("T_A"); ok {
		t.Fatal("dropped index still resolvable by name")
	}
	// The pre-drop slice must be untouched: compiled plans may still hold it.
	if len(held) != 2 {
		t.Fatalf("drop mutated the previous index slice: %v", held)
	}
	if err := c.DropIndex("NOPE"); err == nil {
		t.Fatal("dropping a missing index must fail")
	}
}

// TestEffICardEmptyIndex: an analyzed index over an empty relation must not
// fall back to DefaultICard (that would be treating measured emptiness as
// missing statistics) nor divide selectivity by zero — it floors at 1.
func TestEffICardEmptyIndex(t *testing.T) {
	c := newCat()
	c.CreateTable("T", cols("A"), "")
	c.CreateIndex("T_A", "T", []string{"A"}, false, false)
	c.UpdateStatistics()
	tab, _ := c.Table("T")
	st := tab.Indexes[0].Stats
	if !st.HasStats {
		t.Fatal("UPDATE STATISTICS should mark the index analyzed")
	}
	if st.EffICard() != 1 || st.EffICardLead() != 1 {
		t.Fatalf("empty analyzed index: EffICard=%v EffICardLead=%v, want 1",
			st.EffICard(), st.EffICardLead())
	}
}

package testutil

// Robustness-layer leak accounting. Every RSI scan increments a process-wide
// counter on Open and decrements it on Close; a test that finishes with the
// counter above its starting point has leaked a scan (an executor exit path
// that skipped Close).

import (
	"testing"

	"systemr/internal/rss"
)

// AssertNoLeaks registers a cleanup that fails the test if it exits with
// more open RSI scans than when AssertNoLeaks was called. Call it at the
// start of any test that executes queries.
func AssertNoLeaks(t testing.TB) {
	t.Helper()
	before := rss.OpenScans()
	t.Cleanup(func() {
		if after := rss.OpenScans(); after != before {
			t.Errorf("scan leak: %d RSI scans still open at test end (was %d at start)", after, before)
		}
	})
}

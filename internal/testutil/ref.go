// Package testutil contains a brute-force reference query evaluator used for
// differential testing: every plan the optimizer chooses — under any
// configuration ablation — must return the same multiset of rows as this
// evaluator, which shares no code with the executor (it enumerates cross
// products directly from stored pages and re-evaluates subqueries naively).
package testutil

import (
	"fmt"
	"sort"

	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// RunBlock evaluates an analyzed query block by brute force.
func RunBlock(disk *storage.Disk, blk *sem.Block) ([]value.Row, error) {
	return runBlock(disk, blk, nil)
}

func runBlock(disk *storage.Disk, blk *sem.Block, params []value.Value) ([]value.Row, error) {
	rc := &refCtx{disk: disk, blk: blk, params: params}

	// Load every relation.
	rels := make([][]value.Row, len(blk.Rels))
	for i, r := range blk.Rels {
		rows, err := loadTable(disk, r)
		if err != nil {
			return nil, err
		}
		rels[i] = rows
	}

	// Enumerate the cross product, keeping composites that satisfy every
	// boolean factor.
	var comps [][]value.Row
	idx := make([]int, len(rels))
	for {
		c := make([]value.Row, len(rels))
		for i := range rels {
			if len(rels[i]) == 0 {
				goto done // empty relation → empty cross product
			}
			c[i] = rels[i][idx[i]]
		}
		{
			ok := true
			for _, f := range blk.Factors {
				v, err := rc.eval(c, f.Expr)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					ok = false
					break
				}
			}
			if ok {
				comps = append(comps, c)
			}
		}
		// Odometer increment.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(rels[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
done:

	if blk.HasAgg {
		return rc.aggregate(comps)
	}

	// ORDER BY on composites, then project, then DISTINCT.
	if len(blk.OrderBy) > 0 {
		sortComps(comps, blk.OrderBy)
	}
	out := make([]value.Row, 0, len(comps))
	for _, c := range comps {
		row, err := rc.project(c, blk.Select)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	if blk.Distinct {
		out = dedupe(out)
	}
	return out, nil
}

func loadTable(disk *storage.Disk, r *sem.RelRef) ([]value.Row, error) {
	var rows []value.Row
	for _, pid := range r.Table.Segment.Pages() {
		page := disk.Page(pid)
		for s := uint16(0); s < page.NumSlots(); s++ {
			rec, rel, ok := page.Record(s)
			if !ok || rel != r.Table.ID {
				continue
			}
			h, body, err := storage.ParseVersionHeader(rec)
			if err != nil {
				return nil, err
			}
			if h.Xmax != 0 {
				continue // dead version awaiting vacuum
			}
			row, err := storage.DecodeRow(body)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func sortComps(comps [][]value.Row, keys []sem.OrderKey) {
	sort.SliceStable(comps, func(i, j int) bool {
		for _, k := range keys {
			cmp := value.Compare(comps[i][k.Col.Rel][k.Col.Col], comps[j][k.Col.Rel][k.Col.Col])
			if k.Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

func dedupe(rows []value.Row) []value.Row {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		k := string(storage.EncodeRow(r))
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// refCtx evaluates expressions independently of the executor.
type refCtx struct {
	disk    *storage.Disk
	blk     *sem.Block
	params  []value.Value
	aggVals []value.Value
}

func (rc *refCtx) project(c []value.Row, exprs []sem.Expr) (value.Row, error) {
	out := make(value.Row, len(exprs))
	for i, e := range exprs {
		v, err := rc.eval(c, e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// aggregate groups the qualifying composites and evaluates the aggregated
// SELECT list per group.
func (rc *refCtx) aggregate(comps [][]value.Row) ([]value.Row, error) {
	blk := rc.blk
	type group struct {
		rep   []value.Row
		items [][]value.Row
	}
	var order []string
	groups := map[string]*group{}
	for _, c := range comps {
		key := make(value.Row, len(blk.GroupBy))
		for i, g := range blk.GroupBy {
			key[i] = c[g.Rel][g.Col]
		}
		k := string(storage.EncodeRow(key))
		g, ok := groups[k]
		if !ok {
			g = &group{rep: c}
			groups[k] = g
			order = append(order, k)
		}
		g.items = append(g.items, c)
	}
	if len(blk.GroupBy) == 0 && len(groups) == 0 {
		// Scalar aggregate over empty input: one all-empty group.
		groups[""] = &group{rep: make([]value.Row, len(blk.Rels))}
		order = append(order, "")
	}

	var out []value.Row
	var reps [][]value.Row
	for _, k := range order {
		g := groups[k]
		aggVals := make([]value.Value, len(blk.Aggs))
		for ai, a := range blk.Aggs {
			v, err := rc.aggValue(a, g.items)
			if err != nil {
				return nil, err
			}
			aggVals[ai] = v
		}
		rc.aggVals = aggVals
		keep := true
		for _, h := range blk.Having {
			v, err := rc.eval(g.rep, h)
			if err != nil {
				rc.aggVals = nil
				return nil, err
			}
			if !truthy(v) {
				keep = false
				break
			}
		}
		if !keep {
			rc.aggVals = nil
			continue
		}
		row, err := rc.project(g.rep, blk.Select)
		rc.aggVals = nil
		if err != nil {
			return nil, err
		}
		out = append(out, row)
		reps = append(reps, g.rep)
	}

	if len(blk.OrderBy) > 0 {
		type pair struct {
			rep []value.Row
			row value.Row
		}
		pairs := make([]pair, len(out))
		for i := range out {
			pairs[i] = pair{rep: reps[i], row: out[i]}
		}
		sort.SliceStable(pairs, func(i, j int) bool {
			for _, k := range blk.OrderBy {
				cmp := value.Compare(pairs[i].rep[k.Col.Rel][k.Col.Col], pairs[j].rep[k.Col.Rel][k.Col.Col])
				if k.Desc {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		for i := range pairs {
			out[i] = pairs[i].row
		}
	}
	if blk.Distinct {
		out = dedupe(out)
	}
	return out, nil
}

func (rc *refCtx) aggValue(a *sem.Agg, items [][]value.Row) (value.Value, error) {
	if a.Star {
		return value.NewInt(int64(len(items))), nil
	}
	var vals []value.Value
	for _, c := range items {
		v, err := rc.eval(c, a.Arg)
		if err != nil {
			return value.Value{}, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch a.Name {
	case "COUNT":
		return value.NewInt(int64(len(vals))), nil
	case "SUM":
		if len(vals) == 0 {
			return value.Null(), nil
		}
		isFloat := false
		var si int64
		var sf float64
		for _, v := range vals {
			if v.Kind == value.KindFloat {
				isFloat = true
			}
			si += v.Int
			sf += v.AsFloat()
		}
		if isFloat {
			return value.NewFloat(sf), nil
		}
		return value.NewInt(si), nil
	case "AVG":
		if len(vals) == 0 {
			return value.Null(), nil
		}
		var sf float64
		for _, v := range vals {
			sf += v.AsFloat()
		}
		return value.NewFloat(sf / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return value.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp := value.Compare(v, best)
			if (a.Name == "MIN" && cmp < 0) || (a.Name == "MAX" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return value.Value{}, fmt.Errorf("testutil: unknown aggregate %s", a.Name)
	}
}

func truthy(v value.Value) bool {
	switch v.Kind {
	case value.KindInt:
		return v.Int != 0
	case value.KindFloat:
		return v.Float != 0
	default:
		return false
	}
}

func boolVal(b bool) value.Value {
	if b {
		return value.NewInt(1)
	}
	return value.NewInt(0)
}

func (rc *refCtx) eval(c []value.Row, e sem.Expr) (value.Value, error) {
	switch x := e.(type) {
	case *sem.Col:
		return c[x.ID.Rel][x.ID.Col], nil
	case *sem.Const:
		return x.Val, nil
	case *sem.Param:
		if x.ID >= len(rc.params) {
			return value.Value{}, fmt.Errorf("testutil: parameter $%d unbound", x.ID)
		}
		return rc.params[x.ID], nil
	case *sem.AggRef:
		return rc.aggVals[x.Idx], nil
	case *sem.Bin:
		switch x.Op {
		case sem.OpAnd, sem.OpOr:
			l, err := rc.eval(c, x.L)
			if err != nil {
				return value.Value{}, err
			}
			r, err := rc.eval(c, x.R)
			if err != nil {
				return value.Value{}, err
			}
			if x.Op == sem.OpAnd {
				return boolVal(truthy(l) && truthy(r)), nil
			}
			return boolVal(truthy(l) || truthy(r)), nil
		}
		l, err := rc.eval(c, x.L)
		if err != nil {
			return value.Value{}, err
		}
		r, err := rc.eval(c, x.R)
		if err != nil {
			return value.Value{}, err
		}
		if x.Op.IsComparison() {
			return boolVal(x.Op.CmpOp().Apply(l, r)), nil
		}
		switch x.Op {
		case sem.OpAdd:
			return value.Arith('+', l, r), nil
		case sem.OpSub:
			return value.Arith('-', l, r), nil
		case sem.OpMul:
			return value.Arith('*', l, r), nil
		case sem.OpDiv:
			return value.Arith('/', l, r), nil
		}
		return value.Value{}, fmt.Errorf("testutil: bad operator %v", x.Op)
	case *sem.Not:
		v, err := rc.eval(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		return boolVal(!truthy(v)), nil
	case *sem.Neg:
		v, err := rc.eval(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		return value.Arith('-', value.NewInt(0), v), nil
	case *sem.Between:
		v, err := rc.eval(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		lo, err := rc.eval(c, x.Lo)
		if err != nil {
			return value.Value{}, err
		}
		hi, err := rc.eval(c, x.Hi)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return boolVal(false), nil
		}
		in := value.OpGe.Apply(v, lo) && value.OpLe.Apply(v, hi)
		if x.Negated {
			return boolVal(!in), nil
		}
		return boolVal(in), nil
	case *sem.InList:
		v, err := rc.eval(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return boolVal(false), nil
		}
		found := false
		for _, le := range x.List {
			lv, err := rc.eval(c, le)
			if err != nil {
				return value.Value{}, err
			}
			if value.OpEq.Apply(v, lv) {
				found = true
				break
			}
		}
		if x.Negated {
			return boolVal(!found), nil
		}
		return boolVal(found), nil
	case *sem.InSub:
		v, err := rc.eval(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return boolVal(false), nil
		}
		rows, err := rc.runSub(c, x.Sub)
		if err != nil {
			return value.Value{}, err
		}
		found := false
		for _, r := range rows {
			if value.OpEq.Apply(v, r[0]) {
				found = true
				break
			}
		}
		if x.Negated {
			return boolVal(!found), nil
		}
		return boolVal(found), nil
	case *sem.ScalarSub:
		rows, err := rc.runSub(c, x.Sub)
		if err != nil {
			return value.Value{}, err
		}
		switch len(rows) {
		case 0:
			return value.Null(), nil
		case 1:
			return rows[0][0], nil
		default:
			return value.Value{}, fmt.Errorf("testutil: scalar subquery returned %d rows", len(rows))
		}
	default:
		return value.Value{}, fmt.Errorf("testutil: unsupported expression %T", e)
	}
}

// runSub evaluates a subquery with correlation values drawn from the current
// composite — naively, with no caching.
func (rc *refCtx) runSub(c []value.Row, sub *sem.Subquery) ([]value.Row, error) {
	childParams := make([]value.Value, sub.Block.NumParams)
	for _, cr := range sub.Block.CorrelRefs {
		if cr.FromParam {
			childParams[cr.ParamID] = rc.params[cr.ParentParam]
		} else {
			childParams[cr.ParamID] = c[cr.FromCol.Rel][cr.FromCol.Col]
		}
	}
	return runBlock(rc.disk, sub.Block, childParams)
}

// SortedKey canonicalizes a result multiset for comparison: the encoded rows,
// sorted.
func SortedKey(rows []value.Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = string(storage.EncodeRow(r))
	}
	sort.Strings(keys)
	return keys
}

// SameMultiset reports whether two results contain the same rows with the
// same multiplicities (ignoring order).
func SameMultiset(a, b []value.Row) bool {
	ka, kb := SortedKey(a), SortedKey(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

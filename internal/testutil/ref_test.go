package testutil

import (
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// The reference evaluator is the oracle for the differential tests, so it
// gets its own spot-checks against hand-computed results.

func setup(t *testing.T) (*catalog.Catalog, *storage.Disk) {
	t.Helper()
	disk := storage.NewDisk()
	cat := catalog.New(disk)
	a, err := cat.CreateTable("A", []catalog.Column{
		{Name: "K", Type: value.KindInt},
		{Name: "V", Type: value.KindInt},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cat.CreateTable("B", []catalog.Column{
		{Name: "K", Type: value.KindInt},
		{Name: "W", Type: value.KindString},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	// A: (1,10) (1,20) (2,30) ; B: (1,'x') (2,'y') (3,'z')
	for _, r := range []value.Row{
		{value.NewInt(1), value.NewInt(10)},
		{value.NewInt(1), value.NewInt(20)},
		{value.NewInt(2), value.NewInt(30)},
	} {
		if _, _, err := rss.Insert(a, r, storage.FrozenXID, storage.NoPrevTID, disk); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []value.Row{
		{value.NewInt(1), value.NewString("x")},
		{value.NewInt(2), value.NewString("y")},
		{value.NewInt(3), value.NewString("z")},
	} {
		if _, _, err := rss.Insert(b, r, storage.FrozenXID, storage.NoPrevTID, disk); err != nil {
			t.Fatal(err)
		}
	}
	return cat, disk
}

func run(t *testing.T, cat *catalog.Catalog, disk *storage.Disk, query string) []value.Row {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	blk, err := sem.Analyze(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	rows, err := RunBlock(disk, blk)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rows
}

func TestReferenceJoin(t *testing.T) {
	cat, disk := setup(t)
	rows := run(t, cat, disk, "SELECT A.V, B.W FROM A, B WHERE A.K = B.K")
	if len(rows) != 3 {
		t.Fatalf("join rows: %v", rows)
	}
}

func TestReferenceAggregation(t *testing.T) {
	cat, disk := setup(t)
	rows := run(t, cat, disk, "SELECT K, COUNT(*), SUM(V), AVG(V) FROM A GROUP BY K ORDER BY K")
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rows)
	}
	if rows[0][0].Int != 1 || rows[0][1].Int != 2 || rows[0][2].Int != 30 || rows[0][3].Float != 15 {
		t.Fatalf("group 1: %v", rows[0])
	}
	if rows[1][0].Int != 2 || rows[1][1].Int != 1 {
		t.Fatalf("group 2: %v", rows[1])
	}
}

func TestReferenceScalarAggEmpty(t *testing.T) {
	cat, disk := setup(t)
	rows := run(t, cat, disk, "SELECT COUNT(*), MAX(V) FROM A WHERE K = 99")
	if len(rows) != 1 || rows[0][0].Int != 0 || !rows[0][1].IsNull() {
		t.Fatalf("empty scalar agg: %v", rows)
	}
}

func TestReferenceOrderingAndDistinct(t *testing.T) {
	cat, disk := setup(t)
	rows := run(t, cat, disk, "SELECT V FROM A ORDER BY V DESC")
	if rows[0][0].Int != 30 || rows[2][0].Int != 10 {
		t.Fatalf("order: %v", rows)
	}
	rows = run(t, cat, disk, "SELECT DISTINCT K FROM A")
	if len(rows) != 2 {
		t.Fatalf("distinct: %v", rows)
	}
}

func TestReferenceSubqueries(t *testing.T) {
	cat, disk := setup(t)
	rows := run(t, cat, disk, "SELECT V FROM A WHERE V > (SELECT AVG(V) FROM A)")
	if len(rows) != 1 || rows[0][0].Int != 30 {
		t.Fatalf("scalar sub: %v", rows)
	}
	rows = run(t, cat, disk, "SELECT W FROM B WHERE K IN (SELECT K FROM A)")
	if len(rows) != 2 {
		t.Fatalf("in sub: %v", rows)
	}
	// Correlated: B rows whose K has at least 2 A-matches.
	rows = run(t, cat, disk,
		"SELECT W FROM B X WHERE 2 <= (SELECT COUNT(*) FROM A WHERE K = X.K)")
	if len(rows) != 1 || rows[0][0].Str != "x" {
		t.Fatalf("correlated: %v", rows)
	}
}

func TestReferenceEmptyCrossProduct(t *testing.T) {
	cat, disk := setup(t)
	if _, err := cat.CreateTable("EMPTY", []catalog.Column{{Name: "X", Type: value.KindInt}}, ""); err != nil {
		t.Fatal(err)
	}
	rows := run(t, cat, disk, "SELECT A.V FROM A, EMPTY")
	if len(rows) != 0 {
		t.Fatalf("cross with empty: %v", rows)
	}
}

func TestSameMultiset(t *testing.T) {
	a := []value.Row{{value.NewInt(1)}, {value.NewInt(2)}, {value.NewInt(1)}}
	b := []value.Row{{value.NewInt(2)}, {value.NewInt(1)}, {value.NewInt(1)}}
	if !SameMultiset(a, b) {
		t.Fatal("equal multisets")
	}
	c := []value.Row{{value.NewInt(2)}, {value.NewInt(2)}, {value.NewInt(1)}}
	if SameMultiset(a, c) {
		t.Fatal("different multiplicities must differ")
	}
	if SameMultiset(a, a[:2]) {
		t.Fatal("different sizes must differ")
	}
}

func TestReferenceOperatorsAndNulls(t *testing.T) {
	cat, disk := setup(t)
	cases := []struct {
		q    string
		rows int
	}{
		{"SELECT V FROM A WHERE NOT (V = 10 OR V = 20)", 1},
		{"SELECT V FROM A WHERE V * 2 = 20", 1},
		{"SELECT -V FROM A WHERE V BETWEEN 10 AND 20", 2},
		{"SELECT V FROM A WHERE V NOT BETWEEN 10 AND 20", 1},
		{"SELECT V FROM A WHERE V IN (10, 30)", 2},
		{"SELECT V FROM A WHERE V NOT IN (10, 30)", 1},
		{"SELECT V FROM A WHERE K <> 1", 1},
		{"SELECT V FROM A WHERE K IN (SELECT K FROM B WHERE W = 'nope')", 0},
		{"SELECT A.V FROM A, B WHERE A.K < B.K", 5},
	}
	for _, c := range cases {
		rows := run(t, cat, disk, c.q)
		if len(rows) != c.rows {
			t.Errorf("%q: %d rows, want %d (%v)", c.q, len(rows), c.rows, rows)
		}
	}
}

func TestReferenceHaving(t *testing.T) {
	cat, disk := setup(t)
	rows := run(t, cat, disk, "SELECT K, COUNT(*) FROM A GROUP BY K HAVING COUNT(*) > 1")
	if len(rows) != 1 || rows[0][0].Int != 1 {
		t.Fatalf("having: %v", rows)
	}
	rows = run(t, cat, disk, "SELECT COUNT(*) FROM A HAVING COUNT(*) > 100")
	if len(rows) != 0 {
		t.Fatalf("scalar having: %v", rows)
	}
}

func TestSortedKeyDeterminism(t *testing.T) {
	rows := []value.Row{{value.NewInt(2)}, {value.NewInt(1)}}
	k1 := SortedKey(rows)
	k2 := SortedKey([]value.Row{{value.NewInt(1)}, {value.NewInt(2)}})
	if len(k1) != 2 || k1[0] != k2[0] || k1[1] != k2[1] {
		t.Fatal("sorted keys must be order-insensitive")
	}
}

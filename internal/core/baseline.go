package core

// Baseline planner for the evaluation harness: the plan a system without an
// optimizer would run — segment scans everywhere, FROM-order left-deep
// nested-loop joins, every predicate evaluated as a residual filter above
// the scans (nothing pushed into RSS search arguments, no index use, no
// interesting orders). Comparing its measured cost against the optimizer's
// chosen plan quantifies what access path selection buys.

import (
	"math"

	"systemr/internal/plan"
	"systemr/internal/sem"
)

// NaivePlan builds the unoptimized plan for a block (and, recursively, for
// its nested blocks).
func NaivePlan(o *Optimizer, blk *sem.Block) (*plan.Query, error) {
	// Nested blocks first, naively as well.
	subPlans := make([]*plan.SubPlan, 0, len(blk.Subqueries))
	subInfo := make(map[*sem.Subquery]subStats, len(blk.Subqueries))
	for _, sub := range blk.Subqueries {
		sp, err := NaivePlan(o, sub.Block)
		if err != nil {
			return nil, err
		}
		relProd := 1.0
		for _, r := range sub.Block.Rels {
			relProd *= r.Table.Stats.EffNCard()
		}
		subPlan := &plan.SubPlan{Sub: sub, Query: sp}
		subPlans = append(subPlans, subPlan)
		subInfo[sub] = subStats{plan: subPlan, qcard: sp.Root.Est().Rows, relProd: relProd}
	}

	// Reuse the optimizer's per-block state for selectivities, equivalence
	// classes, and the required-order computation (estimates only; the plan
	// shape below ignores them).
	o.blk = blk
	o.nextParam = blk.NumParams
	o.subInfo = subInfo
	o.classes = newOrderClasses()
	for _, f := range blk.Factors {
		if f.EquiJoin != nil {
			o.classes.union(f.EquiJoin.Left, f.EquiJoin.Right)
		}
	}
	o.factors = make([]*factorInfo, len(blk.Factors))
	for i, f := range blk.Factors {
		rels := f.Rels
		if rels == 0 {
			rels = rels.Set(0)
		}
		o.factors[i] = &factorInfo{f: f, sel: o.selectivity(f.Expr), rels: rels}
	}

	node := o.naiveScan(0)
	covered := sem.RelSet(0).Set(0)
	for r := 1; r < len(blk.Rels); r++ {
		inner := o.naiveScan(r)
		next := covered.Set(r)
		var residual []sem.Expr
		var rOnly sem.RelSet
		rOnly = rOnly.Set(r)
		for _, fi := range o.factors {
			if next.Contains(fi.rels) && !covered.Contains(fi.rels) && !rOnly.Contains(fi.rels) {
				residual = append(residual, fi.f.Expr)
			}
		}
		join := &plan.NLJoin{Outer: node, Inner: inner, Residual: residual}
		join.SetEst(plan.Estimate{
			Cost: node.Est().Cost.Add(inner.Est().Cost.Scale(math.Max(1, node.Est().Rows))),
			Rows: o.cardOf(next),
		})
		node = join
		covered = next
	}

	if req := o.requiredOrder(); len(req) > 0 {
		full := covered
		sc := o.sortCost(node.Est().Rows, o.setWidth(full))
		sortNode := &plan.Sort{Input: node, Keys: o.sortKeysFor(req, full)}
		sortNode.SetEst(plan.Estimate{Cost: node.Est().Cost.Add(sc), Rows: node.Est().Rows})
		node = sortNode
	}
	root := o.assemble(&solution{set: covered, node: node, cost: node.Est().Cost})
	return &plan.Query{
		Block:     blk,
		Root:      root,
		Subs:      subPlans,
		NumParams: o.nextParam,
		OutNames:  blk.SelectNames,
	}, nil
}

// naiveScan is a segment scan with every local factor as a residual filter.
func (o *Optimizer) naiveScan(rel int) plan.Node {
	t := o.blk.Rels[rel].Table
	var single sem.RelSet
	single = single.Set(rel)
	var residual []sem.Expr
	selAll := 1.0
	for _, fi := range o.factors {
		if fi.rels == single {
			residual = append(residual, fi.f.Expr)
			selAll = clamp01(selAll * fi.sel)
		}
	}
	st := t.Stats
	node := &plan.SegScan{Table: t, RelIdx: rel, RelName: o.blk.Rels[rel].Name, Residual: residual}
	node.SetEst(plan.Estimate{
		Cost: plan.Cost{Pages: st.EffTCard() / st.EffP(), RSI: st.EffNCard()},
		Rows: st.EffNCard() * selAll,
	})
	return node
}

package core

// Histogram-based selectivity: the estimation layer between a predicate and
// Table 1. Every column-vs-value decision consults, in precedence order,
//
//  1. the column's equi-depth histogram (catalog.ColStats, built by UPDATE
//     STATISTICS for every column, indexed or not),
//  2. the leading-column ICARD of an index on the column (the paper's
//     original statistics), and
//  3. the Table 1 default for the predicate shape.
//
// Histogram answers come back as row counts; the fraction — and its clamp —
// happens here, behind clamp01, keeping the PR 4 single-entry-point
// invariant. Out-of-range constants (possible whenever statistics are stale
// relative to the data) are floored at one key's worth of rows rather than
// rounding to zero, so a point query past a stale high key never plans
// against QCARD 0.

import (
	"math"

	"systemr/internal/catalog"
	"systemr/internal/sem"
	"systemr/internal/value"
)

// histStats returns the column's histogram statistics, or nil when
// histograms are disabled, the relation is unanalyzed, or the column's rows
// could not be profiled.
func (o *Optimizer) histStats(id sem.ColumnID) *catalog.ColStats {
	if o.cfg.DisableHistograms {
		return nil
	}
	t := o.blk.Rels[id.Rel].Table
	if id.Col >= len(t.ColStats) {
		return nil
	}
	cs := &t.ColStats[id.Col]
	if !cs.HasStats {
		return nil
	}
	return cs
}

// constOperand extracts a non-null constant from an expression, the only
// operand shape whose value is known at access path selection time.
func constOperand(e sem.Expr) (value.Value, bool) {
	c, ok := e.(*sem.Const)
	if !ok || c.Val.IsNull() {
		return value.Value{}, false
	}
	return c.Val, true
}

// eqSel estimates "col = other" through the full precedence chain. With a
// histogram and a known constant it is the bucket-weighted 1/d: the
// containing bucket's rows-per-key over the row count. With an unknown value
// (parameter, subquery result) it is 1/NDistinct from the column statistics,
// then 1/ICARD from an index, then the 1/10 default.
func (o *Optimizer) eqSel(col *sem.Col, other sem.Expr) float64 {
	if cs := o.histStats(col.ID); cs != nil {
		if v, known := constOperand(other); known && cs.Hist != nil && cs.Hist.NRows > 0 {
			rows, inRange := cs.Hist.EqRows(v)
			if !inRange {
				// Outside the analyzed key range: the statistics may simply
				// be stale, so floor at one key's worth of rows.
				return clamp01(1 / cs.EffNDistinct())
			}
			return clamp01(rows / cs.Hist.TotalRows())
		}
		return clamp01(1 / cs.EffNDistinct())
	}
	if st := o.colStats(col.ID); st != nil && st.HasStats {
		return clamp01(1 / st.EffICardLead())
	}
	return defEq
}

// histRangeSel estimates an open-ended comparison from the histogram,
// returning ok=false when the histogram cannot answer (no histogram, empty,
// or a non-range operator). The result is floored at one key's worth of
// rows: a range that selects nothing observed may still match rows inserted
// since statistics ran.
func (o *Optimizer) histRangeSel(cs *catalog.ColStats, op sem.BinOp, v value.Value) (float64, bool) {
	h := cs.Hist
	if h == nil || h.NRows <= 0 {
		return 0, false
	}
	total := h.TotalRows()
	var rows float64
	switch op {
	case sem.OpGt:
		rows = total - h.LeRows(v)
	case sem.OpGe:
		rows = total - h.LtRows(v)
	case sem.OpLt:
		rows = h.LtRows(v)
	case sem.OpLe:
		rows = h.LeRows(v)
	default:
		return 0, false
	}
	return clamp01(math.Max(rows/total, rowFloor(cs, total))), true
}

// rowFloor is the minimum fraction any sargable range/point estimate may
// report: one key's worth of rows under the observed distinct count.
func rowFloor(cs *catalog.ColStats, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return clamp01(1 / cs.EffNDistinct())
}

// histBetweenSel estimates "col BETWEEN lo AND hi" from the histogram as the
// bucket-fraction difference LeRows(hi) - LtRows(lo), floored like ranges.
func (o *Optimizer) histBetweenSel(cs *catalog.ColStats, lo, hi value.Value) (float64, bool) {
	h := cs.Hist
	if h == nil || h.NRows <= 0 {
		return 0, false
	}
	total := h.TotalRows()
	rows := h.LeRows(hi) - h.LtRows(lo)
	return clamp01(math.Max(rows/total, rowFloor(cs, total))), true
}

package core

// Intra-query parallelism. The exchange placement is a plan post-pass, not a
// costed enumeration dimension: partitioning a segment scan never changes
// its total page fetches or RSI calls (each worker reads a disjoint share of
// the pages), so under the paper's cost model every placement is
// cost-neutral and the pass simply plants an exchange wherever it is safe.
// It runs at compile time so the Parallel operator is part of the compiled
// (and cached) plan — which is why DegreeOfParallelism participates in the
// plan-cache key.

import (
	"systemr/internal/plan"
	"systemr/internal/sem"
)

// parallelize plants Parallel exchange operators over eligible segment
// scans. A scan is eligible when reordering its output cannot be observed
// and its per-row work is safe to run on worker goroutines:
//
//   - not the inner side of a nested-loop join (the inner re-opens per outer
//     tuple with fresh parameter bindings; spawning workers per tuple would
//     also swamp the per-open cost);
//   - no residual predicates (residuals may contain correlated subqueries,
//     whose evaluation state is per-statement, not per-worker);
//   - no subquery-valued search arguments (sarg bounds resolve at OPEN,
//     which on a worker would evaluate the subquery concurrently);
//   - at least minPages segment pages (when minPages > 0): on a smaller
//     relation the exchange's worker startup and row hand-off cost more
//     than the scan itself, so tiny scans stay serial.
//
// Merge joins and ordered GROUP BY never consume a bare segment scan (a
// segment scan produces no order), so recursing through every other operator
// is safe: whatever order the exchange scrambles was not relied upon.
func parallelize(n plan.Node, degree, minPages int, nlInner bool) plan.Node {
	switch x := n.(type) {
	case *plan.SegScan:
		if nlInner || len(x.Residual) > 0 || sargsBindSubquery(x.Sargs) {
			return n
		}
		if minPages > 0 && x.Table.Segment.NumPages() < minPages {
			return n
		}
		p := &plan.Parallel{Input: x, Degree: degree}
		p.SetEst(x.Est())
		return p
	case *plan.NLJoin:
		x.Outer = parallelize(x.Outer, degree, minPages, nlInner)
		x.Inner = parallelize(x.Inner, degree, minPages, true)
	case *plan.MergeJoin:
		x.Outer = parallelize(x.Outer, degree, minPages, nlInner)
		x.Inner = parallelize(x.Inner, degree, minPages, nlInner)
	case *plan.HashJoin:
		x.Outer = parallelize(x.Outer, degree, minPages, nlInner)
		x.Inner = parallelize(x.Inner, degree, minPages, nlInner)
	case *plan.Sort:
		x.Input = parallelize(x.Input, degree, minPages, nlInner)
	case *plan.GroupAgg:
		x.Input = parallelize(x.Input, degree, minPages, nlInner)
	case *plan.Project:
		x.Input = parallelize(x.Input, degree, minPages, nlInner)
	case *plan.Distinct:
		x.Input = parallelize(x.Input, degree, minPages, nlInner)
	}
	return n
}

// sargsBindSubquery reports whether any search-argument bound is a subquery
// result.
func sargsBindSubquery(sargs []sem.SargDNF) bool {
	for _, dnf := range sargs {
		for _, conj := range dnf {
			for _, t := range conj {
				if t.Val.Kind == sem.BoundSub {
					return true
				}
			}
		}
	}
	return false
}

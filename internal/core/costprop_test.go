package core

// Cost-model property tests: invariants every Table 2 costing must satisfy,
// checked across randomized schemas and predicate mixes.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// randomCostDB builds a table with a random number of rows, duplication
// levels, and indexes.
func randomCostDB(t testing.TB, rnd *rand.Rand) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewDisk())
	tab, err := cat.CreateTable("R", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "B", Type: value.KindInt},
		{Name: "C", Type: value.KindFloat},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	rows := 50 + rnd.Intn(2000)
	dupA := 1 + rnd.Intn(50)
	for i := 0; i < rows; i++ {
		rss.Insert(tab, value.Row{
			value.NewInt(int64(i % dupA)),
			value.NewInt(int64(rnd.Intn(100))),
			value.NewFloat(rnd.Float64() * 1000),
		}, storage.FrozenXID, storage.NoPrevTID, cat.Disk())
	}
	if rnd.Intn(2) == 0 {
		cat.CreateIndex("R_A", "R", []string{"A"}, false, rnd.Intn(2) == 0)
	}
	if rnd.Intn(2) == 0 {
		cat.CreateIndex("R_B", "R", []string{"B"}, false, false)
	}
	cat.UpdateStatistics()
	return cat
}

// TestCostInvariants: every enumerated path has non-negative finite cost;
// adding a sargable predicate never increases the RSI estimate; pushed join
// predicates never increase it either.
func TestCostInvariants(t *testing.T) {
	rnd := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		cat := randomCostDB(t, rnd)
		base := fmt.Sprintf("SELECT A FROM R WHERE B > %d", rnd.Intn(100))
		_, o := planFor(t, cat, Config{}, base)
		basePaths := o.genPaths(0, nil)
		for _, p := range basePaths {
			if p.cost.Pages < 0 || p.cost.RSI < 0 ||
				math.IsNaN(p.cost.Pages) || math.IsInf(p.cost.Pages, 0) {
				t.Fatalf("trial %d: bad cost %+v for %s", trial, p.cost, p.desc)
			}
		}

		// Add one more sargable factor: RSI estimates must not grow.
		narrower := base + fmt.Sprintf(" AND A = %d", rnd.Intn(10))
		_, o2 := planFor(t, cat, Config{}, narrower)
		narrowPaths := o2.genPaths(0, nil)
		for i := range basePaths {
			if narrowPaths[i].cost.RSI > basePaths[i].cost.RSI+1e-9 {
				t.Fatalf("trial %d: extra predicate increased RSI estimate for %s: %v > %v",
					trial, basePaths[i].desc, narrowPaths[i].cost.RSI, basePaths[i].cost.RSI)
			}
		}

		// A pushed equality predicate must not increase any path's RSI.
		pushed := []pushedPred{{
			innerCol: sem.ColumnID{Rel: 0, Col: 0}, op: value.OpEq,
			bound: sem.Bound{Kind: sem.BoundParam, Param: o.nextParam}, sel: 0.1,
		}}
		o.nextParam++
		pushedPaths := o.genPaths(0, pushed)
		for i := range basePaths {
			if pushedPaths[i].cost.RSI > basePaths[i].cost.RSI+1e-9 {
				t.Fatalf("trial %d: pushed predicate increased RSI for %s", trial, basePaths[i].desc)
			}
		}
	}
}

// TestUniquePathAlwaysCheapestForPointLookup: the 1+1+W unique-index cost
// must be the minimum among all paths for a unique equality.
func TestUniquePathAlwaysCheapestForPointLookup(t *testing.T) {
	cat := uniqueDB(t)
	_, o := planFor(t, cat, Config{}, "SELECT D FROM U WHERE A = 123")
	paths := o.genPaths(0, nil)
	var uniqueCost, minCost float64
	minCost = math.Inf(1)
	for _, p := range paths {
		total := p.cost.Total(o.cfg.W)
		if total < minCost {
			minCost = total
		}
		if ix, ok := p.node.(interface{ Label() string }); ok && ix.Label() != "" {
			if p.desc == "index U_A" {
				uniqueCost = total
			}
		}
	}
	if uniqueCost != minCost {
		t.Fatalf("unique probe %v is not the minimum %v", uniqueCost, minCost)
	}
}

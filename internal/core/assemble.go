package core

// Final plan assembly: wrap the chosen join-tree solution with aggregation,
// projection, and duplicate elimination. The join search already guaranteed
// the input ordering that GROUP BY / ORDER BY require (or inserted the final
// sort), so these wrappers are pure streaming operators.

import (
	"math"

	"systemr/internal/plan"
)

func (o *Optimizer) assemble(best *solution) plan.Node {
	blk := o.blk
	node := best.node
	est := node.Est()

	var top plan.Node
	if blk.HasAgg {
		groups := o.estimateGroups(est.Rows)
		ga := &plan.GroupAgg{
			Input:     node,
			GroupCols: blk.GroupBy,
			Aggs:      blk.Aggs,
			Having:    blk.Having,
			OutExprs:  blk.Select,
			OutNames:  blk.SelectNames,
		}
		// Each HAVING conjunct filters groups; Table 1 has no entry for
		// aggregate predicates, so the open-ended default applies.
		for range blk.Having {
			groups = math.Max(1, groups/3)
		}
		// Aggregation CPU is not part of the paper's cost model (it counts
		// RSI calls, which all happen below); the estimate passes the input
		// cost through with the grouped output cardinality.
		ga.SetEst(plan.Estimate{Cost: est.Cost, Rows: groups})
		top = ga
	} else {
		pr := &plan.Project{Input: node, Exprs: blk.Select, OutNames: blk.SelectNames}
		pr.SetEst(plan.Estimate{Cost: est.Cost, Rows: est.Rows})
		top = pr
	}

	if blk.Distinct {
		d := &plan.Distinct{Input: top}
		d.SetEst(plan.Estimate{Cost: top.Est().Cost, Rows: top.Est().Rows})
		top = d
	}
	return top
}

// estimateGroups predicts the number of groups: the product of the group
// columns' index cardinalities when known, capped by the input cardinality;
// with no statistics a tenth of the input is assumed.
func (o *Optimizer) estimateGroups(rows float64) float64 {
	if len(o.blk.GroupBy) == 0 {
		return 1 // scalar aggregate
	}
	g := 1.0
	known := true
	for _, c := range o.blk.GroupBy {
		ic := o.icardOf(c)
		if ic <= 0 {
			known = false
			break
		}
		g *= ic
	}
	if !known {
		g = rows / 10
	}
	return math.Max(1, math.Min(g, rows))
}

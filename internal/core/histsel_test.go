package core

// Histogram-based selectivity tests, plus the regression tests for the PR's
// estimation bugfixes: analyzed-index preference, out-of-range interpolation
// floors, IN-list negation from the uncapped sum, and degenerate-statistics
// hardening. The Table 1 defaults themselves are pinned (with histograms
// disabled) in selectivity_test.go.

import (
	"math"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/rss"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// histSel is factorSel with histograms enabled (the default configuration).
func histSel(t testing.TB, cat *catalog.Catalog, from, pred string) float64 {
	t.Helper()
	return factorSelCfg(t, cat, from, pred, Config{})
}

// TestHistogramEqSelectivity: with a histogram, equality estimates come from
// the observed value counts, not from 1/ICARD or the 1/10 default.
func TestHistogramEqSelectivity(t *testing.T) {
	cat := testDB(t)
	// B has no index — Table 1 would say 1/10; the histogram knows B holds
	// 10 keys × 20 rows, which happens to agree exactly.
	approx(t, histSel(t, cat, "R", "B = 3"), 20.0/200, "unindexed eq via histogram")
	// S.E has no index either, but it is unique: the histogram estimates
	// 1/50 where the Table 1 default would claim 1/10.
	approx(t, histSel(t, cat, "R, S", "S.E = 5"), 1.0/50, "unique unindexed eq")
	// An unknown comparison value (subquery result) falls back to
	// 1/NDistinct from the column statistics.
	approx(t, histSel(t, cat, "R", "A = (SELECT MIN(E) FROM S)"), 1.0/50, "unknown value eq")
}

// TestHistogramSkewedEqSelectivity: the whole point of histograms — a heavy
// hitter estimates its real share, not the uniform average.
func TestHistogramSkewedEqSelectivity(t *testing.T) {
	// The factorSel helpers select from a relation named R with column A, so
	// the skewed table reuses those names: 100 rows of A=1, plus 100 unique
	// keys 1000..1099 — 101 distinct keys, but half the table is one of them.
	cat := catalog.New(storage.NewDisk())
	z, err := cat.CreateTable("R", []catalog.Column{{Name: "A", Type: value.KindInt}}, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rss.Insert(z, value.Row{value.NewInt(1)}, storage.FrozenXID, storage.NoPrevTID, cat.Disk())
	}
	for i := 0; i < 100; i++ {
		rss.Insert(z, value.Row{value.NewInt(int64(1000 + i))}, storage.FrozenXID, storage.NoPrevTID, cat.Disk())
	}
	if _, err := cat.CreateIndex("R_A", "R", []string{"A"}, false, false); err != nil {
		t.Fatal(err)
	}
	cat.UpdateStatistics()

	hot := histSel(t, cat, "R", "A = 1")
	approx(t, hot, 0.5, "heavy hitter eq (isolated bucket)")
	cold := histSel(t, cat, "R", "A = 1042")
	if cold <= 0 || cold > 0.05 {
		t.Fatalf("cold key selectivity %v, want a per-key average near 1/200", cold)
	}
	// The uniform model cannot tell them apart: both estimate 1/ICARD.
	uni := factorSel(t, cat, "R", "A = 1")
	approx(t, uni, 1.0/101, "uniform model flattens the heavy hitter")
}

// TestHistogramRangeAndBetween: ranges and BETWEEN use bucket-fraction
// interpolation instead of the low/high-key linear model.
func TestHistogramRangeAndBetween(t *testing.T) {
	cat := testDB(t)
	// A holds 0..49 × 4 rows: A > 39 selects keys 40..49, exactly 40 of 200
	// rows. Linear interpolation would say (49-39)/49 ≈ 0.204.
	approx(t, histSel(t, cat, "R", "A > 39"), 40.0/200, "range via histogram")
	approx(t, histSel(t, cat, "R", "A <= 9"), 40.0/200, "<= via histogram")
	approx(t, histSel(t, cat, "R", "A BETWEEN 10 AND 19"), 40.0/200, "between via histogram")
	// Strings get bucket fractions too — no linear model exists for them, so
	// the old estimate was a flat 1/3. C holds C00..C19 × 10 rows; C > 'C10'
	// selects the 9 keys above, 90 rows, within intra-bucket tolerance.
	got := histSel(t, cat, "R", "C > 'C10'")
	if got < 0.4 || got > 0.5 {
		t.Fatalf("string range via histogram: %v, want ≈ 90/200", got)
	}
}

// TestOutOfRangeFloorHistogram: constants outside the analyzed key range —
// the normal state of affairs once statistics go stale — floor at one key's
// worth of rows instead of estimating QCARD 0.
func TestOutOfRangeFloorHistogram(t *testing.T) {
	cat := testDB(t)
	floor := 1.0 / 50 // A has 50 observed distinct keys
	approx(t, histSel(t, cat, "R", "A = 1000"), floor, "point query past high key")
	approx(t, histSel(t, cat, "R", "A = -3"), floor, "point query below low key")
	approx(t, histSel(t, cat, "R", "A > 1000"), floor, "range past high key")
	approx(t, histSel(t, cat, "R", "A < -5"), floor, "range below low key")
	approx(t, histSel(t, cat, "R", "A BETWEEN 1000 AND 2000"), floor, "between past high key")
}

// TestOutOfRangeFloorInterpolation is the same regression on the paper's
// index-interpolation path (histograms disabled): before the fix these all
// clamped to exactly 0, and a plan built on QCARD 0 believes every downstream
// operator is free.
func TestOutOfRangeFloorInterpolation(t *testing.T) {
	cat := testDB(t)
	floor := 1.0 / 50 // 1/EffICardLead of the R_A index
	approx(t, factorSel(t, cat, "R", "A > 1000"), floor, "interpolated > past high key")
	approx(t, factorSel(t, cat, "R", "A < -5"), floor, "interpolated < below low key")
	approx(t, factorSel(t, cat, "R", "A BETWEEN 1000 AND 2000"), floor, "interpolated between out of range")
}

// TestOutOfRangeAfterInsert: the integration shape of the stale-stats bug —
// analyze, then insert a key past the analyzed range, then query it. The
// estimate must stay positive without re-analyzing.
func TestOutOfRangeAfterInsert(t *testing.T) {
	cat := testDB(t)
	r, _ := cat.Table("R")
	if _, _, err := rss.Insert(r, value.Row{
		value.NewInt(500), value.NewInt(3), value.NewString("C99"), value.NewFloat(0),
	}, storage.FrozenXID, storage.NoPrevTID, cat.Disk()); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{{}, {DisableHistograms: true}} {
		got := factorSelCfg(t, cat, "R", "A = 500", cfg)
		if got <= 0 {
			t.Fatalf("stale-stats point query estimates zero (DisableHistograms=%v)", cfg.DisableHistograms)
		}
	}
}

// TestColStatsPrefersAnalyzedIndex: with two indexes on the same leading
// column, estimation must use the analyzed one — before the fix, the first
// match won, so a later-created (unanalyzed) index could shadow real
// statistics with the defaults.
func TestColStatsPrefersAnalyzedIndex(t *testing.T) {
	cat := testDB(t)
	// Created after UpdateStatistics, so R_A2 has no statistics.
	if _, err := cat.CreateIndex("R_A2", "R", []string{"A"}, false, false); err != nil {
		t.Fatal(err)
	}
	r, _ := cat.Table("R")
	// Put the unanalyzed index ahead of the analyzed one in catalog order —
	// the shape that exposed the first-match bug.
	var ia, ia2 = -1, -1
	for i, ix := range r.Indexes {
		switch ix.Name {
		case "R_A":
			ia = i
		case "R_A2":
			ia2 = i
		}
	}
	if ia < 0 || ia2 < 0 {
		t.Fatalf("missing A indexes: %d %d", ia, ia2)
	}
	r.Indexes[ia], r.Indexes[ia2] = r.Indexes[ia2], r.Indexes[ia]

	// Histograms disabled so the estimate must come through the index path.
	got := factorSel(t, cat, "R", "A = 7")
	approx(t, got, 1.0/50, "eq must use the analyzed index's ICARD, not DefaultICard")
	got = factorSel(t, cat, "R", "A > 39")
	approx(t, got, 10.0/49, "interpolation must use the analyzed index's low/high keys")
}

// TestInListNegationUncapped: the 1/2 cap encodes "an IN list rarely matches
// more than half the table" — it applies to the positive form only. NOT IN
// over a wide list must compute 1 - (uncapped sum), not 1 - (capped sum),
// which floored every wide NOT IN at 1/2.
func TestInListNegationUncapped(t *testing.T) {
	cat := testDB(t)
	// B holds 0..9 at 1/10 each (by histogram and by default alike). Nine
	// items sum to 0.9: positive form capped to 1/2, negation from 0.9.
	in9 := "(0,1,2,3,4,5,6,7,8)"
	for _, cfg := range []Config{{}, {DisableHistograms: true}} {
		pos := factorSelCfg(t, cat, "R", "B IN "+in9, cfg)
		approx(t, pos, 1.0/2, "wide IN capped at 1/2")
		neg := factorSelCfg(t, cat, "R", "B NOT IN "+in9, cfg)
		approx(t, neg, 1-0.9, "wide NOT IN from the uncapped sum")
	}
	// Narrow lists are unaffected in both directions.
	approx(t, factorSel(t, cat, "R", "A IN (1, 2, 3)"), 3.0/50, "narrow IN")
	approx(t, factorSel(t, cat, "R", "A NOT IN (1, 2, 3)"), 1-3.0/50, "narrow NOT IN")
	// With a histogram, each item gets its own estimate; out-of-range items
	// floor at one key's rows instead of adding zero.
	approx(t, histSel(t, cat, "R", "A IN (1, 2, 1000)"), 3.0/50, "per-item histogram IN with stale item")
}

// TestDegenerateStatsSelectivities: corrupted, empty, or non-arithmetic
// statistics must degrade to the Table 1 defaults (or a floored estimate) —
// never to NaN, Inf, or a value outside [0, 1].
func TestDegenerateStatsSelectivities(t *testing.T) {
	preds := []string{
		"A = 7", "A <> 7", "A > 39", "A < 10", "A BETWEEN 10 AND 19",
		"A IN (1,2,3)", "A NOT IN (1,2,3)", "C > 'C10'", "NOT A = 1",
	}
	cases := []struct {
		name   string
		mutate func(t *testing.T, cat *catalog.Catalog)
	}{
		{"healthy", func(t *testing.T, cat *catalog.Catalog) {}},
		{"inverted low/high keys", func(t *testing.T, cat *catalog.Catalog) {
			r, _ := cat.Table("R")
			for _, ix := range r.Indexes {
				ix.Stats.Low, ix.Stats.High = ix.Stats.High, ix.Stats.Low
			}
		}},
		{"NaN low/high keys", func(t *testing.T, cat *catalog.Catalog) {
			r, _ := cat.Table("R")
			for _, ix := range r.Indexes {
				ix.Stats.Low = value.NewFloat(math.NaN())
				ix.Stats.High = value.NewFloat(math.NaN())
			}
		}},
		{"zero distinct counts", func(t *testing.T, cat *catalog.Catalog) {
			r, _ := cat.Table("R")
			for _, ix := range r.Indexes {
				ix.Stats.ICard, ix.Stats.ICardLead = 0, 0
			}
			for i := range r.ColStats {
				r.ColStats[i].NDistinct = 0
			}
		}},
		{"empty histograms", func(t *testing.T, cat *catalog.Catalog) {
			r, _ := cat.Table("R")
			for i := range r.ColStats {
				if r.ColStats[i].Hist != nil {
					r.ColStats[i].Hist.NRows = 0
				}
			}
		}},
	}
	for _, tc := range cases {
		for _, disable := range []bool{false, true} {
			cat := testDB(t)
			tc.mutate(t, cat)
			for _, p := range preds {
				f := factorSelCfg(t, cat, "R", p, Config{DisableHistograms: disable})
				if f < 0 || f > 1 || math.IsNaN(f) || math.IsInf(f, 0) {
					t.Fatalf("%s (DisableHistograms=%v): selectivity of %q out of range: %v",
						tc.name, disable, p, f)
				}
			}
		}
	}
	// Analyzed-but-empty relations get the same guarantee with histograms on
	// (the disabled path is covered in selectivity_test.go).
	cat := catalog.New(storage.NewDisk())
	if _, err := cat.CreateTable("R", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "C", Type: value.KindString},
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("R_A", "R", []string{"A"}, false, false); err != nil {
		t.Fatal(err)
	}
	cat.UpdateStatistics()
	for _, p := range []string{"A = 1", "A > 5", "A BETWEEN 1 AND 2", "A IN (1,2)", "C > 'X'"} {
		f := factorSelCfg(t, cat, "R", p, Config{})
		if f < 0 || f > 1 || math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("analyzed-empty selectivity of %q out of range: %v", p, f)
		}
	}
}

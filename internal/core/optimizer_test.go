package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/plan"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// planFor optimizes a query against the catalog and returns the query plan.
func planFor(t testing.TB, cat *catalog.Catalog, cfg Config, query string) (*plan.Query, *Optimizer) {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	blk, err := sem.Analyze(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	o := New(cat, cfg)
	q, err := o.Optimize(blk)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return q, o
}

// scanNodeOf digs the access path out of a single-relation plan.
func scanNodeOf(t testing.TB, q *plan.Query) plan.Node {
	t.Helper()
	n := q.Root
	for {
		switch x := n.(type) {
		case *plan.Project:
			n = x.Input
		case *plan.GroupAgg:
			n = x.Input
		case *plan.Distinct:
			n = x.Input
		default:
			return n
		}
	}
}

// uniqueDB: U(A unique-indexed, B clustered-indexed, C non-clustered-indexed,
// D no index), 1000 rows, wide enough to span many pages.
func uniqueDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewDisk())
	u, err := cat.CreateTable("U", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "B", Type: value.KindInt},
		{Name: "C", Type: value.KindInt},
		{Name: "D", Type: value.KindInt},
		{Name: "PAD", Type: value.KindString},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("p", 100)
	for i := 0; i < 1000; i++ {
		// B increases monotonically → physically clustered by insertion.
		_, _, err := rss.Insert(u, value.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(i / 10)),
			value.NewInt(int64((i * 7) % 100)),
			value.NewInt(int64(i % 5)),
			value.NewString(pad),
		}, storage.FrozenXID, storage.NoPrevTID, cat.Disk())
		if err != nil {
			t.Fatal(err)
		}
	}
	mustIndex := func(name string, cols []string, unique, clustered bool) {
		t.Helper()
		if _, err := cat.CreateIndex(name, "U", cols, unique, clustered); err != nil {
			t.Fatal(err)
		}
	}
	mustIndex("U_A", []string{"A"}, true, false)
	mustIndex("U_B", []string{"B"}, false, true)
	mustIndex("U_C", []string{"C"}, false, false)
	cat.UpdateStatistics()
	return cat
}

// TestTable2UniqueIndexEqualCost: "unique index matching an equal predicate:
// 1+1+W".
func TestTable2UniqueIndexEqual(t *testing.T) {
	cat := uniqueDB(t)
	q, _ := planFor(t, cat, Config{}, "SELECT D FROM U WHERE A = 500")
	scan, ok := scanNodeOf(t, q).(*plan.IndexScan)
	if !ok || scan.Index.Name != "U_A" {
		t.Fatalf("expected unique index scan, got %s", scanNodeOf(t, q).Label())
	}
	est := scan.Est()
	if est.Cost.Pages != 2 || est.Cost.RSI != 1 {
		t.Fatalf("unique-eq cost = %+v, want pages=2 rsi=1", est.Cost)
	}
}

// TestTable2CostFormulas spot-checks the matching clustered / non-clustered
// and segment-scan formulas against hand computation.
func TestTable2CostFormulas(t *testing.T) {
	cat := uniqueDB(t)
	u, _ := cat.Table("U")
	st := u.Stats
	w := DefaultW

	// Clustered index B matching B = 5: F = 1/ICARD(B)=1/100,
	// cost = F*(NINDX+TCARD) + W*RSICARD, RSICARD = NCARD/100.
	q, _ := planFor(t, cat, Config{}, "SELECT D FROM U WHERE B = 5")
	scan := scanNodeOf(t, q).(*plan.IndexScan)
	if scan.Index.Name != "U_B" || !scan.Matching {
		t.Fatalf("expected matching clustered scan, got %s", scan.Label())
	}
	ixB, _ := cat.Index("U_B")
	f := 1.0 / float64(ixB.Stats.ICardLead)
	wantPages := f * (float64(ixB.Stats.NIndx) + float64(st.TCard))
	wantRSI := f * float64(st.NCard)
	got := scan.Est().Cost
	if math.Abs(got.Pages-wantPages) > 1e-9 || math.Abs(got.RSI-wantRSI) > 1e-9 {
		t.Fatalf("clustered matching cost %+v, want pages=%v rsi=%v", got, wantPages, wantRSI)
	}

	// Segment scan on unindexed D: TCARD/P + W*RSICARD.
	qd, _ := planFor(t, cat, Config{}, "SELECT A FROM U WHERE D = 3")
	seg, ok := scanNodeOf(t, qd).(*plan.SegScan)
	if !ok {
		t.Fatalf("expected segment scan for unindexed predicate, got %s", scanNodeOf(t, qd).Label())
	}
	wantSeg := float64(st.TCard) / st.P
	if math.Abs(seg.Est().Cost.Pages-wantSeg) > 1e-9 {
		t.Fatalf("segment scan pages %v, want %v", seg.Est().Cost.Pages, wantSeg)
	}
	_ = w
}

// TestTable2BufferFitAlternative: with a huge buffer the non-clustered
// matching cost uses the TCARD variant; with a tiny buffer, NCARD.
func TestTable2BufferFitAlternative(t *testing.T) {
	cat := uniqueDB(t)
	u, _ := cat.Table("U")
	ixC, _ := cat.Index("U_C")
	f := 1.0 / float64(ixC.Stats.ICardLead)

	qBig, _ := planFor(t, cat, Config{BufferPages: 100000}, "SELECT A FROM U WHERE C = 5")
	scanBig := scanNodeOf(t, qBig).(*plan.IndexScan)
	wantBig := f * (float64(ixC.Stats.NIndx) + float64(u.Stats.TCard))
	if math.Abs(scanBig.Est().Cost.Pages-wantBig) > 1e-9 {
		t.Fatalf("buffer-fit pages %v, want %v", scanBig.Est().Cost.Pages, wantBig)
	}

	// Tiny buffer with a wide range predicate: the retrieved set no longer
	// fits, so the F*(NINDX+NCARD) form must apply. The chosen plan may be a
	// different path; cost the U_C path directly.
	oSmall := New(cat, Config{BufferPages: 2})
	blk := analyzeQuery(t, cat, "SELECT A FROM U WHERE C >= 5")
	if _, err := oSmall.Optimize(blk); err != nil {
		t.Fatal(err)
	}
	fr := oSmall.factors[0].sel
	if fr*(float64(ixC.Stats.NIndx)+float64(u.Stats.TCard)) <= 2 {
		t.Fatalf("test precondition: predicate too selective (f=%v)", fr)
	}
	var cPath *pathCand
	for _, p := range oSmall.genPaths(0, nil) {
		p := p
		if ix, ok := p.node.(*plan.IndexScan); ok && ix.Index.Name == "U_C" {
			cPath = &p
		}
	}
	wantSmall := fr * (float64(ixC.Stats.NIndx) + float64(u.Stats.NCard))
	if math.Abs(cPath.cost.Pages-wantSmall) > 1e-9 {
		t.Fatalf("no-fit pages %v, want %v", cPath.cost.Pages, wantSmall)
	}
}

func analyzeQuery(t testing.TB, cat *catalog.Catalog, query string) *sem.Block {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := sem.Analyze(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

// TestInterestingOrderAvoidsSort: ORDER BY on a clustered-indexed column
// should choose the ordered index scan rather than sorting, and ORDER BY on
// an unindexed column must sort.
func TestInterestingOrderAvoidsSort(t *testing.T) {
	cat := uniqueDB(t)
	q, _ := planFor(t, cat, Config{}, "SELECT B FROM U ORDER BY B")
	if _, isSort := scanNodeOf(t, q).(*plan.Sort); isSort {
		t.Fatalf("ORDER BY on clustered index column should not sort:\n%s", q.Explain())
	}
	scan := scanNodeOf(t, q).(*plan.IndexScan)
	if scan.Index.Name != "U_B" {
		t.Fatalf("expected U_B scan, got %s", scan.Label())
	}

	q2, _ := planFor(t, cat, Config{}, "SELECT D FROM U ORDER BY D")
	foundSort := false
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if _, ok := n.(*plan.Sort); ok {
			foundSort = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(q2.Root)
	if !foundSort {
		t.Fatalf("ORDER BY on unindexed column must sort:\n%s", q2.Explain())
	}

	// Ablation: with interesting orders disabled even the indexed case
	// sorts.
	q3, _ := planFor(t, cat, Config{DisableInterestingOrders: true}, "SELECT B FROM U ORDER BY B")
	if _, isSort := scanNodeOf(t, q3).(*plan.Sort); !isSort {
		t.Fatalf("DisableInterestingOrders should force a sort:\n%s", q3.Explain())
	}
}

// TestOrderByDescendingMustSort: index scans produce ascending order only.
func TestOrderByDescendingMustSort(t *testing.T) {
	cat := uniqueDB(t)
	q, _ := planFor(t, cat, Config{}, "SELECT B FROM U ORDER BY B DESC")
	if _, isSort := scanNodeOf(t, q).(*plan.Sort); !isSort {
		t.Fatalf("descending order requires a sort:\n%s", q.Explain())
	}
}

// joinDB builds T1, T2, T3, T4 where Ti.K joins and only adjacent pairs have
// join predicates available; T4 is disconnected (Cartesian).
func joinDB(t testing.TB, tables int, rows int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewDisk())
	for ti := 1; ti <= tables; ti++ {
		tab, err := cat.CreateTable(fmt.Sprintf("T%d", ti), []catalog.Column{
			{Name: "K", Type: value.KindInt},
			{Name: "V", Type: value.KindInt},
		}, "")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			rss.Insert(tab, value.Row{value.NewInt(int64(i % 20)), value.NewInt(int64(i))}, storage.FrozenXID, storage.NoPrevTID, cat.Disk())
		}
		if _, err := cat.CreateIndex(fmt.Sprintf("T%d_K", ti), fmt.Sprintf("T%d", ti), []string{"K"}, false, false); err != nil {
			t.Fatal(err)
		}
	}
	cat.UpdateStatistics()
	return cat
}

// TestJoinHeuristicPrunesPermutations reproduces the paper's own example:
// "if T1,T2,T3 are the three relations ... and there are join predicates
// between T1 and T2 and between T2 and T3 ... then the following permutations
// are not considered: T1-T3-T2, T3-T1-T2" — i.e. the subset {T1,T3} is never
// explored with the heuristic on, and is explored with it off.
func TestJoinHeuristicPrunesPermutations(t *testing.T) {
	cat := joinDB(t, 3, 100)
	query := "SELECT T1.V FROM T1, T2, T3 WHERE T1.K = T2.K AND T2.K = T3.K"
	tr := &Trace{}
	planFor(t, cat, Config{Trace: tr}, query)
	for _, e := range tr.Events {
		if e.Size == 2 && e.Subset.Has(0) && e.Subset.Has(2) {
			t.Fatalf("subset {T1,T3} (a Cartesian product) was explored: %+v", e)
		}
	}
	tr2 := &Trace{}
	planFor(t, cat, Config{Trace: tr2, DisableJoinHeuristic: true}, query)
	found := false
	for _, e := range tr2.Events {
		if e.Size == 2 && e.Subset.Has(0) && e.Subset.Has(2) {
			found = true
		}
	}
	if !found {
		t.Fatal("DisableJoinHeuristic should explore the Cartesian pair")
	}
}

// TestHeuristicReducesSearch: the heuristic must strictly shrink the number
// of candidates for a chain join with a disconnected relation.
func TestHeuristicReducesSearch(t *testing.T) {
	cat := joinDB(t, 4, 60)
	query := "SELECT T1.V FROM T1, T2, T3, T4 WHERE T1.K = T2.K AND T2.K = T3.K"
	_, oOn := planFor(t, cat, Config{}, query)
	_, oOff := planFor(t, cat, Config{DisableJoinHeuristic: true}, query)
	if oOn.Stats().CandidatesConsidered >= oOff.Stats().CandidatesConsidered {
		t.Fatalf("heuristic did not reduce search: %d vs %d",
			oOn.Stats().CandidatesConsidered, oOff.Stats().CandidatesConsidered)
	}
}

// TestSolutionsStoredBound: "the number of solutions ... is at most 2^n times
// the number of interesting result orders".
func TestSolutionsStoredBound(t *testing.T) {
	cat := joinDB(t, 4, 60)
	query := "SELECT T1.V FROM T1, T2, T3, T4 WHERE T1.K = T2.K AND T2.K = T3.K AND T3.K = T4.K"
	_, o := planFor(t, cat, Config{DisableJoinHeuristic: true}, query)
	n := 4
	orders := len(o.interest) + 1 // plus the unordered slot
	bound := (1 << n) * orders
	if got := o.Stats().SolutionsStored; got > bound {
		t.Fatalf("solutions stored %d exceeds 2^n×orders = %d", got, bound)
	}
	if o.Stats().SolutionsStored == 0 || o.Stats().CandidatesConsidered == 0 {
		t.Fatal("search statistics must be populated")
	}
}

// TestChosenPlanIsCheapestEstimate: the returned plan's estimated cost must
// not exceed any kept alternative for the full relation set.
func TestChosenPlanIsCheapestEstimate(t *testing.T) {
	cat := joinDB(t, 3, 100)
	tr := &Trace{}
	q, _ := planFor(t, cat, Config{Trace: tr},
		"SELECT T1.V FROM T1, T2, T3 WHERE T1.K = T2.K AND T2.K = T3.K")
	chosen := q.Root.Est().Cost.Total(DefaultW)
	for _, e := range tr.Events {
		if e.Size == 3 && e.Kept && e.Order == "" && e.Cost < chosen-1e-9 {
			t.Fatalf("kept unordered candidate %v cheaper than chosen %v (%s)", e.Cost, chosen, e.Desc)
		}
	}
}

// TestNestedLoopPushesJoinPredicate: the inner scan of an NL join must use
// the join column index with a parameter bound.
func TestNestedLoopPushesJoinPredicate(t *testing.T) {
	cat := joinDB(t, 2, 200)
	q, _ := planFor(t, cat, Config{NestedLoopsOnly: true},
		"SELECT T1.V FROM T1, T2 WHERE T1.K = T2.K")
	nl, ok := scanNodeOf(t, q).(*plan.NLJoin)
	if !ok {
		t.Fatalf("expected NL join, got %s", scanNodeOf(t, q).Label())
	}
	if len(nl.Binds) != 1 {
		t.Fatalf("join predicate not pushed: %s", nl.Label())
	}
	inner, ok := nl.Inner.(*plan.IndexScan)
	if !ok {
		t.Fatalf("inner should be an index scan, got %s", nl.Inner.Label())
	}
	if len(inner.Lo) != 1 || inner.Lo[0].Kind != sem.BoundParam {
		t.Fatalf("inner start key should be a parameter: %s", inner.Label())
	}
}

// TestMergeJoinChosenForSortedInputs: when both sides have ordered paths on
// the join column and the join is large, merge should win under MergeOnly
// and produce a MergeJoin node.
func TestMergeJoinPlanShape(t *testing.T) {
	cat := joinDB(t, 2, 500)
	q, _ := planFor(t, cat, Config{MergeOnly: true},
		"SELECT T1.V FROM T1, T2 WHERE T1.K = T2.K")
	mj, ok := scanNodeOf(t, q).(*plan.MergeJoin)
	if !ok {
		t.Fatalf("expected merge join, got %s", scanNodeOf(t, q).Label())
	}
	if mj.Label() == "" {
		t.Fatal("label must render")
	}
}

// TestTraceRenderFigures: the trace renders the Figures 2-6 sections.
func TestTraceRenderFigures(t *testing.T) {
	cat := joinDB(t, 3, 100)
	tr := &Trace{}
	planFor(t, cat, Config{Trace: tr},
		"SELECT T1.V FROM T1, T2, T3 WHERE T1.K = T2.K AND T2.K = T3.K")
	out := tr.Render()
	for _, frag := range []string{
		"single relations (cf. Figures 2-3)",
		"pairs of relations (cf. Figures 4-5)",
		"3 relations (cf. Figure 6)",
		"KEPT", "pruned",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("trace output lacks %q:\n%s", frag, out)
		}
	}
	var nilTrace *Trace
	if nilTrace.Render() == "" {
		t.Fatal("nil trace renders a placeholder")
	}
}

// TestCompositeIndexMatching: predicates on a (A,B) index prefix produce a
// two-column start/stop key.
func TestCompositeIndexMatching(t *testing.T) {
	cat := catalog.New(storage.NewDisk())
	tab, _ := cat.CreateTable("M", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "B", Type: value.KindInt},
		{Name: "C", Type: value.KindInt},
	}, "")
	for i := 0; i < 300; i++ {
		rss.Insert(tab, value.Row{
			value.NewInt(int64(i % 10)), value.NewInt(int64(i % 30)), value.NewInt(int64(i)),
		}, storage.FrozenXID, storage.NoPrevTID, cat.Disk())
	}
	cat.CreateIndex("M_AB", "M", []string{"A", "B"}, false, false)
	cat.UpdateStatistics()

	q, _ := planFor(t, cat, Config{}, "SELECT C FROM M WHERE A = 3 AND B > 10")
	scan, ok := scanNodeOf(t, q).(*plan.IndexScan)
	if !ok || !scan.Matching {
		t.Fatalf("expected matching composite scan, got %s", scanNodeOf(t, q).Label())
	}
	if len(scan.Lo) != 2 || len(scan.Hi) != 1 {
		t.Fatalf("key bounds: lo=%v hi=%v", scan.Lo, scan.Hi)
	}
	if scan.LoInc {
		t.Fatal("B > 10 start bound must be exclusive")
	}
}

// TestScalarSubqueryBoundUsableAsIndexKey: col = (subquery) matches an index
// with a deferred bound.
func TestScalarSubqueryBoundUsableAsIndexKey(t *testing.T) {
	cat := uniqueDB(t)
	q, _ := planFor(t, cat, Config{}, "SELECT D FROM U WHERE A = (SELECT MAX(C) FROM U)")
	scan, ok := scanNodeOf(t, q).(*plan.IndexScan)
	if !ok || scan.Index.Name != "U_A" {
		t.Fatalf("expected unique-index probe with subquery bound, got %s", scanNodeOf(t, q).Label())
	}
	if len(scan.Lo) != 1 || scan.Lo[0].Kind != sem.BoundSub {
		t.Fatalf("start key should be the subquery bound: %+v", scan.Lo)
	}
	if len(q.Subs) != 1 {
		t.Fatal("subquery plan must be attached")
	}
}

// TestNaivePlanShape: the baseline uses segment scans and FROM-order NL
// joins only.
func TestNaivePlanShape(t *testing.T) {
	cat := joinDB(t, 3, 100)
	blk := analyzeQuery(t, cat, "SELECT T1.V FROM T1, T2, T3 WHERE T1.K = T2.K AND T2.K = T3.K AND T3.V = 5")
	o := New(cat, Config{})
	q, err := NaivePlan(o, blk)
	if err != nil {
		t.Fatal(err)
	}
	var countSeg, countNL, countIdx int
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		switch n.(type) {
		case *plan.SegScan:
			countSeg++
		case *plan.NLJoin:
			countNL++
		case *plan.IndexScan:
			countIdx++
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(q.Root)
	if countSeg != 3 || countNL != 2 || countIdx != 0 {
		t.Fatalf("naive plan shape: seg=%d nl=%d idx=%d\n%s", countSeg, countNL, countIdx, q.Explain())
	}
	// Naive plans must carry no SARGs.
	var checkSargs func(n plan.Node)
	checkSargs = func(n plan.Node) {
		if s, ok := n.(*plan.SegScan); ok && len(s.Sargs) > 0 {
			t.Fatal("naive plan must not use search arguments")
		}
		for _, c := range n.Children() {
			checkSargs(c)
		}
	}
	checkSargs(q.Root)
}

// TestExplainOutput: EXPLAIN includes costs, rows, and subquery blocks.
func TestExplainOutput(t *testing.T) {
	cat := uniqueDB(t)
	q, _ := planFor(t, cat, Config{},
		"SELECT B, COUNT(*) FROM U WHERE C > 50 AND A = (SELECT MAX(C) FROM U) GROUP BY B")
	out := q.Explain()
	for _, frag := range []string{"QUERY BLOCK (main)", "QUERY BLOCK (subquery #1)", "GROUP", "cost:", "rows="} {
		if !strings.Contains(out, frag) {
			t.Fatalf("explain lacks %q:\n%s", frag, out)
		}
	}
}

// TestCorrelatedSubqueryUsesIndexInside: within a correlated subquery block,
// the correlation predicate (column = $parameter) is sargable and must match
// an index on the referenced column — the access path that makes per-tuple
// re-evaluation affordable.
func TestCorrelatedSubqueryUsesIndexInside(t *testing.T) {
	cat := uniqueDB(t)
	q, _ := planFor(t, cat, Config{},
		"SELECT D FROM U X WHERE C > (SELECT MIN(C) FROM U WHERE B = X.B)")
	if len(q.Subs) != 1 || !q.Subs[0].Sub.Correlated {
		t.Fatalf("expected one correlated subquery, got %+v", q.Subs)
	}
	scan, ok := scanNodeOf(t, q.Subs[0].Query).(*plan.IndexScan)
	if !ok || scan.Index.Name != "U_B" {
		t.Fatalf("subquery should probe U_B with the correlation parameter, got %s",
			scanNodeOf(t, q.Subs[0].Query).Label())
	}
	if len(scan.Lo) != 1 || scan.Lo[0].Kind != sem.BoundParam {
		t.Fatalf("subquery index key should be the correlation parameter: %+v", scan.Lo)
	}
}

// TestSubqueryPlanCountMatchesBlocks: every nested block gets exactly one
// plan, including blocks nested inside blocks.
func TestSubqueryPlanCountMatchesBlocks(t *testing.T) {
	cat := uniqueDB(t)
	q, _ := planFor(t, cat, Config{},
		`SELECT D FROM U WHERE A > (SELECT MIN(A) FROM U WHERE C IN (SELECT C FROM U WHERE B = 1))`)
	if len(q.Subs) != 1 {
		t.Fatalf("top-level subqueries: %d", len(q.Subs))
	}
	if len(q.Subs[0].Query.Subs) != 1 {
		t.Fatalf("nested subqueries: %d", len(q.Subs[0].Query.Subs))
	}
}

// TestCorrelatedResidualPrefersOrderedPath — the Section 6 extension: when a
// residual predicate re-evaluates a correlated subquery per candidate tuple,
// an access path ordered on the referenced column cuts evaluations to one
// per distinct value, and the optimizer's costing must prefer it even though
// the plain scan is cheaper in isolation.
func TestCorrelatedResidualPrefersOrderedPath(t *testing.T) {
	cat := uniqueDB(t)
	// B is the clustered index column (100 distinct values over 1000 rows):
	// ordered delivery gives 100 evaluations instead of 1000.
	q, _ := planFor(t, cat, Config{},
		"SELECT D FROM U X WHERE C > (SELECT AVG(C) FROM U WHERE B = X.B)")
	scan, ok := scanNodeOf(t, q).(*plan.IndexScan)
	if !ok || scan.Index.Name != "U_B" {
		t.Fatalf("expected the B-ordered path for the correlated residual, got %s",
			scanNodeOf(t, q).Label())
	}
	// Sanity: with a plain (non-correlated) residual the segment scan wins.
	q2, _ := planFor(t, cat, Config{}, "SELECT D FROM U WHERE C + 0 > 50")
	if _, isSeg := scanNodeOf(t, q2).(*plan.SegScan); !isSeg {
		t.Fatalf("plain residual query should use the segment scan, got %s",
			scanNodeOf(t, q2).Label())
	}
}

// TestOptimizerDeterminism: planning the same query twice yields identical
// search statistics and identical EXPLAIN output (no map-iteration
// nondeterminism in the DP).
func TestOptimizerDeterminism(t *testing.T) {
	cat := joinDB(t, 4, 120)
	query := "SELECT T1.V FROM T1, T2, T3, T4 WHERE T1.K = T2.K AND T2.K = T3.K AND T3.K = T4.K ORDER BY T1.K"
	var firstPlan string
	var firstStats SearchStats
	for i := 0; i < 5; i++ {
		q, o := planFor(t, cat, Config{}, query)
		if i == 0 {
			firstPlan = q.Explain()
			firstStats = o.Stats()
			continue
		}
		if got := q.Explain(); got != firstPlan {
			t.Fatalf("run %d produced a different plan:\n%s\nvs\n%s", i, got, firstPlan)
		}
		if o.Stats() != firstStats {
			t.Fatalf("run %d search stats differ: %+v vs %+v", i, o.Stats(), firstStats)
		}
	}
}

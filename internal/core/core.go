// Package core implements the paper's primary contribution: access path
// selection. Given an analyzed query block, the optimizer
//
//   - assigns a selectivity factor F to every boolean factor (Table 1),
//   - costs every single-relation access path — each index plus a segment
//     scan — with COST = PAGE FETCHES + W*(RSI CALLS) (Table 2),
//   - tracks "interesting orders" (ORDER BY / GROUP BY columns and join
//     columns, folded into order-equivalence classes),
//   - searches join orders with a dynamic program over successively larger
//     subsets of relations, keeping per subset the cheapest unordered
//     solution and the cheapest solution per interesting order, pruning with
//     the heuristic that joins requiring Cartesian products are performed as
//     late as possible (Section 5), and
//   - plans nested and correlated subqueries (Section 6).
//
// The output is a physical plan (package plan) the executor interprets.
package core

import (
	"fmt"
	"math"

	"systemr/internal/catalog"
	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/storage"
)

// Config tunes the optimizer.
type Config struct {
	// W is the adjustable weighting factor between I/O (page fetches) and
	// CPU (RSI calls): COST = PAGE_FETCHES + W*RSI_CALLS. The default 0.033
	// values one page fetch at about thirty tuple retrievals.
	W float64
	// BufferPages is the buffer-pool size the Table 2 "fits in the System R
	// buffer" alternatives test against.
	BufferPages int

	// DisableJoinHeuristic turns off the "no early Cartesian products" search
	// reduction so experiments can measure its effect.
	DisableJoinHeuristic bool
	// DisableInterestingOrders makes the search keep only the single cheapest
	// solution per subset of relations — an ablation of the paper's order
	// bookkeeping (sort-avoidance disappears).
	DisableInterestingOrders bool
	// DisableSargs keeps every predicate out of the RSS search arguments so
	// that all filtering happens above the RSI (every tuple costs an RSI
	// call); used by the sargability experiments.
	DisableSargs bool
	// NestedLoopsOnly and MergeOnly restrict the join methods considered.
	// Either one also excludes hash joins, so the paper's two-method
	// experiments keep their original search space.
	NestedLoopsOnly bool
	MergeOnly       bool
	// DisableHashJoin removes the hash-join method from enumeration,
	// restoring the paper's original two-method search space.
	DisableHashJoin bool
	// DisableHistograms ignores per-column histogram statistics so every
	// selectivity estimate comes from Table 1 and index ICARDs alone — the
	// paper's original behavior, kept for experiments and comparison runs.
	DisableHistograms bool

	// DegreeOfParallelism > 1 lets the optimizer plant Parallel exchange
	// operators over eligible segment scans of the main query block,
	// partitioning the scan's pages across that many workers.
	DegreeOfParallelism int
	// ParallelMinPages is the smallest relation (in segment pages) worth an
	// exchange: scans of smaller relations stay serial, because worker
	// startup and row hand-off dominate on a handful of pages. Zero or
	// negative means no threshold.
	ParallelMinPages int

	// Trace, when non-nil, records the search tree (Figures 2-6).
	Trace *Trace
}

// DefaultW is the default CPU weighting factor.
const DefaultW = 0.033

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = DefaultW
	}
	if c.BufferPages <= 0 {
		c.BufferPages = 64
	}
	return c
}

// Optimizer plans one statement's query blocks against a catalog.
type Optimizer struct {
	cat *catalog.Catalog
	cfg Config

	// Per-block planning state (reset by planBlock).
	blk       *sem.Block
	factors   []*factorInfo
	classes   *orderClasses
	interest  []order
	nextParam int
	// subInfo caches planned subquery statistics for Table 1's IN-subquery
	// selectivity and for costing correlated re-evaluation (Section 6).
	subInfo map[*sem.Subquery]subStats

	searchStats SearchStats
}

type subStats struct {
	plan    *plan.SubPlan
	qcard   float64   // estimated output cardinality of the subquery
	relProd float64   // product of the cardinalities of its FROM relations
	cost    plan.Cost // estimated cost of one evaluation
}

// factorInfo annotates a boolean factor with its selectivity and its
// attachment point.
type factorInfo struct {
	f    *sem.BoolFactor
	sel  float64
	rels sem.RelSet // normalized: factors touching no relation attach to rel 0
}

// New creates an optimizer over a catalog.
func New(cat *catalog.Catalog, cfg Config) *Optimizer {
	return &Optimizer{cat: cat, cfg: cfg.withDefaults()}
}

// Optimize plans a full analyzed statement (the main block plus nested
// blocks, innermost first, as Section 6 prescribes). With
// DegreeOfParallelism > 1 a post-pass plants Parallel exchange operators
// over the main block's eligible segment scans; nested blocks are left
// serial (they evaluate inside the per-tuple path, where spawning workers
// per evaluation would cost more than it saves).
func (o *Optimizer) Optimize(blk *sem.Block) (*plan.Query, error) {
	q, err := o.planBlock(blk)
	if err != nil {
		return nil, err
	}
	if o.cfg.DegreeOfParallelism > 1 {
		q.Root = parallelize(q.Root, o.cfg.DegreeOfParallelism, o.cfg.ParallelMinPages, false)
	}
	return q, nil
}

func (o *Optimizer) planBlock(blk *sem.Block) (*plan.Query, error) {
	// Plan nested blocks first: "the most deeply nested subqueries are
	// evaluated first" — and their estimated cardinalities feed the
	// IN-subquery selectivity of this block's factors.
	subPlans := make([]*plan.SubPlan, 0, len(blk.Subqueries))
	subInfo := make(map[*sem.Subquery]subStats, len(blk.Subqueries))
	for _, sub := range blk.Subqueries {
		sp, err := o.planBlock(sub.Block)
		if err != nil {
			return nil, err
		}
		relProd := 1.0
		for _, r := range sub.Block.Rels {
			relProd *= r.Table.Stats.EffNCard()
		}
		subPlan := &plan.SubPlan{Sub: sub, Query: sp}
		subPlans = append(subPlans, subPlan)
		subInfo[sub] = subStats{
			plan:    subPlan,
			qcard:   sp.Root.Est().Rows,
			relProd: relProd,
			cost:    sp.Root.Est().Cost,
		}
	}

	// Reset per-block state.
	o.blk = blk
	o.nextParam = blk.NumParams
	o.subInfo = subInfo
	o.classes = newOrderClasses()
	for _, f := range blk.Factors {
		if f.EquiJoin != nil {
			o.classes.union(f.EquiJoin.Left, f.EquiJoin.Right)
		}
	}
	o.factors = make([]*factorInfo, len(blk.Factors))
	for i, f := range blk.Factors {
		rels := f.Rels
		if rels == 0 {
			// Factors referencing no relation of this block (constants,
			// pure-parameter predicates) are applied once, at the first
			// FROM-list relation's scan.
			rels = rels.Set(0)
		}
		o.factors[i] = &factorInfo{f: f, sel: o.selectivity(f.Expr), rels: rels}
	}
	o.interest = o.interestingOrders()

	best, err := o.search()
	if err != nil {
		return nil, err
	}
	root := o.assemble(best)
	q := &plan.Query{
		Block:     blk,
		Root:      root,
		Subs:      subPlans,
		NumParams: o.nextParam,
		OutNames:  blk.SelectNames,
	}
	return q, nil
}

// cardOf estimates the composite cardinality of a relation subset: the
// product of its relations' cardinalities times the selectivities of every
// boolean factor fully contained in the subset.
func (o *Optimizer) cardOf(s sem.RelSet) float64 {
	card := 1.0
	for _, r := range s.Members() {
		card *= o.blk.Rels[r].Table.Stats.EffNCard()
	}
	for _, fi := range o.factors {
		if s.Contains(fi.rels) {
			card *= fi.sel
		}
	}
	if card < 0 {
		card = 0
	}
	return card
}

// rowWidth estimates the stored bytes of one tuple of relation r, from
// TCARD/NCARD when statistics exist.
func (o *Optimizer) rowWidth(r int) float64 {
	st := o.blk.Rels[r].Table.Stats
	if st.HasStats && st.NCard > 0 {
		w := float64(st.TCard) * storage.PageSize / float64(st.NCard)
		return math.Max(8, math.Min(w, storage.PageSize))
	}
	return 64
}

// setWidth estimates the composite-tuple width for a subset.
func (o *Optimizer) setWidth(s sem.RelSet) float64 {
	w := 0.0
	for _, r := range s.Members() {
		w += o.rowWidth(r)
	}
	return w
}

// tempPages is TEMPPAGES: pages required to hold card tuples of the given
// width in a temporary list.
func tempPages(card, width float64) float64 {
	tp := math.Ceil(card * width / storage.PageSize)
	if tp < 1 {
		tp = 1
	}
	return tp
}

// sortCost models C-sort(path): writing card tuples of the given width into
// a temporary list, sorting (possibly several passes), and reading the
// result — all beyond the cost of producing the input. The executor's
// external sort performs the same physical work. RSI counts one call per
// tuple written plus one per tuple read back.
func (o *Optimizer) sortCost(card, width float64) plan.Cost {
	tp := tempPages(card, width)
	buf := float64(o.cfg.BufferPages)
	runs := math.Ceil(tp / buf)
	passes := 1.0
	fanin := math.Max(2, buf-1)
	for runs > 1 {
		runs = math.Ceil(runs / fanin)
		passes++
	}
	return plan.Cost{Pages: 2 * tp * passes, RSI: 2 * card}
}

// debugString is used in trace output and error paths.
func relSetString(blk *sem.Block, s sem.RelSet) string {
	names := ""
	for _, r := range s.Members() {
		if names != "" {
			names += ","
		}
		names += blk.Rels[r].Name
	}
	return "{" + names + "}"
}

var errNoPlan = fmt.Errorf("core: no plan produced (internal error)")

// FactorSelectivities returns the Table 1 selectivity factor assigned to
// each boolean factor of the outermost block in the most recent Optimize
// call, in factor order. The experiment harness compares these against
// measured fractions.
func (o *Optimizer) FactorSelectivities() []float64 {
	out := make([]float64, len(o.factors))
	for i, fi := range o.factors {
		out[i] = fi.sel
	}
	return out
}

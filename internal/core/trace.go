package core

// Search-tree tracing: reproduces the narrative of Figures 2 through 6 of
// the paper — the access paths kept per single relation, the nested-loop and
// merge-scan solutions for each pair of relations, and the extended tree for
// each further relation, with pruned candidates marked.

import (
	"fmt"
	"strings"

	"systemr/internal/sem"
)

// TraceEvent is one recorded step of the search.
type TraceEvent struct {
	Subset sem.RelSet
	Size   int
	Desc   string
	Cost   float64 // weighted total
	Order  string  // produced order, "" if none
	Kept   bool
}

// Trace collects the optimizer's search tree. A nil *Trace disables all
// recording (the methods are nil-safe).
type Trace struct {
	Events []TraceEvent
	blk    *sem.Block
}

func (t *Trace) enterSubset(o *Optimizer, s sem.RelSet) {
	if t == nil {
		return
	}
	t.blk = o.blk
}

func (t *Trace) candidate(o *Optimizer, cand *solution, kept bool) {
	if t == nil {
		return
	}
	t.blk = o.blk
	ordStr := ""
	if len(cand.ord) > 0 {
		parts := make([]string, len(cand.ord))
		for i, el := range cand.ord {
			parts[i] = o.blk.ColName(el.class)
			if el.desc {
				parts[i] += " DESC"
			}
		}
		ordStr = strings.Join(parts, ", ")
	}
	t.Events = append(t.Events, TraceEvent{
		Subset: cand.set,
		Size:   cand.set.Count(),
		Desc:   cand.desc,
		Cost:   cand.cost.Total(o.cfg.W),
		Order:  ordStr,
		Kept:   kept,
	})
}

// Render prints the search tree grouped by subset size then subset — the
// textual analog of Figures 2-6: size 1 is the single-relation figure
// (Figs. 2-3), size 2 the pair solutions (Figs. 4-5), size 3 the
// three-relation tree (Fig. 6), and so on.
func (t *Trace) Render() string {
	if t == nil || t.blk == nil {
		return "(no trace)\n"
	}
	var b strings.Builder
	maxSize := 0
	for _, e := range t.Events {
		if e.Size > maxSize {
			maxSize = e.Size
		}
	}
	for size := 1; size <= maxSize; size++ {
		switch size {
		case 1:
			b.WriteString("== Search tree, single relations (cf. Figures 2-3) ==\n")
		case 2:
			b.WriteString("== Search tree, pairs of relations (cf. Figures 4-5) ==\n")
		default:
			fmt.Fprintf(&b, "== Search tree, %d relations (cf. Figure 6) ==\n", size)
		}
		var lastSubset sem.RelSet
		first := true
		for _, e := range t.Events {
			if e.Size != size {
				continue
			}
			if first || e.Subset != lastSubset {
				fmt.Fprintf(&b, "  subset %s:\n", relSetString(t.blk, e.Subset))
				lastSubset = e.Subset
				first = false
			}
			mark := "pruned"
			if e.Kept {
				mark = "KEPT"
			}
			ord := "unordered"
			if e.Order != "" {
				ord = "order: " + e.Order
			}
			fmt.Fprintf(&b, "    [%-6s] cost=%8.2f  %-12s  %s\n", mark, e.Cost, ord, e.Desc)
		}
	}
	return b.String()
}

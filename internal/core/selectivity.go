package core

// Selectivity factors — a verbatim implementation of TABLE 1 of the paper.
// F very roughly corresponds to the expected fraction of tuples satisfying
// the predicate; "we assume that a lack of statistics implies that the
// relation is small, so an arbitrary factor is chosen."

import (
	"math"

	"systemr/internal/catalog"
	"systemr/internal/sem"
)

// Default factors of Table 1.
const (
	// defEq: "column = value ... F = 1/10 otherwise".
	defEq = 1.0 / 10
	// defRange: "column > value ... F = 1/3 otherwise". "There is no
	// significance to this number, other than ... it is less selective than
	// the guesses for equal predicates ... and less than 1/2."
	defRange = 1.0 / 3
	// defBetween: "column BETWEEN ... F = 1/4 otherwise".
	defBetween = 1.0 / 4
	// defUnknown is used for predicate shapes Table 1 does not cover
	// (arithmetic over columns, etc.); like defRange it stays below 1/2
	// ("we hypothesize that few queries use predicates that are satisfied by
	// more than half the tuples").
	defUnknown = 1.0 / 3
	// inListCap: IN-list selectivity "is allowed to be no more than 1/2".
	inListCap = 1.0 / 2
)

// selectivity assigns F to one boolean factor's expression. Whatever the
// branch below produces, the result is clamped to [0, 1]: a selectivity
// factor is a fraction of tuples, and letting a stats anomaly (empty index,
// zero-cardinality relation, inverted min/max) push F outside that range
// corrupts every downstream QCARD and cost product.
func (o *Optimizer) selectivity(e sem.Expr) float64 {
	return clamp01(o.selectivityRaw(e))
}

func (o *Optimizer) selectivityRaw(e sem.Expr) float64 {
	switch x := e.(type) {
	case *sem.Bin:
		switch {
		case x.Op == sem.OpAnd:
			// (pred1) AND (pred2): F1*F2 — "assumes column values are
			// independent".
			return clamp01(o.selectivity(x.L) * o.selectivity(x.R))
		case x.Op == sem.OpOr:
			// (pred1) OR (pred2): F1 + F2 - F1*F2.
			f1, f2 := o.selectivity(x.L), o.selectivity(x.R)
			return clamp01(f1 + f2 - f1*f2)
		case x.Op.IsComparison():
			return o.comparisonSel(x)
		default:
			return defUnknown
		}
	case *sem.Not:
		// NOT pred: F = 1 - F(pred).
		return clamp01(1 - o.selectivity(x.E))
	case *sem.Between:
		return o.betweenSel(x)
	case *sem.InList:
		return o.inListSel(x)
	case *sem.InSub:
		return o.inSubSel(x)
	default:
		return defUnknown
	}
}

func clamp01(f float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// colStats finds index statistics for a column: an analyzed index whose
// leading key column is the given column, preferring analyzed over
// unanalyzed — with two indexes on the same leading column, only one of
// which has statistics, the analyzed one must win or 1/ICARD silently
// degrades to the 1/10 default.
func (o *Optimizer) colStats(id sem.ColumnID) *catalog.IndexStats {
	t := o.blk.Rels[id.Rel].Table
	var first *catalog.IndexStats
	for _, ix := range t.Indexes {
		if ix.ColIdxs[0] != id.Col {
			continue
		}
		if ix.Stats.HasStats {
			return &ix.Stats
		}
		if first == nil {
			first = &ix.Stats
		}
	}
	return first
}

// icardOf returns the distinct-value count for a column — the histogram's
// NDistinct when present (it covers every column, indexed or not), else an
// index's leading-column ICARD, else 0.
func (o *Optimizer) icardOf(id sem.ColumnID) float64 {
	if cs := o.histStats(id); cs != nil {
		return cs.EffNDistinct()
	}
	if st := o.colStats(id); st != nil && st.HasStats {
		return st.EffICardLead()
	}
	return 0
}

func (o *Optimizer) comparisonSel(x *sem.Bin) float64 {
	lcol, lIsCol := x.L.(*sem.Col)
	rcol, rIsCol := x.R.(*sem.Col)
	switch {
	case lIsCol && rIsCol:
		return o.colColSel(x.Op, lcol, rcol)
	case lIsCol:
		return o.colValueSel(x.Op, lcol, x.R)
	case rIsCol:
		return o.colValueSel(flipCmp(x.Op), rcol, x.L)
	default:
		// Neither side is a bare column (arithmetic over columns, constants):
		// Table 1 has no entry; use the unknown default, except constant-only
		// comparisons which fold exactly.
		if lc, ok := x.L.(*sem.Const); ok {
			if rc, ok := x.R.(*sem.Const); ok {
				if x.Op.CmpOp().Apply(lc.Val, rc.Val) {
					return 1
				}
				return 0
			}
		}
		if x.Op == sem.OpEq {
			return defEq
		}
		return defUnknown
	}
}

func flipCmp(op sem.BinOp) sem.BinOp {
	switch op {
	case sem.OpLt:
		return sem.OpGt
	case sem.OpLe:
		return sem.OpGe
	case sem.OpGt:
		return sem.OpLt
	case sem.OpGe:
		return sem.OpLe
	}
	return op
}

// colColSel: "column1 = column2":
//
//	F = 1/MAX(ICARD(column1 index), ICARD(column2 index)) with both indexes
//	("assumes that each key value in the index with the smaller cardinality
//	has a matching value in the other index"),
//	F = 1/ICARD(column-i index) with one index, F = 1/10 otherwise.
//
// Non-equality column comparisons fall back to the open-ended default.
func (o *Optimizer) colColSel(op sem.BinOp, l, r *sem.Col) float64 {
	if op != sem.OpEq && op != sem.OpNe {
		return defRange
	}
	eq := func() float64 {
		li, ri := o.icardOf(l.ID), o.icardOf(r.ID)
		switch {
		case li > 0 && ri > 0:
			return clamp01(1 / math.Max(li, ri))
		case li > 0:
			return clamp01(1 / li)
		case ri > 0:
			return clamp01(1 / ri)
		default:
			return defEq
		}
	}()
	if op == sem.OpNe {
		return clamp01(1 - eq)
	}
	return eq
}

// colValueSel covers "column op value" where value is a constant, parameter,
// or subquery result. Estimation precedence: histogram → index statistics →
// Table 1 default (see histsel.go).
func (o *Optimizer) colValueSel(op sem.BinOp, col *sem.Col, other sem.Expr) float64 {
	switch op {
	case sem.OpEq:
		// Histogram: bucket-weighted 1/d. Index: F = 1/ICARD(column index) —
		// "assumes an even distribution of tuples among the index key
		// values". Otherwise 1/10.
		return o.eqSel(col, other)
	case sem.OpNe:
		return clamp01(1 - o.eqSel(col, other))
	default:
		// Open-ended comparison with a known value: bucket-fraction
		// interpolation from the histogram, else linear interpolation
		// between the index's low and high keys (arithmetic columns only).
		v, known := constOperand(other)
		if known {
			if cs := o.histStats(col.ID); cs != nil {
				if sel, ok := o.histRangeSel(cs, op, v); ok {
					return sel
				}
			}
		}
		st := o.colStats(col.ID)
		if !known || st == nil || !st.HasStats {
			return defRange
		}
		if !col.Typ.Arithmetic() || !v.Kind.Arithmetic() {
			return defRange
		}
		high, low := st.High.AsFloat(), st.Low.AsFloat()
		if !st.High.Kind.Arithmetic() || !st.Low.Kind.Arithmetic() || high <= low {
			return defRange
		}
		// Interpolated estimates are floored at one key's worth of rows:
		// a constant outside [low, high] — always possible once statistics
		// go stale — must clamp to the floor, not to zero.
		floor := clamp01(1 / st.EffICardLead())
		vf := v.AsFloat()
		switch op {
		case sem.OpGt, sem.OpGe:
			return clamp01(math.Max((high-vf)/(high-low), floor))
		default: // OpLt, OpLe
			return clamp01(math.Max((vf-low)/(high-low), floor))
		}
	}
}

// betweenSel: "column BETWEEN value1 AND value2":
//
//	F = (value2 - value1) / (high key - low key)
//
// when the column is arithmetic and both values are known, else 1/4. A
// histogram, when present, answers first with the bucket-fraction difference
// LeRows(hi) - LtRows(lo).
func (o *Optimizer) betweenSel(x *sem.Between) float64 {
	f := func() float64 {
		col, ok := x.E.(*sem.Col)
		if !ok {
			return defBetween
		}
		loV, loOK := constOperand(x.Lo)
		hiV, hiOK := constOperand(x.Hi)
		if loOK && hiOK {
			if cs := o.histStats(col.ID); cs != nil {
				if sel, ok := o.histBetweenSel(cs, loV, hiV); ok {
					return sel
				}
			}
		}
		st := o.colStats(col.ID)
		if !loOK || !hiOK || st == nil || !st.HasStats ||
			!col.Typ.Arithmetic() || !loV.Kind.Arithmetic() || !hiV.Kind.Arithmetic() {
			return defBetween
		}
		high, low := st.High.AsFloat(), st.Low.AsFloat()
		if !st.High.Kind.Arithmetic() || !st.Low.Kind.Arithmetic() || high <= low {
			return defBetween
		}
		// Only the window's overlap with the analyzed [low, high] key range
		// counts — a window hanging past either end (or entirely outside)
		// must not inflate the ratio. Floored like open-ended ranges: a
		// window beyond stale statistics estimates one key's rows, not zero.
		floor := clamp01(1 / st.EffICardLead())
		overlap := math.Min(hiV.AsFloat(), high) - math.Max(loV.AsFloat(), low)
		return clamp01(math.Max(overlap/(high-low), floor))
	}()
	if x.Negated {
		return clamp01(1 - f)
	}
	return f
}

// inListSel: "column IN (list of values)":
//
//	F = (number of items in list) * (selectivity factor for column = value),
//
// allowed to be no more than 1/2. With a histogram each list item gets its
// own per-item estimate (the items need not be equally common), summed.
//
// The 1/2 cap applies only to the positive form: it encodes "an IN list
// rarely matches more than half the table", which says nothing about NOT IN.
// The negated form is computed from the uncapped sum (clamped to [0, 1]) —
// capping first would floor every NOT IN at 1/2 no matter how wide the list.
func (o *Optimizer) inListSel(x *sem.InList) float64 {
	var sum float64
	if col, ok := x.E.(*sem.Col); ok {
		for _, item := range x.List {
			sum += o.eqSel(col, item)
		}
	} else {
		sum = float64(len(x.List)) * defEq
	}
	sum = clamp01(sum)
	if x.Negated {
		return clamp01(1 - sum)
	}
	return clamp01(math.Min(sum, inListCap))
}

// inSubSel: "columnA IN subquery":
//
//	F = (expected cardinality of the subquery result) /
//	    (product of the cardinalities of all the relations in the
//	     subquery's FROM-list).
func (o *Optimizer) inSubSel(x *sem.InSub) float64 {
	f := defUnknown
	if st, ok := o.subInfo[x.Sub]; ok && st.relProd > 0 {
		f = clamp01(st.qcard / st.relProd)
	}
	if x.Negated {
		return clamp01(1 - f)
	}
	return f
}

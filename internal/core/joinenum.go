package core

// Join enumeration — Section 5. The search finds the best join order for
// successively larger subsets of relations: "First, the best way is found to
// access each single relation for each interesting tuple ordering and for
// the unordered case. Next, the best way of joining any relation to these is
// found, subject to the heuristics for join order" — and so on. Per subset,
// the cheapest unordered solution and the cheapest solution per interesting
// order equivalence class are kept; joins requiring Cartesian products are
// deferred as late as possible.

import (
	"sort"

	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/value"
)

// solution is one retained plan for a subset of relations.
type solution struct {
	set  sem.RelSet
	ord  order // ordering of the produced composite tuples
	cost plan.Cost
	node plan.Node
	desc string
}

// subsetSols holds the retained solutions for one subset: the composite
// cardinality (identical for every join order of the subset), the order
// equivalence classes valid within the subset (only applied equi-join
// predicates equate columns), and the cheapest solution per canonical order
// slot ("" = cheapest regardless of order).
type subsetSols struct {
	card    float64
	classes *orderClasses
	best    map[string]*solution
}

// SearchStats quantifies the optimizer's own work for the paper's
// conclusion-section claims (E9): solutions stored ≤ 2^n × interesting
// orders, optimization cost equivalent to a handful of retrievals.
type SearchStats struct {
	CandidatesConsidered int
	SolutionsStored      int
	SubsetsExpanded      int
}

// Stats returns the search statistics of the last Optimize call.
func (o *Optimizer) Stats() SearchStats { return o.searchStats }

// propose offers a candidate solution for a subset; it is retained if it is
// the new cheapest for the unordered slot or for any interesting order its
// produced ordering satisfies.
func (o *Optimizer) propose(ss *subsetSols, cand *solution) bool {
	o.searchStats.CandidatesConsidered++
	w := o.cfg.W
	kept := false
	if cur, ok := ss.best[""]; !ok || cand.cost.Total(w) < cur.cost.Total(w) {
		if !ok {
			o.searchStats.SolutionsStored++
		}
		ss.best[""] = cand
		kept = true
	}
	// Orders compare under the subset's own equivalence classes: a column
	// equated by an applied join predicate stands in for its peers, but
	// not-yet-applied predicates equate nothing.
	candCanon := canonical(cand.ord, ss.classes)
	for _, io := range o.interest {
		ioCanon := canonical(io, ss.classes)
		if !candCanon.satisfies(ioCanon) {
			continue
		}
		k := ioCanon.key()
		if cur, ok := ss.best[k]; !ok || cand.cost.Total(w) < cur.cost.Total(w) {
			if !ok {
				o.searchStats.SolutionsStored++
			}
			ss.best[k] = cand
			kept = true
		}
	}
	o.cfg.Trace.candidate(o, cand, kept)
	return kept
}

// distinctSolutions returns the subset's retained solutions without
// duplicates, in deterministic order.
func (ss *subsetSols) distinctSolutions() []*solution {
	keys := make([]string, 0, len(ss.best))
	for k := range ss.best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []*solution
	seen := map[*solution]bool{}
	for _, k := range keys {
		s := ss.best[k]
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// search runs the dynamic program and returns the chosen solution for the
// full FROM list, including a final sort when the required order cannot be
// met more cheaply by an ordered solution.
func (o *Optimizer) search() (*solution, error) {
	o.searchStats = SearchStats{}
	n := len(o.blk.Rels)
	w := o.cfg.W
	sols := make(map[sem.RelSet]*subsetSols)

	// Level 1: single-relation access paths.
	for r := 0; r < n; r++ {
		var s sem.RelSet
		s = s.Set(r)
		ss := &subsetSols{card: o.cardOf(s), classes: o.classesFor(s), best: make(map[string]*solution)}
		sols[s] = ss
		o.cfg.Trace.enterSubset(o, s)
		for _, p := range o.genPaths(r, nil) {
			o.propose(ss, &solution{set: s, ord: p.ord, cost: p.cost, node: p.node, desc: p.desc})
		}
	}

	// Levels 2..n: extend every retained subset by one relation.
	for size := 2; size <= n; size++ {
		// Deterministic subset order.
		var prev []sem.RelSet
		for s := range sols {
			if s.Count() == size-1 {
				prev = append(prev, s)
			}
		}
		sort.Slice(prev, func(i, j int) bool { return prev[i] < prev[j] })
		for _, s := range prev {
			o.searchStats.SubsetsExpanded++
			for r := 0; r < n; r++ {
				if s.Has(r) || !o.joinAllowed(s, r) {
					continue
				}
				s2 := s.Set(r)
				ss2, ok := sols[s2]
				if !ok {
					ss2 = &subsetSols{card: o.cardOf(s2), classes: o.classesFor(s2), best: make(map[string]*solution)}
					sols[s2] = ss2
					o.cfg.Trace.enterSubset(o, s2)
				}
				o.joinCandidates(sols[s], s, r, ss2)
			}
		}
	}

	full := sem.RelSet(0)
	for r := 0; r < n; r++ {
		full = full.Set(r)
	}
	ss, ok := sols[full]
	if !ok || ss.best[""] == nil {
		return nil, errNoPlan
	}

	// Final order requirement: "the optimizer chooses the cheapest solution
	// which gives the required order ... no sort is performed unless the
	// ordered solution is more expensive than the cheapest unordered solution
	// plus the cost of sorting into the required order."
	req := o.requiredOrder()
	if len(req) == 0 {
		return ss.best[""], nil
	}
	ordered := ss.best[canonical(req, ss.classes).key()]
	cheapest := ss.best[""]
	sortCost := o.sortCost(ss.card, o.setWidth(full))
	sorted := &solution{
		set:  full,
		ord:  req,
		cost: cheapest.cost.Add(sortCost),
		desc: "sort cheapest unordered",
	}
	if ordered != nil && ordered.cost.Total(o.cfg.W) <= sorted.cost.Total(w) {
		return ordered, nil
	}
	sortNode := &plan.Sort{Input: cheapest.node, Keys: o.sortKeysFor(req, full)}
	sortNode.SetEst(plan.Estimate{Cost: sorted.cost, Rows: ss.card})
	sorted.node = sortNode
	return sorted, nil
}

// joinAllowed implements the join-order heuristic: relation r may extend
// subset s only if a join predicate relates it to s, unless no remaining
// relation is so related (Cartesian products as late as possible).
func (o *Optimizer) joinAllowed(s sem.RelSet, r int) bool {
	if o.cfg.DisableJoinHeuristic {
		return true
	}
	if o.connected(s, r) {
		return true
	}
	for other := 0; other < len(o.blk.Rels); other++ {
		if !s.Has(other) && o.connected(s, other) {
			return false // some relation does have a join predicate with s
		}
	}
	return true
}

// connected reports whether any join predicate relates relation r to the
// subset s.
func (o *Optimizer) connected(s sem.RelSet, r int) bool {
	for _, fi := range o.factors {
		if fi.rels.Count() < 2 || !fi.rels.Has(r) {
			continue
		}
		if fi.rels&s != 0 {
			return true
		}
	}
	return false
}

// joinCandidates proposes every way of joining relation r to subset s:
// nested loops against each retained outer solution, and merging scans on
// each applicable equi-join predicate with sort/no-sort alternatives on both
// sides.
func (o *Optimizer) joinCandidates(ssOuter *subsetSols, s sem.RelSet, r int, ss2 *subsetSols) {
	s2 := s.Set(r)
	var rOnly sem.RelSet
	rOnly = rOnly.Set(r)

	// Predicates that become applicable at this join.
	var applicable []*factorInfo
	for _, fi := range o.factors {
		if s2.Contains(fi.rels) && !s.Contains(fi.rels) && !rOnly.Contains(fi.rels) {
			applicable = append(applicable, fi)
		}
	}

	rows := ss2.card
	nOuter := ssOuter.card

	// Does any equi-join predicate connect r to s? Merging scans apply only
	// to equi-joins, so without one the step must use nested loops even when
	// the configuration prefers merge.
	hasEquiJoin := false
	for _, fi := range applicable {
		if ej := fi.f.EquiJoin; ej != nil {
			if (ej.Left.Rel == r && s.Has(ej.Right.Rel)) || (ej.Right.Rel == r && s.Has(ej.Left.Rel)) {
				hasEquiJoin = true
				break
			}
		}
	}

	// ---- Nested loops ----
	if !o.cfg.MergeOnly || !hasEquiJoin {
		var pushed []pushedPred
		var binds []plan.ParamBind
		var residual []sem.Expr
		for _, fi := range applicable {
			if ic, oc, op, ok := o.pushable(fi, s, r); ok && !o.cfg.DisableSargs {
				pid := o.nextParam
				o.nextParam++
				pushed = append(pushed, pushedPred{
					innerCol: ic, op: op,
					bound: sem.Bound{Kind: sem.BoundParam, Param: pid},
					sel:   fi.sel,
				})
				binds = append(binds, plan.ParamBind{Param: pid, From: oc})
			} else {
				residual = append(residual, fi.f.Expr)
			}
		}
		// Cheapest inner path: the inner's ordering is irrelevant for nested
		// loops (the composite's order is the outer's order).
		var inner *pathCand
		for _, p := range o.genPaths(r, pushed) {
			p := p
			if inner == nil || p.cost.Total(o.cfg.W) < inner.cost.Total(o.cfg.W) {
				inner = &p
			}
		}
		for _, outer := range ssOuter.distinctSolutions() {
			cost := outer.cost.Add(inner.cost.Scale(nOuter))
			node := &plan.NLJoin{Outer: outer.node, Inner: inner.node, Binds: binds, Residual: residual}
			node.SetEst(plan.Estimate{Cost: cost, Rows: rows})
			o.propose(ss2, &solution{
				set: s2, ord: outer.ord, cost: cost, node: node,
				desc: "nested loops (" + outer.desc + " ⋈ " + inner.desc + ")",
			})
		}
	}

	// ---- Merging scans (equi-joins only) ----
	if o.cfg.NestedLoopsOnly {
		return
	}
	for _, fi := range applicable {
		ej := fi.f.EquiJoin
		if ej == nil {
			continue
		}
		var innerCol, outerCol sem.ColumnID
		switch {
		case ej.Left.Rel == r && s.Has(ej.Right.Rel):
			innerCol, outerCol = ej.Left, ej.Right
		case ej.Right.Rel == r && s.Has(ej.Left.Rel):
			innerCol, outerCol = ej.Right, ej.Left
		default:
			continue
		}
		mergeOrd := order{orderEl{class: innerCol}}
		outerOrd := order{orderEl{class: outerCol}}

		// Residual: every other applicable predicate ("one of them is used as
		// the join predicate and the others are treated as ordinary
		// predicates").
		var residual []sem.Expr
		for _, other := range applicable {
			if other != fi {
				residual = append(residual, other.f.Expr)
			}
		}

		// Outer alternatives: an already-ordered solution, or sort the
		// cheapest unordered one into a temporary list.
		type outerOpt struct {
			node plan.Node
			cost plan.Cost
			ord  order
			desc string
		}
		var outers []outerOpt
		if sol, ok := ssOuter.best[canonical(outerOrd, ssOuter.classes).key()]; ok {
			outers = append(outers, outerOpt{node: sol.node, cost: sol.cost, ord: sol.ord, desc: sol.desc})
		}
		if cheapest, ok := ssOuter.best[""]; ok {
			sc := o.sortCost(nOuter, o.setWidth(s))
			sortNode := &plan.Sort{Input: cheapest.node, Keys: o.sortKeysFor(outerOrd, s)}
			cost := cheapest.cost.Add(sc)
			sortNode.SetEst(plan.Estimate{Cost: cost, Rows: nOuter})
			outers = append(outers, outerOpt{node: sortNode, cost: cost, ord: outerOrd, desc: "sort " + cheapest.desc})
		}

		// Inner alternatives.
		type innerOpt struct {
			node  plan.Node
			total plan.Cost // full inner-side cost contribution to the join
			desc  string
		}
		var inners []innerOpt
		selSarg, selAll := o.localSel(r)
		ncard := o.blk.Rels[r].Table.Stats.EffNCard()
		// (a) index scans already in join-column order: per-group cost via the
		// eq-matching formulas, applied N times.
		for _, p := range o.genPaths(r, nil) {
			ixScan, ok := p.node.(*plan.IndexScan)
			if !ok || !p.ord.satisfies(mergeOrd) {
				continue
			}
			group := o.innerGroupCost(r, ixScan.Index, fi.sel, ncard*selSarg*fi.sel)
			inners = append(inners, innerOpt{node: p.node, total: group.Scale(nOuter), desc: p.desc})
		}
		// (b) sort the cheapest inner path into a temporary list; during the
		// merge each temp page is fetched once (the C_inner(sorted list)
		// case).
		var base *pathCand
		for _, p := range o.genPaths(r, nil) {
			p := p
			if base == nil || p.cost.Total(o.cfg.W) < base.cost.Total(o.cfg.W) {
				base = &p
			}
		}
		if base != nil {
			cardLocal := ncard * selAll
			sc := o.sortCost(cardLocal, o.rowWidth(r))
			sortNode := &plan.Sort{Input: base.node, Keys: []sem.OrderKey{{Col: innerCol}}}
			total := base.cost.Add(sc)
			sortNode.SetEst(plan.Estimate{Cost: total, Rows: cardLocal})
			inners = append(inners, innerOpt{node: sortNode, total: total, desc: "sort " + base.desc})
		}

		for _, out := range outers {
			for _, in := range inners {
				cost := out.cost.Add(in.total)
				node := &plan.MergeJoin{
					Outer: out.node, Inner: in.node,
					OuterCol: outerCol, InnerCol: innerCol,
					Residual: residual,
				}
				node.SetEst(plan.Estimate{Cost: cost, Rows: rows})
				o.propose(ss2, &solution{
					set: s2, ord: out.ord, cost: cost, node: node,
					desc: "merge scan (" + out.desc + " ⋈ " + in.desc + ")",
				})
			}
		}
	}

	// ---- Hash join (equi-joins only) ----
	// The third method, costed in the style of Table 2:
	//
	//	C-hash = C-outer(path) + C-inner(path) + W*(N-inner + N-outer)
	//	       [+ 2*TEMPPAGES(N-inner, width) if the table exceeds the buffer]
	//
	// The inner (build) side is read once by its cheapest access path and
	// each of its N-inner qualifying tuples costs one RSI-like call to enter
	// the hash table; each of the N-outer probe tuples costs one lookup. No
	// interesting order is produced (probing scrambles nothing today, but
	// order is deliberately not promised — parallel scans already make the
	// probe order nondeterministic), so a downstream order requirement is won
	// by merge and order-free joins by hash.
	if o.cfg.DisableHashJoin || o.cfg.MergeOnly {
		return
	}
	for _, fi := range applicable {
		ej := fi.f.EquiJoin
		if ej == nil {
			continue
		}
		var innerCol, outerCol sem.ColumnID
		switch {
		case ej.Left.Rel == r && s.Has(ej.Right.Rel):
			innerCol, outerCol = ej.Left, ej.Right
		case ej.Right.Rel == r && s.Has(ej.Left.Rel):
			innerCol, outerCol = ej.Right, ej.Left
		default:
			continue
		}
		var residual []sem.Expr
		for _, other := range applicable {
			if other != fi {
				residual = append(residual, other.f.Expr)
			}
		}
		var base *pathCand
		for _, p := range o.genPaths(r, nil) {
			p := p
			if base == nil || p.cost.Total(o.cfg.W) < base.cost.Total(o.cfg.W) {
				base = &p
			}
		}
		outer, ok := ssOuter.best[""]
		if base == nil || !ok {
			continue
		}
		_, selAll := o.localSel(r)
		buildRows := o.blk.Rels[r].Table.Stats.EffNCard() * selAll
		buildCost := base.cost.Add(plan.Cost{RSI: buildRows})
		if tp := tempPages(buildRows, o.rowWidth(r)); tp > float64(o.cfg.BufferPages) {
			// The build side does not fit the System R buffer: charge a
			// write-out and read-back of the spilled temporary, as the sorted
			// temp-list formulas do.
			buildCost = buildCost.Add(plan.Cost{Pages: 2 * tp})
		}
		cost := outer.cost.Add(buildCost).Add(plan.Cost{RSI: nOuter})
		node := &plan.HashJoin{
			Outer: outer.node, Inner: base.node,
			OuterCol: outerCol, InnerCol: innerCol,
			Residual: residual, BuildRows: buildRows,
		}
		node.SetEst(plan.Estimate{Cost: cost, Rows: rows})
		o.propose(ss2, &solution{
			set: s2, ord: nil, cost: cost, node: node,
			desc: "hash join (" + outer.desc + " ⋈ " + base.desc + ")",
		})
	}
}

// localSel returns the products of the sargable and of all local-factor
// selectivities for one relation.
func (o *Optimizer) localSel(rel int) (selSarg, selAll float64) {
	selSarg, selAll = 1, 1
	sargable, residual := o.localFactors(rel)
	for _, fi := range sargable {
		selSarg = clamp01(selSarg * fi.sel)
		selAll = clamp01(selAll * fi.sel)
	}
	for _, fi := range residual {
		selAll = clamp01(selAll * fi.sel)
	}
	return selSarg, selAll
}

// pushable reports whether a factor can be applied on the inner relation of
// a nested-loop join as "innerCol op $outerValue": a single comparison with
// one side a column of r and the other a column of the outer subset.
func (o *Optimizer) pushable(fi *factorInfo, s sem.RelSet, r int) (innerCol, outerCol sem.ColumnID, op value.CmpOp, ok bool) {
	b, isBin := fi.f.Expr.(*sem.Bin)
	if !isBin || !b.Op.IsComparison() {
		return sem.ColumnID{}, sem.ColumnID{}, 0, false
	}
	l, lok := b.L.(*sem.Col)
	rr, rok := b.R.(*sem.Col)
	if !lok || !rok {
		return sem.ColumnID{}, sem.ColumnID{}, 0, false
	}
	switch {
	case l.ID.Rel == r && s.Has(rr.ID.Rel):
		return l.ID, rr.ID, b.Op.CmpOp(), true
	case rr.ID.Rel == r && s.Has(l.ID.Rel):
		return rr.ID, l.ID, b.Op.CmpOp().Flip(), true
	default:
		return sem.ColumnID{}, sem.ColumnID{}, 0, false
	}
}

package core

import (
	"fmt"
	"math"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// testDB builds a catalog with one relation R:
//
//	R(A INTEGER indexed [values 0..49, uniform ×4],
//	  B INTEGER no index [values 0..9],
//	  C VARCHAR indexed [20 distinct],
//	  D FLOAT no index)
//
// 200 rows, statistics updated. A second relation S(A indexed 0..9, E no
// index) with 50 rows supports join selectivities.
func testDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewDisk())
	r, err := cat.CreateTable("R", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "B", Type: value.KindInt},
		{Name: "C", Type: value.KindString},
		{Name: "D", Type: value.KindFloat},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		_, _, err := rss.Insert(r, value.Row{
			value.NewInt(int64(i % 50)),
			value.NewInt(int64(i % 10)),
			value.NewString(fmt.Sprintf("C%02d", i%20)),
			value.NewFloat(float64(i)),
		}, storage.FrozenXID, storage.NoPrevTID, cat.Disk())
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cat.CreateIndex("R_A", "R", []string{"A"}, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("R_C", "R", []string{"C"}, false, false); err != nil {
		t.Fatal(err)
	}
	s, err := cat.CreateTable("S", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "E", Type: value.KindInt},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := rss.Insert(s, value.Row{value.NewInt(int64(i % 10)), value.NewInt(int64(i))}, storage.FrozenXID, storage.NoPrevTID, cat.Disk()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cat.CreateIndex("S_A", "S", []string{"A"}, false, false); err != nil {
		t.Fatal(err)
	}
	cat.UpdateStatistics()
	return cat
}

// factorSel analyzes "SELECT A FROM R[, S] WHERE <pred>" and returns the
// selectivity the optimizer assigns to the (single) boolean factor.
// Histograms are disabled so these tests pin the paper's Table 1 factors
// exactly; histogram-based estimation has its own tests in histsel_test.go.
func factorSel(t testing.TB, cat *catalog.Catalog, from, pred string) float64 {
	t.Helper()
	return factorSelCfg(t, cat, from, pred, Config{DisableHistograms: true})
}

// factorSelCfg is factorSel under an explicit optimizer configuration.
func factorSelCfg(t testing.TB, cat *catalog.Catalog, from, pred string, cfg Config) float64 {
	t.Helper()
	st, err := sql.Parse("SELECT R.A FROM " + from + " WHERE " + pred)
	if err != nil {
		t.Fatalf("parse %q: %v", pred, err)
	}
	blk, err := sem.Analyze(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatalf("analyze %q: %v", pred, err)
	}
	o := New(cat, cfg)
	// Planning initializes factor selectivities (including subquery stats).
	if _, err := o.Optimize(blk); err != nil {
		t.Fatalf("optimize %q: %v", pred, err)
	}
	if len(o.factors) == 0 {
		t.Fatalf("no factors for %q", pred)
	}
	return o.factors[0].sel
}

func approx(t testing.TB, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s: selectivity %v, want %v", what, got, want)
	}
}

// TestTable1EqualPredicates: "F = 1/ICARD(column index) if there is an index
// on column; 1/10 otherwise."
func TestTable1EqualPredicates(t *testing.T) {
	cat := testDB(t)
	approx(t, factorSel(t, cat, "R", "A = 7"), 1.0/50, "eq with index")
	approx(t, factorSel(t, cat, "R", "B = 3"), 1.0/10, "eq without index")
	approx(t, factorSel(t, cat, "R", "7 = A"), 1.0/50, "eq flipped operands")
	approx(t, factorSel(t, cat, "R", "C = 'C05'"), 1.0/20, "string eq with index")
}

// TestTable1ColumnEqColumn: "F = 1/MAX(ICARD(c1), ICARD(c2)) with both
// indexes; 1/ICARD(ci) with one; 1/10 otherwise."
func TestTable1ColumnEqColumn(t *testing.T) {
	cat := testDB(t)
	approx(t, factorSel(t, cat, "R, S", "R.A = S.A"), 1.0/50, "both indexed: 1/max(50,10)")
	approx(t, factorSel(t, cat, "R, S", "R.B = S.A"), 1.0/10, "one indexed (S.A, icard 10)")
	approx(t, factorSel(t, cat, "R, S", "R.B = S.E"), 1.0/10, "neither indexed")
}

// TestTable1RangePredicates: linear interpolation for arithmetic columns with
// known values; 1/3 otherwise.
func TestTable1RangePredicates(t *testing.T) {
	cat := testDB(t)
	// A spans 0..49: A > 39 → (49-39)/(49-0) = 10/49.
	approx(t, factorSel(t, cat, "R", "A > 39"), 10.0/49, "interpolated >")
	approx(t, factorSel(t, cat, "R", "A < 39"), 39.0/49, "interpolated <")
	// No statistics for B (no index) → default 1/3.
	approx(t, factorSel(t, cat, "R", "B > 3"), 1.0/3, "range without stats")
	// Non-arithmetic column → 1/3 even with an index.
	approx(t, factorSel(t, cat, "R", "C > 'C10'"), 1.0/3, "string range")
	// Value unknown at access path selection (subquery operand) → 1/3.
	approx(t, factorSel(t, cat, "R", "A > (SELECT MIN(E) FROM S)"), 1.0/3, "unknown value")
}

// TestTable1Between: ratio of the BETWEEN range to the key range; 1/4
// otherwise.
func TestTable1Between(t *testing.T) {
	cat := testDB(t)
	approx(t, factorSel(t, cat, "R", "A BETWEEN 10 AND 19"), 9.0/49, "interpolated between")
	approx(t, factorSel(t, cat, "R", "B BETWEEN 1 AND 3"), 1.0/4, "between without stats")
	approx(t, factorSel(t, cat, "R", "C BETWEEN 'C01' AND 'C05'"), 1.0/4, "string between")
}

// TestTable1InList: F = n × F(eq), capped at 1/2.
func TestTable1InList(t *testing.T) {
	cat := testDB(t)
	approx(t, factorSel(t, cat, "R", "A IN (1, 2, 3)"), 3.0/50, "in list with index")
	approx(t, factorSel(t, cat, "R", "B IN (1, 2, 3)"), 3.0/10, "in list without index")
	// 40 × 1/50 = 0.8 → capped at 1/2.
	in40 := "A IN (0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35,36,37,38,39)"
	approx(t, factorSel(t, cat, "R", in40), 1.0/2, "in list capped at 1/2")
}

// TestTable1InSubquery: F = QCARD(sub) / product of subquery FROM
// cardinalities.
func TestTable1InSubquery(t *testing.T) {
	cat := testDB(t)
	// Subquery: SELECT A FROM S WHERE E = 5 → QCARD est = 50 × 1/10 = 5;
	// relProd = 50 → F = 0.1.
	got := factorSel(t, cat, "R", "A IN (SELECT A FROM S WHERE E = 5)")
	approx(t, got, 0.1, "in subquery")
	// Unrestricted subquery → F = 1.
	got = factorSel(t, cat, "R", "A IN (SELECT A FROM S)")
	approx(t, got, 1.0, "unrestricted in subquery")
}

// TestTable1Combinators: OR, AND, NOT.
func TestTable1Combinators(t *testing.T) {
	cat := testDB(t)
	f1, f2 := 1.0/50, 1.0/10
	approx(t, factorSel(t, cat, "R", "(A = 1 OR B = 2)"), f1+f2-f1*f2, "or")
	// AND inside one factor only occurs under OR or NOT; use NOT(x OR y)
	// which push-down turns into two factors — instead check AND via nested
	// parens kept as one factor by OR wrapping.
	approx(t, factorSel(t, cat, "R", "(A = 1 AND B = 2) OR C = 'C00'"),
		func() float64 {
			and := f1 * f2
			c := 1.0 / 20
			return and + c - and*c
		}(), "and under or")
	approx(t, factorSel(t, cat, "R", "NOT B = 2"), 1-f2, "not eq")
	approx(t, factorSel(t, cat, "R", "A <> 3"), 1-f1, "ne")
}

// TestSelectivityAlwaysInUnitRange is the property the rest of the optimizer
// depends on.
func TestSelectivityAlwaysInUnitRange(t *testing.T) {
	cat := testDB(t)
	preds := []string{
		"A = 1", "A > 1000", "A < -5", "A BETWEEN 40 AND 900",
		"NOT (A = 1 OR B = 2)", "A IN (1,1,1,1)", "B <> 5",
		"A NOT IN (1,2)", "A NOT BETWEEN 10 AND 20",
		"(A = 1 OR A = 2) AND (B = 1 OR B = 2)",
		"A + B = 3", "A * 2 > B", "1 = 1", "1 = 2",
	}
	for _, p := range preds {
		f := factorSel(t, cat, "R", p)
		if f < 0 || f > 1 || math.IsNaN(f) {
			t.Fatalf("selectivity of %q out of range: %v", p, f)
		}
	}
}

// TestConstantFolding: constant comparisons fold to exactly 0 or 1.
func TestConstantFolding(t *testing.T) {
	cat := testDB(t)
	approx(t, factorSel(t, cat, "R", "1 = 1"), 1, "true constant")
	approx(t, factorSel(t, cat, "R", "1 = 2"), 0, "false constant")
}

// TestDefaultStatisticsSelectivities: without UPDATE STATISTICS the paper's
// "arbitrary factor" defaults apply even when indexes exist.
func TestDefaultStatisticsSelectivities(t *testing.T) {
	cat := catalog.New(storage.NewDisk())
	r, _ := cat.CreateTable("R", []catalog.Column{{Name: "A", Type: value.KindInt}}, "")
	for i := 0; i < 100; i++ {
		rss.Insert(r, value.Row{value.NewInt(int64(i))}, storage.FrozenXID, storage.NoPrevTID, cat.Disk())
	}
	cat.CreateIndex("R_A", "R", []string{"A"}, false, false)
	// No UpdateStatistics: ICARD defaults to DefaultICard.
	st, _ := sql.Parse("SELECT A FROM R WHERE A = 5")
	blk, err := sem.Analyze(st.(*sql.SelectStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	o := New(cat, Config{})
	if _, err := o.Optimize(blk); err != nil {
		t.Fatal(err)
	}
	approx(t, o.factors[0].sel, 1.0/catalog.DefaultICard, "default icard eq")
}

// TestEmptyRelationSelectivities: an analyzed empty relation has ICARD = 0 on
// every index; 1/ICARD must not produce Inf/NaN (EffICardLead floors at 1)
// and every factor F stays in [0, 1].
func TestEmptyRelationSelectivities(t *testing.T) {
	cat := catalog.New(storage.NewDisk())
	if _, err := cat.CreateTable("R", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "B", Type: value.KindInt},
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("R_A", "R", []string{"A"}, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("R_B", "R", []string{"B"}, false, false); err != nil {
		t.Fatal(err)
	}
	cat.UpdateStatistics() // analyzed, but every ICARD/NCARD is zero
	preds := []string{
		"A = 1", "A <> 1", "A = B", "A IN (1,2,3)",
		"A > 5", "A BETWEEN 1 AND 2", "NOT A = 1",
	}
	for _, p := range preds {
		f := factorSel(t, cat, "R", p)
		if f < 0 || f > 1 || math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("empty-relation selectivity of %q out of range: %v", p, f)
		}
	}
}

package core

// Interesting orders and order-equivalence classes (Sections 4 and 5).
//
// "We say that a tuple order is an interesting order if that order is one
// specified by the query block's GROUP BY or ORDER BY clauses"; for joins,
// "every join column defines an interesting order", and columns related by
// equi-join predicates are folded into equivalence classes ("if there is a
// join predicate E.DNO = D.DNO and another join predicate D.DNO = F.DNO then
// all three of these columns belong to the same order equivalence class") so
// that only the best solution per class is kept.

import (
	"fmt"
	"strings"

	"systemr/internal/sem"
)

// orderClasses is a union-find over column identities.
type orderClasses struct {
	parent map[sem.ColumnID]sem.ColumnID
}

func newOrderClasses() *orderClasses {
	return &orderClasses{parent: make(map[sem.ColumnID]sem.ColumnID)}
}

func (oc *orderClasses) find(c sem.ColumnID) sem.ColumnID {
	p, ok := oc.parent[c]
	if !ok || p == c {
		return c
	}
	root := oc.find(p)
	oc.parent[c] = root
	return root
}

func (oc *orderClasses) union(a, b sem.ColumnID) {
	// Register both columns so class members can be enumerated later (see
	// representative).
	if _, ok := oc.parent[a]; !ok {
		oc.parent[a] = a
	}
	if _, ok := oc.parent[b]; !ok {
		oc.parent[b] = b
	}
	ra, rb := oc.find(a), oc.find(b)
	if ra != rb {
		oc.parent[ra] = rb
	}
}

// same reports whether two columns are in one equivalence class.
func (oc *orderClasses) same(a, b sem.ColumnID) bool { return oc.find(a) == oc.find(b) }

// orderEl is one element of a produced or required tuple ordering: a
// concrete column and a direction. Equivalence between columns equated by
// join predicates is applied per relation subset (see canonical): two
// columns are interchangeable only once the equating predicate has actually
// been applied, so a Cartesian composite ordered on T3.K does not pass for
// T0.K order merely because a not-yet-applied predicate equates them.
type orderEl struct {
	class sem.ColumnID // the concrete column producing/required at this position
	desc  bool
}

// order is a tuple ordering, major element first. nil/empty = unordered.
type order []orderEl

// key canonicalizes an order for use as a map key.
func (o order) key() string {
	if len(o) == 0 {
		return ""
	}
	var b strings.Builder
	for _, el := range o {
		d := "a"
		if el.desc {
			d = "d"
		}
		fmt.Fprintf(&b, "%d.%d%s;", el.class.Rel, el.class.Col, d)
	}
	return b.String()
}

// satisfies reports whether a produced ordering satisfies a required one:
// the requirement must be a prefix of the production.
func (o order) satisfies(req order) bool {
	if len(req) > len(o) {
		return false
	}
	for i, el := range req {
		if o[i] != el {
			return false
		}
	}
	return true
}

// canonical rewrites an order's columns to their equivalence-class roots
// under the given (subset-relative) classes, making orders comparable and
// keyable within one subset of relations.
func canonical(ord order, oc *orderClasses) order {
	if len(ord) == 0 {
		return ord
	}
	out := make(order, len(ord))
	for i, el := range ord {
		out[i] = orderEl{class: oc.find(el.class), desc: el.desc}
	}
	return out
}

// classesFor builds the order-equivalence classes valid within a subset:
// only equi-join predicates fully contained in the subset (i.e. already
// applied) equate their columns.
func (o *Optimizer) classesFor(s sem.RelSet) *orderClasses {
	oc := newOrderClasses()
	for _, fi := range o.factors {
		if fi.f.EquiJoin != nil && s.Contains(fi.rels) {
			oc.union(fi.f.EquiJoin.Left, fi.f.EquiJoin.Right)
		}
	}
	return oc
}

// requiredOrder returns the ordering the final solution must deliver for the
// block's GROUP BY / ORDER BY, or nil. For grouped blocks with ORDER BY the
// ORDER BY keys (⊆ GROUP BY, enforced by sem) come first and the remaining
// group columns follow, so one sort serves both clauses.
func (o *Optimizer) requiredOrder() order {
	blk := o.blk
	switch {
	case len(blk.GroupBy) > 0:
		var out order
		seen := map[sem.ColumnID]bool{}
		for _, k := range blk.OrderBy {
			el := orderEl{class: k.Col, desc: k.Desc}
			if !seen[el.class] {
				seen[el.class] = true
				out = append(out, el)
			}
		}
		for _, c := range blk.GroupBy {
			if !seen[c] {
				seen[c] = true
				out = append(out, orderEl{class: c})
			}
		}
		return out
	case len(blk.OrderBy) > 0:
		var out order
		seen := map[sem.ColumnID]bool{}
		for _, k := range blk.OrderBy {
			el := orderEl{class: k.Col, desc: k.Desc}
			if !seen[el.class] {
				seen[el.class] = true
				out = append(out, el)
			}
		}
		return out
	default:
		return nil
	}
}

// interestingOrders lists every ordering worth remembering during the
// search: the block's required order and each join column's single-column
// ascending order.
func (o *Optimizer) interestingOrders() []order {
	var out []order
	seen := map[string]bool{}
	add := func(ord order) {
		if len(ord) == 0 {
			return
		}
		k := ord.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, ord)
		}
	}
	add(o.requiredOrder())
	for _, fi := range o.factors {
		if fi.f.EquiJoin != nil {
			// Both sides are interesting: which column physically provides
			// the order depends on the join direction chosen later.
			add(order{orderEl{class: fi.f.EquiJoin.Left}})
			add(order{orderEl{class: fi.f.EquiJoin.Right}})
		}
	}
	if o.cfg.DisableInterestingOrders {
		return nil
	}
	return out
}

// indexOrder is the ordering produced by scanning an index of relation rel:
// its key columns, ascending.
func (o *Optimizer) indexOrder(rel int, colIdxs []int) order {
	out := make(order, len(colIdxs))
	for i, c := range colIdxs {
		out[i] = orderEl{class: sem.ColumnID{Rel: rel, Col: c}}
	}
	return out
}

// sortKeysFor converts a required order into concrete sort keys, choosing
// for each class a representative column available in the given relation
// set.
func (o *Optimizer) sortKeysFor(req order, s sem.RelSet) []sem.OrderKey {
	keys := make([]sem.OrderKey, 0, len(req))
	for _, el := range req {
		col, ok := o.representative(el.class, s)
		if !ok {
			// The class has no column inside s; skip (cannot happen for
			// correctly derived requirements).
			continue
		}
		keys = append(keys, sem.OrderKey{Col: col, Desc: el.desc})
	}
	return keys
}

// representative picks a column of the equivalence class that lives in s.
func (o *Optimizer) representative(class sem.ColumnID, s sem.RelSet) (sem.ColumnID, bool) {
	if s.Has(class.Rel) {
		return class, true
	}
	// Any member of the class inside s will do: scan the known columns.
	for c := range o.classes.parent {
		if s.Has(c.Rel) && o.classes.find(c) == class {
			return c, true
		}
	}
	return sem.ColumnID{}, false
}

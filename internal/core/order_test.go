package core

import (
	"math"
	"testing"

	"systemr/internal/sem"
)

func col(rel, c int) sem.ColumnID { return sem.ColumnID{Rel: rel, Col: c} }

func TestOrderClassesUnionFind(t *testing.T) {
	oc := newOrderClasses()
	a, b, c, d := col(0, 1), col(1, 0), col(2, 3), col(3, 3)
	oc.union(a, b)
	oc.union(b, c)
	if !oc.same(a, c) {
		t.Fatal("transitive union")
	}
	if oc.same(a, d) {
		t.Fatal("d is separate")
	}
	oc.union(d, a)
	if !oc.same(d, c) {
		t.Fatal("late union merges classes")
	}
	// Singletons are their own class.
	e := col(9, 9)
	if oc.find(e) != e {
		t.Fatal("singleton root")
	}
}

func TestOrderSatisfiesAndKey(t *testing.T) {
	a := orderEl{class: col(0, 1)}
	b := orderEl{class: col(1, 2)}
	bd := orderEl{class: col(1, 2), desc: true}
	long := order{a, b}
	if !long.satisfies(order{a}) {
		t.Fatal("prefix satisfies")
	}
	if !long.satisfies(long) {
		t.Fatal("identity satisfies")
	}
	if long.satisfies(order{b}) {
		t.Fatal("wrong leading element")
	}
	if long.satisfies(order{a, bd}) {
		t.Fatal("direction mismatch must not satisfy")
	}
	if (order{a}).satisfies(long) {
		t.Fatal("shorter cannot satisfy longer")
	}
	if order(nil).key() != "" {
		t.Fatal("empty order key")
	}
	if long.key() == (order{a, bd}).key() {
		t.Fatal("direction must distinguish keys")
	}
	if !order(nil).satisfies(nil) {
		t.Fatal("empty satisfies empty")
	}
}

func TestRequiredOrderCombinesGroupAndOrderBy(t *testing.T) {
	cat := joinDB(t, 1, 50)
	// GROUP BY V ORDER BY V: one sort serves both; K added after order keys
	// when grouping on both.
	_, o := planFor(t, cat, Config{}, "SELECT V, COUNT(*) FROM T1 GROUP BY V ORDER BY V")
	req := o.requiredOrder()
	if len(req) != 1 || req[0].desc {
		t.Fatalf("required order: %+v", req)
	}
	_, o = planFor(t, cat, Config{}, "SELECT K, V, COUNT(*) FROM T1 GROUP BY K, V ORDER BY V")
	req = o.requiredOrder()
	if len(req) != 2 || req[0].class != o.classes.find(col(0, 1)) {
		t.Fatalf("ORDER BY key must lead: %+v", req)
	}
}

func TestInterestingOrdersIncludeJoinColumns(t *testing.T) {
	cat := joinDB(t, 3, 50)
	_, o := planFor(t, cat, Config{},
		"SELECT T1.V FROM T1, T2, T3 WHERE T1.K = T2.K AND T2.K = T3.K ORDER BY T1.V")
	// Every distinct join column is interesting (T1.K, T2.K, T3.K; T2.K
	// appears in both predicates), plus the ORDER BY column.
	if len(o.interest) != 4 {
		t.Fatalf("interesting orders: %d (%v)", len(o.interest), o.interest)
	}
	// Once all join predicates are applied (the full subset), the columns
	// share one equivalence class.
	full := sem.RelSet(0).Set(0).Set(1).Set(2)
	oc := o.classesFor(full)
	if !oc.same(col(0, 0), col(2, 0)) {
		t.Fatal("K columns must share one class in the full subset")
	}
	// But in a subset without the equating predicate they do not.
	partial := sem.RelSet(0).Set(0).Set(2)
	if o.classesFor(partial).same(col(0, 0), col(2, 0)) {
		t.Fatal("T1.K and T3.K must not be equated before the chain is joined")
	}
}

func TestSortKeysForPicksRepresentativeInSet(t *testing.T) {
	cat := joinDB(t, 2, 50)
	_, o := planFor(t, cat, Config{}, "SELECT T1.V FROM T1, T2 WHERE T1.K = T2.K")
	cl := o.classes.find(col(0, 0))
	var onlyT2 sem.RelSet
	onlyT2 = onlyT2.Set(1)
	keys := o.sortKeysFor(order{{class: cl}}, onlyT2)
	if len(keys) != 1 || keys[0].Col.Rel != 1 {
		t.Fatalf("representative must come from T2: %+v", keys)
	}
}

func TestSortCostProperties(t *testing.T) {
	o := New(nil, Config{BufferPages: 8})
	small := o.sortCost(100, 32)
	big := o.sortCost(100000, 32)
	if small.Pages >= big.Pages || small.RSI >= big.RSI {
		t.Fatal("sort cost must grow with cardinality")
	}
	wide := o.sortCost(100, 512)
	if wide.Pages < small.Pages {
		t.Fatal("wider rows need more pages")
	}
	// RSI = 2 per tuple (write + read).
	if small.RSI != 200 {
		t.Fatalf("sort RSI: %v", small.RSI)
	}
	// Multi-pass: huge inputs with a tiny buffer cost more than 2 passes'
	// worth of pages.
	tp := tempPages(100000, 32)
	if big.Pages <= 2*tp {
		t.Fatalf("big sort should be multi-pass: pages=%v tp=%v", big.Pages, tp)
	}
	if tempPages(0, 32) != 1 {
		t.Fatal("temp pages floor at 1")
	}
}

func TestCardOfAndWidths(t *testing.T) {
	cat := joinDB(t, 2, 100)
	_, o := planFor(t, cat, Config{}, "SELECT T1.V FROM T1, T2 WHERE T1.K = T2.K AND T1.V = 5")
	var s1, s12 sem.RelSet
	s1 = s1.Set(0)
	s12 = s1.Set(1)
	c1 := o.cardOf(s1)
	c12 := o.cardOf(s12)
	// T1 filtered by V=5: V is unique per row, so the histogram estimates
	// 1/NDISTINCT = 1/100 exactly — 100×0.01 = 1 (the Table 1 default would
	// have guessed 1/10; see TestTable1EqualPredicates for those pins).
	if math.Abs(c1-1) > 1e-9 {
		t.Fatalf("card(T1) = %v", c1)
	}
	// Join selectivity 1/ndistinct(K)=1/20 over 100×100×0.01.
	if math.Abs(c12-1*100/20) > 1e-9 {
		t.Fatalf("card(T1⋈T2) = %v", c12)
	}
	if o.setWidth(s12) <= o.setWidth(s1) {
		t.Fatal("composite width grows")
	}
	if o.rowWidth(0) < 8 {
		t.Fatal("row width floor")
	}
}

func TestFactorSelectivitiesExposed(t *testing.T) {
	cat := joinDB(t, 1, 50)
	_, o := planFor(t, cat, Config{}, "SELECT V FROM T1 WHERE K = 3 AND V > 5")
	sels := o.FactorSelectivities()
	if len(sels) != 2 {
		t.Fatalf("selectivities: %v", sels)
	}
	for _, s := range sels {
		if s <= 0 || s > 1 {
			t.Fatalf("out of range: %v", sels)
		}
	}
}

package core

// Single-relation access paths and their costs — TABLE 2 of the paper.
//
//	SITUATION                                      COST (pages + W*RSI)
//	unique index matching an equal predicate       1 + 1 + W
//	clustered index I matching boolean factor(s)   F(preds)*(NINDX+TCARD) + W*RSICARD
//	non-clustered index I matching factor(s)       F(preds)*(NINDX+NCARD) + W*RSICARD
//	                                               (or TCARD variant if it fits the buffer)
//	clustered index I not matching any factor      NINDX + TCARD + W*RSICARD
//	non-clustered index I not matching any factor  NINDX + NCARD + W*RSICARD
//	                                               (or TCARD variant if it fits the buffer)
//	segment scan                                   TCARD/P + W*RSICARD
//
// RSICARD = NCARD × product of the selectivities of the sargable boolean
// factors, "since the sargable boolean factors will be put into search
// arguments which will filter out tuples without returning across the RSS
// interface".

import (
	"fmt"
	"math"

	"systemr/internal/catalog"
	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/value"
)

// pushedPred is a join predicate rewritten as an inner-scan predicate for a
// nested-loop join: the inner column compared against a runtime parameter
// carrying the current outer tuple's value.
type pushedPred struct {
	innerCol sem.ColumnID
	op       value.CmpOp
	bound    sem.Bound // always a BoundParam
	sel      float64   // the originating factor's Table 1 selectivity
}

// pathCand is one candidate access path for a single relation.
type pathCand struct {
	node plan.Node
	cost plan.Cost
	ord  order
	desc string // trace label, e.g. "index EMP_DNO" / "segment scan"
}

// localFactors partitions the block's boolean factors local to relation rel
// into sargable and residual sets.
func (o *Optimizer) localFactors(rel int) (sargable, residual []*factorInfo) {
	var single sem.RelSet
	single = single.Set(rel)
	for _, fi := range o.factors {
		if fi.rels != single {
			continue
		}
		if fi.f.SargDNF != nil && !o.cfg.DisableSargs {
			sargable = append(sargable, fi)
		} else {
			residual = append(residual, fi)
		}
	}
	return sargable, residual
}

// genPaths enumerates every access path on relation rel: one per index plus
// the segment scan, with the relation's local boolean factors (and any
// pushed join predicates) applied as search arguments, index start/stop
// keys, or residual filters.
func (o *Optimizer) genPaths(rel int, pushed []pushedPred) []pathCand {
	t := o.blk.Rels[rel].Table
	st := t.Stats
	relName := o.blk.Rels[rel].Name

	sargable, residual := o.localFactors(rel)

	// Selectivity bookkeeping.
	selSarg, selAll := 1.0, 1.0
	for _, fi := range sargable {
		selSarg = clamp01(selSarg * fi.sel)
		selAll = clamp01(selAll * fi.sel)
	}
	for _, fi := range residual {
		selAll = clamp01(selAll * fi.sel)
	}
	for _, p := range pushed {
		selSarg = clamp01(selSarg * p.sel)
		selAll = clamp01(selAll * p.sel)
	}
	ncard := st.EffNCard()
	rsicard := ncard * selSarg
	rows := ncard * selAll

	// Search arguments: one DNF per sargable factor plus one per pushed
	// predicate; the RSS applies their conjunction.
	var sargs []sem.SargDNF
	for _, fi := range sargable {
		sargs = append(sargs, fi.f.SargDNF)
	}
	for _, p := range pushed {
		sargs = append(sargs, sem.SargDNF{{sem.SargTerm{Col: p.innerCol, Op: p.op, Val: p.bound}}})
	}
	resExprs := make([]sem.Expr, len(residual))
	for i, fi := range residual {
		resExprs[i] = fi.f.Expr
	}

	var paths []pathCand

	// Segment scan: touches every non-empty page of the segment once.
	segPages := st.EffTCard() / st.EffP()
	seg := &plan.SegScan{
		Table: t, RelIdx: rel, RelName: relName,
		Sargs: sargs, Residual: resExprs,
	}
	segCost := plan.Cost{Pages: segPages, RSI: rsicard}
	seg.SetEst(plan.Estimate{Cost: segCost, Rows: rows})
	paths = append(paths, pathCand{node: seg, cost: segCost, ord: nil, desc: "segment scan"})

	// Index scans.
	for _, ix := range t.Indexes {
		paths = append(paths, o.indexPath(rel, ix, pushed, sargs, resExprs, rsicard, rows))
	}

	// Section 6: residual factors containing correlated subqueries are
	// re-evaluated per candidate tuple — unless the tuples arrive ordered on
	// the referenced column, in which case the same-value cache evaluates
	// once per distinct value ("the re-evaluation can be made conditional").
	// Charge each path accordingly, so ordered access paths win when they
	// save subquery work.
	for _, fi := range residual {
		col, subCost, evalsUnordered, ok := o.correlatedResidual(rel, fi, rsicard)
		if !ok {
			continue
		}
		for i := range paths {
			evals := evalsUnordered
			if len(paths[i].ord) > 0 && paths[i].ord[0].class == col {
				if ic := o.icardOf(col); ic > 0 {
					evals = math.Min(evals, ic)
				}
			}
			extra := subCost.Scale(evals)
			paths[i].cost = paths[i].cost.Add(extra)
			switch n := paths[i].node.(type) {
			case *plan.SegScan:
				n.SetEst(plan.Estimate{Cost: paths[i].cost, Rows: rows})
			case *plan.IndexScan:
				n.SetEst(plan.Estimate{Cost: paths[i].cost, Rows: rows})
			}
		}
	}
	return paths
}

// correlatedResidual recognizes a residual factor whose subqueries all
// correlate on a single column of this relation, returning that column, the
// per-evaluation cost, and the expected evaluations for unordered delivery.
func (o *Optimizer) correlatedResidual(rel int, fi *factorInfo, rsicard float64) (sem.ColumnID, plan.Cost, float64, bool) {
	var col sem.ColumnID
	found := false
	var total plan.Cost
	for _, sub := range fi.f.Subs {
		if !sub.Correlated {
			continue
		}
		st, ok := o.subInfo[sub]
		if !ok {
			continue
		}
		for _, cr := range sub.Block.CorrelRefs {
			if cr.FromParam {
				continue
			}
			if cr.FromCol.Rel != rel {
				return sem.ColumnID{}, plan.Cost{}, 0, false // spans relations
			}
			if found && cr.FromCol != col {
				return sem.ColumnID{}, plan.Cost{}, 0, false // multiple columns
			}
			col = cr.FromCol
			found = true
		}
		total = total.Add(st.cost)
	}
	if !found {
		return sem.ColumnID{}, plan.Cost{}, 0, false
	}
	// Residuals run on tuples that crossed the RSI.
	return col, total, rsicard, true
}

// intervalSource is a local predicate or pushed predicate usable as an index
// start/stop key on one column.
type intervalSource struct {
	lo, hi       *sem.Bound
	loInc, hiInc bool
	sel          float64
	eq           bool
}

// intervalSources collects key-bound candidates on one column.
func (o *Optimizer) intervalSources(col sem.ColumnID, pushed []pushedPred) []intervalSource {
	var out []intervalSource
	var single sem.RelSet
	single = single.Set(col.Rel)
	for _, fi := range o.factors {
		if fi.rels != single || fi.f.Simple == nil || fi.f.Simple.Col != col {
			continue
		}
		if o.cfg.DisableSargs {
			continue
		}
		p := fi.f.Simple
		if p.Ne != nil || (p.Lo == nil && p.Hi == nil) {
			continue
		}
		out = append(out, intervalSource{
			lo: p.Lo, hi: p.Hi, loInc: p.LoInc, hiInc: p.HiInc,
			sel: fi.sel, eq: p.IsEq(),
		})
	}
	for i := range pushed {
		p := &pushed[i]
		if p.innerCol != col {
			continue
		}
		src := intervalSource{sel: p.sel}
		switch p.op {
		case value.OpEq:
			src.lo, src.hi = &p.bound, &p.bound
			src.loInc, src.hiInc = true, true
			src.eq = true
		case value.OpGt:
			src.lo = &p.bound
		case value.OpGe:
			src.lo, src.loInc = &p.bound, true
		case value.OpLt:
			src.hi = &p.bound
		case value.OpLe:
			src.hi, src.hiInc = &p.bound, true
		default:
			continue
		}
		out = append(out, src)
	}
	return out
}

// indexPath builds and costs the scan of one index, matching boolean factors
// against the index key per the paper's rule: sargable predicates on an
// initial substring of the key columns — a run of equalities optionally
// followed by one range.
func (o *Optimizer) indexPath(rel int, ix *catalog.Index, pushed []pushedPred,
	sargs []sem.SargDNF, resExprs []sem.Expr, rsicard, rows float64) pathCand {

	t := ix.Table
	st := t.Stats
	ist := ix.Stats

	var lo, hi []sem.Bound
	loInc, hiInc := true, true
	matchSel := 1.0
	eqCols := 0
	matched := false

	// Equality prefix.
	pos := 0
	for ; pos < len(ix.ColIdxs); pos++ {
		col := sem.ColumnID{Rel: rel, Col: ix.ColIdxs[pos]}
		found := false
		for _, src := range o.intervalSources(col, pushed) {
			if src.eq {
				lo = append(lo, *src.lo)
				hi = append(hi, *src.hi)
				matchSel = clamp01(matchSel * src.sel)
				eqCols++
				matched = true
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	// Optional range on the next key column: combine at most one lower and
	// one upper bound (other predicates on the column remain SARGs).
	if pos < len(ix.ColIdxs) {
		col := sem.ColumnID{Rel: rel, Col: ix.ColIdxs[pos]}
		var rangeLo, rangeHi *sem.Bound
		rLoInc, rHiInc := false, false
		for _, src := range o.intervalSources(col, pushed) {
			if src.eq {
				continue
			}
			used := false
			if src.lo != nil && rangeLo == nil {
				rangeLo, rLoInc = src.lo, src.loInc
				used = true
			}
			if src.hi != nil && rangeHi == nil {
				rangeHi, rHiInc = src.hi, src.hiInc
				used = true
			}
			if used {
				matchSel = clamp01(matchSel * src.sel)
				matched = true
			}
		}
		if rangeLo != nil {
			lo = append(lo, *rangeLo)
			loInc = rLoInc
		}
		if rangeHi != nil {
			hi = append(hi, *rangeHi)
			hiInc = rHiInc
		}
	}

	node := &plan.IndexScan{
		Index: ix, RelIdx: rel, RelName: o.blk.Rels[rel].Name,
		Lo: lo, LoInc: loInc, Hi: hi, HiInc: hiInc,
		Sargs: sargs, Residual: resExprs, Matching: matched,
	}

	var cost plan.Cost
	switch {
	case ix.Unique && eqCols == len(ix.ColIdxs):
		// Unique index matching an equal predicate: 1 index page + 1 data
		// page + W (one RSI call).
		cost = plan.Cost{Pages: 2, RSI: 1}
	case matched:
		f := matchSel
		if ix.Clustered {
			cost = plan.Cost{Pages: f * (ist.EffNIndx() + st.EffTCard()), RSI: rsicard}
		} else {
			pages := f * (ist.EffNIndx() + st.EffNCard())
			if alt := f * (ist.EffNIndx() + st.EffTCard()); alt <= float64(o.cfg.BufferPages) {
				pages = alt
			}
			cost = plan.Cost{Pages: pages, RSI: rsicard}
		}
	default:
		if ix.Clustered {
			cost = plan.Cost{Pages: ist.EffNIndx() + st.EffTCard(), RSI: rsicard}
		} else {
			pages := ist.EffNIndx() + st.EffNCard()
			if alt := ist.EffNIndx() + st.EffTCard(); alt <= float64(o.cfg.BufferPages) {
				pages = alt
			}
			cost = plan.Cost{Pages: pages, RSI: rsicard}
		}
	}
	node.SetEst(plan.Estimate{Cost: cost, Rows: rows})
	return pathCand{
		node: node,
		cost: cost,
		ord:  o.indexOrder(rel, ix.ColIdxs),
		desc: fmt.Sprintf("index %s", ix.Name),
	}
}

// innerGroupCost is C_inner(path) for joins: the cost of fetching the inner
// tuples matching one outer tuple through the given index, treating the join
// predicate as an equal predicate with selectivity fJoin (Table 2's matching
// formulas with F = fJoin × local matching selectivity folded in by the
// caller).
func (o *Optimizer) innerGroupCost(rel int, ix *catalog.Index, fJoin, rsicardGroup float64) plan.Cost {
	st := ix.Table.Stats
	ist := ix.Stats
	if ix.Unique && len(ix.ColIdxs) == 1 {
		return plan.Cost{Pages: 2, RSI: 1}
	}
	if ix.Clustered {
		return plan.Cost{Pages: fJoin * (ist.EffNIndx() + st.EffTCard()), RSI: rsicardGroup}
	}
	pages := fJoin * (ist.EffNIndx() + st.EffNCard())
	if alt := fJoin * (ist.EffNIndx() + st.EffTCard()); alt <= float64(o.cfg.BufferPages) {
		pages = alt
	}
	return plan.Cost{Pages: pages, RSI: rsicardGroup}
}

package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "requests served")
	g := r.NewGauge("occupancy", "entries resident")
	c.Inc()
	c.Add(2.5)
	g.Set(7)
	g.Add(-3)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %g, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "statement latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v, want three finite + +Inf", bounds)
	}
	// Cumulative: <=0.01 holds 0.005 and 0.01; <=0.1 adds 0.05; <=1 adds 0.5;
	// +Inf adds 5.
	want := []int64{2, 3, 4, 5}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.565) > 1e-9 {
		t.Fatalf("sum = %g, want 5.565", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup", "")
}

func TestCollectorRunsOnSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("live_value", "refreshed at scrape")
	live := 0
	r.OnCollect(func() { g.Set(float64(live)) })
	live = 42
	samples := r.Snapshot()
	if len(samples) != 1 || samples[0].Value != 42 {
		t.Fatalf("collector did not refresh gauge: %+v", samples)
	}
}

func TestWriteToPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("engine_statements_total", "statements executed")
	g := r.NewGauge("engine_buffer_hit_ratio", "buffer-pool hit ratio")
	h := r.NewHistogram("engine_latency_seconds", "statement latency", []float64{0.01, 1})
	c.Add(3)
	g.Set(0.75)
	h.Observe(0.005)
	h.Observe(2)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP engine_statements_total statements executed",
		"# TYPE engine_statements_total counter",
		"engine_statements_total 3",
		"# TYPE engine_buffer_hit_ratio gauge",
		"engine_buffer_hit_ratio 0.75",
		"# TYPE engine_latency_seconds histogram",
		`engine_latency_seconds_bucket{le="0.01"} 1`,
		`engine_latency_seconds_bucket{le="1"} 1`,
		`engine_latency_seconds_bucket{le="+Inf"} 2`,
		"engine_latency_seconds_sum 2.005",
		"engine_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	h := r.NewHistogram("h", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %g, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// Package metrics is a small, dependency-free instrumentation registry for
// the engine: counters, gauges, and histograms on sync/atomic, with a
// Prometheus-text exposition writer. It is the observability layer built on
// top of the per-statement I/O accounting split — DB-wide aggregates
// (buffer-pool hit ratio, plan-cache traffic, lock waits, governor aborts,
// statement latency and cost) live here, while exact per-statement numbers
// stay on each statement's own storage.IOStats accumulator.
//
// Two instrument styles coexist:
//
//   - event-driven instruments (Counter.Add, Histogram.Observe) updated on
//     the statement path — all atomic, no locks, safe for concurrent
//     statements;
//   - collect-on-scrape gauges: a collector callback registered with
//     OnCollect runs at every Snapshot/WriteTo and Sets gauges from live
//     engine state (pool counters, cache occupancy, outstanding locks).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"systemr/internal/check"
)

// Kind is an instrument kind, named after the Prometheus metric types.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// atomicFloat is a float64 on atomic bit operations: lock-free Add via CAS,
// plain Store/Load for set-style updates.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter by d (d must not be negative).
func (c *Counter) Add(d float64) { c.v.add(d) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down (typically Set from live state by
// a collector).
type Gauge struct {
	v atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram accumulates observations into fixed cumulative buckets
// (Prometheus histogram semantics: each bucket counts observations <= its
// upper bound, plus an implicit +Inf bucket).
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Buckets returns the upper bounds and the cumulative count at each (the
// final entry is the +Inf bucket, equal to Count).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append(bounds, h.bounds...)
	bounds = append(bounds, math.Inf(1))
	cumulative = make([]int64, len(bounds))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	cumulative[len(cumulative)-1] = running + h.inf.Load()
	return bounds, cumulative
}

// DefBuckets are default latency buckets in seconds (sub-millisecond to
// tens of seconds — statement execution spans this whole range).
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// metric is one registered instrument with its metadata.
type metric struct {
	name string
	help string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds registered instruments in registration order and renders
// them. Registration locks; instrument updates never do.
type Registry struct {
	mu       sync.Mutex
	metrics  []*metric
	byName   map[string]*metric
	collects []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds m, panicking on duplicate names — registration happens once
// at engine construction, so a duplicate is a programming error.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		check.Failf("metrics: duplicate metric %q", m.name)
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: KindCounter, c: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: KindGauge, g: g})
	return g
}

// NewHistogram registers and returns a histogram over the given bucket upper
// bounds (sorted ascending; nil uses DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	r.register(&metric{name: name, help: help, kind: KindHistogram, h: h})
	return h
}

// OnCollect registers a collector run before every Snapshot or WriteTo —
// the hook that refreshes collect-on-scrape gauges from live engine state.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collects = append(r.collects, fn)
}

// Sample is one instrument's state at snapshot time.
type Sample struct {
	Name string
	Help string
	Kind Kind
	// Value holds a counter's total or a gauge's value; for histograms it is
	// the sum of observations.
	Value float64
	// Count is the number of observations (histograms only).
	Count int64
	// Buckets/BucketCounts are the cumulative histogram buckets (histograms
	// only); the final bound is +Inf.
	Buckets      []float64
	BucketCounts []int64
}

// Snapshot runs the collectors and returns every instrument's current state
// in registration order.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	collects := append([]func(){}, r.collects...)
	ms := append([]*metric{}, r.metrics...)
	r.mu.Unlock()
	for _, fn := range collects {
		fn()
	}
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Help: m.help, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = m.c.Value()
		case KindGauge:
			s.Value = m.g.Value()
		case KindHistogram:
			s.Value = m.h.Sum()
			s.Count = m.h.Count()
			s.Buckets, s.BucketCounts = m.h.Buckets()
		}
		out = append(out, s)
	}
	return out
}

// WriteTo renders the registry in the Prometheus text exposition format
// (implements io.WriterTo), running the collectors first.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, s := range r.Snapshot() {
		fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, s.Help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
		switch s.Kind {
		case KindHistogram:
			for i, bound := range s.Buckets {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", s.Name, formatBound(bound), s.BucketCounts[i])
			}
			fmt.Fprintf(&b, "%s_sum %s\n", s.Name, formatValue(s.Value))
			fmt.Fprintf(&b, "%s_count %d\n", s.Name, s.Count)
		default:
			fmt.Fprintf(&b, "%s %s\n", s.Name, formatValue(s.Value))
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatValue(v)
}

func formatValue(v float64) string { return fmt.Sprintf("%g", v) }

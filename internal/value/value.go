// Package value defines the typed column values that flow through the whole
// system: the storage layer serializes them onto pages, the RSS compares them
// inside search arguments, and the optimizer's selectivity formulas
// interpolate over them.
//
// The type system mirrors what the paper needs: arithmetic types (integer and
// float, which enable the linear-interpolation selectivity of Table 1) and a
// character type (for which range predicates fall back to the 1/3 default).
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the column datatypes supported by the engine.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL literal and of absent values.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer column.
	KindInt
	// KindFloat is a 64-bit IEEE-754 floating point column.
	KindFloat
	// KindString is a variable-length character column.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Arithmetic reports whether the kind participates in arithmetic and in the
// linear-interpolation selectivity estimate of Table 1.
func (k Kind) Arithmetic() bool { return k == KindInt || k == KindFloat }

// Value is a single typed column value. The zero Value is NULL.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{Kind: KindString, Str: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts an arithmetic value to float64. NULL and strings map to 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.Int)
	case KindFloat:
		return v.Float
	default:
		return 0
	}
}

// String renders the value the way the rsql shell prints it.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.Kind))
	}
}

// SQL renders the value as a SQL literal (strings quoted).
func (v Value) SQL() string {
	if v.Kind == KindString {
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
	return v.String()
}

// Compare defines a total order over values: NULL sorts first, then numeric
// values (integers and floats compare by numeric value), then strings.
// It returns -1, 0, or +1.
//
// A total order — even across kinds — is required so that B-tree keys,
// sort keys, and merge-join comparisons never see an "incomparable" pair.
func Compare(a, b Value) int {
	ra, rb := rank(a.Kind), rank(b.Kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // both numeric
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.Int < b.Int:
				return -1
			case a.Int > b.Int:
				return 1
			}
			return 0
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		case math.IsNaN(af) && !math.IsNaN(bf):
			return -1
		case !math.IsNaN(af) && math.IsNaN(bf):
			return 1
		}
		return 0
	default: // both strings
		return strings.Compare(a.Str, b.Str)
	}
}

func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// CmpOp is a comparison operator appearing in predicates and SARGs.
type CmpOp uint8

// The six scalar comparisons of the paper's Section 6.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Flip returns the operator with its operands swapped (a op b  ==  b Flip(op) a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// Negate returns the complement operator (NOT (a op b) == a Negate(op) b).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return op
}

// Eval applies the operator to a comparison result from Compare.
func (op CmpOp) Eval(cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// Apply evaluates "a op b" with NULL semantics: any comparison involving NULL
// is false (a documented simplification; the paper does not model NULLs).
func (op CmpOp) Apply(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return op.Eval(Compare(a, b))
}

// Row is an ordered list of column values — one stored or derived tuple.
type Row []Value

// Clone returns a copy of the row that shares no backing array.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CompareRows compares two rows lexicographically on the given column
// positions; desc[i] flips the i-th key's direction when present.
func CompareRows(a, b Row, cols []int, desc []bool) int {
	for i, c := range cols {
		cmp := Compare(a[c], b[c])
		if i < len(desc) && desc[i] {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp
		}
	}
	return 0
}

// CompareKey compares two key slices lexicographically (shorter prefix that
// matches compares equal-so-far and ranks by length).
func CompareKey(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if cmp := Compare(a[i], b[i]); cmp != 0 {
			return cmp
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Arith applies an arithmetic operator to two values, promoting int to float
// when either side is float. Division by integer zero yields NULL.
func Arith(op byte, a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null()
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		switch op {
		case '+':
			return NewInt(a.Int + b.Int)
		case '-':
			return NewInt(a.Int - b.Int)
		case '*':
			return NewInt(a.Int * b.Int)
		case '/':
			if b.Int == 0 {
				return Null()
			}
			return NewInt(a.Int / b.Int)
		}
	}
	if a.Kind.Arithmetic() && b.Kind.Arithmetic() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch op {
		case '+':
			return NewFloat(af + bf)
		case '-':
			return NewFloat(af - bf)
		case '*':
			return NewFloat(af * bf)
		case '/':
			if bf == 0 {
				return Null()
			}
			return NewFloat(af / bf)
		}
	}
	if op == '+' && a.Kind == KindString && b.Kind == KindString {
		return NewString(a.Str + b.Str)
	}
	return Null()
}

package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomValue generates arbitrary values for property tests.
func randomValue(rnd *rand.Rand) Value {
	switch rnd.Intn(4) {
	case 0:
		return Null()
	case 1:
		return NewInt(rnd.Int63n(200) - 100)
	case 2:
		return NewFloat(float64(rnd.Intn(200)-100) / 4)
	default:
		return NewString(string(rune('a' + rnd.Intn(26))))
	}
}

type valuePair struct{ A, B Value }

func (valuePair) Generate(rnd *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valuePair{A: randomValue(rnd), B: randomValue(rnd)})
}

type valueTriple struct{ A, B, C Value }

func (valueTriple) Generate(rnd *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueTriple{A: randomValue(rnd), B: randomValue(rnd), C: randomValue(rnd)})
}

func TestCompareAntisymmetry(t *testing.T) {
	prop := func(p valuePair) bool {
		return Compare(p.A, p.B) == -Compare(p.B, p.A)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareTransitivity(t *testing.T) {
	prop := func(tr valueTriple) bool {
		a, b, c := tr.A, tr.B, tr.C
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareReflexive(t *testing.T) {
	prop := func(p valuePair) bool { return Compare(p.A, p.A) == 0 }
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareCrossKind(t *testing.T) {
	// NULL < numerics < strings; int and float compare numerically.
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), NewInt(0), -1},
		{Null(), NewString(""), -1},
		{NewInt(3), NewFloat(3.0), 0},
		{NewInt(3), NewFloat(3.5), -1},
		{NewFloat(4.5), NewInt(4), 1},
		{NewInt(999), NewString("a"), -1},
		{NewString("abc"), NewString("abd"), -1},
		{NewInt(-5), NewInt(5), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN should equal itself under the total order")
	}
	if Compare(nan, NewFloat(0)) != -1 {
		t.Error("NaN should sort below numbers")
	}
}

func TestCmpOpSemantics(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	cases := []struct {
		op     CmpOp
		ab, ba bool
		aa     bool
	}{
		{OpEq, false, false, true},
		{OpNe, true, true, false},
		{OpLt, true, false, false},
		{OpLe, true, false, true},
		{OpGt, false, true, false},
		{OpGe, false, true, true},
	}
	for _, c := range cases {
		if got := c.op.Apply(a, b); got != c.ab {
			t.Errorf("%v Apply(1,2) = %v, want %v", c.op, got, c.ab)
		}
		if got := c.op.Apply(b, a); got != c.ba {
			t.Errorf("%v Apply(2,1) = %v, want %v", c.op, got, c.ba)
		}
		if got := c.op.Apply(a, a); got != c.aa {
			t.Errorf("%v Apply(1,1) = %v, want %v", c.op, got, c.aa)
		}
	}
}

func TestCmpOpNullAlwaysFalse(t *testing.T) {
	for op := OpEq; op <= OpGe; op++ {
		if op.Apply(Null(), NewInt(1)) || op.Apply(NewInt(1), Null()) || op.Apply(Null(), Null()) {
			t.Errorf("%v involving NULL must be false", op)
		}
	}
}

func TestCmpOpFlipNegate(t *testing.T) {
	prop := func(p valuePair) bool {
		for op := OpEq; op <= OpGe; op++ {
			if p.A.IsNull() || p.B.IsNull() {
				continue
			}
			if op.Apply(p.A, p.B) != op.Flip().Apply(p.B, p.A) {
				return false
			}
			if op.Apply(p.A, p.B) == op.Negate().Apply(p.A, p.B) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   byte
		a, b Value
		want Value
	}{
		{'+', NewInt(2), NewInt(3), NewInt(5)},
		{'-', NewInt(2), NewInt(3), NewInt(-1)},
		{'*', NewInt(4), NewInt(3), NewInt(12)},
		{'/', NewInt(7), NewInt(2), NewInt(3)},
		{'/', NewInt(7), NewInt(0), Null()},
		{'+', NewInt(2), NewFloat(0.5), NewFloat(2.5)},
		{'/', NewFloat(1), NewFloat(0), Null()},
		{'+', NewString("a"), NewString("b"), NewString("ab")},
		{'*', NewString("a"), NewInt(2), Null()},
		{'+', Null(), NewInt(1), Null()},
	}
	for _, c := range cases {
		got := Arith(c.op, c.a, c.b)
		if Compare(got, c.want) != 0 || got.Kind != c.want.Kind {
			t.Errorf("Arith(%c, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewString("x"), NewFloat(2)}
	b := Row{NewInt(1), NewString("y"), NewFloat(1)}
	if CompareRows(a, b, []int{0}, nil) != 0 {
		t.Error("equal on col 0")
	}
	if CompareRows(a, b, []int{0, 1}, nil) != -1 {
		t.Error("a < b on cols 0,1")
	}
	if CompareRows(a, b, []int{1}, []bool{true}) != 1 {
		t.Error("descending flips")
	}
	if CompareRows(a, b, []int{0, 2}, []bool{false, true}) != -1 {
		t.Error("desc on second key: 2 desc-before 1")
	}
}

func TestCompareKeyPrefix(t *testing.T) {
	short := []Value{NewInt(1)}
	long := []Value{NewInt(1), NewInt(2)}
	if CompareKey(short, long) != -1 {
		t.Error("shorter equal prefix sorts first")
	}
	if CompareKey(long, long) != 0 {
		t.Error("identical keys equal")
	}
	if CompareKey([]Value{NewInt(2)}, long) != 1 {
		t.Error("greater first column wins")
	}
}

func TestValueStrings(t *testing.T) {
	if got := NewString("o'brien").SQL(); got != "'o''brien'" {
		t.Errorf("SQL quoting: %s", got)
	}
	if got := Null().String(); got != "NULL" {
		t.Errorf("NULL renders as %s", got)
	}
	if got := NewFloat(2.5).String(); got != "2.5" {
		t.Errorf("float renders as %s", got)
	}
	if got := (Row{NewInt(1), NewString("a")}).String(); got != "(1, a)" {
		t.Errorf("row renders as %s", got)
	}
}

func TestKindProperties(t *testing.T) {
	if !KindInt.Arithmetic() || !KindFloat.Arithmetic() {
		t.Error("numeric kinds must be arithmetic")
	}
	if KindString.Arithmetic() || KindNull.Arithmetic() {
		t.Error("string/null must not be arithmetic")
	}
	for _, k := range []Kind{KindNull, KindInt, KindFloat, KindString} {
		if k.String() == "" {
			t.Error("kind must render")
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1)}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int != 1 {
		t.Error("clone must not alias")
	}
}

// TestArithNullPropagation: any arithmetic with a NULL operand yields NULL
// (for every operator and operand kind).
func TestArithNullPropagation(t *testing.T) {
	prop := func(p valuePair) bool {
		for _, op := range []byte{'+', '-', '*', '/'} {
			if !Arith(op, Null(), p.A).IsNull() {
				return false
			}
			if !Arith(op, p.A, Null()).IsNull() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestArithIntFloatConsistency: integer + and * agree with float arithmetic
// for small operands (no overflow, no truncation).
func TestArithIntFloatConsistency(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a, b := int64(rnd.Intn(1000)-500), int64(rnd.Intn(1000)-500)
		for _, op := range []byte{'+', '-', '*'} {
			vi := Arith(op, NewInt(a), NewInt(b))
			vf := Arith(op, NewFloat(float64(a)), NewFloat(float64(b)))
			if vi.Kind != KindInt || vf.Kind != KindFloat {
				t.Fatalf("kinds: %v %v", vi, vf)
			}
			if float64(vi.Int) != vf.Float {
				t.Fatalf("%d %c %d: int %d float %v", a, op, b, vi.Int, vf.Float)
			}
		}
	}
}

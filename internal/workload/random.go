package workload

// Randomized schemas, data, and queries for differential testing: the
// optimizer (under every configuration ablation) must produce plans whose
// results match the brute-force reference evaluator on these inputs.

import (
	"fmt"
	"math/rand"
	"strings"

	"systemr"
)

// RandomDBConfig controls randomized database generation.
type RandomDBConfig struct {
	Tables      int // default 3
	MaxRows     int // default 40 per table
	MaxCols     int // default 4 data columns (plus the K join column)
	BufferPages int
}

// RandomDB builds a small randomized database. Every table Ti has an integer
// join column K (values drawn from a shared small domain so joins produce
// matches), a couple of integer/float/string columns, and a random subset of
// indexes (some unique on a serial column, occasionally clustered).
func RandomDB(rnd *rand.Rand, cfg RandomDBConfig) *systemr.DB {
	if cfg.Tables == 0 {
		cfg.Tables = 3
	}
	if cfg.MaxRows == 0 {
		cfg.MaxRows = 40
	}
	if cfg.MaxCols == 0 {
		cfg.MaxCols = 4
	}
	db := systemr.Open(systemr.Config{BufferPages: cfg.BufferPages})
	for t := 0; t < cfg.Tables; t++ {
		name := fmt.Sprintf("T%d", t)
		nCols := 1 + rnd.Intn(cfg.MaxCols)
		cols := []string{"K INTEGER", "SERIAL INTEGER"}
		for c := 0; c < nCols; c++ {
			switch rnd.Intn(3) {
			case 0:
				cols = append(cols, fmt.Sprintf("I%d INTEGER", c))
			case 1:
				cols = append(cols, fmt.Sprintf("F%d FLOAT", c))
			default:
				cols = append(cols, fmt.Sprintf("S%d VARCHAR", c))
			}
		}
		seg := ""
		if rnd.Intn(3) == 0 {
			seg = " IN SEGMENT SHARED"
		}
		db.MustExec(fmt.Sprintf("CREATE TABLE %s (%s)%s", name, strings.Join(cols, ", "), seg))

		rows := 1 + rnd.Intn(cfg.MaxRows)
		for r := 0; r < rows; r++ {
			vals := []string{fmt.Sprintf("%d", rnd.Intn(10)), fmt.Sprintf("%d", r)}
			for c := 2; c < len(cols); c++ {
				switch cols[c][0] {
				case 'I':
					vals = append(vals, fmt.Sprintf("%d", rnd.Intn(100)))
				case 'F':
					vals = append(vals, fmt.Sprintf("%d.%d", rnd.Intn(100), rnd.Intn(10)))
				default:
					vals = append(vals, fmt.Sprintf("'V%d'", rnd.Intn(20)))
				}
			}
			db.MustExec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", name, strings.Join(vals, ", ")))
		}

		// Random indexes.
		if rnd.Intn(2) == 0 {
			clustered := ""
			if rnd.Intn(3) == 0 {
				clustered = "CLUSTERED "
			}
			db.MustExec(fmt.Sprintf("CREATE %sINDEX %s_K ON %s (K)", clustered, name, name))
		}
		if rnd.Intn(2) == 0 {
			db.MustExec(fmt.Sprintf("CREATE UNIQUE INDEX %s_SERIAL ON %s (SERIAL)", name, name))
		}
		if len(cols) > 2 && rnd.Intn(2) == 0 {
			colName := strings.Fields(cols[2])[0]
			db.MustExec(fmt.Sprintf("CREATE INDEX %s_C0 ON %s (%s, SERIAL)", name, name, colName))
		}
	}
	if rnd.Intn(4) != 0 { // usually analyzed, sometimes default statistics
		db.MustExec("UPDATE STATISTICS")
	}
	return db
}

// tableColumns mirrors RandomDB's schema generation to build predicates.
func tableColumns(db *systemr.DB, table string) []string {
	t, ok := db.Catalog().Table(table)
	if !ok {
		return nil
	}
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// RandomQuery generates a SELECT over nTables relations of a RandomDB, with
// random predicates (equality, range, BETWEEN, IN, OR-trees, NOT), random
// join predicates on K/SERIAL, and occasional GROUP BY / ORDER BY /
// DISTINCT / subqueries.
func RandomQuery(rnd *rand.Rand, db *systemr.DB, nTables int, allowSubqueries bool) string {
	aliases := make([]string, nTables)
	tables := make([]string, nTables)
	from := make([]string, nTables)
	for i := 0; i < nTables; i++ {
		tables[i] = fmt.Sprintf("T%d", rnd.Intn(nTables))
		aliases[i] = fmt.Sprintf("A%d", i)
		from[i] = tables[i] + " " + aliases[i]
	}

	var preds []string
	// Join predicates chaining the relations (usually).
	for i := 1; i < nTables; i++ {
		if rnd.Intn(5) != 0 {
			prev := rnd.Intn(i)
			preds = append(preds, fmt.Sprintf("%s.K = %s.K", aliases[prev], aliases[i]))
		}
	}
	// Local predicates.
	nPreds := rnd.Intn(3)
	for p := 0; p < nPreds; p++ {
		a := rnd.Intn(nTables)
		preds = append(preds, randomPredicate(rnd, db, tables[a], aliases[a], allowSubqueries, tables))
	}

	sel := fmt.Sprintf("%s.K", aliases[0])
	groupBy, orderBy, distinct := "", "", ""
	switch rnd.Intn(5) {
	case 0:
		sel = fmt.Sprintf("%s.K, COUNT(*), MIN(%s.SERIAL)", aliases[0], aliases[nTables-1])
		groupBy = fmt.Sprintf(" GROUP BY %s.K", aliases[0])
		if rnd.Intn(2) == 0 {
			groupBy += fmt.Sprintf(" HAVING COUNT(*) > %d", rnd.Intn(3))
		}
		if rnd.Intn(2) == 0 {
			orderBy = fmt.Sprintf(" ORDER BY %s.K", aliases[0])
		}
	case 1:
		sel = fmt.Sprintf("%s.K, %s.SERIAL", aliases[0], aliases[nTables-1])
		orderBy = fmt.Sprintf(" ORDER BY %s.K", aliases[0])
		if rnd.Intn(2) == 0 {
			orderBy += fmt.Sprintf(", %s.SERIAL DESC", aliases[nTables-1])
		}
	case 2:
		distinct = "DISTINCT "
	}

	where := ""
	if len(preds) > 0 {
		where = " WHERE " + strings.Join(preds, " AND ")
	}
	return fmt.Sprintf("SELECT %s%s FROM %s%s%s%s",
		distinct, sel, strings.Join(from, ", "), where, groupBy, orderBy)
}

func randomPredicate(rnd *rand.Rand, db *systemr.DB, table, alias string, allowSubqueries bool, allTables []string) string {
	cols := tableColumns(db, table)
	col := cols[rnd.Intn(len(cols))]
	ref := alias + "." + col
	isString := col[0] == 'S' && col != "SERIAL"
	lit := func() string {
		switch {
		case isString:
			return fmt.Sprintf("'V%d'", rnd.Intn(20))
		case col[0] == 'F':
			return fmt.Sprintf("%d.%d", rnd.Intn(100), rnd.Intn(10))
		case col == "K":
			return fmt.Sprintf("%d", rnd.Intn(10))
		default:
			return fmt.Sprintf("%d", rnd.Intn(100))
		}
	}
	switch rnd.Intn(8) {
	case 0:
		return fmt.Sprintf("%s = %s", ref, lit())
	case 1:
		op := []string{"<", "<=", ">", ">=", "<>"}[rnd.Intn(5)]
		return fmt.Sprintf("%s %s %s", ref, op, lit())
	case 2:
		if isString {
			return fmt.Sprintf("%s BETWEEN 'V0' AND 'V9'", ref)
		}
		lo, hi := rnd.Intn(50), 50+rnd.Intn(50)
		return fmt.Sprintf("%s BETWEEN %d AND %d", ref, lo, hi)
	case 3:
		return fmt.Sprintf("%s IN (%s, %s, %s)", ref, lit(), lit(), lit())
	case 4:
		return fmt.Sprintf("(%s = %s OR %s = %s)", ref, lit(), ref, lit())
	case 5:
		return fmt.Sprintf("NOT %s = %s", ref, lit())
	case 6:
		if allowSubqueries {
			other := allTables[rnd.Intn(len(allTables))]
			if rnd.Intn(2) == 0 {
				return fmt.Sprintf("%s.K IN (SELECT K FROM %s WHERE SERIAL < %d)", alias, other, rnd.Intn(30))
			}
			return fmt.Sprintf("%s.SERIAL > (SELECT MIN(SERIAL) FROM %s WHERE K = %s.K)", alias, other, alias)
		}
		return fmt.Sprintf("%s = %s", ref, lit())
	default:
		return fmt.Sprintf("(%s > %s AND %s <> %s)", ref, lit(), ref, lit())
	}
}

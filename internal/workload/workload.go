// Package workload generates the databases and query sets used by the
// examples, the differential tests, and the benchmark harness: the paper's
// EMP/DEPT/JOB schema (Figure 1) at configurable scale, and randomized
// schemas/queries for property-based testing of the optimizer.
package workload

import (
	"fmt"
	"math/rand"

	"systemr"
)

// EmpConfig scales the Figure 1 database.
type EmpConfig struct {
	Emps  int // default 1000
	Depts int // default 50
	Jobs  int // default 10
	Seed  int64
	// ClusterEmpByDno loads EMP in DNO order and declares EMP_DNO clustered,
	// reproducing the paper's clustered-index scenarios.
	ClusterEmpByDno bool
	// SharedSegment stores DEPT and JOB in one segment so P(T) < 1.
	SharedSegment bool
	// BufferPages configures the database instance (default 64).
	BufferPages int
	// Naive opens the database with the no-optimizer baseline planner.
	Naive bool
	// NoStatistics skips UPDATE STATISTICS, exercising the paper's
	// "lack of statistics implies the relation is small" defaults.
	NoStatistics bool
	// Engine supplies further engine configuration (governor budgets,
	// timeouts); BufferPages and Naive above override its fields. Note the
	// limits also govern the loading statements, so keep them above the
	// per-statement cost of a single-row INSERT.
	Engine systemr.Config
}

func (c EmpConfig) withDefaults() EmpConfig {
	if c.Emps == 0 {
		c.Emps = 1000
	}
	if c.Depts == 0 {
		c.Depts = 50
	}
	if c.Jobs == 0 {
		c.Jobs = 10
	}
	return c
}

// JobTitles name the first ten JOB tuples; Figure 1's examples use CLERK.
var JobTitles = []string{"CLERK", "TYPIST", "SALES", "MECHANIC", "ENGINEER", "MANAGER", "ANALYST", "DRIVER", "NURSE", "SMITH"}

// Locations cycle through DEPT.LOC; Figure 1's example uses DENVER.
var Locations = []string{"DENVER", "SAN JOSE", "TUCSON", "BOSTON", "AUSTIN"}

// NewEmpDB creates and loads the EMP/DEPT/JOB database:
//
//	EMP (NAME, DNO, JOB, SAL, MANAGER, EMPNO)  indexes: EMP_DNO, EMP_JOB, EMP_SAL, EMP_EMPNO (unique)
//	DEPT (DNO, DNAME, LOC)                     indexes: DEPT_DNO (unique)
//	JOB (JOB, TITLE)                           indexes: JOB_JOB (unique), JOB_TITLE
func NewEmpDB(cfg EmpConfig) *systemr.DB {
	cfg = cfg.withDefaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	ecfg := cfg.Engine
	ecfg.BufferPages = cfg.BufferPages
	ecfg.Naive = cfg.Naive
	db := systemr.Open(ecfg)

	seg := ""
	if cfg.SharedSegment {
		seg = " IN SEGMENT SHARED"
	}
	db.MustExec("CREATE TABLE EMP (NAME VARCHAR, DNO INTEGER, JOB INTEGER, SAL FLOAT, MANAGER INTEGER, EMPNO INTEGER)")
	db.MustExec("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR)" + seg)
	db.MustExec("CREATE TABLE JOB (JOB INTEGER, TITLE VARCHAR)" + seg)

	for j := 0; j < cfg.Jobs; j++ {
		title := fmt.Sprintf("JOB%02d", j)
		if j < len(JobTitles) {
			title = JobTitles[j]
		}
		db.MustExec(fmt.Sprintf("INSERT INTO JOB VALUES (%d, '%s')", j+1, title))
	}
	for d := 1; d <= cfg.Depts; d++ {
		db.MustExec(fmt.Sprintf("INSERT INTO DEPT VALUES (%d, 'DEPT%03d', '%s')",
			d, d, Locations[d%len(Locations)]))
	}

	// Employee rows, optionally physically clustered by DNO.
	type emp struct {
		name            string
		dno, job, empno int
		sal             float64
		manager         int
	}
	emps := make([]emp, cfg.Emps)
	for e := range emps {
		emps[e] = emp{
			name:    fmt.Sprintf("EMP%05d", e),
			dno:     rnd.Intn(cfg.Depts) + 1,
			job:     rnd.Intn(cfg.Jobs) + 1,
			sal:     10000 + float64(rnd.Intn(40000)),
			manager: rnd.Intn(cfg.Emps),
			empno:   e,
		}
	}
	if cfg.ClusterEmpByDno {
		// Insertion in key order yields the physical proximity the paper
		// calls clustering.
		for d := 1; d <= cfg.Depts; d++ {
			for _, e := range emps {
				if e.dno == d {
					insertEmp(db, e.name, e.dno, e.job, e.sal, e.manager, e.empno)
				}
			}
		}
	} else {
		for _, e := range emps {
			insertEmp(db, e.name, e.dno, e.job, e.sal, e.manager, e.empno)
		}
	}

	if cfg.ClusterEmpByDno {
		db.MustExec("CREATE CLUSTERED INDEX EMP_DNO ON EMP (DNO)")
	} else {
		db.MustExec("CREATE INDEX EMP_DNO ON EMP (DNO)")
	}
	db.MustExec("CREATE INDEX EMP_JOB ON EMP (JOB)")
	db.MustExec("CREATE INDEX EMP_SAL ON EMP (SAL)")
	db.MustExec("CREATE UNIQUE INDEX EMP_EMPNO ON EMP (EMPNO)")
	db.MustExec("CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO)")
	db.MustExec("CREATE UNIQUE INDEX JOB_JOB ON JOB (JOB)")
	db.MustExec("CREATE INDEX JOB_TITLE ON JOB (TITLE)")
	if !cfg.NoStatistics {
		db.MustExec("UPDATE STATISTICS")
	}
	return db
}

func insertEmp(db *systemr.DB, name string, dno, job int, sal float64, manager, empno int) {
	db.MustExec(fmt.Sprintf("INSERT INTO EMP VALUES ('%s', %d, %d, %.1f, %d, %d)",
		name, dno, job, sal, manager, empno))
}

// Figure1Query is the example join of the paper (Figure 1).
const Figure1Query = `SELECT NAME, TITLE, SAL, DNAME
FROM EMP, DEPT, JOB
WHERE TITLE = 'CLERK' AND LOC = 'DENVER'
  AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB`

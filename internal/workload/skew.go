package workload

// A zipfian-skew workload: the dataset Table 1's uniformity assumption gets
// maximally wrong. One EVENTS relation holds Rows tuples whose KEY column is
// drawn from a Zipf distribution — the hottest key covers a double-digit
// percentage of the table while the cold tail is near-unique — so the
// uniform 1/ICARD equality estimate misses the hot key by orders of
// magnitude, and with it the index-vs-segment-scan decision.

import (
	"fmt"
	"math/rand"
	"strings"

	"systemr"
)

// SkewConfig scales the zipfian EVENTS table.
type SkewConfig struct {
	Rows int     // total tuples (default 100000)
	Keys int     // distinct KEY values drawn from (default 1000)
	S    float64 // Zipf exponent > 1 (default 1.3)
	Seed int64
	// BufferPages configures the database instance (default 64).
	BufferPages int
	// NoStatistics skips UPDATE STATISTICS after loading.
	NoStatistics bool
	// Engine supplies further engine configuration; BufferPages above
	// overrides its field.
	Engine systemr.Config
}

func (c SkewConfig) withDefaults() SkewConfig {
	if c.Rows == 0 {
		c.Rows = 100000
	}
	if c.Keys == 0 {
		c.Keys = 1000
	}
	if c.S == 0 {
		c.S = 1.3
	}
	return c
}

// skewInsertBatch bounds the rows per multi-row INSERT while loading.
const skewInsertBatch = 500

// NewSkewDB creates and loads the zipfian database:
//
//	EVENTS (ID INTEGER, KEY INTEGER, VAL INTEGER)  indexes: EVENTS_ID (unique), EVENTS_KEY
//
// It returns the database and the hottest KEY value — the point where the
// uniform model's estimate is furthest from the truth.
func NewSkewDB(cfg SkewConfig) (*systemr.DB, int64) {
	cfg = cfg.withDefaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rnd, cfg.S, 1, uint64(cfg.Keys-1))
	ecfg := cfg.Engine
	ecfg.BufferPages = cfg.BufferPages
	db := systemr.Open(ecfg)

	db.MustExec("CREATE TABLE EVENTS (ID INTEGER, KEY INTEGER, VAL INTEGER)")

	counts := make(map[int64]int, cfg.Keys)
	var batch strings.Builder
	n := 0
	flush := func() {
		if n > 0 {
			db.MustExec("INSERT INTO EVENTS VALUES " + batch.String())
			batch.Reset()
			n = 0
		}
	}
	for i := 0; i < cfg.Rows; i++ {
		key := int64(zipf.Uint64())
		counts[key]++
		if n > 0 {
			batch.WriteString(", ")
		}
		fmt.Fprintf(&batch, "(%d, %d, %d)", i, key, rnd.Intn(1000))
		if n++; n == skewInsertBatch {
			flush()
		}
	}
	flush()

	db.MustExec("CREATE UNIQUE INDEX EVENTS_ID ON EVENTS (ID)")
	db.MustExec("CREATE INDEX EVENTS_KEY ON EVENTS (KEY)")
	if !cfg.NoStatistics {
		db.MustExec("UPDATE STATISTICS")
	}

	hot, hotCount := int64(0), 0
	for k, c := range counts {
		if c > hotCount || (c == hotCount && k < hot) {
			hot, hotCount = k, c
		}
	}
	return db, hot
}

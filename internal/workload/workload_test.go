package workload

import (
	"math/rand"
	"testing"

	"systemr/internal/sem"
	"systemr/internal/sql"
)

func TestNewEmpDBShape(t *testing.T) {
	db := NewEmpDB(EmpConfig{Emps: 200, Depts: 10, Jobs: 5, Seed: 1})
	res, err := db.Query("SELECT COUNT(*) FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 200 {
		t.Fatalf("EMP count: %v", res.Rows)
	}
	res, err = db.Query("SELECT COUNT(*) FROM DEPT")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 10 {
		t.Fatalf("DEPT count: %v", res.Rows)
	}
	emp, ok := db.Catalog().Table("EMP")
	if !ok || len(emp.Indexes) != 4 {
		t.Fatalf("EMP indexes: %d", len(emp.Indexes))
	}
	if !emp.Stats.HasStats {
		t.Fatal("statistics must be gathered")
	}
	// The Figure 1 query must run on any generated instance.
	if _, err := db.Query(Figure1Query); err != nil {
		t.Fatal(err)
	}
}

func TestNewEmpDBClustered(t *testing.T) {
	db := NewEmpDB(EmpConfig{Emps: 300, Depts: 10, Seed: 2, ClusterEmpByDno: true})
	emp, _ := db.Catalog().Table("EMP")
	ci := emp.ClusteredIndex()
	if ci == nil || ci.Name != "EMP_DNO" {
		t.Fatal("clustered index missing")
	}
	// Clustered loading: TCARD pages ≈ pages touched for one DNO's rows is
	// small; verify physical order by checking the first column sequence.
	res, err := db.Query("SELECT DNO FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for _, r := range res.Rows {
		d := r[0].(int64)
		if d < prev {
			t.Fatal("EMP not loaded in DNO order")
		}
		prev = d
	}
}

func TestNewEmpDBNoStatistics(t *testing.T) {
	db := NewEmpDB(EmpConfig{Emps: 50, Seed: 3, NoStatistics: true})
	emp, _ := db.Catalog().Table("EMP")
	if emp.Stats.HasStats {
		t.Fatal("statistics should be absent")
	}
	// Queries still run on the paper's defaults.
	if _, err := db.Query("SELECT NAME FROM EMP WHERE DNO = 1"); err != nil {
		t.Fatal(err)
	}
}

func TestSharedSegmentConfig(t *testing.T) {
	// Enough DEPT rows to span several pages; JOB's few tuples then occupy
	// only a fraction of the shared segment's pages.
	db := NewEmpDB(EmpConfig{Emps: 100, Depts: 600, Jobs: 5, Seed: 4, SharedSegment: true})
	dept, _ := db.Catalog().Table("DEPT")
	job, _ := db.Catalog().Table("JOB")
	if dept.Segment != job.Segment {
		t.Fatal("DEPT and JOB should share a segment")
	}
	if job.Stats.P >= 1.0 {
		t.Fatalf("shared segment should yield P(JOB) < 1, got %f", job.Stats.P)
	}
	// The optimizer's segment-scan cost for JOB is TCARD/P = all pages of
	// the shared segment.
	if got := job.Stats.EffTCard() / job.Stats.EffP(); got < float64(dept.Stats.TCard) {
		t.Fatalf("segment scan cost %f should cover DEPT's pages too (%d)", got, dept.Stats.TCard)
	}
}

func TestRandomDBAndQueriesAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := RandomDB(rnd, RandomDBConfig{Tables: 3, MaxRows: 20})
		for i := 0; i < 20; i++ {
			q := RandomQuery(rnd, db, 1+rnd.Intn(3), i%2 == 0)
			st, err := sql.Parse(q)
			if err != nil {
				t.Fatalf("seed %d: generated unparseable query %q: %v", seed, q, err)
			}
			if _, err := sem.Analyze(st.(*sql.SelectStmt), db.Catalog()); err != nil {
				t.Fatalf("seed %d: generated unanalyzable query %q: %v", seed, q, err)
			}
		}
	}
}

// Package plan defines the physical execution plans the optimizer emits —
// our analog of System R's Access Specification Language (ASL): for each
// query block, an ordered tree of relation accesses (segment or index scan,
// with start/stop keys and search arguments), join methods (nested loops or
// merging scans), sorts into temporary lists, aggregation, and projection,
// each node annotated with the optimizer's predicted cost and cardinality.
package plan

import (
	"fmt"
	"strings"

	"systemr/internal/catalog"
	"systemr/internal/sem"
)

// Cost is the paper's two-term cost: I/O in page fetches and CPU in RSI
// calls, combined as COST = PAGE_FETCHES + W*(RSI CALLS).
type Cost struct {
	Pages float64
	RSI   float64
}

// Total evaluates the weighted cost.
func (c Cost) Total(w float64) float64 { return c.Pages + w*c.RSI }

// Add returns the sum of two costs.
func (c Cost) Add(o Cost) Cost { return Cost{Pages: c.Pages + o.Pages, RSI: c.RSI + o.RSI} }

// Scale multiplies both terms (e.g. inner cost × N outer tuples).
func (c Cost) Scale(f float64) Cost { return Cost{Pages: c.Pages * f, RSI: c.RSI * f} }

// String renders the cost for EXPLAIN.
func (c Cost) String() string { return fmt.Sprintf("pages=%.1f rsi=%.1f", c.Pages, c.RSI) }

// Estimate annotates a node with predicted cost and output cardinality.
type Estimate struct {
	Cost Cost
	Rows float64
}

// Node is one physical plan operator.
type Node interface {
	Est() Estimate
	Children() []Node
	Label() string
}

// est embeds the shared estimate.
type est struct{ E Estimate }

// Est returns the node's estimate.
func (e *est) Est() Estimate { return e.E }

// SetEst sets the node's estimate (used by the optimizer).
func (e *est) SetEst(v Estimate) { e.E = v }

// ParamBind copies a column of the current outer composite row into a
// runtime parameter slot before the inner plan (re-)opens: the mechanism
// behind "the join predicate is applied as a search argument on the inner
// relation" in nested-loop joins.
type ParamBind struct {
	Param int
	From  sem.ColumnID
}

// SegScan finds all tuples of a relation via its segment (cost TCARD/P).
// When NParts > 1 the scan reads only its contiguous 1/NParts share of the
// segment's pages (partition Part) — the shape a Parallel exchange clones
// per worker.
type SegScan struct {
	est
	Table    *catalog.Table
	RelIdx   int // slot in the runtime composite row
	RelName  string
	Sargs    []sem.SargDNF // RSS search arguments, one DNF per boolean factor
	Residual []sem.Expr    // non-sargable local factors
	Part     int           // partition index in [0, NParts)
	NParts   int           // total partitions; 0 or 1 = whole segment
}

// IndexScan walks an index between start and stop keys (Table 2 formulas).
type IndexScan struct {
	est
	Index    *catalog.Index
	RelIdx   int
	RelName  string
	Lo       []sem.Bound // start key prefix (nil = first)
	LoInc    bool
	Hi       []sem.Bound // stop key prefix (nil = last)
	HiInc    bool
	Sargs    []sem.SargDNF
	Residual []sem.Expr
	// Matching notes whether the scan's key range came from matching boolean
	// factors (for EXPLAIN and the Table 2 experiments).
	Matching bool
}

// NLJoin is the nested-loops method: for each outer tuple, bind params and
// re-open the inner scan.
type NLJoin struct {
	est
	Outer, Inner Node
	Binds        []ParamBind
	Residual     []sem.Expr // join predicates not pushed into the inner scan
}

// MergeJoin is the merging-scans method on one equi-join predicate; both
// inputs arrive in join-column order and the executor synchronizes the scans,
// buffering the current inner join group.
type MergeJoin struct {
	est
	Outer, Inner       Node
	OuterCol, InnerCol sem.ColumnID
	Residual           []sem.Expr // remaining join predicates
}

// HashJoin is the third join method: materialize the inner (build) side into
// an in-memory hash table on the join column, then stream the outer (probe)
// side against it. It produces no interesting order — the optimizer prefers
// merge when an order is exploitable downstream and hash otherwise.
type HashJoin struct {
	est
	Outer, Inner       Node // Outer probes, Inner builds
	OuterCol, InnerCol sem.ColumnID
	Residual           []sem.Expr // remaining join predicates
	// BuildRows is the optimizer's cardinality estimate for the build side,
	// used by the executor to pre-size the hash table.
	BuildRows float64
}

// Parallel is the exchange operator: it partitions its input segment scan
// across Degree workers and merges their batches through a bounded channel.
// Row order across partitions is nondeterministic; the optimizer only plants
// it where no downstream operator depends on input order.
type Parallel struct {
	est
	Input  Node // the template scan; the executor clones it per partition
	Degree int
}

// Sort orders composite rows by the given keys, materializing through the
// buffer pool into a temporary list (Section 5's "sorted into a temporary
// relation").
type Sort struct {
	est
	Input Node
	Keys  []sem.OrderKey
}

// GroupAgg aggregates input (already ordered on GroupCols) and evaluates the
// block's output expressions per group. With no GroupCols it produces one
// row for the whole input.
type GroupAgg struct {
	est
	Input     Node
	GroupCols []sem.ColumnID
	Aggs      []*sem.Agg
	// Having filters finished groups (each conjunct over group columns and
	// aggregate results).
	Having   []sem.Expr
	OutExprs []sem.Expr
	OutNames []string
}

// Project evaluates the block's output expressions over composite rows.
type Project struct {
	est
	Input    Node
	Exprs    []sem.Expr
	OutNames []string
}

// Distinct removes duplicate output rows (hash-based, order-preserving; see
// DESIGN.md for the deviation from System R's sort-based duplicate
// elimination).
type Distinct struct {
	est
	Input Node
}

// Children/Label implementations.

func (n *SegScan) Children() []Node { return nil }

func (n *SegScan) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SEGSCAN %s", n.RelName)
	if n.Table.Name != n.RelName {
		fmt.Fprintf(&b, " (%s)", n.Table.Name)
	}
	if n.NParts > 1 {
		fmt.Fprintf(&b, " part=%d/%d", n.Part, n.NParts)
	}
	writePreds(&b, n.Sargs, n.Residual)
	return b.String()
}

func (n *IndexScan) Children() []Node { return nil }

func (n *IndexScan) Label() string {
	var b strings.Builder
	kind := "INDEXSCAN"
	if n.Index.Clustered {
		kind = "CLUSTERED-INDEXSCAN"
	}
	fmt.Fprintf(&b, "%s %s via %s(%s)", kind, n.RelName, n.Index.Name, strings.Join(n.Index.ColumnNames(), ","))
	if len(n.Lo) > 0 || len(n.Hi) > 0 {
		b.WriteString(" key:[")
		if len(n.Lo) > 0 {
			b.WriteString(boundsString(n.Lo))
			if !n.LoInc {
				b.WriteString(" (excl)")
			}
		} else {
			b.WriteString("-inf")
		}
		b.WriteString(" .. ")
		if len(n.Hi) > 0 {
			b.WriteString(boundsString(n.Hi))
			if !n.HiInc {
				b.WriteString(" (excl)")
			}
		} else {
			b.WriteString("+inf")
		}
		b.WriteString("]")
	}
	writePreds(&b, n.Sargs, n.Residual)
	return b.String()
}

func boundsString(bs []sem.Bound) string {
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.String()
	}
	return strings.Join(parts, ",")
}

func writePreds(b *strings.Builder, sargs []sem.SargDNF, residual []sem.Expr) {
	for _, dnf := range sargs {
		b.WriteString(" sarg:")
		for i, conj := range dnf {
			if i > 0 {
				b.WriteString(" OR ")
			} else {
				b.WriteString(" ")
			}
			terms := make([]string, len(conj))
			for j, t := range conj {
				terms[j] = fmt.Sprintf("c%d %s %s", t.Col.Col, t.Op, t.Val)
			}
			b.WriteString("(" + strings.Join(terms, " AND ") + ")")
		}
	}
	if len(residual) > 0 {
		b.WriteString(" filter:")
		for i, e := range residual {
			if i > 0 {
				b.WriteString(" AND")
			}
			b.WriteString(" " + e.String())
		}
	}
}

func (n *NLJoin) Children() []Node { return []Node{n.Outer, n.Inner} }

func (n *NLJoin) Label() string {
	var b strings.Builder
	b.WriteString("NLJOIN")
	if len(n.Binds) > 0 {
		parts := make([]string, len(n.Binds))
		for i, bind := range n.Binds {
			parts[i] = fmt.Sprintf("$%d=outer[%d.%d]", bind.Param, bind.From.Rel, bind.From.Col)
		}
		b.WriteString(" bind: " + strings.Join(parts, ", "))
	}
	if len(n.Residual) > 0 {
		writePreds(&b, nil, n.Residual)
	}
	return b.String()
}

func (n *MergeJoin) Children() []Node { return []Node{n.Outer, n.Inner} }

func (n *MergeJoin) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MERGEJOIN on outer[%d.%d] = inner[%d.%d]",
		n.OuterCol.Rel, n.OuterCol.Col, n.InnerCol.Rel, n.InnerCol.Col)
	if len(n.Residual) > 0 {
		writePreds(&b, nil, n.Residual)
	}
	return b.String()
}

func (n *HashJoin) Children() []Node { return []Node{n.Outer, n.Inner} }

func (n *HashJoin) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HASHJOIN build inner[%d.%d] probe outer[%d.%d]",
		n.InnerCol.Rel, n.InnerCol.Col, n.OuterCol.Rel, n.OuterCol.Col)
	if len(n.Residual) > 0 {
		writePreds(&b, nil, n.Residual)
	}
	return b.String()
}

func (n *Parallel) Children() []Node { return []Node{n.Input} }

func (n *Parallel) Label() string {
	return fmt.Sprintf("PARALLEL degree=%d", n.Degree)
}

func (n *Sort) Children() []Node { return []Node{n.Input} }

func (n *Sort) Label() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		dir := ""
		if k.Desc {
			dir = " DESC"
		}
		parts[i] = fmt.Sprintf("[%d.%d]%s", k.Col.Rel, k.Col.Col, dir)
	}
	return "SORT into temp list by " + strings.Join(parts, ", ")
}

func (n *GroupAgg) Children() []Node { return []Node{n.Input} }

func (n *GroupAgg) Label() string {
	var b strings.Builder
	b.WriteString("GROUP")
	if len(n.GroupCols) > 0 {
		parts := make([]string, len(n.GroupCols))
		for i, c := range n.GroupCols {
			parts[i] = fmt.Sprintf("[%d.%d]", c.Rel, c.Col)
		}
		b.WriteString(" by " + strings.Join(parts, ", "))
	}
	aggs := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		aggs[i] = a.String()
	}
	if len(aggs) > 0 {
		b.WriteString(" agg: " + strings.Join(aggs, ", "))
	}
	if len(n.Having) > 0 {
		b.WriteString(" having:")
		for i, h := range n.Having {
			if i > 0 {
				b.WriteString(" AND")
			}
			b.WriteString(" " + h.String())
		}
	}
	return b.String()
}

func (n *Project) Children() []Node { return []Node{n.Input} }

func (n *Project) Label() string {
	parts := make([]string, len(n.Exprs))
	for i, e := range n.Exprs {
		parts[i] = e.String()
	}
	return "PROJECT " + strings.Join(parts, ", ")
}

func (n *Distinct) Children() []Node { return []Node{n.Input} }

func (n *Distinct) Label() string { return "DISTINCT" }

// SubPlan is the plan of one nested query block (Section 6), linked to the
// parent block's plan. Non-correlated subqueries are evaluated once before
// the parent block; correlated ones per candidate tuple, with the
// same-value result cache the paper describes.
type SubPlan struct {
	Sub   *sem.Subquery
	Query *Query
}

// Query is the complete plan for one query block.
type Query struct {
	Block     *sem.Block
	Root      Node
	Subs      []*SubPlan
	NumParams int // block correlation params + optimizer-allocated slots
	// OutNames are the result column names.
	OutNames []string
}

// Explain renders the plan tree, one node per line with indentation, with
// each nested query block appended after its parent.
func (q *Query) Explain() string {
	var b strings.Builder
	q.explainInto(&b, "QUERY BLOCK (main)")
	return b.String()
}

func (q *Query) explainInto(b *strings.Builder, title string) {
	fmt.Fprintf(b, "%s\n", title)
	explainNode(b, q.Root, 1)
	for _, sp := range q.Subs {
		kind := "subquery"
		if sp.Sub.Correlated {
			kind = "correlated subquery"
		}
		sp.Query.explainInto(b, fmt.Sprintf("QUERY BLOCK (%s #%d)", kind, sp.Sub.ID))
	}
}

func explainNode(b *strings.Builder, n Node, depth int) {
	e := n.Est()
	fmt.Fprintf(b, "%s%s  {cost: %s, rows=%.1f}\n", strings.Repeat("  ", depth), n.Label(), e.Cost, e.Rows)
	for _, c := range n.Children() {
		explainNode(b, c, depth+1)
	}
}

package plan

import (
	"strings"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

func testTable(t *testing.T) *catalog.Table {
	t.Helper()
	cat := catalog.New(storage.NewDisk())
	tab, err := cat.CreateTable("T", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "B", Type: value.KindString},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("T_A", "T", []string{"A"}, true, true); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{Pages: 10, RSI: 100}
	b := Cost{Pages: 2, RSI: 30}
	sum := a.Add(b)
	if sum.Pages != 12 || sum.RSI != 130 {
		t.Fatalf("Add: %+v", sum)
	}
	scaled := b.Scale(3)
	if scaled.Pages != 6 || scaled.RSI != 90 {
		t.Fatalf("Scale: %+v", scaled)
	}
	if got := a.Total(0.033); got != 10+0.033*100 {
		t.Fatalf("Total: %v", got)
	}
	if !strings.Contains(a.String(), "pages=10.0") {
		t.Fatalf("String: %s", a.String())
	}
}

func TestScanLabels(t *testing.T) {
	tab := testTable(t)
	seg := &SegScan{
		Table: tab, RelIdx: 0, RelName: "X",
		Sargs: []sem.SargDNF{{{sem.SargTerm{
			Col: sem.ColumnID{Rel: 0, Col: 0}, Op: value.OpEq,
			Val: sem.Bound{Kind: sem.BoundConst, Val: value.NewInt(5)},
		}}}},
	}
	label := seg.Label()
	for _, frag := range []string{"SEGSCAN X", "(T)", "sarg:", "c0 = 5"} {
		if !strings.Contains(label, frag) {
			t.Fatalf("segment label %q lacks %q", label, frag)
		}
	}

	ix := tab.Indexes[0]
	scan := &IndexScan{
		Index: ix, RelIdx: 0, RelName: "T",
		Lo:    []sem.Bound{{Kind: sem.BoundConst, Val: value.NewInt(3)}},
		LoInc: false,
		Hi:    []sem.Bound{{Kind: sem.BoundParam, Param: 2}},
		HiInc: true,
	}
	label = scan.Label()
	for _, frag := range []string{"CLUSTERED-INDEXSCAN", "T_A(A)", "3 (excl)", "$2"} {
		if !strings.Contains(label, frag) {
			t.Fatalf("index label %q lacks %q", label, frag)
		}
	}
	// Unbounded sides render as infinities.
	open := &IndexScan{Index: ix, Lo: []sem.Bound{{Kind: sem.BoundConst, Val: value.NewInt(1)}}, LoInc: true}
	if !strings.Contains(open.Label(), "+inf") {
		t.Fatalf("open range label: %s", open.Label())
	}
}

func TestJoinAndWrapperLabels(t *testing.T) {
	tab := testTable(t)
	seg := &SegScan{Table: tab, RelIdx: 0, RelName: "T"}
	nl := &NLJoin{
		Outer: seg, Inner: seg,
		Binds: []ParamBind{{Param: 4, From: sem.ColumnID{Rel: 0, Col: 1}}},
	}
	if !strings.Contains(nl.Label(), "$4=outer[0.1]") {
		t.Fatalf("nl label: %s", nl.Label())
	}
	if len(nl.Children()) != 2 {
		t.Fatal("nl children")
	}

	mj := &MergeJoin{Outer: seg, Inner: seg,
		OuterCol: sem.ColumnID{Rel: 0, Col: 0}, InnerCol: sem.ColumnID{Rel: 1, Col: 2}}
	if !strings.Contains(mj.Label(), "outer[0.0] = inner[1.2]") {
		t.Fatalf("mj label: %s", mj.Label())
	}

	srt := &Sort{Input: seg, Keys: []sem.OrderKey{{Col: sem.ColumnID{Rel: 0, Col: 0}, Desc: true}}}
	if !strings.Contains(srt.Label(), "DESC") {
		t.Fatalf("sort label: %s", srt.Label())
	}

	ga := &GroupAgg{Input: seg, GroupCols: []sem.ColumnID{{Rel: 0, Col: 0}},
		Aggs: []*sem.Agg{{Name: "COUNT", Star: true}}}
	if !strings.Contains(ga.Label(), "COUNT(*)") {
		t.Fatalf("group label: %s", ga.Label())
	}

	pr := &Project{Input: seg, Exprs: []sem.Expr{&sem.Const{Val: value.NewInt(1)}}}
	if !strings.Contains(pr.Label(), "PROJECT 1") {
		t.Fatalf("project label: %s", pr.Label())
	}
	d := &Distinct{Input: pr}
	if d.Label() != "DISTINCT" || len(d.Children()) != 1 {
		t.Fatal("distinct node")
	}
}

func TestExplainTreeShape(t *testing.T) {
	tab := testTable(t)
	seg := &SegScan{Table: tab, RelIdx: 0, RelName: "T"}
	seg.SetEst(Estimate{Cost: Cost{Pages: 3, RSI: 9}, Rows: 9})
	pr := &Project{Input: seg, Exprs: []sem.Expr{&sem.Const{Val: value.NewInt(1)}}}
	pr.SetEst(Estimate{Cost: Cost{Pages: 3, RSI: 9}, Rows: 9})

	blk := &sem.Block{}
	sub := &sem.Subquery{ID: 1, Correlated: true, Block: blk}
	subQ := &Query{Block: blk, Root: pr}
	q := &Query{
		Block: blk,
		Root:  pr,
		Subs:  []*SubPlan{{Sub: sub, Query: subQ}},
	}
	out := q.Explain()
	if !strings.Contains(out, "QUERY BLOCK (main)") ||
		!strings.Contains(out, "QUERY BLOCK (correlated subquery #1)") {
		t.Fatalf("explain blocks:\n%s", out)
	}
	// Indentation: the scan is one level below the projection.
	lines := strings.Split(out, "\n")
	var projLine, scanLine string
	for _, l := range lines {
		if strings.Contains(l, "PROJECT") && projLine == "" {
			projLine = l
		}
		if strings.Contains(l, "SEGSCAN") && scanLine == "" {
			scanLine = l
		}
	}
	if indent(scanLine) <= indent(projLine) {
		t.Fatalf("scan not indented under project:\n%s", out)
	}
	if !strings.Contains(out, "rows=9.0") || !strings.Contains(out, "pages=3.0") {
		t.Fatalf("estimates missing:\n%s", out)
	}
}

func indent(s string) int {
	return len(s) - len(strings.TrimLeft(s, " "))
}

package exec

import (
	"errors"
	"fmt"

	"systemr/internal/governor"
	"systemr/internal/plan"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// Budget is the statement execution governor's per-statement budget
// (cancellation, deadline, rows scanned, page fetches). See
// internal/governor.
type Budget = governor.Budget

// Runtime carries one statement's execution environment: the buffer pool
// through which all page accesses flow, the simulated disk for temporary
// lists, the statement's governor budget (nil = ungoverned, e.g. experiment
// drivers), and the statement's own I/O accumulator. A Runtime belongs to
// the single statement executing through it.
type Runtime struct {
	Pool   *storage.BufferPool
	Disk   *storage.Disk
	Budget *Budget
	// IO is the statement's own I/O accumulator: every page access and RSI
	// call of this statement is counted into it (in addition to the pool's
	// DB-global aggregate), so PAGE FETCHES and RSI CALLS are measured
	// per-statement — exact even under concurrent statements. Nil is allowed
	// and replaced with a fresh accumulator on first use.
	IO *storage.IOStats

	// BatchSize is the target rows per NextBatch call (0 or negative =
	// DefaultBatchSize). It never affects plan choice — only how many rows
	// cross each instrumented operator boundary per call.
	BatchSize int
	// OnBatch, when non-nil, observes the size of every batch the block
	// driver consumes from the root operator (metrics hook).
	OnBatch func(rows int)
	// OnParallel, when non-nil, observes the worker count of every parallel
	// exchange opened (metrics hook).
	OnParallel func(workers int)

	// Snap is the MVCC snapshot every scan in this statement reads under:
	// only versions visible to it cross the RSS interface. Nil means "latest
	// committed" (bootstrap and lock-excluded callers). Worker contexts copy
	// the whole Runtime, so parallel scans inherit it.
	Snap *storage.Snapshot
}

// ensureIO guarantees the runtime carries a statement accumulator, creating
// a fresh one for callers (tests, experiment drivers) that did not supply
// one.
func (rt *Runtime) ensureIO() *storage.IOStats {
	if rt.IO == nil {
		rt.IO = &storage.IOStats{}
	}
	return rt.IO
}

// Stats summarizes one statement's measured execution.
type Stats struct {
	IO            storage.IOStatsSnapshot
	SubqueryEvals int
	Rows          int
}

// RunQuery executes a planned query block and returns the output rows. The
// plan must not contain host variables (use RunQueryArgs).
func RunQuery(rt *Runtime, q *plan.Query) ([]value.Row, *Stats, error) {
	return RunQueryArgs(rt, q, nil)
}

// RunQueryArgs executes a planned query block with host-variable values
// bound positionally (the paper's program-supplied values at execution
// time).
func RunQueryArgs(rt *Runtime, q *plan.Query, args []value.Value) ([]value.Row, *Stats, error) {
	rows, stats, _, err := runQuery(rt, q, args)
	return rows, stats, err
}

// runQuery is the shared body of RunQueryArgs and RunQueryAnalyze: execute
// the block and return the rows, the statement stats, and the block context
// whose operator tree now holds the per-operator actuals.
func runQuery(rt *Runtime, q *plan.Query, args []value.Value) ([]value.Row, *Stats, *blockCtx, error) {
	before := rt.ensureIO().Snapshot()
	evals := 0
	mkStats := func(rows int) *Stats {
		after := rt.IO.Snapshot()
		return &Stats{IO: after.Sub(before), SubqueryEvals: evals, Rows: rows}
	}
	ctx := newBlockCtx(rt, q, &evals)
	if err := bindHostArgs(ctx, q, args); err != nil {
		return nil, mkStats(0), ctx, err
	}
	rows, err := ctx.run()
	if err != nil {
		// Stats are still returned so aborted statements (canceled, budget
		// exceeded, storage fault) report the work done up to the abort.
		return nil, mkStats(0), ctx, err
	}
	return rows, mkStats(len(rows)), ctx, nil
}

// bindHostArgs validates the argument count against the block's host
// variables and fills the corresponding parameter slots.
func bindHostArgs(ctx *blockCtx, q *plan.Query, args []value.Value) error {
	nHost := 0
	for idx := range q.Block.HostRefs {
		if idx+1 > nHost {
			nHost = idx + 1
		}
	}
	if len(args) != nHost {
		return fmt.Errorf("exec: statement has %d host variable(s), %d argument(s) supplied", nHost, len(args))
	}
	for idx, slot := range q.Block.HostRefs {
		ctx.params[slot] = args[idx]
	}
	return nil
}

// blockCtx is the runtime state of one executing query block instance.
type blockCtx struct {
	rt      *Runtime
	io      storage.StmtIO // statement-scoped accounting view of the pool
	q       *plan.Query
	params  []value.Value
	subs    map[*sem.Subquery]*subState
	aggVals []value.Value
	evals   *int // shared subquery-evaluation counter
	// subFetches tracks, across the whole statement, the page fetches spent
	// inside subquery evaluations. Operator instrumentation deltas
	// (fetchCount - subFetches), so a correlated subquery re-evaluated in the
	// middle of an outer operator's Next is attributed to its own query
	// block, not double-counted against the operator. Shared (like evals)
	// between a block and its subquery blocks.
	subFetches *int64
	batchN     int // target rows per NextBatch (Runtime.BatchSize resolved)
	root       *op // the block's operator tree, kept for EXPLAIN ANALYZE
}

func newBlockCtx(rt *Runtime, q *plan.Query, evals *int) *blockCtx {
	ctx := &blockCtx{
		rt:         rt,
		io:         rt.Pool.View(rt.ensureIO()),
		q:          q,
		params:     make([]value.Value, q.NumParams),
		subs:       make(map[*sem.Subquery]*subState, len(q.Subs)),
		evals:      evals,
		subFetches: new(int64),
		batchN:     rt.BatchSize,
	}
	if ctx.batchN < 1 {
		ctx.batchN = DefaultBatchSize
	}
	for _, sp := range q.Subs {
		ctx.subs[sp.Sub] = &subState{sp: sp}
	}
	return ctx
}

// fetchCount reads the statement's page-fetch counter — this statement's
// fetches only, so attribution stays exact under concurrent statements.
// Parallel workers post into their own attached accumulators, excluded here,
// so synchronous deltas stay deterministic while workers run; worker I/O is
// folded back in at Stats()-read time and in statement totals (Snapshot).
func (ctx *blockCtx) fetchCount() int64 { return ctx.io.LocalFetchCount() }

// opFetchBase is the counter operator instrumentation deltas: the
// statement's fetches minus those spent inside subquery evaluations (which
// are attributed to the subquery's own block).
func (ctx *blockCtx) opFetchBase() int64 { return ctx.fetchCount() - *ctx.subFetches }

// run drives the block's operator tree to completion. The close is deferred
// before open so that every exit path — including errors mid-open and panics
// — releases the plan's scans; close errors surface unless an earlier error
// is already being returned.
func (ctx *blockCtx) run() (rows []value.Row, err error) {
	root, err := ctx.buildRoot()
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := root.Close(); cerr != nil && err == nil {
			rows, err = nil, cerr
		}
	}()
	if err := root.Open(); err != nil {
		return nil, err
	}
	// Block execution is batch-driven: the root's instrumented boundary is
	// paid once per batch instead of once per row. Cursors and DML tuple
	// location keep the row-at-a-time Next.
	b := NewBatch(ctx.batchN)
	for {
		if err := root.NextBatch(b); err != nil {
			return nil, err
		}
		if b.Len() == 0 {
			return rows, nil
		}
		if f := ctx.rt.OnBatch; f != nil {
			f(b.Len())
		}
		for _, c := range b.rows {
			rows = append(rows, outRow(c))
		}
	}
}

// workerCtx derives an execution context for one parallel-scan worker: the
// worker accounts its I/O into acc (already Attached to the statement's
// accumulator) and shares the statement's governor budget and parameter
// bindings. Parallel-eligible scans evaluate no residuals or subquery-bound
// sargs, so the worker context carries no subquery state.
func (ctx *blockCtx) workerCtx(acc *storage.IOStats) *blockCtx {
	rt2 := *ctx.rt
	rt2.IO = acc
	return &blockCtx{
		rt:         &rt2,
		io:         ctx.rt.Pool.View(acc),
		q:          ctx.q,
		params:     ctx.params,
		evals:      ctx.evals,
		subFetches: new(int64),
		batchN:     ctx.batchN,
	}
}

func (ctx *blockCtx) numRels() int { return len(ctx.q.Block.Rels) }

// resolveSargs converts plan-level search arguments into concrete RSS SARGs,
// evaluating parameter and subquery bounds now (scan-open time).
func (ctx *blockCtx) resolveSargs(c comp, sargs []sem.SargDNF) (rss.SargSet, error) {
	if len(sargs) == 0 {
		return nil, nil
	}
	out := make(rss.SargSet, 0, len(sargs))
	for _, dnf := range sargs {
		sarg := rss.Sarg{Disjuncts: make([][]rss.SargTerm, 0, len(dnf))}
		for _, conjv := range dnf {
			conj := make([]rss.SargTerm, 0, len(conjv))
			for _, t := range conjv {
				v, err := ctx.resolveBound(c, t.Val)
				if err != nil {
					return nil, err
				}
				conj = append(conj, rss.SargTerm{Col: t.Col.Col, Op: t.Op, Val: v})
			}
			sarg.Disjuncts = append(sarg.Disjuncts, conj)
		}
		out = append(out, sarg)
	}
	return out, nil
}

// applyResidual evaluates the residual predicates attached to a node.
func (ctx *blockCtx) applyResidual(c comp, exprs []sem.Expr) (bool, error) {
	for _, e := range exprs {
		ok, err := ctx.evalBool(c, e)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Cursor streams a planned query's output rows one at a time — the
// tuple-at-a-time host-language interface the paper's Section 2 describes
// (generated code returning tuples to PL/I or COBOL programs). Stats are
// finalized when the cursor closes or drains.
type Cursor struct {
	rt     *Runtime
	root   *op
	before storage.IOStatsSnapshot
	evals  int
	rows   int
	done   bool
	stats  *Stats
}

// OpenQuery begins streaming execution of a planned block (no host
// variables; use OpenQueryArgs otherwise).
func OpenQuery(rt *Runtime, q *plan.Query) (*Cursor, error) {
	return OpenQueryArgs(rt, q, nil)
}

// OpenQueryArgs begins streaming execution with host-variable values bound.
// A failed open releases any scans the plan managed to open before failing.
func OpenQueryArgs(rt *Runtime, q *plan.Query, args []value.Value) (*Cursor, error) {
	c := &Cursor{rt: rt, before: rt.ensureIO().Snapshot()}
	ctx := newBlockCtx(rt, q, &c.evals)
	if err := bindHostArgs(ctx, q, args); err != nil {
		return nil, err
	}
	root, err := ctx.buildRoot()
	if err != nil {
		return nil, err
	}
	if err := root.Open(); err != nil {
		// Release partially-opened scans (e.g. a join's outer); a close
		// failure rides along rather than vanishing.
		if cerr := root.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	c.root = root
	return c, nil
}

// Next returns the next output row; ok is false at end of results. An error
// finishes the cursor (scans released); at end of results a close error, if
// any, is surfaced in the final call.
func (c *Cursor) Next() (value.Row, bool, error) {
	if c.done {
		return nil, false, nil
	}
	cr, ok, err := c.root.Next()
	if err != nil {
		c.finish()
		return nil, false, err
	}
	if !ok {
		return nil, false, c.finish()
	}
	c.rows++
	return outRow(cr), true, nil
}

// Close releases the cursor; safe to call at any point and idempotent. It
// returns the underlying close error the first time.
func (c *Cursor) Close() error {
	if !c.done {
		return c.finish()
	}
	return nil
}

func (c *Cursor) finish() error {
	c.done = true
	err := c.root.Close()
	after := c.rt.IO.Snapshot()
	c.stats = &Stats{IO: after.Sub(c.before), SubqueryEvals: c.evals, Rows: c.rows}
	return err
}

// Stats returns the measured execution statistics; valid after the cursor
// has drained or closed, nil before.
func (c *Cursor) Stats() *Stats { return c.stats }

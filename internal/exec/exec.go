package exec

import (
	"fmt"

	"systemr/internal/governor"
	"systemr/internal/plan"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
	"systemr/internal/xsort"
)

// Budget is the statement execution governor's per-statement budget
// (cancellation, deadline, rows scanned, page fetches). See
// internal/governor.
type Budget = governor.Budget

// Runtime carries the shared execution environment: the buffer pool through
// which all page accesses flow (and which therefore measures PAGE FETCHES
// and RSI CALLS), the simulated disk for temporary lists, and the
// statement's governor budget (nil = ungoverned, e.g. experiment drivers).
type Runtime struct {
	Pool   *storage.BufferPool
	Disk   *storage.Disk
	Budget *Budget
}

// Stats summarizes one statement's measured execution.
type Stats struct {
	IO            storage.IOStatsSnapshot
	SubqueryEvals int
	Rows          int
}

// RunQuery executes a planned query block and returns the output rows. The
// plan must not contain host variables (use RunQueryArgs).
func RunQuery(rt *Runtime, q *plan.Query) ([]value.Row, *Stats, error) {
	return RunQueryArgs(rt, q, nil)
}

// RunQueryArgs executes a planned query block with host-variable values
// bound positionally (the paper's program-supplied values at execution
// time).
func RunQueryArgs(rt *Runtime, q *plan.Query, args []value.Value) ([]value.Row, *Stats, error) {
	before := rt.Pool.Stats().Snapshot()
	evals := 0
	mkStats := func(rows int) *Stats {
		after := rt.Pool.Stats().Snapshot()
		return &Stats{IO: after.Sub(before), SubqueryEvals: evals, Rows: rows}
	}
	ctx := newBlockCtx(rt, q, &evals)
	if err := bindHostArgs(ctx, q, args); err != nil {
		return nil, mkStats(0), err
	}
	rows, err := ctx.run()
	if err != nil {
		// Stats are still returned so aborted statements (canceled, budget
		// exceeded, storage fault) report the work done up to the abort.
		return nil, mkStats(0), err
	}
	return rows, mkStats(len(rows)), nil
}

// bindHostArgs validates the argument count against the block's host
// variables and fills the corresponding parameter slots.
func bindHostArgs(ctx *blockCtx, q *plan.Query, args []value.Value) error {
	nHost := 0
	for idx := range q.Block.HostRefs {
		if idx+1 > nHost {
			nHost = idx + 1
		}
	}
	if len(args) != nHost {
		return fmt.Errorf("exec: statement has %d host variable(s), %d argument(s) supplied", nHost, len(args))
	}
	for idx, slot := range q.Block.HostRefs {
		ctx.params[slot] = args[idx]
	}
	return nil
}

// blockCtx is the runtime state of one executing query block instance.
type blockCtx struct {
	rt      *Runtime
	q       *plan.Query
	params  []value.Value
	subs    map[*sem.Subquery]*subState
	aggVals []value.Value
	evals   *int // shared subquery-evaluation counter
}

func newBlockCtx(rt *Runtime, q *plan.Query, evals *int) *blockCtx {
	ctx := &blockCtx{
		rt:     rt,
		q:      q,
		params: make([]value.Value, q.NumParams),
		subs:   make(map[*sem.Subquery]*subState, len(q.Subs)),
		evals:  evals,
	}
	for _, sp := range q.Subs {
		ctx.subs[sp.Sub] = &subState{sp: sp}
	}
	return ctx
}

// run drives the block's plan to completion. The close is deferred before
// open so that every exit path — including errors mid-open and panics —
// releases the plan's scans; close errors surface unless an earlier error
// is already being returned.
func (ctx *blockCtx) run() (rows []value.Row, err error) {
	it, err := ctx.buildFlat(ctx.q.Root)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := it.close(); cerr != nil && err == nil {
			rows, err = nil, cerr
		}
	}()
	if err := it.open(); err != nil {
		return nil, err
	}
	for {
		row, ok, err := it.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

// compIter produces composite rows.
type compIter interface {
	open() error
	next() (comp, bool, error)
	close() error
}

// flatIter produces final output rows.
type flatIter interface {
	open() error
	next() (value.Row, bool, error)
	close() error
}

// buildFlat constructs the output stage of the plan.
func (ctx *blockCtx) buildFlat(n plan.Node) (flatIter, error) {
	switch x := n.(type) {
	case *plan.Distinct:
		in, err := ctx.buildFlat(x.Input)
		if err != nil {
			return nil, err
		}
		return &distinctIter{input: in}, nil
	case *plan.Project:
		in, err := ctx.buildComp(x.Input)
		if err != nil {
			return nil, err
		}
		return &projectIter{ctx: ctx, input: in, exprs: x.Exprs}, nil
	case *plan.GroupAgg:
		in, err := ctx.buildComp(x.Input)
		if err != nil {
			return nil, err
		}
		return &groupAggIter{ctx: ctx, input: in, node: x}, nil
	default:
		return nil, fmt.Errorf("exec: node %T cannot produce output rows", n)
	}
}

// buildComp constructs the composite-row portion of the plan.
func (ctx *blockCtx) buildComp(n plan.Node) (compIter, error) {
	switch x := n.(type) {
	case *plan.SegScan:
		return &segScanIter{ctx: ctx, node: x}, nil
	case *plan.IndexScan:
		return &indexScanIter{ctx: ctx, node: x}, nil
	case *plan.NLJoin:
		outer, err := ctx.buildComp(x.Outer)
		if err != nil {
			return nil, err
		}
		return &nlJoinIter{ctx: ctx, node: x, outer: outer}, nil
	case *plan.MergeJoin:
		outer, err := ctx.buildComp(x.Outer)
		if err != nil {
			return nil, err
		}
		inner, err := ctx.buildComp(x.Inner)
		if err != nil {
			return nil, err
		}
		return &mergeJoinIter{ctx: ctx, node: x, outer: outer, inner: inner}, nil
	case *plan.Sort:
		in, err := ctx.buildComp(x.Input)
		if err != nil {
			return nil, err
		}
		return &sortIter{ctx: ctx, input: in, keys: x.Keys}, nil
	default:
		return nil, fmt.Errorf("exec: unsupported composite node %T", n)
	}
}

func (ctx *blockCtx) numRels() int { return len(ctx.q.Block.Rels) }

// resolveSargs converts plan-level search arguments into concrete RSS SARGs,
// evaluating parameter and subquery bounds now (scan-open time).
func (ctx *blockCtx) resolveSargs(c comp, sargs []sem.SargDNF) (rss.SargSet, error) {
	if len(sargs) == 0 {
		return nil, nil
	}
	out := make(rss.SargSet, 0, len(sargs))
	for _, dnf := range sargs {
		sarg := rss.Sarg{Disjuncts: make([][]rss.SargTerm, 0, len(dnf))}
		for _, conjv := range dnf {
			conj := make([]rss.SargTerm, 0, len(conjv))
			for _, t := range conjv {
				v, err := ctx.resolveBound(c, t.Val)
				if err != nil {
					return nil, err
				}
				conj = append(conj, rss.SargTerm{Col: t.Col.Col, Op: t.Op, Val: v})
			}
			sarg.Disjuncts = append(sarg.Disjuncts, conj)
		}
		out = append(out, sarg)
	}
	return out, nil
}

// applyResidual evaluates the residual predicates attached to a node.
func (ctx *blockCtx) applyResidual(c comp, exprs []sem.Expr) (bool, error) {
	for _, e := range exprs {
		ok, err := ctx.evalBool(c, e)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// ---- Scans ----

type segScanIter struct {
	ctx  *blockCtx
	node *plan.SegScan
	scan *rss.SegmentScan
}

func (it *segScanIter) open() error {
	sargs, err := it.ctx.resolveSargs(nil, it.node.Sargs)
	if err != nil {
		return err
	}
	it.scan = &rss.SegmentScan{Table: it.node.Table, Pool: it.ctx.rt.Pool, Sargs: sargs, Budget: it.ctx.rt.Budget}
	return it.scan.Open()
}

func (it *segScanIter) next() (comp, bool, error) {
	for {
		row, _, ok, err := it.scan.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		c := make(comp, it.ctx.numRels())
		c[it.node.RelIdx] = row
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return c, true, nil
		}
	}
}

func (it *segScanIter) close() error {
	if it.scan != nil {
		return it.scan.Close()
	}
	return nil
}

type indexScanIter struct {
	ctx   *blockCtx
	node  *plan.IndexScan
	scan  *rss.IndexScan
	empty bool
}

func (it *indexScanIter) open() error {
	// A NULL key bound can match nothing (comparisons with NULL are false):
	// the scan is empty.
	lo, hi, empty, err := it.ctx.resolveKeyBounds(it.node)
	if err != nil {
		return err
	}
	it.empty = empty
	sargs, err := it.ctx.resolveSargs(nil, it.node.Sargs)
	if err != nil {
		return err
	}
	if it.empty {
		return nil
	}
	it.scan = &rss.IndexScan{
		Index: it.node.Index, Pool: it.ctx.rt.Pool,
		Lo: lo, LoInc: it.node.LoInc, Hi: hi, HiInc: it.node.HiInc,
		Sargs: sargs, Budget: it.ctx.rt.Budget,
	}
	return it.scan.Open()
}

func (it *indexScanIter) next() (comp, bool, error) {
	if it.empty {
		return nil, false, nil
	}
	for {
		row, _, ok, err := it.scan.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		c := make(comp, it.ctx.numRels())
		c[it.node.RelIdx] = row
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return c, true, nil
		}
	}
}

func (it *indexScanIter) close() error {
	if it.scan != nil {
		return it.scan.Close()
	}
	return nil
}

// ---- Nested-loop join ----

type nlJoinIter struct {
	ctx      *blockCtx
	node     *plan.NLJoin
	outer    compIter
	curOuter comp
	inner    compIter
}

func (it *nlJoinIter) open() error {
	it.curOuter = nil
	it.inner = nil
	return it.outer.open()
}

func (it *nlJoinIter) next() (comp, bool, error) {
	for {
		if it.curOuter == nil {
			oc, ok, err := it.outer.next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.curOuter = oc
			// Bind the outer tuple's join values into the parameters the
			// inner scan's start/stop keys and SARGs reference, then
			// (re-)open the inner scan — one inner scan per outer tuple, as
			// the nested-loops cost formula assumes. The previous inner
			// scan is closed first, and its close error propagates.
			for _, b := range it.node.Binds {
				row := oc[b.From.Rel]
				if row == nil {
					return nil, false, fmt.Errorf("exec: nested-loop bind from missing relation %d", b.From.Rel)
				}
				it.ctx.params[b.Param] = row[b.From.Col]
			}
			if it.inner != nil {
				prev := it.inner
				it.inner = nil
				if err := prev.close(); err != nil {
					return nil, false, err
				}
			}
			inner, err := it.ctx.buildComp(it.node.Inner)
			if err != nil {
				return nil, false, err
			}
			it.inner = inner
			if err := inner.open(); err != nil {
				return nil, false, err
			}
		}
		ic, ok, err := it.inner.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			it.curOuter = nil
			continue
		}
		c := mergeComp(it.curOuter, ic)
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return c, true, nil
		}
	}
}

// close releases both sides, returning the first error but always closing
// the outer even when the inner's close fails.
func (it *nlJoinIter) close() error {
	var firstErr error
	if it.inner != nil {
		if err := it.inner.close(); err != nil {
			firstErr = err
		}
		it.inner = nil
	}
	if err := it.outer.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ---- Merging-scans join ----

// mergeJoinIter synchronizes two scans ordered on the join columns,
// remembering the current inner join group so it is never rescanned
// ("remembering where matching join groups are located", Section 5).
type mergeJoinIter struct {
	ctx   *blockCtx
	node  *plan.MergeJoin
	outer compIter
	inner compIter

	curOuter  comp
	group     []comp
	groupKey  value.Value
	haveGroup bool
	gi        int
	lookahead comp
	innerDone bool
}

func (it *mergeJoinIter) open() error {
	it.curOuter, it.group, it.haveGroup, it.gi = nil, nil, false, 0
	it.lookahead, it.innerDone = nil, false
	if err := it.outer.open(); err != nil {
		return err
	}
	return it.inner.open()
}

func (it *mergeJoinIter) innerNext() (comp, bool, error) {
	if it.lookahead != nil {
		c := it.lookahead
		it.lookahead = nil
		return c, true, nil
	}
	if it.innerDone {
		return nil, false, nil
	}
	c, ok, err := it.inner.next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		it.innerDone = true
		return nil, false, nil
	}
	return c, true, nil
}

// loadGroup positions the inner group at the first key >= key and buffers
// all inner rows equal to it.
func (it *mergeJoinIter) loadGroup(key value.Value) error {
	// Reuse the current group if it already matches.
	if it.haveGroup && value.Compare(it.groupKey, key) == 0 {
		return nil
	}
	// Skip groups below the outer key.
	for {
		if it.haveGroup && value.Compare(it.groupKey, key) >= 0 {
			return nil
		}
		c, ok, err := it.innerNext()
		if err != nil {
			return err
		}
		if !ok {
			it.haveGroup = false
			it.group = nil
			return nil
		}
		k := c[it.node.InnerCol.Rel][it.node.InnerCol.Col]
		if k.IsNull() {
			continue // NULL join keys match nothing
		}
		if value.Compare(k, key) < 0 {
			continue
		}
		// Buffer the whole group with this key.
		it.group = it.group[:0]
		it.group = append(it.group, c)
		it.groupKey = k
		it.haveGroup = true
		for {
			nc, ok, err := it.innerNext()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			nk := nc[it.node.InnerCol.Rel][it.node.InnerCol.Col]
			if value.Compare(nk, k) == 0 {
				it.group = append(it.group, nc)
				continue
			}
			it.lookahead = nc
			break
		}
		return nil
	}
}

func (it *mergeJoinIter) next() (comp, bool, error) {
	for {
		if it.curOuter == nil {
			oc, ok, err := it.outer.next()
			if err != nil || !ok {
				return nil, false, err
			}
			key := oc[it.node.OuterCol.Rel][it.node.OuterCol.Col]
			if key.IsNull() {
				continue
			}
			if err := it.loadGroup(key); err != nil {
				return nil, false, err
			}
			if !it.haveGroup || value.Compare(it.groupKey, key) != 0 {
				continue // no matching inner group
			}
			it.curOuter = oc
			it.gi = 0
		}
		if it.gi >= len(it.group) {
			it.curOuter = nil
			continue
		}
		c := mergeComp(it.curOuter, it.group[it.gi])
		it.gi++
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return c, true, nil
		}
	}
}

func (it *mergeJoinIter) close() error {
	firstErr := it.outer.close()
	if err := it.inner.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ---- Sort (composite) ----

// sortIter materializes its input into a temporary list ordered by the sort
// keys, flattening composites through the row codec so the temp pages hold
// real serialized tuples.
type sortIter struct {
	ctx    *blockCtx
	input  compIter
	keys   []sem.OrderKey
	layout *compLayout
	res    *xsort.Result
}

// compLayout maps (relation, column) to positions in a flattened row:
// [flag, cols...] per relation, concatenated.
type compLayout struct {
	offsets []int // start of each relation's section
	widths  []int // columns per relation
	total   int
}

func newCompLayout(blk *sem.Block) *compLayout {
	l := &compLayout{offsets: make([]int, len(blk.Rels)), widths: make([]int, len(blk.Rels))}
	pos := 0
	for i, r := range blk.Rels {
		l.offsets[i] = pos
		l.widths[i] = len(r.Table.Columns)
		pos += 1 + l.widths[i]
	}
	l.total = pos
	return l
}

func (l *compLayout) pos(id sem.ColumnID) int { return l.offsets[id.Rel] + 1 + id.Col }

func (l *compLayout) flatten(c comp) value.Row {
	out := make(value.Row, l.total)
	for i := range l.offsets {
		if c[i] == nil {
			out[l.offsets[i]] = value.NewInt(0)
			for j := 0; j < l.widths[i]; j++ {
				out[l.offsets[i]+1+j] = value.Null()
			}
			continue
		}
		out[l.offsets[i]] = value.NewInt(1)
		copy(out[l.offsets[i]+1:], c[i])
	}
	return out
}

func (l *compLayout) unflatten(row value.Row) comp {
	c := make(comp, len(l.offsets))
	for i := range l.offsets {
		if row[l.offsets[i]].Int == 0 {
			continue
		}
		r := make(value.Row, l.widths[i])
		copy(r, row[l.offsets[i]+1:l.offsets[i]+1+l.widths[i]])
		c[i] = r
	}
	return c
}

func (it *sortIter) open() (err error) {
	if err := it.input.open(); err != nil {
		return err
	}
	defer func() {
		if cerr := it.input.close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	it.layout = newCompLayout(it.ctx.q.Block)
	keys := make([]int, len(it.keys))
	desc := make([]bool, len(it.keys))
	for i, k := range it.keys {
		keys[i] = it.layout.pos(k.Col)
		desc[i] = k.Desc
	}
	res, err := xsort.Sort(xsort.Config{
		Pool: it.ctx.rt.Pool, Disk: it.ctx.rt.Disk,
		Keys: keys, Desc: desc, CountRSI: true,
		Budget: it.ctx.rt.Budget,
	}, func() (value.Row, bool, error) {
		c, ok, err := it.input.next()
		if err != nil || !ok {
			return nil, false, err
		}
		return it.layout.flatten(c), true, nil
	})
	if err != nil {
		return err
	}
	it.res = res
	return nil
}

func (it *sortIter) next() (comp, bool, error) {
	row, ok, err := it.res.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return it.layout.unflatten(row), true, nil
}

func (it *sortIter) close() error {
	if it.res != nil {
		it.res.Close()
	}
	return nil
}

// Cursor streams a planned query's output rows one at a time — the
// tuple-at-a-time host-language interface the paper's Section 2 describes
// (generated code returning tuples to PL/I or COBOL programs). Stats are
// finalized when the cursor closes or drains.
type Cursor struct {
	rt     *Runtime
	it     flatIter
	before storage.IOStatsSnapshot
	evals  int
	rows   int
	done   bool
	stats  *Stats
}

// OpenQuery begins streaming execution of a planned block (no host
// variables; use OpenQueryArgs otherwise).
func OpenQuery(rt *Runtime, q *plan.Query) (*Cursor, error) {
	return OpenQueryArgs(rt, q, nil)
}

// OpenQueryArgs begins streaming execution with host-variable values bound.
// A failed open releases any scans the plan managed to open before failing.
func OpenQueryArgs(rt *Runtime, q *plan.Query, args []value.Value) (*Cursor, error) {
	c := &Cursor{rt: rt, before: rt.Pool.Stats().Snapshot()}
	ctx := newBlockCtx(rt, q, &c.evals)
	if err := bindHostArgs(ctx, q, args); err != nil {
		return nil, err
	}
	it, err := ctx.buildFlat(q.Root)
	if err != nil {
		return nil, err
	}
	if err := it.open(); err != nil {
		it.close() // release partially-opened scans (e.g. a join's outer)
		return nil, err
	}
	c.it = it
	return c, nil
}

// Next returns the next output row; ok is false at end of results. An error
// finishes the cursor (scans released); at end of results a close error, if
// any, is surfaced in the final call.
func (c *Cursor) Next() (value.Row, bool, error) {
	if c.done {
		return nil, false, nil
	}
	row, ok, err := c.it.next()
	if err != nil {
		c.finish()
		return nil, false, err
	}
	if !ok {
		return nil, false, c.finish()
	}
	c.rows++
	return row, true, nil
}

// Close releases the cursor; safe to call at any point and idempotent. It
// returns the underlying close error the first time.
func (c *Cursor) Close() error {
	if !c.done {
		return c.finish()
	}
	return nil
}

func (c *Cursor) finish() error {
	c.done = true
	err := c.it.close()
	after := c.rt.Pool.Stats().Snapshot()
	c.stats = &Stats{IO: after.Sub(c.before), SubqueryEvals: c.evals, Rows: c.rows}
	return err
}

// Stats returns the measured execution statistics; valid after the cursor
// has drained or closed, nil before.
func (c *Cursor) Stats() *Stats { return c.stats }

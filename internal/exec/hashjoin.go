package exec

// The hash join operator: the third join method the optimizer costs. OPEN
// drains the build side (the plan's Inner) into an in-memory hash table
// keyed on the encoded join value — pre-sized from the optimizer's build
// cardinality estimate — then NEXT probes it with each outer row. Unlike
// merging scans it produces no order; the optimizer prefers it only when no
// interesting order pays downstream.

import (
	"systemr/internal/plan"
	"systemr/internal/storage"
	"systemr/internal/value"
)

type hashJoinOp struct {
	ctx   *blockCtx
	node  *plan.HashJoin
	outer *op // probe side
	inner *op // build side

	table map[string][]comp
	// buildRows and buildBytes are the measured build-side actuals EXPLAIN
	// ANALYZE reports against the estimate the table was pre-sized from.
	buildRows  int64
	buildBytes int64

	outerRead *batchReader
	curOuter  comp
	cur       []comp
	ci        int
}

func (it *hashJoinOp) open() error {
	it.table = make(map[string][]comp, int(it.node.BuildRows)+1)
	it.buildRows, it.buildBytes = 0, 0
	it.curOuter, it.cur, it.ci = nil, nil, 0
	if err := it.inner.Open(); err != nil {
		return err
	}
	build := it.ctx.newBatchReader(it.inner)
	for {
		c, ok, err := build.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := c[it.node.InnerCol.Rel][it.node.InnerCol.Col]
		if k.IsNull() {
			continue // NULL join keys match nothing
		}
		key := string(storage.EncodeRow(value.Row{k}))
		it.table[key] = append(it.table[key], c)
		it.buildRows++
		it.buildBytes += int64(len(key)) + compBytes(c)
	}
	// The build side is exhausted; release its scan before probing starts.
	if err := it.inner.Close(); err != nil {
		return err
	}
	if err := it.outer.Open(); err != nil {
		return err
	}
	if it.outerRead == nil {
		it.outerRead = it.ctx.newBatchReader(it.outer)
	} else {
		it.outerRead.reset()
	}
	return nil
}

func (it *hashJoinOp) next() (comp, bool, error) {
	for {
		if it.ci < len(it.cur) {
			c := mergeComp(it.curOuter, it.cur[it.ci])
			it.ci++
			keep, err := it.ctx.applyResidual(c, it.node.Residual)
			if err != nil {
				return nil, false, err
			}
			if keep {
				return c, true, nil
			}
			continue
		}
		oc, ok, err := it.outerRead.next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := oc[it.node.OuterCol.Rel][it.node.OuterCol.Col]
		if k.IsNull() {
			continue
		}
		it.cur = it.table[string(storage.EncodeRow(value.Row{k}))]
		it.ci = 0
		it.curOuter = oc
	}
}

func (it *hashJoinOp) nextBatch(b *Batch) error {
	for !b.Full() {
		c, ok, err := it.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b.Append(c)
	}
	return nil
}

func (it *hashJoinOp) close() error {
	it.table, it.cur, it.curOuter = nil, nil, nil
	firstErr := it.outer.Close()
	if err := it.inner.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// compBytes estimates the retained bytes of a buffered composite row.
func compBytes(c comp) int64 {
	var n int64
	for _, r := range c {
		if r != nil {
			n += 16 + 8*int64(len(r))
		}
	}
	return n
}

// Package exec interprets the physical plans the optimizer emits — the
// analog of the code the paper's CODE GENERATOR produces from ASL trees. It
// drives RSS scans along the chosen access paths, re-opens nested-loop
// inners with join values bound into runtime parameters, merges ordered
// scans with inner-group buffering, sorts through temporary lists, and
// evaluates nested query blocks ("subroutines which return values to the
// predicates in which they occur", Section 2) with the Section 6
// re-evaluation cache for correlated subqueries.
package exec

import (
	"fmt"

	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// comp is a composite runtime row: one slot per FROM-list relation of the
// block, nil for relations not yet joined in.
type comp []value.Row

// merge combines two composites with disjoint filled slots.
func mergeComp(a, b comp) comp {
	out := make(comp, len(a))
	copy(out, a)
	for i, r := range b {
		if r != nil {
			out[i] = r
		}
	}
	return out
}

// evalExpr evaluates a resolved expression against the current composite
// row.
func (ctx *blockCtx) evalExpr(c comp, e sem.Expr) (value.Value, error) {
	switch x := e.(type) {
	case *sem.Col:
		if x.ID.Rel < 0 || x.ID.Rel >= len(c) || c[x.ID.Rel] == nil {
			return value.Value{}, fmt.Errorf("exec: column %s referenced before its relation is joined", x.Name)
		}
		row := c[x.ID.Rel]
		if x.ID.Col < 0 || x.ID.Col >= len(row) {
			return value.Value{}, fmt.Errorf("exec: column ordinal %d out of range for %s", x.ID.Col, x.Name)
		}
		return row[x.ID.Col], nil
	case *sem.Const:
		return x.Val, nil
	case *sem.Param:
		if x.ID >= len(ctx.params) {
			return value.Value{}, fmt.Errorf("exec: parameter $%d out of range", x.ID)
		}
		return ctx.params[x.ID], nil
	case *sem.AggRef:
		if ctx.aggVals == nil || x.Idx >= len(ctx.aggVals) {
			return value.Value{}, fmt.Errorf("exec: aggregate %s referenced outside aggregation", x.Name)
		}
		return ctx.aggVals[x.Idx], nil
	case *sem.Bin:
		return ctx.evalBin(c, x)
	case *sem.Not:
		v, err := ctx.evalBool(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		return boolVal(!v), nil
	case *sem.Neg:
		v, err := ctx.evalExpr(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		switch v.Kind {
		case value.KindNull:
			return value.Null(), nil
		case value.KindInt:
			return value.NewInt(-v.Int), nil
		case value.KindFloat:
			return value.NewFloat(-v.Float), nil
		default:
			return value.Value{}, fmt.Errorf("exec: cannot negate %s", v.Kind)
		}
	case *sem.Between:
		v, err := ctx.evalExpr(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		lo, err := ctx.evalExpr(c, x.Lo)
		if err != nil {
			return value.Value{}, err
		}
		hi, err := ctx.evalExpr(c, x.Hi)
		if err != nil {
			return value.Value{}, err
		}
		in := value.OpGe.Apply(v, lo) && value.OpLe.Apply(v, hi)
		if x.Negated {
			// NOT BETWEEN with NULL operands stays false, matching the
			// simplified NULL rule (any comparison with NULL is false).
			if v.IsNull() || lo.IsNull() || hi.IsNull() {
				return boolVal(false), nil
			}
			return boolVal(!in), nil
		}
		return boolVal(in), nil
	case *sem.InList:
		v, err := ctx.evalExpr(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return boolVal(false), nil
		}
		found := false
		for _, le := range x.List {
			lv, err := ctx.evalExpr(c, le)
			if err != nil {
				return value.Value{}, err
			}
			if value.OpEq.Apply(v, lv) {
				found = true
				break
			}
		}
		if x.Negated {
			return boolVal(!found), nil
		}
		return boolVal(found), nil
	case *sem.InSub:
		v, err := ctx.evalExpr(c, x.E)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return boolVal(false), nil
		}
		set, err := ctx.subSet(c, x.Sub)
		if err != nil {
			return value.Value{}, err
		}
		found := set[string(storage.EncodeRow(value.Row{v}))]
		if x.Negated {
			return boolVal(!found), nil
		}
		return boolVal(found), nil
	case *sem.ScalarSub:
		return ctx.subScalar(c, x.Sub)
	default:
		return value.Value{}, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func (ctx *blockCtx) evalBin(c comp, x *sem.Bin) (value.Value, error) {
	switch x.Op {
	case sem.OpAnd:
		l, err := ctx.evalBool(c, x.L)
		if err != nil {
			return value.Value{}, err
		}
		if !l {
			return boolVal(false), nil
		}
		r, err := ctx.evalBool(c, x.R)
		if err != nil {
			return value.Value{}, err
		}
		return boolVal(r), nil
	case sem.OpOr:
		l, err := ctx.evalBool(c, x.L)
		if err != nil {
			return value.Value{}, err
		}
		if l {
			return boolVal(true), nil
		}
		r, err := ctx.evalBool(c, x.R)
		if err != nil {
			return value.Value{}, err
		}
		return boolVal(r), nil
	}
	l, err := ctx.evalExpr(c, x.L)
	if err != nil {
		return value.Value{}, err
	}
	r, err := ctx.evalExpr(c, x.R)
	if err != nil {
		return value.Value{}, err
	}
	if x.Op.IsComparison() {
		return boolVal(x.Op.CmpOp().Apply(l, r)), nil
	}
	var opByte byte
	switch x.Op {
	case sem.OpAdd:
		opByte = '+'
	case sem.OpSub:
		opByte = '-'
	case sem.OpMul:
		opByte = '*'
	case sem.OpDiv:
		opByte = '/'
	default:
		return value.Value{}, fmt.Errorf("exec: unsupported operator %s", x.Op)
	}
	return value.Arith(opByte, l, r), nil
}

// evalBool evaluates a predicate with NULL treated as false.
func (ctx *blockCtx) evalBool(c comp, e sem.Expr) (bool, error) {
	v, err := ctx.evalExpr(c, e)
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

func truthy(v value.Value) bool {
	switch v.Kind {
	case value.KindInt:
		return v.Int != 0
	case value.KindFloat:
		return v.Float != 0
	default:
		return false
	}
}

func boolVal(b bool) value.Value {
	if b {
		return value.NewInt(1)
	}
	return value.NewInt(0)
}

// resolveBound turns an optimizer Bound into a concrete runtime value: a
// constant, a parameter already bound by the enclosing join or block, or a
// scalar subquery evaluated before the scan opens.
func (ctx *blockCtx) resolveBound(c comp, b sem.Bound) (value.Value, error) {
	switch b.Kind {
	case sem.BoundConst:
		return b.Val, nil
	case sem.BoundParam:
		if b.Param >= len(ctx.params) {
			return value.Value{}, fmt.Errorf("exec: bound parameter $%d out of range", b.Param)
		}
		return ctx.params[b.Param], nil
	case sem.BoundSub:
		return ctx.subScalar(c, b.Sub)
	default:
		return value.Value{}, fmt.Errorf("exec: unknown bound kind %d", b.Kind)
	}
}

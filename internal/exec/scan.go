package exec

// Leaf operators: the RSS access paths (segment scan and index scan) exposed
// as physical operators. Both remember the TID of the last tuple returned so
// DML can locate the stored tuple behind each qualifying row (tidSource).

import (
	"systemr/internal/plan"
	"systemr/internal/rss"
	"systemr/internal/storage"
	"systemr/internal/value"
)

type segScanOp struct {
	ctx  *blockCtx
	node *plan.SegScan
	scan *rss.SegmentScan
	tid  storage.TID
}

func (it *segScanOp) open() error {
	sargs, err := it.ctx.resolveSargs(nil, it.node.Sargs)
	if err != nil {
		return err
	}
	it.scan = &rss.SegmentScan{
		Table: it.node.Table, Pool: it.ctx.rt.Pool, Sargs: sargs,
		Part: it.node.Part, NParts: it.node.NParts,
		Stmt: it.ctx.rt.IO, Budget: it.ctx.rt.Budget,
		Snap: it.ctx.rt.Snap,
	}
	return it.scan.Open()
}

func (it *segScanOp) next() (comp, bool, error) {
	for {
		row, tid, ok, err := it.scan.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		c := make(comp, it.ctx.numRels())
		c[it.node.RelIdx] = row
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return nil, false, err
		}
		if keep {
			it.tid = tid
			return c, true, nil
		}
	}
}

// nextBatch fills b with qualifying rows, allocating composites from one
// per-call arena (consumers may retain the rows; the arena is never reused).
// The scan keeps its own per-tuple governor checkpoint.
func (it *segScanOp) nextBatch(b *Batch) error {
	nr := it.ctx.numRels()
	arena := make([]value.Row, b.Cap()*nr)
	off := 0
	for !b.Full() {
		row, tid, ok, err := it.scan.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		c := comp(arena[off : off+nr : off+nr])
		c[it.node.RelIdx] = row
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return err
		}
		if !keep {
			c[it.node.RelIdx] = nil // reuse the arena slot
			continue
		}
		off += nr
		it.tid = tid
		b.Append(c)
	}
	return nil
}

// close releases the scan; nulling the handle makes repeated closes (tree
// teardown after a nested-loop restart cycle) no-ops.
func (it *segScanOp) close() error {
	if it.scan != nil {
		s := it.scan
		it.scan = nil
		return s.Close()
	}
	return nil
}

func (it *segScanOp) lastTID() storage.TID { return it.tid }

type indexScanOp struct {
	ctx   *blockCtx
	node  *plan.IndexScan
	scan  *rss.IndexScan
	empty bool
	tid   storage.TID
}

func (it *indexScanOp) open() error {
	// A NULL key bound can match nothing (comparisons with NULL are false):
	// the scan is empty.
	lo, hi, empty, err := it.ctx.resolveKeyBounds(it.node)
	if err != nil {
		return err
	}
	it.empty = empty
	sargs, err := it.ctx.resolveSargs(nil, it.node.Sargs)
	if err != nil {
		return err
	}
	if it.empty {
		return nil
	}
	it.scan = &rss.IndexScan{
		Index: it.node.Index, Pool: it.ctx.rt.Pool,
		Lo: lo, LoInc: it.node.LoInc, Hi: hi, HiInc: it.node.HiInc,
		Sargs: sargs, Stmt: it.ctx.rt.IO, Budget: it.ctx.rt.Budget,
		Snap: it.ctx.rt.Snap,
	}
	return it.scan.Open()
}

func (it *indexScanOp) next() (comp, bool, error) {
	if it.empty {
		return nil, false, nil
	}
	for {
		row, tid, ok, err := it.scan.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		c := make(comp, it.ctx.numRels())
		c[it.node.RelIdx] = row
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return nil, false, err
		}
		if keep {
			it.tid = tid
			return c, true, nil
		}
	}
}

// nextBatch is the segment scan's batch fill for index scans: one per-call
// arena of composites, per-tuple governor checkpoints inside the scan.
func (it *indexScanOp) nextBatch(b *Batch) error {
	if it.empty {
		return nil
	}
	nr := it.ctx.numRels()
	arena := make([]value.Row, b.Cap()*nr)
	off := 0
	for !b.Full() {
		row, tid, ok, err := it.scan.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		c := comp(arena[off : off+nr : off+nr])
		c[it.node.RelIdx] = row
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return err
		}
		if !keep {
			c[it.node.RelIdx] = nil
			continue
		}
		off += nr
		it.tid = tid
		b.Append(c)
	}
	return nil
}

func (it *indexScanOp) close() error {
	if it.scan != nil {
		s := it.scan
		it.scan = nil
		return s.Close()
	}
	return nil
}

func (it *indexScanOp) lastTID() storage.TID { return it.tid }

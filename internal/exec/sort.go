package exec

// Sort operator: materializes its input into a temporary list ordered by the
// sort keys, flattening composites through the row codec so the temp pages
// hold real serialized tuples.

import (
	"systemr/internal/sem"
	"systemr/internal/value"
	"systemr/internal/xsort"
)

type sortOp struct {
	ctx    *blockCtx
	input  *op
	keys   []sem.OrderKey
	layout *compLayout
	res    *xsort.Result
	read   *batchReader
}

// compLayout maps (relation, column) to positions in a flattened row:
// [flag, cols...] per relation, concatenated.
type compLayout struct {
	offsets []int // start of each relation's section
	widths  []int // columns per relation
	total   int
}

func newCompLayout(blk *sem.Block) *compLayout {
	l := &compLayout{offsets: make([]int, len(blk.Rels)), widths: make([]int, len(blk.Rels))}
	pos := 0
	for i, r := range blk.Rels {
		l.offsets[i] = pos
		l.widths[i] = len(r.Table.Columns)
		pos += 1 + l.widths[i]
	}
	l.total = pos
	return l
}

func (l *compLayout) pos(id sem.ColumnID) int { return l.offsets[id.Rel] + 1 + id.Col }

func (l *compLayout) flatten(c comp) value.Row {
	out := make(value.Row, l.total)
	for i := range l.offsets {
		if c[i] == nil {
			out[l.offsets[i]] = value.NewInt(0)
			for j := 0; j < l.widths[i]; j++ {
				out[l.offsets[i]+1+j] = value.Null()
			}
			continue
		}
		out[l.offsets[i]] = value.NewInt(1)
		copy(out[l.offsets[i]+1:], c[i])
	}
	return out
}

func (l *compLayout) unflatten(row value.Row) comp {
	c := make(comp, len(l.offsets))
	for i := range l.offsets {
		if row[l.offsets[i]].Int == 0 {
			continue
		}
		r := make(value.Row, l.widths[i])
		copy(r, row[l.offsets[i]+1:l.offsets[i]+1+l.widths[i]])
		c[i] = r
	}
	return c
}

// open drains the input into the sorter. The input is closed as soon as it
// is consumed; the operator then streams from the sorted temporary list.
func (it *sortOp) open() (err error) {
	it.res = nil
	if err := it.input.Open(); err != nil {
		return err
	}
	defer func() {
		if cerr := it.input.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	it.layout = newCompLayout(it.ctx.q.Block)
	keys := make([]int, len(it.keys))
	desc := make([]bool, len(it.keys))
	for i, k := range it.keys {
		keys[i] = it.layout.pos(k.Col)
		desc[i] = k.Desc
	}
	// Drain the input through a batch adapter so its boundary is paid per
	// batch; the sorter keeps its own interior governor checkpoints.
	if it.read == nil {
		it.read = it.ctx.newBatchReader(it.input)
	} else {
		it.read.reset()
	}
	res, err := xsort.Sort(xsort.Config{
		Pool: it.ctx.rt.Pool, Disk: it.ctx.rt.Disk,
		Keys: keys, Desc: desc, CountRSI: true,
		Stmt: it.ctx.rt.IO, Budget: it.ctx.rt.Budget,
	}, func() (value.Row, bool, error) {
		c, ok, err := it.read.next()
		if err != nil || !ok {
			return nil, false, err
		}
		return it.layout.flatten(c), true, nil
	})
	if err != nil {
		return err
	}
	it.res = res
	return nil
}

func (it *sortOp) next() (comp, bool, error) {
	row, ok, err := it.res.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return it.layout.unflatten(row), true, nil
}

// nextBatch streams a batch from the sorted temporary list. The result
// reader checks the governor per tuple read back.
func (it *sortOp) nextBatch(b *Batch) error {
	for !b.Full() {
		c, ok, err := it.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b.Append(c)
	}
	return nil
}

func (it *sortOp) close() error {
	if it.res != nil {
		it.res.Close()
		it.res = nil
	}
	return it.input.Close()
}

package exec

// The parallel exchange operator. A plan.Parallel node partitions one
// segment scan's pages across N worker goroutines; each worker drives its
// own partitioned scan operator batch-at-a-time and the exchange merges the
// batches through a bounded channel. Attribution stays exact: every worker
// accounts its I/O into its own accumulator, Attached to the statement's, so
// statement totals and the governor's fetch budget see worker I/O while the
// executor's synchronous per-operator deltas (measured against the
// statement's own counter) never do. The shared governor budget is consulted
// by every worker (its counters are atomics), so cancellation and budget
// violations abort all workers promptly.

import (
	"fmt"
	"sync"

	"systemr/internal/plan"
	"systemr/internal/storage"
)

// buildParallel builds the exchange and its per-worker partitioned scans.
// Each worker gets a derived context accounting into its own attached
// accumulator and a copy of the scan node covering a disjoint 1/N share of
// the segment's pages. The worker operators are the exchange's child
// operators, so EXPLAIN ANALYZE renders per-partition actuals.
func (ctx *blockCtx) buildParallel(x *plan.Parallel) (*op, error) {
	scan, ok := x.Input.(*plan.SegScan)
	if !ok {
		return nil, fmt.Errorf("exec: parallel exchange over %T (only segment scans)", x.Input)
	}
	deg := x.Degree
	if deg < 1 {
		deg = 1
	}
	p := &parallelOp{ctx: ctx, node: x}
	kids := make([]*op, 0, deg)
	for w := 0; w < deg; w++ {
		acc := &storage.IOStats{}
		ctx.rt.ensureIO().Attach(acc)
		wctx := ctx.workerCtx(acc)
		part := *scan
		part.Part = w
		part.NParts = deg
		e := scan.Est()
		e.Rows /= float64(deg)
		e.Cost.Pages /= float64(deg)
		e.Cost.RSI /= float64(deg)
		part.SetEst(e)
		kop, err := wctx.build(&part)
		if err != nil {
			return nil, err
		}
		p.workers = append(p.workers, kop)
		p.accs = append(p.accs, acc)
		kids = append(kids, kop)
	}
	return ctx.newOp(x, p, kids...), nil
}

// parallelOp merges the workers' batch streams. Output order is
// nondeterministic across workers — the planner only plants the exchange
// where no downstream operator relies on input order.
type parallelOp struct {
	ctx     *blockCtx
	node    *plan.Parallel
	workers []*op
	accs    []*storage.IOStats

	ch     chan *Batch   // filled batches, bounded to one in flight per worker
	errs   chan error    // one slot per worker; first error wins
	done   chan struct{} // closed to stop workers blocked on ch
	stop   sync.Once     // guards closing done
	wg     *sync.WaitGroup
	err    error
	eof    bool
	opened bool

	// Row-at-a-time adapter state (cursor and DML paths).
	buf  *Batch
	bufI int
}

func (p *parallelOp) open() error {
	deg := len(p.workers)
	p.ch = make(chan *Batch, deg)
	p.errs = make(chan error, deg)
	p.done = make(chan struct{})
	p.stop = sync.Once{}
	p.wg = &sync.WaitGroup{}
	p.err = nil
	p.eof = false
	p.buf = nil
	p.bufI = 0
	p.opened = true
	if f := p.ctx.rt.OnParallel; f != nil {
		f(deg)
	}
	p.wg.Add(deg)
	for i := range p.workers {
		go p.runWorker(i)
	}
	// Close the merge channel once every worker exits, so the consumer sees
	// end of input; capture locals so a later re-open cannot race this run.
	go func(ch chan *Batch, wg *sync.WaitGroup) {
		wg.Wait()
		close(ch)
	}(p.ch, p.wg)
	return nil
}

// runWorker opens and drains partitioned scan i on its own goroutine. The
// worker operators stay owned by the exchange — close() releases every one
// of them on the caller's goroutine after the workers exit — so an erroring
// or stopped worker never leaves its scan behind. A worker checks the stop
// channel between batches, so a mid-stream close waits at most one batch
// fill per worker.
func (p *parallelOp) runWorker(i int) {
	defer p.wg.Done()
	if err := p.workers[i].Open(); err != nil {
		p.errs <- err
		return
	}
	for {
		b := NewBatch(p.ctx.batchN)
		if err := p.workers[i].NextBatch(b); err != nil {
			p.errs <- err
			return
		}
		if b.Len() == 0 {
			return
		}
		select {
		case p.ch <- b:
		case <-p.done:
			return
		}
	}
}

// next adapts the batch stream for row-at-a-time callers (cursors).
func (p *parallelOp) next() (comp, bool, error) {
	if p.buf == nil {
		p.buf = NewBatch(p.ctx.batchN)
		p.bufI = 0
	}
	for p.bufI >= p.buf.Len() {
		if err := p.nextBatch(p.buf); err != nil {
			return nil, false, err
		}
		p.bufI = 0
		if p.buf.Len() == 0 {
			return nil, false, nil
		}
	}
	c := p.buf.rows[p.bufI]
	p.bufI++
	return c, true, nil
}

// nextBatch hands the consumer the next worker-filled batch (swapping its
// rows into b). The governor is consulted here as well as in every worker,
// so a consumer blocked on a slow exchange still observes cancellation.
func (p *parallelOp) nextBatch(b *Batch) error {
	if err := p.ctx.rt.Budget.Tick(); err != nil {
		return err
	}
	if p.err != nil {
		return p.err
	}
	if p.eof {
		return nil
	}
	wb, ok := <-p.ch
	if !ok {
		select {
		case err := <-p.errs:
			p.err = err
			return err
		default:
		}
		p.eof = true
		return nil
	}
	b.rows = wb.rows
	return nil
}

// close stops the workers, waits for them to exit, then closes the worker
// operators on the caller's goroutine (releasing their scans and making
// their stats safe to read).
func (p *parallelOp) close() error {
	if !p.opened {
		return nil
	}
	p.opened = false
	p.stop.Do(func() { close(p.done) })
	p.wg.Wait()
	var first error
	for _, w := range p.workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// workerFetches sums the I/O the workers posted into their own accumulators;
// the op wrapper folds it into the exchange's inclusive Stats.
func (p *parallelOp) workerFetches() int64 {
	var n int64
	for _, a := range p.accs {
		n += a.LocalFetchCount()
	}
	return n
}

package exec

// The unified physical operator tree. Every plan node executes as one
// Operator with the classic OPEN/NEXT/CLOSE protocol; a single builder maps
// plan.Nodes to operators, and a shared instrumentation wrapper around every
// operator measures actual rows, NEXT calls, attributed page fetches
// (buffer-pool counter deltas around each call), and wall time — the
// per-operator feedback EXPLAIN ANALYZE reports against the optimizer's
// Table 1 / Table 2 estimates. The wrapper is also the single place the
// statement execution governor is consulted inside the executor: every row
// crossing an operator boundary is a governor checkpoint (the RSS scans and
// the sorter keep their own interior checkpoints so even operators that
// examine many tuples per row returned abort promptly).

import (
	"fmt"
	"time"

	"systemr/internal/plan"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// OpStats is one operator's measured execution: the actuals column of
// EXPLAIN ANALYZE. Fetches and Elapsed are inclusive of the operator's
// children (a child's Next runs inside its parent's); self-attribution is
// inclusive minus the sum of the children, computed at rendering time.
// Fetches are deltas of the statement's own counter (with subquery
// evaluations excluded), so a concurrent statement's I/O never appears here.
type OpStats struct {
	// Opens counts Open calls — re-opens of a nested-loop inner make this
	// the join's loop count.
	Opens int64
	// Nexts counts Next calls, including the final empty one.
	Nexts int64
	// Rows counts rows the operator returned.
	Rows int64
	// Fetches counts buffer-pool page fetches observed during the
	// operator's Open and Next calls, children included.
	Fetches int64
	// Elapsed is wall time spent inside Open and Next, children included.
	Elapsed time.Duration
}

// Operator is the executor's single physical operator interface. Open may be
// called again after Close to restart the operator under the current
// parameter bindings (how a nested-loop join rescans its inner relation);
// Close is idempotent and must release every resource on any exit path,
// including a partially failed Open. Stats accumulate across restarts.
// A single operator instance is driven through either Next or NextBatch for
// the duration of a run, never a mix.
type Operator interface {
	Open() error
	Next() (comp, bool, error)
	// NextBatch fills b with up to its capacity of rows, resetting it first;
	// a batch shorter than capacity is permitted mid-stream, and an empty
	// batch means end of input. The boundary instrumentation (governor tick,
	// OpStats, fetch deltas, wall time) is paid once per batch.
	NextBatch(b *Batch) error
	Close() error
	// Plan returns the plan node this operator executes, carrying the
	// optimizer's estimated cost and cardinality.
	Plan() plan.Node
	// Stats returns the actuals measured so far.
	Stats() OpStats
	Children() []Operator
}

// opImpl is a concrete operator body. Implementations produce composite rows
// and leave instrumentation and governor checks to the op wrapper.
type opImpl interface {
	open() error
	next() (comp, bool, error)
	close() error
}

// tidSource is implemented by the scan operators so DML can locate the
// stored tuples behind the rows an access path returns.
type tidSource interface {
	lastTID() storage.TID
}

// op wraps a concrete operator with the shared boundary: OpStats accounting
// and the statement governor checkpoint. It is the only Operator
// implementation in the package.
type op struct {
	ctx   *blockCtx
	node  plan.Node
	impl  opImpl
	kids  []*op
	stats OpStats
}

func (o *op) Plan() plan.Node { return o.node }

// Stats returns the operator's measured actuals. Fetches folds in the I/O
// posted by parallel workers in this operator's subtree: workers post into
// their own accumulators (never the statement's own counter, keeping
// synchronous deltas race-free), so worker I/O is re-attributed at read
// time. The fold keeps the telescoping self = inclusive − children identity
// exact: a parallel exchange's workers are its child operators, measured
// against their own accumulators.
func (o *op) Stats() OpStats {
	s := o.stats
	s.Fetches += o.asyncFetches()
	return s
}

// asyncFetches sums the parallel-worker I/O in this operator's subtree.
func (o *op) asyncFetches() int64 {
	var n int64
	if p, ok := o.impl.(*parallelOp); ok {
		n += p.workerFetches()
	}
	for _, k := range o.kids {
		n += k.asyncFetches()
	}
	return n
}

func (o *op) Children() []Operator {
	out := make([]Operator, len(o.kids))
	for i, k := range o.kids {
		out[i] = k
	}
	return out
}

// Open (re)starts the operator: a full governor check, then the measured
// delegate call.
func (o *op) Open() error {
	if err := o.ctx.rt.Budget.Check(); err != nil {
		return err
	}
	start := time.Now()
	f0 := o.ctx.opFetchBase()
	err := o.impl.open()
	o.stats.Opens++
	o.stats.Fetches += o.ctx.opFetchBase() - f0
	o.stats.Elapsed += time.Since(start)
	return err
}

// Next returns the operator's next row. Every call is a governor checkpoint,
// so cancellation and budget violations surface at operator boundaries no
// matter which operator is doing the work.
func (o *op) Next() (c comp, ok bool, err error) {
	if err := o.ctx.rt.Budget.Tick(); err != nil {
		return nil, false, err
	}
	start := time.Now()
	f0 := o.ctx.opFetchBase()
	c, ok, err = o.impl.next()
	o.stats.Nexts++
	if ok {
		o.stats.Rows++
	}
	o.stats.Fetches += o.ctx.opFetchBase() - f0
	o.stats.Elapsed += time.Since(start)
	return c, ok, err
}

// NextBatch fills b with up to its capacity of rows, paying the boundary
// instrumentation once per batch. Bodies with a native batch fill are
// dispatched directly; any other body is served by a per-row fallback loop
// (which keeps a per-row governor tick, since the body has no interior
// checkpoints of its own at the batch boundary).
func (o *op) NextBatch(b *Batch) error {
	if err := o.ctx.rt.Budget.Tick(); err != nil {
		return err
	}
	start := time.Now()
	f0 := o.ctx.opFetchBase()
	var err error
	if bi, ok := o.impl.(batchImpl); ok {
		b.Reset()
		err = bi.nextBatch(b)
	} else {
		b.Reset()
		for !b.Full() {
			if terr := o.ctx.rt.Budget.Tick(); terr != nil {
				err = terr
				break
			}
			c, ok, nerr := o.impl.next()
			if nerr != nil {
				err = nerr
				break
			}
			if !ok {
				break
			}
			b.Append(c)
		}
	}
	// Preserve the Rows <= Nexts invariant: a batch of n rows counts as n
	// amortized Next calls; an empty batch is the final empty call.
	n := int64(b.Len())
	o.stats.Rows += n
	if n == 0 {
		o.stats.Nexts++
	} else {
		o.stats.Nexts += n
	}
	o.stats.Fetches += o.ctx.opFetchBase() - f0
	o.stats.Elapsed += time.Since(start)
	return err
}

func (o *op) Close() error { return o.impl.close() }

// selfFetches attributes page fetches to this operator alone: its inclusive
// delta minus its children's. Both sides come from Stats() so the identity
// holds through a parallel exchange (whose worker I/O is folded in there).
func (o *op) selfFetches() int64 {
	f := o.Stats().Fetches
	for _, k := range o.kids {
		f -= k.Stats().Fetches
	}
	return f
}

// newOp wraps impl for node with its child operators.
func (ctx *blockCtx) newOp(n plan.Node, impl opImpl, kids ...*op) *op {
	return &op{ctx: ctx, node: n, impl: impl, kids: kids}
}

// build constructs the operator for any plan node — the one builder behind
// queries, cursors, and DML tuple location.
func (ctx *blockCtx) build(n plan.Node) (*op, error) {
	switch x := n.(type) {
	case *plan.SegScan:
		return ctx.newOp(n, &segScanOp{ctx: ctx, node: x}), nil
	case *plan.IndexScan:
		return ctx.newOp(n, &indexScanOp{ctx: ctx, node: x}), nil
	case *plan.NLJoin:
		outer, err := ctx.build(x.Outer)
		if err != nil {
			return nil, err
		}
		inner, err := ctx.build(x.Inner)
		if err != nil {
			return nil, err
		}
		return ctx.newOp(n, &nlJoinOp{ctx: ctx, node: x, outer: outer, inner: inner}, outer, inner), nil
	case *plan.MergeJoin:
		outer, err := ctx.build(x.Outer)
		if err != nil {
			return nil, err
		}
		inner, err := ctx.build(x.Inner)
		if err != nil {
			return nil, err
		}
		return ctx.newOp(n, &mergeJoinOp{ctx: ctx, node: x, outer: outer, inner: inner}, outer, inner), nil
	case *plan.HashJoin:
		outer, err := ctx.build(x.Outer)
		if err != nil {
			return nil, err
		}
		inner, err := ctx.build(x.Inner)
		if err != nil {
			return nil, err
		}
		return ctx.newOp(n, &hashJoinOp{ctx: ctx, node: x, outer: outer, inner: inner}, outer, inner), nil
	case *plan.Parallel:
		return ctx.buildParallel(x)
	case *plan.Sort:
		in, err := ctx.build(x.Input)
		if err != nil {
			return nil, err
		}
		return ctx.newOp(n, &sortOp{ctx: ctx, input: in, keys: x.Keys}, in), nil
	case *plan.Project:
		in, err := ctx.build(x.Input)
		if err != nil {
			return nil, err
		}
		return ctx.newOp(n, &projectOp{ctx: ctx, input: in, exprs: x.Exprs}, in), nil
	case *plan.GroupAgg:
		in, err := ctx.build(x.Input)
		if err != nil {
			return nil, err
		}
		return ctx.newOp(n, &groupAggOp{ctx: ctx, input: in, node: x}, in), nil
	case *plan.Distinct:
		if !producesOutput(x.Input) {
			return nil, fmt.Errorf("exec: DISTINCT over non-output node %T", x.Input)
		}
		in, err := ctx.build(x.Input)
		if err != nil {
			return nil, err
		}
		return ctx.newOp(n, &distinctOp{ctx: ctx, input: in}, in), nil
	default:
		return nil, fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

// producesOutput reports whether n emits final output rows (single-slot
// composites) rather than relational composites.
func producesOutput(n plan.Node) bool {
	switch n.(type) {
	case *plan.Project, *plan.GroupAgg, *plan.Distinct:
		return true
	}
	return false
}

// buildRoot builds the block's whole operator tree, validating that the root
// produces output rows, and records it for EXPLAIN ANALYZE.
func (ctx *blockCtx) buildRoot() (*op, error) {
	if !producesOutput(ctx.q.Root) {
		return nil, fmt.Errorf("exec: node %T cannot produce output rows", ctx.q.Root)
	}
	root, err := ctx.build(ctx.q.Root)
	if err != nil {
		return nil, err
	}
	ctx.root = root
	return root, nil
}

// outComp wraps a final output row as a single-slot composite so the
// output-stage operators (projection, aggregation, duplicate elimination)
// share the one Operator interface; outRow unwraps it.
func outComp(r value.Row) comp { return comp{r} }

func outRow(c comp) value.Row { return c[0] }

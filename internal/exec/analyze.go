package exec

// EXPLAIN ANALYZE support: run a planned block and keep its instrumented
// operator tree, then render the optimizer's Table-1/Table-2 estimates next
// to the measured actuals, one operator per line. Page fetches and wall time
// are self-attributed (an operator's inclusive delta minus its children's),
// so the numbers in the tree sum to the statement totals.

import (
	"fmt"
	"strings"
	"time"

	"systemr/internal/plan"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// Analysis is the outcome of an instrumented execution: the plan, the
// operator tree holding per-operator actuals, how often each top-level
// subquery block was evaluated (and what it fetched), and the statement's
// measured I/O totals.
type Analysis struct {
	Query *plan.Query
	Root  Operator
	// SubEvals[i] counts evaluations of Query.Subs[i] (the same-value cache
	// of Section 6 makes this smaller than the candidate-tuple count).
	SubEvals []int
	// SubFetches[i] counts the statement-local page fetches spent inside
	// Query.Subs[i] across all of its evaluations (nested blocks included) —
	// I/O excluded from the enclosing operators' attribution.
	SubFetches []int64
	// IO is the statement's measured totals, from its own accumulator: the
	// quantities of COST = PAGE FETCHES + W*(RSI CALLS).
	IO storage.IOStatsSnapshot
}

// RunQueryAnalyze is RunQueryArgs keeping the instrumented operator tree for
// rendering. The Analysis is returned even when execution aborts (canceled,
// budget exceeded, storage fault), carrying the actuals up to the abort —
// nil only if the plan could not be built.
func RunQueryAnalyze(rt *Runtime, q *plan.Query, args []value.Value) ([]value.Row, *Stats, *Analysis, error) {
	rows, stats, ctx, err := runQuery(rt, q, args)
	if ctx == nil || ctx.root == nil {
		return rows, stats, nil, err
	}
	a := &Analysis{
		Query:      q,
		Root:       ctx.root,
		SubEvals:   make([]int, len(q.Subs)),
		SubFetches: make([]int64, len(q.Subs)),
		IO:         stats.IO,
	}
	for i, sp := range q.Subs {
		if st, ok := ctx.subs[sp.Sub]; ok {
			a.SubEvals[i] = st.evals
			a.SubFetches[i] = st.fetches
		}
	}
	return rows, stats, a, err
}

// Format renders the annotated plan tree. w is the optimizer's CPU weighting
// factor, used to collapse each node's estimated (pages, rsi) cost into the
// single COST number the paper's formula produces.
func (a *Analysis) Format(w float64) string {
	var b strings.Builder
	b.WriteString("QUERY BLOCK (main)\n")
	formatOp(&b, a.Root, 1, w)
	for i, sp := range a.Query.Subs {
		kind := "subquery"
		if sp.Sub.Correlated {
			kind = "correlated subquery"
		}
		times := "times"
		if a.SubEvals[i] == 1 {
			times = "time"
		}
		fmt.Fprintf(&b, "QUERY BLOCK (%s #%d)  [evaluated %d %s, fetches=%d; estimates only]\n",
			kind, sp.Sub.ID, a.SubEvals[i], times, a.SubFetches[i])
		formatEstOnly(&b, sp.Query)
	}
	fmt.Fprintf(&b, "statement: fetches=%d writes=%d rsi=%d cost=%.1f (W=%g)\n",
		a.IO.PageFetches, a.IO.PagesWritten, a.IO.RSICalls, a.IO.Cost(w), w)
	return b.String()
}

// formatOp writes one operator's estimate-vs-actual line and recurses.
func formatOp(b *strings.Builder, o Operator, depth int, w float64) {
	e := o.Plan().Est()
	s := o.Stats()
	fetches := s.Fetches
	elapsed := s.Elapsed
	for _, k := range o.Children() {
		ks := k.Stats()
		fetches -= ks.Fetches
		elapsed -= ks.Elapsed
	}
	// A parallel exchange's children run concurrently: the sum of their wall
	// times can exceed the parent's, so self time clamps at zero.
	if elapsed < 0 {
		elapsed = 0
	}
	fmt.Fprintf(b, "%s%s  {est rows=%.1f cost=%.1f | act rows=%d",
		strings.Repeat("  ", depth), o.Plan().Label(), e.Rows, e.Cost.Total(w), s.Rows)
	if s.Opens != 1 {
		fmt.Fprintf(b, " loops=%d", s.Opens)
	}
	fmt.Fprintf(b, " fetches=%d time=%s}", fetches, formatElapsed(elapsed))
	// The hash join reports its build side: the estimate its table was
	// pre-sized from against the rows (and bytes) actually buffered.
	if wrap, ok := o.(*op); ok {
		if hj, ok := wrap.impl.(*hashJoinOp); ok {
			fmt.Fprintf(b, " [build: est rows=%.1f act rows=%d mem=%dB]",
				hj.node.BuildRows, hj.buildRows, hj.buildBytes)
		}
	}
	b.WriteString("\n")
	for _, k := range o.Children() {
		formatOp(b, k, depth+1, w)
	}
}

// formatElapsed rounds wall time for display; sub-microsecond work shows as
// 0s only when truly zero, otherwise at microsecond granularity.
func formatElapsed(d time.Duration) string {
	if d > time.Millisecond {
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(time.Microsecond).String()
}

// formatEstOnly renders a nested block's plan with estimates alone: subquery
// blocks execute through fresh per-evaluation contexts, so no single
// operator tree holds their actuals.
func formatEstOnly(b *strings.Builder, q *plan.Query) {
	estNode(b, q.Root, 1)
	for _, sp := range q.Subs {
		kind := "subquery"
		if sp.Sub.Correlated {
			kind = "correlated subquery"
		}
		fmt.Fprintf(b, "QUERY BLOCK (%s #%d)  [estimates only]\n", kind, sp.Sub.ID)
		formatEstOnly(b, sp.Query)
	}
}

func estNode(b *strings.Builder, n plan.Node, depth int) {
	e := n.Est()
	fmt.Fprintf(b, "%s%s  {est rows=%.1f cost: %s}\n", strings.Repeat("  ", depth), n.Label(), e.Rows, e.Cost)
	for _, c := range n.Children() {
		estNode(b, c, depth+1)
	}
}

package exec

// Output-stage operators: projection, aggregation (GROUP BY on ordered
// input), and duplicate elimination. They emit final output rows as
// single-slot composites (outComp/outRow) so they share the one Operator
// interface with the relational operators below them.

import (
	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// projectOp evaluates the block's output expressions per composite row.
type projectOp struct {
	ctx   *blockCtx
	input *op
	exprs []sem.Expr
	read  *batchReader
}

func (it *projectOp) open() error {
	if err := it.input.Open(); err != nil {
		return err
	}
	if it.read == nil {
		it.read = it.ctx.newBatchReader(it.input)
	} else {
		it.read.reset()
	}
	return nil
}

func (it *projectOp) next() (comp, bool, error) {
	c, ok, err := it.read.next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(value.Row, len(it.exprs))
	for i, e := range it.exprs {
		v, err := it.ctx.evalExpr(c, e)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return outComp(out), true, nil
}

// nextBatch projects a batch at a time, allocating output rows and their
// single-slot composites from per-call arenas (consumers may retain rows).
func (it *projectOp) nextBatch(b *Batch) error {
	ne := len(it.exprs)
	rowArena := make([]value.Value, b.Cap()*ne)
	compArena := make([]value.Row, b.Cap())
	for !b.Full() {
		c, ok, err := it.read.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		out := value.Row(rowArena[:ne:ne])
		rowArena = rowArena[ne:]
		for i, e := range it.exprs {
			v, err := it.ctx.evalExpr(c, e)
			if err != nil {
				return err
			}
			out[i] = v
		}
		oc := comp(compArena[:1:1])
		compArena = compArena[1:]
		oc[0] = out
		b.Append(oc)
	}
	return nil
}

func (it *projectOp) close() error { return it.input.Close() }

// groupAggOp aggregates input already ordered on the grouping columns,
// emitting one output row per group (or exactly one row for a scalar
// aggregate over the whole input).
type groupAggOp struct {
	ctx   *blockCtx
	input *op
	node  *plan.GroupAgg

	curKey  value.Row
	curRep  comp // representative composite for group-column output values
	states  []aggState
	started bool
	done    bool
	pending comp // lookahead row belonging to the next group
}

func (it *groupAggOp) open() error {
	it.curKey, it.curRep, it.states = nil, nil, nil
	it.started, it.done = false, false
	it.pending = nil
	return it.input.Open()
}

func (it *groupAggOp) groupKey(c comp) value.Row {
	key := make(value.Row, len(it.node.GroupCols))
	for i, g := range it.node.GroupCols {
		key[i] = c[g.Rel][g.Col]
	}
	return key
}

func (it *groupAggOp) next() (comp, bool, error) {
	if it.done {
		return nil, false, nil
	}
	for {
		var c comp
		var ok bool
		var err error
		if it.pending != nil {
			c, ok = it.pending, true
			it.pending = nil
		} else {
			c, ok, err = it.input.Next()
			if err != nil {
				return nil, false, err
			}
		}
		if !ok {
			it.done = true
			if !it.started {
				if len(it.node.GroupCols) > 0 {
					return nil, false, nil // no input → no groups
				}
				// Scalar aggregate over empty input: one row (COUNT = 0,
				// SUM/AVG/MIN/MAX = NULL) — unless HAVING filters it.
				it.states = newAggStates(it.node.Aggs)
				row, keep, err := it.emit(make(comp, it.ctx.numRels()))
				if err != nil || !keep {
					return nil, false, err
				}
				return outComp(row), true, nil
			}
			row, keep, err := it.emit(it.curRep)
			if err != nil || !keep {
				return nil, false, err
			}
			return outComp(row), true, nil
		}
		if !it.started {
			it.started = true
			it.curKey = it.groupKey(c)
			it.curRep = c
			it.states = newAggStates(it.node.Aggs)
		} else if len(it.node.GroupCols) > 0 {
			key := it.groupKey(c)
			if value.CompareKey(key, it.curKey) != 0 {
				// Group boundary: emit the finished group (unless HAVING
				// filters it), start the next.
				row, keep, err := it.emit(it.curRep)
				if err != nil {
					return nil, false, err
				}
				it.curKey = key
				it.curRep = c
				it.states = newAggStates(it.node.Aggs)
				it.pending = c
				if err := it.accumulatePending(); err != nil {
					return nil, false, err
				}
				if keep {
					return outComp(row), true, nil
				}
				continue
			}
		}
		if err := it.accumulate(c); err != nil {
			return nil, false, err
		}
	}
}

// accumulatePending folds the lookahead row (first of the new group) into
// the fresh aggregate states.
func (it *groupAggOp) accumulatePending() error {
	c := it.pending
	it.pending = nil
	return it.accumulate(c)
}

func (it *groupAggOp) accumulate(c comp) error {
	for i, a := range it.node.Aggs {
		if a.Star {
			it.states[i].addRow()
			continue
		}
		v, err := it.ctx.evalExpr(c, a.Arg)
		if err != nil {
			return err
		}
		it.states[i].addValue(v)
	}
	return nil
}

// emit finalizes the current group: HAVING conjuncts filter it (ok=false),
// otherwise the block's output expressions are evaluated over the group's
// representative composite and the aggregate results.
func (it *groupAggOp) emit(rep comp) (value.Row, bool, error) {
	aggVals := make([]value.Value, len(it.states))
	for i := range it.states {
		aggVals[i] = it.states[i].finish(it.node.Aggs[i].Name)
	}
	it.ctx.aggVals = aggVals
	defer func() { it.ctx.aggVals = nil }()
	for _, h := range it.node.Having {
		ok, err := it.ctx.evalBool(rep, h)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
	out := make(value.Row, len(it.node.OutExprs))
	for i, e := range it.node.OutExprs {
		v, err := it.ctx.evalExpr(rep, e)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (it *groupAggOp) close() error { return it.input.Close() }

// aggState accumulates one aggregate over one group.
type aggState struct {
	star     bool  // COUNT(*): counts rows, not values
	rows     int64 // all rows
	count    int64 // non-NULL inputs
	sumI     int64
	sumFloat float64
	isFloat  bool
	min, max value.Value
}

func newAggStates(aggs []*sem.Agg) []aggState {
	states := make([]aggState, len(aggs))
	for i, a := range aggs {
		states[i].star = a.Star
	}
	return states
}

func (s *aggState) addRow() { s.rows++ }

func (s *aggState) addValue(v value.Value) {
	s.rows++
	if v.IsNull() {
		return
	}
	s.count++
	switch v.Kind {
	case value.KindInt:
		s.sumI += v.Int
		s.sumFloat += float64(v.Int)
	case value.KindFloat:
		s.isFloat = true
		s.sumFloat += v.Float
	}
	if s.count == 1 {
		s.min, s.max = v, v
		return
	}
	if value.Compare(v, s.min) < 0 {
		s.min = v
	}
	if value.Compare(v, s.max) > 0 {
		s.max = v
	}
}

func (s *aggState) finish(name string) value.Value {
	switch name {
	case "COUNT":
		// COUNT(*) counts rows; COUNT(expr) counts non-NULL values.
		if s.star {
			return value.NewInt(s.rows)
		}
		return value.NewInt(s.count)
	case "SUM":
		if s.count == 0 {
			return value.Null()
		}
		if s.isFloat {
			return value.NewFloat(s.sumFloat)
		}
		return value.NewInt(s.sumI)
	case "AVG":
		if s.count == 0 {
			return value.Null()
		}
		return value.NewFloat(s.sumFloat / float64(s.count))
	case "MIN":
		if s.count == 0 {
			return value.Null()
		}
		return s.min
	case "MAX":
		if s.count == 0 {
			return value.Null()
		}
		return s.max
	default:
		return value.Null()
	}
}

// distinctOp removes duplicate output rows. It hashes encoded rows and
// preserves input order; see DESIGN.md for the deviation from System R's
// sort-based duplicate elimination.
type distinctOp struct {
	ctx   *blockCtx
	input *op
	seen  map[string]bool
	read  *batchReader
}

func (it *distinctOp) open() error {
	it.seen = make(map[string]bool)
	if err := it.input.Open(); err != nil {
		return err
	}
	if it.read == nil {
		it.read = it.ctx.newBatchReader(it.input)
	} else {
		it.read.reset()
	}
	return nil
}

func (it *distinctOp) next() (comp, bool, error) {
	for {
		c, ok, err := it.read.next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := string(storage.EncodeRow(outRow(c)))
		if it.seen[key] {
			continue
		}
		it.seen[key] = true
		return c, true, nil
	}
}

// nextBatch fills b with distinct rows.
func (it *distinctOp) nextBatch(b *Batch) error {
	for !b.Full() {
		c, ok, err := it.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b.Append(c)
	}
	return nil
}

func (it *distinctOp) close() error { return it.input.Close() }

package exec

import (
	"strings"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/core"
	"systemr/internal/plan"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/storage"
	"systemr/internal/testutil"
	"systemr/internal/value"
)

type env struct {
	disk  *storage.Disk
	stats *storage.IOStats
	pool  *storage.BufferPool
	cat   *catalog.Catalog
	rt    *Runtime
}

func newEnv(t testing.TB) *env {
	t.Helper()
	testutil.AssertNoLeaks(t)
	disk := storage.NewDisk()
	stats := &storage.IOStats{}
	pool := storage.NewBufferPool(disk, 32, stats)
	return &env{
		disk: disk, stats: stats, pool: pool,
		cat: catalog.New(disk),
		rt:  &Runtime{Pool: pool, Disk: disk},
	}
}

func (e *env) exec(t testing.TB, query string, cfg core.Config) ([]value.Row, *Stats) {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	blk, err := sem.Analyze(st.(*sql.SelectStmt), e.cat)
	if err != nil {
		t.Fatalf("analyze %q: %v", query, err)
	}
	q, err := core.New(e.cat, cfg).Optimize(blk)
	if err != nil {
		t.Fatalf("optimize %q: %v", query, err)
	}
	rows, stats, err := RunQuery(e.rt, q)
	if err != nil {
		t.Fatalf("execute %q: %v\n%s", query, err, q.Explain())
	}
	return rows, stats
}

// loadPair loads L(K,V) and R(K,W) with controlled duplicate join keys.
func (e *env) loadPair(t testing.TB) {
	t.Helper()
	l, _ := e.cat.CreateTable("L", []catalog.Column{
		{Name: "K", Type: value.KindInt}, {Name: "V", Type: value.KindInt}}, "")
	r, _ := e.cat.CreateTable("R", []catalog.Column{
		{Name: "K", Type: value.KindInt}, {Name: "W", Type: value.KindInt}}, "")
	// L: keys 1,1,2,3 ; R: keys 1,2,2,5 → join rows: (1)×2 + (2)×2 = 4.
	for i, k := range []int64{1, 1, 2, 3} {
		rss.Insert(l, value.Row{value.NewInt(k), value.NewInt(int64(i))}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	}
	for i, k := range []int64{1, 2, 2, 5} {
		rss.Insert(r, value.Row{value.NewInt(k), value.NewInt(int64(100 + i))}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	}
	e.cat.CreateIndex("L_K", "L", []string{"K"}, false, false)
	e.cat.CreateIndex("R_K", "R", []string{"K"}, false, false)
	e.cat.UpdateStatistics()
}

func TestJoinDuplicateSemantics(t *testing.T) {
	for _, cfg := range []core.Config{
		{NestedLoopsOnly: true},
		{MergeOnly: true},
	} {
		e := newEnv(t)
		e.loadPair(t)
		rows, _ := e.exec(t, "SELECT L.V, R.W FROM L, R WHERE L.K = R.K", cfg)
		if len(rows) != 4 {
			t.Fatalf("cfg %+v: want 4 join rows, got %d: %v", cfg, len(rows), rows)
		}
		// Key 1 matches twice on the L side, key 2 twice on the R side.
		count := map[int64]int{}
		for _, r := range rows {
			count[r[0].Int]++
		}
		if count[0] != 1 || count[1] != 1 {
			t.Fatalf("duplicate outer keys mishandled: %v", rows)
		}
	}
}

func TestMergeJoinNullKeysMatchNothing(t *testing.T) {
	e := newEnv(t)
	l, _ := e.cat.CreateTable("L", []catalog.Column{{Name: "K", Type: value.KindInt}}, "")
	r, _ := e.cat.CreateTable("R", []catalog.Column{{Name: "K", Type: value.KindInt}}, "")
	rss.Insert(l, value.Row{value.Null()}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	rss.Insert(l, value.Row{value.NewInt(1)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	rss.Insert(r, value.Row{value.Null()}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	rss.Insert(r, value.Row{value.NewInt(1)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	e.cat.UpdateStatistics()
	for _, cfg := range []core.Config{{MergeOnly: true}, {NestedLoopsOnly: true}} {
		rows, _ := e.exec(t, "SELECT L.K FROM L, R WHERE L.K = R.K", cfg)
		if len(rows) != 1 {
			t.Fatalf("NULL keys must not join (cfg %+v): %v", cfg, rows)
		}
	}
}

func TestCorrelatedSubqueryCaching(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{
		{Name: "G", Type: value.KindInt}, {Name: "V", Type: value.KindInt}}, "")
	// 30 rows, G cycles 0,0,0,1,1,1,... (10 groups of 3, inserted in G
	// order so the correlated value repeats consecutively).
	for g := 0; g < 10; g++ {
		for i := 0; i < 3; i++ {
			rss.Insert(tab, value.Row{value.NewInt(int64(g)), value.NewInt(int64(g*3 + i))}, storage.FrozenXID, storage.NoPrevTID, e.disk)
		}
	}
	e.cat.CreateIndex("T_G", "T", []string{"G"}, false, true)
	e.cat.UpdateStatistics()

	// The outer scan delivers rows in G order (clustered index), so the
	// same-value cache of Section 6 re-evaluates once per distinct G.
	_, stats := e.exec(t,
		"SELECT V FROM T X WHERE V > (SELECT AVG(V) FROM T WHERE G = X.G)", core.Config{})
	if stats.SubqueryEvals != 10 {
		t.Fatalf("want 10 subquery evaluations (one per distinct G), got %d", stats.SubqueryEvals)
	}
}

func TestNonCorrelatedSubqueryEvaluatedOnce(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{{Name: "V", Type: value.KindInt}}, "")
	for i := 0; i < 50; i++ {
		rss.Insert(tab, value.Row{value.NewInt(int64(i))}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	}
	e.cat.UpdateStatistics()
	rows, stats := e.exec(t, "SELECT V FROM T WHERE V > (SELECT AVG(V) FROM T)", core.Config{})
	if len(rows) != 25 {
		t.Fatalf("want 25 rows, got %d", len(rows))
	}
	if stats.SubqueryEvals != 1 {
		t.Fatalf("non-correlated subquery must evaluate once, got %d", stats.SubqueryEvals)
	}
}

func TestScalarSubqueryCardinalityError(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{{Name: "V", Type: value.KindInt}}, "")
	rss.Insert(tab, value.Row{value.NewInt(1)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	rss.Insert(tab, value.Row{value.NewInt(2)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	e.cat.UpdateStatistics()
	st, _ := sql.Parse("SELECT V FROM T WHERE V = (SELECT V FROM T)")
	blk, err := sem.Analyze(st.(*sql.SelectStmt), e.cat)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(e.cat, core.Config{}).Optimize(blk)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunQuery(e.rt, q); err == nil || !strings.Contains(err.Error(), "returned 2 rows") {
		t.Fatalf("want cardinality error, got %v", err)
	}
}

func TestEmptyScalarSubqueryIsNull(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{{Name: "V", Type: value.KindInt}}, "")
	rss.Insert(tab, value.Row{value.NewInt(1)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	e.cat.UpdateStatistics()
	// Empty subquery → NULL → comparison false → no rows.
	rows, _ := e.exec(t, "SELECT V FROM T WHERE V = (SELECT V FROM T WHERE V = 99)", core.Config{})
	if len(rows) != 0 {
		t.Fatalf("NULL comparison must be false: %v", rows)
	}
}

func TestScalarAggregateOverEmptyInput(t *testing.T) {
	e := newEnv(t)
	e.cat.CreateTable("T", []catalog.Column{{Name: "V", Type: value.KindInt}}, "")
	e.cat.UpdateStatistics()
	rows, _ := e.exec(t, "SELECT COUNT(*), COUNT(V), SUM(V), AVG(V), MIN(V), MAX(V) FROM T", core.Config{})
	if len(rows) != 1 {
		t.Fatalf("scalar aggregate must yield one row, got %d", len(rows))
	}
	r := rows[0]
	if r[0].Int != 0 || r[1].Int != 0 {
		t.Fatalf("COUNTs over empty input: %v", r)
	}
	for i := 2; i < 6; i++ {
		if !r[i].IsNull() {
			t.Fatalf("aggregate %d over empty input must be NULL: %v", i, r)
		}
	}
}

func TestGroupedQueryOverEmptyInputHasNoRows(t *testing.T) {
	e := newEnv(t)
	e.cat.CreateTable("T", []catalog.Column{{Name: "G", Type: value.KindInt}, {Name: "V", Type: value.KindInt}}, "")
	e.cat.UpdateStatistics()
	rows, _ := e.exec(t, "SELECT G, COUNT(*) FROM T GROUP BY G", core.Config{})
	if len(rows) != 0 {
		t.Fatalf("no groups expected: %v", rows)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{{Name: "V", Type: value.KindInt}}, "")
	rss.Insert(tab, value.Row{value.NewInt(10)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	rss.Insert(tab, value.Row{value.Null()}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	rss.Insert(tab, value.Row{value.NewInt(20)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	e.cat.UpdateStatistics()
	rows, _ := e.exec(t, "SELECT COUNT(*), COUNT(V), SUM(V), AVG(V) FROM T", core.Config{})
	r := rows[0]
	if r[0].Int != 3 || r[1].Int != 2 || r[2].Int != 30 || r[3].Float != 15 {
		t.Fatalf("NULL-aware aggregates: %v", r)
	}
}

func TestDistinctPreservesOrder(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{{Name: "V", Type: value.KindInt}}, "")
	for _, v := range []int64{3, 1, 3, 2, 1, 2, 2} {
		rss.Insert(tab, value.Row{value.NewInt(v)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	}
	e.cat.UpdateStatistics()
	rows, _ := e.exec(t, "SELECT DISTINCT V FROM T ORDER BY V", core.Config{})
	if len(rows) != 3 {
		t.Fatalf("distinct: %v", rows)
	}
	for i, want := range []int64{1, 2, 3} {
		if rows[i][0].Int != want {
			t.Fatalf("distinct+order: %v", rows)
		}
	}
}

func TestSortSpillsThroughTempPages(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{
		{Name: "V", Type: value.KindInt}, {Name: "PAD", Type: value.KindString}}, "")
	pad := strings.Repeat("z", 200)
	for i := 0; i < 2000; i++ {
		rss.Insert(tab, value.Row{value.NewInt(int64((i * 7919) % 2000)), value.NewString(pad)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	}
	e.cat.UpdateStatistics()
	rows, stats := e.exec(t, "SELECT V FROM T ORDER BY V", core.Config{BufferPages: 8})
	if len(rows) != 2000 {
		t.Fatalf("row count %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Int > rows[i][0].Int {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if stats.IO.PagesWritten == 0 {
		t.Fatal("a large sort must write temporary pages")
	}
}

func TestNLJoinRebindsParameters(t *testing.T) {
	e := newEnv(t)
	e.loadPair(t)
	// Force NL with the index on R: every outer row re-opens the inner scan
	// with its own key, so results must pair correctly.
	rows, _ := e.exec(t, "SELECT L.K, R.K FROM L, R WHERE L.K = R.K", core.Config{NestedLoopsOnly: true})
	for _, r := range rows {
		if r[0].Int != r[1].Int {
			t.Fatalf("parameter rebinding broken: %v", r)
		}
	}
}

func TestProjectionExpressions(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{
		{Name: "A", Type: value.KindInt}, {Name: "B", Type: value.KindFloat}}, "")
	rss.Insert(tab, value.Row{value.NewInt(7), value.NewFloat(2.5)}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	e.cat.UpdateStatistics()
	rows, _ := e.exec(t, "SELECT A * 2 + 1, B / 0, -A FROM T", core.Config{})
	r := rows[0]
	if r[0].Int != 15 {
		t.Fatalf("arith: %v", r)
	}
	if !r[1].IsNull() {
		t.Fatalf("division by zero must be NULL: %v", r)
	}
	if r[2].Int != -7 {
		t.Fatalf("negation: %v", r)
	}
}

func TestPredContext(t *testing.T) {
	e := newEnv(t)
	tab, _ := e.cat.CreateTable("T", []catalog.Column{{Name: "V", Type: value.KindInt}}, "")
	for i := 0; i < 10; i++ {
		rss.Insert(tab, value.Row{value.NewInt(int64(i))}, storage.FrozenXID, storage.NoPrevTID, e.disk)
	}
	e.cat.UpdateStatistics()
	st, _ := sql.Parse("DELETE FROM T WHERE V >= (SELECT AVG(V) FROM T)")
	blk, err := sem.AnalyzeDelete(st.(*sql.DeleteStmt), e.cat)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(e.cat, core.Config{}).Optimize(blk)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPredContext(e.rt, q)
	matches := 0
	for i := 0; i < 10; i++ {
		ok, err := pc.Matches(value.Row{value.NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			matches++
		}
	}
	if matches != 5 { // AVG = 4.5 → V in {5,6,7,8,9}
		t.Fatalf("matches = %d, want 5", matches)
	}
}

func TestExplainMatchesExecutionShape(t *testing.T) {
	e := newEnv(t)
	e.loadPair(t)
	st, _ := sql.Parse("SELECT L.V FROM L, R WHERE L.K = R.K AND R.W > 100")
	blk, _ := sem.Analyze(st.(*sql.SelectStmt), e.cat)
	q, err := core.New(e.cat, core.Config{}).Optimize(blk)
	if err != nil {
		t.Fatal(err)
	}
	out := q.Explain()
	if !strings.Contains(out, "JOIN") || !strings.Contains(out, "PROJECT") {
		t.Fatalf("explain shape:\n%s", out)
	}
	if _, _, err := RunQuery(e.rt, q); err != nil {
		t.Fatal(err)
	}
}

func TestCompLayoutRoundTrip(t *testing.T) {
	blk := &sem.Block{Rels: []*sem.RelRef{
		{Idx: 0, Table: &catalog.Table{Columns: make([]catalog.Column, 2)}},
		{Idx: 1, Table: &catalog.Table{Columns: make([]catalog.Column, 3)}},
	}}
	l := newCompLayout(blk)
	c := comp{
		value.Row{value.NewInt(1), value.NewString("x")},
		nil,
	}
	flat := l.flatten(c)
	if len(flat) != l.total {
		t.Fatalf("flat width %d != %d", len(flat), l.total)
	}
	back := l.unflatten(flat)
	if back[1] != nil {
		t.Fatal("missing slot must stay nil")
	}
	if value.Compare(back[0][0], c[0][0]) != 0 || value.Compare(back[0][1], c[0][1]) != 0 {
		t.Fatalf("round trip: %v", back)
	}
	if l.pos(sem.ColumnID{Rel: 1, Col: 2}) != 3+1+2 {
		t.Fatalf("pos: %d", l.pos(sem.ColumnID{Rel: 1, Col: 2}))
	}
}

func TestManyJoinKeysStress(t *testing.T) {
	e := newEnv(t)
	l, _ := e.cat.CreateTable("L", []catalog.Column{{Name: "K", Type: value.KindInt}}, "")
	r, _ := e.cat.CreateTable("R", []catalog.Column{{Name: "K", Type: value.KindInt}}, "")
	// L: every key 0..49 three times; R: every even key twice.
	for rep := 0; rep < 3; rep++ {
		for k := 0; k < 50; k++ {
			rss.Insert(l, value.Row{value.NewInt(int64(k))}, storage.FrozenXID, storage.NoPrevTID, e.disk)
		}
	}
	for rep := 0; rep < 2; rep++ {
		for k := 0; k < 50; k += 2 {
			rss.Insert(r, value.Row{value.NewInt(int64(k))}, storage.FrozenXID, storage.NoPrevTID, e.disk)
		}
	}
	e.cat.CreateIndex("L_K", "L", []string{"K"}, false, false)
	e.cat.CreateIndex("R_K", "R", []string{"K"}, false, false)
	e.cat.UpdateStatistics()
	want := 25 * 3 * 2
	for _, cfg := range []core.Config{{MergeOnly: true}, {NestedLoopsOnly: true}, {}} {
		rows, _ := e.exec(t, "SELECT L.K FROM L, R WHERE L.K = R.K", cfg)
		if len(rows) != want {
			t.Fatalf("cfg %+v: %d rows, want %d", cfg, len(rows), want)
		}
	}
}

func TestRunQueryStatsPopulated(t *testing.T) {
	e := newEnv(t)
	e.loadPair(t)
	_, stats := e.exec(t, "SELECT L.V FROM L WHERE K = 1", core.Config{})
	if stats.Rows != 2 || stats.IO.RSICalls == 0 || stats.IO.LogicalReads == 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestUnsupportedPlanNodeError(t *testing.T) {
	ctx := &blockCtx{q: &plan.Query{Block: &sem.Block{}, Root: &plan.SegScan{}}}
	if _, err := ctx.buildRoot(); err == nil {
		t.Fatal("SegScan at root must be rejected")
	}
	if _, err := ctx.build(nil); err == nil {
		t.Fatal("unknown plan node must be rejected")
	}
	if _, err := ctx.build(&plan.Distinct{Input: &plan.SegScan{}}); err == nil {
		t.Fatal("DISTINCT over a non-output node must be rejected")
	}
}

func TestMergeJoinResidualPredicates(t *testing.T) {
	e := newEnv(t)
	e.loadPair(t)
	rows, _ := e.exec(t,
		"SELECT L.V, R.W FROM L, R WHERE L.K = R.K AND L.V + R.W > 102", core.Config{MergeOnly: true})
	for _, r := range rows {
		if r[0].Int+r[1].Int <= 102 {
			t.Fatalf("residual not applied: %v", r)
		}
	}
	if len(rows) == 0 {
		t.Fatal("expected surviving rows")
	}
}

func TestCursorStreamsAndStats(t *testing.T) {
	e := newEnv(t)
	e.loadPair(t)
	st, _ := sql.Parse("SELECT L.V FROM L, R WHERE L.K = R.K")
	blk, _ := sem.Analyze(st.(*sql.SelectStmt), e.cat)
	q, err := core.New(e.cat, core.Config{}).Optimize(blk)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := OpenQuery(e.rt, q)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Stats() != nil {
		t.Fatal("stats must be nil before drain")
	}
	n := 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("streamed %d rows", n)
	}
	st2 := cur.Stats()
	if st2 == nil || st2.Rows != 4 || st2.IO.RSICalls == 0 {
		t.Fatalf("cursor stats: %+v", st2)
	}
	// Next after end stays closed.
	if _, ok, _ := cur.Next(); ok {
		t.Fatal("cursor must stay exhausted")
	}
	cur.Close() // idempotent

	// Early close finalizes stats.
	cur2, _ := OpenQuery(e.rt, q)
	cur2.Next()
	cur2.Close()
	if cur2.Stats() == nil {
		t.Fatal("early close must finalize stats")
	}
}

func TestCollectTIDsViaIndexPath(t *testing.T) {
	e := newEnv(t)
	e.loadPair(t)
	st, _ := sql.Parse("DELETE FROM R WHERE K = 2")
	blk, err := sem.AnalyzeDelete(st.(*sql.DeleteStmt), e.cat)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(e.cat, core.Config{}).Optimize(blk)
	if err != nil {
		t.Fatal(err)
	}
	tids, rows, err := CollectTIDs(e.rt, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 2 || len(rows) != 2 {
		t.Fatalf("collected %d tids", len(tids))
	}
	for _, r := range rows {
		if r[0].Int != 2 {
			t.Fatalf("wrong row collected: %v", r)
		}
	}
	// Residual-only predicate (non-sargable) still collects correctly.
	st, _ = sql.Parse("DELETE FROM R WHERE K + 0 = 2")
	blk, _ = sem.AnalyzeDelete(st.(*sql.DeleteStmt), e.cat)
	q, _ = core.New(e.cat, core.Config{}).Optimize(blk)
	tids2, _, err := CollectTIDs(e.rt, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids2) != 2 {
		t.Fatalf("residual path collected %d", len(tids2))
	}
}

// Close is idempotent: a second Close returns nil and keeps the statistics
// snapshot taken by the first one (finish must not run twice).
func TestCursorCloseIdempotent(t *testing.T) {
	e := newEnv(t)
	e.loadPair(t)
	st, err := sql.Parse("SELECT K, V FROM L")
	if err != nil {
		t.Fatal(err)
	}
	blk, err := sem.Analyze(st.(*sql.SelectStmt), e.cat)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(e.cat, core.Config{}).Optimize(blk)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := OpenQuery(e.rt, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cur.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	first := cur.Stats()
	if first == nil {
		t.Fatal("stats not published at close")
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if cur.Stats() != first {
		t.Fatal("second Close replaced the statistics snapshot")
	}
	if _, ok, err := cur.Next(); ok || err != nil {
		t.Fatalf("Next after close: ok=%v err=%v", ok, err)
	}
}

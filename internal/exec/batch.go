package exec

// Batch-oriented execution. The classic tuple-at-a-time Volcano protocol
// pays the instrumented operator boundary — a governor tick, two wall-clock
// reads, and two statement-counter reads — once per row. NextBatch moves
// rows across that boundary a batch at a time, so the boundary cost is
// amortized over DefaultBatchSize rows while the interior operators keep
// their own governor checkpoints (scans check per tuple examined, exactly as
// before).
//
// Every operator instance is driven through exactly one protocol per run:
// block execution drives the root with NextBatch, and composite operators
// read their children through batchReaders; the row-at-a-time Next remains
// for cursors, DML tuple location, and subquery evaluation, and a fallback
// adapter in the op wrapper serves NextBatch for any operator body without a
// native batch implementation.

// DefaultBatchSize is the number of rows an operator aims to move per
// NextBatch call when the runtime does not configure a size.
const DefaultBatchSize = 256

// Batch is a reusable buffer of composite rows. The backing array is reused
// across NextBatch calls; the rows themselves are freshly allocated by the
// producing operator (from per-call arenas), so a consumer may retain them
// across batches — merge-join groups and nested-loop outer rows depend on
// that.
type Batch struct {
	rows []comp
}

// NewBatch creates a batch with capacity n (the target rows per fill).
func NewBatch(n int) *Batch {
	if n < 1 {
		n = 1
	}
	return &Batch{rows: make([]comp, 0, n)}
}

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return len(b.rows) }

// Cap returns the batch's target fill size.
func (b *Batch) Cap() int { return cap(b.rows) }

// Full reports whether the batch reached its target size.
func (b *Batch) Full() bool { return len(b.rows) == cap(b.rows) }

// Reset empties the batch, keeping its backing array.
func (b *Batch) Reset() { b.rows = b.rows[:0] }

// Append adds one row.
func (b *Batch) Append(c comp) { b.rows = append(b.rows, c) }

// Row returns row i.
func (b *Batch) Row(i int) comp { return b.rows[i] }

// batchImpl is implemented by operator bodies with a native batch fill; the
// op wrapper dispatches NextBatch to it, falling back to a per-row loop
// otherwise. On error the batch's contents are undefined.
type batchImpl interface {
	nextBatch(b *Batch) error
}

// batchReader adapts a child operator's NextBatch stream back to one-row
// reads for a composite operator's interior logic: rows cross the child's
// instrumented boundary a batch at a time and are then served out of the
// buffer. src is the concrete wrapper (not the Operator interface) so the
// governor checkpoint inside NextBatch is statically visible to sysrcheck.
type batchReader struct {
	src  *op
	buf  *Batch
	i    int
	done bool
}

func (ctx *blockCtx) newBatchReader(src *op) *batchReader {
	return &batchReader{src: src, buf: NewBatch(ctx.batchN)}
}

// reset discards buffered rows; callers reset after re-opening src (a
// nested-loop inner) or before a fresh drain.
func (r *batchReader) reset() {
	r.buf.Reset()
	r.i = 0
	r.done = false
}

// next serves one row, refilling from src as needed.
func (r *batchReader) next() (comp, bool, error) {
	for r.i >= r.buf.Len() {
		if r.done {
			return nil, false, nil
		}
		if err := r.src.NextBatch(r.buf); err != nil {
			return nil, false, err
		}
		r.i = 0
		if r.buf.Len() == 0 {
			r.done = true
			return nil, false, nil
		}
	}
	c := r.buf.rows[r.i]
	r.i++
	return c, true, nil
}

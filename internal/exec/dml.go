package exec

// Tuple location for DELETE and UPDATE: "Retrieval for data manipulation
// (UPDATE, DELETE) is treated similarly" (Section 1) — the WHERE clause is
// analyzed as a single-relation query block and the optimizer's chosen
// access path (index probe or segment scan, with SARGs) locates the affected
// tuples. Targets are fully collected before any mutation, which also avoids
// re-visiting tuples the statement itself moves (the Halloween problem).

import (
	"fmt"

	"systemr/internal/plan"
	"systemr/internal/rss"
	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// CollectTIDs drives the access path of a planned single-relation block and
// returns the TIDs and images of every tuple satisfying all of the block's
// boolean factors.
func CollectTIDs(rt *Runtime, q *plan.Query) ([]storage.TID, []value.Row, error) {
	if len(q.Block.Rels) != 1 {
		return nil, nil, fmt.Errorf("exec: CollectTIDs requires a single-relation block, got %d relations", len(q.Block.Rels))
	}
	evals := 0
	ctx := newBlockCtx(rt, q, &evals)

	// Locate the access path under the wrapper nodes. DML blocks have no
	// aggregation; the plan is Project(scan), possibly with a sort the DML
	// caller does not need.
	n := q.Root
walk:
	for {
		switch x := n.(type) {
		case *plan.Project:
			n = x.Input
		case *plan.Sort:
			n = x.Input
		case *plan.Distinct:
			n = x.Input
		default:
			break walk
		}
	}

	var scan rss.Scan
	var relIdx int
	var residual []sem.Expr
	switch leaf := n.(type) {
	case *plan.SegScan:
		sargs, err := ctx.resolveSargs(nil, leaf.Sargs)
		if err != nil {
			return nil, nil, err
		}
		scan = &rss.SegmentScan{Table: leaf.Table, Pool: rt.Pool, Sargs: sargs, Budget: rt.Budget}
		relIdx, residual = leaf.RelIdx, leaf.Residual
	case *plan.IndexScan:
		lo, hi, empty, err := ctx.resolveKeyBounds(leaf)
		if err != nil {
			return nil, nil, err
		}
		if empty {
			return nil, nil, nil
		}
		sargs, err := ctx.resolveSargs(nil, leaf.Sargs)
		if err != nil {
			return nil, nil, err
		}
		scan = &rss.IndexScan{
			Index: leaf.Index, Pool: rt.Pool,
			Lo: lo, LoInc: leaf.LoInc, Hi: hi, HiInc: leaf.HiInc,
			Sargs: sargs, Budget: rt.Budget,
		}
		relIdx, residual = leaf.RelIdx, leaf.Residual
	default:
		return nil, nil, fmt.Errorf("exec: unexpected DML access path %T", n)
	}

	return collectFromScan(ctx, scan, relIdx, residual)
}

// collectFromScan drives the scan to completion, guaranteeing Close on every
// exit path (including panics) and surfacing its error.
func collectFromScan(ctx *blockCtx, scan rss.Scan, relIdx int, residual []sem.Expr) (tids []storage.TID, rows []value.Row, err error) {
	if err := scan.Open(); err != nil {
		return nil, nil, err
	}
	defer func() {
		if cerr := scan.Close(); cerr != nil && err == nil {
			tids, rows, err = nil, nil, cerr
		}
	}()
	c := make(comp, 1)
	for {
		row, tid, ok, err := scan.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return tids, rows, nil
		}
		c[relIdx] = row
		keep, err := ctx.applyResidual(c, residual)
		if err != nil {
			return nil, nil, err
		}
		if keep {
			tids = append(tids, tid)
			rows = append(rows, row)
		}
	}
}

// resolveKeyBounds evaluates an index scan's start/stop bounds, reporting
// empty=true when a bound is NULL (nothing can match).
func (ctx *blockCtx) resolveKeyBounds(leaf *plan.IndexScan) (lo, hi []value.Value, empty bool, err error) {
	conv := func(bs []sem.Bound) ([]value.Value, bool, error) {
		if len(bs) == 0 {
			return nil, false, nil
		}
		out := make([]value.Value, len(bs))
		for i, b := range bs {
			v, err := ctx.resolveBound(nil, b)
			if err != nil {
				return nil, false, err
			}
			if v.IsNull() {
				return nil, true, nil
			}
			out[i] = v
		}
		return out, false, nil
	}
	lo, emptyLo, err := conv(leaf.Lo)
	if err != nil {
		return nil, nil, false, err
	}
	hi, emptyHi, err := conv(leaf.Hi)
	if err != nil {
		return nil, nil, false, err
	}
	return lo, hi, emptyLo || emptyHi, nil
}

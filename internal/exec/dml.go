package exec

// Tuple location for DELETE and UPDATE: "Retrieval for data manipulation
// (UPDATE, DELETE) is treated similarly" (Section 1) — the WHERE clause is
// analyzed as a single-relation query block and the optimizer's chosen
// access path (index probe or segment scan, with SARGs) locates the affected
// tuples. Targets are fully collected before any mutation, which also avoids
// re-visiting tuples the statement itself moves (the Halloween problem).

import (
	"fmt"

	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// CollectTIDs drives the access path of a planned single-relation block and
// returns the TIDs and images of every tuple satisfying all of the block's
// boolean factors. The scan runs as a physical operator, so it goes through
// the same instrumented, governor-checked boundary as query execution.
func CollectTIDs(rt *Runtime, q *plan.Query) ([]storage.TID, []value.Row, error) {
	if len(q.Block.Rels) != 1 {
		return nil, nil, fmt.Errorf("exec: CollectTIDs requires a single-relation block, got %d relations", len(q.Block.Rels))
	}
	evals := 0
	ctx := newBlockCtx(rt, q, &evals)

	// Locate the access path under the wrapper nodes. DML blocks have no
	// aggregation; the plan is Project(scan), possibly with a sort the DML
	// caller does not need.
	n := q.Root
walk:
	for {
		switch x := n.(type) {
		case *plan.Project:
			n = x.Input
		case *plan.Sort:
			n = x.Input
		case *plan.Distinct:
			n = x.Input
		default:
			break walk
		}
	}

	switch n.(type) {
	case *plan.SegScan, *plan.IndexScan:
	default:
		return nil, nil, fmt.Errorf("exec: unexpected DML access path %T", n)
	}
	leaf, err := ctx.build(n)
	if err != nil {
		return nil, nil, err
	}
	return collectFromScan(leaf)
}

// collectFromScan drives the leaf operator to completion, guaranteeing Close
// on every exit path (including panics) and surfacing its error. The
// operator's residual predicates already filtered the rows; the TID of each
// surviving row comes from the scan's tidSource.
func collectFromScan(leaf *op) (tids []storage.TID, rows []value.Row, err error) {
	src, ok := leaf.impl.(tidSource)
	if !ok {
		return nil, nil, fmt.Errorf("exec: access path %T does not expose TIDs", leaf.impl)
	}
	relIdx := 0
	if seg, ok := leaf.node.(*plan.SegScan); ok {
		relIdx = seg.RelIdx
	} else if idx, ok := leaf.node.(*plan.IndexScan); ok {
		relIdx = idx.RelIdx
	}
	defer func() {
		if cerr := leaf.Close(); cerr != nil && err == nil {
			tids, rows, err = nil, nil, cerr
		}
	}()
	if err := leaf.Open(); err != nil {
		return nil, nil, err
	}
	for {
		c, ok, err := leaf.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return tids, rows, nil
		}
		tids = append(tids, src.lastTID())
		rows = append(rows, c[relIdx])
	}
}

// resolveKeyBounds evaluates an index scan's start/stop bounds, reporting
// empty=true when a bound is NULL (nothing can match).
func (ctx *blockCtx) resolveKeyBounds(leaf *plan.IndexScan) (lo, hi []value.Value, empty bool, err error) {
	conv := func(bs []sem.Bound) ([]value.Value, bool, error) {
		if len(bs) == 0 {
			return nil, false, nil
		}
		out := make([]value.Value, len(bs))
		for i, b := range bs {
			v, err := ctx.resolveBound(nil, b)
			if err != nil {
				return nil, false, err
			}
			if v.IsNull() {
				return nil, true, nil
			}
			out[i] = v
		}
		return out, false, nil
	}
	lo, emptyLo, err := conv(leaf.Lo)
	if err != nil {
		return nil, nil, false, err
	}
	hi, emptyHi, err := conv(leaf.Hi)
	if err != nil {
		return nil, nil, false, err
	}
	return lo, hi, emptyLo || emptyHi, nil
}

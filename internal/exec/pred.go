package exec

import (
	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/value"
)

// PredContext evaluates a single-relation block's predicates against
// candidate tuples — the executor support for DELETE and UPDATE, whose WHERE
// clauses are analyzed as query blocks (with full subquery machinery) but
// applied tuple-at-a-time while the storage layer walks the relation.
type PredContext struct {
	ctx *blockCtx
	n   int
}

// NewPredContext builds an evaluation context over a planned single-relation
// block. The plan's subquery blocks are available for evaluation; the join
// tree itself is not executed.
func NewPredContext(rt *Runtime, q *plan.Query) *PredContext {
	evals := 0
	return &PredContext{ctx: newBlockCtx(rt, q, &evals), n: len(q.Block.Rels)}
}

// Matches reports whether the row satisfies every boolean factor of the
// block.
func (pc *PredContext) Matches(row value.Row) (bool, error) {
	c := make(comp, pc.n)
	c[0] = row
	for _, f := range pc.ctx.q.Block.Factors {
		ok, err := pc.ctx.evalBool(c, f.Expr)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Eval evaluates an arbitrary resolved expression (an UPDATE SET right-hand
// side) against the row.
func (pc *PredContext) Eval(row value.Row, e sem.Expr) (value.Value, error) {
	c := make(comp, pc.n)
	c[0] = row
	return pc.ctx.evalExpr(c, e)
}

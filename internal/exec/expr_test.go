package exec

// Direct expression-evaluator coverage: arithmetic and predicate edge cases
// the differential tests only hit probabilistically.

import (
	"strings"
	"testing"

	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/value"
)

func evalCtx(params ...value.Value) *blockCtx {
	return &blockCtx{
		q:      &plan.Query{Block: &sem.Block{}, NumParams: len(params)},
		params: params,
		subs:   map[*sem.Subquery]*subState{},
	}
}

func c(v int64) sem.Expr    { return &sem.Const{Val: value.NewInt(v)} }
func cf(v float64) sem.Expr { return &sem.Const{Val: value.NewFloat(v)} }
func cs(s string) sem.Expr  { return &sem.Const{Val: value.NewString(s)} }
func cnull() sem.Expr       { return &sem.Const{Val: value.Null()} }

func mustEval(t *testing.T, e sem.Expr) value.Value {
	t.Helper()
	v, err := evalCtx().evalExpr(nil, e)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		e    sem.Expr
		want value.Value
	}{
		{&sem.Bin{Op: sem.OpAdd, L: c(2), R: c(3)}, value.NewInt(5)},
		{&sem.Bin{Op: sem.OpMul, L: c(2), R: cf(1.5)}, value.NewFloat(3)},
		{&sem.Bin{Op: sem.OpDiv, L: c(7), R: c(2)}, value.NewInt(3)},
		{&sem.Bin{Op: sem.OpDiv, L: c(7), R: c(0)}, value.Null()},
		{&sem.Bin{Op: sem.OpSub, L: cnull(), R: c(1)}, value.Null()},
		{&sem.Neg{E: c(5)}, value.NewInt(-5)},
		{&sem.Neg{E: cf(2.5)}, value.NewFloat(-2.5)},
		{&sem.Neg{E: cnull()}, value.Null()},
	}
	for _, tc := range cases {
		got := mustEval(t, tc.e)
		if got.Kind != tc.want.Kind || value.Compare(got, tc.want) != 0 {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
	if _, err := evalCtx().evalExpr(nil, &sem.Neg{E: cs("x")}); err == nil {
		t.Error("negating a string must error")
	}
}

func TestEvalPredicates(t *testing.T) {
	truthyCases := []sem.Expr{
		&sem.Bin{Op: sem.OpLt, L: c(1), R: c(2)},
		&sem.Bin{Op: sem.OpAnd, L: &sem.Bin{Op: sem.OpEq, L: c(1), R: c(1)}, R: &sem.Bin{Op: sem.OpNe, L: c(1), R: c(2)}},
		&sem.Bin{Op: sem.OpOr, L: &sem.Bin{Op: sem.OpEq, L: c(1), R: c(2)}, R: &sem.Bin{Op: sem.OpEq, L: c(3), R: c(3)}},
		&sem.Not{E: &sem.Bin{Op: sem.OpGt, L: c(1), R: c(2)}},
		&sem.Between{E: c(5), Lo: c(1), Hi: c(9)},
		&sem.Between{E: c(0), Lo: c(1), Hi: c(9), Negated: true},
		&sem.InList{E: cs("b"), List: []sem.Expr{cs("a"), cs("b")}},
		&sem.InList{E: c(9), List: []sem.Expr{c(1)}, Negated: true},
	}
	for _, e := range truthyCases {
		if v := mustEval(t, e); !truthy(v) {
			t.Errorf("%s should be true", e)
		}
	}
	falsyCases := []sem.Expr{
		&sem.Bin{Op: sem.OpEq, L: cnull(), R: cnull()}, // NULL = NULL is false
		&sem.Between{E: cnull(), Lo: c(1), Hi: c(2)},
		&sem.Between{E: cnull(), Lo: c(1), Hi: c(2), Negated: true}, // stays false with NULL
		&sem.InList{E: cnull(), List: []sem.Expr{cnull()}},
		&sem.InList{E: cnull(), List: []sem.Expr{c(1)}, Negated: true},
	}
	for _, e := range falsyCases {
		if v := mustEval(t, e); truthy(v) {
			t.Errorf("%s should be false", e)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right side of a short-circuited AND/OR is never evaluated: put an
	// out-of-range parameter there, which would error if touched.
	bad := &sem.Param{ID: 99}
	ctx := evalCtx()
	v, err := ctx.evalExpr(nil, &sem.Bin{Op: sem.OpAnd, L: &sem.Bin{Op: sem.OpEq, L: c(1), R: c(2)}, R: bad})
	if err != nil || truthy(v) {
		t.Fatalf("AND short-circuit: %v %v", v, err)
	}
	v, err = ctx.evalExpr(nil, &sem.Bin{Op: sem.OpOr, L: &sem.Bin{Op: sem.OpEq, L: c(1), R: c(1)}, R: bad})
	if err != nil || !truthy(v) {
		t.Fatalf("OR short-circuit: %v %v", v, err)
	}
	// Touched directly, it errors.
	if _, err := ctx.evalExpr(nil, bad); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad param: %v", err)
	}
}

func TestEvalColumnAndParam(t *testing.T) {
	blk := &sem.Block{}
	ctx := &blockCtx{
		q:      &plan.Query{Block: blk, NumParams: 1},
		params: []value.Value{value.NewInt(42)},
		subs:   map[*sem.Subquery]*subState{},
	}
	comp := comp{value.Row{value.NewString("hello")}}
	v, err := ctx.evalExpr(comp, &sem.Col{ID: sem.ColumnID{Rel: 0, Col: 0}, Typ: value.KindString})
	if err != nil || v.Str != "hello" {
		t.Fatalf("col eval: %v %v", v, err)
	}
	v, err = ctx.evalExpr(comp, &sem.Param{ID: 0})
	if err != nil || v.Int != 42 {
		t.Fatalf("param eval: %v %v", v, err)
	}
	// Column from a missing relation slot errors.
	if _, err := ctx.evalExpr(comp, &sem.Col{ID: sem.ColumnID{Rel: 3, Col: 0}}); err == nil {
		t.Fatal("missing relation slot must error")
	}
	// AggRef outside aggregation errors.
	if _, err := ctx.evalExpr(comp, &sem.AggRef{Idx: 0}); err == nil {
		t.Fatal("AggRef outside aggregation must error")
	}
}

func TestResolveBoundKinds(t *testing.T) {
	ctx := evalCtx(value.NewInt(7))
	v, err := ctx.resolveBound(nil, sem.Bound{Kind: sem.BoundConst, Val: value.NewInt(1)})
	if err != nil || v.Int != 1 {
		t.Fatal("const bound")
	}
	v, err = ctx.resolveBound(nil, sem.Bound{Kind: sem.BoundParam, Param: 0})
	if err != nil || v.Int != 7 {
		t.Fatal("param bound")
	}
	if _, err := ctx.resolveBound(nil, sem.Bound{Kind: sem.BoundParam, Param: 5}); err == nil {
		t.Fatal("out-of-range bound param must error")
	}
}

func TestMergeComp(t *testing.T) {
	a := comp{value.Row{value.NewInt(1)}, nil, nil}
	b := comp{nil, value.Row{value.NewInt(2)}, nil}
	m := mergeComp(a, b)
	if m[0] == nil || m[1] == nil || m[2] != nil {
		t.Fatalf("merge: %v", m)
	}
	// Inputs unchanged.
	if a[1] != nil || b[0] != nil {
		t.Fatal("mergeComp must not mutate inputs")
	}
}

package exec

// Nested query evaluation — Section 6. Non-correlated subqueries are
// evaluated once (on first reference; every later reference reuses the
// result, matching "the subquery needs to be evaluated only once ... before
// the top level query"). Correlated subqueries are re-evaluated per
// candidate tuple of the referencing block — except that the evaluation is
// made conditional on whether the referenced values changed since the
// previous candidate tuple: "if they are the same, the previous evaluation
// result can be used again", which pays off exactly when the referenced
// relation is ordered on the referenced column.

import (
	"fmt"

	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// subState caches one subquery's latest evaluation.
type subState struct {
	sp      *plan.SubPlan
	valid   bool
	lastKey []value.Value // correlation parameter values at last evaluation
	scalar  value.Value
	set     map[string]bool
	evals   int
	fetches int64 // statement-local page fetches spent across evaluations
}

// bindChildParams computes the child block's correlation parameter values
// from the current composite row and this block's own parameters.
func (ctx *blockCtx) bindChildParams(c comp, sub *sem.Subquery, n int) ([]value.Value, error) {
	params := make([]value.Value, n)
	for _, cr := range sub.Block.CorrelRefs {
		var v value.Value
		if cr.FromParam {
			if cr.ParentParam >= len(ctx.params) {
				return nil, fmt.Errorf("exec: correlation parameter $%d out of range", cr.ParentParam)
			}
			v = ctx.params[cr.ParentParam]
		} else {
			if c == nil || cr.FromCol.Rel >= len(c) || c[cr.FromCol.Rel] == nil {
				return nil, fmt.Errorf("exec: correlation column %d.%d unavailable", cr.FromCol.Rel, cr.FromCol.Col)
			}
			v = c[cr.FromCol.Rel][cr.FromCol.Col]
		}
		params[cr.ParamID] = v
	}
	return params, nil
}

func sameKey(a, b []value.Value, n int) bool {
	if a == nil {
		return false
	}
	for i := 0; i < n; i++ {
		if value.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// evaluate runs the subquery if its correlation values changed since the
// last evaluation (always runs the first time).
func (ctx *blockCtx) evaluate(c comp, sub *sem.Subquery) (*subState, error) {
	st, ok := ctx.subs[sub]
	if !ok {
		return nil, fmt.Errorf("exec: subquery #%d has no plan", sub.ID)
	}
	n := sub.Block.NumParams
	childParams, err := ctx.bindChildParams(c, sub, st.sp.Query.NumParams)
	if err != nil {
		return nil, err
	}
	if st.valid && sameKey(st.lastKey, childParams, n) {
		return st, nil
	}
	child := newBlockCtx(ctx.rt, st.sp.Query, ctx.evals)
	// The subquery-fetch tracker is shared down the nesting so every level's
	// operator attribution excludes the same evaluations.
	child.subFetches = ctx.subFetches
	sub0 := *ctx.subFetches
	f0 := ctx.fetchCount()
	copy(child.params, childParams)
	rows, err := child.run()
	// Everything this evaluation fetched — nested sub-subqueries included —
	// belongs to the subquery's block: exclude it from the enclosing
	// operator's delta exactly once (overwrite, don't add, so fetches a
	// nested evaluation already registered are not counted twice).
	delta := ctx.fetchCount() - f0
	*ctx.subFetches = sub0 + delta
	st.fetches += delta
	if err != nil {
		return nil, err
	}
	st.evals++
	if ctx.evals != nil {
		*ctx.evals++
	}
	st.valid = true
	st.lastKey = childParams
	if sub.Scalar {
		switch len(rows) {
		case 0:
			st.scalar = value.Null()
		case 1:
			st.scalar = rows[0][0]
		default:
			return nil, fmt.Errorf("exec: scalar subquery #%d returned %d rows", sub.ID, len(rows))
		}
	} else {
		st.set = make(map[string]bool, len(rows))
		for _, r := range rows {
			st.set[string(storage.EncodeRow(value.Row{r[0]}))] = true
		}
	}
	return st, nil
}

// subScalar returns the single value of a scalar subquery.
func (ctx *blockCtx) subScalar(c comp, sub *sem.Subquery) (value.Value, error) {
	st, err := ctx.evaluate(c, sub)
	if err != nil {
		return value.Value{}, err
	}
	return st.scalar, nil
}

// subSet returns the membership set of an IN subquery.
func (ctx *blockCtx) subSet(c comp, sub *sem.Subquery) (map[string]bool, error) {
	st, err := ctx.evaluate(c, sub)
	if err != nil {
		return nil, err
	}
	return st.set, nil
}

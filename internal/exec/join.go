package exec

// Join operators: nested loops and merging scans (Section 5). Both hold
// persistent child operators — the nested-loop inner is re-opened (not
// rebuilt) per outer tuple, so its OpStats accumulate across loops and its
// Opens count is the join's loop count.

import (
	"fmt"

	"systemr/internal/plan"
	"systemr/internal/value"
)

type nlJoinOp struct {
	ctx      *blockCtx
	node     *plan.NLJoin
	outer    *op
	inner    *op
	curOuter comp
	innerOn  bool // inner currently open

	// Children are read through batch adapters so their instrumented
	// boundaries are paid per batch; the inner's adapter is reset at each
	// re-open.
	outerRead *batchReader
	innerRead *batchReader
}

func (it *nlJoinOp) open() error {
	it.curOuter = nil
	it.innerOn = false
	if err := it.outer.Open(); err != nil {
		return err
	}
	if it.outerRead == nil {
		it.outerRead = it.ctx.newBatchReader(it.outer)
		it.innerRead = it.ctx.newBatchReader(it.inner)
	} else {
		it.outerRead.reset()
	}
	return nil
}

func (it *nlJoinOp) next() (comp, bool, error) {
	for {
		if it.curOuter == nil {
			oc, ok, err := it.outerRead.next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.curOuter = oc
			// Bind the outer tuple's join values into the parameters the
			// inner scan's start/stop keys and SARGs reference, then
			// (re-)open the inner — one inner scan per outer tuple, as the
			// nested-loops cost formula assumes. The previous inner scan is
			// closed first, and its close error propagates.
			for _, b := range it.node.Binds {
				row := oc[b.From.Rel]
				if row == nil {
					return nil, false, fmt.Errorf("exec: nested-loop bind from missing relation %d", b.From.Rel)
				}
				it.ctx.params[b.Param] = row[b.From.Col]
			}
			if it.innerOn {
				it.innerOn = false
				if err := it.inner.Close(); err != nil {
					return nil, false, err
				}
			}
			if err := it.inner.Open(); err != nil {
				return nil, false, err
			}
			it.innerOn = true
			it.innerRead.reset()
		}
		ic, ok, err := it.innerRead.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			it.curOuter = nil
			continue
		}
		c := mergeComp(it.curOuter, ic)
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return c, true, nil
		}
	}
}

// nextBatch fills b by running the join loop; the per-row work is the same,
// but rows cross this operator's own boundary a batch at a time.
func (it *nlJoinOp) nextBatch(b *Batch) error {
	for !b.Full() {
		c, ok, err := it.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b.Append(c)
	}
	return nil
}

// close releases both sides, returning the first error but always closing
// the outer even when the inner's close fails.
func (it *nlJoinOp) close() error {
	var firstErr error
	if it.innerOn {
		it.innerOn = false
		if err := it.inner.Close(); err != nil {
			firstErr = err
		}
	}
	if err := it.outer.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// mergeJoinOp synchronizes two scans ordered on the join columns,
// remembering the current inner join group so it is never rescanned
// ("remembering where matching join groups are located", Section 5).
type mergeJoinOp struct {
	ctx   *blockCtx
	node  *plan.MergeJoin
	outer *op
	inner *op

	curOuter  comp
	group     []comp
	groupKey  value.Value
	haveGroup bool
	gi        int
	lookahead comp
	innerDone bool

	outerRead *batchReader
	innerRead *batchReader
}

func (it *mergeJoinOp) open() error {
	it.curOuter, it.group, it.haveGroup, it.gi = nil, nil, false, 0
	it.lookahead, it.innerDone = nil, false
	if err := it.outer.Open(); err != nil {
		return err
	}
	if err := it.inner.Open(); err != nil {
		return err
	}
	if it.outerRead == nil {
		it.outerRead = it.ctx.newBatchReader(it.outer)
		it.innerRead = it.ctx.newBatchReader(it.inner)
	} else {
		it.outerRead.reset()
		it.innerRead.reset()
	}
	return nil
}

func (it *mergeJoinOp) innerNext() (comp, bool, error) {
	if it.lookahead != nil {
		c := it.lookahead
		it.lookahead = nil
		return c, true, nil
	}
	if it.innerDone {
		return nil, false, nil
	}
	c, ok, err := it.innerRead.next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		it.innerDone = true
		return nil, false, nil
	}
	return c, true, nil
}

// loadGroup positions the inner group at the first key >= key and buffers
// all inner rows equal to it.
func (it *mergeJoinOp) loadGroup(key value.Value) error {
	// Reuse the current group if it already matches.
	if it.haveGroup && value.Compare(it.groupKey, key) == 0 {
		return nil
	}
	// Skip groups below the outer key.
	for {
		if it.haveGroup && value.Compare(it.groupKey, key) >= 0 {
			return nil
		}
		c, ok, err := it.innerNext()
		if err != nil {
			return err
		}
		if !ok {
			it.haveGroup = false
			it.group = nil
			return nil
		}
		k := c[it.node.InnerCol.Rel][it.node.InnerCol.Col]
		if k.IsNull() {
			continue // NULL join keys match nothing
		}
		if value.Compare(k, key) < 0 {
			continue
		}
		// Buffer the whole group with this key.
		it.group = it.group[:0]
		it.group = append(it.group, c)
		it.groupKey = k
		it.haveGroup = true
		for {
			nc, ok, err := it.innerNext()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			nk := nc[it.node.InnerCol.Rel][it.node.InnerCol.Col]
			if value.Compare(nk, k) == 0 {
				it.group = append(it.group, nc)
				continue
			}
			it.lookahead = nc
			break
		}
		return nil
	}
}

func (it *mergeJoinOp) next() (comp, bool, error) {
	for {
		if it.curOuter == nil {
			oc, ok, err := it.outerRead.next()
			if err != nil || !ok {
				return nil, false, err
			}
			key := oc[it.node.OuterCol.Rel][it.node.OuterCol.Col]
			if key.IsNull() {
				continue
			}
			if err := it.loadGroup(key); err != nil {
				return nil, false, err
			}
			if !it.haveGroup || value.Compare(it.groupKey, key) != 0 {
				continue // no matching inner group
			}
			it.curOuter = oc
			it.gi = 0
		}
		if it.gi >= len(it.group) {
			it.curOuter = nil
			continue
		}
		c := mergeComp(it.curOuter, it.group[it.gi])
		it.gi++
		keep, err := it.ctx.applyResidual(c, it.node.Residual)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return c, true, nil
		}
	}
}

// nextBatch fills b by running the merge loop per row.
func (it *mergeJoinOp) nextBatch(b *Batch) error {
	for !b.Full() {
		c, ok, err := it.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b.Append(c)
	}
	return nil
}

func (it *mergeJoinOp) close() error {
	firstErr := it.outer.Close()
	if err := it.inner.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

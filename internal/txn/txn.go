// Package txn is the transaction layer the paper credits the RSS with
// ("locking … and logging and recovery facilities", Section 3): logical undo
// logging over the RSI's insert/delete primitives, statement- and
// transaction-level rollback, and transaction-scope lock ownership.
//
// Every mutation flows through Txn.Insert / Txn.Delete, which append the
// inverse operation to the undo log around the segment mutation (the txnundo
// sysrcheck analyzer enforces that no other write path exists in the
// engine). Under MVCC the forward operations are versioned — Insert stores a
// new version stamped with the transaction's XID, Delete stamps the XID as
// the version's deleter in place — and undo is their exact physical inverse:
// removing the fresh version, or clearing the delete mark. Pages never
// compact or reuse heap space, so the post-rollback state is byte-identical
// to the pre-statement dump — the crash-consistency harness asserts exactly
// that.
//
// A Txn is a state machine: Active until Commit/Rollback (→ Finished) or
// until the engine aborts it as a deadlock victim (→ Aborted, undo and lock
// release already performed). It is owned by one session and is not safe for
// concurrent use, like the connection that holds it.
package txn

import (
	"errors"
	"fmt"

	"systemr/internal/catalog"
	"systemr/internal/lock"
	"systemr/internal/rss"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// State is a transaction's lifecycle position.
type State uint8

const (
	// Active accepts statements.
	Active State = iota
	// Aborted was rolled back by the engine (deadlock victim or lock
	// timeout): undo already ran and locks are released. Statements fail
	// until the session acknowledges with Rollback.
	Aborted
	// Finished committed or rolled back; terminal.
	Finished
)

// String names the state for error messages.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Aborted:
		return "aborted"
	default:
		return "finished"
	}
}

// FaultFunc is the mutation-phase fault hook: consulted with the 1-based
// ordinal of each logged mutation before the segment is touched; a non-nil
// error fails the statement at exactly that point. The deterministic
// crash-consistency sweep (FailNth over every ordinal) is built on it, the
// mutation-side analog of storage.FaultInjector on the fetch side.
type FaultFunc func(n int64) error

// FailNth returns a FaultFunc that fails the nth mutation (1-based) with
// storage.ErrInjectedFault.
func FailNth(n int64) FaultFunc {
	return func(k int64) error {
		if k == n {
			return fmt.Errorf("%w: mutation %d", storage.ErrInjectedFault, k)
		}
		return nil
	}
}

// ErrWriteConflict is rss.ErrWriteConflict re-exported: a statement tried to
// delete or update a tuple version that a concurrent, already-committed
// transaction deleted first (first-updater-wins). The engine aborts the
// whole transaction; like a deadlock, the transaction is safe to retry.
var ErrWriteConflict = rss.ErrWriteConflict

// op is an undo record's operation.
type op uint8

const (
	opInsert op = iota // forward insert; undo removes the version at TID
	opMark             // forward delete mark; undo clears the mark at TID
)

// undoRec is one logged inverse: enough to exactly revert a single RSI
// mutation. row is the stored tuple image (post-coercion), from which both
// the page bytes and every index key are reconstructed.
type undoRec struct {
	op    op
	table *catalog.Table
	tid   storage.TID
	row   value.Row
}

// Txn is one transaction: lock ownership, the undo log, and lifecycle state.
type Txn struct {
	// Locks is the transaction's lock ownership (strict 2PL: released only
	// by the engine at commit, rollback, or abort).
	Locks *lock.Txn

	disk  *storage.Disk
	reg   *Reg
	state State
	undo  []undoRec
	muts  int64 // logged mutations so far (fault-hook ordinal)
	fault FaultFunc
}

// New creates an Active transaction owning locks through lt, stamping its
// versions with (and reading under the snapshot of) the registration reg.
// A nil reg yields XID 0 (FrozenXID) and a nil snapshot — bootstrap and
// storage-level tests only.
func New(lt *lock.Txn, disk *storage.Disk, reg *Reg) *Txn {
	return &Txn{Locks: lt, disk: disk, reg: reg}
}

// Reg returns the transaction's registry registration (nil for bootstrap
// transactions).
func (t *Txn) Reg() *Reg { return t.reg }

// XID returns the transaction's ID (FrozenXID when unregistered).
func (t *Txn) XID() storage.XID {
	if t.reg == nil {
		return storage.FrozenXID
	}
	return t.reg.ID
}

// Snapshot returns the MVCC snapshot the transaction reads under (nil —
// "latest committed" — when unregistered).
func (t *Txn) Snapshot() *storage.Snapshot {
	if t.reg == nil {
		return nil
	}
	return t.reg.Snap
}

// SetFault installs the mutation fault hook (nil removes it).
func (t *Txn) SetFault(f FaultFunc) { t.fault = f }

// State returns the transaction's lifecycle state.
func (t *Txn) State() State { return t.state }

// Finish marks the transaction terminal (commit or acknowledged rollback).
func (t *Txn) Finish() { t.state = Finished }

// MarkAborted marks the transaction engine-aborted (undo and lock release
// must already have happened).
func (t *Txn) MarkAborted() { t.state = Aborted }

// Mark returns the current undo-log position; UndoTo(mark) reverts every
// mutation logged after it — the statement-atomicity mechanism.
func (t *Txn) Mark() int { return len(t.undo) }

// tick consults the fault hook before a mutation.
func (t *Txn) tick() error {
	t.muts++
	if t.fault == nil {
		return nil
	}
	return t.fault(t.muts)
}

// Insert stores a row through the RSI as a new version created by this
// transaction and logs its inverse. prev links the version this one
// supersedes (the delete half of an UPDATE) or storage.NoPrevTID for a plain
// INSERT. The log entry is appended after the store: rss.Insert either
// completes fully or mutates nothing (validation and unique checks precede
// the segment write), so there is no half-applied state to log for.
func (t *Txn) Insert(tab *catalog.Table, row value.Row, prev storage.TID) (storage.TID, error) {
	if err := t.tick(); err != nil {
		return storage.TID{}, err
	}
	tid, stored, err := rss.Insert(tab, row, t.XID(), prev, t.disk)
	if err != nil {
		return storage.TID{}, err
	}
	t.undo = append(t.undo, undoRec{op: opInsert, table: tab, tid: tid, row: stored})
	return tid, nil
}

// Delete stamps this transaction as the deleter of the version at tid
// (stored image row) through the RSI and logs its inverse. The log entry is
// appended before the mutation and popped if the mark fails (nothing
// mutated) — including with rss.ErrWriteConflict when another transaction
// got there first.
func (t *Txn) Delete(tab *catalog.Table, tid storage.TID, row value.Row) error {
	if err := t.tick(); err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{op: opMark, table: tab, tid: tid, row: row})
	if err := rss.MarkDeleted(tab, tid, t.XID(), t.disk); err != nil {
		t.undo = t.undo[:len(t.undo)-1]
		return err
	}
	return nil
}

// UndoTo reverts every mutation logged after mark, newest first, and
// truncates the log. Undo of an insert physically removes the fresh version
// (leaving a dead slot dumps ignore); undo of a delete clears the mark in
// place, resurrecting the version byte-exactly at its original TID. Errors
// are collected but do not stop the unwind — every remaining record is still
// attempted — and the log is truncated regardless, so a second UndoTo cannot
// double-apply.
func (t *Txn) UndoTo(mark int) error {
	var errs []error
	for i := len(t.undo) - 1; i >= mark; i-- {
		r := t.undo[i]
		var err error
		switch r.op {
		case opInsert:
			err = rss.Remove(r.table, r.tid, r.row, t.disk)
		case opMark:
			err = rss.ClearDeleted(r.table, r.tid, t.XID(), t.disk)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("txn: undo of %s %v: %w", r.table.Name, r.tid, err))
		}
	}
	t.undo = t.undo[:mark]
	return errors.Join(errs...)
}

// UndoAll reverts the whole transaction's mutations (rollback).
func (t *Txn) UndoAll() error { return t.UndoTo(0) }

// Mutations returns how many mutations the transaction has logged
// (testing/inspection).
func (t *Txn) Mutations() int64 { return t.muts }

package txn

import (
	"sync"

	"systemr/internal/storage"
)

// Registry allocates transaction IDs and tracks which transactions are
// in-flight, so that (a) every Begin can capture a consistent MVCC snapshot —
// its own ID as the ceiling plus the set of XIDs active at that instant — and
// (b) vacuum can compute the oldest XID any live snapshot could still need
// (Horizon). There is no commit log: the engine undoes aborted transactions
// physically, so an XID that survives in a version header and is neither
// active nor in a snapshot's active set is, by elimination, committed.
type Registry struct {
	mu     sync.Mutex
	next   storage.XID
	active map[storage.XID]*Reg
}

// Reg is one registered transaction: its XID, the snapshot it reads under,
// and the oldest XID that snapshot can reach (for Horizon).
type Reg struct {
	// ID is the transaction's XID.
	ID storage.XID
	// Snap is the MVCC snapshot captured at Begin.
	Snap *storage.Snapshot
	// min is the oldest XID this registration pins: its own, or the oldest
	// transaction that was still active when its snapshot was taken —
	// whichever is smaller. Versions deleted by XIDs below the minimum over
	// all registrations are invisible to every live snapshot.
	min storage.XID

	done bool
}

// NewRegistry returns an empty registry; XIDs start at 1 (0 is FrozenXID,
// "always committed", used by catalog bootstrap rows).
func NewRegistry() *Registry {
	return &Registry{next: 1, active: make(map[storage.XID]*Reg)}
}

// Begin allocates the next XID, captures a snapshot of the transactions
// active at this instant, and registers the new transaction as active.
func (r *Registry) Begin() *Reg {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.next
	r.next++
	snap := &storage.Snapshot{Self: id, Max: id, Active: make(map[storage.XID]struct{}, len(r.active))}
	min := id
	for xid := range r.active {
		snap.Active[xid] = struct{}{}
		if xid < min {
			min = xid
		}
	}
	reg := &Reg{ID: id, Snap: snap, min: min}
	r.active[id] = reg
	return reg
}

// Refresh recaptures reg's snapshot against the current state: the ceiling
// advances to the newest allocated XID and the active set is re-read. Used
// by autocommitted statements after their table locks are granted, so a
// writer that waited behind a committing transaction reads the post-commit
// state instead of conflicting with it. The pinned minimum only moves
// forward, so the vacuum horizon remains safe.
func (r *Registry) Refresh(reg *Reg) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &storage.Snapshot{Self: reg.ID, Max: r.next, Active: make(map[storage.XID]struct{}, len(r.active))}
	min := reg.ID
	for xid := range r.active {
		if xid == reg.ID {
			continue
		}
		snap.Active[xid] = struct{}{}
		if xid < min {
			min = xid
		}
	}
	reg.Snap = snap
	reg.min = min
}

// Finish deregisters a transaction (commit or completed rollback): its XID
// stops pinning the vacuum horizon and stops appearing in new snapshots'
// active sets. Nil-safe and idempotent.
func (r *Registry) Finish(reg *Reg) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg.done {
		return
	}
	reg.done = true
	delete(r.active, reg.ID)
}

// Horizon returns the oldest XID any live snapshot could still need to see.
// A version whose delete mark (xmax) is below the horizon is dead to every
// current and future snapshot and may be vacuumed.
func (r *Registry) Horizon() storage.XID {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.next
	for _, reg := range r.active {
		if reg.min < h {
			h = reg.min
		}
	}
	return h
}

package txn

import (
	"errors"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/lock"
	"systemr/internal/storage"
	"systemr/internal/value"
)

type env struct {
	disk *storage.Disk
	cat  *catalog.Catalog
	mgr  *lock.Manager
	reg  *Registry
}

func newEnv(t *testing.T) (*env, *catalog.Table) {
	t.Helper()
	disk := storage.NewDisk()
	cat := catalog.New(disk)
	tab, err := cat.CreateTable("T", []catalog.Column{
		{Name: "K", Type: value.KindInt},
		{Name: "V", Type: value.KindString},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("T_K", "T", []string{"K"}, true, false); err != nil {
		t.Fatal(err)
	}
	return &env{disk: disk, cat: cat, mgr: lock.NewManager(), reg: NewRegistry()}, tab
}

func (e *env) begin() *Txn { return New(e.mgr.Begin(), e.disk, e.reg.Begin()) }

func row(k int64, v string) value.Row {
	return value.Row{value.NewInt(k), value.NewString(v)}
}

// dump reads every live tuple of tab in physical order.
func dump(t *testing.T, e *env, tab *catalog.Table) []value.Row {
	t.Helper()
	var out []value.Row
	for _, pid := range tab.Segment.Pages() {
		p := e.disk.Page(pid)
		for s := uint16(0); s < p.NumSlots(); s++ {
			h, r, rel, ok, err := p.ReadVersioned(s)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || rel != tab.ID || h.Xmax != 0 {
				continue
			}
			out = append(out, r)
		}
	}
	return out
}

func TestUndoToMarkRevertsStatement(t *testing.T) {
	e, tab := newEnv(t)
	tx := e.begin()
	if _, err := tx.Insert(tab, row(1, "keep"), storage.NoPrevTID); err != nil {
		t.Fatal(err)
	}
	before := dump(t, e, tab)
	mark := tx.Mark()

	// A failing "statement": one insert, one delete, then abort.
	tid2, err := tx.Insert(tab, row(2, "doomed"), storage.NoPrevTID)
	if err != nil {
		t.Fatal(err)
	}
	_ = tid2
	tids := tabTIDs(t, e, tab)
	if err := tx.Delete(tab, tids[0], before[0]); err != nil {
		t.Fatal(err)
	}
	if err := tx.UndoTo(mark); err != nil {
		t.Fatal(err)
	}
	after := dump(t, e, tab)
	if len(after) != 1 || after[0][0].Int != 1 || after[0][1].Str != "keep" {
		t.Fatalf("after undo-to-mark: %v", after)
	}
	// The unique index must be consistent again: re-inserting key 1 fails,
	// key 2 succeeds.
	if _, err := tx.Insert(tab, row(1, "dup"), storage.NoPrevTID); err == nil {
		t.Fatal("unique key restored by undo must reject duplicates")
	}
	if _, err := tx.Insert(tab, row(2, "fresh"), storage.NoPrevTID); err != nil {
		t.Fatalf("key 2 should be free again after undo: %v", err)
	}
}

func tabTIDs(t *testing.T, e *env, tab *catalog.Table) []storage.TID {
	t.Helper()
	var out []storage.TID
	for _, pid := range tab.Segment.Pages() {
		p := e.disk.Page(pid)
		for s := uint16(0); s < p.NumSlots(); s++ {
			if _, rel, ok := p.Record(s); ok && rel == tab.ID {
				out = append(out, storage.TID{Page: pid, Slot: s})
			}
		}
	}
	return out
}

func TestUndoAllEmptiesLog(t *testing.T) {
	e, tab := newEnv(t)
	tx := e.begin()
	for i := int64(0); i < 5; i++ {
		if _, err := tx.Insert(tab, row(i, "x"), storage.NoPrevTID); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.UndoAll(); err != nil {
		t.Fatal(err)
	}
	if got := dump(t, e, tab); len(got) != 0 {
		t.Fatalf("rows after UndoAll: %v", got)
	}
	// Second undo is a no-op over the truncated log.
	if err := tx.UndoAll(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultHookFailsBeforeMutating(t *testing.T) {
	e, tab := newEnv(t)
	tx := e.begin()
	if _, err := tx.Insert(tab, row(1, "a"), storage.NoPrevTID); err != nil {
		t.Fatal(err)
	}
	tx.SetFault(FailNth(2))
	_, err := tx.Insert(tab, row(2, "b"), storage.NoPrevTID)
	if !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault", err)
	}
	// The failed mutation must not have touched the table: key 2 is free.
	tx.SetFault(nil)
	if _, err := tx.Insert(tab, row(2, "b"), storage.NoPrevTID); err != nil {
		t.Fatalf("faulted mutation left state behind: %v", err)
	}
	if got := len(dump(t, e, tab)); got != 2 {
		t.Fatalf("live rows = %d, want 2", got)
	}
}

func TestStateMachine(t *testing.T) {
	e, _ := newEnv(t)
	tx := e.begin()
	if tx.State() != Active {
		t.Fatalf("new txn state = %v", tx.State())
	}
	tx.MarkAborted()
	if tx.State() != Aborted {
		t.Fatalf("state = %v after abort", tx.State())
	}
	tx.Finish()
	if tx.State() != Finished {
		t.Fatalf("state = %v after finish", tx.State())
	}
	if Active.String() != "active" || Aborted.String() != "aborted" || Finished.String() != "finished" {
		t.Fatal("state names")
	}
}

// Package lock implements the locking component of the RSS (Section 3 lists
// "locking (in a multi-user environment)" among the storage system's
// responsibilities). Granularity is reduced to table-level shared/exclusive
// locks with statement-scope two-phase locking — a documented simplification
// (DESIGN.md): access path selection does not depend on lock granularity,
// and the engine's measurements assume a single active statement.
//
// Deadlock freedom comes from total ordering: a statement requests all of
// its locks up front and the manager grants them in sorted table order, so
// no two statements ever wait on each other in a cycle. Waits are
// context-aware (AcquireContext), so a statement deadline or cancellation
// also bounds how long a writer can sit behind a stuck reader.
package lock

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits one writer and excludes readers.
	Exclusive
)

// Request names one table and the required mode.
type Request struct {
	Table string
	Mode  Mode
}

// Manager grants table locks.
type Manager struct {
	mu     sync.Mutex
	tables map[string]*tableLock
	// wake is closed and replaced on every release — a broadcast that
	// waiters can select on together with their context's Done channel
	// (the reason this is a channel rather than a sync.Cond).
	wake chan struct{}
	// waitObs, when set, observes how long each acquisition that had to
	// block waited in total (metrics hook). Holds a func(time.Duration).
	waitObs atomic.Value
}

type tableLock struct {
	readers int
	writer  bool
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{tables: make(map[string]*tableLock), wake: make(chan struct{})}
}

// Held represents granted locks; Release returns them.
type Held struct {
	mgr  *Manager
	reqs []Request
	done bool
}

// Acquire blocks until every requested lock is granted. Duplicate tables are
// collapsed (exclusive wins); grants happen in sorted order.
func (m *Manager) Acquire(reqs []Request) *Held {
	h, _ := m.AcquireContext(context.Background(), reqs)
	return h
}

// SetWaitObserver installs fn (nil removes it) to be called once per
// acquisition that had to block, with the total time spent waiting. The
// observer runs outside the manager's mutex, after the wait ends — whether
// the acquisition succeeded or was canceled.
func (m *Manager) SetWaitObserver(fn func(time.Duration)) {
	m.waitObs.Store(waitObserver{fn})
}

// waitObserver wraps the callback so atomic.Value always stores one
// consistent concrete type (a bare nil func would panic the Store).
type waitObserver struct {
	fn func(time.Duration)
}

func (m *Manager) observeWait(start time.Time) {
	if start.IsZero() {
		return
	}
	if obs, ok := m.waitObs.Load().(waitObserver); ok && obs.fn != nil {
		obs.fn(time.Since(start))
	}
}

// AcquireContext is Acquire observing ctx: when ctx is done before every
// lock is granted, any locks granted so far are returned and the context's
// error is reported. On success the returned error is nil.
func (m *Manager) AcquireContext(ctx context.Context, reqs []Request) (*Held, error) {
	normalized := normalize(reqs)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var waitStart time.Time // zero until the first blocking wait
	m.mu.Lock()
	for i, r := range normalized {
		for !m.grantableLocked(r) {
			if waitStart.IsZero() {
				waitStart = time.Now()
			}
			wake := m.wake
			m.mu.Unlock()
			select {
			case <-ctx.Done():
				m.mu.Lock()
				for _, g := range normalized[:i] {
					m.ungrantLocked(g)
				}
				m.broadcastLocked()
				m.mu.Unlock()
				m.observeWait(waitStart)
				return nil, ctx.Err()
			case <-wake:
			}
			m.mu.Lock()
		}
		m.grantLocked(r)
	}
	m.mu.Unlock()
	m.observeWait(waitStart)
	return &Held{mgr: m, reqs: normalized}, nil
}

// TryAcquire attempts a non-blocking grant of all requests; it returns nil
// when any lock is unavailable.
func (m *Manager) TryAcquire(reqs []Request) *Held {
	normalized := normalize(reqs)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range normalized {
		if !m.grantableLocked(r) {
			// Roll back the grants made so far in this attempt.
			for _, g := range normalized {
				if g == r {
					break
				}
				m.ungrantLocked(g)
			}
			return nil
		}
		m.grantLocked(r)
	}
	return &Held{mgr: m, reqs: normalized}
}

// Release returns the locks. Safe to call once; later calls are no-ops.
func (h *Held) Release() {
	if h == nil || h.done {
		return
	}
	h.done = true
	m := h.mgr
	m.mu.Lock()
	for _, r := range h.reqs {
		m.ungrantLocked(r)
	}
	m.broadcastLocked()
	m.mu.Unlock()
}

// broadcastLocked wakes every waiter. Callers hold m.mu.
func (m *Manager) broadcastLocked() {
	close(m.wake)
	m.wake = make(chan struct{})
}

func normalize(reqs []Request) []Request {
	byTable := make(map[string]Mode, len(reqs))
	for _, r := range reqs {
		name := strings.ToUpper(r.Table)
		if cur, ok := byTable[name]; !ok || r.Mode == Exclusive && cur == Shared {
			byTable[name] = r.Mode
		}
	}
	out := make([]Request, 0, len(byTable))
	for name, mode := range byTable {
		out = append(out, Request{Table: name, Mode: mode})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

func (m *Manager) entry(name string) *tableLock {
	e, ok := m.tables[name]
	if !ok {
		e = &tableLock{}
		m.tables[name] = e
	}
	return e
}

func (m *Manager) grantableLocked(r Request) bool {
	e := m.entry(r.Table)
	if r.Mode == Shared {
		return !e.writer
	}
	return !e.writer && e.readers == 0
}

func (m *Manager) grantLocked(r Request) {
	e := m.entry(r.Table)
	if r.Mode == Shared {
		e.readers++
	} else {
		e.writer = true
	}
}

func (m *Manager) ungrantLocked(r Request) {
	e := m.entry(r.Table)
	if r.Mode == Shared {
		if e.readers > 0 {
			e.readers--
		}
	} else {
		e.writer = false
	}
}

// Holders reports the current reader count and writer flag for a table
// (testing/inspection).
func (m *Manager) Holders(table string) (readers int, writer bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entry(strings.ToUpper(table))
	return e.readers, e.writer
}

// Outstanding returns the total number of currently granted locks across all
// tables (each shared holder and each writer counts one). Leak checks assert
// it returns to zero after every statement.
func (m *Manager) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.tables {
		n += e.readers
		if e.writer {
			n++
		}
	}
	return n
}

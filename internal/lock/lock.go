// Package lock implements the locking component of the RSS (Section 3 lists
// "locking (in a multi-user environment)" among the storage system's
// responsibilities). Granularity is reduced to table-level shared/exclusive
// locks — a documented simplification (DESIGN.md): access path selection does
// not depend on lock granularity, and the engine's measurements assume a
// single active statement.
//
// Locks are owned by transactions (Txn), granted for the transaction's whole
// lifetime and released together at commit or rollback — strict two-phase
// locking. A single statement outside an explicit transaction runs as an
// ephemeral transaction of its own (the Manager's Acquire/Held surface), so
// autocommit keeps the old statement-scope behavior.
//
// Statement-scope locking was deadlock-free by total ordering: each statement
// requested all of its locks up front in sorted table order. Transactions
// acquire locks incrementally across statements, so cycles are possible. The
// manager therefore detects deadlocks with a wait-for-graph search run at
// every blocking wait, aborts the youngest transaction on the cycle (the one
// that has done the least work), and surfaces the typed, retryable
// ErrDeadlock. A configurable lock-wait timeout (ErrLockTimeout) backstops
// anything detection cannot see, e.g. an application that simply never
// commits. Waits remain context-aware, so a statement deadline or
// cancellation also bounds how long a writer can sit behind a stuck reader.
package lock

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDeadlock reports that the transaction was chosen as the deadlock
// victim: its locks were (or are about to be) rolled back, and the whole
// transaction should be retried. It is typed so callers can dispatch with
// errors.Is and distinguish it from cancellation.
var ErrDeadlock = errors.New("lock: deadlock detected; transaction chosen as victim, retry it")

// ErrLockTimeout reports that a lock wait exceeded the manager's configured
// timeout — the fallback for waits the deadlock detector cannot resolve
// (e.g. a transaction that never commits).
var ErrLockTimeout = errors.New("lock: lock wait timeout exceeded")

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits one writer and excludes readers.
	Exclusive
)

// Request names one table and the required mode.
type Request struct {
	Table string
	Mode  Mode
}

// Manager grants table locks to transactions.
type Manager struct {
	mu     sync.Mutex
	tables map[string]*tableLock
	// wake is closed and replaced on every release — a broadcast that
	// waiters can select on together with their context's Done channel
	// (the reason this is a channel rather than a sync.Cond).
	wake chan struct{}
	// timeout, when positive, bounds each acquisition's total blocked time.
	timeout time.Duration
	// waitObs, when set, observes how long each acquisition that had to
	// block waited in total (metrics hook). Holds a func(time.Duration).
	waitObs atomic.Value

	nextID    atomic.Int64
	deadlocks atomic.Int64
	timeouts  atomic.Int64
}

// tableLock records which transactions hold one table, and in which mode. A
// transaction appears at most once per table (Exclusive shadows Shared).
type tableLock struct {
	holders map[*Txn]Mode
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{tables: make(map[string]*tableLock), wake: make(chan struct{})}
}

// SetLockTimeout bounds every acquisition's total blocked time; exceeding it
// fails the acquisition with ErrLockTimeout. Zero (the default) disables the
// timeout — deadlock detection already resolves cycles, the timeout is the
// fallback for indefinite non-cyclic waits.
func (m *Manager) SetLockTimeout(d time.Duration) {
	m.mu.Lock()
	m.timeout = d
	m.mu.Unlock()
}

// Deadlocks returns how many deadlock victims the manager has aborted.
func (m *Manager) Deadlocks() int64 { return m.deadlocks.Load() }

// LockTimeouts returns how many acquisitions failed with ErrLockTimeout.
func (m *Manager) LockTimeouts() int64 { return m.timeouts.Load() }

// Txn is one transaction's lock ownership: the unit locks are granted to and
// released from. Grants are re-entrant (a held table is not re-acquired) and
// upgradeable (Shared to Exclusive once no other holder remains). A Txn is
// used by one goroutine at a time, like the session that owns it.
type Txn struct {
	mgr *Manager
	id  int64

	// The fields below are guarded by mgr.mu.
	held     map[string]Mode
	wanted   *Request // non-nil while blocked in AcquireContext
	abortErr error    // set once when chosen as a deadlock victim
	released bool     // ReleaseAll ran

	// abort is closed (once) when the deadlock detector picks this
	// transaction as the victim; its blocked AcquireContext selects on it.
	abort chan struct{}
}

// Begin registers a new lock-owning transaction. IDs are monotonic, so a
// larger ID means a younger transaction — the deadlock victim policy.
func (m *Manager) Begin() *Txn {
	return &Txn{
		mgr:   m,
		id:    m.nextID.Add(1),
		held:  make(map[string]Mode),
		abort: make(chan struct{}),
	}
}

// ID returns the transaction's monotonic identifier.
func (t *Txn) ID() int64 { return t.id }

// SetWaitObserver installs fn (nil removes it) to be called once per
// acquisition that had to block, with the total time spent waiting. The
// observer runs outside the manager's mutex, after the wait ends — whether
// the acquisition succeeded or was canceled.
func (m *Manager) SetWaitObserver(fn func(time.Duration)) {
	m.waitObs.Store(waitObserver{fn})
}

// waitObserver wraps the callback so atomic.Value always stores one
// consistent concrete type (a bare nil func would panic the Store).
type waitObserver struct {
	fn func(time.Duration)
}

func (m *Manager) observeWait(start time.Time) {
	if start.IsZero() {
		return
	}
	if obs, ok := m.waitObs.Load().(waitObserver); ok && obs.fn != nil {
		obs.fn(time.Since(start))
	}
}

// grant records what one AcquireContext call changed, so a failing call can
// roll back exactly its own grants (a deadlock victim's earlier-statement
// locks are the engine's to release, after undo).
type grant struct {
	table    string
	upgraded bool // held Shared before this call; else held nothing
}

// AcquireContext blocks until every requested lock is granted to the
// transaction. Duplicate tables are collapsed (exclusive wins) and grants
// happen in sorted order; tables the transaction already holds in a
// sufficient mode are skipped, and Shared-to-Exclusive upgrades wait for the
// other holders to drain. On failure — context done, lock timeout, or this
// transaction chosen as a deadlock victim — the locks granted by this call
// (upgrades included) are rolled back and the error is returned; locks from
// earlier calls stay held.
func (t *Txn) AcquireContext(ctx context.Context, reqs []Request) error {
	m := t.mgr
	normalized := normalize(reqs)
	if err := ctx.Err(); err != nil {
		return err
	}
	var waitStart time.Time // zero until the first blocking wait
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	var granted []grant
	m.mu.Lock()
	// fail rolls back this call's grants and returns err. Called with m.mu
	// held; returns with it released.
	fail := func(err error) error {
		t.wanted = nil
		for _, g := range granted {
			if g.upgraded {
				m.tables[g.table].holders[t] = Shared
				t.held[g.table] = Shared
			} else {
				delete(m.tables[g.table].holders, t)
				delete(t.held, g.table)
			}
		}
		m.broadcastLocked()
		m.mu.Unlock()
		m.observeWait(waitStart)
		return err
	}
	if t.released {
		m.mu.Unlock()
		return fmt.Errorf("lock: acquire on a released transaction")
	}
	for _, r := range normalized {
		if cur, ok := t.held[r.Table]; ok && (cur == Exclusive || cur == r.Mode) {
			continue
		}
		for {
			if t.abortErr != nil {
				return fail(t.abortErr)
			}
			if m.grantableLocked(t, r) {
				break
			}
			if waitStart.IsZero() {
				waitStart = time.Now()
				if m.timeout > 0 {
					timer = time.NewTimer(m.timeout)
					timeoutCh = timer.C
				}
			}
			t.wanted = &Request{Table: r.Table, Mode: r.Mode}
			if victim := m.detectLocked(t); victim != nil {
				m.deadlocks.Add(1)
				victim.abortErr = fmt.Errorf("%w (txn %d waiting for %s)",
					ErrDeadlock, victim.id, victim.wanted.Table)
				close(victim.abort)
				if victim == t {
					return fail(t.abortErr)
				}
			}
			wake := m.wake
			m.mu.Unlock()
			select {
			case <-ctx.Done():
				m.mu.Lock()
				return fail(ctx.Err())
			case <-t.abort:
				m.mu.Lock()
				return fail(t.abortErr)
			case <-timeoutCh:
				m.mu.Lock()
				m.timeouts.Add(1)
				return fail(fmt.Errorf("%w waiting for %s", ErrLockTimeout, r.Table))
			case <-wake:
			}
			m.mu.Lock()
		}
		t.wanted = nil
		prev, had := t.held[r.Table]
		m.entry(r.Table).holders[t] = r.Mode
		t.held[r.Table] = r.Mode
		granted = append(granted, grant{table: r.Table, upgraded: had && prev == Shared})
	}
	m.mu.Unlock()
	m.observeWait(waitStart)
	return nil
}

// ReleaseAll returns every lock the transaction holds and wakes all waiters.
// Safe to call repeatedly; the transaction cannot acquire again afterwards.
func (t *Txn) ReleaseAll() {
	m := t.mgr
	m.mu.Lock()
	if t.released {
		m.mu.Unlock()
		return
	}
	t.released = true
	for table := range t.held {
		delete(m.tables[table].holders, t)
	}
	t.held = make(map[string]Mode)
	m.broadcastLocked()
	m.mu.Unlock()
}

// conflictsWith reports whether a requested mode conflicts with a mode held
// by a different transaction.
func conflictsWith(want, held Mode) bool {
	return want == Exclusive || held == Exclusive
}

// grantableLocked reports whether t can be granted r now: only other
// transactions' holdings conflict (re-entry and upgrade look past t's own).
// Callers hold m.mu.
func (m *Manager) grantableLocked(t *Txn, r Request) bool {
	e, ok := m.tables[r.Table]
	if !ok {
		return true
	}
	for h, mode := range e.holders {
		if h == t {
			continue
		}
		if conflictsWith(r.Mode, mode) {
			return false
		}
	}
	return true
}

// detectLocked searches the wait-for graph for a cycle created by start's
// wait edge and returns the victim to abort — the youngest (largest-ID)
// transaction on the cycle — or nil when start's wait is acyclic. Edges run
// from a blocked transaction to each conflicting holder of the table it
// waits for; transactions already marked as victims are skipped (they will
// wake and release), so one deadlock never claims two victims. Because
// detection runs at every wait and only start's edge is new, any new cycle
// passes through start. Callers hold m.mu.
func (m *Manager) detectLocked(start *Txn) *Txn {
	var cycle []*Txn
	seen := make(map[*Txn]bool)
	var dfs func(t *Txn, path []*Txn) bool
	dfs = func(t *Txn, path []*Txn) bool {
		if t.abortErr != nil || t.wanted == nil {
			return false // not blocked, or already dying: no outgoing edges
		}
		e, ok := m.tables[t.wanted.Table]
		if !ok {
			return false
		}
		path = append(path, t)
		for h, mode := range e.holders {
			if h == t || !conflictsWith(t.wanted.Mode, mode) {
				continue
			}
			if h == start {
				cycle = append([]*Txn(nil), path...)
				return true
			}
			if seen[h] {
				continue
			}
			seen[h] = true
			if dfs(h, path) {
				return true
			}
		}
		return false
	}
	if !dfs(start, nil) {
		return nil
	}
	victim := cycle[0]
	for _, t := range cycle {
		if t.id > victim.id {
			victim = t
		}
	}
	return victim
}

// ---- statement-scope compatibility surface ----
//
// A statement outside an explicit transaction locks through an ephemeral
// transaction created per call: Acquire returns a Held whose Release is the
// ephemeral transaction's ReleaseAll. This keeps autocommit statements,
// prepared-statement runs, cursors, and dumps on their old statement-scope
// semantics on top of transaction-owned locks.

// Held represents one ephemeral transaction's granted locks; Release returns
// them. Safe to Release repeatedly.
type Held struct {
	txn *Txn
}

// Acquire blocks until every requested lock is granted. Duplicate tables are
// collapsed (exclusive wins); grants happen in sorted order.
func (m *Manager) Acquire(reqs []Request) *Held {
	h, _ := m.AcquireContext(context.Background(), reqs)
	return h
}

// AcquireContext is Acquire observing ctx: when ctx is done before every
// lock is granted, any locks granted so far are returned and the context's
// error is reported. The acquisition can also fail with ErrDeadlock (chosen
// as a victim of a cycle with concurrent transactions) or ErrLockTimeout.
// On success the returned error is nil.
func (m *Manager) AcquireContext(ctx context.Context, reqs []Request) (*Held, error) {
	t := m.Begin()
	if err := t.AcquireContext(ctx, reqs); err != nil {
		return nil, err
	}
	return &Held{txn: t}, nil
}

// TryAcquire attempts a non-blocking grant of all requests; it returns nil
// when any lock is unavailable.
func (m *Manager) TryAcquire(reqs []Request) *Held {
	t := m.Begin()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range normalize(reqs) {
		if !m.grantableLocked(t, r) {
			for table := range t.held {
				delete(m.tables[table].holders, t)
			}
			return nil
		}
		m.entry(r.Table).holders[t] = r.Mode
		t.held[r.Table] = r.Mode
	}
	return &Held{txn: t}
}

// Release returns the locks. Safe to call repeatedly.
func (h *Held) Release() {
	if h == nil {
		return
	}
	h.txn.ReleaseAll()
}

// broadcastLocked wakes every waiter. Callers hold m.mu.
func (m *Manager) broadcastLocked() {
	close(m.wake)
	m.wake = make(chan struct{})
}

func normalize(reqs []Request) []Request {
	byTable := make(map[string]Mode, len(reqs))
	for _, r := range reqs {
		name := strings.ToUpper(r.Table)
		if cur, ok := byTable[name]; !ok || r.Mode == Exclusive && cur == Shared {
			byTable[name] = r.Mode
		}
	}
	out := make([]Request, 0, len(byTable))
	for name, mode := range byTable {
		out = append(out, Request{Table: name, Mode: mode})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

func (m *Manager) entry(name string) *tableLock {
	e, ok := m.tables[name]
	if !ok {
		e = &tableLock{holders: make(map[*Txn]Mode)}
		m.tables[name] = e
	}
	return e
}

// Holders reports the current reader count and writer flag for a table
// (testing/inspection).
func (m *Manager) Holders(table string) (readers int, writer bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.tables[strings.ToUpper(table)]
	if !ok {
		return 0, false
	}
	for _, mode := range e.holders {
		if mode == Exclusive {
			writer = true
		} else {
			readers++
		}
	}
	return readers, writer
}

// Outstanding returns the total number of currently granted locks across all
// tables (each holder counts one per table held). Leak checks assert it
// returns to zero after every statement outside explicit transactions.
func (m *Manager) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.tables {
		n += len(e.holders)
	}
	return n
}

// Package lock implements the locking component of the RSS (Section 3 lists
// "locking (in a multi-user environment)" among the storage system's
// responsibilities). Granularity is reduced to table-level shared/exclusive
// locks with statement-scope two-phase locking — a documented simplification
// (DESIGN.md): access path selection does not depend on lock granularity,
// and the engine's measurements assume a single active statement.
//
// Deadlock freedom comes from total ordering: a statement requests all of
// its locks up front and the manager grants them in sorted table order, so
// no two statements ever wait on each other in a cycle.
package lock

import (
	"sort"
	"strings"
	"sync"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits one writer and excludes readers.
	Exclusive
)

// Request names one table and the required mode.
type Request struct {
	Table string
	Mode  Mode
}

// Manager grants table locks.
type Manager struct {
	mu     sync.Mutex
	cond   *sync.Cond
	tables map[string]*tableLock
}

type tableLock struct {
	readers int
	writer  bool
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	m := &Manager{tables: make(map[string]*tableLock)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Held represents granted locks; Release returns them.
type Held struct {
	mgr  *Manager
	reqs []Request
	done bool
}

// Acquire blocks until every requested lock is granted. Duplicate tables are
// collapsed (exclusive wins); grants happen in sorted order.
func (m *Manager) Acquire(reqs []Request) *Held {
	normalized := normalize(reqs)
	m.mu.Lock()
	for _, r := range normalized {
		for !m.grantableLocked(r) {
			m.cond.Wait()
		}
		m.grantLocked(r)
	}
	m.mu.Unlock()
	return &Held{mgr: m, reqs: normalized}
}

// TryAcquire attempts a non-blocking grant of all requests; it returns nil
// when any lock is unavailable.
func (m *Manager) TryAcquire(reqs []Request) *Held {
	normalized := normalize(reqs)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range normalized {
		if !m.grantableLocked(r) {
			// Roll back the grants made so far in this attempt.
			for _, g := range normalized {
				if g == r {
					break
				}
				m.ungrantLocked(g)
			}
			return nil
		}
		m.grantLocked(r)
	}
	return &Held{mgr: m, reqs: normalized}
}

// Release returns the locks. Safe to call once; later calls are no-ops.
func (h *Held) Release() {
	if h == nil || h.done {
		return
	}
	h.done = true
	m := h.mgr
	m.mu.Lock()
	for _, r := range h.reqs {
		m.ungrantLocked(r)
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

func normalize(reqs []Request) []Request {
	byTable := make(map[string]Mode, len(reqs))
	for _, r := range reqs {
		name := strings.ToUpper(r.Table)
		if cur, ok := byTable[name]; !ok || r.Mode == Exclusive && cur == Shared {
			byTable[name] = r.Mode
		}
	}
	out := make([]Request, 0, len(byTable))
	for name, mode := range byTable {
		out = append(out, Request{Table: name, Mode: mode})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

func (m *Manager) entry(name string) *tableLock {
	e, ok := m.tables[name]
	if !ok {
		e = &tableLock{}
		m.tables[name] = e
	}
	return e
}

func (m *Manager) grantableLocked(r Request) bool {
	e := m.entry(r.Table)
	if r.Mode == Shared {
		return !e.writer
	}
	return !e.writer && e.readers == 0
}

func (m *Manager) grantLocked(r Request) {
	e := m.entry(r.Table)
	if r.Mode == Shared {
		e.readers++
	} else {
		e.writer = true
	}
}

func (m *Manager) ungrantLocked(r Request) {
	e := m.entry(r.Table)
	if r.Mode == Shared {
		if e.readers > 0 {
			e.readers--
		}
	} else {
		e.writer = false
	}
}

// Holders reports the current reader count and writer flag for a table
// (testing/inspection).
func (m *Manager) Holders(table string) (readers int, writer bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entry(strings.ToUpper(table))
	return e.readers, e.writer
}

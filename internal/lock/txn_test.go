package lock

// Transaction-scope locking tests: re-entrant grants, upgrades, wait-for-
// graph deadlock detection with youngest-victim abort, partial-grant
// rollback on the victim, the lock-timeout fallback, and the wait observer
// running outside the manager's mutex.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func req(table string, mode Mode) []Request {
	return []Request{{Table: table, Mode: mode}}
}

func mustAcquire(t *testing.T, tx *Txn, reqs []Request) {
	t.Helper()
	if err := tx.AcquireContext(context.Background(), reqs); err != nil {
		t.Fatalf("acquire %v: %v", reqs, err)
	}
}

func TestTxnHoldsAcrossAcquires(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	mustAcquire(t, tx, req("A", Exclusive))
	mustAcquire(t, tx, req("B", Shared))
	if got := m.Outstanding(); got != 2 {
		t.Fatalf("outstanding = %d, want 2 (locks retained across acquires)", got)
	}
	// Re-entry is a no-op; Shared under an Exclusive hold does not downgrade.
	mustAcquire(t, tx, req("A", Exclusive))
	mustAcquire(t, tx, req("A", Shared))
	if r, w := m.Holders("A"); r != 0 || !w {
		t.Fatalf("A after re-entry: readers=%d writer=%v, want exclusive", r, w)
	}
	if got := m.Outstanding(); got != 2 {
		t.Fatalf("outstanding = %d after re-entry, want 2", got)
	}
	tx.ReleaseAll()
	tx.ReleaseAll() // idempotent
	if got := m.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after ReleaseAll", got)
	}
	if err := tx.AcquireContext(context.Background(), req("A", Shared)); err == nil {
		t.Fatal("acquire after ReleaseAll must fail")
	}
}

func TestTxnUpgradeSharedToExclusive(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	other := m.Begin()
	mustAcquire(t, tx, req("T", Shared))
	mustAcquire(t, other, req("T", Shared))
	upgraded := make(chan error, 1)
	go func() {
		upgraded <- tx.AcquireContext(context.Background(), req("T", Exclusive))
	}()
	select {
	case err := <-upgraded:
		t.Fatalf("upgrade granted while another reader holds T (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	other.ReleaseAll()
	select {
	case err := <-upgraded:
		if err != nil {
			t.Fatalf("upgrade after reader drained: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("upgrade never granted")
	}
	if r, w := m.Holders("T"); r != 0 || !w {
		t.Fatalf("T after upgrade: readers=%d writer=%v", r, w)
	}
	if got := m.Outstanding(); got != 1 {
		t.Fatalf("outstanding = %d after upgrade, want 1 (upgrade is not a second grant)", got)
	}
	tx.ReleaseAll()
}

// TestDeadlockTwoCycle: the classic A/B cross: the younger transaction is
// chosen as the victim, the older one completes, and exactly one ErrDeadlock
// surfaces.
func TestDeadlockTwoCycle(t *testing.T) {
	m := NewManager()
	older := m.Begin()
	younger := m.Begin()
	mustAcquire(t, older, req("A", Exclusive))
	mustAcquire(t, younger, req("B", Exclusive))
	olderDone := make(chan error, 1)
	go func() {
		olderDone <- older.AcquireContext(context.Background(), req("B", Exclusive))
	}()
	time.Sleep(10 * time.Millisecond) // let the older txn start waiting
	err := younger.AcquireContext(context.Background(), req("A", Exclusive))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("younger txn: err = %v, want ErrDeadlock", err)
	}
	younger.ReleaseAll() // engine rolls the victim back
	select {
	case err := <-olderDone:
		if err != nil {
			t.Fatalf("older txn must survive the deadlock, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("older txn hung after victim abort")
	}
	if got := m.Deadlocks(); got != 1 {
		t.Fatalf("Deadlocks() = %d, want 1", got)
	}
	older.ReleaseAll()
	if got := m.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d at end", got)
	}
}

// TestDeadlockThreeCycle: T1→T2→T3→T1; exactly one victim aborts and the
// other two finish.
func TestDeadlockThreeCycle(t *testing.T) {
	m := NewManager()
	txs := []*Txn{m.Begin(), m.Begin(), m.Begin()}
	tables := []string{"A", "B", "C"}
	for i, tx := range txs {
		mustAcquire(t, tx, req(tables[i], Exclusive))
	}
	// Each txn now requests the next table around the ring.
	errs := make(chan error, len(txs))
	var wg sync.WaitGroup
	for i, tx := range txs {
		wg.Add(1)
		go func(tx *Txn, next string) {
			defer wg.Done()
			err := tx.AcquireContext(context.Background(), req(next, Exclusive))
			// Victim or not, the transaction ends: abort or commit both
			// release, which is what lets the chain behind it drain.
			tx.ReleaseAll()
			errs <- err
		}(tx, tables[(i+1)%len(tables)])
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("three-cycle did not resolve")
	}
	close(errs)
	victims := 0
	for err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrDeadlock):
			victims++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if victims != 1 {
		t.Fatalf("deadlock victims = %d, want exactly 1", victims)
	}
	for _, tx := range txs {
		tx.ReleaseAll()
	}
	if got := m.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d at end", got)
	}
}

// TestDeadlockUpgrade: two readers both upgrading to Exclusive on the same
// table deadlock; the victim's failed upgrade leaves its Shared hold intact
// so the survivor can proceed only after the victim releases.
func TestDeadlockUpgrade(t *testing.T) {
	m := NewManager()
	older := m.Begin()
	younger := m.Begin()
	mustAcquire(t, older, req("T", Shared))
	mustAcquire(t, younger, req("T", Shared))
	olderDone := make(chan error, 1)
	go func() {
		olderDone <- older.AcquireContext(context.Background(), req("T", Exclusive))
	}()
	time.Sleep(10 * time.Millisecond)
	err := younger.AcquireContext(context.Background(), req("T", Exclusive))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("younger upgrade: err = %v, want ErrDeadlock", err)
	}
	// The failed upgrade must not have dropped the victim's Shared hold.
	if r, _ := m.Holders("T"); r != 2 {
		t.Fatalf("readers = %d after failed upgrade, want 2", r)
	}
	younger.ReleaseAll()
	select {
	case err := <-olderDone:
		if err != nil {
			t.Fatalf("surviving upgrade: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("surviving upgrade hung")
	}
	older.ReleaseAll()
}

// TestVictimPartialGrantRollback: a multi-table acquisition that dies midway
// (deadlock on its second table) must roll back the locks it granted in the
// same call while keeping the transaction's earlier-statement locks.
func TestVictimPartialGrantRollback(t *testing.T) {
	m := NewManager()
	older := m.Begin()
	younger := m.Begin()
	mustAcquire(t, older, req("C", Exclusive))
	mustAcquire(t, younger, req("HELD", Exclusive)) // earlier-statement lock
	olderDone := make(chan error, 1)
	go func() {
		olderDone <- older.AcquireContext(context.Background(), req("HELD", Exclusive))
	}()
	time.Sleep(10 * time.Millisecond)
	// Grants A and B, then deadlocks on C: A and B must be rolled back,
	// HELD must remain.
	err := younger.AcquireContext(context.Background(), []Request{
		{Table: "A", Mode: Exclusive},
		{Table: "B", Mode: Shared},
		{Table: "C", Mode: Exclusive},
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	for _, table := range []string{"A", "B"} {
		if r, w := m.Holders(table); r != 0 || w {
			t.Fatalf("%s not rolled back after victim abort: readers=%d writer=%v", table, r, w)
		}
	}
	if _, w := m.Holders("HELD"); !w {
		t.Fatal("earlier-statement lock released by the failing acquire")
	}
	younger.ReleaseAll()
	if err := <-olderDone; err != nil {
		t.Fatalf("older txn: %v", err)
	}
	older.ReleaseAll()
	if got := m.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d at end", got)
	}
}

func TestLockTimeoutFallback(t *testing.T) {
	m := NewManager()
	m.SetLockTimeout(30 * time.Millisecond)
	blocker := m.Begin()
	mustAcquire(t, blocker, req("T", Exclusive))
	waiter := m.Begin()
	start := time.Now()
	err := waiter.AcquireContext(context.Background(), req("T", Shared))
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timeout not honored: waited %v", time.Since(start))
	}
	if got := m.LockTimeouts(); got != 1 {
		t.Fatalf("LockTimeouts() = %d, want 1", got)
	}
	waiter.ReleaseAll()
	blocker.ReleaseAll()
	if got := m.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d at end", got)
	}
}

// TestWaitObserverOutsideMutex: the observer re-enters the manager
// (Outstanding takes m.mu); if it ran under the mutex this would
// self-deadlock. It must also fire for waits that end in a deadlock abort.
func TestWaitObserverOutsideMutex(t *testing.T) {
	m := NewManager()
	var mu sync.Mutex
	var observed []time.Duration
	m.SetWaitObserver(func(d time.Duration) {
		m.Outstanding() // re-entrant call: deadlocks if observer runs under m.mu
		mu.Lock()
		observed = append(observed, d)
		mu.Unlock()
	})
	blocker := m.Begin()
	mustAcquire(t, blocker, req("T", Exclusive))
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		w := m.Begin()
		mustAcquire(t, w, req("T", Shared))
		w.ReleaseAll()
	}()
	time.Sleep(10 * time.Millisecond)
	blocker.ReleaseAll()
	select {
	case <-waiterDone:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung (observer under mutex?)")
	}

	// A deadlock victim's wait is observed too.
	older, younger := m.Begin(), m.Begin()
	mustAcquire(t, older, req("A", Exclusive))
	mustAcquire(t, younger, req("B", Exclusive))
	olderDone := make(chan error, 1)
	go func() {
		olderDone <- older.AcquireContext(context.Background(), req("B", Exclusive))
	}()
	time.Sleep(10 * time.Millisecond)
	if err := younger.AcquireContext(context.Background(), req("A", Exclusive)); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	younger.ReleaseAll()
	if err := <-olderDone; err != nil {
		t.Fatalf("older: %v", err)
	}
	older.ReleaseAll()

	mu.Lock()
	n := len(observed)
	mu.Unlock()
	if n < 3 { // waiter + both deadlock parties blocked
		t.Fatalf("observed %d waits, want >= 3", n)
	}
}

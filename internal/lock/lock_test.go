package lock

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	h1 := m.Acquire([]Request{{Table: "T", Mode: Shared}})
	h2 := m.Acquire([]Request{{Table: "T", Mode: Shared}})
	readers, writer := m.Holders("T")
	if readers != 2 || writer {
		t.Fatalf("holders: %d readers writer=%v", readers, writer)
	}
	h1.Release()
	h2.Release()
	readers, writer = m.Holders("T")
	if readers != 0 || writer {
		t.Fatal("locks not released")
	}
}

func TestExclusiveExcludes(t *testing.T) {
	m := NewManager()
	h := m.Acquire([]Request{{Table: "T", Mode: Exclusive}})
	if got := m.TryAcquire([]Request{{Table: "T", Mode: Shared}}); got != nil {
		t.Fatal("shared must not coexist with exclusive")
	}
	if got := m.TryAcquire([]Request{{Table: "T", Mode: Exclusive}}); got != nil {
		t.Fatal("two exclusives must not coexist")
	}
	if got := m.TryAcquire([]Request{{Table: "OTHER", Mode: Exclusive}}); got == nil {
		t.Fatal("unrelated table must be grantable")
	} else {
		got.Release()
	}
	h.Release()
	h2 := m.TryAcquire([]Request{{Table: "T", Mode: Exclusive}})
	if h2 == nil {
		t.Fatal("lock must be grantable after release")
	}
	h2.Release()
}

func TestWriterWaitsForReaders(t *testing.T) {
	m := NewManager()
	reader := m.Acquire([]Request{{Table: "T", Mode: Shared}})
	acquired := make(chan struct{})
	go func() {
		w := m.Acquire([]Request{{Table: "T", Mode: Exclusive}})
		close(acquired)
		w.Release()
	}()
	select {
	case <-acquired:
		t.Fatal("writer acquired while a reader holds the lock")
	case <-time.After(20 * time.Millisecond):
	}
	reader.Release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("writer never acquired after reader release")
	}
}

func TestNormalizeDedupesAndUpgrades(t *testing.T) {
	m := NewManager()
	h := m.Acquire([]Request{
		{Table: "a", Mode: Shared},
		{Table: "A", Mode: Exclusive},
		{Table: "B", Mode: Shared},
		{Table: "b", Mode: Shared},
	})
	readersA, writerA := m.Holders("A")
	if readersA != 0 || !writerA {
		t.Fatalf("A should be exclusively locked once: %d %v", readersA, writerA)
	}
	readersB, writerB := m.Holders("B")
	if readersB != 1 || writerB {
		t.Fatalf("B should be shared once: %d %v", readersB, writerB)
	}
	h.Release()
	if r, w := m.Holders("A"); r != 0 || w {
		t.Fatal("A not fully released")
	}
	if r, w := m.Holders("B"); r != 0 || w {
		t.Fatal("B not fully released")
	}
}

func TestReleaseIdempotent(t *testing.T) {
	m := NewManager()
	h := m.Acquire([]Request{{Table: "T", Mode: Shared}})
	h.Release()
	h.Release() // no panic, no double-decrement
	if r, _ := m.Holders("T"); r != 0 {
		t.Fatalf("readers %d after double release", r)
	}
	var nilHeld *Held
	nilHeld.Release() // nil-safe
}

// TestNoDeadlockUnderContention: goroutines repeatedly lock overlapping
// table sets in conflicting orders; sorted acquisition must prevent
// deadlock. Run with -race.
func TestNoDeadlockUnderContention(t *testing.T) {
	m := NewManager()
	tables := []string{"A", "B", "C", "D"}
	var wg sync.WaitGroup
	var ops int64
	deadline := time.Now().Add(300 * time.Millisecond)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				// Each goroutine asks for two tables in "wrong" order with
				// mixed modes.
				a := tables[g%len(tables)]
				b := tables[(g+1+g%2)%len(tables)]
				mode := Shared
				if g%3 == 0 {
					mode = Exclusive
				}
				h := m.Acquire([]Request{
					{Table: b, Mode: mode},
					{Table: a, Mode: Shared},
				})
				atomic.AddInt64(&ops, 1)
				h.Release()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: workers did not finish")
	}
	if ops == 0 {
		t.Fatal("no operations completed")
	}
	for _, tb := range tables {
		if r, w := m.Holders(tb); r != 0 || w {
			t.Fatalf("table %s left locked: %d %v", tb, r, w)
		}
	}
}

// TestSharedConcurrency verifies that shared locks genuinely run in
// parallel: the max observed concurrent reader count must exceed 1.
func TestSharedConcurrency(t *testing.T) {
	m := NewManager()
	var cur, max int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h := m.Acquire([]Request{{Table: "T", Mode: Shared}})
				n := atomic.AddInt64(&cur, 1)
				for {
					old := atomic.LoadInt64(&max)
					if n <= old || atomic.CompareAndSwapInt64(&max, old, n) {
						break
					}
				}
				time.Sleep(time.Microsecond)
				atomic.AddInt64(&cur, -1)
				h.Release()
			}
		}()
	}
	wg.Wait()
	if atomic.LoadInt64(&max) < 2 {
		t.Fatalf("max concurrent readers %d; shared locks should coexist", max)
	}
}

func TestAcquireContextCanceledBeforeWait(t *testing.T) {
	m := NewManager()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, err := m.AcquireContext(ctx, []Request{{Table: "T", Mode: Exclusive}})
	if h != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled acquire: held=%v err=%v", h, err)
	}
	if m.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after failed acquire", m.Outstanding())
	}
}

func TestAcquireContextCancelWhileWaiting(t *testing.T) {
	m := NewManager()
	blocker := m.Acquire([]Request{{Table: "B", Mode: Exclusive}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// A grants immediately; B blocks behind the writer. Cancellation must
		// roll back the grant on A.
		h, err := m.AcquireContext(ctx, []Request{
			{Table: "A", Mode: Shared}, {Table: "B", Mode: Shared},
		})
		if h != nil {
			h.Release()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled wait: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	if got := m.Outstanding(); got != 1 { // only the blocker remains
		t.Fatalf("outstanding = %d after canceled waiter rollback, want 1", got)
	}
	blocker.Release()
	if m.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after release", m.Outstanding())
	}
}

func TestAcquireContextDeadline(t *testing.T) {
	m := NewManager()
	blocker := m.Acquire([]Request{{Table: "T", Mode: Exclusive}})
	defer blocker.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	h, err := m.AcquireContext(ctx, []Request{{Table: "T", Mode: Shared}})
	if h != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline acquire: held=%v err=%v", h, err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("deadline not honored: waited %v", time.Since(start))
	}
}

// TestCancelDoesNotStrandOtherWaiters: a canceled waiter's rollback must wake
// the remaining waiters (its partial grants may be what they were queued on).
func TestCancelDoesNotStrandOtherWaiters(t *testing.T) {
	m := NewManager()
	blocker := m.Acquire([]Request{{Table: "B", Mode: Exclusive}})
	ctx, cancel := context.WithCancel(context.Background())
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		// Grants A exclusively, then parks on B.
		h, _ := m.AcquireContext(ctx, []Request{
			{Table: "A", Mode: Exclusive}, {Table: "B", Mode: Shared},
		})
		if h != nil {
			h.Release()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	secondDone := make(chan struct{})
	go func() {
		defer close(secondDone)
		// Queued behind the first waiter's exclusive grant on A.
		m.Acquire([]Request{{Table: "A", Mode: Shared}}).Release()
	}()
	time.Sleep(10 * time.Millisecond)
	cancel() // first waiter rolls back A; second must wake and proceed
	select {
	case <-secondDone:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter stranded after another waiter's cancellation")
	}
	<-firstDone
	blocker.Release()
	if m.Outstanding() != 0 {
		t.Fatalf("outstanding = %d at end", m.Outstanding())
	}
}

// Outside the accounting-sensitive packages the global ledger is the right
// source for DB-wide aggregates (metrics, experiment drivers): no finding.
package other

import "fixture/storage"

func aggregate(bp *storage.BufferPool) int64 {
	return bp.Stats().FetchCount()
}

// The stmtio cases: per-operator fetch deltas in the executor must come
// from the statement's StmtIO accumulator, never the pool's global ledger.
package exec

import "fixture/storage"

type op struct {
	io      storage.StmtIO
	pool    *storage.BufferPool
	fetches int64
}

// Differencing the global counter attributes concurrent statements' I/O to
// this operator — exactly the bug PR 5 fixed.
func (o *op) nextGlobal() {
	before := o.pool.Stats().FetchCount()             // want "DB-global IOStats"
	o.fetches += o.pool.Stats().FetchCount() - before // want "DB-global IOStats"
}

// The statement-local accumulator is the sanctioned counter.
func (o *op) nextLocal() {
	before := o.io.FetchCount()
	o.fetches += o.io.FetchCount() - before
}

// The escape hatch: a directive with a reason silences the finding.
func (o *op) debugDump() int64 {
	//sysrcheck:ignore stmtio debugging helper reports the global ledger on purpose
	return o.pool.Stats().FetchCount()
}

// Package mid holds helpers whose loops rely on the caller ticking: clean
// when every entry point above them ticks, flagged when one does not. The
// per-package govtick rule cannot see this — only the call graph can.
package mid

import "fixture/rss"

// PumpCovered is only reached from ticking callers (engine.RunTicking), so
// its loop runs under a budget on every path.
func PumpCovered(s *rss.Scan) error {
	for {
		_, ok, err := s.Next()
		if err != nil || !ok {
			return err
		}
	}
}

// PumpExposed is also reached from an entry point that never ticks.
func PumpExposed(s *rss.Scan) error {
	for { // want "no governor anywhere on the call stack"
		_, ok, err := s.Next()
		if err != nil || !ok {
			return err
		}
	}
}

// Package engine supplies the entry points whose ticking (or not)
// determines the helpers' fate.
package engine

import (
	"fixture/governor"
	"fixture/mid"
	"fixture/rss"
)

// RunTicking ticks before delegating: everything below runs under a
// budget, so PumpCovered's loop is clean.
func RunTicking(b *governor.Budget, s *rss.Scan) error {
	if err := b.Tick(); err != nil {
		return err
	}
	return mid.PumpCovered(s)
}

// RunBare never ticks: PumpExposed's loop is reported with this chain.
func RunBare(s *rss.Scan) error {
	return mid.PumpExposed(s)
}

// DrainLocal drives the producer straight from an unticking entry point.
func DrainLocal(s *rss.Scan) error {
	for { // want "no governor anywhere on the call stack"
		_, ok, err := s.Next()
		if err != nil || !ok {
			return err
		}
	}
}

// DrainGoverned drives a producer that ticks internally: clean even from
// an unticking entry point.
func DrainGoverned(s *rss.GovScan) error {
	for {
		_, ok, err := s.Next()
		if err != nil || !ok {
			return err
		}
	}
}

// DrainTickingLoop ticks inside the loop body: clean the local way.
func DrainTickingLoop(b *governor.Budget, s *rss.Scan) error {
	for {
		if err := b.Tick(); err != nil {
			return err
		}
		_, ok, err := s.Next()
		if err != nil || !ok {
			return err
		}
	}
}

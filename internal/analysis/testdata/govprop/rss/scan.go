// Package rss supplies one ungoverned and one governed producer for the
// interprocedural propagation cases.
package rss

import "fixture/governor"

type Row []int

type Scan struct{ rows []Row }

// Next is an ungoverned producer: loops driving it need a budget somewhere
// on the call stack.
func (s *Scan) Next() (Row, bool, error) {
	if len(s.rows) == 0 {
		return nil, false, nil
	}
	r := s.rows[0]
	s.rows = s.rows[1:]
	return r, true, nil
}

type GovScan struct {
	b    *governor.Budget
	rows []Row
}

// Next ticks internally, so it is governed wherever it is driven from.
func (s *GovScan) Next() (Row, bool, error) {
	if err := s.b.Tick(); err != nil {
		return nil, false, err
	}
	if len(s.rows) == 0 {
		return nil, false, nil
	}
	r := s.rows[0]
	s.rows = s.rows[1:]
	return r, true, nil
}

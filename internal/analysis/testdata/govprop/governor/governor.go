// Package governor mirrors the real statement governor's Budget for the
// govtick fixtures: any method call on it counts as a checkpoint.
package governor

type Budget struct{ used int }

func (b *Budget) Tick() error { b.used++; return nil }

func (b *Budget) Check() error { return nil }

// Package systemr mirrors the engine facade: DB.mu is rank 20, near the
// top of the hierarchy, so work below it may take any leaf mutex — the
// cross-package clean path.
package systemr

import (
	"sync"

	"fixture/storage"
)

type DB struct {
	mu   sync.Mutex
	pool *storage.BufferPool
}

// statsUnderLock is clean: Fetch's rank-80 acquisition nests inside the
// rank-20 facade lock.
func (db *DB) statsUnderLock() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pool.Fetch(7)
}

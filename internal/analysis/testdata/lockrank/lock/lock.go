// Package lock mirrors the real lock manager for the lockrank fixtures:
// Acquire is the rank-10 table-lock tier (nothing ranked may be held across
// it), and Manager.mu is the rank-60 internal mutex.
package lock

import "sync"

type Manager struct {
	mu   sync.Mutex
	wake chan struct{}
}

// Acquire takes m.mu; the unlock-wait-relock hand-off below must not read
// as a self-deadlock — each select branch relocks on its own path.
func (m *Manager) Acquire(table string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.wake != nil {
		wake := m.wake
		m.mu.Unlock()
		select {
		case <-wake:
			m.mu.Lock()
		default:
			m.mu.Lock()
			return nil
		}
	}
	return nil
}

// reacquire really is a self-deadlock: sync.Mutex is not re-entrant.
func (m *Manager) reacquire() {
	m.mu.Lock()
	m.mu.Lock() // want "reacquires lock.Manager.mu already held"
	m.mu.Unlock()
	m.mu.Unlock()
}

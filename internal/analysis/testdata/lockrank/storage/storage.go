// Package storage mirrors the pool/page mutex tiers: BufferPool.mu is rank
// 80 and Page.mu rank 100 — the innermost leaves of the hierarchy, so
// almost nothing may be acquired while they are held.
package storage

import (
	"sync"

	"fixture/lock"
)

type Page struct {
	mu sync.RWMutex
}

type BufferPool struct {
	mu    sync.Mutex
	locks *lock.Manager
}

// Fetch is the clean shape: the structural lock guards only the map work.
func (p *BufferPool) Fetch(id int) *Page {
	p.mu.Lock()
	defer p.mu.Unlock()
	return &Page{}
}

// helper exists to prove summaries propagate two levels: its own summary
// inherits Fetch's rank-80 acquisition.
func (p *BufferPool) helper() *Page {
	return p.Fetch(2)
}

// evictThenLock acquires a table lock while holding the structural mutex:
// a blocked table-lock wait would hold the pool lock indefinitely.
func (p *BufferPool) evictThenLock() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.locks.Acquire("emp") // want "while holding storage.BufferPool.mu"
}

// latchThenPool takes the pool lock while holding a page latch: rank 80
// under rank 100, directly.
func (p *BufferPool) latchThenPool(pg *Page) {
	pg.mu.RLock()
	defer pg.mu.RUnlock()
	p.mu.Lock() // want "while holding storage.Page.mu"
	p.mu.Unlock()
}

// latchThenFetch reaches the same inversion through two calls: helper's
// summary carries Fetch's acquisition.
func (p *BufferPool) latchThenFetch(pg *Page) {
	pg.mu.RLock()
	defer pg.mu.RUnlock()
	p.helper() // want "call to storage.BufferPool.helper may acquire"
}

// sequential is clean: the page latch is released before the pool lock.
func (p *BufferPool) sequential(pg *Page) {
	pg.mu.RLock()
	pg.mu.RUnlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// Package storage declares the counter the atomic discipline protects:
// Fetches is touched through sync/atomic here, which marks the field for
// the whole program.
package storage

import "sync/atomic"

type IOStats struct {
	Fetches int64
	Misses  int64
}

// Record and Snapshot are the sanctioned access forms.
func (s *IOStats) Record() {
	atomic.AddInt64(&s.Fetches, 1)
}

func (s *IOStats) Snapshot() int64 {
	return atomic.LoadInt64(&s.Fetches)
}

// reset mixes a plain write into the same package.
func (s *IOStats) reset() {
	s.Fetches = 0 // want "non-atomic access of storage.Fetches"
}

// Miss only ever touches Misses plainly, so that field is outside the
// discipline entirely.
func (s *IOStats) Miss() {
	s.Misses++
}

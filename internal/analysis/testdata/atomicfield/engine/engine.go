// Package engine accesses the counter from across the package boundary:
// the atomic-use fact travels with the field object, so the mixed read here
// is caught even though the atomic writes live in storage.
package engine

import (
	"sync/atomic"

	"fixture/storage"
)

// Report mixes a plain read of a field storage touches atomically.
func Report(s *storage.IOStats) int64 {
	return s.Fetches // want "non-atomic access of storage.Fetches"
}

// ReportAtomic is the sanctioned form.
func ReportAtomic(s *storage.IOStats) int64 {
	return atomic.LoadInt64(&s.Fetches)
}

// Fresh constructs the struct: composite-literal initialization is exempt —
// a value under construction is not yet shared.
func Fresh() *storage.IOStats {
	return &storage.IOStats{Fetches: 0}
}

// Plain reads of the undisciplined field are fine anywhere.
func Misses(s *storage.IOStats) int64 {
	return s.Misses
}

// The txn cases: the transaction layer records undo images via the RSS
// write path; decoding heap records directly would let undo observe
// versions its own snapshot could never see.
package txn

import "fixture/storage"

func undoImage(p *storage.Page, i uint16) storage.Row {
	rec, _, ok := p.Record(i) // want "raw Page.Record bypasses MVCC visibility"
	if !ok {
		return nil
	}
	row, _ := storage.DecodeRow(rec) // want "storage.DecodeRow on a heap record bypasses MVCC visibility"
	return row
}

// Outside exec and txn — the RSS itself, dump, catalog bootstrap, test
// scaffolding — raw record access is the job: no finding.
package other

import "fixture/storage"

func rawDump(p *storage.Page, n uint16) [][]byte {
	var out [][]byte
	for i := uint16(0); i < n; i++ {
		rec, _, ok := p.Record(i)
		if !ok {
			continue
		}
		if h, body, err := storage.ParseVersionHeader(rec); err == nil && h.Xmax == 0 {
			if _, err := storage.DecodeRow(body); err == nil {
				out = append(out, rec)
			}
		}
	}
	return out
}

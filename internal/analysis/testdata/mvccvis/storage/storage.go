// Package storage mirrors the version-header and record primitives the
// mvccvis analyzer polices: the raw accessors (Record, DecodeRow,
// ParseVersionHeader) and the sanctioned visibility path (ReadVersioned +
// Snapshot.Visible).
package storage

type RelID uint32

type XID uint64

type Row []any

type VersionHeader struct {
	Xmin, Xmax XID
}

type Snapshot struct {
	Self, Max XID
}

func (s *Snapshot) Visible(h VersionHeader) bool { return h.Xmax == 0 }

type Page struct{ n uint16 }

func (p *Page) Record(i uint16) (rec []byte, rel RelID, ok bool) { return nil, 0, i < p.n }

func (p *Page) ReadVersioned(i uint16) (VersionHeader, Row, RelID, bool) {
	return VersionHeader{}, nil, 0, i < p.n
}

func DecodeRow(rec []byte) (Row, error) { return nil, nil }

func ParseVersionHeader(rec []byte) (VersionHeader, []byte, error) {
	return VersionHeader{}, rec, nil
}

// The exec cases: the executor consumes rows the RSS already ran through
// the snapshot visibility check. Re-deriving rows from raw page records
// here would resurrect delete-marked and uncommitted versions.
package exec

import "fixture/storage"

func rawScan(p *storage.Page, n uint16) []storage.Row {
	var out []storage.Row
	for i := uint16(0); i < n; i++ {
		rec, _, ok := p.Record(i) // want "raw Page.Record bypasses MVCC visibility"
		if !ok {
			continue
		}
		row, err := storage.DecodeRow(rec) // want "storage.DecodeRow on a heap record bypasses MVCC visibility"
		if err != nil {
			continue
		}
		out = append(out, row)
	}
	return out
}

func peekHeader(rec []byte) storage.XID {
	h, _, err := storage.ParseVersionHeader(rec) // want "hand-rolled version-header parsing bypasses MVCC visibility"
	if err != nil {
		return 0
	}
	return h.Xmin
}

// The sanctioned shape: ReadVersioned pairs the row with its header so the
// snapshot can rule on it — no finding.
func visibleScan(p *storage.Page, s *storage.Snapshot, n uint16) []storage.Row {
	var out []storage.Row
	for i := uint16(0); i < n; i++ {
		h, row, _, ok := p.ReadVersioned(i)
		if ok && s.Visible(h) {
			out = append(out, row)
		}
	}
	return out
}

// The escape hatch: a directive with a reason silences the finding.
func dumpForTest(p *storage.Page) []byte {
	//sysrcheck:ignore mvccvis test-only raw dump, compared against the oracle heap
	rec, _, _ := p.Record(0)
	return rec
}

// Package lock mirrors the real internal/lock: Acquire hands out a *Held
// that must be released.
package lock

type Manager struct{}

type Held struct{ n int }

func (m *Manager) Acquire() *Held { return &Held{} }

func (m *Manager) AcquireContext() (*Held, error) { return &Held{}, nil }

func (h *Held) Release() {}

func (h *Held) ID() int { return h.n }

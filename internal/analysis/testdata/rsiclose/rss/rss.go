// Package rss mirrors the shape of the real internal/rss for the rsiclose
// fixtures: a closable scan with the Open/Next/Close protocol. The path
// tail "rss" is what makes Scan a tracked resource.
package rss

type Row []int

type Scan struct{ open bool }

func (s *Scan) Open() error {
	s.open = true
	return nil
}

func (s *Scan) Next() (Row, bool, error) { return nil, false, nil }

func (s *Scan) Close() error {
	s.open = false
	return nil
}

// OpenSegScan is an acquiring constructor: Open prefix, closable result.
func OpenSegScan() (*Scan, error) { return &Scan{open: true}, nil }

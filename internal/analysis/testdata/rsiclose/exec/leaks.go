// The rsiclose cases: every function is one path shape the analyzer must
// get right — leaks flagged, closes / escapes / error guards not.
package exec

import (
	"errors"

	"fixture/lock"
	"fixture/rss"
)

var errBusy = errors.New("busy")

func tooBig() bool { return false }

// The canonical leak: an early return between acquire and release.
func leakEarlyReturn(m *lock.Manager) error {
	h, err := m.AcquireContext()
	if err != nil {
		return err // the acquisition's own failure path: exempt
	}
	if tooBig() {
		return errBusy // want "h acquired from AcquireContext .* may not be released on this return path"
	}
	h.Release()
	return nil
}

// A resource that is simply never released.
func neverReleased(m *lock.Manager) {
	h := m.Acquire() // want "h acquired from Acquire is never released"
	h.ID()
}

// Open-protocol leak: scan opened, then an error return skips the close.
func leakAfterOpen(s *rss.Scan) error {
	if err := s.Open(); err != nil {
		return err // exempt: Open failed, nothing to close
	}
	if tooBig() {
		return errBusy // want "s acquired from s.Open .* may not be closed on this return path"
	}
	return s.Close()
}

// A deferred close anywhere in the function covers every path...
func deferredClose(m *lock.Manager) error {
	h, err := m.AcquireContext()
	if err != nil {
		return err
	}
	defer h.Release()
	if tooBig() {
		return errBusy
	}
	return nil
}

// ...including a defer registered before the Open it covers (the
// blockCtx.run pattern in the real executor).
func deferBeforeOpen(s *rss.Scan) error {
	defer func() { _ = s.Close() }()
	if err := s.Open(); err != nil {
		return err
	}
	_, _, err := s.Next()
	return err
}

// Closing on both arms of a branch satisfies both paths.
func closeBothArms(m *lock.Manager) error {
	h, err := m.AcquireContext()
	if err != nil {
		return err
	}
	if tooBig() {
		h.Release()
		return errBusy
	}
	h.Release()
	return nil
}

// Returning the resource transfers ownership to the caller.
func handOut() (*rss.Scan, error) {
	s, err := rss.OpenSegScan()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Storing the resource into another value transfers ownership too.
type cursor struct{ scan *rss.Scan }

func stash(c *cursor) error {
	s, err := rss.OpenSegScan()
	if err != nil {
		return err
	}
	c.scan = s
	return nil
}

// Rebinding the acquisition's error variable invalidates the guard: the
// second `err != nil` return no longer means "nothing was acquired".
func reboundErr(m *lock.Manager) error {
	h, err := m.AcquireContext()
	if err != nil {
		return err
	}
	err = probe()
	if err != nil {
		return err // want "h acquired from AcquireContext .* may not be released on this return path"
	}
	h.Release()
	return nil
}

func probe() error { return nil }

// Package storage mirrors the MVCC read surface: ReadVersioned and Visible
// are the sinks every call chain must reach under a pinned snapshot.
package storage

type XID uint64

type Snapshot struct {
	xmin XID
}

func (s *Snapshot) Visible(x XID) bool { return x < s.xmin }

type Page struct {
	slots []XID
}

func (p *Page) ReadVersioned(slot int) (XID, bool) {
	if slot < len(p.slots) {
		return p.slots[slot], true
	}
	return 0, false
}

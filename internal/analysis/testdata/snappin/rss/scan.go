// Package rss holds the scan that reads versions. Its Next is reached both
// from a pinned chain (clean) and from an unpinned entry point — the
// findings land on the sink calls here, naming the unpinned chain.
package rss

import "fixture/storage"

type Scan struct {
	Snap *storage.Snapshot
	Page *storage.Page
}

func (s *Scan) Next() (storage.XID, bool) {
	x, ok := s.Page.ReadVersioned(0) // want "without a pinned snapshot"
	if !ok {
		return 0, false
	}
	if !s.Snap.Visible(x) { // want "without a pinned snapshot"
		return 0, false
	}
	return x, true
}

// Package engine exercises both snappin checks: unpinned origins reaching
// the read sinks, and pins that are not released on every return path.
package engine

import (
	"fixture/rss"
	"fixture/storage"
	"fixture/txn"
)

// DrainUnpinned is an entry point with no Begin anywhere on its chain — it
// conjures the scan out of a bare page rather than receiving one bound to
// a snapshot. The findings land on the scan's sink calls, naming this
// chain. (A root that *receives* a snapshot-carrying value is a contract
// boundary instead; see External.)
func DrainUnpinned(p *storage.Page) {
	s := &rss.Scan{Snap: &storage.Snapshot{}, Page: p}
	for {
		if _, ok := s.Next(); !ok {
			return
		}
	}
}

// DrainPinned captures and releases a registration around the same scan.
func DrainPinned(r *txn.Registry, s *rss.Scan) {
	reg := r.Begin()
	defer r.Finish(reg)
	for {
		if _, ok := s.Next(); !ok {
			return
		}
	}
}

// ReadDirect reads a version right here with no pin on any chain.
func ReadDirect(p *storage.Page) {
	p.ReadVersioned(3) // want "without a pinned snapshot"
}

// External receives the snapshot from outside the program: the signature
// moves the pin obligation to the caller, so this root is a contract
// boundary, not a finding.
func External(snap *storage.Snapshot, p *storage.Page) bool {
	x, ok := p.ReadVersioned(0)
	return ok && snap.Visible(x)
}

// leakyPin releases on the happy path but not on the early return.
func leakyPin(r *txn.Registry, s *rss.Scan) {
	reg := r.Begin()
	if _, ok := s.Next(); !ok {
		return // want "not be released on this return path"
	}
	r.Finish(reg)
}

// forgottenPin never releases at all.
func forgottenPin(r *txn.Registry) {
	reg := r.Begin() // want "never released"
	if reg.Snap == nil {
		panic("registry issued a pin with no snapshot")
	}
}

// Package txn mirrors the registry: Begin pins the vacuum horizon, Finish
// releases it, and Reg is the registration pin carriers hold.
package txn

import "fixture/storage"

type Reg struct {
	Snap *storage.Snapshot
}

type Registry struct {
	regs []*Reg
}

func (r *Registry) Begin() *Reg {
	reg := &Reg{Snap: &storage.Snapshot{}}
	r.regs = append(r.regs, reg)
	return reg
}

func (r *Registry) Finish(reg *Reg) {
	for i, q := range r.regs {
		if q == reg {
			r.regs = append(r.regs[:i], r.regs[i+1:]...)
			return
		}
	}
}

// The misuse half of the directive fixture: well-formed directives that
// excuse nothing, directives for analyzers outside the running set, and
// the malformed shapes. The test asserts each reported line by marker
// because the flagged line is the directive itself, where no want comment
// can live.
package lib

// Quiet carries a well-formed, reasoned directive with nothing to excuse:
// reported as unused so stale excuses do not outlive their findings.
func Quiet() int {
	//sysrcheck:ignore nakedpanic fixture: nothing to excuse
	return 1
}

// NotRunning carries a directive for an analyzer outside this run's set;
// a partial run must leave it alone rather than condemn it unexercised.
func NotRunning() int {
	//sysrcheck:ignore govtick fixture: govtick is not in this run
	return 2
}

// Malformed shapes, each reported at its own line.
func Malformed(x int) error {
	//sysrcheck:ignore
	//sysrcheck:ignore nakedpanic
	//sysrcheck:ignore nakedpanic,, fixture: empty name inside the list
	if x < 0 {
		return errBad
	}
	return nil
}

// Package lib exercises the //sysrcheck:ignore escape hatch end to end:
// both comment forms, comma-separated analyzer lists, malformed shapes,
// and the unused-directive accounting. Every genuine finding in this file
// is excused by a directive, so a surviving nakedpanic or noprint
// diagnostic means suppression broke.
package lib

import "errors"

var errBad = errors.New("bad")

// LineForm's panic is excused by a reasoned line directive directly above.
func LineForm(x int) error {
	if x < 0 {
		//sysrcheck:ignore nakedpanic fixture: excused by a line directive
		panic("negative")
	}
	return errBad
}

// BlockForm's panic is excused by a single-line block comment.
func BlockForm() {
	/* sysrcheck:ignore nakedpanic fixture: excused by a block directive */
	panic("boom")
}

// MultiLineBlock's panic is excused by a directive on the last line of a
// multi-line block comment: the effective position is the line the
// directive text sits on, which is directly above the panic.
func MultiLineBlock() {
	/* this crash is load-bearing for the fixture:
	sysrcheck:ignore nakedpanic fixture: directive inside a block body */
	panic("boom")
}

// MultiAnalyzer carries one comma-list directive that silences a noprint
// finding on its own line and a nakedpanic finding on the line below.
func MultiAnalyzer() {
	println("x") //sysrcheck:ignore noprint,nakedpanic fixture: one directive, two analyzers
	panic("y")
}

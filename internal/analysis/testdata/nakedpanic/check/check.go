// The sanctioned helper package itself has to panic to exist.
package check

import "fmt"

func Failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) // ok: the sanctioned entry point
}

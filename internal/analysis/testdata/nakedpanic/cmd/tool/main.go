// Programs own their crash behavior: anything under a cmd/ segment is
// exempt.
package main

func main() {
	panic("startup") // ok: cmd/ package
}

// The nakedpanic cases for a library package.
package lib

import "errors"

var errBad = errors.New("bad")

func Do(x int) error {
	if x < 0 {
		panic("negative") // want "naked panic in library code"
	}
	return errBad
}

// The Must prefix is the documented panic-on-error convention.
func MustDo(x int) {
	if err := Do(x); err != nil {
		panic(err) // ok: Must* helper
	}
}

func mustInternal(x int) {
	if x < 0 {
		panic("negative") // ok: must* helper
	}
}

// Package rss supplies a governed producer for the cross-package fact
// test: Next checks the budget internally, so loops driving it from other
// packages need no checkpoint of their own.
package rss

import "fixture/governor"

type Row []int

type Scan struct {
	b *governor.Budget
}

func (s *Scan) Next() (Row, bool, error) {
	if err := s.b.Tick(); err != nil {
		return nil, false, err
	}
	return Row{1}, true, nil
}

// Package storage mirrors the page-producing surface the govtick analyzer
// knows about: BufferPool.Fetch and Segment.Insert.
package storage

type Page struct{}

type BufferPool struct{}

func (bp *BufferPool) Fetch(id int) (*Page, error) { return &Page{}, nil }

type Segment struct{}

func (s *Segment) Insert(n int, rec []byte) (int, error) { return 0, nil }

// The govtick cases: producing loops with and without checkpoints, the
// governed-producer facts, and the ignore directive.
package exec

import (
	"fixture/governor"
	"fixture/rss"
	"fixture/storage"
)

type input func() (rss.Row, bool, error)

// A loop draining a dynamic producer needs its own checkpoint: the callee
// can never be proven governed.
func drainUngoverned(in input) error {
	for { // want "loop produces tuples/pages .* without a governor budget check"
		_, ok, err := in()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// The same loop with a budget checkpoint passes.
func drainGoverned(b *governor.Budget, in input) error {
	for {
		if err := b.Tick(); err != nil {
			return err
		}
		_, ok, err := in()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// Driving a producer that checks the budget internally passes without a
// loop-level checkpoint — the governed fact crosses the package boundary.
func drainScan(s *rss.Scan) error {
	for {
		_, ok, err := s.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// An ungoverned Next in this package is flagged.
type rawIter struct{}

func (it *rawIter) Next() (rss.Row, bool, error) { return nil, false, nil }

func drainRaw(it *rawIter) {
	for { // want "loop produces tuples/pages .* without a governor budget check"
		_, ok, _ := it.Next()
		if !ok {
			return
		}
	}
}

// Governedness is transitive: next delegates to the governed scan, so the
// loop below needs no checkpoint of its own.
type wrapped struct{ s *rss.Scan }

func (w *wrapped) next() (rss.Row, bool, error) { return w.s.Next() }

func drainWrapped(w *wrapped) {
	for {
		_, ok, _ := w.next()
		if !ok {
			return
		}
	}
}

// Page fetches and inserts are producers too.
func fetchAll(bp *storage.BufferPool, ids []int) error {
	for _, id := range ids { // want "loop produces tuples/pages .* without a governor budget check"
		if _, err := bp.Fetch(id); err != nil {
			return err
		}
	}
	return nil
}

func insertAll(b *governor.Budget, seg *storage.Segment, recs [][]byte) error {
	for _, rec := range recs {
		if err := b.Tick(); err != nil {
			return err
		}
		if _, err := seg.Insert(1, rec); err != nil {
			return err
		}
	}
	return nil
}

// The escape hatch: a directive with a reason silences the finding.
func boundedWalk(bp *storage.BufferPool) {
	//sysrcheck:ignore govtick fixed three-page header walk, not data volume
	for id := 0; id < 3; id++ {
		_, _ = bp.Fetch(id)
	}
}

// A directive on the flagged line itself works too.
func boundedInline(bp *storage.BufferPool) {
	for id := 0; id < 2; id++ { //sysrcheck:ignore govtick two-page probe, bounded
		_, _ = bp.Fetch(id)
	}
}

// A directive without a reason is itself a finding and silences nothing.
func reasonless(bp *storage.BufferPool, ids []int) {
	//sysrcheck:ignore govtick
	for _, id := range ids { // want "loop produces tuples/pages .* without a governor budget check"
		_, _ = bp.Fetch(id)
	}
}

// A directive naming a different analyzer silences nothing either.
func wrongName(bp *storage.BufferPool, ids []int) {
	//sysrcheck:ignore rsiclose wrong analyzer named here
	for _, id := range ids { // want "loop produces tuples/pages .* without a governor budget check"
		_, _ = bp.Fetch(id)
	}
}

// Outside the engine packages — the catalog bootstrap, test scaffolding —
// the primitives are legitimate (DDL is not undoable by design): no finding.
package other

import "fixture/rss"

func seed(t *rss.Table, rows [][]byte) {
	for _, r := range rows {
		if _, err := rss.Insert(t, r); err != nil {
			return
		}
	}
}

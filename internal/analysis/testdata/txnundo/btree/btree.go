// Package btree mirrors the index mutation primitives.
package btree

import "fixture/storage"

type BTree struct{ n int }

func (t *BTree) Insert(key []byte, tid storage.TID) bool { t.n++; return true }

func (t *BTree) Delete(key []byte, tid storage.TID) bool { t.n--; return true }

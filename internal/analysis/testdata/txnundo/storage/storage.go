// Package storage mirrors the mutation primitives the txnundo analyzer
// forbids outside the sanctioned write path.
package storage

type RelID uint32

type TID struct{ Page, Slot uint16 }

type Page struct{ n uint16 }

func (p *Page) Insert(rel RelID, record []byte) (uint16, error) {
	p.n++
	return p.n - 1, nil
}

func (p *Page) Delete(i uint16) bool { return i < p.n }

func (p *Page) Restore(i uint16, rel RelID, record []byte) bool { return i < p.n }

func (p *Page) SwapXmax(i uint16, old, new uint64) (uint64, bool, bool) { return old, true, true }

type Segment struct{ pages []*Page }

func (s *Segment) Insert(rel RelID, record []byte) (TID, error) { return TID{}, nil }

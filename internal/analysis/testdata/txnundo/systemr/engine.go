// The engine cases: statement executors must write through txn.Txn, which
// logs each mutation's inverse; calling the RSI write path directly drops
// the undo record.
package systemr

import "fixture/rss"

func execInsert(t *rss.Table, rows [][]byte) error {
	for _, r := range rows {
		if _, err := rss.Insert(t, r); err != nil { // want "rss.Insert called outside the transaction layer"
			return err
		}
	}
	return nil
}

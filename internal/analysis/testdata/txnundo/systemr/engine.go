// The engine cases: statement executors must write through txn.Txn, which
// logs each mutation's inverse; calling the RSI write path directly drops
// the undo record.
package systemr

import (
	"fixture/rss"
	"fixture/storage"
)

func execInsert(t *rss.Table, rows [][]byte) error {
	for _, r := range rows {
		if _, err := rss.Insert(t, r); err != nil { // want "rss.Insert called outside the transaction layer"
			return err
		}
	}
	return nil
}

func execDelete(t *rss.Table, p *storage.Page, tids []storage.TID) {
	for _, tid := range tids {
		rss.MarkDeleted(t, p, tid, 3) // want "rss.MarkDeleted called outside the transaction layer"
	}
}

func undoDelete(t *rss.Table, p *storage.Page, tid storage.TID, rec []byte) {
	rss.ClearDeleted(t, p, tid, 3) // want "rss.ClearDeleted called outside the transaction layer"
	rss.Remove(t, p, tid, rec)     // want "rss.Remove called outside the transaction layer"
}

// Vacuum is not undo-scoped: reclaiming versions below the snapshot horizon
// is legitimate outside txn.Txn — no finding.
func vacuum(t *rss.Table, p *storage.Page, rec []byte) {
	rss.VacuumTable(t, p, rec)
}

// The rss cases: Insert, Delete, and Restore ARE the write path — their
// bodies apply the storage and index primitives and are exempt. Any other
// function in the package mutating directly (or calling the write path
// itself, skipping the transaction's undo log) is flagged.
package rss

import (
	"fixture/btree"
	"fixture/storage"
)

type Table struct {
	Seg  *storage.Segment
	Tree *btree.BTree
}

// Insert is the sanctioned write path: its primitives draw no finding.
func Insert(t *Table, record []byte) (storage.TID, error) {
	tid, err := t.Seg.Insert(0, record)
	if err != nil {
		return storage.TID{}, err
	}
	t.Tree.Insert(record, tid)
	return tid, nil
}

// Delete is the sanctioned write path.
func Delete(t *Table, p *storage.Page, tid storage.TID, record []byte) error {
	p.Delete(tid.Slot)
	t.Tree.Delete(record, tid)
	return nil
}

// Restore is the sanctioned write path.
func Restore(t *Table, p *storage.Page, tid storage.TID, record []byte) error {
	p.Restore(tid.Slot, 0, record)
	t.Tree.Insert(record, tid)
	return nil
}

// A loader bypassing the write path entirely: flagged.
func bulkLoad(t *Table, records [][]byte) {
	for _, r := range records {
		t.Seg.Insert(0, r) // want "direct storage mutation Segment.Insert"
	}
}

// Even the package's own write path, called from a helper, skips the calling
// transaction's undo log: flagged.
func reindex(t *Table, records [][]byte) {
	for _, r := range records {
		Insert(t, r) // want "rss.Insert called outside the transaction layer"
	}
}

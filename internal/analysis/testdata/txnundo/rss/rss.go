// The rss cases: Insert, MarkDeleted, ClearDeleted, Remove, and VacuumTable
// ARE the write path — their bodies apply the storage and index primitives
// and are exempt. Any other function in the package mutating directly (or
// calling the write path itself, skipping the transaction's undo log) is
// flagged.
package rss

import (
	"fixture/btree"
	"fixture/storage"
)

type Table struct {
	Seg  *storage.Segment
	Tree *btree.BTree
}

// Insert is the sanctioned write path: its primitives draw no finding.
func Insert(t *Table, record []byte) (storage.TID, error) {
	tid, err := t.Seg.Insert(0, record)
	if err != nil {
		return storage.TID{}, err
	}
	t.Tree.Insert(record, tid)
	return tid, nil
}

// MarkDeleted is the sanctioned write path: the MVCC delete mark.
func MarkDeleted(t *Table, p *storage.Page, tid storage.TID, xid uint64) error {
	p.SwapXmax(tid.Slot, 0, xid)
	return nil
}

// ClearDeleted is the sanctioned write path: undo of a delete mark.
func ClearDeleted(t *Table, p *storage.Page, tid storage.TID, xid uint64) error {
	p.SwapXmax(tid.Slot, xid, 0)
	return nil
}

// Remove is the sanctioned write path: physical reclamation.
func Remove(t *Table, p *storage.Page, tid storage.TID, record []byte) error {
	p.Delete(tid.Slot)
	t.Tree.Delete(record, tid)
	return nil
}

// VacuumTable is the sanctioned write path: garbage collection below the
// snapshot horizon.
func VacuumTable(t *Table, p *storage.Page, record []byte) (int, error) {
	p.Delete(0)
	t.Tree.Delete(record, storage.TID{})
	return 1, nil
}

// A loader bypassing the write path entirely: flagged.
func bulkLoad(t *Table, records [][]byte) {
	for _, r := range records {
		t.Seg.Insert(0, r) // want "direct storage mutation Segment.Insert"
	}
}

// Even the package's own write path, called from a helper, skips the calling
// transaction's undo log: flagged.
func reindex(t *Table, records [][]byte) {
	for _, r := range records {
		Insert(t, r) // want "rss.Insert called outside the transaction layer"
	}
}

// The exec cases: the executor reads through the RSI but must never mutate
// pages or indexes directly — a mutation here is invisible to the undo log
// and survives rollback.
package exec

import (
	"fixture/btree"
	"fixture/storage"
)

func compact(p *storage.Page, n uint16) {
	for i := uint16(0); i < n; i++ {
		p.Delete(i) // want "direct storage mutation Page.Delete"
	}
}

func markDead(p *storage.Page, i uint16) {
	p.SwapXmax(i, 0, 7) // want "direct storage mutation Page.SwapXmax"
}

func patchIndex(t *btree.BTree, rec []byte, tid storage.TID) {
	t.Insert(rec, tid) // want "direct index mutation BTree.Insert"
	t.Delete(rec, tid) // want "direct index mutation BTree.Delete"
}

// The escape hatch: a directive with a reason silences the finding.
func rebuildForTest(p *storage.Page, rec []byte) {
	//sysrcheck:ignore txnundo test-only page surgery, reverted by the harness
	p.Restore(0, 0, rec)
}

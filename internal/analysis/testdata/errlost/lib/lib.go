// The errlost cases: error-returning Close/Unlock/Release results must
// not be silently dropped; void closers are naturally exempt.
package lib

type Cursor struct{}

func (c *Cursor) Close() error { return nil }

type Held struct{}

func (h *Held) Release() {} // void: exempt everywhere

type Mutex struct{}

func (m *Mutex) Unlock() error { return nil }

func drop(c *Cursor) {
	c.Close() // want "error from c.Close.. is dropped"
}

func dropDeferred(c *Cursor) {
	defer c.Close() // want "deferred c.Close.. drops its error"
}

func dropUnlock(m *Mutex) {
	m.Unlock() // want "error from m.Unlock.. is dropped"
}

func explicit(c *Cursor) {
	_ = c.Close() // ok: explicit, greppable discard
}

func propagated(c *Cursor) error {
	if err := c.Close(); err != nil { // ok: assigned
		return err
	}
	return c.Close() // ok: propagated
}

func deferredLiteral(c *Cursor) {
	defer func() { _ = c.Close() }() // ok: explicit inside the literal
}

func voidCloser(h *Held) {
	h.Release()       // ok: returns nothing
	defer h.Release() // ok: returns nothing
}

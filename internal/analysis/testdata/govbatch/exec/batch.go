// The govbatch cases: NextBatch bodies with a direct checkpoint, with a
// governed producer, with neither, and one reading the DB-global ledger.
package exec

import (
	"fixture/governor"
	"fixture/storage"
)

type batch struct{ rows []int }

func (b *batch) full() bool { return len(b.rows) >= 4 }

type scan struct {
	budget *governor.Budget
	pool   *storage.BufferPool
	io     storage.StmtIO
}

// A direct budget call per batch is the boundary idiom.
func (s *scan) NextBatch(b *batch) error {
	if err := s.budget.Tick(); err != nil {
		return err
	}
	for !b.full() {
		b.rows = append(b.rows, 1)
	}
	return nil
}

// next carries its own interior checkpoint, so drivers inherit it.
func (s *scan) next() (int, bool, error) {
	if err := s.budget.Check(); err != nil {
		return 0, false, err
	}
	return 1, true, nil
}

type filter struct{ src *scan }

// Driving a governed producer counts: the checkpoint fires inside next.
func (f *filter) nextBatch(b *batch) error {
	for !b.full() {
		v, ok, err := f.src.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b.rows = append(b.rows, v)
	}
	return nil
}

type rogue struct{ vals []int }

// No checkpoint anywhere: a canceled statement fills whole batches anyway.
func (r *rogue) NextBatch(b *batch) error { // want "fills a batch without a governor checkpoint"
	for !b.full() {
		b.rows = append(b.rows, len(b.rows))
	}
	return nil
}

type globalReader struct {
	budget  *governor.Budget
	pool    *storage.BufferPool
	fetches int64
}

// Ticked, but differencing the pool's global counter blends concurrent
// statements' I/O into the batch delta.
func (g *globalReader) nextBatch(b *batch) error {
	if err := g.budget.Tick(); err != nil {
		return err
	}
	f0 := g.pool.Stats().FetchCount() // want "DB-global IOStats"
	for !b.full() {
		b.rows = append(b.rows, 1)
	}
	g.fetches += g.pool.Stats().FetchCount() - f0 // want "DB-global IOStats"
	return nil
}

// Package storage mirrors the accounting surface the stmtio analyzer knows
// about: the buffer pool with its DB-global IOStats, and the per-statement
// StmtIO view.
package storage

type IOStats struct{ fetches int64 }

func (s *IOStats) FetchCount() int64 { return s.fetches }

type BufferPool struct{ stats IOStats }

func (bp *BufferPool) Stats() *IOStats { return &bp.stats }

func (bp *BufferPool) View(stmt *IOStats) StmtIO { return StmtIO{stmt: stmt} }

type StmtIO struct{ stmt *IOStats }

func (io StmtIO) FetchCount() int64 { return io.stmt.FetchCount() }

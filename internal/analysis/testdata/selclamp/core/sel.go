// The selclamp cases inside the clamp's home package (path tail "core"):
// declaring clamp01 here is legal; raw arithmetic into selectivity names
// is not.
package core

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// A selectivity-named function: its returns are checked, closures
// included (the Table 1 helpers compute through immediately invoked
// literals).
func colSel(icard float64) float64 {
	f := func() float64 {
		if icard > 0 {
			return 1 / icard // want "selectivity function returns unclamped arithmetic"
		}
		return clamp01(1 / 10.0) // ok: wrapped
	}()
	return f
}

func applySel(sel float64, factors []float64) float64 {
	for _, fi := range factors {
		sel *= fi // want "unclamped arithmetic into selectivity sel"
	}
	sel = clamp01(sel * 0.5) // ok: wrapped
	return sel
}

// Non-selectivity names are out of scope even when the words contain
// "sel" or "f" as substrings.
func notSelNames(xs []float64) float64 {
	baseline := 2.0 // ok: "baseline" is one word
	for _, x := range xs {
		baseline *= x // ok
	}
	sumFloat := 0.0
	sumFloat += baseline // ok: "float" is not "f"
	return sumFloat
}

// Bucket-fraction names are selectivities by another name: "frac" and
// "fraction" words are in scope, camelCase-split like the rest.
func bucketFraction(rows, total float64) float64 {
	frac := rows / total             // want "unclamped value assigned to selectivity frac"
	keyFrac := clamp01(rows / total) // ok: wrapped
	_ = keyFrac
	fracture := rows / total // ok: "fracture" is one word, not "frac"
	_ = fracture
	return frac
}

type estimate struct {
	F     float64
	QCard float64
}

// Composite-literal F fields and field assignments are destinations too.
func makeEstimate(a, b float64) estimate {
	return estimate{
		F:     a * b,   // want "unclamped value for selectivity field F"
		QCard: a*b + 1, // ok: cardinality, not a selectivity
	}
}

func fixEstimate(e *estimate, a, b float64) {
	e.F = clamp01(a * b) // ok: wrapped
	e.F = 1.5            // want "unclamped value assigned to selectivity F"
	e.F = 0.5            // ok: literal in range
}

// Outside internal/core the clamp entry point may not be forked, and
// selectivity arithmetic is flagged the same way.
package other

func Clamp01(v float64) float64 { // want "Clamp01 declared outside internal/core"
	return v
}

func Scale(sel float64, k float64) float64 {
	sel *= k // want "unclamped arithmetic into selectivity sel"
	return sel
}

// The noprint cases: library output goes to strings or a caller-supplied
// writer, never to the process's stdout/stderr.
package lib

import (
	"fmt"
	"io"
	"os"
)

func bad() {
	fmt.Println("hello")              // want "fmt.Println writes to stdout from library code"
	fmt.Printf("%d\n", 1)             // want "fmt.Printf writes to stdout from library code"
	fmt.Fprintf(os.Stdout, "x")       // want "fmt.Fprintf to os.Stdout from library code"
	fmt.Fprintln(os.Stderr, "x")      // want "fmt.Fprintln to os.Stderr from library code"
	_, _ = os.Stderr.WriteString("x") // want "direct write to os.Stderr from library code"
	println("dbg")                    // want "println builtin writes to stderr"
}

// Rendering into strings or a caller's writer is the supported shape —
// this is how EXPLAIN output works in the real tree.
func Render(w io.Writer, rows int) string {
	fmt.Fprintf(w, "rows=%d\n", rows) // ok: caller-supplied writer
	return fmt.Sprintf("rows=%d", rows)
}

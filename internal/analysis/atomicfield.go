package analysis

// atomicfield is static race detection for the counter style the engine
// uses everywhere (IOStats, metrics instruments, governor budgets): a
// struct field that is accessed through sync/atomic anywhere in the program
// must be accessed through sync/atomic everywhere. A single plain read or
// write of such a field — in any package — is a data race waiting for the
// scheduler to expose it, and -race only catches it when two goroutines
// actually collide under test.
//
// Mechanics: while walking each package (dependency order), the analyzer
// exports an atomicUseFact on every field whose address is taken by a
// sync/atomic call (`atomic.AddInt64(&s.n, 1)`); the program pass then
// sweeps every package again and reports each plain selector access of a
// marked field. The address-taken argument of an atomic call is the one
// sanctioned access form. Composite-literal initialization is exempt: a
// struct under construction is not yet shared, and zero-value init is how
// the atomic types themselves are born. Fields of the sync/atomic wrapper
// types (atomic.Int64 & co.) cannot be accessed non-atomically at all, so
// they need no checking — the analyzer exists for the plain-int fields the
// function-form API operates on.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicField is the atomic-discipline analyzer.
var AtomicField = &Analyzer{
	Name:       "atomicfield",
	Doc:        "a struct field accessed via sync/atomic anywhere must be accessed only via sync/atomic everywhere",
	Run:        runAtomicFieldPkg,
	RunProgram: runAtomicFieldProgram,
}

// atomicUseFact marks a field as atomically accessed; Pos is one example
// site for the diagnostic.
type atomicUseFact struct {
	Pos token.Position
}

func (*atomicUseFact) AFact() {}

// runAtomicFieldPkg records every field whose address flows into a
// sync/atomic call in this package.
func runAtomicFieldPkg(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFnCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if fv := addressedField(info, arg); fv != nil {
					if !pass.ImportObjectFact(fv, &atomicUseFact{}) {
						pass.ExportObjectFact(fv, &atomicUseFact{Pos: pass.Pkg.Fset.Position(call.Pos())})
					}
				}
			}
			return true
		})
	}
	return nil
}

// runAtomicFieldProgram sweeps every package for plain accesses of the
// marked fields.
func runAtomicFieldProgram(pass *ProgramPass) error {
	marked := make(map[types.Object]token.Position)
	for _, obj := range pass.ObjectsWithFact(&atomicUseFact{}) {
		var f atomicUseFact
		pass.ImportObjectFact(obj, &f)
		marked[obj] = f.Pos
	}
	if len(marked) == 0 {
		return nil
	}

	type finding struct {
		pos   token.Pos
		field *types.Var
		where token.Position
	}
	var finds []finding
	for _, pkg := range pass.Prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, _ := info.Uses[sel.Sel].(*types.Var)
				if v == nil || !v.IsField() {
					return true
				}
				where, markedField := marked[v]
				if !markedField {
					return true
				}
				if sanctionedAtomicAccess(info, stack) {
					return true
				}
				finds = append(finds, finding{pos: sel.Sel.Pos(), field: v, where: where})
				return true
			})
		}
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, fd := range finds {
		owner := "?"
		if fd.field.Pkg() != nil {
			owner = pathTail(fd.field.Pkg().Path())
		}
		pass.Reportf(fd.pos,
			"non-atomic access of %s.%s, which is accessed with sync/atomic at %s:%d: mixing plain and atomic access races",
			owner, fd.field.Name(), fd.where.Filename, fd.where.Line)
	}
	return nil
}

// isAtomicFnCall matches the function-form sync/atomic API
// (atomic.AddInt64, atomic.LoadUint32, ...).
func isAtomicFnCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" && f.Type().(*types.Signature).Recv() == nil
}

// addressedField resolves `&x.f` to the field variable f, or nil.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, _ := info.Uses[sel.Sel].(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	return v
}

// sanctionedAtomicAccess reports whether the selector at the top of stack
// is the address-taken argument of a sync/atomic call: the ancestor chain
// must run selector ← & ← (parens) ← atomic call.
func sanctionedAtomicAccess(info *types.Info, stack []ast.Node) bool {
	// stack is root..parent; scan the nearest ancestors.
	i := len(stack) - 1
	// Allow parens around the selector.
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	un, ok := stack[i].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	i--
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && isAtomicFnCall(info, call)
}

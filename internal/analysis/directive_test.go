package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

// TestDirectiveFixture runs nakedpanic and noprint together over the
// directive fixture: every genuine finding there is excused (line form,
// block form, block-body form, comma list), so any surviving analyzer
// diagnostic is a suppression bug — and every misuse (unused or malformed
// directive) must be reported at the directive's own line.
func TestDirectiveFixture(t *testing.T) {
	pkgs, err := LoadFixture(filepath.Join("testdata", "directive"))
	if err != nil {
		t.Fatalf("loading directive fixture: %v", err)
	}
	diags, err := Run(pkgs, []*Analyzer{NakedPanic, NoPrint})
	if err != nil {
		t.Fatalf("running on directive fixture: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer != "sysrcheck" {
			t.Errorf("suppression failed, diagnostic survived: %s", d)
		}
	}

	bad := filepath.Join("testdata", "directive", "lib", "bad.go")
	unusedLine := lineOfTrimmed(t, bad, "//sysrcheck:ignore nakedpanic fixture: nothing to excuse")
	expectAt(t, diags, bad, unusedLine, "unused ignore directive for nakedpanic")

	bareLine := lineOfTrimmed(t, bad, "//sysrcheck:ignore")
	expectAt(t, diags, bad, bareLine, "must name an analyzer and give a reason")

	reasonless := lineOfTrimmed(t, bad, "//sysrcheck:ignore nakedpanic")
	expectAt(t, diags, bad, reasonless, "requires a reason")

	emptyName := lineOfTrimmed(t, bad, "//sysrcheck:ignore nakedpanic,, fixture: empty name inside the list")
	expectAt(t, diags, bad, emptyName, "has an empty analyzer name")
	// The list's one valid name still registers a directive; with nothing
	// to excuse it is also unused.
	expectAt(t, diags, bad, emptyName, "unused ignore directive for nakedpanic")

	// The govtick directive names an analyzer outside this run's set:
	// neither used nor condemned.
	notRunning := lineOfTrimmed(t, bad, "//sysrcheck:ignore govtick fixture: govtick is not in this run")
	for _, d := range diags {
		if d.Pos.Filename == bad && d.Pos.Line == notRunning {
			t.Errorf("directive for a non-running analyzer was reported: %s", d)
		}
	}
}

// TestCommentLines covers the block-comment splitting rules: marker
// stripping, doc-style "*" decoration, and per-line positions.
func TestCommentLines(t *testing.T) {
	got := commentLines("/* first\n * sysrcheck:ignore x y\n last */")
	want := []string{"first", " sysrcheck:ignore x y", "last"}
	if len(got) != len(want) {
		t.Fatalf("commentLines returned %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
	if got := commentLines("// sysrcheck:ignore x y"); len(got) != 1 || got[0] != " sysrcheck:ignore x y" {
		t.Errorf("line comment split = %q", got)
	}
}

// TestDirectiveSetAccounting covers the set's bookkeeping directly:
// comma lists fan out into one directive per analyzer, suppression
// reaches the directive's line and the line below, and the unused report
// respects the running set.
func TestDirectiveSetAccounting(t *testing.T) {
	ds := &directiveSet{byLine: make(map[string]map[int][]*directive)}
	pos := token.Position{Filename: "f.go", Line: 10}
	ds.add(pos, " govtick,lockrank bounded by the schema, not data volume")
	if len(ds.all) != 2 {
		t.Fatalf("comma list registered %d directives, want 2", len(ds.all))
	}
	if len(ds.malformed) != 0 {
		t.Fatalf("well-formed list produced malformed diagnostics: %v", ds.malformed)
	}

	at := func(line int, analyzer string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "f.go", Line: line},
			Analyzer: analyzer,
		}
	}
	if !ds.suppresses(at(10, "lockrank")) {
		t.Error("directive did not suppress on its own line")
	}
	if !ds.suppresses(at(11, "lockrank")) {
		t.Error("directive did not suppress on the line below")
	}
	if ds.suppresses(at(12, "lockrank")) {
		t.Error("directive suppressed two lines below")
	}
	if ds.suppresses(at(10, "selclamp")) {
		t.Error("directive suppressed an analyzer it does not name")
	}

	// lockrank was used; govtick was not — but only a running govtick
	// may be condemned.
	if got := ds.unused(map[string]bool{"lockrank": true}); len(got) != 0 {
		t.Errorf("unused condemned a non-running analyzer: %v", got)
	}
	got := ds.unused(map[string]bool{"lockrank": true, "govtick": true})
	if len(got) != 1 {
		t.Fatalf("unused = %v, want exactly the govtick directive", got)
	}
	if got[0].Pos.Line != 10 || got[0].Analyzer != "sysrcheck" {
		t.Errorf("unused diagnostic = %+v", got[0])
	}
}

package analysis

// The fact mechanism, mirroring golang.org/x/tools/go/analysis.Fact: an
// analyzer can attach typed facts to functions, fields, and types while it
// analyzes one package, and read them back while analyzing any later package
// (packages are processed in dependency order) or during its whole-program
// pass. Because every package of one Run is type-checked into a single
// universe, a types.Object is one identity program-wide and the store is a
// plain map — no export-data serialization layer is needed.
//
// Facts are namespaced per analyzer: two analyzers never see each other's
// facts, which is what makes running the suite's analyzers in parallel safe
// (each goroutine owns its analyzer's namespace; the loaded packages and the
// call graph are read-only by then).

import (
	"fmt"
	"go/types"
	"reflect"
	"sync"
)

// Fact is a marker interface for analyzer facts, as in x/tools: implement it
// with a pointer type and an AFact method.
type Fact interface {
	AFact()
}

// factKey identifies one fact slot: the object (nil for package facts keyed
// separately) and the concrete fact type.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	typ reflect.Type
}

// factSet is one analyzer's namespace.
type factSet struct {
	mu      sync.Mutex
	objects map[factKey]Fact
	pkgs    map[pkgFactKey]Fact
}

func newFactSet() *factSet {
	return &factSet{objects: make(map[factKey]Fact), pkgs: make(map[pkgFactKey]Fact)}
}

func factType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer {
		//sysrcheck:ignore nakedpanic analyzer-author API misuse (a non-pointer fact type), caught the first time the analyzer runs in development — not a runtime condition
		panic(fmt.Sprintf("analysis: fact %T must be a pointer type", f))
	}
	return t
}

func (fs *factSet) exportObject(obj types.Object, f Fact) {
	if obj == nil {
		//sysrcheck:ignore nakedpanic analyzer-author API misuse, caught the first time the analyzer runs in development — not a runtime condition
		panic("analysis: ExportObjectFact on nil object")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.objects[factKey{obj, factType(f)}] = f
}

func (fs *factSet) importObject(obj types.Object, f Fact) bool {
	if obj == nil {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	got, ok := fs.objects[factKey{obj, factType(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (fs *factSet) exportPackage(pkg *types.Package, f Fact) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.pkgs[pkgFactKey{pkg, factType(f)}] = f
}

func (fs *factSet) importPackage(pkg *types.Package, f Fact) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	got, ok := fs.pkgs[pkgFactKey{pkg, factType(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// objectsWith returns every object carrying a fact of f's concrete type, in
// no particular order. Program passes use it to sweep a fact species (e.g.
// "every field ever touched atomically") without re-walking the sources.
func (fs *factSet) objectsWith(f Fact) []types.Object {
	t := factType(f)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []types.Object
	for k := range fs.objects {
		if k.typ == t {
			out = append(out, k.obj)
		}
	}
	return out
}

package analysis

// rsiclose enforces the PR 2 resource contract: every RSI scan, lock grant,
// and opened operator tree is closed/released on every path out of the
// function that acquired it — including early error returns, the classic
// leak shape. It is flow-sensitive within one function, in the spirit of
// the vet lostcancel pass.
//
// An acquisition is either
//
//   - a call whose name starts with Open/Acquire/Sort and whose results
//     include a closable type declared in rss, lock, exec, or xsort
//     (lock.Manager.Acquire* -> *Held, exec.OpenQuery* -> *Cursor,
//     xsort.Sort -> *Result), bound to a local variable; or
//   - a v.Open() call on a local variable of such a closable type (the
//     RSI protocol: the resource is live once Open returns nil).
//
// From the acquisition point the analyzer walks the function's structured
// control flow. A path is satisfied when the value is closed/released or
// escapes the function (returned, stored into a field or another value,
// passed to a call — ownership moved); a deferred close anywhere in the
// function satisfies every path. A `return` reached with the resource
// still open is reported. The error-check branch of the acquisition itself
// (`if err != nil { return ... }`) is exempt: on that path nothing was
// acquired, per Go convention and per the rss/lock implementations.
//
// Acquisitions inside function literals are checked against the literal's
// own body (each literal is a scope of its own).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RSIClose is the scan/lock/cursor leak analyzer.
var RSIClose = &Analyzer{
	Name: "rsiclose",
	Doc:  "values from rss scan opens, lock acquires, and operator Opens must be closed/released on every path",
	Run:  runRSIClose,
}

// closablePackages are the path tails whose types the analyzer tracks.
var closablePackages = map[string]bool{"rss": true, "lock": true, "exec": true, "xsort": true}

func runRSIClose(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkScope(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkScope analyzes one function body, then recurses into the function
// literals it contains (each one is its own scope).
func checkScope(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var acqs []*acquisition
	var lits []*ast.FuncLit

	// Collect acquisitions in this scope only — literals are analyzed
	// separately.
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lits = append(lits, lit)
				return false
			}
			switch s := n.(type) {
			case *ast.AssignStmt:
				if a := acquisitionFromAssign(info, s); a != nil {
					acqs = append(acqs, a)
				}
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if a := openAcquisition(info, call, nil); a != nil {
						acqs = append(acqs, a)
					}
				}
			}
			return true
		})
	}

	for _, a := range acqs {
		checkAcquisition(pass, body, a)
	}
	for _, lit := range lits {
		checkScope(pass, lit.Body)
	}
}

// closableType reports whether t is (a pointer to) a named type from a
// tracked package that has a Close or Release method, returning the method
// name.
func closableType(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	p := n.Obj().Pkg()
	if p == nil || !closablePackages[pathTail(p.Path())] {
		return "", false
	}
	for _, name := range []string{"Close", "Release"} {
		if m, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, p, name); m != nil {
			if _, isFunc := m.(*types.Func); isFunc {
				return name, true
			}
		}
	}
	return "", false
}

// acquisition is one tracked resource within a function.
type acquisition struct {
	v         *types.Var // the local holding the resource
	name      string     // variable name, for diagnostics
	what      string     // the acquiring call, for diagnostics
	closeName string     // Close or Release
	pos       token.Pos
	after     token.Pos  // tracking starts after this position
	errVar    *types.Var // error bound at the acquisition, if any
}

// acquisitionFromAssign recognizes `v, err := m.AcquireContext(...)`-shaped
// bindings and `err := v.Open()`.
func acquisitionFromAssign(info *types.Info, s *ast.AssignStmt) *acquisition {
	if len(s.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	// `err := v.Open()` form.
	var errVar *types.Var
	if len(s.Lhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if v := localVarOf(info, id); v != nil && isErrorType(v.Type()) {
				errVar = v
			}
		}
	}
	if a := openAcquisition(info, call, errVar); a != nil {
		a.after = s.End()
		return a
	}
	// Acquiring-call form.
	f := calleeFunc(info, call)
	if f == nil || !acquiringName(f.Name()) {
		return nil
	}
	var acq *acquisition
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v := localVarOf(info, id)
		if v == nil {
			continue
		}
		if closeName, ok := closableType(v.Type()); ok && acq == nil {
			acq = &acquisition{
				v: v, name: id.Name, what: f.Name(), closeName: closeName,
				pos: s.Pos(), after: s.End(),
			}
		} else if acq != nil && i == len(s.Lhs)-1 && isErrorType(v.Type()) {
			acq.errVar = v
		}
	}
	return acq
}

// openAcquisition recognizes `v.Open()` on a closable local.
func openAcquisition(info *types.Info, call *ast.CallExpr, errVar *types.Var) *acquisition {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Open" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v := localVarOf(info, id)
	if v == nil {
		return nil
	}
	closeName, ok := closableType(v.Type())
	if !ok {
		return nil
	}
	return &acquisition{
		v: v, name: id.Name, what: id.Name + ".Open", closeName: closeName,
		pos: call.Pos(), after: call.End(), errVar: errVar,
	}
}

// acquiringName matches the names under which tracked resources are handed
// out in this codebase.
func acquiringName(name string) bool {
	for _, prefix := range []string{"Open", "Acquire", "TryAcquire", "Sort"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// localVarOf resolves an identifier to the local or parameter variable it
// names (package-level vars and fields are out of scope for the analysis).
func localVarOf(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Pkg() == nil {
		return nil
	}
	if v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

// checkAcquisition walks the scope after the acquisition and reports
// returns that leak the resource.
func checkAcquisition(pass *Pass, body *ast.BlockStmt, a *acquisition) {
	w := &leakWalker{info: pass.Pkg.Info, a: a}
	// A deferred close anywhere in the scope covers every exit, no matter
	// where the defer sits relative to the acquisition (e.g. a close
	// deferred before a later Open — the blockCtx.run pattern).
	for _, s := range body.List {
		ast.Inspect(s, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				if w.mentionsClose(d.Call) || w.callMentionsVar(d.Call) {
					w.safe = true
				}
			}
			return !w.safe
		})
		if w.safe {
			return
		}
	}
	closedAtEnd := w.walkStmts(body.List, false)
	if w.safe {
		return
	}
	for _, pos := range w.leaks {
		pass.Reportf(pos, "%s acquired from %s (line %d) may not be %sd on this return path",
			a.name, a.what, pass.Pkg.Fset.Position(a.pos).Line, lowerClose(a.closeName))
	}
	if len(w.leaks) == 0 && !closedAtEnd && !w.everClosed {
		pass.Reportf(a.pos, "%s acquired from %s is never %sd", a.name, a.what, lowerClose(a.closeName))
	}
}

func lowerClose(name string) string {
	if name == "Release" {
		return "release"
	}
	return "close"
}

// leakWalker interprets structured control flow, tracking whether the
// resource has been closed on the current path. Vacuous truth keeps the
// merge rules simple: a branch that returns reports its own leaks and
// contributes "closed" to the merge, because no flow continues out of it.
type leakWalker struct {
	info    *types.Info
	a       *acquisition
	started bool
	// safe short-circuits everything: deferred close or escape.
	safe       bool
	everClosed bool
	leaks      []token.Pos
	// errInvalidated: a.errVar has been rebound since the acquisition, so
	// `if err != nil` no longer identifies the acquisition's failure path.
	errInvalidated bool
}

// walkStmts walks a statement list with the given closed state and returns
// the state after the list.
func (w *leakWalker) walkStmts(stmts []ast.Stmt, closed bool) bool {
	for _, s := range stmts {
		closed = w.walkStmt(s, closed)
		if w.safe {
			return true
		}
	}
	return closed
}

func (w *leakWalker) walkStmt(s ast.Stmt, closed bool) bool {
	if !w.started {
		if s.End() <= w.a.pos {
			return closed // entirely before the acquisition
		}
		w.started = true
		if s.End() <= w.a.after {
			return closed // this is the acquiring statement itself
		}
		// The acquisition is nested inside s (if-init form): analyze s.
	} else if s.End() <= w.a.pos {
		return closed
	}

	switch st := s.(type) {
	case *ast.ReturnStmt:
		if w.returnsResource(st) {
			return true // ownership transferred on this path
		}
		if !closed {
			w.leaks = append(w.leaks, st.Pos())
		}
		return true // path ends; vacuous for the merge

	case *ast.DeferStmt:
		if w.mentionsClose(st.Call) || w.callMentionsVar(st.Call) {
			w.safe = true
		}
		return closed

	case *ast.ExprStmt:
		if w.isCloseCall(st.X) {
			w.everClosed = true
			return true
		}
		w.checkEscape(s)
		return closed

	case *ast.AssignStmt:
		if st.End() > w.a.after {
			w.noteErrReassign(st)
		}
		for _, rhs := range st.Rhs {
			if w.isCloseCall(rhs) {
				w.everClosed = true
				return true
			}
		}
		w.checkEscape(s)
		return closed

	case *ast.IfStmt:
		if st.Init != nil {
			closed = w.walkStmt(st.Init, closed)
		}
		w.checkEscapeExpr(st.Cond)
		var thenClosed bool
		if w.isAcquisitionErrGuard(st.Cond) {
			// The acquisition's own failure branch: nothing was acquired
			// there, so its returns are exempt; still honor escapes.
			sub := *w
			sub.walkStmts(st.Body.List, true)
			if sub.safe {
				w.safe = true
			}
			thenClosed = true
		} else {
			thenClosed = w.walkStmts(st.Body.List, closed)
		}
		elseClosed := closed
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseClosed = w.walkStmts(e.List, closed)
		case *ast.IfStmt:
			elseClosed = w.walkStmt(e, closed)
		case nil:
			return closed // flow may skip the branch entirely
		}
		return thenClosed && elseClosed

	case *ast.BlockStmt:
		return w.walkStmts(st.List, closed)

	case *ast.ForStmt:
		if st.Init != nil {
			closed = w.walkStmt(st.Init, closed)
		}
		w.walkStmts(st.Body.List, closed)
		return closed // the loop may run zero times

	case *ast.RangeStmt:
		w.checkEscapeExpr(st.X)
		w.walkStmts(st.Body.List, closed)
		return closed

	case *ast.SwitchStmt:
		if st.Init != nil {
			closed = w.walkStmt(st.Init, closed)
		}
		w.checkEscapeExpr(st.Tag)
		return w.walkCases(st.Body, closed)

	case *ast.TypeSwitchStmt:
		return w.walkCases(st.Body, closed)

	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			w.walkStmts(c.(*ast.CommClause).Body, closed)
		}
		return closed

	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, closed)

	case *ast.GoStmt:
		if w.mentionsClose(st.Call) || w.callMentionsVar(st.Call) {
			w.safe = true // ownership handed to the goroutine
		}
		return closed

	default:
		w.checkEscape(s)
		return closed
	}
}

// walkCases merges switch cases: every path out of the switch is closed
// when each case body ends closed (vacuously for returning cases) and a
// default exists (otherwise flow can bypass all cases).
func (w *leakWalker) walkCases(body *ast.BlockStmt, closed bool) bool {
	all := true
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if !w.walkStmts(cc.Body, closed) {
			all = false
		}
	}
	if closed {
		return true
	}
	return all && hasDefault && len(body.List) > 0
}

// isCloseCall matches `v.Close()` / `v.Release()` on the tracked variable.
func (w *leakWalker) isCloseCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if w.a.closeName == "Finish" {
		// Release-by-argument form (snappin): x.Finish(v) releases v.
		if sel.Sel.Name != "Finish" {
			return false
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && w.isTracked(id) {
				return true
			}
		}
		return false
	}
	if sel.Sel.Name != "Close" && sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.isTracked(id)
}

// mentionsClose reports a Close/Release of the tracked variable anywhere
// inside n (for defer/go closures).
func (w *leakWalker) mentionsClose(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && w.isCloseCall(call) {
			found = true
		}
		return !found
	})
	return found
}

func (w *leakWalker) isTracked(id *ast.Ident) bool {
	obj := w.info.Uses[id]
	if obj == nil {
		obj = w.info.Defs[id]
	}
	return obj != nil && obj == types.Object(w.a.v)
}

// returnsResource reports whether the return hands the resource out.
func (w *leakWalker) returnsResource(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if w.exprMentionsVar(r) {
			return true
		}
	}
	return false
}

// checkEscape marks the walker safe when the statement moves the resource
// out of the function's hands: stored into another value, sent on a
// channel, or passed to a call that is not the resource's own method.
func (w *leakWalker) checkEscape(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.isOwnMethodCall(call) {
				continue // driving the resource is not an escape
			}
			if w.exprMentionsVar(rhs) {
				w.safe = true
			}
		}
	case *ast.ExprStmt:
		w.checkEscapeExpr(st.X)
	case *ast.SendStmt:
		if w.exprMentionsVar(st.Value) {
			w.safe = true
		}
	case *ast.DeclStmt:
		if w.exprMentionsDecl(st) {
			w.safe = true
		}
	}
}

// checkEscapeExpr scans an expression for calls that capture the resource.
func (w *leakWalker) checkEscapeExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if !w.isCloseCall(call) && !w.isOwnMethodCall(call) && w.callMentionsVar(call) {
				w.safe = true
			}
		}
		return !w.safe
	})
}

func (w *leakWalker) exprMentionsDecl(st *ast.DeclStmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.isTracked(id) {
			found = true
		}
		return !found
	})
	return found
}

// isOwnMethodCall matches `v.Method(...)` with no self-reference in the
// arguments.
func (w *leakWalker) isOwnMethodCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || !w.isTracked(id) {
		return false
	}
	for _, arg := range call.Args {
		if w.exprMentionsVar(arg) {
			return false
		}
	}
	return true
}

func (w *leakWalker) callMentionsVar(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if w.exprMentionsVar(arg) {
			return true
		}
	}
	// Method value on the resource (e.g. `defer v.Close`).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && w.isTracked(id) {
			return true
		}
	}
	return false
}

func (w *leakWalker) exprMentionsVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.isTracked(id) {
			found = true
		}
		return !found
	})
	return found
}

// isAcquisitionErrGuard matches `<errVar> != nil` where errVar is the error
// bound at the acquisition and has not been reassigned since.
func (w *leakWalker) isAcquisitionErrGuard(cond ast.Expr) bool {
	if w.a.errVar == nil || w.errInvalidated {
		return false
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	id, ok := ast.Unparen(bin.X).(*ast.Ident)
	if !ok {
		if id, ok = ast.Unparen(bin.Y).(*ast.Ident); !ok {
			return false
		}
	}
	obj := w.info.Uses[id]
	if obj == nil {
		obj = w.info.Defs[id]
	}
	return obj != nil && obj == types.Object(w.a.errVar)
}

// noteErrReassign invalidates the acquisition error guard once the error
// variable is rebound by a later statement.
func (w *leakWalker) noteErrReassign(st *ast.AssignStmt) {
	if w.a.errVar == nil || w.errInvalidated {
		return
	}
	for _, lhs := range st.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			obj := w.info.Uses[id]
			if obj == nil {
				obj = w.info.Defs[id]
			}
			if obj != nil && obj == types.Object(w.a.errVar) {
				w.errInvalidated = true
			}
		}
	}
}

package analysis

// Package loading for the sysrcheck driver and its fixture tests. Built on
// the standard library only: `go list -json` supplies package metadata,
// go/parser and go/types do the rest, and standard-library imports are
// type-checked from GOROOT source via go/importer (no export data and no
// network are needed, which is what lets the suite run in the offline build
// container).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Loads share one process-wide file set and one standard-library source
// importer: the importer caches each std package after its first
// type-check, so a test binary that loads a dozen fixture trees (plus the
// whole module for TestTreeIsClean) pays the GOROOT source type-checking
// cost once instead of once per load. Module and fixture packages never
// enter this cache — moduleImporter resolves them per load, so two
// fixtures both declaring "fixture/rss" cannot collide. The mutex makes
// the shared cache safe under `go test -race` even if callers ever load
// concurrently.
var (
	sharedMu   sync.Mutex
	sharedFset = token.NewFileSet()
	sharedStd  types.Importer
)

// stdImporter returns the shared GOROOT source importer, creating it on
// first use. Callers must resolve module-local paths themselves before
// delegating here.
func stdImporter() types.Importer {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedStd == nil {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	}
	return sharedStd
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path; analyzers match on its segments.
	Path string
	// Name is the package name.
	Name string
	// Files holds the parsed non-test sources (with comments).
	Files []*ast.File
	Fset  *token.FileSet
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// Load resolves the patterns (e.g. "./...") relative to dir with the go
// tool, then parses and type-checks every matched package plus its
// intra-module dependencies, returning them in dependency order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	byPath := make(map[string]*listedPackage)
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		byPath[lp.ImportPath] = &lp
	}
	// Dependencies inside the module must be type-checked first. `go list`
	// with a ./... pattern already covers them (this module has no external
	// dependencies); restrict edges to listed packages.
	order, err := toposort(byPath)
	if err != nil {
		return nil, err
	}
	return typecheck(order, byPath, func(lp *listedPackage) ([]string, error) {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		return files, nil
	})
}

// LoadFixture loads a fixture tree rooted at root: every directory holding
// .go files becomes a package whose import path is "fixture" plus the
// directory's relative path — so a fixture's exec/ directory gets the same
// path tail as the real internal/exec and triggers the same rules.
func LoadFixture(root string) ([]*Package, error) {
	byPath := make(map[string]*listedPackage)
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := "fixture"
		if rel != "." {
			ip = "fixture/" + filepath.ToSlash(rel)
		}
		lp := byPath[ip]
		if lp == nil {
			lp = &listedPackage{ImportPath: ip, Dir: dir}
			byPath[ip] = lp
		}
		lp.GoFiles = append(lp.GoFiles, d.Name())
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Imports are discovered by parsing; fill them before sorting.
	fset := sharedFset
	parsed := make(map[string][]*ast.File)
	for ip, lp := range byPath {
		sort.Strings(lp.GoFiles)
		for _, f := range lp.GoFiles {
			file, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			parsed[ip] = append(parsed[ip], file)
			for _, imp := range file.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				lp.Imports = append(lp.Imports, p)
			}
		}
	}
	order, err := toposort(byPath)
	if err != nil {
		return nil, err
	}
	return typecheckParsed(order, byPath, fset, parsed)
}

// toposort orders the packages so every intra-set import precedes its
// importer.
func toposort(byPath map[string]*listedPackage) ([]string, error) {
	const (
		white = iota
		grey
		black
	)
	color := make(map[string]int, len(byPath))
	var order []string
	var visit func(string) error
	visit = func(ip string) error {
		switch color[ip] {
		case grey:
			return fmt.Errorf("import cycle through %s", ip)
		case black:
			return nil
		}
		color[ip] = grey
		deps := append([]string(nil), byPath[ip].Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := byPath[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		color[ip] = black
		order = append(order, ip)
		return nil
	}
	roots := make([]string, 0, len(byPath))
	for ip := range byPath {
		roots = append(roots, ip)
	}
	sort.Strings(roots)
	for _, ip := range roots {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func typecheck(order []string, byPath map[string]*listedPackage, sources func(*listedPackage) ([]string, error)) ([]*Package, error) {
	fset := sharedFset
	parsed := make(map[string][]*ast.File)
	for _, ip := range order {
		paths, err := sources(byPath[ip])
		if err != nil {
			return nil, err
		}
		for _, p := range paths {
			file, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			parsed[ip] = append(parsed[ip], file)
		}
	}
	return typecheckParsed(order, byPath, fset, parsed)
}

// moduleImporter serves module-local packages from the set already checked
// in this load and everything else (the standard library) from GOROOT
// source.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	return im.std.Import(path)
}

func typecheckParsed(order []string, byPath map[string]*listedPackage, fset *token.FileSet, parsed map[string][]*ast.File) ([]*Package, error) {
	im := &moduleImporter{
		std:  stdImporter(),
		pkgs: make(map[string]*types.Package, len(order)),
	}
	var pkgs []*Package
	for _, ip := range order {
		files := parsed[ip]
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var tcErrs []error
		conf := types.Config{
			Importer: im,
			Error:    func(err error) { tcErrs = append(tcErrs, err) },
		}
		tpkg, _ := conf.Check(ip, fset, files, info)
		if len(tcErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", ip, tcErrs[0])
		}
		im.pkgs[ip] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  ip,
			Name:  tpkg.Name(),
			Files: files,
			Fset:  fset,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// ModuleRoot walks up from dir to the directory holding go.mod (the place
// `go list ./...` must run to see the whole module).
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

package analysis

// stmtio enforces the PR 5 per-statement I/O accounting discipline. The
// executor attributes page fetches to operators by differencing a counter
// before and after each call — and under concurrency that counter must be
// the statement's own accumulator (storage.StmtIO over Runtime.IO), never
// the buffer pool's DB-global IOStats: a global read in those layers
// reintroduces the cross-statement attribution bug, where one statement's
// fetches land in a concurrent statement's EXPLAIN ANALYZE deltas.
//
// The analyzer forbids BufferPool.Stats() calls in the accounting-sensitive
// packages (exec, rss, xsort). DB-wide aggregation (the metrics layer, the
// experiment drivers) lives outside those packages and remains free to read
// the global ledger.

import (
	"go/ast"
)

// StmtIO is the per-statement accounting analyzer.
var StmtIO = &Analyzer{
	Name: "stmtio",
	Doc:  "executor layers must not read the pool's DB-global IOStats for per-operator deltas; use the statement's StmtIO accumulator",
	Run:  runStmtIO,
}

// stmtIOPkgs are the package tails where per-operator/per-statement deltas
// are computed and a global counter read would mis-attribute concurrent I/O.
var stmtIOPkgs = map[string]bool{"exec": true, "rss": true, "xsort": true}

func runStmtIO(pass *Pass) error {
	if !stmtIOPkgs[pathTail(pass.Pkg.Path)] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isMethodOn(calleeFunc(info, call), "Stats", "storage", "BufferPool") {
				pass.Reportf(call.Pos(), "reads the buffer pool's DB-global IOStats: per-operator deltas must come from the statement's StmtIO accumulator")
			}
			return true
		})
	}
	return nil
}

// Package analysis is sysrcheck: a project-specific static-analysis suite
// that enforces this codebase's load-bearing invariants at build time —
// the ones the governor (PR 1), the operator contract (PR 2), the
// selectivity clamp (PR 3), the I/O attribution split (PR 5), the
// transaction layer (PR 6/8), and the lock hierarchy introduced but nothing
// enforced:
//
//   - rsiclose: RSI scans, lock grants, and opened operator trees are
//     closed/released on every path out of the acquiring function.
//   - govtick: tuple/page-producing loops in the executor, the RSS, and the
//     sorter contain a governor budget checkpoint.
//   - selclamp: selectivity factors pass through internal/core's single
//     clamp entry point; raw float arithmetic never flows into F unclamped.
//   - nakedpanic: library code panics only through the sanctioned
//     internal/check helper (contained at the execStmt boundary).
//   - errlost: errors from Close/Unlock/Release are not silently dropped.
//   - noprint: library code never writes to stdout/stderr.
//   - stmtio: the executor layers never read the buffer pool's DB-global
//     IOStats for per-operator deltas — attribution goes through the
//     statement's own StmtIO accumulator (PR 5).
//   - txnundo: every engine mutation flows through the undo-logged write
//     path (txn.Txn over the rss Insert/Delete/Restore primitives) — a
//     direct segment, page, or index mutation would survive rollback (PR 6).
//   - govbatch: every NextBatch body in the batched operator protocol
//     reaches a governor checkpoint at least once per batch and never reads
//     the pool's DB-global IOStats for its batch delta (PR 7).
//   - mvccvis: row versions are read only through the RSS visibility
//     boundary (ReadVersioned + Snapshot.Visible) — raw Page.Record /
//     DecodeRow / ParseVersionHeader in exec or txn would resurrect
//     delete-marked or uncommitted versions (PR 8).
//   - lockrank: mutexes and table locks are acquired in the declared rank
//     order, program-wide — no lock.Manager acquisition while holding a
//     buffer-pool, registry, or page mutex (the deadlock shapes the runtime
//     wait-for-graph detector can only observe, caught at build time).
//   - atomicfield: a struct field accessed through sync/atomic anywhere is
//     accessed only through sync/atomic everywhere — static race detection
//     for the IOStats/metrics/governor counter style.
//   - snappin: every call chain that reaches the MVCC read boundary
//     (Page.ReadVersioned / Snapshot.Visible) originates from a function
//     that captured and pinned a snapshot (txn.Registry.Begin), and the pin
//     is released (Registry.Finish) on every return path.
//   - govprop: interprocedural govtick — a row-producing loop anywhere in
//     the engine either ticks the governor locally or is only reachable
//     from ticking callers.
//
// The suite mirrors the shape of golang.org/x/tools/go/analysis (Analyzer /
// Pass / Diagnostic / Fact, a multichecker driver in cmd/sysrcheck,
// want-annotated fixtures) but is built on the standard library alone: the
// container this repository builds in has no module proxy access, so the
// x/tools dependency is gated off and the subset sysrcheck needs is
// implemented here. Should x/tools become available, each Analyzer converts
// mechanically (the Run signature is the same modulo package types).
//
// Since PR 9 the framework is interprocedural: every Run loads and
// type-checks each package exactly once, shared by all analyzers; a
// whole-program call graph (static calls plus class-hierarchy-resolved
// interface dispatch) is built once over the load; analyzers export typed
// Facts on functions, fields, and types while walking packages in
// dependency order and consume them across package boundaries; and an
// optional RunProgram pass runs after all packages with the full graph in
// view. Analyzers execute in parallel — each one owns its fact namespace,
// and the loaded packages and call graph are read-only by then.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one named invariant check, same shape as
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sysrcheck:ignore directives.
	Name string
	// Doc is the one-line invariant statement.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	// Packages arrive in dependency order, so facts exported while
	// analyzing an imported package are visible here. Optional when
	// RunProgram is set.
	Run func(*Pass) error
	// RunProgram, when set, runs once after every package's Run, with the
	// whole program — all packages, the call graph, and the facts this
	// analyzer exported — in view. The interprocedural analyzers live here.
	RunProgram func(*ProgramPass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole loaded program (all packages and the call graph).
	// The packages after this one in dependency order are present but
	// should be treated as opaque until RunProgram.
	Prog *Program

	facts  *factSet
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches a fact to obj in this analyzer's namespace;
// later packages and the program pass can read it back.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) { p.facts.exportObject(obj, f) }

// ImportObjectFact copies the fact of f's type attached to obj into f,
// reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool { return p.facts.importObject(obj, f) }

// ExportPackageFact attaches a fact to the package being analyzed.
func (p *Pass) ExportPackageFact(f Fact) { p.facts.exportPackage(p.Pkg.Types, f) }

// ImportPackageFact copies the fact of f's type attached to pkg into f.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	return p.facts.importPackage(pkg, f)
}

// ProgramPass is one analyzer's whole-program view, handed to RunProgram
// after every package has been visited.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	facts  *factSet
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos (resolved through the program's
// shared file set).
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ImportObjectFact copies the fact of f's type attached to obj into f.
func (p *ProgramPass) ImportObjectFact(obj types.Object, f Fact) bool {
	return p.facts.importObject(obj, f)
}

// ObjectsWithFact returns every object the analyzer attached a fact of f's
// concrete type to.
func (p *ProgramPass) ObjectsWithFact(f Fact) []types.Object { return p.facts.objectsWith(f) }

// Program is one loaded, type-checked program: every package of a Run in
// dependency order, the shared file set, and the call graph built once over
// all of them.
type Program struct {
	Pkgs      []*Package
	Fset      *token.FileSet
	CallGraph *CallGraph

	pkgOf map[*types.Package]*Package
}

// NewProgram assembles the program view over pkgs (dependency order, as
// Load returns them) and builds the call graph.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, pkgOf: make(map[*types.Package]*Package, len(pkgs))}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, p := range pkgs {
		prog.pkgOf[p.Types] = p
	}
	prog.CallGraph = buildCallGraph(pkgs)
	return prog
}

// PackageOf returns the loaded package wrapping tp, or nil.
func (prog *Program) PackageOf(tp *types.Package) *Package { return prog.pkgOf[tp] }

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Suite is the full sysrcheck analyzer set, the order diagnostics sort in.
var Suite = []*Analyzer{
	RSIClose,
	GovTick,
	SelClamp,
	NakedPanic,
	ErrLost,
	NoPrint,
	StmtIO,
	TxnUndo,
	GovBatch,
	MVCCVis,
	LockRank,
	AtomicField,
	SnapPin,
	GovProp,
}

// AnalyzerTiming records how long one analyzer took over the whole program.
type AnalyzerTiming struct {
	Name     string
	Duration time.Duration
}

// Result is one suite run's outcome: the surviving diagnostics in
// file/line order and per-analyzer wall-clock timings.
type Result struct {
	Diags   []Diagnostic
	Timings []AnalyzerTiming
}

// Run applies the analyzers to every package (which must be in dependency
// order, as Load returns them) and returns the surviving diagnostics sorted
// by position. //sysrcheck:ignore directives suppress matching diagnostics;
// a directive without a reason — or one that suppresses nothing — is itself
// a diagnostic.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunSuite(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunSuite is Run with per-analyzer timings. The package set is loaded and
// type-checked exactly once (by the caller, through Load) and shared by
// every analyzer; the call graph is built once; analyzers then execute in
// parallel, each against its own fact namespace and diagnostic buffer.
func RunSuite(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	prog := NewProgram(pkgs)
	dirs := collectDirectives(pkgs)

	type analyzerOut struct {
		diags  []Diagnostic
		timing AnalyzerTiming
		err    error
	}
	outs := make([]analyzerOut, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			out := &outs[i]
			defer func() {
				if r := recover(); r != nil {
					out.err = fmt.Errorf("%s panicked: %v", a.Name, r)
				}
			}()
			start := time.Now()
			facts := newFactSet()
			report := func(d Diagnostic) { out.diags = append(out.diags, d) }
			for _, pkg := range pkgs {
				if a.Run == nil {
					break
				}
				pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, facts: facts, report: report}
				if err := a.Run(pass); err != nil {
					out.err = fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
					return
				}
			}
			if a.RunProgram != nil {
				pp := &ProgramPass{Analyzer: a, Prog: prog, facts: facts, report: report}
				if err := a.RunProgram(pp); err != nil {
					out.err = fmt.Errorf("%s (program pass): %w", a.Name, err)
					return
				}
			}
			out.timing = AnalyzerTiming{Name: a.Name, Duration: time.Since(start)}
		}(i, a)
	}
	wg.Wait()

	res := &Result{}
	var diags []Diagnostic
	for _, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		diags = append(diags, out.diags...)
		res.Timings = append(res.Timings, out.timing)
	}

	// Directive filtering happens once, over the merged set: suppressed
	// diagnostics are dropped (marking their directive used), malformed
	// directives are findings, and a well-formed directive for an analyzer
	// in this run that suppressed nothing is a finding too — the escape
	// hatch must not outlive the condition it excused.
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if !dirs.suppresses(d) {
			kept = append(kept, d)
		}
	}
	diags = kept
	diags = append(diags, dirs.malformed...)
	diags = append(diags, dirs.unused(running)...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	sort.Slice(res.Timings, func(i, j int) bool { return res.Timings[i].Name < res.Timings[j].Name })
	res.Diags = diags
	return res, nil
}

// ---- shared helpers used by several analyzers ----

// pathTail returns the last segment of an import path: the analyzers match
// packages by tail ("exec", "rss", ...) so the same rules apply to
// systemr/internal/exec and to a fixture's fixture/exec.
func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// inCmd reports whether the import path has a "cmd" segment: main programs
// own their stdout and may panic on startup errors.
func inCmd(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package function), or nil for builtins, conversions, and calls
// of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// recvNamed returns the named type of a method's receiver (unwrapping one
// pointer), or nil for package-level functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMethodOn reports whether f is a method named name on type typeName
// declared in a package whose path tail is pkgTail.
func isMethodOn(f *types.Func, name, pkgTail, typeName string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	n := recvNamed(f)
	if n == nil || n.Obj().Name() != typeName {
		return false
	}
	p := n.Obj().Pkg()
	return p != nil && pathTail(p.Path()) == pkgTail
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// enclosingFuncName returns the name of the innermost FuncDecl in stack
// (a []ast.Node path from the file root), or "".
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// walkWithStack visits every node of root, giving the visitor the ancestor
// path (root first, node's parent last).
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !visit(n, stack) {
			// Children are skipped, so no balancing nil callback follows.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// funcDisplayName renders fn as pkgtail.Name or pkgtail.Recv.Name for
// diagnostics.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if n := recvNamed(fn); n != nil {
		name = n.Obj().Name() + "." + name
	}
	if p := fn.Pkg(); p != nil {
		return pathTail(p.Path()) + "." + name
	}
	return name
}

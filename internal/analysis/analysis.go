// Package analysis is sysrcheck: a project-specific static-analysis suite
// that enforces this codebase's load-bearing invariants at build time —
// the ones the governor (PR 1), the operator contract (PR 2), and the
// selectivity clamp (PR 3) introduced but nothing enforced:
//
//   - rsiclose: RSI scans, lock grants, and opened operator trees are
//     closed/released on every path out of the acquiring function.
//   - govtick: tuple/page-producing loops in the executor, the RSS, and the
//     sorter contain a governor budget checkpoint.
//   - selclamp: selectivity factors pass through internal/core's single
//     clamp entry point; raw float arithmetic never flows into F unclamped.
//   - nakedpanic: library code panics only through the sanctioned
//     internal/check helper (contained at the execStmt boundary).
//   - errlost: errors from Close/Unlock/Release are not silently dropped.
//   - noprint: library code never writes to stdout/stderr.
//   - stmtio: the executor layers never read the buffer pool's DB-global
//     IOStats for per-operator deltas — attribution goes through the
//     statement's own StmtIO accumulator (PR 5).
//   - txnundo: every engine mutation flows through the undo-logged write
//     path (txn.Txn over the rss Insert/Delete/Restore primitives) — a
//     direct segment, page, or index mutation would survive rollback (PR 6).
//   - govbatch: every NextBatch body in the batched operator protocol
//     reaches a governor checkpoint at least once per batch and never reads
//     the pool's DB-global IOStats for its batch delta (PR 7).
//   - mvccvis: row versions are read only through the RSS visibility
//     boundary (ReadVersioned + Snapshot.Visible) — raw Page.Record /
//     DecodeRow / ParseVersionHeader in exec or txn would resurrect
//     delete-marked or uncommitted versions (PR 8).
//
// The suite mirrors the shape of golang.org/x/tools/go/analysis (Analyzer /
// Pass / Diagnostic, a multichecker driver in cmd/sysrcheck, want-annotated
// fixtures) but is built on the standard library alone: the container this
// repository builds in has no module proxy access, so the x/tools dependency
// is gated off and the small subset sysrcheck needs is implemented here.
// Should x/tools become available, each Analyzer converts mechanically (the
// Run signature is the same modulo package types).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, same shape as
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sysrcheck:ignore directives.
	Name string
	// Doc is the one-line invariant statement.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts is shared across every package of one Run, in dependency
	// order: an analyzer can record properties of a package's functions
	// (e.g. "contains a governor checkpoint") and read them when analyzing
	// the packages that import it.
	Facts *Facts

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Facts is the cross-package store for one Run. Objects are shared between
// packages because every package of a Run is type-checked in one universe,
// so a map keyed by types.Object resolves references across package
// boundaries.
type Facts struct {
	// Governed marks functions whose body (transitively) contains a
	// statement-governor checkpoint; computed by govtick.
	Governed map[types.Object]bool
}

// NewFacts creates an empty fact store.
func NewFacts() *Facts {
	return &Facts{Governed: make(map[types.Object]bool)}
}

// Suite is the full sysrcheck analyzer set, the order diagnostics sort in.
var Suite = []*Analyzer{
	RSIClose,
	GovTick,
	SelClamp,
	NakedPanic,
	ErrLost,
	NoPrint,
	StmtIO,
	TxnUndo,
	GovBatch,
	MVCCVis,
}

// Run applies the analyzers to every package (which must be in dependency
// order, as Load returns them) and returns the surviving diagnostics sorted
// by position. //sysrcheck:ignore directives suppress matching diagnostics;
// a directive without a reason is itself a diagnostic.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg)
		for _, d := range dirs.malformed {
			diags = append(diags, d)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Facts:    facts,
				report: func(d Diagnostic) {
					if !dirs.suppresses(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---- shared helpers used by several analyzers ----

// pathTail returns the last segment of an import path: the analyzers match
// packages by tail ("exec", "rss", ...) so the same rules apply to
// systemr/internal/exec and to a fixture's fixture/exec.
func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// inCmd reports whether the import path has a "cmd" segment: main programs
// own their stdout and may panic on startup errors.
func inCmd(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package function), or nil for builtins, conversions, and calls
// of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// recvNamed returns the named type of a method's receiver (unwrapping one
// pointer), or nil for package-level functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMethodOn reports whether f is a method named name on type typeName
// declared in a package whose path tail is pkgTail.
func isMethodOn(f *types.Func, name, pkgTail, typeName string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	n := recvNamed(f)
	if n == nil || n.Obj().Name() != typeName {
		return false
	}
	p := n.Obj().Pkg()
	return p != nil && pathTail(p.Path()) == pkgTail
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// enclosingFuncName returns the name of the innermost FuncDecl in stack
// (a []ast.Node path from the file root), or "".
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// walkWithStack visits every node of root, giving the visitor the ancestor
// path (root first, node's parent last).
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !visit(n, stack) {
			// Children are skipped, so no balancing nil callback follows.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

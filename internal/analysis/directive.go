package analysis

// The //sysrcheck:ignore escape hatch. A directive names the analyzer it
// silences and must carry a reason — the convention is
//
//	//sysrcheck:ignore govtick index maintenance loop is bounded by the
//	index count, not by data volume
//
// placed on the flagged line or the line directly above it. A directive
// without a reason is itself reported: the escape hatch exists to record
// *why* an invariant does not apply, not to turn checks off silently.

import (
	"go/token"
	"strings"
)

const directivePrefix = "//sysrcheck:ignore"

// directiveSet indexes one package's ignore directives by file and line.
type directiveSet struct {
	// byLine maps file name and line to the analyzer names ignored there.
	byLine    map[string]map[int][]string
	malformed []Diagnostic
}

func collectDirectives(pkg *Package) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				pos := pkg.Fset.Position(c.Pos())
				ds.add(pos, rest)
			}
		}
	}
	return ds
}

func (ds *directiveSet) add(pos token.Position, rest string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		ds.malformed = append(ds.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: "sysrcheck",
			Message:  "ignore directive must name an analyzer and give a reason",
		})
		return
	}
	name := strings.TrimSuffix(fields[0], ":")
	reason := strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		ds.malformed = append(ds.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: "sysrcheck",
			Message:  "ignore directive for " + name + " requires a reason",
		})
		return
	}
	lines := ds.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]string)
		ds.byLine[pos.Filename] = lines
	}
	lines[pos.Line] = append(lines[pos.Line], name)
}

// suppresses reports whether a well-formed directive for the diagnostic's
// analyzer sits on its line or the line above.
func (ds *directiveSet) suppresses(d Diagnostic) bool {
	lines := ds.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

package analysis

// The //sysrcheck:ignore escape hatch. A directive names the analyzer (or a
// comma-separated list of analyzers) it silences and must carry a reason —
// the convention is
//
//	//sysrcheck:ignore govtick index maintenance loop is bounded by the
//	index count, not by data volume
//
// placed on the flagged line or the line directly above it. Both comment
// forms work: `//`-prefixed line comments and `/* */` block comments (the
// directive may sit on any line inside the block; its effective position is
// that line). A directive without a reason is itself reported, and so is a
// well-formed directive that suppresses nothing: the escape hatch exists to
// record *why* an invariant does not apply, not to turn checks off silently
// — and not to outlive the finding it excused.

import (
	"go/token"
	"strings"
)

const directiveMarker = "sysrcheck:ignore"

// directive is one parsed, well-formed ignore entry for one analyzer name.
type directive struct {
	pos      token.Position
	analyzer string
	used     bool
}

// directiveSet indexes a whole run's ignore directives by file and line.
type directiveSet struct {
	// byLine maps file name and line to the directives in force there.
	byLine    map[string]map[int][]*directive
	all       []*directive
	malformed []Diagnostic
}

// collectDirectives scans every comment of every package in the run. The
// set is shared across analyzers: suppression is applied once, after all
// analyzers finish, so the "used" accounting sees the full diagnostic set.
func collectDirectives(pkgs []*Package) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[int][]*directive)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					base := pkg.Fset.Position(c.Pos())
					for i, line := range commentLines(c.Text) {
						rest, ok := directiveText(line)
						if !ok {
							continue
						}
						pos := base
						pos.Line += i
						if i > 0 {
							pos.Column = 1
						}
						ds.add(pos, rest)
					}
				}
			}
		}
	}
	return ds
}

// commentLines splits a raw comment into physical lines with the comment
// markers stripped: "//" prefixes for line comments, "/*", "*/" and leading
// "*" decoration for block comments.
func commentLines(text string) []string {
	if strings.HasPrefix(text, "//") {
		return []string{strings.TrimPrefix(text, "//")}
	}
	// Block comment.
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	lines := strings.Split(text, "\n")
	for i, ln := range lines {
		trimmed := strings.TrimSpace(ln)
		// Strip a leading "*" decoration ("doc-style" block comments), but
		// keep the line's content.
		if strings.HasPrefix(trimmed, "*") && !strings.HasPrefix(trimmed, "*/") {
			trimmed = strings.TrimPrefix(trimmed, "*")
		}
		lines[i] = trimmed
	}
	return lines
}

// directiveText reports whether a comment line is an ignore directive and
// returns the text after the marker.
func directiveText(line string) (string, bool) {
	trimmed := strings.TrimSpace(line)
	if !strings.HasPrefix(trimmed, directiveMarker) {
		return "", false
	}
	return strings.TrimPrefix(trimmed, directiveMarker), true
}

func (ds *directiveSet) add(pos token.Position, rest string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		ds.malformed = append(ds.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: "sysrcheck",
			Message:  "ignore directive must name an analyzer and give a reason",
		})
		return
	}
	names := strings.Split(strings.TrimSuffix(fields[0], ":"), ",")
	reason := strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		ds.malformed = append(ds.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: "sysrcheck",
			Message:  "ignore directive for " + strings.Join(names, ",") + " requires a reason",
		})
		return
	}
	lines := ds.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]*directive)
		ds.byLine[pos.Filename] = lines
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			ds.malformed = append(ds.malformed, Diagnostic{
				Pos:      pos,
				Analyzer: "sysrcheck",
				Message:  "ignore directive has an empty analyzer name",
			})
			continue
		}
		d := &directive{pos: pos, analyzer: name}
		ds.all = append(ds.all, d)
		lines[pos.Line] = append(lines[pos.Line], d)
	}
}

// suppresses reports whether a well-formed directive for the diagnostic's
// analyzer sits on its line or the line above, marking the directive used.
func (ds *directiveSet) suppresses(d Diagnostic) bool {
	lines := ds.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzer == d.Analyzer {
				dir.used = true
				hit = true
			}
		}
	}
	return hit
}

// unused returns a diagnostic for every directive naming an analyzer in the
// running set that suppressed nothing. Directives for analyzers outside the
// set are skipped — a partial run (-checks, single-analyzer fixtures) must
// not condemn directives it never exercised.
func (ds *directiveSet) unused(running map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range ds.all {
		if dir.used || !running[dir.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: "sysrcheck",
			Message:  "unused ignore directive for " + dir.analyzer + ": it suppresses nothing; remove it",
		})
	}
	return out
}

package analysis

// Whole-program call graph over one Load. Nodes are the module's declared
// functions and methods (the ones whose bodies we can see); edges come from
//
//   - static calls: `pkg.F(...)`, `recv.M(...)` on a concrete receiver;
//   - interface dispatch, resolved by class-hierarchy analysis: a call
//     through interface method I.M gets an edge to T.M for every named type
//     T in the program that implements I. CHA over-approximates (it assumes
//     any implementation may be the callee), which is the right polarity for
//     the invariant checks built on the graph: "reachable" findings may need
//     a reasoned ignore, but a true chain is never missed because it was
//     dispatched through an Operator or FaultInjector interface;
//   - go/defer statements, treated like ordinary calls.
//
// Calls inside function literals are attributed to the enclosing declared
// function: a chain through a closure (worker bodies, defer blocks) stays
// connected. Calls of plain function-typed values remain unresolved — the
// analyzers that consume the graph document that blind spot and require
// local evidence (a local tick, a local pin) around dynamic calls instead.

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the program's call graph.
type CallGraph struct {
	// Nodes maps each declared function/method object to its node. Only
	// functions declared in the loaded packages appear (imported standard-
	// library functions have no bodies to analyze).
	Nodes map[*types.Func]*CallNode
}

// CallNode is one declared function with its in- and out-edges.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out and In hold the outgoing and incoming edges.
	Out []*CallEdge
	In  []*CallEdge
}

// CallEdge is one caller→callee relationship.
type CallEdge struct {
	Caller, Callee *CallNode
	// Site is the call expression (one representative site; a pair of
	// functions linked by several sites keeps the first in source order).
	Site *ast.CallExpr
	// Dynamic marks edges added by interface-dispatch resolution rather
	// than a direct static call.
	Dynamic bool
}

// Roots returns the nodes with no callers in the graph — the program's
// entry surface (exported API, main functions) plus any dead code — sorted
// by position for deterministic reports.
func (g *CallGraph) Roots() []*CallNode {
	var roots []*CallNode
	for _, n := range g.Nodes {
		if len(n.In) == 0 {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Fn.Pos() < roots[j].Fn.Pos() })
	return roots
}

// buildCallGraph constructs the graph for the loaded packages.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}

	// Pass 1: one node per declared function; collect the program's named
	// types for interface resolution.
	var concrete []types.Type
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok && d.Body != nil {
						g.Nodes[fn] = &CallNode{Fn: fn, Decl: d, Pkg: pkg}
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
						if !ok || obj.IsAlias() {
							continue
						}
						named, ok := obj.Type().(*types.Named)
						if !ok || types.IsInterface(named) {
							continue
						}
						concrete = append(concrete, named)
					}
				}
			}
		}
	}

	// Pass 2: edges. Each declared function's body (closures included) is
	// scanned for calls; interface-method callees fan out over the
	// implementing concrete types.
	seen := make(map[[2]*CallNode]bool)
	addEdge := func(from *CallNode, to *types.Func, site *ast.CallExpr, dynamic bool) {
		callee, ok := g.Nodes[to]
		if !ok {
			return // no body in this load (stdlib or external)
		}
		if seen[[2]*CallNode{from, callee}] {
			return
		}
		seen[[2]*CallNode{from, callee}] = true
		e := &CallEdge{Caller: from, Callee: callee, Site: site, Dynamic: dynamic}
		from.Out = append(from.Out, e)
		callee.In = append(callee.In, e)
	}

	for _, n := range g.Nodes {
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(info, call)
			if f == nil {
				return true
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok {
				return true
			}
			recv := sig.Recv()
			if recv == nil || !types.IsInterface(recv.Type()) {
				addEdge(n, f, call, false)
				return true
			}
			// Interface dispatch: resolve to every implementing type's
			// method of the same name.
			iface, ok := recv.Type().Underlying().(*types.Interface)
			if !ok {
				return true
			}
			for _, t := range concrete {
				impl := t
				if !types.Implements(impl, iface) {
					impl = types.NewPointer(t)
					if !types.Implements(impl, iface) {
						continue
					}
				}
				m, _, _ := types.LookupFieldOrMethod(impl, true, f.Pkg(), f.Name())
				if mf, ok := m.(*types.Func); ok {
					addEdge(n, mf, call, true)
				}
			}
			return true
		})
	}

	// Deterministic edge order (map iteration built the lists).
	for _, n := range g.Nodes {
		sort.Slice(n.Out, func(i, j int) bool { return n.Out[i].Callee.Fn.Pos() < n.Out[j].Callee.Fn.Pos() })
		sort.Slice(n.In, func(i, j int) bool { return n.In[i].Caller.Fn.Pos() < n.In[j].Caller.Fn.Pos() })
	}
	return g
}

// FuncOf returns the graph node for fn, or nil.
func (g *CallGraph) FuncOf(fn *types.Func) *CallNode { return g.Nodes[fn] }

// SortedNodes returns every node ordered by source position, for
// deterministic iteration.
func (g *CallGraph) SortedNodes() []*CallNode {
	out := make([]*CallNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn.Pos() < out[j].Fn.Pos() })
	return out
}

package analysis

// govbatch guards the batched operator protocol (PR 7). The batch boundary
// amortizes the per-row governor tick to one tick per batch — which is only
// safe if every NextBatch body still reaches a checkpoint at least once per
// batch: either a direct *governor.Budget call, or by driving at least one
// producer that is itself governed (the same transitive fact govtick
// computes). A NextBatch that fills its batch with neither would let a
// canceled or over-budget statement run a full batch of work per boundary
// tick — or, for a batch body with interior loops, arbitrarily long.
//
// The same boundary also computes the per-batch fetch delta, so govbatch
// re-asserts the stmtio rule at batch granularity: a NextBatch body must
// never read the buffer pool's DB-global IOStats, whose counters blend
// concurrent statements' I/O into the delta.

import (
	"go/ast"
)

// GovBatch is the batched-protocol analyzer.
var GovBatch = &Analyzer{
	Name: "govbatch",
	Doc:  "every NextBatch body in exec, rss, and xsort must reach a governor checkpoint per batch and must not read the pool's DB-global IOStats",
	Run:  runGovBatch,
}

// govbatchPkgs are the package tails implementing the batched protocol.
var govbatchPkgs = map[string]bool{"exec": true, "rss": true, "xsort": true}

func runGovBatch(pass *Pass) error {
	computeGovernedFacts(pass)
	if !govbatchPkgs[pathTail(pass.Pkg.Path)] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if name != "NextBatch" && name != "nextBatch" {
				continue
			}
			if !containsBudgetCall(info, fd.Body) && !callsGovernedFunc(pass, info, fd.Body) {
				pass.Reportf(fd.Pos(),
					"%s fills a batch without a governor checkpoint: tick the budget or drive a governed producer at least once per batch", name)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isMethodOn(calleeFunc(info, call), "Stats", "storage", "BufferPool") {
					pass.Reportf(call.Pos(),
						"%s reads the buffer pool's DB-global IOStats: batch deltas must come from the statement's StmtIO accumulator", name)
				}
				return true
			})
		}
	}
	return nil
}

package analysis

// lockrank enforces a declared lock-acquisition order across the whole
// program. The engine's runtime deadlock detector (PR 6) can only observe a
// cycle among table locks once it happens; lockrank makes the hierarchy
// above and below the table locks a build-time property: every mutex the
// engine owns has a rank, and a function may only acquire locks of strictly
// greater rank than anything it already holds — directly or through any
// call chain (static calls plus interface dispatch, via the program call
// graph's per-function summaries).
//
// The declared order, outermost first (see DESIGN.md §14 for the rationale
// of each edge):
//
//	rank  lock
//	  10  lock table locks (Manager.Acquire*/TryAcquire, Txn.AcquireContext)
//	  20  systemr.DB.mu            (last-statement stats)
//	  30  catalog.Catalog.mu       (schema/statistics)
//	  40  txn.Registry.mu          (XID allocation, snapshot capture)
//	  50  compile.Cache.mu         (plan cache)
//	  55  metrics.Registry.mu      (instrument registration/scrape)
//	  60  lock.Manager.mu          (lock-manager internal state)
//	  80  storage.BufferPool.mu    (LRU structural lock)
//	  90  storage.Disk.mu          (page-table growth)
//	 100  storage.Page.mu          (per-page latch; innermost leaf)
//
// In particular: no lock.Manager call while holding a buffer-pool, page,
// or registry mutex — a blocked table-lock wait would then hold a leaf
// mutex indefinitely, stalling every reader of that structure in a shape
// the wait-for-graph cannot see (it only tracks table locks).
//
// Mechanics: each function gets a summary — the set of ranks it may acquire
// while executing, propagated to a fixpoint over the call graph. Then every
// function body is walked in source order tracking the set of ranked
// mutexes currently held (mu.Lock()/RLock() add, mu.Unlock()/RUnlock()
// remove, deferred unlocks hold to function end); at each acquisition —
// direct or summarized through a call — a held rank >= the acquired rank is
// reported. Function literals are walked as their own scopes (they run with
// their own held set) but their acquisitions still count toward the
// enclosing function's summary, conservatively.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockRank is the lock-ordering analyzer.
var LockRank = &Analyzer{
	Name:       "lockrank",
	Doc:        "mutexes and table locks must be acquired in the declared rank order on every call path",
	RunProgram: runLockRank,
}

// rankTableLock is the rank of a lock.Manager table-lock acquisition — the
// outermost tier: it can block indefinitely, so nothing may be held across
// it.
const rankTableLock = 10

// lockRanks maps "pkgtail.Type.field" mutex identities to their rank.
// Unlisted mutexes are unranked and exempt (local mutexes, fixture types
// outside the table) — the table is the declaration of the engine's
// hierarchy, mirrored in DESIGN.md §14.
var lockRanks = map[string]int{
	"systemr.DB.mu":         20,
	"catalog.Catalog.mu":    30,
	"txn.Registry.mu":       40,
	"compile.Cache.mu":      50,
	"metrics.Registry.mu":   55,
	"lock.Manager.mu":       60,
	"storage.BufferPool.mu": 80,
	"storage.Disk.mu":       90,
	"storage.Page.mu":       100,
}

// lockRankName renders a rank for diagnostics.
func lockRankName(rank int) string {
	if rank == rankTableLock {
		return "lock.Manager table locks"
	}
	for key, r := range lockRanks {
		if r == rank {
			return key
		}
	}
	return "?"
}

// acquireSummary is one function's may-acquire set: rank → one example
// position (the acquisition site, for the diagnostic chain).
type acquireSummary map[int]token.Pos

func runLockRank(pass *ProgramPass) error {
	g := pass.Prog.CallGraph
	nodes := g.SortedNodes()

	// Per-function direct acquisitions (locks taken anywhere in the body,
	// closures included — a closure runs on some goroutine while the
	// program is in this function's dynamic extent or later; conservative).
	direct := make(map[*CallNode]acquireSummary, len(nodes))
	for _, n := range nodes {
		s := acquireSummary{}
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			if rank, ok := rankedAcquisition(n.Pkg.Info, call); ok {
				if _, have := s[rank]; !have {
					s[rank] = call.Pos()
				}
			}
			return true
		})
		direct[n] = s
	}

	// Propagate to a fixpoint: a function may acquire everything its
	// callees may acquire.
	summary := make(map[*CallNode]acquireSummary, len(nodes))
	for _, n := range nodes {
		s := acquireSummary{}
		for r, p := range direct[n] {
			s[r] = p
		}
		summary[n] = s
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			s := summary[n]
			for _, e := range n.Out {
				for r, p := range summary[e.Callee] {
					if _, have := s[r]; !have {
						s[r] = p
						changed = true
					}
				}
			}
		}
	}

	// Walk each function with held-set tracking.
	for _, n := range nodes {
		w := &rankWalker{pass: pass, node: n, summary: summary}
		w.walkBody(n.Decl.Body)
	}
	return nil
}

// rankedAcquisition classifies call as a ranked lock acquisition: a
// Lock/RLock on a mutex field in the rank table, or a lock.Manager
// table-lock grant.
func rankedAcquisition(info *types.Info, call *ast.CallExpr) (rank int, ok bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return 0, false
	}
	switch f.Name() {
	case "Acquire", "AcquireContext", "TryAcquire":
		if n := recvNamed(f); n != nil {
			tn := n.Obj()
			if tn.Pkg() != nil && pathTail(tn.Pkg().Path()) == "lock" &&
				(tn.Name() == "Manager" || tn.Name() == "Txn") {
				return rankTableLock, true
			}
		}
		return 0, false
	case "Lock", "RLock", "TryLock", "TryRLock":
		key, ok := mutexKey(info, call)
		if !ok {
			return 0, false
		}
		r, ranked := lockRanks[key]
		return r, ranked
	}
	return 0, false
}

// mutexLockOp classifies a mutex method call as acquire (+1), release (-1),
// or neither, plus the ranked identity it operates on.
func mutexLockOp(info *types.Info, call *ast.CallExpr) (key string, rank, op int, ok bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", 0, 0, false
	}
	switch f.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = +1
	case "Unlock", "RUnlock":
		op = -1
	default:
		return "", 0, 0, false
	}
	key, keyOK := mutexKey(info, call)
	if !keyOK {
		return "", 0, 0, false
	}
	rank, ranked := lockRanks[key]
	if !ranked {
		return "", 0, 0, false
	}
	return key, rank, op, true
}

// mutexKey resolves the receiver of a sync.(RW)Mutex method call of the
// form `x.mu.Lock()` to its "pkgtail.Type.field" identity.
func mutexKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// The method must come from sync.
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	v, _ := info.Uses[field.Sel].(*types.Var)
	if v == nil || !v.IsField() {
		return "", false
	}
	s, ok := info.Selections[field]
	if !ok {
		return "", false
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return "", false
	}
	return pathTail(tn.Pkg().Path()) + "." + tn.Name() + "." + v.Name(), true
}

// rankWalker tracks the held ranked mutexes through one function body.
// Statements are interpreted structurally: branches (if/switch/select) are
// each walked from the state at entry and merged by per-rank minimum over
// the branches that fall through — so the `mu.Unlock(); select { case:
// mu.Lock(); return }; mu.Lock()` hand-off pattern in the lock manager is
// tracked correctly rather than counted cumulatively.
type rankWalker struct {
	pass    *ProgramPass
	node    *CallNode
	summary map[*CallNode]acquireSummary
	// held maps rank → hold count (re-entrant tracking keeps unbalanced
	// branch walks from going negative).
	held map[int]int
	// heldName maps rank → the identity string for diagnostics.
	heldName map[int]string
}

func (w *rankWalker) walkBody(body *ast.BlockStmt) {
	w.held = map[int]int{}
	w.heldName = map[int]string{}
	var lits []*ast.FuncLit
	w.walkStmts(body.List, &lits)
	// Each function literal runs with its own held set (it executes later,
	// from some other dynamic context).
	for _, lit := range lits {
		sub := &rankWalker{pass: w.pass, node: w.node, summary: w.summary}
		sub.walkBody(lit.Body)
	}
}

// walkStmts walks a statement list, reporting whether it always terminates
// the enclosing path (return/branch reached).
func (w *rankWalker) walkStmts(stmts []ast.Stmt, lits *[]*ast.FuncLit) bool {
	term := false
	for _, s := range stmts {
		if w.walkStmt(s, lits) {
			term = true
		}
	}
	return term
}

// branchOut captures the held state at the end of one branch.
type branchOut struct {
	held  map[int]int
	names map[int]string
}

// walkBranch walks stmts from a copy of the current state and returns the
// resulting state without disturbing the walker; terminated branches return
// a nil state (they contribute nothing to the merge).
func (w *rankWalker) walkBranch(stmts []ast.Stmt, lits *[]*ast.FuncLit) *branchOut {
	saveH, saveN := w.held, w.heldName
	w.held, w.heldName = copyRankCounts(saveH), copyRankNames(saveN)
	term := w.walkStmts(stmts, lits)
	out := &branchOut{held: w.held, names: w.heldName}
	w.held, w.heldName = saveH, saveN
	if term {
		return nil
	}
	return out
}

// mergeBranches sets the walker state to the per-rank minimum across the
// non-terminated branches. No surviving branch leaves the state at entry
// (everything after is unreachable; entry is the conservative stand-in).
func (w *rankWalker) mergeBranches(outs []*branchOut) {
	var live []*branchOut
	for _, o := range outs {
		if o != nil {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return
	}
	merged := map[int]int{}
	names := map[int]string{}
	for r := range live[0].held {
		min := live[0].held[r]
		for _, o := range live[1:] {
			if o.held[r] < min {
				min = o.held[r]
			}
		}
		if min > 0 {
			merged[r] = min
		}
	}
	for _, o := range live {
		for r, name := range o.names {
			names[r] = name
		}
	}
	w.held, w.heldName = merged, names
}

func copyRankCounts(m map[int]int) map[int]int {
	c := make(map[int]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func copyRankNames(m map[int]string) map[int]string {
	c := make(map[int]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func (w *rankWalker) walkStmt(s ast.Stmt, lits *[]*ast.FuncLit) bool {
	info := w.node.Pkg.Info
	switch st := s.(type) {
	case nil:
		return false

	case *ast.BlockStmt:
		return w.walkStmts(st.List, lits)

	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.walkExpr(r, lits)
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave the construct; treat as terminating the
		// current straight-line path.
		return true

	case *ast.DeferStmt:
		// A deferred unlock releases at return — the mutex stays held for
		// the remainder of the walk, which is exactly the tracking we want.
		// A deferred ranked *acquisition* (rare) is checked at the defer
		// site, conservatively.
		if _, _, op, ok := mutexLockOp(info, st.Call); ok && op < 0 {
			return false
		}
		w.walkExpr(st.Call, lits)
		return false

	case *ast.GoStmt:
		// The goroutine runs on its own stack with its own held set; only
		// collect its literals for separate analysis.
		ast.Inspect(st.Call, func(nd ast.Node) bool {
			if lit, ok := nd.(*ast.FuncLit); ok {
				*lits = append(*lits, lit)
				return false
			}
			return true
		})
		return false

	case *ast.IfStmt:
		w.walkStmt(st.Init, lits)
		w.walkExpr(st.Cond, lits)
		thenOut := w.walkBranch(st.Body.List, lits)
		var elseOut *branchOut
		elseTerm := false
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseOut = w.walkBranch(e.List, lits)
			elseTerm = elseOut == nil
		case *ast.IfStmt:
			elseOut = w.walkBranch([]ast.Stmt{e}, lits)
			elseTerm = elseOut == nil
		case nil:
			// No else: entry state falls through.
			elseOut = &branchOut{held: w.held, names: w.heldName}
		}
		w.mergeBranches([]*branchOut{thenOut, elseOut})
		return thenOut == nil && elseTerm

	case *ast.ForStmt:
		w.walkStmt(st.Init, lits)
		w.walkExpr(st.Cond, lits)
		body := append([]ast.Stmt{}, st.Body.List...)
		if st.Post != nil {
			body = append(body, st.Post)
		}
		w.walkBranch(body, lits) // reports inside; loop may run zero times
		return false

	case *ast.RangeStmt:
		w.walkExpr(st.X, lits)
		w.walkBranch(st.Body.List, lits)
		return false

	case *ast.SwitchStmt:
		w.walkStmt(st.Init, lits)
		w.walkExpr(st.Tag, lits)
		return w.walkClauses(st.Body, lits, true)

	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init, lits)
		return w.walkClauses(st.Body, lits, true)

	case *ast.SelectStmt:
		return w.walkClauses(st.Body, lits, false)

	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, lits)

	default:
		w.walkExpr(s, lits)
		return false
	}
}

// walkClauses merges switch/select clause bodies. withEntry includes the
// entry state in the merge (a switch without a matching case falls through
// unchanged; a select always takes some case, but including entry only
// lowers counts — conservative toward silence).
func (w *rankWalker) walkClauses(body *ast.BlockStmt, lits *[]*ast.FuncLit, withEntry bool) bool {
	var outs []*branchOut
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.walkExpr(e, lits)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, lits)
			}
			stmts = cc.Body
		}
		outs = append(outs, w.walkBranch(stmts, lits))
	}
	allTerm := true
	for _, o := range outs {
		if o != nil {
			allTerm = false
		}
	}
	if withEntry || len(outs) == 0 {
		outs = append(outs, &branchOut{held: w.held, names: w.heldName})
		allTerm = false
	}
	w.mergeBranches(outs)
	return allTerm && len(body.List) > 0
}

// walkExpr visits an expression (or simple statement) in source order,
// checking calls and collecting function literals without entering them.
func (w *rankWalker) walkExpr(n ast.Node, lits *[]*ast.FuncLit) {
	if n == nil {
		return
	}
	info := w.node.Pkg.Info
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			*lits = append(*lits, x)
			return false
		case *ast.CallExpr:
			w.checkCall(info, x)
		}
		return true
	})
}

// checkCall updates the held set and reports out-of-rank acquisitions.
func (w *rankWalker) checkCall(info *types.Info, call *ast.CallExpr) {
	// Mutex operation on a ranked mutex?
	if key, rank, op, ok := mutexLockOp(info, call); ok {
		if op > 0 {
			w.reportIfHeldConflicts(call.Pos(), rank, key, nil)
			w.held[rank]++
			w.heldName[rank] = key
		} else {
			if w.held[rank] > 0 {
				w.held[rank]--
			}
		}
		return
	}
	// Table-lock acquisition?
	if rank, ok := rankedAcquisition(info, call); ok && rank == rankTableLock {
		w.reportIfHeldConflicts(call.Pos(), rankTableLock, "lock.Manager table locks", nil)
		return
	}
	// A call with a summary: everything the callee may acquire is checked
	// against what we hold here.
	f := calleeFunc(info, call)
	if f == nil {
		return
	}
	callee := w.pass.Prog.CallGraph.FuncOf(f)
	if callee == nil {
		return
	}
	s := w.summary[callee]
	ranks := make([]int, 0, len(s))
	for r := range s {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		w.reportIfHeldConflicts(call.Pos(), r, lockRankName(r), callee)
	}
}

// reportIfHeldConflicts reports when a held rank forbids acquiring rank at
// pos; via names the callee the acquisition is reached through, when
// indirect.
func (w *rankWalker) reportIfHeldConflicts(pos token.Pos, rank int, what string, via *CallNode) {
	for heldRank, count := range w.held {
		if count <= 0 || heldRank < rank {
			continue
		}
		if heldRank == rank && via == nil {
			// Direct re-acquisition of the same ranked mutex: self-deadlock
			// with sync.Mutex. Report it as its own shape.
			w.pass.Reportf(pos, "reacquires %s already held by this function (self-deadlock)", w.heldName[heldRank])
			continue
		}
		if via != nil {
			w.pass.Reportf(pos,
				"call to %s may acquire %s (rank %d) while holding %s (rank %d): declared lock order requires %s before %s",
				funcDisplayName(via.Fn), what, rank, w.heldName[heldRank], heldRank, what, w.heldName[heldRank])
		} else {
			w.pass.Reportf(pos,
				"acquires %s (rank %d) while holding %s (rank %d): declared lock order requires %s before %s",
				what, rank, w.heldName[heldRank], heldRank, what, w.heldName[heldRank])
		}
	}
}

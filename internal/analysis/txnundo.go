package analysis

// txnundo enforces the PR 6 transaction-atomicity discipline. Statement and
// transaction rollback work by logical undo: internal/txn logs the inverse
// of every mutation before (or atomically with) applying it through the
// RSI's Insert/MarkDeleted/ClearDeleted/Remove. That guarantee holds only if
// no other write path exists — a direct segment, page, or index mutation in
// the engine or executor would be invisible to the undo log, and a
// rolled-back statement would leave it behind.
//
// The analyzer forbids, in the engine packages (systemr, exec, rss):
//
//   - the storage primitives Segment.Insert, Page.Insert, Page.Delete,
//     Page.Restore, and Page.SwapXmax (the MVCC delete-mark primitive);
//   - the index primitives BTree.Insert and BTree.Delete;
//   - the rss package-level Insert/MarkDeleted/ClearDeleted/Remove functions
//     outside internal/txn (the engine must write through txn.Txn, which
//     logs undo). rss.VacuumTable is not forbidden: vacuum reclaims only
//     versions no live snapshot can read, so it is outside undo's scope and
//     is called by DB.Vacuum directly.
//
// The rss package's own Insert, MarkDeleted, ClearDeleted, Remove, and
// VacuumTable function bodies are the sanctioned implementation of the write
// path and are exempt. The catalog package bootstraps system tables with
// direct segment writes and is out of scope: DDL is not undoable and is
// rejected inside transactions.

import (
	"go/ast"
	"go/types"
)

// TxnUndo is the undo-logged write path analyzer.
var TxnUndo = &Analyzer{
	Name: "txnundo",
	Doc:  "engine mutations must flow through the undo-logged write path (txn.Txn over rss Insert/MarkDeleted/ClearDeleted/Remove); direct segment, page, or index mutation escapes rollback",
	Run:  runTxnUndo,
}

// txnUndoPkgs are the package tails where every mutation must be undo-logged.
var txnUndoPkgs = map[string]bool{"systemr": true, "exec": true, "rss": true}

// txnUndoWriteFuncs are the rss functions that ARE the write path: their
// bodies apply the storage and index primitives the rest of the engine is
// forbidden to touch.
var txnUndoWriteFuncs = map[string]bool{
	"Insert": true, "MarkDeleted": true, "ClearDeleted": true,
	"Remove": true, "VacuumTable": true,
}

func runTxnUndo(pass *Pass) error {
	tail := pathTail(pass.Pkg.Path)
	if !txnUndoPkgs[tail] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if tail == "rss" && txnUndoWriteFuncs[enclosingFuncName(stack)] {
				return true
			}
			switch {
			case isMethodOn(fn, "Insert", "storage", "Segment"),
				isMethodOn(fn, "Insert", "storage", "Page"),
				isMethodOn(fn, "Delete", "storage", "Page"),
				isMethodOn(fn, "Restore", "storage", "Page"),
				isMethodOn(fn, "SwapXmax", "storage", "Page"):
				pass.Reportf(call.Pos(), "direct storage mutation %s.%s escapes the undo log: write through txn.Txn", recvNamed(fn).Obj().Name(), fn.Name())
			case isMethodOn(fn, "Insert", "btree", "BTree"),
				isMethodOn(fn, "Delete", "btree", "BTree"):
				pass.Reportf(call.Pos(), "direct index mutation BTree.%s escapes the undo log: write through txn.Txn", fn.Name())
			case isPkgFunc(fn, "Insert", "rss"), isPkgFunc(fn, "MarkDeleted", "rss"),
				isPkgFunc(fn, "ClearDeleted", "rss"), isPkgFunc(fn, "Remove", "rss"):
				pass.Reportf(call.Pos(), "rss.%s called outside the transaction layer: mutations must flow through txn.Txn, which logs undo", fn.Name())
			}
			return true
		})
	}
	return nil
}

// isPkgFunc reports whether f is a package-level function named name
// declared in a package whose path tail is pkgTail.
func isPkgFunc(f *types.Func, name, pkgTail string) bool {
	if f == nil || f.Name() != name || recvNamed(f) != nil {
		return false
	}
	p := f.Pkg()
	return p != nil && pathTail(p.Path()) == pkgTail
}

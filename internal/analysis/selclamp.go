package analysis

// selclamp enforces the PR 3 selectivity discipline: a selectivity factor
// is a fraction of tuples and must stay in [0, 1], and internal/core's
// clamp01 is the single place that guarantees it. The analyzer flags raw
// float arithmetic flowing into selectivity-named destinations unclamped:
//
//   - compound assignment (`sel *= x`, `f += x`) to a sel-named float —
//     inherently unclamped arithmetic;
//   - plain assignment of top-level arithmetic (or an out-of-range
//     literal) to a sel-named float;
//   - `return 1 / icard`-shaped results inside sel-named functions
//     (closures included — the Table 1 helpers compute through immediately
//     invoked literals);
//   - composite-literal fields such as AccessPath{F: a * b};
//   - declaring another clamp01/Clamp01 outside internal/core, which
//     would fork the entry point the invariant hangs on.
//
// A name is selectivity-ish when one of its camelCase words is exactly
// "f", "sel", "selectivity", "frac", or "fraction" — so matchSel, selSarg,
// and bucketFrac match while baseline and selfFetches do not. ("frac" joined
// with the histogram work: bucket-fraction estimates are selectivities by
// another name and need the same clamp.) Wrapping the arithmetic in clamp01 (or
// any call — calls are audited at their own return sites) satisfies the
// check. Constant declarations are exempt: their values are visible at the
// declaration and cannot drift at runtime.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"unicode"
)

// SelClamp is the selectivity-clamp analyzer.
var SelClamp = &Analyzer{
	Name: "selclamp",
	Doc:  "selectivity values must pass through internal/core's clamp01; no raw float arithmetic into F",
	Run:  runSelClamp,
}

func runSelClamp(pass *Pass) error {
	info := pass.Pkg.Info
	inCore := pathTail(pass.Pkg.Path) == "core"
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				if !inCore {
					checkClampDecl(pass, decl)
				}
				continue
			}
			if !inCore && isClampName(fd.Name.Name) {
				pass.Reportf(fd.Pos(), "%s declared outside internal/core: the selectivity clamp has a single entry point", fd.Name.Name)
			}
			if fd.Body == nil {
				continue
			}
			selFunc := selName(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					checkSelAssign(pass, info, st)
				case *ast.ReturnStmt:
					if selFunc {
						checkSelReturn(pass, info, st)
					}
				case *ast.CompositeLit:
					checkSelComposite(pass, info, st)
				}
				return true
			})
		}
	}
	return nil
}

// checkClampDecl reports clamp01-named function values bound at package
// level outside core (`var Clamp01 = func ...`).
func checkClampDecl(pass *Pass, decl ast.Decl) {
	gd, ok := decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs := spec.(*ast.ValueSpec)
		for _, name := range vs.Names {
			if isClampName(name.Name) {
				pass.Reportf(name.Pos(), "%s declared outside internal/core: the selectivity clamp has a single entry point", name.Name)
			}
		}
	}
}

func checkSelAssign(pass *Pass, info *types.Info, st *ast.AssignStmt) {
	compound := st.Tok != token.ASSIGN && st.Tok != token.DEFINE
	for i, lhs := range st.Lhs {
		name, ok := selTarget(lhs)
		if !ok || !isFloat(info.TypeOf(lhs)) {
			continue
		}
		if compound {
			pass.Reportf(st.Pos(), "unclamped arithmetic into selectivity %s: wrap the result in clamp01", name)
			continue
		}
		if i < len(st.Rhs) && rawArith(st.Rhs[i]) {
			pass.Reportf(st.Pos(), "unclamped value assigned to selectivity %s: wrap the expression in clamp01", name)
		}
	}
}

func checkSelReturn(pass *Pass, info *types.Info, st *ast.ReturnStmt) {
	for _, r := range st.Results {
		if rawArith(r) && isFloat(info.TypeOf(r)) {
			pass.Reportf(r.Pos(), "selectivity function returns unclamped arithmetic: wrap the expression in clamp01")
		}
	}
}

func checkSelComposite(pass *Pass, info *types.Info, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !selName(key.Name) {
			continue
		}
		if rawArith(kv.Value) && isFloat(info.TypeOf(kv.Value)) {
			pass.Reportf(kv.Value.Pos(), "unclamped value for selectivity field %s: wrap the expression in clamp01", key.Name)
		}
	}
}

// selTarget returns the name of an assignable selectivity destination:
// a bare identifier or a field selector.
func selTarget(lhs ast.Expr) (string, bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return e.Name, selName(e.Name)
	case *ast.SelectorExpr:
		return e.Sel.Name, selName(e.Sel.Name)
	}
	return "", false
}

// rawArith reports whether the expression's top level is unclamped float
// arithmetic: a binary arithmetic operation, a negation, or a numeric
// literal outside [0, 1]. Calls are not raw — their return sites are
// checked where they are written.
func rawArith(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return true
		}
	case *ast.UnaryExpr:
		return x.Op == token.SUB
	case *ast.BasicLit:
		if x.Kind == token.INT || x.Kind == token.FLOAT {
			if v, err := strconv.ParseFloat(x.Value, 64); err == nil {
				return v < 0 || v > 1
			}
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isClampName(name string) bool {
	return name == "clamp01" || name == "Clamp01"
}

// selName reports whether one of the identifier's camelCase words is
// exactly "f", "sel", "selectivity", "frac", or "fraction".
func selName(name string) bool {
	for _, w := range camelWords(name) {
		switch w {
		case "f", "sel", "selectivity", "frac", "fraction":
			return true
		}
	}
	return false
}

// camelWords splits an identifier into lower-cased camelCase words.
func camelWords(name string) []string {
	var words []string
	start := 0
	for i, r := range name {
		if i > 0 && unicode.IsUpper(r) {
			words = append(words, strings.ToLower(name[start:i]))
			start = i
		}
	}
	words = append(words, strings.ToLower(name[start:]))
	return words
}

package analysis

// errlost: a Close that fails is the only notification a caller gets that
// buffered work was lost (the paper's RSS surfaces I/O errors at close
// time; this tree surfaces deferred close errors through Cursor.finish).
// Dropping it on the floor silently un-publishes statistics and leaks
// fault-injection failures, so errors from Close/Unlock/Release methods
// must be assigned or propagated:
//
//	v.Close()                 // flagged: error discarded
//	defer v.Close()           // flagged: deferred error discarded
//	_ = v.Close()             // allowed: explicit discard, greppable
//	return v.Close()          // allowed
//	if err := v.Close(); ...  // allowed
//
// Only methods returning exactly one value of type error are considered,
// so sync.Mutex.Unlock and lock.Held.Release (both void) are naturally
// exempt. Test files are not loaded by the driver, so tests may stay
// loose.

import (
	"go/ast"
	"go/types"
)

// ErrLost is the dropped-close-error analyzer.
var ErrLost = &Analyzer{
	Name: "errlost",
	Doc:  "errors from Close/Unlock/Release must be assigned or propagated, not dropped",
	Run:  runErrLost,
}

func runErrLost(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name := errReturningCloser(info, call); name != "" {
						pass.Reportf(st.Pos(), "error from %s is dropped; assign it (or `_ =` to discard explicitly)", name)
					}
				}
			case *ast.DeferStmt:
				if name := errReturningCloser(info, st.Call); name != "" {
					pass.Reportf(st.Pos(), "deferred %s drops its error; close in a func literal and propagate or `_ =` it", name)
				}
			}
			return true
		})
	}
	return nil
}

// errReturningCloser returns a display name when call invokes a method
// named Close, Unlock, or Release whose only result is an error.
func errReturningCloser(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	switch f.Name() {
	case "Close", "Unlock", "Release":
	default:
		return ""
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil || sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
		return ""
	}
	return describeCall(call)
}

package analysis

// govtick enforces the PR 1 invariant that no tuple- or page-producing loop
// runs ungoverned: inside internal/exec, internal/rss, and internal/xsort,
// every loop whose body produces tuples or pages must reach a statement-
// governor checkpoint, so a canceled or over-budget statement aborts even
// when the work happens below the operator boundary (spill loops, page
// walks, run merges).
//
// A loop is governed when its body either calls a *governor.Budget method
// directly, or calls only producers that are themselves governed — the
// governed property is computed per function (to a fixpoint, so helpers
// that delegate to governed functions inherit it) and shared across
// packages through the fact store: exec loops driving rss scan Next calls
// pass because rss's Next methods check the budget internally.
//
// Producers are: methods named Next/next returning (..., bool, error);
// storage.BufferPool.Fetch; storage.Segment.Insert; and calls of
// function-typed values with a (..., bool, error) result shape (e.g. a
// sorter input). Dynamic calls can never be proven governed, so loops
// driving them need their own checkpoint.

import (
	"go/ast"
	"go/types"
)

// GovTick is the governor-checkpoint analyzer.
var GovTick = &Analyzer{
	Name: "govtick",
	Doc:  "tuple/page-producing loops in exec, rss, and xsort must contain a governor budget check",
	Run:  runGovTick,
}

// govtickPackages are the path tails the loop rule applies to. Fact
// computation runs everywhere so governed helpers in other packages (e.g.
// storage) are visible.
var govtickPackages = map[string]bool{"exec": true, "rss": true, "xsort": true}

// governedFact marks a function whose body (transitively) reaches a
// statement-governor checkpoint. Exported per function object by
// computeGovernedFacts; any analyzer that needs the property computes it
// into its own namespace (fact namespaces are per-analyzer so the suite can
// run in parallel).
type governedFact struct{}

func (*governedFact) AFact() {}

// isGoverned reports whether fn carries a governed fact in this analyzer's
// namespace.
func isGoverned(facts factReader, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	return facts.ImportObjectFact(fn, &governedFact{})
}

// factReader is the read surface shared by Pass and ProgramPass.
type factReader interface {
	ImportObjectFact(obj types.Object, f Fact) bool
}

func runGovTick(pass *Pass) error {
	computeGovernedFacts(pass)
	if !govtickPackages[pathTail(pass.Pkg.Path)] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			checkGovLoop(pass, info, n, body)
			return true
		})
	}
	return nil
}

func checkGovLoop(pass *Pass, info *types.Info, loop ast.Node, body *ast.BlockStmt) {
	if containsBudgetCall(info, body) {
		return
	}
	var offending ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if offending != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, governed := classifyProducer(pass, info, call)
		if kind != "" && !governed {
			offending = call
		}
		return true
	})
	if offending != nil {
		pass.Reportf(loop.Pos(),
			"loop produces tuples/pages (%s) without a governor budget check; add a Budget.Tick/Check or call only governed producers",
			describeCall(offending.(*ast.CallExpr)))
	}
}

// classifyProducer reports whether call produces tuples or pages, and if
// so whether the callee is known to contain its own governor checkpoint.
func classifyProducer(facts factReader, info *types.Info, call *ast.CallExpr) (kind string, governed bool) {
	if f := calleeFunc(info, call); f != nil {
		if (f.Name() == "Next" || f.Name() == "next") && producerShape(f.Type().(*types.Signature)) {
			return "Next", isGoverned(facts, f)
		}
		if isMethodOn(f, "Fetch", "storage", "BufferPool") {
			return "page fetch", isGoverned(facts, f)
		}
		if isMethodOn(f, "Insert", "storage", "Segment") {
			return "page insert", isGoverned(facts, f)
		}
		return "", false
	}
	// Dynamic call of a function-typed value: a producer if it has the
	// row-stream shape; never provably governed.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversions are not calls
		return "", false
	}
	if sig, ok := tv.Type.Underlying().(*types.Signature); ok && producerShape(sig) {
		return "dynamic producer", false
	}
	return "", false
}

// producerShape matches result lists ending in (bool, error): the
// row-stream convention used by every Next in the tree.
func producerShape(sig *types.Signature) bool {
	res := sig.Results()
	n := res.Len()
	if n < 2 {
		return false
	}
	if !isErrorType(res.At(n - 1).Type()) {
		return false
	}
	b, ok := res.At(n - 2).Type().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// containsBudgetCall reports whether any call on a *governor.Budget occurs
// in n (function literals included: a checkpoint inside a closure invoked
// by the loop still counts, and over-approximating here only silences the
// lint, never breaks the build).
func containsBudgetCall(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(info, call); f != nil {
			if nm := recvNamed(f); nm != nil && nm.Obj().Name() == "Budget" {
				if p := nm.Obj().Pkg(); p != nil && pathTail(p.Path()) == "governor" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// computeGovernedFacts marks this package's functions that (transitively)
// reach a governor checkpoint, exporting a governedFact per function into
// the calling analyzer's namespace. Packages are analyzed in dependency
// order, so facts about imported packages are already present.
func computeGovernedFacts(pass *Pass) {
	info := pass.Pkg.Info
	type fn struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var fns []fn
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn{obj: obj, body: fd.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if isGoverned(pass, f.obj) {
				continue
			}
			if containsBudgetCall(info, f.body) || callsGovernedFunc(pass, info, f.body) {
				pass.ExportObjectFact(f.obj, &governedFact{})
				changed = true
			}
		}
	}
}

func callsGovernedFunc(facts factReader, info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if f := calleeFunc(info, call); f != nil && isGoverned(facts, f) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func describeCall(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name + "()"
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return id.Name + "." + fn.Sel.Name + "()"
		}
		return fn.Sel.Name + "()"
	default:
		return "call"
	}
}

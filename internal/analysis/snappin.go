package analysis

// snappin enforces the PR 8 snapshot discipline interprocedurally. MVCC
// reads are only meaningful under a pinned snapshot: the reader's
// registration (txn.Registry.Begin) is what holds the vacuum horizon back,
// so a version the snapshot can see is never reclaimed mid-scan. A call
// chain that reaches the visibility boundary — Page.ReadVersioned or
// Snapshot.Visible — from an entry point that never captured a registration
// reads versions that vacuum is free to drop, or reads under a stale
// snapshot captured by nobody; and a captured pin that is not released on
// some return path stalls the vacuum horizon forever (the slow leak that
// turns into unbounded version chains).
//
// Two checks, both over the whole-program call graph:
//
//  1. Origin: walking from every entry point (a function with no in-module
//     callers) that does not itself pin, without descending into pinning
//     functions (everything below a pin is covered by it), no path may
//     reach a direct call of ReadVersioned/Visible. CHA-resolved interface
//     edges keep chains through the Operator tree connected. "Pinning" is
//     either calling Registry.Begin, or being a method on a pin carrier (a
//     type holding a *txn.Reg — systemr.Rows, txn.Txn: the method runs
//     between Begin and Finish by construction). Two boundary rules keep
//     the walk honest about what it cannot see: a root whose signature
//     receives a snapshot-carrying type answers to callers outside the
//     program (the signature moves the obligation to them), and an edge
//     into a snapshot-receiving callee is covered when the caller derives
//     the snapshot it passes from a pin it holds (cur.Snapshot(),
//     reg.Snap) — but not when it conjures a nil-snapshot runtime.
//  2. Release: inside a pinning function, a registration bound to a local
//     (`reg := r.Begin()`) must be Finished on every return path — a
//     deferred Finish, an explicit Finish before each return, or escape
//     (returned or stored: ownership moved, e.g. DB.Begin handing the
//     registration to the session's Txn).
//
// Sanctioned nil-snapshot readers (catalog statistics under the exclusive
// catalog lock, dumps under table S locks, vacuum itself reading under the
// horizon) carry reasoned //sysrcheck:ignore directives at the reporting
// site — the point of the analyzer is that each such exemption is written
// down next to the code that depends on it.

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapPin is the snapshot-pinning analyzer.
var SnapPin = &Analyzer{
	Name:       "snappin",
	Doc:        "call chains reaching ReadVersioned/Snapshot.Visible must originate from a pinned snapshot (Registry.Begin), released on every return path",
	RunProgram: runSnapPin,
}

func isSnapSink(fn *types.Func) bool {
	return isMethodOn(fn, "ReadVersioned", "storage", "Page") ||
		isMethodOn(fn, "Visible", "storage", "Snapshot")
}

func isPinCall(info *types.Info, call *ast.CallExpr) bool {
	return isMethodOn(calleeFunc(info, call), "Begin", "txn", "Registry")
}

func runSnapPin(pass *ProgramPass) error {
	g := pass.Prog.CallGraph
	nodes := g.SortedNodes()

	// Which functions pin? Either the body calls Registry.Begin, or the
	// receiver is a pin carrier: a type that holds a *txn.Reg (directly or
	// through its fields — systemr.Rows holds the registration for the
	// cursor's lifetime; txn.Txn holds it for the transaction's). A method
	// on a carrier runs between Begin and Finish by construction, so chains
	// below it are covered by that pin.
	pins := make(map[*CallNode]bool, len(nodes))
	for _, n := range nodes {
		if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil && carriesReg(recv.Type(), nil) {
			pins[n] = true
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			if call, ok := nd.(*ast.CallExpr); ok && isPinCall(info, call) {
				pins[n] = true
				return false
			}
			return true
		})
	}

	// Check 1: unpinned reachability. BFS from every non-pinning root; a
	// pinning function is a frontier we do not cross. A root whose signature
	// *receives* a snapshot (a parameter or receiver carrying
	// storage.Snapshot, e.g. exec.OpenQuery's *Runtime) is a contract
	// boundary: its callers are outside the program we can see, and the
	// signature moves the pin obligation to them — internal callers of the
	// same function are still walked through it.
	parent := make(map[*CallNode]*CallNode)
	var queue []*CallNode
	inQueue := make(map[*CallNode]bool)
	for _, r := range g.Roots() {
		if !pins[r] && !receivesSnapshot(r.Fn) {
			queue = append(queue, r)
			inQueue[r] = true
		}
	}
	// An edge into a snapshot-receiving function is covered when the caller
	// derives the snapshot it passes from a pin it holds (cur.Snapshot() on
	// a transaction, reg.Snap on a registration): the pin is alive for the
	// call's duration. Callers that conjure a runtime with no snapshot
	// (db.runtime(nil, nil)) derive nothing and are still walked through.
	derives := make(map[*CallNode]bool)
	derivesSnap := func(n *CallNode) bool {
		if d, ok := derives[n]; ok {
			return d
		}
		d := derivesSnapFromPin(n)
		derives[n] = d
		return d
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			c := e.Callee
			if pins[c] || inQueue[c] {
				continue
			}
			if receivesSnapshot(c.Fn) && derivesSnap(n) {
				continue
			}
			parent[c] = n
			inQueue[c] = true
			queue = append(queue, c)
		}
	}
	for _, n := range nodes {
		if !inQueue[n] || pins[n] {
			continue
		}
		for _, e := range n.Out {
			if !isSnapSink(e.Callee.Fn) {
				continue
			}
			pass.Reportf(e.Site.Pos(),
				"%s reaches %s without a pinned snapshot: no Registry.Begin on the chain %s — vacuum may reclaim versions mid-read",
				funcDisplayName(n.Fn), funcDisplayName(e.Callee.Fn), snapChain(parent, n))
		}
	}

	// Check 2: every pin bound to a local is released on all return paths.
	for _, n := range nodes {
		if !pins[n] {
			continue
		}
		checkPinRelease(pass, n)
	}
	return nil
}

// isNamedIn matches a named type (possibly behind a pointer) by name and
// package path tail.
func isNamedIn(t types.Type, name, pkgTail string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == name && o.Pkg() != nil && pathTail(o.Pkg().Path()) == pkgTail
}

// carriesType reports whether t transitively satisfies match through struct
// fields (pointers, slices, arrays, and map values included). Traversal
// stops at txn.Registry: the registry owns *every* registration and every
// snapshot, which says nothing about the holder having pinned one of its
// own.
func carriesType(t types.Type, match func(types.Type) bool, seen map[types.Type]bool) bool {
	if match(t) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if isNamedIn(t, "Registry", "txn") {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesType(u.Field(i).Type(), match, seen) {
				return true
			}
		}
	case *types.Slice:
		return carriesType(u.Elem(), match, seen)
	case *types.Array:
		return carriesType(u.Elem(), match, seen)
	case *types.Map:
		return carriesType(u.Elem(), match, seen)
	}
	return false
}

// carriesReg reports whether t transitively holds a txn.Reg — the holder is
// a pin carrier for its lifetime.
func carriesReg(t types.Type, seen map[types.Type]bool) bool {
	return carriesType(t, func(t types.Type) bool { return isNamedIn(t, "Reg", "txn") }, seen)
}

// derivesSnapFromPin reports whether n's body obtains a snapshot from a pin
// it holds: a Snapshot() call on a Reg-carrying value (txn.Txn) or a .Snap
// read on a txn.Reg.
func derivesSnapFromPin(n *CallNode) bool {
	info := n.Pkg.Info
	found := false
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch x := nd.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Snapshot" {
				if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && carriesReg(tv.Type, nil) {
					found = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Snap" {
				if tv, ok := info.Types[x.X]; ok && tv.Type != nil && isNamedIn(tv.Type, "Reg", "txn") {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// receivesSnapshot reports whether fn's receiver or any parameter carries a
// storage.Snapshot: the caller supplies the snapshot, and with it the pin.
func receivesSnapshot(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	isSnap := func(t types.Type) bool { return isNamedIn(t, "Snapshot", "storage") }
	if r := sig.Recv(); r != nil && carriesType(r.Type(), isSnap, nil) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if carriesType(sig.Params().At(i).Type(), isSnap, nil) {
			return true
		}
	}
	return false
}

// snapChain renders the BFS path root → … → n.
func snapChain(parent map[*CallNode]*CallNode, n *CallNode) string {
	var names []string
	for at := n; at != nil; at = parent[at] {
		names = append(names, funcDisplayName(at.Fn))
		if len(names) > 6 {
			names = append(names, "…")
			break
		}
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// checkPinRelease walks a pinning function for `reg := x.Begin()` bindings
// and verifies Finish-on-every-path, reusing rsiclose's path walker with
// the release-by-argument form (`x.Finish(reg)`, selected by closeName
// "Finish"). Function literals are scopes of their own.
func checkPinRelease(pass *ProgramPass, n *CallNode) {
	checkPinScope(pass, n.Pkg.Info, n.Decl.Body)
}

func checkPinScope(pass *ProgramPass, info *types.Info, body *ast.BlockStmt) {
	var acqs []*acquisition
	var lits []*ast.FuncLit
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(nd ast.Node) bool {
			if lit, ok := nd.(*ast.FuncLit); ok {
				lits = append(lits, lit)
				return false
			}
			as, ok := nd.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !isPinCall(info, call) {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			v := localVarOf(info, id)
			if v == nil {
				return true
			}
			acqs = append(acqs, &acquisition{
				v: v, name: id.Name, what: "Registry.Begin", closeName: "Finish",
				pos: as.Pos(), after: as.End(),
			})
			return true
		})
	}
	for _, a := range acqs {
		w := &leakWalker{info: info, a: a}
		for _, s := range body.List {
			ast.Inspect(s, func(nd ast.Node) bool {
				if d, ok := nd.(*ast.DeferStmt); ok {
					if w.mentionsClose(d.Call) || w.callMentionsVar(d.Call) {
						w.safe = true
					}
				}
				return !w.safe
			})
			if w.safe {
				break
			}
		}
		if w.safe {
			continue
		}
		closedAtEnd := w.walkStmts(body.List, false)
		if w.safe {
			continue
		}
		for _, pos := range w.leaks {
			pass.Reportf(pos,
				"snapshot pin %s from Registry.Begin (line %d) may not be released on this return path: call Finish or defer it",
				a.name, pass.Prog.Fset.Position(a.pos).Line)
		}
		if len(w.leaks) == 0 && !closedAtEnd && !w.everClosed {
			pass.Reportf(a.pos,
				"snapshot pin %s from Registry.Begin is never released: an unreleased pin stalls the vacuum horizon",
				a.name)
		}
	}
	for _, lit := range lits {
		checkPinScope(pass, info, lit.Body)
	}
}

package analysis

import (
	"path/filepath"
	"testing"
)

func TestRSICloseFixture(t *testing.T) { runFixture(t, RSIClose, "rsiclose") }

func TestGovTickFixture(t *testing.T) {
	diags := runFixture(t, GovTick, "govtick")
	// The reasonless directive is itself a finding, reported at the
	// directive's own line.
	path := filepath.Join("testdata", "govtick", "exec", "loops.go")
	line := lineOfTrimmed(t, path, "//sysrcheck:ignore govtick")
	expectAt(t, diags, path, line, "requires a reason")
}

func TestSelClampFixture(t *testing.T) { runFixture(t, SelClamp, "selclamp") }

func TestNakedPanicFixture(t *testing.T) { runFixture(t, NakedPanic, "nakedpanic") }

func TestErrLostFixture(t *testing.T) { runFixture(t, ErrLost, "errlost") }

func TestNoPrintFixture(t *testing.T) { runFixture(t, NoPrint, "noprint") }

func TestStmtIOFixture(t *testing.T) { runFixture(t, StmtIO, "stmtio") }

func TestTxnUndoFixture(t *testing.T) { runFixture(t, TxnUndo, "txnundo") }

func TestGovBatchFixture(t *testing.T) { runFixture(t, GovBatch, "govbatch") }

func TestMVCCVisFixture(t *testing.T) { runFixture(t, MVCCVis, "mvccvis") }

func TestLockRankFixture(t *testing.T) { runFixture(t, LockRank, "lockrank") }

func TestAtomicFieldFixture(t *testing.T) { runFixture(t, AtomicField, "atomicfield") }

func TestSnapPinFixture(t *testing.T) { runFixture(t, SnapPin, "snappin") }

func TestGovPropFixture(t *testing.T) { runFixture(t, GovProp, "govprop") }

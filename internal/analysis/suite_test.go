package analysis

import "testing"

// TestTreeIsClean is the in-repo mirror of the CI hard gate: the full
// sysrcheck suite over the whole module must report nothing. A change that
// reintroduces a leak path, an ungoverned loop, an unclamped selectivity,
// a naked panic, a dropped close error, or a stray print fails `go test`
// before it ever reaches CI.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, Suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

package analysis

// noprint keeps library output on the API surface. EXPLAIN and trace
// output render into strings or a caller-supplied io.Writer; nothing in a
// library package writes to the process's stdout or stderr, which belong
// to the embedding program (cmd/rsql pipes query results; a stray Printf
// corrupts that stream).
//
// Flagged in non-main, non-cmd packages: fmt.Print/Printf/Println,
// fmt.Fprint* directed at os.Stdout or os.Stderr, method calls on
// os.Stdout/os.Stderr (Write, WriteString, ...), and the print/println
// builtins.

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPrint is the stray-output analyzer.
var NoPrint = &Analyzer{
	Name: "noprint",
	Doc:  "library code must not write to stdout/stderr; render to strings or an io.Writer",
	Run:  runNoPrint,
}

func runNoPrint(pass *Pass) error {
	if inCmd(pass.Pkg.Path) || pass.Pkg.Name == "main" {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "print" || id.Name == "println") {
					pass.Reportf(call.Pos(), "%s builtin writes to stderr; render to a string or io.Writer", id.Name)
					return true
				}
			}
			// Methods on os.Stdout / os.Stderr (Write, WriteString, ...).
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isStdStream(info, sel.X) {
				pass.Reportf(call.Pos(), "direct write to os.%s from library code; take an io.Writer from the caller", stdStreamName(sel.X))
				return true
			}
			f := calleeFunc(info, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" {
				return true
			}
			if strings.HasPrefix(f.Name(), "Print") {
				pass.Reportf(call.Pos(), "fmt.%s writes to stdout from library code; render to a string or io.Writer", f.Name())
			} else if strings.HasPrefix(f.Name(), "Fprint") && len(call.Args) > 0 && isStdStream(info, call.Args[0]) {
				pass.Reportf(call.Pos(), "fmt.%s to os.%s from library code; take an io.Writer from the caller", f.Name(), stdStreamName(call.Args[0]))
			}
			return true
		})
	}
	return nil
}

// isStdStream matches the os.Stdout / os.Stderr package variables.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == "os"
}

func stdStreamName(e ast.Expr) string {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Stdout"
}

package analysis

// govprop is the interprocedural closure of govtick. govtick's rule is
// local: a producing loop in exec/rss/xsort must tick the statement
// governor or drive only governed producers. That leaves a gap the
// per-package analyzer cannot see: a helper whose loop relies on *its
// caller* having ticked is fine when every caller ticks — and silently
// ungoverned when some new entry point starts calling it without a budget
// on the stack. govprop closes the gap over the whole-program call graph:
// for every row-producing loop anywhere in the module (not just the three
// govtick packages), either the loop ticks locally, or every call-graph
// path from an entry point to the enclosing function passes through a
// function that ticks.
//
// "Ticks" means the function body contains a direct *governor.Budget
// method call. The analyzer BFSes from every non-ticking entry point
// (call-graph root), refusing to descend into ticking functions: anything
// it still reaches is running with no budget anywhere on the stack. A
// producing loop (per govtick's producer classification, in its own fact
// namespace) without a local checkpoint in such a function is reported,
// with the unticked chain from the entry point as evidence.
//
// cmd packages are exempt as loop *sites* (drivers print and loop over
// results at the top level, outside any statement) but still participate
// as entry points: a cmd main that reaches a producing loop deep in the
// engine without anyone ticking is exactly the bug this analyzer exists
// to catch.

import (
	"go/ast"
	"strings"
)

// GovProp is the interprocedural governor-propagation analyzer.
var GovProp = &Analyzer{
	Name:       "govprop",
	Doc:        "row-producing loops must tick the governor locally or be reachable only through ticking callers",
	Run:        runGovPropPkg,
	RunProgram: runGovPropProgram,
}

// runGovPropPkg computes governed facts into govprop's own namespace so the
// program pass can reuse govtick's producer classification.
func runGovPropPkg(pass *Pass) error {
	computeGovernedFacts(pass)
	return nil
}

func runGovPropProgram(pass *ProgramPass) error {
	g := pass.Prog.CallGraph
	nodes := g.SortedNodes()

	// Which functions tick the budget directly?
	ticks := make(map[*CallNode]bool, len(nodes))
	for _, n := range nodes {
		if containsBudgetCall(n.Pkg.Info, n.Decl.Body) {
			ticks[n] = true
		}
	}

	// BFS from non-ticking roots; ticking functions are a frontier we do
	// not cross (everything below them runs under a budget).
	parent := make(map[*CallNode]*CallNode)
	unticked := make(map[*CallNode]bool)
	var queue []*CallNode
	for _, r := range g.Roots() {
		if !ticks[r] {
			queue = append(queue, r)
			unticked[r] = true
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			c := e.Callee
			if ticks[c] || unticked[c] {
				continue
			}
			parent[c] = n
			unticked[c] = true
			queue = append(queue, c)
		}
	}

	for _, n := range nodes {
		if !unticked[n] || ticks[n] || inCmd(n.Pkg.Path) {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := nd.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if containsBudgetCall(info, body) {
				return true
			}
			var offending *ast.CallExpr
			ast.Inspect(body, func(inner ast.Node) bool {
				if offending != nil {
					return false
				}
				if call, ok := inner.(*ast.CallExpr); ok {
					if kind, governed := classifyProducer(pass, info, call); kind != "" && !governed {
						offending = call
					}
				}
				return true
			})
			if offending != nil {
				pass.Reportf(nd.Pos(),
					"loop drives %s with no governor anywhere on the call stack: %s never ticks — add a Budget check here or in a caller",
					describeCall(offending), govChain(parent, n))
			}
			return true
		})
	}
	return nil
}

// govChain renders the unticked BFS path entrypoint → … → n.
func govChain(parent map[*CallNode]*CallNode, n *CallNode) string {
	var names []string
	for at := n; at != nil; at = parent[at] {
		names = append(names, funcDisplayName(at.Fn))
		if len(names) > 6 {
			names = append(names, "…")
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

package analysis

// mvccvis enforces the PR 8 MVCC visibility discipline. Heap records carry a
// version header (creating/deleting XIDs and a back-link to the previous
// version); which versions a statement may see is decided exactly once, at
// the RSS boundary, by storage.Snapshot.Visible over Page.ReadVersioned. A
// raw page-record decode in the executor or the transaction layer would
// bypass that check and read delete-marked or uncommitted versions — the
// classic dirty read, invisible until two transactions actually race.
//
// The analyzer forbids, in the packages above the RSS boundary (exec, txn):
//
//   - (*storage.Page).Record — the raw record accessor returns header-
//     prefixed bytes with no visibility decision attached;
//   - storage.DecodeRow — decoding a heap record directly implies the
//     header (and therefore visibility) was skipped. Temporary lists (sort
//     runs, hash partitions) are not versioned and have their own codecs,
//     so this function has no legitimate caller in those packages;
//   - storage.ParseVersionHeader — splitting the header by hand instead of
//     going through ReadVersioned + Snapshot.Visible.
//
// The rss package itself is the sanctioned implementation of the visibility
// boundary; storage owns the primitives; catalog, dump, and testutil read
// whole heaps under locks that exclude writers (their nil-snapshot "latest
// committed" reads are exact) — all out of scope here.

import "go/ast"

// MVCCVis is the MVCC visibility-boundary analyzer.
var MVCCVis = &Analyzer{
	Name: "mvccvis",
	Doc:  "row versions must be read through the RSS visibility boundary (ReadVersioned + Snapshot.Visible); raw Page.Record / DecodeRow / ParseVersionHeader in exec or txn bypasses MVCC",
	Run:  runMVCCVis,
}

// mvccVisPkgs are the package tails where every heap read must have passed
// the visibility check already.
var mvccVisPkgs = map[string]bool{"exec": true, "txn": true}

func runMVCCVis(pass *Pass) error {
	if !mvccVisPkgs[pathTail(pass.Pkg.Path)] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch {
			case isMethodOn(fn, "Record", "storage", "Page"):
				pass.Reportf(call.Pos(), "raw Page.Record bypasses MVCC visibility: read through the RSS scans (ReadVersioned + Snapshot.Visible)")
			case isPkgFunc(fn, "DecodeRow", "storage"):
				pass.Reportf(call.Pos(), "storage.DecodeRow on a heap record bypasses MVCC visibility: rows reach this layer already decoded by the RSS")
			case isPkgFunc(fn, "ParseVersionHeader", "storage"):
				pass.Reportf(call.Pos(), "hand-rolled version-header parsing bypasses MVCC visibility: use the RSS scans over ReadVersioned")
			}
			return true
		})
	}
	return nil
}

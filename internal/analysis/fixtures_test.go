package analysis

// Fixture harness in the style of x/tools' analysistest: fixture sources
// under testdata/<analyzer>/ carry `// want "regex"` comments on the lines
// the analyzer must flag. The test fails on any unmatched want AND on any
// diagnostic without a want — so weakening an analyzer (a lost finding)
// and loosening it (a new false positive) both break the suite.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`// want "(.*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/<dir>, runs one analyzer, and checks the
// diagnostics against the fixture's want annotations.
func runFixture(t *testing.T, a *Analyzer, dir string) []Diagnostic {
	t.Helper()
	pkgs, err := LoadFixture(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkgs)
	var unexpected []Diagnostic
outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				continue outer
			}
		}
		if d.Analyzer == "sysrcheck" {
			// Malformed-directive findings sit on the directive's own
			// line, where no want comment can live; asserted by marker.
			continue
		}
		unexpected = append(unexpected, d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for _, d := range unexpected {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	return diags
}

func collectWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var ws []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return ws
}

// lineOfTrimmed returns the 1-based line whose trimmed content equals
// marker — for asserting diagnostics on lines that cannot carry a want
// comment (e.g. a malformed directive).
func lineOfTrimmed(t *testing.T, path, marker string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, ln := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(ln) == marker {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, path)
	return 0
}

func expectAt(t *testing.T, diags []Diagnostic, file string, line int, msgRE string) {
	t.Helper()
	re := regexp.MustCompile(msgRE)
	for _, d := range diags {
		if d.Pos.Filename == file && d.Pos.Line == line && re.MatchString(d.Message) {
			return
		}
	}
	t.Errorf("%s:%d: expected a diagnostic matching %q, got none", file, line, msgRE)
}

package analysis

// nakedpanic keeps panics out of library code. The PR 1 governor contains
// panics at the statement boundary and converts them to *PanicError, but
// that containment is a last line of defense, not an error-handling
// strategy: library packages must return errors, and the few places where
// an unreachable state genuinely warrants crashing go through
// internal/check's sanctioned helper so they are greppable and carry a
// uniform message shape.
//
// Exempt: main packages and anything under a cmd/ segment (a program may
// panic on its own startup errors), functions whose name starts with Must
// (the documented panic-on-error convention), and internal/check itself
// (the helper has to panic to exist).

import (
	"go/ast"
	"go/types"
	"strings"
)

// NakedPanic is the library-panic analyzer.
var NakedPanic = &Analyzer{
	Name: "nakedpanic",
	Doc:  "library code must not call panic directly; use internal/check or return an error",
	Run:  runNakedPanic,
}

func runNakedPanic(pass *Pass) error {
	if inCmd(pass.Pkg.Path) || pass.Pkg.Name == "main" || pathTail(pass.Pkg.Path) == "check" {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a local function shadowing the builtin
			}
			if fn := enclosingFuncName(stack); strings.HasPrefix(fn, "Must") || strings.HasPrefix(fn, "must") {
				return true
			}
			pass.Reportf(call.Pos(), "naked panic in library code: use check.Failf (contained at the statement boundary) or return an error")
			return true
		})
	}
	return nil
}

package storage

import (
	"sync"
	"testing"
)

// poolWithPages returns a pool plus n allocated, written-through page IDs.
func poolWithPages(t *testing.T, capacity, n int) (*BufferPool, []PageID) {
	t.Helper()
	disk := NewDisk()
	stats := &IOStats{}
	bp := NewBufferPool(disk, capacity, stats)
	ids := make([]PageID, n)
	for i := range ids {
		ids[i], _ = disk.AllocPage()
	}
	return bp, ids
}

// TestStmtIODoubleLedger checks every access through a statement view lands
// on both ledgers: the statement's own accumulator and the pool's DB-global
// stats.
func TestStmtIODoubleLedger(t *testing.T) {
	bp, ids := poolWithPages(t, 8, 3)
	stmt := &IOStats{}
	io := bp.View(stmt)
	for _, id := range ids {
		if _, err := io.Fetch(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := io.Fetch(ids[0]); err != nil { // hit: logical read, no fetch
		t.Fatal(err)
	}
	io.AddRSICall()
	io.MarkWritten(ids[1])

	want := IOStatsSnapshot{PageFetches: 3, LogicalReads: 4, RSICalls: 1, PagesWritten: 1}
	if got := stmt.Snapshot(); got != want {
		t.Fatalf("statement ledger = %+v, want %+v", got, want)
	}
	if got := bp.Stats().Snapshot(); got != want {
		t.Fatalf("global ledger = %+v, want %+v", got, want)
	}
}

// TestStmtIOSeparatesStatements runs two statement views over the same pool
// and checks each ledger holds only its own traffic while the global ledger
// holds the sum.
func TestStmtIOSeparatesStatements(t *testing.T) {
	bp, ids := poolWithPages(t, 16, 6)
	a, b := &IOStats{}, &IOStats{}
	ioA, ioB := bp.View(a), bp.View(b)
	for _, id := range ids[:2] {
		if _, err := ioA.Fetch(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids[2:] {
		if _, err := ioB.Fetch(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.FetchCount(); got != 2 {
		t.Fatalf("statement A fetches = %d, want 2", got)
	}
	if got := b.FetchCount(); got != 4 {
		t.Fatalf("statement B fetches = %d, want 4", got)
	}
	if got := bp.Stats().FetchCount(); got != 6 {
		t.Fatalf("global fetches = %d, want 6", got)
	}
}

// TestStmtIONilAndZero checks the inert forms: a view with a nil statement
// accumulator counts only globally, and the zero StmtIO is a safe no-op.
func TestStmtIONilAndZero(t *testing.T) {
	bp, ids := poolWithPages(t, 8, 1)
	io := bp.View(nil)
	if _, err := io.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := bp.Stats().FetchCount(); got != 1 {
		t.Fatalf("global fetches = %d, want 1", got)
	}
	// FetchCount with no statement accumulator falls back to the global.
	if got := io.FetchCount(); got != 1 {
		t.Fatalf("view FetchCount = %d, want global fallback 1", got)
	}
	var zero StmtIO
	zero.Touch(ids[0])
	zero.AddRSICall()
	if got := zero.FetchCount(); got != 0 {
		t.Fatalf("zero view FetchCount = %d, want 0", got)
	}
}

// TestStmtIOConcurrentExact hammers disjoint statement views from parallel
// goroutines (run with -race) and checks each statement ledger ends exactly
// at its own traffic — the accounting property the executor's per-operator
// deltas rely on.
func TestStmtIOConcurrentExact(t *testing.T) {
	const goroutines, reps = 8, 200
	bp, ids := poolWithPages(t, goroutines, goroutines)
	stmts := make([]*IOStats, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		stmts[g] = &IOStats{}
		io := bp.View(stmts[g])
		id := ids[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				if _, err := io.Fetch(id); err != nil {
					return
				}
				io.AddRSICall()
			}
		}()
	}
	wg.Wait()
	var totalFetches int64
	for g, stmt := range stmts {
		s := stmt.Snapshot()
		// Each goroutine touches one private page: 1 miss, then hits.
		if s.PageFetches != 1 || s.LogicalReads != reps || s.RSICalls != reps {
			t.Fatalf("goroutine %d ledger = %+v, want fetches=1 reads=%d rsi=%d", g, s, reps, reps)
		}
		totalFetches += s.PageFetches
	}
	g := bp.Stats().Snapshot()
	if g.PageFetches != totalFetches || g.LogicalReads != goroutines*reps || g.RSICalls != goroutines*reps {
		t.Fatalf("global ledger = %+v, want sum of statement ledgers", g)
	}
}

// TestFaultInjectorDeterministicUnderConcurrency checks fetchN: with N
// goroutines racing cold fetches, the injector sees every ordinal 1..N
// exactly once — the sequence is total, not per-goroutine.
func TestFaultInjectorDeterministicUnderConcurrency(t *testing.T) {
	const pages = 32
	bp, ids := poolWithPages(t, pages, pages)
	rec := &recordingInjector{seen: make(map[int64]int)}
	bp.SetFaultInjector(rec)
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := bp.Fetch(id); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if len(rec.seen) != pages {
		t.Fatalf("injector saw %d distinct ordinals, want %d", len(rec.seen), pages)
	}
	for n := int64(1); n <= pages; n++ {
		if rec.seen[n] != 1 {
			t.Fatalf("ordinal %d seen %d times, want exactly once", n, rec.seen[n])
		}
	}
}

// recordingInjector counts how often each fetch ordinal is observed. Its
// own lock keeps the test independent of where the pool chooses to call
// the injector.
type recordingInjector struct {
	mu   sync.Mutex
	seen map[int64]int
}

func (r *recordingInjector) PageFetch(n int64, id PageID) error {
	r.mu.Lock()
	r.seen[n]++
	r.mu.Unlock()
	return nil
}

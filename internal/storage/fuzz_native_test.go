package storage

import "testing"

// FuzzDecodeRow: arbitrary bytes must decode to a row or an error, never
// panic, and valid rows must re-encode losslessly.
func FuzzDecodeRow(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 2})
	f.Add(EncodeRow(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := DecodeRow(data)
		if err != nil {
			return
		}
		again, err := DecodeRow(EncodeRow(row))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(row) {
			t.Fatalf("round trip changed arity: %d vs %d", len(again), len(row))
		}
	})
}

package storage

// Multi-version tuple headers and snapshot visibility — the storage half of
// MVCC. Every heap record is a *version*: a fixed 22-byte header (creator
// transaction, deleter transaction, link to the superseded version) followed
// by the ordinary row encoding. Snapshots decide which version of each row a
// statement sees; the RSI scans in internal/rss apply Visible at the
// boundary so nothing above the RSS ever observes an invisible version.
//
// The engine keeps no commit log: an aborting transaction physically undoes
// its writes (inserted versions are removed from the page and its indexes,
// delete marks are cleared), so any transaction ID still present in a header
// belongs to a transaction that is committed, still active, or the reader
// itself. Visibility therefore needs only the reader's snapshot — its own
// ID, the next-unassigned ID at snapshot time, and the set of transactions
// active at snapshot time.

import (
	"encoding/binary"

	"systemr/internal/value"
)

// XID identifies a transaction for versioning. IDs are assigned by the
// transaction registry, monotonically from 1.
type XID uint64

// FrozenXID marks versions created outside any transaction (system catalog
// bootstrap rows, test fixtures): always committed, visible to every
// snapshot.
const FrozenXID XID = 0

// VersionHeaderSize is the fixed header prepended to every heap record:
// xmin (8) + xmax (8) + previous-version page (4) + slot (2).
const VersionHeaderSize = 8 + 8 + 4 + 2

// NoPrevTID is the version-chain terminator: the version was created by an
// INSERT, not an UPDATE, so there is no prior version.
var NoPrevTID = TID{Page: InvalidPageID}

// VersionHeader is one heap version's MVCC metadata.
type VersionHeader struct {
	// Xmin is the transaction that created this version.
	Xmin XID
	// Xmax is the transaction that deleted (or superseded, for UPDATE) this
	// version; 0 while the version is live.
	Xmax XID
	// Prev locates the version this one superseded (UPDATE chains), or
	// NoPrevTID for freshly inserted rows.
	Prev TID
}

// EncodeVersionedRow serializes a version header followed by the row.
func EncodeVersionedRow(h VersionHeader, r value.Row) []byte {
	body := EncodeRow(r)
	rec := make([]byte, VersionHeaderSize+len(body))
	putVersionHeader(rec, h)
	copy(rec[VersionHeaderSize:], body)
	return rec
}

func putVersionHeader(rec []byte, h VersionHeader) {
	binary.LittleEndian.PutUint64(rec[0:8], uint64(h.Xmin))
	binary.LittleEndian.PutUint64(rec[8:16], uint64(h.Xmax))
	binary.LittleEndian.PutUint32(rec[16:20], uint32(h.Prev.Page))
	binary.LittleEndian.PutUint16(rec[20:22], h.Prev.Slot)
}

// ParseVersionHeader splits a heap record into its version header and the
// encoded-row body.
func ParseVersionHeader(rec []byte) (VersionHeader, []byte, error) {
	if len(rec) < VersionHeaderSize {
		return VersionHeader{}, nil, ErrCorruptRecord
	}
	h := VersionHeader{
		Xmin: XID(binary.LittleEndian.Uint64(rec[0:8])),
		Xmax: XID(binary.LittleEndian.Uint64(rec[8:16])),
		Prev: TID{
			Page: PageID(binary.LittleEndian.Uint32(rec[16:20])),
			Slot: binary.LittleEndian.Uint16(rec[20:22]),
		},
	}
	return h, rec[VersionHeaderSize:], nil
}

// Snapshot fixes the set of transactions whose effects a statement sees. It
// is taken at BEGIN for explicit transactions (repeatable reads: every
// statement of the transaction reuses it) and per statement for autocommit.
//
// A nil *Snapshot means "latest committed": a version is visible exactly
// when it carries no delete mark. That is correct only when no writer can be
// concurrently active — DumpSQL (which still takes table S locks) and
// catalog statistics (under the exclusive catalog lock) use it.
type Snapshot struct {
	// Self is the reading transaction's own ID; its own writes are visible.
	Self XID
	// Max is the next-unassigned transaction ID when the snapshot was taken:
	// any ID >= Max started later and is invisible.
	Max XID
	// Active holds the transactions in flight when the snapshot was taken:
	// whatever they commit later is invisible.
	Active map[XID]struct{}
}

// committed reports whether x was committed when the snapshot was taken.
// Because aborts physically undo their writes, an ID found in a header is
// never from an aborted-and-finished transaction: not-active and
// started-before-us means committed.
func (s *Snapshot) committed(x XID) bool {
	if x == FrozenXID {
		return true
	}
	if x >= s.Max {
		return false
	}
	_, active := s.Active[x]
	return !active
}

// Visible reports whether the version described by h is part of the
// snapshot's consistent view: its creator committed before the snapshot (or
// is the reader itself), and it was not deleted by the reader or by a
// transaction committed before the snapshot.
func (s *Snapshot) Visible(h VersionHeader) bool {
	if s == nil {
		return h.Xmax == 0
	}
	if h.Xmin != s.Self && !s.committed(h.Xmin) {
		return false
	}
	switch {
	case h.Xmax == 0:
		return true
	case h.Xmax == s.Self:
		return false
	default:
		return !s.committed(h.Xmax)
	}
}

// SlotCount returns the page's slot-directory size under the shared latch —
// the bound a concurrent scan iterates to. Slots appended after the read
// hold versions the scanning snapshot cannot see anyway.
func (p *Page) SlotCount() uint16 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.NumSlots()
}

// ReadVersioned reads and decodes the version in slot i under the page's
// shared latch, so concurrent in-place delete marks and record appends can
// never tear the read (Record returns a slice aliasing the page image; this
// is the only safe way to read a heap tuple while writers run). ok is false
// for missing or (physically) deleted slots; err reports a record that does
// not parse as header + row.
func (p *Page) ReadVersioned(i uint16) (h VersionHeader, row value.Row, rel RelID, ok bool, err error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	rec, rel, ok := p.record(i)
	if !ok {
		return VersionHeader{}, nil, 0, false, nil
	}
	h, body, err := ParseVersionHeader(rec)
	if err != nil {
		return VersionHeader{}, nil, rel, false, err
	}
	row, err = DecodeRow(body)
	if err != nil {
		return VersionHeader{}, nil, rel, false, err
	}
	return h, row, rel, true, nil
}

// SwapXmax atomically compares slot i's delete mark with old and, when they
// match, stores new — the in-place mutation behind DELETE (0 → self), undo
// of DELETE (self → 0), and first-updater-wins conflict detection: a writer
// that finds prior != 0 set by another transaction has lost the race. live
// is false for missing, physically deleted, or headerless slots (prior is
// meaningless then); swapped reports whether the store happened.
func (p *Page) SwapXmax(i uint16, old, new XID) (prior XID, live, swapped bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, _, ok := p.record(i)
	if !ok || len(rec) < VersionHeaderSize {
		return 0, false, false
	}
	prior = XID(binary.LittleEndian.Uint64(rec[8:16]))
	if prior != old {
		return prior, true, false
	}
	binary.LittleEndian.PutUint64(rec[8:16], uint64(new))
	return prior, true, true
}

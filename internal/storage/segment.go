package storage

import "sync"

// Segment is the logical unit of pages described in Section 3: segments may
// contain one or more relations, but no relation spans a segment. A segment
// scan touches every non-empty page of the segment exactly once, returning
// only the tuples of the requested relation — which is precisely why the
// paper's segment-scan cost is TCARD/P (all pages of the segment), not TCARD.
type Segment struct {
	mu    sync.Mutex
	ID    int
	disk  *Disk
	pages []PageID
	// lastFor remembers the last page with free space per relation so that a
	// relation loaded in key order stays physically clustered (the clustered-
	// index property of Section 3 arises from insertion order, as in the
	// paper: "if the tuples are inserted into segment pages in the index
	// ordering ... the index is clustered").
	lastFor map[RelID]PageID
}

// NewSegment creates an empty segment on disk.
func NewSegment(id int, disk *Disk) *Segment {
	return &Segment{ID: id, disk: disk, lastFor: make(map[RelID]PageID)}
}

// Pages returns the segment's page IDs in physical order. The caller must
// not mutate the returned slice.
func (s *Segment) Pages() []PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// NumPages returns the number of pages in the segment.
func (s *Segment) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Insert stores a record for rel, appending a page when the current one is
// full, and returns the record's TID. Writes bypass the buffer pool's read
// accounting (loading is not part of any measured query) but the page is left
// resident, matching a freshly written buffer frame.
func (s *Segment) Insert(rel RelID, record []byte) (TID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if last, ok := s.lastFor[rel]; ok {
		p := s.disk.page(last)
		if slot, err := p.Insert(rel, record); err == nil {
			return TID{Page: last, Slot: slot}, nil
		}
	} else if n := len(s.pages); n > 0 {
		// First insert for this relation into a shared segment: reuse the
		// segment's current last page — "tuples from two or more relations
		// may occur on the same page" (Section 3).
		last := s.pages[n-1]
		if slot, err := s.disk.page(last).Insert(rel, record); err == nil {
			s.lastFor[rel] = last
			return TID{Page: last, Slot: slot}, nil
		}
	}
	id, p := s.disk.AllocPage()
	s.pages = append(s.pages, id)
	s.lastFor[rel] = id
	slot, err := p.Insert(rel, record)
	if err != nil {
		return TID{}, err
	}
	return TID{Page: id, Slot: slot}, nil
}

// InterleaveBreak forces the next insert (for any relation) onto a fresh
// page, separating physically what was loaded before from what is loaded
// after. Workload generators use it to control which relations share pages.
func (s *Segment) InterleaveBreak() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastFor = make(map[RelID]PageID)
	id, _ := s.disk.AllocPage()
	s.pages = append(s.pages, id)
}

// NonEmptyPages counts pages holding at least one live record of any
// relation — the denominator of P(T) = TCARD(T) / (non-empty pages).
func (s *Segment) NonEmptyPages() int {
	s.mu.Lock()
	pages := append([]PageID(nil), s.pages...)
	s.mu.Unlock()
	n := 0
	for _, id := range pages {
		if s.disk.page(id).LiveRecords() > 0 {
			n++
		}
	}
	return n
}

// PagesHolding counts pages with at least one live record of rel — TCARD(T).
func (s *Segment) PagesHolding(rel RelID) int {
	s.mu.Lock()
	pages := append([]PageID(nil), s.pages...)
	s.mu.Unlock()
	n := 0
	for _, id := range pages {
		if s.disk.page(id).HasRecordsFor(rel) {
			n++
		}
	}
	return n
}

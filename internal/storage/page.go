// Package storage implements the physical layer of the Research Storage
// System (RSS) described in Section 3 of the paper: relations stored as
// tuples on 4K-byte slotted pages, pages organized into segments that may be
// shared by several relations (each stored record is tagged with the
// identifier of the relation it belongs to), and a buffer pool through which
// every page access flows so that PAGE FETCHES — the I/O term of the
// optimizer's cost formula — are measured exactly.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// PageSize is the size of every data page in bytes. The paper's System R used
// 4K-byte pages; we keep the same size so TCARD/NINDX magnitudes are
// comparable.
const PageSize = 4096

// PageID identifies a page within the simulated disk.
type PageID uint32

// InvalidPageID is the sentinel for "no page".
const InvalidPageID = PageID(0xFFFFFFFF)

// RelID identifies a stored relation. Records carry their RelID so that
// tuples from two or more relations may occur on the same segment page,
// exactly as in the paper.
type RelID uint32

// TID is a tuple identifier: the page that stores the tuple and the slot
// within the page. B-tree leaves hold (key, TID) pairs.
type TID struct {
	Page PageID
	Slot uint16
}

// String renders the TID as page.slot.
func (t TID) String() string { return fmt.Sprintf("%d.%d", t.Page, t.Slot) }

// Less orders TIDs by page then slot; used to break ties among duplicate
// index keys deterministically.
func (t TID) Less(o TID) bool {
	if t.Page != o.Page {
		return t.Page < o.Page
	}
	return t.Slot < o.Slot
}

// Page layout (little-endian):
//
//	[0:2)   numSlots  uint16
//	[2:4)   freeOff   uint16  — start of unused space between records and slots
//	[4:...) record heap growing up
//	[...:PageSize) slot directory growing down; slot i occupies the 8 bytes at
//	        PageSize-8*(i+1): off uint16, len uint16, relID uint32.
//	        len == 0 marks a deleted slot.
//
// A Page is a real byte image: rows are serialized into it and parsed back
// out, so TCARD (pages per relation) emerges from actual record sizes.
//
// The page latch (mu) makes the MVCC concurrency contract explicit: the
// mutators (Insert, Delete, Restore, SwapXmax) lock it internally, and
// ReadVersioned/SlotCount read under the shared latch, so snapshot scans can
// run against a page while a writer appends versions or flips delete marks
// in place. The raw readers (Record, NumSlots, …) take no latch — they are
// for callers that already exclude writers (table locks, the catalog lock,
// single-threaded tests, private sort temp pages).
type Page struct {
	ID   PageID
	mu   sync.RWMutex
	Data [PageSize]byte
}

const (
	pageHeaderSize = 4
	slotSize       = 8
)

// InitPage formats a zeroed page as an empty slotted page.
func (p *Page) InitPage() {
	binary.LittleEndian.PutUint16(p.Data[0:2], 0)
	binary.LittleEndian.PutUint16(p.Data[2:4], pageHeaderSize)
}

// NumSlots returns the number of slot directory entries (including deleted).
func (p *Page) NumSlots() uint16 { return binary.LittleEndian.Uint16(p.Data[0:2]) }

func (p *Page) setNumSlots(n uint16) { binary.LittleEndian.PutUint16(p.Data[0:2], n) }

func (p *Page) freeOff() uint16 { return binary.LittleEndian.Uint16(p.Data[2:4]) }

func (p *Page) setFreeOff(off uint16) { binary.LittleEndian.PutUint16(p.Data[2:4], off) }

func (p *Page) slotBase(i uint16) int { return PageSize - slotSize*(int(i)+1) }

// FreeSpace returns the bytes available for one more record plus its slot.
func (p *Page) FreeSpace() int {
	free := p.slotBase(p.NumSlots()) - int(p.freeOff())
	if free < 0 {
		return 0
	}
	return free
}

// ErrPageFull is returned when a record does not fit on the page.
var ErrPageFull = errors.New("storage: page full")

// ErrRecordTooLarge is returned for records that cannot fit on any page.
var ErrRecordTooLarge = errors.New("storage: record larger than page")

// MaxRecordSize is the largest record Insert accepts.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize

// Insert appends a record belonging to rel and returns its slot number.
func (p *Page) Insert(rel RelID, record []byte) (uint16, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(record) > MaxRecordSize {
		return 0, ErrRecordTooLarge
	}
	need := len(record) + slotSize
	if p.FreeSpace() < need {
		return 0, ErrPageFull
	}
	slot := p.NumSlots()
	off := p.freeOff()
	copy(p.Data[off:], record)
	base := p.slotBase(slot)
	binary.LittleEndian.PutUint16(p.Data[base:], off)
	binary.LittleEndian.PutUint16(p.Data[base+2:], uint16(len(record)))
	binary.LittleEndian.PutUint32(p.Data[base+4:], uint32(rel))
	p.setFreeOff(off + uint16(len(record)))
	p.setNumSlots(slot + 1)
	return slot, nil
}

// Record returns the bytes and owning relation of slot i. ok is false when
// the slot does not exist or has been deleted. The returned slice aliases
// the page image and no latch is taken: callers must exclude concurrent
// writers (table lock, catalog lock) or use ReadVersioned.
func (p *Page) Record(i uint16) (rec []byte, rel RelID, ok bool) {
	return p.record(i)
}

func (p *Page) record(i uint16) (rec []byte, rel RelID, ok bool) {
	if i >= p.NumSlots() {
		return nil, 0, false
	}
	base := p.slotBase(i)
	off := binary.LittleEndian.Uint16(p.Data[base:])
	n := binary.LittleEndian.Uint16(p.Data[base+2:])
	if n == 0 {
		return nil, 0, false
	}
	rel = RelID(binary.LittleEndian.Uint32(p.Data[base+4:]))
	return p.Data[off : off+n], rel, true
}

// Delete marks slot i deleted. Space is not compacted; the paper's cost
// model does not depend on in-page compaction and segment scans simply skip
// deleted slots.
func (p *Page) Delete(i uint16) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= p.NumSlots() {
		return false
	}
	base := p.slotBase(i)
	if binary.LittleEndian.Uint16(p.Data[base+2:]) == 0 {
		return false
	}
	binary.LittleEndian.PutUint16(p.Data[base+2:], 0)
	return true
}

// Restore resurrects deleted slot i with the record it held, byte-exactly:
// Delete only zeroes the slot's length (bytes and offset remain, and heap
// space is never reused), so undoing a delete rewrites the record at its
// original offset and restores the original length and owning relation. It
// reports false — without touching the page — when the slot does not exist,
// is still live, or the record would overrun the slot's original footprint.
func (p *Page) Restore(i uint16, rel RelID, record []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= p.NumSlots() {
		return false
	}
	base := p.slotBase(i)
	if binary.LittleEndian.Uint16(p.Data[base+2:]) != 0 {
		return false // live slot: not restorable
	}
	off := binary.LittleEndian.Uint16(p.Data[base:])
	// The record may only occupy the slot's original footprint: up to the
	// nearest later record start (deleted slots keep their bytes too — they
	// may be restored next), or the free offset when this is the last record.
	bound := p.freeOff()
	for j := uint16(0); j < p.NumSlots(); j++ {
		if j == i {
			continue
		}
		jOff := binary.LittleEndian.Uint16(p.Data[p.slotBase(j):])
		if jOff > off && jOff < bound {
			bound = jOff
		}
	}
	if int(off)+len(record) > int(bound) {
		return false // would overwrite a later record
	}
	copy(p.Data[off:], record)
	binary.LittleEndian.PutUint16(p.Data[base+2:], uint16(len(record)))
	binary.LittleEndian.PutUint32(p.Data[base+4:], uint32(rel))
	return true
}

// HasRecordsFor reports whether any live slot on the page belongs to rel.
func (p *Page) HasRecordsFor(rel RelID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for i := uint16(0); i < p.NumSlots(); i++ {
		if _, r, ok := p.record(i); ok && r == rel {
			return true
		}
	}
	return false
}

// LiveRecords returns the number of live (non-deleted) slots.
func (p *Page) LiveRecords() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for i := uint16(0); i < p.NumSlots(); i++ {
		if _, _, ok := p.record(i); ok {
			n++
		}
	}
	return n
}

package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// IOStats counts the two quantities of the paper's cost formula.
//
//	COST = PAGE FETCHES + W * (RSI CALLS)
//
// PageFetches is incremented on every buffer-pool miss (a simulated I/O);
// LogicalReads counts all page accesses including buffer hits. RSI calls are
// counted by the rss package into the same struct so a single snapshot
// captures a statement's measured cost.
//
// Two kinds of IOStats exist. The buffer pool owns one DB-global aggregate
// that every access is counted into. In addition, each executing statement
// carries its own accumulator, threaded through a StmtIO view, so that
// per-statement measurements (operator fetch attribution, the governor's
// fetch budget, ExecStats) are exact under concurrency instead of absorbing
// other statements' I/O.
//
// All counters are atomics: the per-tuple/per-page accounting path takes no
// locks, and every method is nil-receiver-safe, so paths without a
// statement accumulator pay a single pointer comparison.
//
// A statement accumulator can also aggregate child accumulators: the
// parallel exchange operator Attaches one child per scan worker, so each
// worker posts into its own counters (one atomic increment, no cross-worker
// contention) while Snapshot and FetchCount on the parent — the reads the
// governor's fetch budget and the statement totals use — include the
// workers' I/O. LocalFetchCount reads the parent's own counter alone, which
// is what the executor's synchronous per-operator deltas use: a worker
// running concurrently can never perturb them.
type IOStats struct {
	pageFetches  atomic.Int64
	logicalReads atomic.Int64
	rsiCalls     atomic.Int64
	pagesWritten atomic.Int64
	// MVCC visibility accounting: versionsScanned counts every heap version a
	// scan examined; versionsSkipped the subset the caller's snapshot could
	// not see (dead or not-yet-visible versions — the per-statement price of
	// multi-versioning).
	versionsScanned atomic.Int64
	versionsSkipped atomic.Int64
	kids            atomic.Pointer[[]*IOStats]
}

// Attach adds a child accumulator whose counters aggregate into this one's
// Snapshot and FetchCount (copy-on-write, safe under concurrent readers).
// Children are never detached: a worker's final counts remain part of the
// statement's totals after the worker exits.
func (s *IOStats) Attach(k *IOStats) {
	if s == nil || k == nil {
		return
	}
	for {
		old := s.kids.Load()
		var next []*IOStats
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, k)
		if s.kids.CompareAndSwap(old, &next) {
			return
		}
	}
}

// Snapshot returns a copy of the counters. Counters are read individually
// (monotonic atomics, not a sealed set); a statement's own accumulator is
// only ever written by the goroutine executing that statement, so snapshots
// of it are exact.
func (s *IOStats) Snapshot() IOStatsSnapshot {
	if s == nil {
		return IOStatsSnapshot{}
	}
	snap := IOStatsSnapshot{
		PageFetches:     s.pageFetches.Load(),
		LogicalReads:    s.logicalReads.Load(),
		RSICalls:        s.rsiCalls.Load(),
		PagesWritten:    s.pagesWritten.Load(),
		VersionsScanned: s.versionsScanned.Load(),
		VersionsSkipped: s.versionsSkipped.Load(),
	}
	if kids := s.kids.Load(); kids != nil {
		for _, k := range *kids {
			ks := k.Snapshot()
			snap.PageFetches += ks.PageFetches
			snap.LogicalReads += ks.LogicalReads
			snap.RSICalls += ks.RSICalls
			snap.PagesWritten += ks.PagesWritten
			snap.VersionsScanned += ks.VersionsScanned
			snap.VersionsSkipped += ks.VersionsSkipped
		}
	}
	return snap
}

// FetchCount returns the current page-fetch counter (own plus attached
// children) alone, cheaper than a full snapshot.
func (s *IOStats) FetchCount() int64 {
	if s == nil {
		return 0
	}
	n := s.pageFetches.Load()
	if kids := s.kids.Load(); kids != nil {
		for _, k := range *kids {
			n += k.FetchCount()
		}
	}
	return n
}

// LocalFetchCount returns this accumulator's own page-fetch counter,
// excluding attached children. The executor reads it before and after each
// synchronous operator call to attribute fetches: parallel workers post only
// into their own (attached) accumulators, so these deltas are deterministic
// even while workers run.
func (s *IOStats) LocalFetchCount() int64 {
	if s == nil {
		return 0
	}
	return s.pageFetches.Load()
}

// Reset zeroes the counters and drops attached children.
func (s *IOStats) Reset() {
	if s == nil {
		return
	}
	s.pageFetches.Store(0)
	s.logicalReads.Store(0)
	s.rsiCalls.Store(0)
	s.pagesWritten.Store(0)
	s.versionsScanned.Store(0)
	s.versionsSkipped.Store(0)
	s.kids.Store(nil)
}

// AddVersionScanned records one heap version examined by a scan; skipped
// additionally marks it invisible to the scanning snapshot.
func (s *IOStats) AddVersionScanned(skipped bool) {
	if s == nil {
		return
	}
	s.versionsScanned.Add(1)
	if skipped {
		s.versionsSkipped.Add(1)
	}
}

// AddRSICall records one tuple crossing the RSS interface.
func (s *IOStats) AddRSICall() {
	if s == nil {
		return
	}
	s.rsiCalls.Add(1)
}

func (s *IOStats) addRead(miss bool) {
	if s == nil {
		return
	}
	s.logicalReads.Add(1)
	if miss {
		s.pageFetches.Add(1)
	}
}

func (s *IOStats) addWrite() {
	if s == nil {
		return
	}
	s.pagesWritten.Add(1)
}

// IOStatsSnapshot is an immutable copy of IOStats.
type IOStatsSnapshot struct {
	PageFetches     int64
	LogicalReads    int64
	RSICalls        int64
	PagesWritten    int64
	VersionsScanned int64
	VersionsSkipped int64
}

// Sub returns the per-statement delta between two snapshots.
func (a IOStatsSnapshot) Sub(b IOStatsSnapshot) IOStatsSnapshot {
	return IOStatsSnapshot{
		PageFetches:     a.PageFetches - b.PageFetches,
		LogicalReads:    a.LogicalReads - b.LogicalReads,
		RSICalls:        a.RSICalls - b.RSICalls,
		PagesWritten:    a.PagesWritten - b.PagesWritten,
		VersionsScanned: a.VersionsScanned - b.VersionsScanned,
		VersionsSkipped: a.VersionsSkipped - b.VersionsSkipped,
	}
}

// Cost evaluates the paper's weighted cost for the snapshot. Page writes
// (temporary lists produced by sorts) are I/Os and count with the fetches.
func (a IOStatsSnapshot) Cost(w float64) float64 {
	return float64(a.PageFetches+a.PagesWritten) + w*float64(a.RSICalls)
}

// BufferPool is an LRU cache of page frames in front of the Disk. Its
// capacity (in pages) is the "System R buffer" that Table 2's alternative
// cost formulas refer to: a retrieved set that fits in the buffer is fetched
// once per page; one that does not refits a fetch per access.
type BufferPool struct {
	mu        sync.Mutex // guards lru/resident/injector/fetchN only — never stats
	disk      *Disk
	capacity  int
	stats     *IOStats
	lru       *list.List               // front = most recent; values are PageID
	resident  map[PageID]*list.Element // pages currently buffered
	injector  FaultInjector            // consulted by Fetch on misses; nil = no faults
	fetchN    int64                    // Fetch misses since the injector was installed
	evictions atomic.Int64             // capacity evictions (not explicit Evict calls)
}

// NewBufferPool creates a pool of the given page capacity over disk,
// accounting into stats.
func NewBufferPool(disk *Disk, capacity int, stats *IOStats) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		stats:    stats,
		lru:      list.New(),
		resident: make(map[PageID]*list.Element),
	}
}

// Capacity returns the pool size in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Stats returns the pool's DB-global aggregate counters. Per-statement
// measurements must not take deltas of these under concurrency — they read
// the statement's own accumulator through a StmtIO view instead.
func (bp *BufferPool) Stats() *IOStats { return bp.stats }

// Evictions returns how many pages the pool has evicted to make room (LRU
// capacity evictions; explicit Evict calls for freed temp segments are not
// counted).
func (bp *BufferPool) Evictions() int64 { return bp.evictions.Load() }

// Get returns the page frame for id, fetching it (a simulated I/O) if it is
// not resident. Virtual pages (B-tree nodes) return nil but are accounted
// identically. Get cannot fault; measured scan paths use Fetch instead so
// injected storage errors propagate. Accounting is global-only; statement
// paths go through a StmtIO view.
func (bp *BufferPool) Get(id PageID) *Page {
	bp.admit(nil, id, false)
	return bp.disk.page(id)
}

// Fetch is Get with fault propagation: on a miss the installed FaultInjector
// may fail the simulated I/O, in which case the page is not installed, the
// attempted fetch is still counted, and the error is returned.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	if err := bp.admit(nil, id, true); err != nil {
		return nil, err
	}
	return bp.disk.page(id), nil
}

// SetFaultInjector installs fi (nil removes injection) and resets the fetch
// index faults are scheduled against. The injector and its fetch index live
// under the pool's structural lock, so the schedule stays deterministic and
// race-free no matter how many goroutines Fetch concurrently.
func (bp *BufferPool) SetFaultInjector(fi FaultInjector) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.injector = fi
	bp.fetchN = 0
}

// Touch accounts an access to id without needing the frame. The B-tree calls
// this on every node visit.
func (bp *BufferPool) Touch(id PageID) { bp.admit(nil, id, false) }

// admit records the access in the LRU and in the stats: always the pool's
// global aggregate, and additionally the statement's accumulator when one is
// supplied. The LRU update takes the pool's one structural lock; the
// counters are atomics, so accounting itself is lock-free. Only injectable
// accesses (Fetch) consult the fault injector, so the fault schedule is
// stable no matter how many accounting-only touches interleave.
func (bp *BufferPool) admit(stmt *IOStats, id PageID, injectable bool) error {
	miss, err := bp.install(id, injectable)
	bp.stats.addRead(miss)
	stmt.addRead(miss)
	return err
}

func (bp *BufferPool) install(id PageID, injectable bool) (miss bool, err error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.resident[id]; ok {
		bp.lru.MoveToFront(el)
		return false, nil
	}
	if injectable && bp.injector != nil {
		bp.fetchN++
		if err := bp.injector.PageFetch(bp.fetchN, id); err != nil {
			return true, err // the failed I/O was still issued
		}
	}
	// Miss: evict if full, then install.
	if bp.lru.Len() >= bp.capacity {
		oldest := bp.lru.Back()
		bp.lru.Remove(oldest)
		delete(bp.resident, oldest.Value.(PageID))
		bp.evictions.Add(1)
	}
	bp.resident[id] = bp.lru.PushFront(id)
	return true, nil
}

// MarkWritten accounts a page write (used by sorts materializing temporary
// lists). Writes are pure write-through: the page is NOT left resident, so a
// later read of the temp page is a fetch — matching the cost model's
// write-plus-read accounting for sort passes.
func (bp *BufferPool) MarkWritten(id PageID) {
	bp.markWritten(nil, id)
}

func (bp *BufferPool) markWritten(stmt *IOStats, id PageID) {
	bp.stats.addWrite()
	stmt.addWrite()
}

// Evict drops a page from the pool (used when temp segments are freed).
func (bp *BufferPool) Evict(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.resident[id]; ok {
		bp.lru.Remove(el)
		delete(bp.resident, id)
	}
}

// Resident reports whether id is currently buffered.
func (bp *BufferPool) Resident(id PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.resident[id]
	return ok
}

// Flush empties the pool, so the next access to every page is a fetch.
// Experiments use this to start measurements from a cold buffer.
func (bp *BufferPool) Flush() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lru.Init()
	bp.resident = make(map[PageID]*list.Element)
}

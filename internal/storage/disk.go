package storage

import (
	"sync"
	"systemr/internal/check"
)

// Disk is the simulated non-volatile store: a growable array of pages.
// All reads go through a BufferPool; the Disk itself only allocates and
// hands out page frames.
//
// The paper ran on real DASD; here the "device" is memory, but because the
// optimizer's cost model is expressed in page fetches (buffer-pool misses)
// rather than seconds, the simulation preserves every quantity the paper's
// formulas predict.
type Disk struct {
	mu    sync.Mutex
	pages []*Page
}

// NewDisk returns an empty disk.
func NewDisk() *Disk { return &Disk{} }

// AllocPage allocates a fresh, initialized slotted page and returns its ID.
func (d *Disk) AllocPage() (PageID, *Page) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(len(d.pages))
	p := &Page{ID: id}
	p.InitPage()
	d.pages = append(d.pages, p)
	return id, p
}

// AllocVirtual reserves a page ID with no byte image behind it. The B-tree
// registers its in-memory nodes as virtual pages so that node visits are
// accounted by the buffer pool exactly like data-page fetches (see DESIGN.md,
// "Substitutions").
func (d *Disk) AllocVirtual() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(len(d.pages))
	d.pages = append(d.pages, nil)
	return id
}

// Page returns the frame for id without I/O accounting. Callers measuring a
// query must go through BufferPool.Get instead; Page is for loading paths and
// statistics collection, which the paper's measurements exclude.
func (d *Disk) Page(id PageID) *Page { return d.page(id) }

// page returns the frame for id, failing hard on out-of-range access: a page
// ID always originates from AllocPage, so a miss is a bug, not an input error.
func (d *Disk) page(id PageID) *Page {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		check.Failf("storage: access to unallocated page %d", id)
	}
	return d.pages[id]
}

// NumPages returns the number of allocated pages (real and virtual).
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

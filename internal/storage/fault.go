package storage

import (
	"errors"
	"fmt"
)

// ErrInjectedFault marks a page fetch failed by a FaultInjector. Tests
// dispatch on it with errors.Is.
var ErrInjectedFault = errors.New("storage: injected page fault")

// FaultInjector simulates storage failures. It is consulted by
// BufferPool.Fetch on every buffer-pool miss, before the page is installed;
// a non-nil error fails the fetch and propagates to the scan that issued it.
// Injection covers real page I/O only: virtual-page touches (B-tree node
// visits, which are accounting over in-memory structures) and unmeasured
// loading paths through Get/Touch cannot fault.
//
// Implementations must be deterministic — the fault-sweep harness depends on
// fetch N meaning the same page access on every identically-prepared run —
// so no randomness belongs in library code.
type FaultInjector interface {
	// PageFetch is called with the 1-based fetch index since the injector
	// was installed and the page being fetched.
	PageFetch(n int64, id PageID) error
}

// FailNth is a deterministic FaultInjector that fails exactly the Nth fetch.
type FailNth struct {
	N int64
}

// PageFetch fails fetch number N with ErrInjectedFault.
func (f FailNth) PageFetch(n int64, id PageID) error {
	if n == f.N {
		return fmt.Errorf("%w: fetch #%d (page %d)", ErrInjectedFault, n, id)
	}
	return nil
}

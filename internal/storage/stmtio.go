package storage

// StmtIO is a statement-scoped view of a BufferPool: every page access and
// RSI call made through it is accounted into the statement's own IOStats
// accumulator in addition to the pool's DB-global aggregate. Scans and the
// executor thread a StmtIO from OPEN down to the page level, so each
// statement's measured cost (operator fetch attribution, governor budgets,
// ExecStats) is exact even while other statements run concurrently.
//
// The zero StmtIO is inert: accesses account nowhere and FetchCount returns
// 0 (used by catalog probes that must not perturb measurements).
type StmtIO struct {
	pool *BufferPool
	stmt *IOStats
}

// View returns a statement-scoped view of the pool accounting into stmt.
// A nil stmt yields a view that accounts into the global aggregate only.
func (bp *BufferPool) View(stmt *IOStats) StmtIO {
	return StmtIO{pool: bp, stmt: stmt}
}

// Pool returns the underlying buffer pool (nil for the zero view).
func (io StmtIO) Pool() *BufferPool { return io.pool }

// Stmt returns the statement accumulator (nil when the view is global-only).
func (io StmtIO) Stmt() *IOStats { return io.stmt }

// Get is BufferPool.Get with statement accounting.
func (io StmtIO) Get(id PageID) *Page {
	if io.pool == nil {
		return nil
	}
	io.pool.admit(io.stmt, id, false)
	return io.pool.disk.page(id)
}

// Fetch is BufferPool.Fetch with statement accounting: injected faults
// propagate and the attempted fetch is still counted on both ledgers.
func (io StmtIO) Fetch(id PageID) (*Page, error) {
	if io.pool == nil {
		return nil, nil
	}
	if err := io.pool.admit(io.stmt, id, true); err != nil {
		return nil, err
	}
	return io.pool.disk.page(id), nil
}

// Touch is BufferPool.Touch with statement accounting; a no-op on the zero
// view, so un-instrumented B-tree walks (catalog lookups) cost nothing.
func (io StmtIO) Touch(id PageID) {
	if io.pool == nil {
		return
	}
	io.pool.admit(io.stmt, id, false)
}

// MarkWritten accounts a temp-page write on both ledgers.
func (io StmtIO) MarkWritten(id PageID) {
	if io.pool == nil {
		return
	}
	io.pool.markWritten(io.stmt, id)
}

// AddRSICall records one tuple crossing the RSS interface on both ledgers.
func (io StmtIO) AddRSICall() {
	if io.pool == nil {
		return
	}
	io.pool.stats.AddRSICall()
	io.stmt.AddRSICall()
}

// AddVersionScanned records one heap version examined (skipped = invisible
// to the scanning snapshot) on both ledgers.
func (io StmtIO) AddVersionScanned(skipped bool) {
	if io.pool == nil {
		return
	}
	io.pool.stats.AddVersionScanned(skipped)
	io.stmt.AddVersionScanned(skipped)
}

// FetchCount returns the statement-local page-fetch counter — the number the
// executor deltas around operator calls. Falls back to the global counter
// only when the view carries no statement accumulator (single-statement
// tooling); the executor always supplies one.
func (io StmtIO) FetchCount() int64 {
	if io.stmt != nil {
		return io.stmt.FetchCount()
	}
	if io.pool == nil {
		return 0
	}
	return io.pool.stats.FetchCount()
}

// LocalFetchCount is FetchCount excluding accumulators attached by parallel
// workers: the executor's synchronous per-operator deltas use it so a worker
// running concurrently can never perturb them. Falls back like FetchCount
// when the view carries no statement accumulator.
func (io StmtIO) LocalFetchCount() int64 {
	if io.stmt != nil {
		return io.stmt.LocalFetchCount()
	}
	if io.pool == nil {
		return 0
	}
	return io.pool.stats.LocalFetchCount()
}

// Snapshot returns the statement accumulator's counters (global aggregate
// when the view has no statement accumulator).
func (io StmtIO) Snapshot() IOStatsSnapshot {
	if io.stmt != nil {
		return io.stmt.Snapshot()
	}
	if io.pool == nil {
		return IOStatsSnapshot{}
	}
	return io.pool.stats.Snapshot()
}

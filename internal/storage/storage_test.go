package storage

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"systemr/internal/value"
)

func TestPageInsertAndRead(t *testing.T) {
	var p Page
	p.InitPage()
	s0, err := p.Insert(7, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Insert(9, []byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	rec, rel, ok := p.Record(s0)
	if !ok || rel != 7 || !bytes.Equal(rec, []byte("hello")) {
		t.Fatalf("slot 0: %q rel=%d ok=%v", rec, rel, ok)
	}
	rec, rel, ok = p.Record(s1)
	if !ok || rel != 9 || !bytes.Equal(rec, []byte("world!")) {
		t.Fatalf("slot 1: %q rel=%d ok=%v", rec, rel, ok)
	}
	if _, _, ok := p.Record(99); ok {
		t.Fatal("out-of-range slot must not exist")
	}
}

func TestPageDelete(t *testing.T) {
	var p Page
	p.InitPage()
	s, _ := p.Insert(1, []byte("x"))
	if !p.Delete(s) {
		t.Fatal("delete failed")
	}
	if p.Delete(s) {
		t.Fatal("double delete must fail")
	}
	if _, _, ok := p.Record(s); ok {
		t.Fatal("deleted slot must not read")
	}
	if p.LiveRecords() != 0 {
		t.Fatal("no live records expected")
	}
	if p.HasRecordsFor(1) {
		t.Fatal("relation should have no records")
	}
}

// TestPageRestore: Delete only zeroes the slot length, so Restore must bring
// back the byte-exact page image — the property the transaction undo log
// relies on for crash-consistency byte equality.
func TestPageRestore(t *testing.T) {
	var p Page
	p.InitPage()
	s0, _ := p.Insert(1, []byte("first"))
	s1, _ := p.Insert(2, []byte("second"))
	pristine := p.Data
	if !p.Delete(s0) {
		t.Fatal("delete failed")
	}
	if p.Restore(s1, 2, []byte("second")) {
		t.Fatal("restore of a live slot must fail")
	}
	if p.Restore(s0, 1, []byte("first+grew")) {
		t.Fatal("restore overrunning the original footprint must fail")
	}
	if !p.Restore(s0, 1, []byte("first")) {
		t.Fatal("restore of the deleted slot failed")
	}
	if p.Data != pristine {
		t.Fatal("restored page image differs from the pre-delete image")
	}
	rec, rel, ok := p.Record(s0)
	if !ok || rel != 1 || !bytes.Equal(rec, []byte("first")) {
		t.Fatalf("restored slot reads %q rel=%d ok=%v", rec, rel, ok)
	}
	if p.Restore(99, 1, []byte("x")) {
		t.Fatal("restore of a nonexistent slot must fail")
	}
}

func TestPageFillsUp(t *testing.T) {
	var p Page
	p.InitPage()
	rec := make([]byte, 100)
	n := 0
	for {
		if _, err := p.Insert(1, rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
	}
	// 4096-byte page, 100-byte records + 8-byte slots → ~37 fit.
	if n < 30 || n > 40 {
		t.Fatalf("unexpected capacity %d", n)
	}
	if p.FreeSpace() >= 108 {
		t.Fatal("page reported full but has space")
	}
}

func TestPageRejectsHugeRecord(t *testing.T) {
	var p Page
	p.InitPage()
	if _, err := p.Insert(1, make([]byte, PageSize)); err != ErrRecordTooLarge {
		t.Fatalf("want ErrRecordTooLarge, got %v", err)
	}
}

// randomRow builds arbitrary rows for codec round-trip checks.
type randomRow struct{ Row value.Row }

func (randomRow) Generate(rnd *rand.Rand, _ int) reflect.Value {
	n := rnd.Intn(8)
	row := make(value.Row, n)
	for i := range row {
		switch rnd.Intn(4) {
		case 0:
			row[i] = value.Null()
		case 1:
			row[i] = value.NewInt(rnd.Int63() - (1 << 62))
		case 2:
			row[i] = value.NewFloat(rnd.NormFloat64() * 1e6)
		default:
			b := make([]byte, rnd.Intn(40))
			rnd.Read(b)
			row[i] = value.NewString(string(b))
		}
	}
	return reflect.ValueOf(randomRow{Row: row})
}

func TestRowCodecRoundTrip(t *testing.T) {
	prop := func(rr randomRow) bool {
		enc := EncodeRow(rr.Row)
		dec, err := DecodeRow(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(rr.Row) {
			return false
		}
		for i := range dec {
			if dec[i].Kind != rr.Row[i].Kind || value.Compare(dec[i], rr.Row[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowCorruption(t *testing.T) {
	enc := EncodeRow(value.Row{value.NewInt(5), value.NewString("abc")})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeRow(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
	if _, err := DecodeRow(append(enc, 0)); err == nil {
		t.Fatal("trailing garbage must fail")
	}
}

func TestBufferPoolLRUAndStats(t *testing.T) {
	disk := NewDisk()
	stats := &IOStats{}
	pool := NewBufferPool(disk, 2, stats)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = disk.AllocPage()
	}

	pool.Get(ids[0]) // miss
	pool.Get(ids[1]) // miss
	pool.Get(ids[0]) // hit
	pool.Get(ids[2]) // miss, evicts ids[1] (LRU)
	pool.Get(ids[1]) // miss again
	s := stats.Snapshot()
	if s.PageFetches != 4 {
		t.Fatalf("want 4 fetches, got %d", s.PageFetches)
	}
	if s.LogicalReads != 5 {
		t.Fatalf("want 5 logical reads, got %d", s.LogicalReads)
	}
}

func TestBufferPoolFlushAndEvict(t *testing.T) {
	disk := NewDisk()
	stats := &IOStats{}
	pool := NewBufferPool(disk, 4, stats)
	id, _ := disk.AllocPage()
	pool.Get(id)
	if !pool.Resident(id) {
		t.Fatal("page should be resident")
	}
	pool.Evict(id)
	if pool.Resident(id) {
		t.Fatal("page should be evicted")
	}
	pool.Get(id)
	pool.Flush()
	if pool.Resident(id) {
		t.Fatal("flush should empty the pool")
	}
	if got := stats.Snapshot().PageFetches; got != 2 {
		t.Fatalf("want 2 fetches after flush cycle, got %d", got)
	}
}

func TestMarkWrittenIsWriteThrough(t *testing.T) {
	disk := NewDisk()
	stats := &IOStats{}
	pool := NewBufferPool(disk, 4, stats)
	id, _ := disk.AllocPage()
	pool.MarkWritten(id)
	if pool.Resident(id) {
		t.Fatal("written page must not become resident")
	}
	s := stats.Snapshot()
	if s.PagesWritten != 1 || s.PageFetches != 0 {
		t.Fatalf("write accounting wrong: %+v", s)
	}
	if s.Cost(0) != 1 {
		t.Fatalf("writes must count in cost, got %v", s.Cost(0))
	}
}

func TestSegmentStatistics(t *testing.T) {
	disk := NewDisk()
	seg := NewSegment(0, disk)
	big := make([]byte, 1000)
	// Relation 1: 8 records of ~1008 bytes each (record + slot), 4 per 4K
	// page → 2 pages.
	for i := 0; i < 8; i++ {
		if _, err := seg.Insert(1, big); err != nil {
			t.Fatal(err)
		}
	}
	seg.InterleaveBreak()
	// Relation 2: lands on fresh pages after the break.
	for i := 0; i < 4; i++ {
		if _, err := seg.Insert(2, big); err != nil {
			t.Fatal(err)
		}
	}
	t1 := seg.PagesHolding(1)
	t2 := seg.PagesHolding(2)
	ne := seg.NonEmptyPages()
	if t1 != 2 || t2 != 1 {
		t.Fatalf("TCARD: rel1=%d rel2=%d", t1, t2)
	}
	if ne != t1+t2 {
		t.Fatalf("non-empty pages %d != %d", ne, t1+t2)
	}
}

func TestSegmentSharedPage(t *testing.T) {
	disk := NewDisk()
	seg := NewSegment(0, disk)
	// Without InterleaveBreak, two relations alternate and share pages.
	small := make([]byte, 10)
	tidA, _ := seg.Insert(1, small)
	tidB, _ := seg.Insert(2, small)
	if tidA.Page != tidB.Page {
		t.Fatal("small records of two relations should share the first page")
	}
	if seg.PagesHolding(1) != 1 || seg.PagesHolding(2) != 1 || seg.NonEmptyPages() != 1 {
		t.Fatal("shared-page accounting wrong")
	}
}

func TestTIDOrdering(t *testing.T) {
	a := TID{Page: 1, Slot: 5}
	b := TID{Page: 1, Slot: 6}
	c := TID{Page: 2, Slot: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("TID order broken")
	}
	if a.String() != "1.5" {
		t.Fatalf("TID string: %s", a.String())
	}
}

func TestDiskVirtualPages(t *testing.T) {
	disk := NewDisk()
	id := disk.AllocVirtual()
	stats := &IOStats{}
	pool := NewBufferPool(disk, 2, stats)
	pool.Touch(id)
	pool.Touch(id)
	s := stats.Snapshot()
	if s.PageFetches != 1 || s.LogicalReads != 2 {
		t.Fatalf("virtual page accounting: %+v", s)
	}
	if disk.NumPages() != 1 {
		t.Fatalf("NumPages = %d", disk.NumPages())
	}
}

// pageOp drives the slotted page against a map oracle with random
// insert/delete sequences (testing/quick-style randomized property test).
func TestPageRandomOpsAgainstOracle(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		var p Page
		p.InitPage()
		oracle := map[uint16][]byte{} // live slots
		var slots []uint16
		for op := 0; op < 300; op++ {
			if rnd.Intn(3) != 0 || len(slots) == 0 {
				rec := make([]byte, 1+rnd.Intn(60))
				rnd.Read(rec)
				rel := RelID(1 + rnd.Intn(3))
				slot, err := p.Insert(rel, rec)
				if err == ErrPageFull {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				oracle[slot] = append([]byte(nil), rec...)
				slots = append(slots, slot)
			} else {
				i := rnd.Intn(len(slots))
				slot := slots[i]
				_, wasLive := oracle[slot]
				if p.Delete(slot) != wasLive {
					t.Fatalf("delete(%d) disagreed with oracle", slot)
				}
				delete(oracle, slot)
			}
		}
		live := 0
		for s := uint16(0); s < p.NumSlots(); s++ {
			rec, _, ok := p.Record(s)
			want, liveInOracle := oracle[s]
			if ok != liveInOracle {
				t.Fatalf("slot %d liveness: page %v oracle %v", s, ok, liveInOracle)
			}
			if ok {
				live++
				if !bytes.Equal(rec, want) {
					t.Fatalf("slot %d content mismatch", s)
				}
			}
		}
		if live != len(oracle) || live != p.LiveRecords() {
			t.Fatalf("live count: %d vs oracle %d vs LiveRecords %d", live, len(oracle), p.LiveRecords())
		}
	}
}

package storage

import (
	"encoding/binary"
	"errors"
	"math"
	"systemr/internal/check"

	"systemr/internal/value"
)

// Row codec: the on-page record format.
//
//	uvarint column count, then per column:
//	  1 byte kind tag
//	  KindInt:    varint
//	  KindFloat:  8 bytes IEEE-754 little-endian
//	  KindString: uvarint length + bytes
//	  KindNull:   nothing
//
// Compact varint integers keep TCARD realistic for relations of small
// integers, which matters because the experiments compare measured page
// counts against the catalog's TCARD statistics.

// ErrCorruptRecord reports a record that does not parse as an encoded row.
var ErrCorruptRecord = errors.New("storage: corrupt record")

// EncodeRow serializes a row into a fresh byte slice.
func EncodeRow(r value.Row) []byte {
	buf := make([]byte, 0, 16+8*len(r))
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case value.KindNull:
		case value.KindInt:
			buf = binary.AppendVarint(buf, v.Int)
		case value.KindFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float))
			buf = append(buf, b[:]...)
		case value.KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
			buf = append(buf, v.Str...)
		default:
			check.Failf("storage: cannot encode kind %v", v.Kind)
		}
	}
	return buf
}

// DecodeRow parses an encoded row. The returned row does not alias rec.
func DecodeRow(rec []byte) (value.Row, error) {
	n, k := binary.Uvarint(rec)
	if k <= 0 || n > uint64(PageSize) {
		return nil, ErrCorruptRecord
	}
	rec = rec[k:]
	row := make(value.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(rec) == 0 {
			return nil, ErrCorruptRecord
		}
		kind := value.Kind(rec[0])
		rec = rec[1:]
		switch kind {
		case value.KindNull:
			row = append(row, value.Null())
		case value.KindInt:
			v, k := binary.Varint(rec)
			if k <= 0 {
				return nil, ErrCorruptRecord
			}
			rec = rec[k:]
			row = append(row, value.NewInt(v))
		case value.KindFloat:
			if len(rec) < 8 {
				return nil, ErrCorruptRecord
			}
			row = append(row, value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(rec))))
			rec = rec[8:]
		case value.KindString:
			l, k := binary.Uvarint(rec)
			if k <= 0 || uint64(len(rec)-k) < l {
				return nil, ErrCorruptRecord
			}
			rec = rec[k:]
			row = append(row, value.NewString(string(rec[:l])))
			rec = rec[l:]
		default:
			return nil, ErrCorruptRecord
		}
	}
	if len(rec) != 0 {
		return nil, ErrCorruptRecord
	}
	return row, nil
}

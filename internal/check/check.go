// Package check is the sanctioned panic point for library code. The
// sysrcheck nakedpanic analyzer forbids direct panic calls in library
// packages; genuinely unreachable states — a corrupt row tag, an access to
// a page the disk never allocated — route through Failf instead, so every
// intentional crash site is greppable, carries a uniform message shape,
// and is contained at the statement boundary by the execution governor
// (surfacing as a *governor-wrapped PanicError, not a process crash).
package check

import "fmt"

// Failf panics with a formatted invariant-violation message. Use it only
// for states that indicate corruption or a programming error — never for
// conditions a caller could plausibly handle; those return errors.
func Failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

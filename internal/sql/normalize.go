package sql

import "strings"

// Normalize returns the canonical one-line spelling of a statement: tokens
// separated by single spaces, keywords upper-cased, comments dropped, `!=`
// canonicalized to `<>`, string literals re-quoted, and trailing semicolons
// removed. Identifier case is preserved — output column names derive from the
// written spelling, so folding it would be observable. The result is itself
// parseable SQL that reproduces the original statement's AST, which makes it
// both the plan-cache key and the text a stale cache entry is recompiled
// from. ok is false when the input does not lex (the parser will report the
// error).
func Normalize(input string) (norm string, ok bool) {
	toks, err := lex(input)
	if err != nil {
		return "", false
	}
	// Drop trailing semicolons (the parser accepts one optional ';').
	end := len(toks) - 1 // toks[end] is EOF
	for end > 0 && toks[end-1].kind == tokPunct && toks[end-1].text == ";" {
		end--
	}
	var b strings.Builder
	b.Grow(len(input))
	for i := 0; i < end; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		t := toks[i]
		if t.kind == tokString {
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			b.WriteByte('\'')
			continue
		}
		b.WriteString(t.text)
	}
	return b.String(), true
}

package sql

import "strings"

// TablesReferenced walks a parsed statement and returns the tables it reads
// and the tables it writes (syntactically — before catalog lookup), for lock
// acquisition. Names are upper-cased; a written table also appears as read
// when its WHERE clause scans it.
func TablesReferenced(st Statement) (read, write []string) {
	seenR := map[string]bool{}
	seenW := map[string]bool{}
	addR := func(name string) {
		up := strings.ToUpper(name)
		if !seenR[up] {
			seenR[up] = true
			read = append(read, up)
		}
	}
	addW := func(name string) {
		up := strings.ToUpper(name)
		if !seenW[up] {
			seenW[up] = true
			write = append(write, up)
		}
	}
	var walkExpr func(e Expr)
	var walkSelect func(s *SelectStmt)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *NotExpr:
			walkExpr(x.E)
		case *NegExpr:
			walkExpr(x.E)
		case *BetweenExpr:
			walkExpr(x.E)
			walkExpr(x.Lo)
			walkExpr(x.Hi)
		case *InListExpr:
			walkExpr(x.E)
			for _, le := range x.List {
				walkExpr(le)
			}
		case *InSubqueryExpr:
			walkExpr(x.E)
			walkSelect(x.Select)
		case *SubqueryExpr:
			walkSelect(x.Select)
		case *FuncExpr:
			if x.Arg != nil {
				walkExpr(x.Arg)
			}
		}
	}
	walkSelect = func(s *SelectStmt) {
		if s == nil {
			return
		}
		for _, f := range s.From {
			addR(f.Table)
		}
		for _, item := range s.Items {
			if item.Expr != nil {
				walkExpr(item.Expr)
			}
		}
		if s.Where != nil {
			walkExpr(s.Where)
		}
	}
	switch x := st.(type) {
	case *SelectStmt:
		walkSelect(x)
	case *ExplainStmt:
		r, w := TablesReferenced(x.Stmt)
		return r, w
	case *InsertStmt:
		addW(x.Table)
	case *DeleteStmt:
		addW(x.Table)
		if x.Where != nil {
			walkExpr(x.Where)
		}
	case *UpdateStmt:
		addW(x.Table)
		for _, set := range x.Sets {
			walkExpr(set.Expr)
		}
		if x.Where != nil {
			walkExpr(x.Where)
		}
	}
	return read, write
}

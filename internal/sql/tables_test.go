package sql

import (
	"reflect"
	"sort"
	"testing"
)

func refs(t *testing.T, text string) (read, write []string) {
	t.Helper()
	st, err := Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	read, write = TablesReferenced(st)
	sort.Strings(read)
	sort.Strings(write)
	return read, write
}

func TestTablesReferenced(t *testing.T) {
	cases := []struct {
		sql         string
		read, write []string
	}{
		{"SELECT a FROM t1, t2 WHERE t1.a = t2.a", []string{"T1", "T2"}, nil},
		{"SELECT a FROM t WHERE b IN (SELECT b FROM u WHERE c > (SELECT MAX(c) FROM v))",
			[]string{"T", "U", "V"}, nil},
		{"SELECT (SELECT MAX(x) FROM s) FROM t", []string{"S", "T"}, nil},
		{"INSERT INTO t VALUES (1)", nil, []string{"T"}},
		{"DELETE FROM t WHERE a IN (SELECT a FROM u)", []string{"U"}, []string{"T"}},
		{"UPDATE t SET a = (SELECT MAX(a) FROM u) WHERE b IN (SELECT b FROM v)",
			[]string{"U", "V"}, []string{"T"}},
		{"EXPLAIN SELECT a FROM t", []string{"T"}, nil},
		{"SELECT a FROM t WHERE NOT (a BETWEEN 1 AND (SELECT MIN(x) FROM w))",
			[]string{"T", "W"}, nil},
	}
	for _, c := range cases {
		read, write := refs(t, c.sql)
		if !reflect.DeepEqual(read, c.read) && !(len(read) == 0 && len(c.read) == 0) {
			t.Errorf("%q read = %v, want %v", c.sql, read, c.read)
		}
		if !reflect.DeepEqual(write, c.write) && !(len(write) == 0 && len(c.write) == 0) {
			t.Errorf("%q write = %v, want %v", c.sql, write, c.write)
		}
	}
}

package sql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser random byte soup and mutated valid
// statements: it must return a statement or an error, never panic.
func TestParseNeverPanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	alphabet := "SELECT FROM WHERE GROUP BY ORDER HAVING AND OR NOT IN BETWEEN ()'=<>!*,.;0123456789abcXYZ_ \n\t-"
	valid := []string{
		"SELECT a FROM t WHERE b = 1 AND c IN (1,2,3) ORDER BY a",
		"CREATE TABLE t (a INTEGER, b VARCHAR(10))",
		"INSERT INTO t VALUES (1, 'x'), (2, NULL)",
		"UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 2",
		"SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
	}
	for trial := 0; trial < 5000; trial++ {
		var input string
		if trial%2 == 0 {
			// Pure random soup.
			n := rnd.Intn(80)
			var b strings.Builder
			for i := 0; i < n; i++ {
				b.WriteByte(alphabet[rnd.Intn(len(alphabet))])
			}
			input = b.String()
		} else {
			// Mutate a valid statement: delete/duplicate/replace a chunk.
			s := valid[rnd.Intn(len(valid))]
			if len(s) > 4 {
				i := rnd.Intn(len(s) - 2)
				j := i + 1 + rnd.Intn(len(s)-i-1)
				switch rnd.Intn(3) {
				case 0:
					input = s[:i] + s[j:]
				case 1:
					input = s[:j] + s[i:j] + s[j:]
				default:
					input = s[:i] + string(alphabet[rnd.Intn(len(alphabet))]) + s[j:]
				}
			} else {
				input = s
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", input, r)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

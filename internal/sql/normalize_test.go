package sql

import "testing"

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"select name from emp where dno = 50;", "SELECT name FROM emp WHERE dno = 50"},
		{"SELECT  NAME\n\tFROM EMP -- comment\n WHERE DNO=50", "SELECT NAME FROM EMP WHERE DNO = 50"},
		{"SELECT * FROM T WHERE A != 1", "SELECT * FROM T WHERE A <> 1"},
		{"SELECT 'it''s' FROM T;;", "SELECT 'it''s' FROM T"},
		{"SELECT V FROM T WHERE K = ?", "SELECT V FROM T WHERE K = ?"},
	}
	for _, c := range cases {
		got, ok := Normalize(c.in)
		if !ok {
			t.Fatalf("Normalize(%q) failed to lex", c.in)
		}
		if got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeRoundTrips asserts the normalized text is itself valid SQL
// that normalizes to the same string — the fixed-point property stale cache
// entries are recompiled through.
func TestNormalizeRoundTrips(t *testing.T) {
	stmts := []string{
		"SELECT NAME, SAL FROM EMP E WHERE E.DNO IN (1, 2, 3) ORDER BY SAL DESC",
		"select count(*) from emp group by dno having count(*) > 2",
		"EXPLAIN ANALYZE SELECT A.V FROM A, B WHERE A.K = B.K AND B.W = 105",
		"UPDATE STATISTICS EMP",
		"DROP INDEX EMP_DNO",
	}
	for _, s := range stmts {
		norm, ok := Normalize(s)
		if !ok {
			t.Fatalf("Normalize(%q) failed", s)
		}
		if _, err := Parse(norm); err != nil {
			t.Fatalf("normalized %q does not parse: %v", norm, err)
		}
		again, ok := Normalize(norm)
		if !ok || again != norm {
			t.Fatalf("Normalize not a fixed point: %q -> %q", norm, again)
		}
	}
}

func TestNormalizeLexError(t *testing.T) {
	if _, ok := Normalize("SELECT 'unterminated"); ok {
		t.Fatal("Normalize should fail on a lex error")
	}
}

// Package sql contains the SQL front end: the lexer, the recursive-descent
// parser, and the abstract syntax tree it produces. A parsed query block is,
// as in Section 2 of the paper, "a SELECT list, a FROM list, and a WHERE
// tree"; a statement may contain many query blocks because a predicate may
// have an operand which is itself a query.
package sql

import (
	"strings"
	"systemr/internal/check"

	"systemr/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type value.Kind
}

// CreateTableStmt is CREATE TABLE name (col type, ...) [IN SEGMENT seg].
type CreateTableStmt struct {
	Name    string
	Cols    []ColumnDef
	Segment string
}

// CreateIndexStmt is CREATE [UNIQUE] [CLUSTERED] INDEX name ON table (cols).
type CreateIndexStmt struct {
	Name      string
	Table     string
	Columns   []string
	Unique    bool
	Clustered bool
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct{ Name string }

// DropIndexStmt is DROP INDEX name — removing an access path, which (as in
// System R) invalidates every compiled plan that depends on it.
type DropIndexStmt struct{ Name string }

// InsertStmt is INSERT INTO table VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// DeleteStmt is DELETE FROM table [alias] [WHERE expr].
type DeleteStmt struct {
	Table string
	Alias string
	Where Expr
}

// SetClause is one column = expr assignment of an UPDATE.
type SetClause struct {
	Column string
	Expr   Expr
}

// UpdateStmt is UPDATE table [alias] SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Alias string
	Sets  []SetClause
	Where Expr
}

// UpdateStatsStmt is the paper's UPDATE STATISTICS command; Table restricts
// the refresh to one relation ("" = all).
type UpdateStatsStmt struct{ Table string }

// BeginStmt is BEGIN [TRANSACTION|WORK]: start an explicit transaction on
// the session (Conn). Transaction-control statements reference no tables,
// take no locks, and never enter the plan cache.
type BeginStmt struct{}

// CommitStmt is COMMIT [TRANSACTION|WORK]: make the session's open
// transaction's writes durable and release its locks.
type CommitStmt struct{}

// RollbackStmt is ROLLBACK [TRANSACTION|WORK]: undo the session's open
// transaction and release its locks.
type RollbackStmt struct{}

// ExplainStmt is EXPLAIN <select>: print the chosen plan instead of running
// it. With Analyze set (EXPLAIN ANALYZE <select>) the statement also
// executes and the plan is annotated with per-operator actuals.
type ExplainStmt struct {
	Stmt    Statement
	Analyze bool
}

// SelectStmt is one query block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
}

func (*SelectStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*DropIndexStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*UpdateStatsStmt) stmt() {}
func (*ExplainStmt) stmt()     {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}

// SelectItem is one element of the SELECT list. Star covers both bare "*"
// and qualified "T.*" (Expr is then a ColumnRef carrying only the qualifier).
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef is one FROM-list element: a stored relation with an optional
// correlation name (alias).
type TableRef struct {
	Table string
	Alias string
}

// Name returns the name the relation is referred to by in the query.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators, in no particular precedence order.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the SQL spelling.
func (op BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}[op]
}

// IsComparison reports whether op is one of the six scalar comparisons.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// CmpOp converts a comparison BinOp to the value-level operator.
func (op BinOp) CmpOp() value.CmpOp {
	switch op {
	case OpEq:
		return value.OpEq
	case OpNe:
		return value.OpNe
	case OpLt:
		return value.OpLt
	case OpLe:
		return value.OpLe
	case OpGt:
		return value.OpGt
	case OpGe:
		return value.OpGe
	}
	check.Failf("sql: %v is not a comparison", op)
	return 0
}

// Expr is a parsed expression tree node.
type Expr interface {
	expr()
	String() string
}

// ColumnRef is a possibly-qualified column reference.
type ColumnRef struct {
	Table  string // "" when unqualified
	Column string
}

// Literal is a constant.
type Literal struct{ Val value.Value }

// HostVar is a '?' placeholder bound by the host program at execution time
// (the paper's Section 2: statements issued from PL/I or COBOL programs are
// compiled once and run with program-supplied values). Index is the 0-based
// position of the '?' in the statement.
type HostVar struct{ Index int }

// BinaryExpr is L op R.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

// NotExpr is NOT E.
type NotExpr struct{ E Expr }

// NegExpr is unary minus.
type NegExpr struct{ E Expr }

// BetweenExpr is E [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negated   bool
}

// InListExpr is E [NOT] IN (literal, ...).
type InListExpr struct {
	E       Expr
	List    []Expr
	Negated bool
}

// SubqueryExpr is a scalar subquery used as an expression operand.
type SubqueryExpr struct{ Select *SelectStmt }

// InSubqueryExpr is E [NOT] IN (SELECT ...).
type InSubqueryExpr struct {
	E       Expr
	Select  *SelectStmt
	Negated bool
}

// FuncExpr is an aggregate function application.
type FuncExpr struct {
	Name string // COUNT, SUM, AVG, MIN, MAX (upper-cased)
	Arg  Expr   // nil when Star
	Star bool   // COUNT(*)
}

func (*ColumnRef) expr()      {}
func (*Literal) expr()        {}
func (*HostVar) expr()        {}
func (*BinaryExpr) expr()     {}
func (*NotExpr) expr()        {}
func (*NegExpr) expr()        {}
func (*BetweenExpr) expr()    {}
func (*InListExpr) expr()     {}
func (*SubqueryExpr) expr()   {}
func (*InSubqueryExpr) expr() {}
func (*FuncExpr) expr()       {}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

func (e *Literal) String() string { return e.Val.SQL() }

func (e *HostVar) String() string { return "?" }

func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

func (e *NotExpr) String() string { return "NOT " + e.E.String() }

func (e *NegExpr) String() string { return "-" + e.E.String() }

func (e *BetweenExpr) String() string {
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return e.E.String() + " " + not + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String()
}

func (e *InListExpr) String() string {
	parts := make([]string, len(e.List))
	for i, v := range e.List {
		parts[i] = v.String()
	}
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return e.E.String() + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

func (e *SubqueryExpr) String() string { return "(subquery)" }

func (e *InSubqueryExpr) String() string {
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return e.E.String() + " " + not + "IN (subquery)"
}

func (e *FuncExpr) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	return e.Name + "(" + e.Arg.String() + ")"
}

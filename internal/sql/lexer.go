package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokPunct
)

// token is one lexical token with its source position for error messages.
type token struct {
	kind tokenKind
	text string // keywords upper-cased; punct canonical; strings unquoted
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of statement"
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

// keywords recognized by the lexer. Identifiers matching these (case-
// insensitively) become tokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "DISTINCT": true, "AND": true,
	"OR": true, "NOT": true, "BETWEEN": true, "IN": true, "AS": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "UNIQUE": true,
	"CLUSTERED": true, "ON": true, "INSERT": true, "INTO": true,
	"VALUES": true, "DELETE": true, "UPDATE": true, "SET": true,
	"STATISTICS": true, "EXPLAIN": true, "ANALYZE": true, "DROP": true, "NULL": true,
	"INTEGER": true, "INT": true, "FLOAT": true, "REAL": true,
	"VARCHAR": true, "CHAR": true, "SEGMENT": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// lexError is a lexical error with position context.
type lexError struct {
	msg string
	pos int
}

func (e *lexError) Error() string { return fmt.Sprintf("syntax error at offset %d: %s", e.pos, e.msg) }

// lex tokenizes the input statement.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // doubled quote escape
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &lexError{msg: "unterminated string literal", pos: start}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			isFloat := false
			for i < n && (input[i] >= '0' && input[i] <= '9') {
				i++
			}
			if i < n && input[i] == '.' {
				isFloat = true
				i++
				for i < n && (input[i] >= '0' && input[i] <= '9') {
					i++
				}
			}
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				isFloat = true
				i++
				if i < n && (input[i] == '+' || input[i] == '-') {
					i++
				}
				for i < n && (input[i] >= '0' && input[i] <= '9') {
					i++
				}
			}
			text := input[start:i]
			kind := tokInt
			if isFloat {
				kind = tokFloat
				if _, err := strconv.ParseFloat(text, 64); err != nil {
					return nil, &lexError{msg: "bad numeric literal " + text, pos: start}
				}
			} else if _, err := strconv.ParseInt(text, 10, 64); err != nil {
				return nil, &lexError{msg: "bad integer literal " + text, pos: start}
			}
			toks = append(toks, token{kind: kind, text: text, pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			start := i
			var p string
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					p = input[i : i+2]
					i += 2
				} else {
					p = "<"
					i++
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					p = ">="
					i += 2
				} else {
					p = ">"
					i++
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					p = "<>" // canonicalize != to <>
					i += 2
				} else {
					return nil, &lexError{msg: "unexpected character '!'", pos: i}
				}
			case '=', '(', ')', ',', '+', '-', '*', '/', '.', ';', '?':
				p = string(c)
				i++
			default:
				return nil, &lexError{msg: fmt.Sprintf("unexpected character %q", c), pos: i}
			}
			toks = append(toks, token{kind: tokPunct, text: p, pos: start})
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }

func isIdentPart(r rune) bool { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

package sql

import "testing"

// FuzzParse is a native fuzz target (go test -fuzz=FuzzParse ./internal/sql);
// in normal runs it exercises the seed corpus. Invariant: Parse returns a
// statement or an error — it never panics.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT a FROM t WHERE b = 1 AND c IN (1,2,3) ORDER BY a",
		"SELECT DISTINCT x.y FROM t x GROUP BY x.y HAVING COUNT(*) > ? ORDER BY x.y DESC",
		"CREATE UNIQUE CLUSTERED INDEX i ON t (a, b)",
		"INSERT INTO t VALUES (1, 'it''s', 2.5e3, NULL), (-1, '', 0, 4)",
		"UPDATE t SET a = a * 2 WHERE b BETWEEN ? AND ?",
		"DELETE FROM t WHERE a IN (SELECT a FROM u WHERE b = t.c)",
		"EXPLAIN SELECT (SELECT MAX(x) FROM s) FROM t WHERE NOT a <> 5",
		"SELECT * FROM t WHERE a = 'unterminated",
		";;;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = Parse(input) // must not panic
	})
}

package sql

import (
	"strings"
	"testing"

	"systemr/internal/value"
)

func mustParse(t *testing.T, text string) Statement {
	t.Helper()
	st, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return st
}

func mustFail(t *testing.T, text, fragment string) {
	t.Helper()
	_, err := Parse(text)
	if err == nil {
		t.Fatalf("Parse(%q) should fail", text)
	}
	if fragment != "" && !strings.Contains(err.Error(), fragment) {
		t.Fatalf("Parse(%q) error %q lacks %q", text, err, fragment)
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE Emp (Name VARCHAR(20), dno INTEGER, sal FLOAT) IN SEGMENT s1;").(*CreateTableStmt)
	if st.Name != "EMP" || st.Segment != "s1" {
		t.Fatalf("%+v", st)
	}
	if len(st.Cols) != 3 || st.Cols[0] != (ColumnDef{Name: "NAME", Type: value.KindString}) ||
		st.Cols[1].Type != value.KindInt || st.Cols[2].Type != value.KindFloat {
		t.Fatalf("cols: %+v", st.Cols)
	}
	mustFail(t, "CREATE TABLE T", "expected (")
	mustFail(t, "CREATE UNIQUE TABLE T (A INT)", "UNIQUE/CLUSTERED")
	mustFail(t, "CREATE TABLE T (A BOGUS)", "type")
}

func TestParseCreateIndex(t *testing.T) {
	st := mustParse(t, "CREATE UNIQUE CLUSTERED INDEX i ON t (a, b)").(*CreateIndexStmt)
	if !st.Unique || !st.Clustered || st.Name != "I" || st.Table != "T" ||
		len(st.Columns) != 2 || st.Columns[1] != "B" {
		t.Fatalf("%+v", st)
	}
	st = mustParse(t, "CREATE INDEX i ON t (a)").(*CreateIndexStmt)
	if st.Unique || st.Clustered {
		t.Fatalf("%+v", st)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (1, 'a', 2.5, NULL), (-3, 'b''c', 1e3, 4)").(*InsertStmt)
	if st.Table != "T" || len(st.Rows) != 2 || len(st.Rows[0]) != 4 {
		t.Fatalf("%+v", st)
	}
	if lit := st.Rows[0][3].(*Literal); !lit.Val.IsNull() {
		t.Fatal("NULL literal")
	}
	if lit := st.Rows[1][0].(*Literal); lit.Val.Int != -3 {
		t.Fatalf("negative literal folded to %v", lit.Val)
	}
	if lit := st.Rows[1][1].(*Literal); lit.Val.Str != "b'c" {
		t.Fatalf("quote escape: %q", lit.Val.Str)
	}
	if lit := st.Rows[1][2].(*Literal); lit.Val.Float != 1000 {
		t.Fatalf("scientific literal: %v", lit.Val)
	}
}

func TestParseSelectShape(t *testing.T) {
	st := mustParse(t, `SELECT DISTINCT e.name, sal + 10 AS bumped, COUNT(*)
		FROM emp e, dept AS d
		WHERE e.dno = d.dno AND sal > 100
		GROUP BY e.name
		ORDER BY e.name DESC, sal`).(*SelectStmt)
	if !st.Distinct || len(st.Items) != 3 || len(st.From) != 2 {
		t.Fatalf("%+v", st)
	}
	if st.From[0].Alias != "E" || st.From[1].Alias != "D" {
		t.Fatalf("aliases: %+v", st.From)
	}
	if st.Items[1].Alias != "BUMPED" {
		t.Fatalf("select alias: %+v", st.Items[1])
	}
	if len(st.GroupBy) != 1 || len(st.OrderBy) != 2 {
		t.Fatalf("clauses: %+v", st)
	}
	if !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Fatal("order directions")
	}
}

func TestParseStars(t *testing.T) {
	st := mustParse(t, "SELECT *, t.* FROM t").(*SelectStmt)
	if !st.Items[0].Star || st.Items[0].Expr != nil {
		t.Fatal("bare star")
	}
	if !st.Items[1].Star || st.Items[1].Expr.(*ColumnRef).Table != "T" {
		t.Fatal("qualified star")
	}
}

func TestParsePrecedence(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or := st.Where.(*BinaryExpr)
	if or.Op != OpOr {
		t.Fatalf("top must be OR: %v", st.Where)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != OpAnd {
		t.Fatal("AND binds tighter than OR")
	}
	st = mustParse(t, "SELECT a FROM t WHERE a + 2 * 3 = 7").(*SelectStmt)
	cmp := st.Where.(*BinaryExpr)
	add := cmp.L.(*BinaryExpr)
	if add.Op != OpAdd || add.R.(*BinaryExpr).Op != OpMul {
		t.Fatalf("multiplication binds tighter: %v", st.Where)
	}
	st = mustParse(t, "SELECT a FROM t WHERE NOT a = 1 AND b = 2").(*SelectStmt)
	if st.Where.(*BinaryExpr).Op != OpAnd {
		t.Fatal("NOT binds tighter than AND")
	}
	if _, ok := st.Where.(*BinaryExpr).L.(*NotExpr); !ok {
		t.Fatal("left operand should be NOT")
	}
}

func TestParsePredicates(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b NOT BETWEEN 2 AND 3").(*SelectStmt)
	and := st.Where.(*BinaryExpr)
	if !and.R.(*BetweenExpr).Negated || and.L.(*BetweenExpr).Negated {
		t.Fatal("between negation flags")
	}
	st = mustParse(t, "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('x')").(*SelectStmt)
	and = st.Where.(*BinaryExpr)
	if len(and.L.(*InListExpr).List) != 3 || !and.R.(*InListExpr).Negated {
		t.Fatal("in-list shapes")
	}
	st = mustParse(t, "SELECT a FROM t WHERE a <> 1 AND b != 2").(*SelectStmt)
	and = st.Where.(*BinaryExpr)
	if and.L.(*BinaryExpr).Op != OpNe || and.R.(*BinaryExpr).Op != OpNe {
		t.Fatal("both <> spellings")
	}
}

func TestParseSubqueries(t *testing.T) {
	st := mustParse(t, `SELECT name FROM emp WHERE sal > (SELECT AVG(sal) FROM emp)
		AND dno IN (SELECT dno FROM dept WHERE loc = 'DENVER')`).(*SelectStmt)
	and := st.Where.(*BinaryExpr)
	gt := and.L.(*BinaryExpr)
	if _, ok := gt.R.(*SubqueryExpr); !ok {
		t.Fatalf("scalar subquery: %T", gt.R)
	}
	insub := and.R.(*InSubqueryExpr)
	if insub.Negated || insub.Select.From[0].Table != "DEPT" {
		t.Fatalf("%+v", insub)
	}
	// Three-level nesting (the paper's level-1/2/3 example).
	mustParse(t, `SELECT NAME FROM EMPLOYEE X WHERE SALARY >
		(SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER =
			(SELECT MANAGER FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER))`)
}

func TestParseAggregates(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*), SUM(sal), AVG(sal), MIN(sal), MAX(sal+1) FROM emp").(*SelectStmt)
	if len(st.Items) != 5 {
		t.Fatal("five aggregates")
	}
	if !st.Items[0].Expr.(*FuncExpr).Star {
		t.Fatal("COUNT(*)")
	}
	if st.Items[4].Expr.(*FuncExpr).Arg.(*BinaryExpr).Op != OpAdd {
		t.Fatal("aggregate over expression")
	}
}

func TestParseDML(t *testing.T) {
	del := mustParse(t, "DELETE FROM emp e WHERE e.sal < 10").(*DeleteStmt)
	if del.Table != "EMP" || del.Alias != "e" || del.Where == nil {
		t.Fatalf("%+v", del)
	}
	del = mustParse(t, "DELETE FROM emp").(*DeleteStmt)
	if del.Where != nil {
		t.Fatal("where should be nil")
	}
	up := mustParse(t, "UPDATE emp SET sal = sal * 2, dno = 5 WHERE dno = 4").(*UpdateStmt)
	if up.Table != "EMP" || len(up.Sets) != 2 || up.Sets[0].Column != "SAL" {
		t.Fatalf("%+v", up)
	}
	if _, ok := mustParse(t, "UPDATE STATISTICS").(*UpdateStatsStmt); !ok {
		t.Fatal("update statistics")
	}
	if _, ok := mustParse(t, "DROP TABLE t").(*DropTableStmt); !ok {
		t.Fatal("drop table")
	}
	di := mustParse(t, "DROP INDEX emp_dno").(*DropIndexStmt)
	if di.Name != "EMP_DNO" {
		t.Fatalf("%+v", di)
	}
	mustFail(t, "DROP emp", "expected TABLE or INDEX after DROP")
}

func TestParseExplain(t *testing.T) {
	ex := mustParse(t, "EXPLAIN SELECT a FROM t").(*ExplainStmt)
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Fatal("explain wraps select")
	}
	if _, ok := mustParse(t, "EXPLAIN DELETE FROM t WHERE a = 1").(*ExplainStmt); !ok {
		t.Fatal("explain delete")
	}
	mustFail(t, "EXPLAIN DROP TABLE t", "EXPLAIN supports SELECT, DELETE")
}

func TestParseErrors(t *testing.T) {
	mustFail(t, "", "expected a statement")
	mustFail(t, "SELECT", "")
	mustFail(t, "SELECT a FROM", "")
	mustFail(t, "SELECT a FROM t WHERE", "")
	mustFail(t, "SELECT a FROM t GROUP a", "expected BY")
	mustFail(t, "SELECT a FROM t; garbage", "")
	mustFail(t, "SELECT a FROM t WHERE a NOT 5", "")
	mustFail(t, "SELECT a FROM t WHERE 'unterminated", "unterminated string")
	mustFail(t, "SELECT a ! b FROM t", "")
	mustFail(t, "SELECT a FROM t WHERE a = @", "unexpected character")
}

func TestLexComments(t *testing.T) {
	st := mustParse(t, "SELECT a -- trailing comment\nFROM t -- another\n").(*SelectStmt)
	if len(st.Items) != 1 || st.From[0].Table != "T" {
		t.Fatalf("%+v", st)
	}
}

func TestExprStrings(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE NOT (a+1 = 2 OR b BETWEEN 1 AND 2) AND c IN (1,2)").(*SelectStmt)
	s := st.Where.String()
	for _, frag := range []string{"NOT", "BETWEEN", "IN (1, 2)", "OR", "+"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() %q lacks %q", s, frag)
		}
	}
}

func TestParseTxnControl(t *testing.T) {
	for _, text := range []string{"BEGIN", "begin transaction", "BEGIN WORK;"} {
		if _, ok := mustParse(t, text).(*BeginStmt); !ok {
			t.Fatalf("Parse(%q) is not a BeginStmt", text)
		}
	}
	for _, text := range []string{"COMMIT", "commit work", "COMMIT TRANSACTION;"} {
		if _, ok := mustParse(t, text).(*CommitStmt); !ok {
			t.Fatalf("Parse(%q) is not a CommitStmt", text)
		}
	}
	for _, text := range []string{"ROLLBACK", "rollback transaction", "ROLLBACK WORK;"} {
		if _, ok := mustParse(t, text).(*RollbackStmt); !ok {
			t.Fatalf("Parse(%q) is not a RollbackStmt", text)
		}
	}
	mustFail(t, "BEGIN SELECT", "")
	mustFail(t, "COMMIT garbage extra", "")
	// Txn-control statements reference no tables.
	r, w := TablesReferenced(&BeginStmt{})
	if len(r) != 0 || len(w) != 0 {
		t.Fatalf("BeginStmt references tables: read=%v write=%v", r, w)
	}
}

func TestLeadingKeyword(t *testing.T) {
	cases := map[string]string{
		"BEGIN":                "BEGIN",
		"  begin work":         "BEGIN",
		"commit;":              "COMMIT",
		"ROLLBACK TRANSACTION": "ROLLBACK",
		"SELECT * FROM T":      "SELECT",
		"x":                    "",
		"":                     "",
		"'unterminated":        "",
	}
	for text, want := range cases {
		if got := LeadingKeyword(text); got != want {
			t.Fatalf("LeadingKeyword(%q) = %q, want %q", text, got, want)
		}
	}
}

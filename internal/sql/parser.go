package sql

import (
	"fmt"
	"strconv"
	"strings"

	"systemr/internal/value"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// accepted).
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// LeadingKeyword returns the upper-cased first keyword of a statement's text
// ("" when it does not start with a keyword or fails to lex) — the session
// layer's cheap dispatch for routing BEGIN/COMMIT/ROLLBACK without a second
// full parse of ordinary statements.
func LeadingKeyword(input string) string {
	toks, err := lex(input)
	if err != nil || len(toks) == 0 || toks[0].kind != tokKeyword {
		return ""
	}
	return toks[0].text
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks     []token
	i        int
	hostVars int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token matches kind (and text, if non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a required token or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{tokIdent: "identifier", tokInt: "integer", tokString: "string"}[kind]
	}
	return token{}, p.errorf("expected %s, found %s", want, p.peek())
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("syntax error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// identLike consumes an identifier, also accepting keywords usable as names
// (aggregate names, type names) so "SELECT MIN FROM ..." style schemas parse.
func (p *parser) identLike() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	return "", p.errorf("expected identifier, found %s", t)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "BEGIN"):
		p.next()
		p.acceptTxnNoise()
		return &BeginStmt{}, nil
	case p.at(tokKeyword, "COMMIT"):
		p.next()
		p.acceptTxnNoise()
		return &CommitStmt{}, nil
	case p.at(tokKeyword, "ROLLBACK"):
		p.next()
		p.acceptTxnNoise()
		return &RollbackStmt{}, nil
	case p.at(tokKeyword, "EXPLAIN"):
		p.next()
		analyze := p.accept(tokKeyword, "ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case *SelectStmt:
		case *DeleteStmt, *UpdateStmt:
			if analyze {
				return nil, p.errorf("EXPLAIN ANALYZE supports SELECT statements")
			}
		default:
			return nil, p.errorf("EXPLAIN supports SELECT, DELETE, and UPDATE statements")
		}
		return &ExplainStmt{Stmt: inner, Analyze: analyze}, nil
	default:
		return nil, p.errorf("expected a statement, found %s", p.peek())
	}
}

// acceptTxnNoise consumes the optional TRANSACTION/WORK noise word after
// BEGIN, COMMIT, and ROLLBACK. The words are deliberately not lexer keywords
// — schemas using them as identifiers keep parsing — so they arrive as plain
// identifiers matched case-insensitively.
func (p *parser) acceptTxnNoise() {
	t := p.peek()
	if t.kind == tokIdent {
		switch strings.ToUpper(t.text) {
		case "TRANSACTION", "WORK":
			p.next()
		}
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.accept(tokKeyword, "UNIQUE")
	clustered := p.accept(tokKeyword, "CLUSTERED")
	switch {
	case p.accept(tokKeyword, "TABLE"):
		if unique || clustered {
			return nil, p.errorf("UNIQUE/CLUSTERED apply to CREATE INDEX, not CREATE TABLE")
		}
		return p.parseCreateTable()
	case p.accept(tokKeyword, "INDEX"):
		return p.parseCreateIndex(unique, clustered)
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cn, err := p.identLike()
		if err != nil {
			return nil, err
		}
		kind, err := p.parseType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ColumnDef{Name: strings.ToUpper(cn), Type: kind})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	segment := ""
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokKeyword, "SEGMENT"); err != nil {
			return nil, err
		}
		seg, err := p.identLike()
		if err != nil {
			return nil, err
		}
		segment = seg
	}
	return &CreateTableStmt{Name: strings.ToUpper(name), Cols: cols, Segment: segment}, nil
}

func (p *parser) parseType() (value.Kind, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, p.errorf("expected a type name, found %s", t)
	}
	p.next()
	var kind value.Kind
	switch t.text {
	case "INTEGER", "INT":
		kind = value.KindInt
	case "FLOAT", "REAL":
		kind = value.KindFloat
	case "VARCHAR", "CHAR":
		kind = value.KindString
	default:
		return 0, p.errorf("unknown type %s", t.text)
	}
	// Optional length, e.g. VARCHAR(20) — parsed and ignored.
	if p.accept(tokPunct, "(") {
		if _, err := p.expect(tokInt, ""); err != nil {
			return 0, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return 0, err
		}
	}
	return kind, nil
}

func (p *parser) parseCreateIndex(unique, clustered bool) (Statement, error) {
	name, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		cn, err := p.identLike()
		if err != nil {
			return nil, err
		}
		cols = append(cols, strings.ToUpper(cn))
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{
		Name: strings.ToUpper(name), Table: strings.ToUpper(table),
		Columns: cols, Unique: unique, Clustered: clustered,
	}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	switch {
	case p.accept(tokKeyword, "TABLE"):
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: strings.ToUpper(name)}, nil
	case p.accept(tokKeyword, "INDEX"):
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: strings.ToUpper(name)}, nil
	default:
		return nil, p.errorf("expected TABLE or INDEX after DROP")
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.identLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	return &InsertStmt{Table: strings.ToUpper(table), Rows: rows}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.identLike()
	if err != nil {
		return nil, err
	}
	alias := ""
	if p.at(tokIdent, "") {
		alias, _ = p.identLike()
	}
	var where Expr
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		where = w
	}
	return &DeleteStmt{Table: strings.ToUpper(table), Alias: alias, Where: where}, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	if p.accept(tokKeyword, "STATISTICS") {
		st := &UpdateStatsStmt{}
		if p.at(tokIdent, "") {
			name, _ := p.identLike()
			st.Table = strings.ToUpper(name)
		}
		return st, nil
	}
	table, err := p.identLike()
	if err != nil {
		return nil, err
	}
	alias := ""
	if p.at(tokIdent, "") {
		alias, _ = p.identLike()
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	var sets []SetClause
	for {
		col, err := p.identLike()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, SetClause{Column: strings.ToUpper(col), Expr: e})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	var where Expr
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		where = w
	}
	return &UpdateStmt{Table: strings.ToUpper(table), Alias: alias, Sets: sets, Where: where}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Distinct: p.accept(tokKeyword, "DISTINCT")}
	// SELECT list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	// FROM list.
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.identLike()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: strings.ToUpper(name)}
		if p.accept(tokKeyword, "AS") {
			a, err := p.identLike()
			if err != nil {
				return nil, err
			}
			ref.Alias = strings.ToUpper(a)
		} else if p.at(tokIdent, "") {
			a, _ := p.identLike()
			ref.Alias = strings.ToUpper(a)
		}
		sel.From = append(sel.From, ref)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokPunct, "*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: T.*
	if p.at(tokIdent, "") && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tokPunct && p.toks[p.i+2].text == "*" {
		t := p.next().text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, Expr: &ColumnRef{Table: strings.ToUpper(t)}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		a, err := p.identLike()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = strings.ToUpper(a)
	} else if p.at(tokIdent, "") {
		a, _ := p.identLike()
		item.Alias = strings.ToUpper(a)
	}
	return item, nil
}

// Expression grammar, lowest precedence first:
//
//	expr     := and ( OR and )*
//	and      := not ( AND not )*
//	not      := NOT not | predicate
//	predicate:= additive ( cmp additive | [NOT] BETWEEN .. AND .. | [NOT] IN (..) )?
//	additive := term ( (+|-) term )*
//	term     := factor ( (*|/) factor )*
//	factor   := - factor | primary
//	primary  := literal | column | aggregate | ( expr ) | ( SELECT ... )
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]BinOp{"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokPunct {
		if op, ok := cmpOps[p.peek().text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	negated := false
	if p.at(tokKeyword, "NOT") &&
		(p.toks[p.i+1].kind == tokKeyword && (p.toks[p.i+1].text == "BETWEEN" || p.toks[p.i+1].text == "IN")) {
		p.next()
		negated = true
	}
	switch {
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: left, Lo: lo, Hi: hi, Negated: negated}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		if p.at(tokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return &InSubqueryExpr{E: left, Select: sub, Negated: negated}, nil
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &InListExpr{E: left, List: list, Negated: negated}, nil
	}
	if negated {
		return nil, p.errorf("expected BETWEEN or IN after NOT")
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "+"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpAdd, L: left, R: r}
		case p.accept(tokPunct, "-"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpSub, L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "*"):
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpMul, L: left, R: r}
		case p.accept(tokPunct, "/"):
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpDiv, L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	if p.accept(tokPunct, "-") {
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok { // fold negative literals
			switch lit.Val.Kind {
			case value.KindInt:
				return &Literal{Val: value.NewInt(-lit.Val.Int)}, nil
			case value.KindFloat:
				return &Literal{Val: value.NewFloat(-lit.Val.Float)}, nil
			}
		}
		return &NegExpr{E: e}, nil
	}
	return p.parsePrimary()
}

var aggregates = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		v, _ := strconv.ParseInt(t.text, 10, 64)
		return &Literal{Val: value.NewInt(v)}, nil
	case tokFloat:
		p.next()
		v, _ := strconv.ParseFloat(t.text, 64)
		return &Literal{Val: value.NewFloat(v)}, nil
	case tokString:
		p.next()
		return &Literal{Val: value.NewString(t.text)}, nil
	case tokKeyword:
		switch {
		case t.text == "NULL":
			p.next()
			return &Literal{Val: value.Null()}, nil
		case aggregates[t.text]:
			p.next()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			if t.text == "COUNT" && p.accept(tokPunct, "*") {
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				return &FuncExpr{Name: "COUNT", Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return &FuncExpr{Name: t.text, Arg: arg}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.text)
	case tokPunct:
		if t.text == "?" {
			p.next()
			hv := &HostVar{Index: p.hostVars}
			p.hostVars++
			return hv, nil
		}
		if t.text == "(" {
			p.next()
			if p.at(tokKeyword, "SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case tokIdent:
		p.next()
		name := strings.ToUpper(t.text)
		if p.accept(tokPunct, ".") {
			col, err := p.identLike()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: strings.ToUpper(col)}, nil
		}
		return &ColumnRef{Column: name}, nil
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

// Package compile is the statement compilation pipeline: parse → semantic
// analysis → access path selection, producing an immutable CompiledPlan that
// can be executed many times. It is the repo's analog of System R's
// "compile once, run many" access modules: a plan embeds the catalog state
// (table/index pointers, statistics-derived costs) of compile time, records
// the catalog version it was compiled under, and is valid exactly while the
// catalog still reports that version. DDL and UPDATE STATISTICS bump the
// version, so stale plans are never executed — they are recompiled, the way
// System R invalidated and recompiled access modules when a dependency
// (table, index, statistics) changed.
//
// A shared, concurrency-safe LRU Cache (cache.go) sits in front of the
// pipeline, keyed by normalized SQL text + host-variable type signature;
// entries carry their compile-time version and are invalidated on lookup
// when the catalog has moved.
package compile

import (
	"fmt"
	"math"
	"sync/atomic"

	"systemr/internal/catalog"
	"systemr/internal/core"
	"systemr/internal/governor"
	"systemr/internal/lock"
	"systemr/internal/plan"
	"systemr/internal/sem"
	"systemr/internal/sql"
	"systemr/internal/value"
)

// CatalogLock is the pseudo-table serializing DDL against all statements:
// every statement locks it shared, DDL and UPDATE STATISTICS lock it
// exclusively. Holding it shared therefore pins the catalog version.
const CatalogLock = "__CATALOG__"

// LockRequests derives a statement's table lock set: exclusive on every
// table written, and DDL exclusively locks the catalog. Tables only read
// take shared locks when snapshotReads is false (pure two-phase locking);
// under MVCC snapshot reads they take none at all — visibility rules at the
// RSS boundary isolate readers from in-flight writers, so readers never
// block and are never blocked. Every statement still locks the catalog
// shared, pinning the catalog version against DDL. The set depends only on
// the statement text and the engine mode, so it is stored on the compiled
// plan and stays valid across recompilations.
func LockRequests(stmt sql.Statement, snapshotReads bool) []lock.Request {
	reqs := []lock.Request{{Table: CatalogLock, Mode: lock.Shared}}
	switch stmt.(type) {
	case *sql.CreateTableStmt, *sql.CreateIndexStmt, *sql.DropTableStmt,
		*sql.DropIndexStmt, *sql.UpdateStatsStmt:
		return []lock.Request{{Table: CatalogLock, Mode: lock.Exclusive}}
	case *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt:
		// Transaction control moves lock ownership between statement and
		// transaction scope; it takes no locks of its own.
		return nil
	}
	read, write := sql.TablesReferenced(stmt)
	if !snapshotReads {
		for _, t := range read {
			reqs = append(reqs, lock.Request{Table: t, Mode: lock.Shared})
		}
	}
	for _, t := range write {
		reqs = append(reqs, lock.Request{Table: t, Mode: lock.Exclusive})
	}
	return reqs
}

// CompiledPlan is the immutable product of one trip through the pipeline —
// the access module. It is safe to execute concurrently from many
// goroutines: all execution state lives in the executor's per-run context.
type CompiledPlan struct {
	// Norm is the statement's normalized text (sql.Normalize) — the cache
	// key base and the parseable text a stale plan recompiles from.
	Norm string
	// Version is the catalog version the plan was compiled under; the plan
	// is executable exactly while the catalog still reports it.
	Version uint64
	// Query is the optimized physical plan.
	Query *plan.Query
	// Locks is the statement's lock set (derived from the text, stable
	// across recompiles): acquire these before validating Version.
	Locks []lock.Request
	// Reads lists the tables the statement reads — the tables whose
	// statistics a feedback-triggered refresh recollects.
	Reads []string

	// worstMiss is the largest misestimation q-error observed across
	// executions of this plan, as math.Float64bits (atomics hold integers).
	// recompile is set once worstMiss crosses the engine's recompile
	// threshold; the next execution's single winner takes it and refreshes
	// statistics, after which the catalog version bump retires the plan
	// through the ordinary staleness path.
	worstMiss atomic.Uint64
	recompile atomic.Bool
}

// MissFactor is the symmetric misestimation q-error max(est,act)/min(est,act),
// always >= 1, with both sides floored at one row so empty results stay
// finite. A factor of 1 is a perfect estimate; 10 means the optimizer was an
// order of magnitude off in either direction.
func MissFactor(estimated, actual float64) float64 {
	est, act := math.Max(estimated, 1), math.Max(actual, 1)
	if est > act {
		return est / act
	}
	return act / est
}

// NoteMiss records one execution's misestimation factor, keeping the worst
// seen. Safe for concurrent executions of the same plan.
func (cp *CompiledPlan) NoteMiss(factor float64) {
	for {
		old := cp.worstMiss.Load()
		if factor <= math.Float64frombits(old) {
			return
		}
		if cp.worstMiss.CompareAndSwap(old, math.Float64bits(factor)) {
			return
		}
	}
}

// WorstMissFactor returns the largest misestimation factor recorded so far
// (0 when no execution has reported).
func (cp *CompiledPlan) WorstMissFactor() float64 {
	return math.Float64frombits(cp.worstMiss.Load())
}

// MarkRecompile flags the plan for statistics refresh + recompilation.
func (cp *CompiledPlan) MarkRecompile() { cp.recompile.Store(true) }

// NeedsRecompile reports whether the plan has been marked.
func (cp *CompiledPlan) NeedsRecompile() bool { return cp.recompile.Load() }

// TakeRecompile claims the recompile flag; exactly one concurrent caller
// wins, so one statistics refresh runs per marked plan.
func (cp *CompiledPlan) TakeRecompile() bool {
	return cp.recompile.CompareAndSwap(true, false)
}

// Pipeline compiles statements against one catalog with one optimizer
// configuration. It is stateless apart from a compilation counter and safe
// for concurrent use (compilation itself must run under the engine's shared
// catalog lock, like any statement).
type Pipeline struct {
	cat           *catalog.Catalog
	cfg           core.Config
	naive         bool
	snapshotReads bool
	compilations  atomic.Int64
}

// NewPipeline creates a compile pipeline over cat. naive selects the
// no-optimizer baseline plans; snapshotReads selects the MVCC lock sets
// (no shared table locks on reads) for compiled plans.
func NewPipeline(cat *catalog.Catalog, cfg core.Config, naive, snapshotReads bool) *Pipeline {
	return &Pipeline{cat: cat, cfg: cfg, naive: naive, snapshotReads: snapshotReads}
}

// Compilations returns how many plans the optimizer has produced — the
// counter cache-hit tests assert does NOT move on a repeated statement.
func (p *Pipeline) Compilations() int64 { return p.compilations.Load() }

// PlanBlock runs access path selection (or the naive baseline) over an
// analyzed block. All compile paths — SELECT, EXPLAIN, DML match planning —
// funnel through here, so Compilations counts every optimizer invocation.
func (p *Pipeline) PlanBlock(blk *sem.Block) (*plan.Query, error) {
	p.compilations.Add(1)
	opt := core.New(p.cat, p.cfg)
	if p.naive {
		return core.NaivePlan(opt, blk)
	}
	return opt.Optimize(blk)
}

// CompileSelect runs the back half of the pipeline on an already-parsed
// SELECT: semantic analysis, then optimization, under the statement's
// governor budget (compilation is statement work too — a canceled or
// deadline-expired statement aborts between phases). norm is the
// statement's normalized text; gov may be nil (ungoverned).
func (p *Pipeline) CompileSelect(gov *governor.Budget, sel *sql.SelectStmt, norm string) (*CompiledPlan, error) {
	if err := gov.Check(); err != nil {
		return nil, err
	}
	version := p.cat.Version()
	blk, err := sem.Analyze(sel, p.cat)
	if err != nil {
		return nil, err
	}
	if err := gov.Check(); err != nil {
		return nil, err
	}
	q, err := p.PlanBlock(blk)
	if err != nil {
		return nil, err
	}
	reads, _ := sql.TablesReferenced(sel)
	return &CompiledPlan{
		Norm:    norm,
		Version: version,
		Query:   q,
		Locks:   LockRequests(sel, p.snapshotReads),
		Reads:   reads,
	}, nil
}

// CompileSelectText is the full pipeline from statement text: parse,
// normalize, analyze, optimize. Non-SELECT statements are rejected.
func (p *Pipeline) CompileSelectText(gov *governor.Budget, text string) (*CompiledPlan, error) {
	if err := gov.Check(); err != nil {
		return nil, err
	}
	parsed, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := parsed.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("compile: expected a SELECT statement, got %T", parsed)
	}
	norm, _ := sql.Normalize(text)
	return p.CompileSelect(gov, sel, norm)
}

// Key builds the plan-cache key from normalized text and the host-variable
// type signature. The catalog version is not part of the key — entries carry
// their compile-time version and are invalidated on lookup — so one
// statement occupies one slot instead of leaking an entry per epoch.
func Key(norm, argSig string) string {
	if argSig == "" {
		return norm
	}
	return norm + "\x00" + argSig
}

// ArgSig summarizes host-variable argument types as one letter each, so a
// statement run with different binding types occupies distinct cache slots.
func ArgSig(args []value.Value) string {
	if len(args) == 0 {
		return ""
	}
	sig := make([]byte, len(args))
	for i, a := range args {
		switch a.Kind {
		case value.KindInt:
			sig[i] = 'I'
		case value.KindFloat:
			sig[i] = 'F'
		case value.KindString:
			sig[i] = 'S'
		default:
			sig[i] = 'N'
		}
	}
	return string(sig)
}

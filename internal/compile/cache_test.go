package compile

import (
	"fmt"
	"sync"
	"testing"
)

func mkPlan(norm string, version uint64) *CompiledPlan {
	return &CompiledPlan{Norm: norm, Version: version}
}

func TestCachePeekPutHit(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Peek("k"); ok {
		t.Fatal("empty cache must miss")
	}
	cp := mkPlan("k", 1)
	c.Miss()
	c.Put("k", cp)
	got, ok := c.Peek("k")
	if !ok || got != cp {
		t.Fatal("peek after put")
	}
	c.Hit("k")
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Capacity != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", mkPlan("a", 1))
	c.Put("b", mkPlan("b", 1))
	c.Hit("a") // refresh a: b is now least recently used
	c.Put("c", mkPlan("c", 1))
	if _, ok := c.Peek("b"); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("recently used entry a must survive")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheInvalidateOnlyIfCurrent(t *testing.T) {
	c := NewCache(4)
	old := mkPlan("k", 1)
	c.Put("k", old)
	fresh := mkPlan("k", 2)
	c.Put("k", fresh) // a concurrent statement already recompiled
	c.Invalidate("k", old)
	if got, ok := c.Peek("k"); !ok || got != fresh {
		t.Fatal("invalidating a replaced entry must be a no-op")
	}
	c.Invalidate("k", fresh)
	if _, ok := c.Peek("k"); ok {
		t.Fatal("invalidating the current entry must remove it")
	}
	if s := c.Stats(); s.Invalidations != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	if c.Stats().Capacity != 1 {
		t.Fatalf("capacity = %d, want 1", c.Stats().Capacity)
	}
}

// TestCacheConcurrent exercises the cache from many goroutines; run with
// -race it is the unit-level half of the engine's concurrent plan-cache test.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if e, ok := c.Peek(key); ok {
					if i%3 == 0 {
						c.Invalidate(key, e)
					} else {
						c.Hit(key)
					}
				} else {
					c.Miss()
					c.Put(key, mkPlan(key, uint64(g)))
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 8 {
		t.Fatalf("capacity bound violated: %+v", s)
	}
	if s.Hits+s.Misses == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
}

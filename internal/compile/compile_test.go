package compile

import (
	"strings"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/core"
	"systemr/internal/lock"
	"systemr/internal/sql"
	"systemr/internal/storage"
	"systemr/internal/value"
)

func testPipeline(t *testing.T) (*Pipeline, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New(storage.NewDisk())
	if _, err := cat.CreateTable("T", []catalog.Column{
		{Name: "A", Type: value.KindInt},
		{Name: "B", Type: value.KindString},
	}, ""); err != nil {
		t.Fatal(err)
	}
	return NewPipeline(cat, core.Config{W: core.DefaultW, BufferPages: 64}, false, false), cat
}

func TestCompileSelectText(t *testing.T) {
	p, cat := testPipeline(t)
	cp, err := p.CompileSelectText(nil, "select a, b from t where a = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Norm != "SELECT a , b FROM t WHERE a = 1" {
		t.Fatalf("norm = %q", cp.Norm)
	}
	if cp.Version != cat.Version() {
		t.Fatalf("version = %d, want %d", cp.Version, cat.Version())
	}
	if cp.Query == nil || len(cp.Query.OutNames) != 2 {
		t.Fatalf("query = %+v", cp.Query)
	}
	if p.Compilations() != 1 {
		t.Fatalf("compilations = %d, want 1", p.Compilations())
	}
	// The stored normalized text must itself compile (it is the recompile
	// source for stale cache entries) and to the same normalized form.
	cp2, err := p.CompileSelectText(nil, cp.Norm)
	if err != nil {
		t.Fatalf("recompiling from normalized text: %v", err)
	}
	if cp2.Norm != cp.Norm {
		t.Fatalf("normalization not a fixed point: %q vs %q", cp2.Norm, cp.Norm)
	}
}

func TestCompileSelectTextRejectsNonSelect(t *testing.T) {
	p, _ := testPipeline(t)
	if _, err := p.CompileSelectText(nil, "DELETE FROM T"); err == nil ||
		!strings.Contains(err.Error(), "expected a SELECT") {
		t.Fatalf("err = %v", err)
	}
}

func TestLockRequests(t *testing.T) {
	sel, err := sql.Parse("SELECT A FROM T")
	if err != nil {
		t.Fatal(err)
	}
	reqs := LockRequests(sel, false)
	want := []lock.Request{
		{Table: CatalogLock, Mode: lock.Shared},
		{Table: "T", Mode: lock.Shared},
	}
	if len(reqs) != len(want) {
		t.Fatalf("reqs = %v", reqs)
	}
	for i := range want {
		if reqs[i] != want[i] {
			t.Fatalf("reqs[%d] = %v, want %v", i, reqs[i], want[i])
		}
	}
	// Snapshot reads elide the read-table S lock but keep the catalog pin.
	snapReqs := LockRequests(sel, true)
	if len(snapReqs) != 1 || snapReqs[0] != (lock.Request{Table: CatalogLock, Mode: lock.Shared}) {
		t.Fatalf("snapshot-read reqs = %v, want catalog S lock only", snapReqs)
	}
	upd, err := sql.Parse("UPDATE T SET A = 1 WHERE A = 2")
	if err != nil {
		t.Fatal(err)
	}
	updReqs := LockRequests(upd, true)
	wantUpd := []lock.Request{
		{Table: CatalogLock, Mode: lock.Shared},
		{Table: "T", Mode: lock.Exclusive},
	}
	if len(updReqs) != len(wantUpd) {
		t.Fatalf("snapshot-mode UPDATE reqs = %v", updReqs)
	}
	for i := range wantUpd {
		if updReqs[i] != wantUpd[i] {
			t.Fatalf("updReqs[%d] = %v, want %v", i, updReqs[i], wantUpd[i])
		}
	}
	for _, ddl := range []string{
		"CREATE TABLE U (A INTEGER)",
		"CREATE INDEX TX ON T (A)",
		"DROP TABLE T",
		"DROP INDEX TX",
		"UPDATE STATISTICS",
	} {
		stmt, err := sql.Parse(ddl)
		if err != nil {
			t.Fatal(err)
		}
		reqs := LockRequests(stmt, true)
		if len(reqs) != 1 || reqs[0] != (lock.Request{Table: CatalogLock, Mode: lock.Exclusive}) {
			t.Fatalf("%s: reqs = %v, want exclusive catalog lock only", ddl, reqs)
		}
	}
}

func TestKeyAndArgSig(t *testing.T) {
	if Key("SELECT 1", "") != "SELECT 1" {
		t.Fatal("no-arg key must be the bare norm")
	}
	if Key("SELECT 1", "I") != "SELECT 1\x00I" {
		t.Fatal("arg key must append the signature")
	}
	sig := ArgSig([]value.Value{
		value.NewInt(1), value.NewFloat(2.5), value.NewString("x"), value.Null(),
	})
	if sig != "IFSN" {
		t.Fatalf("sig = %q, want IFSN", sig)
	}
	if ArgSig(nil) != "" {
		t.Fatal("empty args must give empty signature")
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	p, _ := testPipeline(t)
	if _, err := p.CompileSelectText(nil, "SELECT NOPE FROM T"); err == nil {
		t.Fatal("unknown column must fail semantic analysis")
	}
	if _, err := p.CompileSelectText(nil, "SELECT FROM"); err == nil {
		t.Fatal("syntax error must surface")
	}
}

package compile

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe LRU plan cache. Lookup is split in two so the
// caller can validate the catalog version under the statement's locks:
//
//	e, ok := cache.Peek(key)          // lock-free w.r.t. the catalog
//	held := locks.Acquire(e.Locks)    // pins the catalog version
//	if e.Version == cat.Version() { cache.Hit(key); execute(e) }
//	else { cache.Invalidate(key, e); recompile; cache.Put(key, fresh) }
//
// Peeking before the locks is safe because plans are immutable and the
// version check happens after the shared catalog lock is held: a plan that
// went stale between Peek and Acquire fails the version check and recompiles.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits          int64
	misses        int64
	invalidations int64
	evictions     int64
}

type cacheEntry struct {
	key string
	cp  *CompiledPlan
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	// Hits counts executions served entirely from the cache (parse, semantic
	// analysis, and optimization all skipped).
	Hits int64
	// Misses counts cached-path lookups that had to compile: not present, or
	// present but stale. Hits+Misses = cached-path lookups.
	Misses int64
	// Invalidations counts entries discarded because the catalog version
	// moved (DDL or UPDATE STATISTICS) since they were compiled.
	Invalidations int64
	// Evictions counts entries displaced by the LRU capacity bound.
	Evictions int64
	// Entries and Capacity describe current occupancy.
	Entries  int
	Capacity int
}

// NewCache creates a plan cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Peek returns the cached plan for key without touching LRU order or
// counters. The caller must validate the plan's Version before use.
func (c *Cache) Peek(key string) (*CompiledPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*cacheEntry).cp, true
	}
	return nil, false
}

// Hit records a served execution and refreshes the entry's recency.
func (c *Cache) Hit(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
	}
}

// Miss records a cached-path lookup that had to compile.
func (c *Cache) Miss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// Invalidate removes key if it still maps to old (a concurrent statement may
// already have replaced it with a freshly compiled plan, which must stay).
func (c *Cache) Invalidate(key string, old *CompiledPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok || el.Value.(*cacheEntry).cp != old {
		return
	}
	c.ll.Remove(el)
	delete(c.items, key)
	c.invalidations++
}

// Put inserts (or replaces) the plan for key at the front of the LRU,
// evicting from the back when over capacity.
func (c *Cache) Put(key string, cp *CompiledPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).cp = cp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, cp: cp})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats returns a snapshot of the counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Entries:       c.ll.Len(),
		Capacity:      c.capacity,
	}
}

// Package governor implements the statement execution governor: a
// per-statement budget of cancellation, wall-clock deadline (carried by the
// context), rows scanned, and page fetches, checked at the RSI OPEN/NEXT
// loops so that even a worst-case plan — which the optimizer cannot always
// avoid — terminates promptly instead of running away with the engine.
//
// A *Budget is created per statement and threaded through exec.Runtime into
// every scan. All methods are nil-receiver safe: code paths that execute
// without a governor (experiments, internal loading) pass a nil budget and
// pay a single pointer comparison per checkpoint. One budget may be shared
// by all goroutines executing a statement — the parallel exchange operator
// hands the same budget to every scan worker — so its counters are atomics
// and every checkpoint is safe to hit concurrently; a budget violation
// observed by any worker aborts the whole statement.
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"systemr/internal/storage"
)

// Typed errors. Budget violations and cancellations wrap one of these, so
// callers dispatch with errors.Is. The underlying context error
// (context.Canceled / context.DeadlineExceeded) is also wrapped and remains
// visible to errors.Is.
var (
	// ErrCanceled reports that the statement's context was canceled.
	ErrCanceled = errors.New("statement canceled")
	// ErrBudgetExceeded reports that the statement exhausted a resource
	// budget: rows scanned, page fetches, or its deadline.
	ErrBudgetExceeded = errors.New("statement budget exceeded")
)

// checkInterval bounds how many RSI checkpoints may pass between context
// polls: a canceled statement observes the cancellation within this many
// tuple examinations.
const checkInterval = 16

// Limits are the per-statement resource bounds; zero means unlimited.
type Limits struct {
	// MaxRowsScanned bounds the tuples a statement may examine across all
	// of its scans (not the tuples it returns — a scan that rejects
	// everything still pays).
	MaxRowsScanned int64
	// MaxPageFetches bounds buffer-pool misses charged to the statement.
	MaxPageFetches int64
}

// Budget is one statement's governor state. rows and sinceCheck are atomics
// because parallel-scan workers share their statement's budget.
type Budget struct {
	ctx          context.Context
	limits       Limits
	stats        *storage.IOStats
	startFetches int64
	rows         atomic.Int64
	sinceCheck   atomic.Int32
}

// New creates a budget for one statement. stats is the statement's own I/O
// accumulator (the same one the executor threads to its scans through a
// storage.StmtIO view); the fetch budget is enforced against the delta from
// now, so only this statement's fetches count against it — concurrent
// statements cannot spend each other's budgets.
func New(ctx context.Context, limits Limits, stats *storage.IOStats) *Budget {
	b := &Budget{ctx: ctx, limits: limits, stats: stats}
	if stats != nil {
		b.startFetches = stats.Snapshot().PageFetches
	}
	return b
}

// IO returns the statement's I/O accumulator (nil for an ungoverned or
// stats-less budget). The executor threads it to scans so budget enforcement
// and measurement read the same per-statement counters.
func (b *Budget) IO() *storage.IOStats {
	if b == nil {
		return nil
	}
	return b.stats
}

// CheckRow records one tuple examined at an RSI checkpoint and enforces the
// row budget; every checkInterval-th call also polls the context and the
// fetch budget.
func (b *Budget) CheckRow() error {
	if b == nil {
		return nil
	}
	rows := b.rows.Add(1)
	if b.limits.MaxRowsScanned > 0 && rows > b.limits.MaxRowsScanned {
		return fmt.Errorf("%w: %d rows scanned > MaxRowsScanned %d",
			ErrBudgetExceeded, rows, b.limits.MaxRowsScanned)
	}
	return b.tick()
}

// Tick is a non-row checkpoint (temporary-list row delivery, page
// transitions): every checkInterval-th call runs a full Check.
func (b *Budget) Tick() error {
	if b == nil {
		return nil
	}
	return b.tick()
}

func (b *Budget) tick() error {
	if b.sinceCheck.Add(1) < checkInterval {
		return nil
	}
	return b.Check()
}

// Check polls the context and the page-fetch budget. Scans call it at OPEN
// and on every page transition.
func (b *Budget) Check() error {
	if b == nil {
		return nil
	}
	b.sinceCheck.Store(0)
	if err := b.ctx.Err(); err != nil {
		return CtxErr(err)
	}
	if b.limits.MaxPageFetches > 0 && b.stats != nil {
		fetched := b.stats.Snapshot().PageFetches - b.startFetches
		if fetched > b.limits.MaxPageFetches {
			return fmt.Errorf("%w: %d page fetches > MaxPageFetches %d",
				ErrBudgetExceeded, fetched, b.limits.MaxPageFetches)
		}
	}
	return nil
}

// RowsScanned returns the tuples examined so far.
func (b *Budget) RowsScanned() int64 {
	if b == nil {
		return 0
	}
	return b.rows.Load()
}

// CtxErr maps a non-nil context error to the governor's typed errors: an
// expired deadline is a spent time budget, everything else is a
// cancellation. The context error stays in the chain for errors.Is.
func CtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrBudgetExceeded, err)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, err)
}

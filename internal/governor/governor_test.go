package governor

import (
	"context"
	"errors"
	"testing"
	"time"

	"systemr/internal/storage"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 1000; i++ {
		if err := b.CheckRow(); err != nil {
			t.Fatalf("nil budget CheckRow: %v", err)
		}
		if err := b.Tick(); err != nil {
			t.Fatalf("nil budget Tick: %v", err)
		}
		if err := b.Check(); err != nil {
			t.Fatalf("nil budget Check: %v", err)
		}
	}
	if b.RowsScanned() != 0 {
		t.Fatalf("nil budget RowsScanned = %d", b.RowsScanned())
	}
}

func TestRowBudget(t *testing.T) {
	b := New(context.Background(), Limits{MaxRowsScanned: 10}, nil)
	for i := 0; i < 10; i++ {
		if err := b.CheckRow(); err != nil {
			t.Fatalf("row %d within budget: %v", i, err)
		}
	}
	err := b.CheckRow()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("11th row: got %v, want ErrBudgetExceeded", err)
	}
	if b.RowsScanned() != 11 {
		t.Fatalf("RowsScanned = %d, want 11", b.RowsScanned())
	}
}

func TestCancellationObservedWithinCheckInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{}, nil)
	if err := b.CheckRow(); err != nil {
		t.Fatalf("before cancel: %v", err)
	}
	cancel()
	// The cancellation must surface within checkInterval checkpoints.
	for i := 0; i < checkInterval; i++ {
		if err := b.CheckRow(); err != nil {
			if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Fatalf("cancel error chain: %v", err)
			}
			return
		}
	}
	t.Fatalf("cancellation not observed within %d checkpoints", checkInterval)
}

func TestCheckObservesCancellationImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(ctx, Limits{}, nil)
	if err := b.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check on canceled ctx: got %v, want ErrCanceled", err)
	}
}

func TestDeadlineMapsToBudgetExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	b := New(ctx, Limits{}, nil)
	err := b.Check()
	if !errors.Is(err, ErrBudgetExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want ErrBudgetExceeded wrapping DeadlineExceeded", err)
	}
}

func TestFetchBudgetUsesDeltaFromCreation(t *testing.T) {
	stats := &storage.IOStats{}
	// Pre-existing fetches must not count against the statement.
	for i := 0; i < 5; i++ {
		addFetch(stats)
	}
	b := New(context.Background(), Limits{MaxPageFetches: 3}, stats)
	if err := b.Check(); err != nil {
		t.Fatalf("no fetches yet: %v", err)
	}
	for i := 0; i < 3; i++ {
		addFetch(stats)
	}
	if err := b.Check(); err != nil {
		t.Fatalf("at limit: %v", err)
	}
	addFetch(stats)
	if err := b.Check(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over limit: got %v, want ErrBudgetExceeded", err)
	}
}

func TestCtxErr(t *testing.T) {
	if err := CtxErr(context.Canceled); !errors.Is(err, ErrCanceled) {
		t.Fatalf("CtxErr(Canceled) = %v", err)
	}
	if err := CtxErr(context.DeadlineExceeded); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("CtxErr(DeadlineExceeded) = %v", err)
	}
}

// addFetch charges one buffer-pool miss to the shared counter, as
// BufferPool.Fetch does on a cold page.
func addFetch(stats *storage.IOStats) {
	before := stats.Snapshot().PageFetches
	disk := storage.NewDisk()
	pool := storage.NewBufferPool(disk, 4, stats)
	seg := storage.NewSegment(-1, disk)
	if _, err := seg.Insert(1, []byte{0}); err != nil {
		panic(err)
	}
	if _, err := pool.Fetch(seg.Pages()[0]); err != nil {
		panic(err)
	}
	if stats.Snapshot().PageFetches != before+1 {
		panic("addFetch did not record exactly one page fetch")
	}
}

package btree

// Bottom-up bulk loading for CREATE INDEX: System R built an index by
// scanning the relation, sorting the (key, TID) pairs, and writing packed
// leaf pages with the upper levels constructed above them — far fewer page
// splits (and a smaller NINDX) than tuple-at-a-time insertion.

import (
	"sort"

	"systemr/internal/storage"
)

// loadFill is the fraction of a node filled during bulk load, leaving slack
// for later insertions.
const loadFill = 0.9

// BulkLoad builds a tree from entries (not necessarily sorted; they are
// sorted here by key then TID). Exact (key, TID) duplicates are collapsed.
func BulkLoad(disk *storage.Disk, cfg Config, entries []Entry) *BTree {
	t := New(disk, cfg)
	if len(entries) == 0 {
		return t
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool { return compareEntries(sorted[i], sorted[j]) < 0 })
	// Collapse exact duplicates.
	dedup := sorted[:1]
	for _, e := range sorted[1:] {
		if compareEntries(dedup[len(dedup)-1], e) != 0 {
			dedup = append(dedup, e)
		}
	}

	perLeaf := int(float64(t.order) * loadFill)
	if perLeaf < 2 {
		perLeaf = 2
	}

	// Build packed leaves. The root leaf created by New becomes the first.
	var leaves []*node
	first := t.root
	first.entries = append(first.entries, dedup[:minInt(perLeaf, len(dedup))]...)
	leaves = append(leaves, first)
	for off := perLeaf; off < len(dedup); off += perLeaf {
		leaf := t.newNode(true)
		end := minInt(off+perLeaf, len(dedup))
		leaf.entries = append(leaf.entries, dedup[off:end]...)
		prev := leaves[len(leaves)-1]
		prev.next = leaf
		leaf.prev = prev
		leaves = append(leaves, leaf)
	}
	t.firstLeaf = leaves[0]
	t.entries = len(dedup)

	// Build internal levels until one root remains.
	level := leaves
	perNode := int(float64(t.order) * loadFill)
	if perNode < 2 {
		perNode = 2
	}
	height := 1
	for len(level) > 1 {
		var parents []*node
		for off := 0; off < len(level); off += perNode {
			end := minInt(off+perNode, len(level))
			p := t.newNode(false)
			p.children = append(p.children, level[off:end]...)
			for i := off + 1; i < end; i++ {
				p.keys = append(p.keys, firstEntry(level[i]))
			}
			parents = append(parents, p)
		}
		// A trailing parent with a single child would break the child-count
		// invariant for childIndex; merge it into its left sibling.
		if n := len(parents); n > 1 && len(parents[n-1].children) == 1 {
			last, prev := parents[n-1], parents[n-2]
			prev.keys = append(prev.keys, firstEntry(last.children[0]))
			prev.children = append(prev.children, last.children[0])
			parents = parents[:n-1]
			t.nodes--
		}
		level = parents
		height++
	}
	t.root = level[0]
	t.height = height
	return t
}

// firstEntry returns the smallest entry under n (leftmost descent).
func firstEntry(n *node) Entry {
	for !n.leaf {
		n = n.children[0]
	}
	return n.entries[0]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

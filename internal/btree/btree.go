// Package btree implements the B-tree indexes of the Research Storage System
// (Section 3): indexes "are implemented as B-trees, whose leaves are pages
// containing sets of (key, identifiers of tuples which contain that key)",
// with leaf pages chained together so that sequential NEXTs never touch upper
// levels of the tree.
//
// Nodes are Go structs, but every node is registered as a page with the
// simulated disk and every node visit during a scan is routed through the
// buffer pool, so NINDX (index page count) and measured index page fetches
// behave exactly as the paper's on-disk trees do. See DESIGN.md,
// "Substitutions".
package btree

import (
	"fmt"
	"sync"

	"systemr/internal/storage"
	"systemr/internal/value"
)

// Entry is one (key, tuple identifier) pair stored in a leaf.
type Entry struct {
	Key value.Row
	TID storage.TID
}

// compareEntries orders entries by key, breaking ties by TID so duplicate
// keys have a deterministic total order (required for exact-once deletion).
func compareEntries(a, b Entry) int {
	if c := value.CompareKey(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.TID.Less(b.TID):
		return -1
	case b.TID.Less(a.TID):
		return 1
	}
	return 0
}

// ComparePrefix compares a full key against a (possibly shorter) prefix,
// looking only at the prefix's columns. It returns 0 when the full key's
// leading columns equal the prefix — the matching rule behind the paper's
// "initial substring of the set of columns of the index key".
func ComparePrefix(full value.Row, prefix []value.Value) int {
	for i := range prefix {
		if i >= len(full) {
			return -1
		}
		if c := value.Compare(full[i], prefix[i]); c != 0 {
			return c
		}
	}
	return 0
}

type node struct {
	pageID   storage.PageID
	leaf     bool
	entries  []Entry // leaf only
	keys     []Entry // internal: keys[i] is the smallest entry under children[i+1]
	children []*node // internal only
	next     *node   // leaf chain
	prev     *node
}

// Config tunes node fan-out. Small orders are useful in tests to force deep
// trees; the default approximates 4K pages of ~20-byte entries.
type Config struct {
	// Order is the maximum number of entries (leaf) or children (internal)
	// per node. Minimum 4.
	Order int
}

// DefaultOrder approximates how many (key, TID) pairs fit a 4K index page.
const DefaultOrder = 200

// BTree is a B+-tree from composite keys to tuple identifiers.
//
// Concurrency: mutations take the tree-wide write lock and bump a version
// counter; Seek and Iterator.Next read under the shared lock. An iterator
// that observes a version change re-seeks from the last entry it returned
// (strictly greater), so MVCC snapshot scans survive concurrent inserts and
// deletes without ever seeing a torn node — at worst an entry inserted
// mid-scan behind the cursor is missed, which is fine: such entries belong
// to versions the scanning snapshot cannot see anyway.
type BTree struct {
	mu      sync.RWMutex
	version uint64
	disk    *storage.Disk
	order   int
	root    *node
	height  int
	entries int
	nodes   int
	// firstLeaf anchors the leaf chain for full scans.
	firstLeaf *node
}

// New creates an empty tree whose nodes are registered as pages on disk.
func New(disk *storage.Disk, cfg Config) *BTree {
	order := cfg.Order
	if order == 0 {
		order = DefaultOrder
	}
	if order < 4 {
		order = 4
	}
	t := &BTree{disk: disk, order: order, height: 1}
	t.root = t.newNode(true)
	t.firstLeaf = t.root
	return t
}

func (t *BTree) newNode(leaf bool) *node {
	t.nodes++
	return &node{pageID: t.disk.AllocVirtual(), leaf: leaf}
}

// Len returns the number of stored entries.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.entries
}

// NumPages returns NINDX: the number of index pages (nodes).
func (t *BTree) NumPages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes
}

// Height returns the number of levels (1 = just a root leaf).
func (t *BTree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Insert adds a (key, tid) pair. Duplicate keys are allowed; duplicate
// (key, tid) pairs are rejected.
func (t *BTree) Insert(key value.Row, tid storage.TID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Entry{Key: key.Clone(), TID: tid}
	mid, right, dup := t.insert(t.root, e)
	if dup {
		return false
	}
	t.version++
	if right != nil {
		newRoot := t.newNode(false)
		newRoot.children = []*node{t.root, right}
		newRoot.keys = []Entry{mid}
		t.root = newRoot
		t.height++
	}
	t.entries++
	return true
}

// insert descends into n; on split it returns the separator entry and the
// new right sibling.
func (t *BTree) insert(n *node, e Entry) (sep Entry, right *node, dup bool) {
	if n.leaf {
		i := lowerBound(n.entries, e)
		if i < len(n.entries) && compareEntries(n.entries[i], e) == 0 {
			return Entry{}, nil, true
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= t.order {
			return Entry{}, nil, false
		}
		// Split leaf.
		mid := len(n.entries) / 2
		r := t.newNode(true)
		r.entries = append(r.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid:mid]
		r.next = n.next
		if r.next != nil {
			r.next.prev = r
		}
		r.prev = n
		n.next = r
		return r.entries[0], r, false
	}
	ci := childIndex(n.keys, e)
	sep, rchild, dup := t.insert(n.children[ci], e)
	if dup || rchild == nil {
		return Entry{}, nil, dup
	}
	n.keys = append(n.keys, Entry{})
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = rchild
	if len(n.children) <= t.order {
		return Entry{}, nil, false
	}
	// Split internal node: middle key moves up.
	midK := len(n.keys) / 2
	up := n.keys[midK]
	r := t.newNode(false)
	r.keys = append(r.keys, n.keys[midK+1:]...)
	r.children = append(r.children, n.children[midK+1:]...)
	n.keys = n.keys[:midK:midK]
	n.children = n.children[: midK+1 : midK+1]
	return up, r, false
}

// lowerBound returns the first index i with entries[i] >= e.
func lowerBound(entries []Entry, e Entry) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		m := (lo + hi) / 2
		if compareEntries(entries[m], e) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// childIndex picks the child to descend into for entry e.
func childIndex(keys []Entry, e Entry) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := (lo + hi) / 2
		if compareEntries(keys[m], e) <= 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// Delete removes the exact (key, tid) pair, reporting whether it was found.
// Underflowing nodes are not rebalanced (a documented simplification: the
// paper's workloads are load-then-query); empty leaves are unlinked from the
// chain lazily by iteration.
func (t *BTree) Delete(key value.Row, tid storage.TID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Entry{Key: key, TID: tid}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, e)]
	}
	i := lowerBound(n.entries, e)
	if i >= len(n.entries) || compareEntries(n.entries[i], e) != 0 {
		return false
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	t.entries--
	t.version++
	return true
}

// seekLeaf descends to the leaf that may contain the first entry with
// key-prefix >= prefix, accounting every node touched through io.
func (t *BTree) seekLeaf(io storage.StmtIO, prefix []value.Value) (*node, int) {
	n := t.root
	probe := Entry{Key: value.Row(prefix)}
	for {
		io.Touch(n.pageID)
		if n.leaf {
			break
		}
		// Descend left of the first separator whose prefix-compare is >= 0 so
		// that duplicates of the boundary key in the left subtree are found.
		ci := len(n.keys)
		for i, k := range n.keys {
			if ComparePrefix(k.Key, prefix) >= 0 {
				ci = i
				break
			}
		}
		n = n.children[ci]
	}
	_ = probe
	i := 0
	for i < len(n.entries) && ComparePrefix(n.entries[i].Key, prefix) < 0 {
		i++
	}
	return n, i
}

// Iterator walks leaf entries in key order, accounting one page touch per
// leaf visited (the chained-leaf property: NEXTs never re-touch upper
// levels). Each Next runs under the tree's shared lock; when the tree's
// version has moved since the last call (a concurrent insert or delete), the
// iterator re-seeks to the first entry strictly greater than the last one it
// returned, so it never dereferences a node the mutation restructured.
type Iterator struct {
	io storage.StmtIO
	t  *BTree
	n  *node
	i  int

	ver     uint64
	prefix  []value.Value // the Seek prefix, for re-seeks before the first Next
	started bool          // an entry has been returned; last is valid
	last    Entry
}

// Seek returns an iterator positioned at the first entry whose key has
// prefix >= the given prefix (nil or empty prefix = the first entry).
// Page touches are accounted through io — a statement-scoped view so
// concurrent statements' index descents stay separately attributed; the zero
// StmtIO walks without accounting (catalog probes).
func (t *BTree) Seek(io storage.StmtIO, prefix []value.Value) *Iterator {
	t.mu.RLock()
	defer t.mu.RUnlock()
	it := &Iterator{io: io, t: t, ver: t.version,
		prefix: append([]value.Value(nil), prefix...)}
	it.position()
	return it
}

// position seats the iterator at the first entry matching its prefix.
// Called with the tree's read lock held.
func (it *Iterator) position() {
	t := it.t
	if len(it.prefix) == 0 {
		// Locating the first leaf still costs a root-to-leaf descent.
		for d, c := 0, t.root; d < t.height; d++ {
			it.io.Touch(c.pageID)
			if !c.leaf {
				c = c.children[0]
			}
		}
		it.n, it.i = t.firstLeaf, 0
		it.skipEmpty(false)
		return
	}
	it.n, it.i = t.seekLeaf(it.io, it.prefix)
	it.skipEmpty(true)
}

// reseek re-seats a live iterator after a concurrent tree mutation: a fresh
// root-to-leaf descent to the first entry strictly greater than the last
// entry returned. Called with the tree's read lock held.
func (it *Iterator) reseek() {
	n := it.t.root
	for {
		it.io.Touch(n.pageID)
		if n.leaf {
			break
		}
		n = n.children[childIndex(n.keys, it.last)]
	}
	i := lowerBound(n.entries, it.last)
	if i < len(n.entries) && compareEntries(n.entries[i], it.last) == 0 {
		i++
	}
	it.n, it.i = n, i
	it.skipEmpty(true)
}

// skipEmpty advances past exhausted leaves. touched reports whether the
// current leaf was already accounted.
func (it *Iterator) skipEmpty(touched bool) {
	for it.n != nil && it.i >= len(it.n.entries) {
		it.n = it.n.next
		it.i = 0
		touched = false
	}
	if it.n != nil && !touched {
		it.io.Touch(it.n.pageID)
	}
}

// Next returns the entry under the cursor and advances. ok is false at end.
// The returned entry is safe to use after the call: entry keys are immutable
// once stored, and mutations shift entry structs without touching key
// contents.
func (it *Iterator) Next() (Entry, bool) {
	it.t.mu.RLock()
	defer it.t.mu.RUnlock()
	if it.ver != it.t.version {
		it.ver = it.t.version
		if it.started {
			it.reseek()
		} else {
			it.position()
		}
	}
	if it.n == nil || it.i >= len(it.n.entries) {
		return Entry{}, false
	}
	e := it.n.entries[it.i]
	it.i++
	if it.i >= len(it.n.entries) {
		it.n = it.n.next
		it.i = 0
		if it.n != nil {
			it.io.Touch(it.n.pageID)
		}
		it.skipEmpty(true)
	}
	it.last = e
	it.started = true
	return e, true
}

// Stats scans the tree (without I/O accounting) and returns the statistics
// Section 4 keeps per index: ICARD (distinct full keys), the distinct count
// of the leading key column (used for "1/ICARD(column index)" selectivities
// on the major column), NINDX (pages), and the minimum and maximum value of
// the first key column, which feed the linear-interpolation selectivity of
// Table 1.
func (t *BTree) Stats() (icard, icardLead, nindx int, low, high value.Value) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	nindx = t.nodes
	var prev value.Row
	first := true
	for n := t.firstLeaf; n != nil; n = n.next {
		for _, e := range n.entries {
			if first {
				low = e.Key[0]
				icard = 1
				icardLead = 1
				prev = e.Key
				first = false
				continue
			}
			if value.CompareKey(e.Key, prev) != 0 {
				icard++
				if value.Compare(e.Key[0], prev[0]) != 0 {
					icardLead++
				}
				prev = e.Key
			}
		}
	}
	if !first {
		// Highest first-column value: last entry of last non-empty leaf.
		for n := t.firstLeaf; n != nil; n = n.next {
			if len(n.entries) > 0 {
				high = n.entries[len(n.entries)-1].Key[0]
			}
		}
	}
	return icard, icardLead, nindx, low, high
}

// Validate checks structural invariants: sorted leaves, correct entry count,
// consistent leaf chain. Tests call it after randomized workloads.
func (t *BTree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	count := 0
	var prev *Entry
	for n := t.firstLeaf; n != nil; n = n.next {
		for i := range n.entries {
			e := &n.entries[i]
			if prev != nil && compareEntries(*prev, *e) >= 0 {
				return fmt.Errorf("btree: leaf entries out of order: %v !< %v", prev.Key, e.Key)
			}
			prev = e
			count++
		}
		if n.next != nil && n.next.prev != n {
			return fmt.Errorf("btree: broken leaf chain at page %d", n.pageID)
		}
	}
	if count != t.entries {
		return fmt.Errorf("btree: entry count %d != leaf total %d", t.entries, count)
	}
	return nil
}

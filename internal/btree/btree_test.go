package btree

import (
	"math/rand"
	"sort"
	"testing"

	"systemr/internal/storage"
	"systemr/internal/value"
)

func key(vs ...int64) value.Row {
	row := make(value.Row, len(vs))
	for i, v := range vs {
		row[i] = value.NewInt(v)
	}
	return row
}

func tid(n int) storage.TID { return storage.TID{Page: storage.PageID(n / 100), Slot: uint16(n % 100)} }

func newTestTree(order int) (*BTree, *storage.Disk) {
	disk := storage.NewDisk()
	return New(disk, Config{Order: order}), disk
}

func TestInsertAndIterate(t *testing.T) {
	tree, _ := newTestTree(4) // tiny order forces deep trees
	const n = 500
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if !tree.Insert(key(int64(i)), tid(i)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if tree.Len() != n {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	it := tree.Seek(storage.StmtIO{}, nil)
	for want := 0; want < n; want++ {
		e, ok := it.Next()
		if !ok {
			t.Fatalf("iterator ended early at %d", want)
		}
		if e.Key[0].Int != int64(want) {
			t.Fatalf("want %d, got %d", want, e.Key[0].Int)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator should be exhausted")
	}
	if tree.Height() < 3 {
		t.Fatalf("500 keys at order 4 should be deep, height=%d", tree.Height())
	}
}

func TestDuplicateKeysAndExactDuplicates(t *testing.T) {
	tree, _ := newTestTree(4)
	for i := 0; i < 50; i++ {
		if !tree.Insert(key(7), tid(i)) {
			t.Fatalf("duplicate key with distinct TID must insert (%d)", i)
		}
	}
	if tree.Insert(key(7), tid(3)) {
		t.Fatal("exact (key,tid) duplicate must be rejected")
	}
	if tree.Len() != 50 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestSeekPrefix(t *testing.T) {
	tree, _ := newTestTree(4)
	// Composite keys (i, j) for i in 0..9, j in 0..9.
	for i := int64(0); i < 10; i++ {
		for j := int64(0); j < 10; j++ {
			tree.Insert(key(i, j), tid(int(i*10+j)))
		}
	}
	it := tree.Seek(storage.StmtIO{}, []value.Value{value.NewInt(4)})
	count := 0
	for {
		e, ok := it.Next()
		if !ok || e.Key[0].Int != 4 {
			break
		}
		count++
	}
	if count != 10 {
		t.Fatalf("prefix seek found %d entries with leading key 4, want 10", count)
	}
	// Full-key seek.
	it = tree.Seek(storage.StmtIO{}, []value.Value{value.NewInt(4), value.NewInt(7)})
	e, ok := it.Next()
	if !ok || e.Key[0].Int != 4 || e.Key[1].Int != 7 {
		t.Fatalf("full-key seek landed on %v", e.Key)
	}
	// Seek past the end.
	it = tree.Seek(storage.StmtIO{}, []value.Value{value.NewInt(99)})
	if _, ok := it.Next(); ok {
		t.Fatal("seek past end should be empty")
	}
}

func TestDeleteAgainstOracle(t *testing.T) {
	tree, _ := newTestTree(6)
	rnd := rand.New(rand.NewSource(2))
	type entry struct {
		k int64
		t storage.TID
	}
	var oracle []entry
	for i := 0; i < 400; i++ {
		k := int64(rnd.Intn(60))
		e := entry{k: k, t: tid(i)}
		oracle = append(oracle, e)
		tree.Insert(key(k), e.t)
	}
	// Delete a random half.
	rnd.Shuffle(len(oracle), func(i, j int) { oracle[i], oracle[j] = oracle[j], oracle[i] })
	half := len(oracle) / 2
	for _, e := range oracle[:half] {
		if !tree.Delete(key(e.k), e.t) {
			t.Fatalf("delete of existing entry (%d,%v) failed", e.k, e.t)
		}
	}
	if tree.Delete(key(oracle[0].k), oracle[0].t) {
		t.Fatal("deleting twice must fail")
	}
	remaining := oracle[half:]
	sort.Slice(remaining, func(i, j int) bool {
		if remaining[i].k != remaining[j].k {
			return remaining[i].k < remaining[j].k
		}
		return remaining[i].t.Less(remaining[j].t)
	})
	it := tree.Seek(storage.StmtIO{}, nil)
	for i, e := range remaining {
		got, ok := it.Next()
		if !ok {
			t.Fatalf("tree ended at %d of %d", i, len(remaining))
		}
		if got.Key[0].Int != e.k || got.TID != e.t {
			t.Fatalf("entry %d: got (%d,%v), want (%d,%v)", i, got.Key[0].Int, got.TID, e.k, e.t)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("extra entries after oracle exhausted")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	tree, _ := newTestTree(4)
	for i := 0; i < 100; i++ {
		tree.Insert(key(int64(i%25)), tid(i)) // 25 distinct keys, 4 dups each
	}
	icard, icardLead, nindx, low, high := tree.Stats()
	if icard != 25 || icardLead != 25 {
		t.Fatalf("ICARD=%d lead=%d, want 25", icard, icardLead)
	}
	if nindx != tree.NumPages() || nindx < 2 {
		t.Fatalf("NINDX=%d NumPages=%d", nindx, tree.NumPages())
	}
	if low.Int != 0 || high.Int != 24 {
		t.Fatalf("low=%v high=%v", low, high)
	}
}

func TestStatsCompositeLeadingColumn(t *testing.T) {
	tree, _ := newTestTree(8)
	for i := int64(0); i < 5; i++ {
		for j := int64(0); j < 20; j++ {
			tree.Insert(key(i, j), tid(int(i*100+j)))
		}
	}
	icard, icardLead, _, _, _ := tree.Stats()
	if icard != 100 {
		t.Fatalf("composite ICARD=%d, want 100", icard)
	}
	if icardLead != 5 {
		t.Fatalf("leading-column ICARD=%d, want 5", icardLead)
	}
}

func TestPageAccounting(t *testing.T) {
	disk := storage.NewDisk()
	tree := New(disk, Config{Order: 4})
	for i := 0; i < 200; i++ {
		tree.Insert(key(int64(i)), tid(i))
	}
	stats := &storage.IOStats{}
	pool := storage.NewBufferPool(disk, 1000, stats)

	// A point seek touches one node per level.
	// Boundary keys may step into the following leaf, so allow height+1.
	tree.Seek(pool.View(nil), []value.Value{value.NewInt(150)})
	descent := stats.Snapshot().LogicalReads
	if descent < int64(tree.Height()) || descent > int64(tree.Height())+1 {
		t.Fatalf("descent touched %d pages, height is %d", descent, tree.Height())
	}

	// A full scan touches each leaf exactly once after the initial descent
	// (chained leaves: NEXT never re-touches upper levels).
	stats.Reset()
	pool.Flush()
	it := tree.Seek(pool.View(nil), nil)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	reads := stats.Snapshot().LogicalReads
	max := int64(tree.NumPages())
	if reads > max {
		t.Fatalf("full scan touched %d pages, tree has only %d", reads, max)
	}
	if reads < int64(tree.Height()) {
		t.Fatalf("full scan touched only %d pages", reads)
	}
}

func TestEmptyTree(t *testing.T) {
	tree, _ := newTestTree(4)
	if _, ok := tree.Seek(storage.StmtIO{}, nil).Next(); ok {
		t.Fatal("empty tree must iterate nothing")
	}
	if tree.Delete(key(1), tid(1)) {
		t.Fatal("delete on empty tree must fail")
	}
	icard, icardLead, nindx, _, _ := tree.Stats()
	if icard != 0 || icardLead != 0 || nindx != 1 {
		t.Fatalf("empty stats: %d %d %d", icard, icardLead, nindx)
	}
}

func TestComparePrefix(t *testing.T) {
	full := value.Row{value.NewInt(3), value.NewInt(7)}
	if ComparePrefix(full, []value.Value{value.NewInt(3)}) != 0 {
		t.Fatal("prefix match")
	}
	if ComparePrefix(full, []value.Value{value.NewInt(4)}) >= 0 {
		t.Fatal("full < prefix")
	}
	if ComparePrefix(full, []value.Value{value.NewInt(3), value.NewInt(6)}) <= 0 {
		t.Fatal("full > prefix on second column")
	}
	if ComparePrefix(full, nil) != 0 {
		t.Fatal("empty prefix matches everything")
	}
}

func TestMixedTypeKeys(t *testing.T) {
	tree, _ := newTestTree(4)
	tree.Insert(value.Row{value.NewString("bob")}, tid(1))
	tree.Insert(value.Row{value.NewString("alice")}, tid(2))
	tree.Insert(value.Row{value.NewString("carol")}, tid(3))
	it := tree.Seek(storage.StmtIO{}, []value.Value{value.NewString("b")})
	e, ok := it.Next()
	if !ok || e.Key[0].Str != "bob" {
		t.Fatalf("string seek landed on %v", e.Key)
	}
}

func TestBulkLoadMatchesIncrementalBuild(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	var entries []Entry
	for i := 0; i < 3000; i++ {
		entries = append(entries, Entry{Key: key(int64(rnd.Intn(500))), TID: tid(i)})
	}
	// Include exact duplicates to exercise collapsing.
	entries = append(entries, entries[0], entries[1])

	incDisk := storage.NewDisk()
	inc := New(incDisk, Config{Order: 16})
	for _, e := range entries {
		inc.Insert(e.Key, e.TID)
	}
	bulk := BulkLoad(storage.NewDisk(), Config{Order: 16}, entries)

	if bulk.Len() != inc.Len() {
		t.Fatalf("entry counts differ: bulk %d, incremental %d", bulk.Len(), inc.Len())
	}
	if err := bulk.Validate(); err != nil {
		t.Fatal(err)
	}
	itA, itB := bulk.Seek(storage.StmtIO{}, nil), inc.Seek(storage.StmtIO{}, nil)
	for {
		a, okA := itA.Next()
		b, okB := itB.Next()
		if okA != okB {
			t.Fatal("iteration lengths differ")
		}
		if !okA {
			break
		}
		if compareEntries(a, b) != 0 {
			t.Fatalf("entries differ: %v vs %v", a, b)
		}
	}
	// Packed pages: the bulk-loaded tree must not be larger.
	if bulk.NumPages() > inc.NumPages() {
		t.Fatalf("bulk load produced more pages (%d) than incremental (%d)",
			bulk.NumPages(), inc.NumPages())
	}
	// Later insertions still work.
	bulk.Insert(key(100000), tid(99999))
	if err := bulk.Validate(); err != nil {
		t.Fatal(err)
	}
	ic, _, _, _, hi := bulk.Stats()
	if hi.Int != 100000 || ic == 0 {
		t.Fatalf("stats after post-load insert: %d %v", ic, hi)
	}
}

func TestBulkLoadEdgeSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 16, 17, 255, 256, 257} {
		var entries []Entry
		for i := 0; i < n; i++ {
			entries = append(entries, Entry{Key: key(int64(i)), TID: tid(i)})
		}
		tree := BulkLoad(storage.NewDisk(), Config{Order: 4}, entries)
		if tree.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tree.Len())
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Every key findable via point seek.
		for i := 0; i < n; i++ {
			it := tree.Seek(storage.StmtIO{}, key(int64(i)))
			e, ok := it.Next()
			if !ok || e.Key[0].Int != int64(i) {
				t.Fatalf("n=%d: key %d not found", n, i)
			}
		}
	}
}

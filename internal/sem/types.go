// Package sem performs the semantic-analysis half of the paper's OPTIMIZER
// component (Section 2): it looks up the tables and columns referenced by a
// query block in the catalogs, checks type compatibility, converts the WHERE
// tree to conjunctive normal form — every conjunct being a "boolean factor" —
// and classifies each factor: sargable predicates (expressible as RSS search
// arguments), equi-join predicates, and residual predicates. The access-path
// selection proper (package core) consumes this analyzed form.
package sem

import (
	"fmt"
	"math/bits"
	"strings"

	"systemr/internal/catalog"
	"systemr/internal/value"
)

// MaxRels is the maximum number of relations in one query block's FROM list.
const MaxRels = 30

// RelSet is a bitset over the relations of one query block.
type RelSet uint32

// Set returns s with relation i added.
func (s RelSet) Set(i int) RelSet { return s | 1<<uint(i) }

// Has reports whether relation i is in the set.
func (s RelSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Union returns the union of two sets.
func (s RelSet) Union(o RelSet) RelSet { return s | o }

// Contains reports whether o ⊆ s.
func (s RelSet) Contains(o RelSet) bool { return s&o == o }

// Count returns the number of relations in the set.
func (s RelSet) Count() int { return bits.OnesCount32(uint32(s)) }

// Single returns the lone relation index; Count must be 1.
func (s RelSet) Single() int { return bits.TrailingZeros32(uint32(s)) }

// Members returns the relation indexes in ascending order.
func (s RelSet) Members() []int {
	out := make([]int, 0, s.Count())
	for i := 0; i < 32; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// ColumnID names one column of one FROM-list relation of a query block.
type ColumnID struct {
	Rel int // index into Block.Rels
	Col int // column ordinal within the relation
}

// RelRef is one FROM-list entry after catalog lookup.
type RelRef struct {
	Idx   int
	Table *catalog.Table
	Name  string // correlation name: the alias, or the table name
}

// ColName renders rel.col for display.
func (b *Block) ColName(id ColumnID) string {
	r := b.Rels[id.Rel]
	return r.Name + "." + r.Table.Columns[id.Col].Name
}

// ColType returns the declared type of a column.
func (b *Block) ColType(id ColumnID) value.Kind {
	return b.Rels[id.Rel].Table.Columns[id.Col].Type
}

// Expr is a resolved, type-checked expression.
type Expr interface {
	Type() value.Kind
	String() string
	semExpr()
}

// Col is a reference to a column of this block's FROM list.
type Col struct {
	ID   ColumnID
	Name string // display name rel.col
	Typ  value.Kind
}

// Const is a literal constant.
type Const struct{ Val value.Value }

// Param is a runtime parameter: a correlation reference bound by an outer
// query block (Section 6), or a slot the optimizer binds (join values,
// evaluated subquery results).
type Param struct {
	ID   int
	Typ  value.Kind
	Name string // display, e.g. "X.MANAGER"
}

// Bin is a binary operation: arithmetic, comparison, or AND/OR. The Op uses
// the parser's operator enumeration.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// BinOp mirrors sql.BinOp to keep sem free of a parser dependency in its
// public surface.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the SQL spelling.
func (op BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}[op]
}

// IsComparison reports whether op is one of the six scalar comparisons.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// CmpOp converts to the value-level comparison operator.
func (op BinOp) CmpOp() value.CmpOp {
	return [...]value.CmpOp{0, 0, 0, 0, value.OpEq, value.OpNe, value.OpLt, value.OpLe, value.OpGt, value.OpGe}[op]
}

// Not is logical negation.
type Not struct{ E Expr }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

// Between is E [NOT] BETWEEN Lo AND Hi.
type Between struct {
	E, Lo, Hi Expr
	Negated   bool
}

// InList is E [NOT] IN (e1, ..., en).
type InList struct {
	E       Expr
	List    []Expr
	Negated bool
}

// InSub is E [NOT] IN (subquery).
type InSub struct {
	E       Expr
	Sub     *Subquery
	Negated bool
}

// ScalarSub is a subquery used as a scalar operand; it must return a single
// value (Section 6).
type ScalarSub struct{ Sub *Subquery }

// AggRef refers to the block's i-th aggregate output.
type AggRef struct {
	Idx  int
	Typ  value.Kind
	Name string
}

func (*Col) semExpr()       {}
func (*Const) semExpr()     {}
func (*Param) semExpr()     {}
func (*Bin) semExpr()       {}
func (*Not) semExpr()       {}
func (*Neg) semExpr()       {}
func (*Between) semExpr()   {}
func (*InList) semExpr()    {}
func (*InSub) semExpr()     {}
func (*ScalarSub) semExpr() {}
func (*AggRef) semExpr()    {}

// Type implementations.

func (e *Col) Type() value.Kind   { return e.Typ }
func (e *Const) Type() value.Kind { return e.Val.Kind }
func (e *Param) Type() value.Kind { return e.Typ }

func (e *Bin) Type() value.Kind {
	if e.Op.IsComparison() || e.Op == OpAnd || e.Op == OpOr {
		return value.KindInt // boolean as 0/1
	}
	if e.L.Type() == value.KindFloat || e.R.Type() == value.KindFloat {
		return value.KindFloat
	}
	return e.L.Type()
}

func (e *Not) Type() value.Kind       { return value.KindInt }
func (e *Neg) Type() value.Kind       { return e.E.Type() }
func (e *Between) Type() value.Kind   { return value.KindInt }
func (e *InList) Type() value.Kind    { return value.KindInt }
func (e *InSub) Type() value.Kind     { return value.KindInt }
func (e *ScalarSub) Type() value.Kind { return e.Sub.Block.Select[0].Type() }
func (e *AggRef) Type() value.Kind    { return e.Typ }

// String implementations (EXPLAIN display form).

func (e *Col) String() string   { return e.Name }
func (e *Const) String() string { return e.Val.SQL() }
func (e *Param) String() string {
	if e.Name != "" {
		return "$" + e.Name
	}
	return fmt.Sprintf("$%d", e.ID)
}

func (e *Bin) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

func (e *Not) String() string { return "NOT " + e.E.String() }
func (e *Neg) String() string { return "-" + e.E.String() }

func (e *Between) String() string {
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return e.E.String() + " " + not + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String()
}

func (e *InList) String() string {
	parts := make([]string, len(e.List))
	for i, v := range e.List {
		parts[i] = v.String()
	}
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return e.E.String() + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

func (e *InSub) String() string {
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sIN (subquery#%d)", e.E.String(), not, e.Sub.ID)
}

func (e *ScalarSub) String() string { return fmt.Sprintf("(subquery#%d)", e.Sub.ID) }
func (e *AggRef) String() string    { return e.Name }

// Agg is one aggregate computed by the block.
type Agg struct {
	Name string // COUNT, SUM, AVG, MIN, MAX
	Arg  Expr   // nil for COUNT(*)
	Star bool
	Typ  value.Kind
}

// String renders the aggregate call.
func (a *Agg) String() string {
	if a.Star {
		return a.Name + "(*)"
	}
	return a.Name + "(" + a.Arg.String() + ")"
}

// Subquery is a nested query block appearing in a predicate (Section 6).
type Subquery struct {
	ID         int
	Block      *Block
	Scalar     bool // single-value (comparison operand) vs set (IN operand)
	Correlated bool // references values from an outer block
}

// CorrelRef describes one parameter of a block that is bound by its parent:
// either from a column of the parent's candidate tuple, or forwarded from
// one of the parent's own parameters (the paper's level-3-references-level-1
// case flows through the intermediate block).
type CorrelRef struct {
	ParamID     int      // slot in this block's parameter array
	FromCol     ColumnID // valid when !FromParam
	FromParam   bool
	ParentParam int // parent's slot when FromParam
}

// OrderKey is one element of an ordering specification: a column and a
// direction.
type OrderKey struct {
	Col  ColumnID
	Desc bool
}

// BoolFactor is one conjunct of the WHERE tree in conjunctive normal form.
// "Boolean factors are notable because every tuple returned to the user must
// satisfy every boolean factor."
type BoolFactor struct {
	Expr Expr   // full predicate, used for residual evaluation and selectivity
	Rels RelSet // relations of this block referenced

	// UsesParam is true when the factor references correlation parameters.
	UsesParam bool
	// Subs are the subqueries referenced by the factor.
	Subs []*Subquery

	// Simple is non-nil when the factor is a single sargable predicate
	// "column comparison-operator value" in interval form, usable both as an
	// index start/stop key and as a search argument.
	Simple *SimplePred

	// EquiJoin is non-nil when the factor is T1.c1 = T2.c2 over two distinct
	// relations: a join predicate whose columns join an order-equivalence
	// class.
	EquiJoin *EquiJoinPred

	// SargDNF is non-nil when the whole factor is expressible as a search
	// argument: a boolean combination of sargable predicates on a single
	// relation, in disjunctive normal form (possibly headed by an OR).
	SargDNF [][]SargTerm
}

// String renders the factor.
func (f *BoolFactor) String() string { return f.Expr.String() }

// Bound is a value that may only be known at runtime: a constant, a
// correlation/optimizer parameter, or the result of a non-correlated
// subquery evaluated before the scan opens.
type Bound struct {
	Kind  BoundKind
	Val   value.Value // BoundConst
	Param int         // BoundParam
	Sub   *Subquery   // BoundSub (scalar)
}

// BoundKind discriminates Bound.
type BoundKind uint8

// Bound kinds.
const (
	BoundConst BoundKind = iota
	BoundParam
	BoundSub
)

// String renders the bound.
func (b Bound) String() string {
	switch b.Kind {
	case BoundConst:
		return b.Val.SQL()
	case BoundParam:
		return fmt.Sprintf("$%d", b.Param)
	default:
		return fmt.Sprintf("(subquery#%d)", b.Sub.ID)
	}
}

// IsConst reports whether the bound is a compile-time constant.
func (b Bound) IsConst() bool { return b.Kind == BoundConst }

// SimplePred is a sargable predicate in interval form on one column:
//
//	=  v      → Lo = Hi = v, both inclusive
//	>  v      → Lo = v exclusive
//	BETWEEN   → Lo, Hi inclusive
//	<> v      → Ne set (a search argument but never an index bound)
type SimplePred struct {
	Col          ColumnID
	Lo, Hi       *Bound
	LoInc, HiInc bool
	Ne           *Bound // non-nil for <> predicates
}

// IsEq reports whether the predicate is an equality.
func (p *SimplePred) IsEq() bool {
	return p.Ne == nil && p.Lo != nil && p.Hi != nil && p.Lo == p.Hi
}

// EquiJoinPred is Left = Right across two relations.
type EquiJoinPred struct {
	Left, Right ColumnID
}

// SargDNF is a search argument: disjunctive normal form over sargable terms.
type SargDNF = [][]SargTerm

// SargTerm is one sargable comparison inside a factor's DNF.
type SargTerm struct {
	Col ColumnID
	Op  value.CmpOp
	Val Bound
}

// Block is one analyzed query block.
type Block struct {
	Rels    []*RelRef
	Factors []*BoolFactor

	// Select holds the output expressions; for aggregated blocks they are in
	// terms of AggRef and group columns.
	Select      []Expr
	SelectNames []string

	GroupBy []ColumnID
	// Having holds the post-grouping filter's conjuncts, each over group
	// columns and aggregate results (an extension beyond the 1979 paper;
	// SEQUEL 2 had HAVING).
	Having   []Expr
	OrderBy  []OrderKey
	Aggs     []*Agg
	HasAgg   bool
	Distinct bool

	// Subqueries contained anywhere in this block (not in nested blocks).
	Subqueries []*Subquery

	// HostRefs maps host-variable indexes ('?' positions in the statement)
	// to this block's parameter slots. Only the outermost block binds host
	// variables directly; nested blocks receive them as pass-through
	// correlation parameters.
	HostRefs map[int]int

	// CorrelRefs are this block's parameters bound by the parent block.
	CorrelRefs []CorrelRef
	// NumParams is the parameter-array size required by CorrelRefs; the
	// optimizer may extend the array with additional slots.
	NumParams int

	Parent *Block
}

// RelByName finds a FROM-list relation by correlation name.
func (b *Block) RelByName(name string) *RelRef {
	up := strings.ToUpper(name)
	for _, r := range b.Rels {
		if r.Name == up {
			return r
		}
	}
	return nil
}

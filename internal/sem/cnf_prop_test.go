package sem

// Property test: the NOT-pushdown normalization and the split into boolean
// factors preserve boolean semantics. Random predicate trees over constant
// leaves are evaluated directly and compared against the conjunction of the
// factors produced from the normalized tree.

import (
	"math/rand"
	"testing"

	"systemr/internal/value"
)

// constLeaf builds a predicate with a fixed truth value: (1 = 1) or (1 = 2).
func constLeaf(val bool) Expr {
	one := &Const{Val: value.NewInt(1)}
	r := &Const{Val: value.NewInt(2)}
	if val {
		r = &Const{Val: value.NewInt(1)}
	}
	return &Bin{Op: OpEq, L: one, R: r}
}

// randomPredTree builds a random tree of AND/OR/NOT over constant leaves,
// returning the tree and its ground-truth value.
func randomPredTree(rnd *rand.Rand, depth int) (Expr, bool) {
	if depth == 0 || rnd.Intn(3) == 0 {
		v := rnd.Intn(2) == 0
		return constLeaf(v), v
	}
	switch rnd.Intn(3) {
	case 0:
		l, lv := randomPredTree(rnd, depth-1)
		r, rv := randomPredTree(rnd, depth-1)
		return &Bin{Op: OpAnd, L: l, R: r}, lv && rv
	case 1:
		l, lv := randomPredTree(rnd, depth-1)
		r, rv := randomPredTree(rnd, depth-1)
		return &Bin{Op: OpOr, L: l, R: r}, lv || rv
	default:
		e, v := randomPredTree(rnd, depth-1)
		return &Not{E: e}, !v
	}
}

// evalConstPred evaluates a constant predicate tree (AND/OR/NOT over
// comparisons of constants, including negated comparisons produced by
// pushNot).
func evalConstPred(t *testing.T, e Expr) bool {
	switch x := e.(type) {
	case *Bin:
		switch {
		case x.Op == OpAnd:
			return evalConstPred(t, x.L) && evalConstPred(t, x.R)
		case x.Op == OpOr:
			return evalConstPred(t, x.L) || evalConstPred(t, x.R)
		case x.Op.IsComparison():
			l := x.L.(*Const).Val
			r := x.R.(*Const).Val
			return x.Op.CmpOp().Apply(l, r)
		}
	case *Not:
		return !evalConstPred(t, x.E)
	}
	t.Fatalf("unexpected node %T", e)
	return false
}

func TestPushNotPreservesSemantics(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		tree, want := randomPredTree(rnd, 5)
		norm := pushNot(tree, false)
		if got := evalConstPred(t, norm); got != want {
			t.Fatalf("trial %d: normalized tree evaluates %v, want %v", trial, got, want)
		}
		// The conjunction of the boolean factors equals the whole predicate.
		all := true
		for _, conj := range conjuncts(norm) {
			all = all && evalConstPred(t, conj)
		}
		if all != want {
			t.Fatalf("trial %d: factor conjunction %v, want %v", trial, all, want)
		}
	}
}

func TestConjunctsFlattenOnlyTopLevelAnds(t *testing.T) {
	a, b, c := constLeaf(true), constLeaf(false), constLeaf(true)
	tree := &Bin{Op: OpAnd, L: a, R: &Bin{Op: OpAnd, L: b, R: c}}
	if got := len(conjuncts(tree)); got != 3 {
		t.Fatalf("nested ANDs flatten to %d factors", got)
	}
	or := &Bin{Op: OpOr, L: a, R: b}
	if got := len(conjuncts(or)); got != 1 {
		t.Fatalf("OR stays one factor, got %d", got)
	}
	mixed := &Bin{Op: OpAnd, L: or, R: c}
	if got := len(conjuncts(mixed)); got != 2 {
		t.Fatalf("mixed tree: %d factors", got)
	}
}

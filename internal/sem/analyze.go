package sem

import (
	"fmt"
	"strings"

	"systemr/internal/catalog"
	"systemr/internal/sql"
	"systemr/internal/value"
)

// Analyze resolves and type-checks one SELECT statement against the catalog
// and returns its analyzed query block (with nested blocks linked in).
func Analyze(sel *sql.SelectStmt, cat *catalog.Catalog) (*Block, error) {
	counter := 0
	a := &analyzer{cat: cat, subID: &counter}
	return a.analyzeSelect(sel)
}

// analyzer carries the scope chain: parent points at the enclosing block's
// analyzer for correlation resolution.
type analyzer struct {
	cat    *catalog.Catalog
	block  *Block
	parent *analyzer
	subID  *int
}

func (a *analyzer) analyzeSelect(sel *sql.SelectStmt) (*Block, error) {
	b := &Block{Distinct: sel.Distinct}
	a.block = b
	if a.parent != nil {
		b.Parent = a.parent.block
	}

	// FROM list: catalog lookup.
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("semantic error: empty FROM list")
	}
	if len(sel.From) > MaxRels {
		return nil, fmt.Errorf("semantic error: at most %d relations per query block", MaxRels)
	}
	seen := map[string]bool{}
	for i, ref := range sel.From {
		t, ok := a.cat.Table(ref.Table)
		if !ok {
			return nil, fmt.Errorf("semantic error: table %s does not exist", ref.Table)
		}
		name := strings.ToUpper(ref.Name())
		if seen[name] {
			return nil, fmt.Errorf("semantic error: duplicate relation name %s in FROM list", name)
		}
		seen[name] = true
		b.Rels = append(b.Rels, &RelRef{Idx: i, Table: t, Name: name})
	}

	// WHERE: resolve, normalize NOTs, split into boolean factors, classify.
	if sel.Where != nil {
		w, err := a.resolveExpr(sel.Where, false)
		if err != nil {
			return nil, err
		}
		if err := requireBoolean(w); err != nil {
			return nil, err
		}
		norm := pushNot(w, false)
		for _, conj := range conjuncts(norm) {
			b.Factors = append(b.Factors, a.classify(conj))
		}
	}

	// GROUP BY columns must be plain column references.
	for _, g := range sel.GroupBy {
		cr, ok := g.(*sql.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("semantic error: GROUP BY supports only column references, not %s", g)
		}
		col, err := a.resolveOwnColumn(cr)
		if err != nil {
			return nil, err
		}
		b.GroupBy = append(b.GroupBy, col.ID)
	}

	// Aggregation detection.
	for _, item := range sel.Items {
		if item.Star {
			continue
		}
		if containsAggregate(item.Expr) {
			b.HasAgg = true
		}
	}
	if len(b.GroupBy) > 0 {
		b.HasAgg = true
	}

	// SELECT list.
	for _, item := range sel.Items {
		if item.Star {
			if b.HasAgg {
				return nil, fmt.Errorf("semantic error: SELECT * cannot be combined with aggregation")
			}
			rels := b.Rels
			if item.Expr != nil { // qualified star T.*
				qr := item.Expr.(*sql.ColumnRef)
				r := b.RelByName(qr.Table)
				if r == nil {
					return nil, fmt.Errorf("semantic error: unknown relation %s in %s.*", qr.Table, qr.Table)
				}
				rels = []*RelRef{r}
			}
			for _, r := range rels {
				for c := range r.Table.Columns {
					id := ColumnID{Rel: r.Idx, Col: c}
					b.Select = append(b.Select, &Col{ID: id, Name: b.ColName(id), Typ: b.ColType(id)})
					b.SelectNames = append(b.SelectNames, r.Table.Columns[c].Name)
				}
			}
			continue
		}
		e, err := a.resolveExpr(item.Expr, b.HasAgg)
		if err != nil {
			return nil, err
		}
		if b.HasAgg {
			if err := a.checkAggregated(e); err != nil {
				return nil, err
			}
		}
		name := item.Alias
		if name == "" {
			name = strings.ToUpper(item.Expr.String())
		}
		b.Select = append(b.Select, e)
		b.SelectNames = append(b.SelectNames, name)
	}
	if len(b.Select) == 0 {
		return nil, fmt.Errorf("semantic error: empty SELECT list")
	}

	// HAVING: a predicate over group columns and aggregates.
	if sel.Having != nil {
		if !b.HasAgg {
			return nil, fmt.Errorf("semantic error: HAVING requires GROUP BY or aggregates")
		}
		h, err := a.resolveExpr(sel.Having, true)
		if err != nil {
			return nil, err
		}
		if err := requireBoolean(h); err != nil {
			return nil, err
		}
		for _, conj := range conjuncts(pushNot(h, false)) {
			if err := a.checkAggregated(conj); err != nil {
				return nil, err
			}
			b.Having = append(b.Having, conj)
		}
	}

	// ORDER BY: plain columns of this block (for aggregated blocks, group-by
	// columns only — a 1979-era restriction we keep).
	for _, item := range sel.OrderBy {
		cr, ok := item.Expr.(*sql.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("semantic error: ORDER BY supports only column references, not %s", item.Expr)
		}
		col, err := a.resolveOwnColumn(cr)
		if err != nil {
			return nil, err
		}
		if b.HasAgg && !containsColumnID(b.GroupBy, col.ID) {
			return nil, fmt.Errorf("semantic error: ORDER BY column %s must appear in GROUP BY", col.Name)
		}
		b.OrderBy = append(b.OrderBy, OrderKey{Col: col.ID, Desc: item.Desc})
	}

	return b, nil
}

func containsColumnID(ids []ColumnID, id ColumnID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// resolveOwnColumn resolves a column reference strictly within this block.
func (a *analyzer) resolveOwnColumn(cr *sql.ColumnRef) (*Col, error) {
	e, err := a.resolveColumn(cr)
	if err != nil {
		return nil, err
	}
	col, ok := e.(*Col)
	if !ok {
		return nil, fmt.Errorf("semantic error: %s refers to an outer query block where a local column is required", cr)
	}
	return col, nil
}

// resolveColumn resolves a reference in this block's scope, walking outward
// for correlation (Section 6). A reference satisfied by an ancestor becomes a
// Param in this block, forwarded through intermediate blocks.
func (a *analyzer) resolveColumn(cr *sql.ColumnRef) (Expr, error) {
	b := a.block
	if cr.Table != "" {
		if r := b.RelByName(cr.Table); r != nil {
			c := r.Table.ColumnIndex(cr.Column)
			if c < 0 {
				return nil, fmt.Errorf("semantic error: column %s does not exist in %s", cr.Column, r.Name)
			}
			id := ColumnID{Rel: r.Idx, Col: c}
			return &Col{ID: id, Name: b.ColName(id), Typ: b.ColType(id)}, nil
		}
	} else {
		var found *Col
		for _, r := range b.Rels {
			if c := r.Table.ColumnIndex(cr.Column); c >= 0 {
				if found != nil {
					return nil, fmt.Errorf("semantic error: column %s is ambiguous", cr.Column)
				}
				id := ColumnID{Rel: r.Idx, Col: c}
				found = &Col{ID: id, Name: b.ColName(id), Typ: b.ColType(id)}
			}
		}
		if found != nil {
			return found, nil
		}
	}
	// Correlation: try the enclosing block.
	if a.parent == nil {
		return nil, fmt.Errorf("semantic error: column %s cannot be resolved", cr)
	}
	outer, err := a.parent.resolveColumn(cr)
	if err != nil {
		return nil, err
	}
	ref := CorrelRef{ParamID: a.block.NumParams}
	var typ value.Kind
	var name string
	switch oe := outer.(type) {
	case *Col:
		ref.FromCol = oe.ID
		typ, name = oe.Typ, oe.Name
	case *Param:
		ref.FromParam = true
		ref.ParentParam = oe.ID
		typ, name = oe.Typ, oe.Name
	default:
		return nil, fmt.Errorf("semantic error: cannot correlate on %s", cr)
	}
	a.block.NumParams++
	a.block.CorrelRefs = append(a.block.CorrelRefs, ref)
	return &Param{ID: ref.ParamID, Typ: typ, Name: name}, nil
}

// resolveExpr resolves a parsed expression. allowAgg permits aggregate
// functions (SELECT list of an aggregated block).
func (a *analyzer) resolveExpr(e sql.Expr, allowAgg bool) (Expr, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return &Const{Val: x.Val}, nil
	case *sql.HostVar:
		return a.hostParam(x.Index), nil
	case *sql.ColumnRef:
		return a.resolveColumn(x)
	case *sql.NegExpr:
		inner, err := a.resolveExpr(x.E, allowAgg)
		if err != nil {
			return nil, err
		}
		if !inner.Type().Arithmetic() && inner.Type() != value.KindNull {
			return nil, fmt.Errorf("semantic error: cannot negate %s value %s", inner.Type(), inner)
		}
		return &Neg{E: inner}, nil
	case *sql.NotExpr:
		inner, err := a.resolveExpr(x.E, allowAgg)
		if err != nil {
			return nil, err
		}
		if err := requireBoolean(inner); err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *sql.BinaryExpr:
		l, err := a.resolveExpr(x.L, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := a.resolveExpr(x.R, allowAgg)
		if err != nil {
			return nil, err
		}
		op := BinOp(x.Op)
		switch {
		case op == OpAnd || op == OpOr:
			if err := requireBoolean(l); err != nil {
				return nil, err
			}
			if err := requireBoolean(r); err != nil {
				return nil, err
			}
		case op.IsComparison():
			if err := comparable(l, r); err != nil {
				return nil, err
			}
		default: // arithmetic
			if err := arithmeticOperands(l, r); err != nil {
				return nil, err
			}
		}
		return &Bin{Op: op, L: l, R: r}, nil
	case *sql.BetweenExpr:
		inner, err := a.resolveExpr(x.E, allowAgg)
		if err != nil {
			return nil, err
		}
		lo, err := a.resolveExpr(x.Lo, allowAgg)
		if err != nil {
			return nil, err
		}
		hi, err := a.resolveExpr(x.Hi, allowAgg)
		if err != nil {
			return nil, err
		}
		if err := comparable(inner, lo); err != nil {
			return nil, err
		}
		if err := comparable(inner, hi); err != nil {
			return nil, err
		}
		return &Between{E: inner, Lo: lo, Hi: hi, Negated: x.Negated}, nil
	case *sql.InListExpr:
		inner, err := a.resolveExpr(x.E, allowAgg)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, le := range x.List {
			lv, err := a.resolveExpr(le, allowAgg)
			if err != nil {
				return nil, err
			}
			if err := comparable(inner, lv); err != nil {
				return nil, err
			}
			list[i] = lv
		}
		return &InList{E: inner, List: list, Negated: x.Negated}, nil
	case *sql.SubqueryExpr:
		sub, err := a.analyzeSubquery(x.Select, true)
		if err != nil {
			return nil, err
		}
		return &ScalarSub{Sub: sub}, nil
	case *sql.InSubqueryExpr:
		inner, err := a.resolveExpr(x.E, allowAgg)
		if err != nil {
			return nil, err
		}
		sub, err := a.analyzeSubquery(x.Select, false)
		if err != nil {
			return nil, err
		}
		if err := comparable(inner, sub.Block.Select[0]); err != nil {
			return nil, err
		}
		return &InSub{E: inner, Sub: sub, Negated: x.Negated}, nil
	case *sql.FuncExpr:
		if !allowAgg {
			return nil, fmt.Errorf("semantic error: aggregate %s is not allowed here", x.Name)
		}
		agg := &Agg{Name: x.Name, Star: x.Star}
		if !x.Star {
			arg, err := a.resolveExpr(x.Arg, false)
			if err != nil {
				return nil, err
			}
			if containsAggregateSem(arg) {
				return nil, fmt.Errorf("semantic error: nested aggregates are not allowed")
			}
			if (x.Name == "SUM" || x.Name == "AVG") && !arg.Type().Arithmetic() {
				return nil, fmt.Errorf("semantic error: %s requires an arithmetic argument, got %s", x.Name, arg.Type())
			}
			agg.Arg = arg
		}
		switch x.Name {
		case "COUNT":
			agg.Typ = value.KindInt
		case "AVG":
			agg.Typ = value.KindFloat
		default:
			agg.Typ = agg.Arg.Type()
		}
		idx := len(a.block.Aggs)
		a.block.Aggs = append(a.block.Aggs, agg)
		return &AggRef{Idx: idx, Typ: agg.Typ, Name: agg.String()}, nil
	default:
		return nil, fmt.Errorf("semantic error: unsupported expression %T", e)
	}
}

// hostParam resolves a '?' placeholder to a parameter slot. The outermost
// block owns one slot per distinct host variable; nested blocks receive the
// value as a pass-through correlation parameter, exactly like references to
// outer query blocks (Section 6).
func (a *analyzer) hostParam(index int) *Param {
	b := a.block
	if a.parent == nil {
		if b.HostRefs == nil {
			b.HostRefs = make(map[int]int)
		}
		if id, ok := b.HostRefs[index]; ok {
			return &Param{ID: id, Name: fmt.Sprintf("?%d", index+1)}
		}
		id := b.NumParams
		b.NumParams++
		b.HostRefs[index] = id
		return &Param{ID: id, Name: fmt.Sprintf("?%d", index+1)}
	}
	outer := a.parent.hostParam(index)
	// Dedup pass-throughs of the same host variable within this block.
	for _, cr := range b.CorrelRefs {
		if cr.FromParam && cr.ParentParam == outer.ID {
			return &Param{ID: cr.ParamID, Name: outer.Name}
		}
	}
	ref := CorrelRef{ParamID: b.NumParams, FromParam: true, ParentParam: outer.ID}
	b.NumParams++
	b.CorrelRefs = append(b.CorrelRefs, ref)
	return &Param{ID: ref.ParamID, Name: outer.Name}
}

func (a *analyzer) analyzeSubquery(sel *sql.SelectStmt, scalar bool) (*Subquery, error) {
	child := &analyzer{cat: a.cat, parent: a, subID: a.subID}
	blk, err := child.analyzeSelect(sel)
	if err != nil {
		return nil, err
	}
	if len(blk.Select) != 1 {
		return nil, fmt.Errorf("semantic error: subquery must return exactly one column, returns %d", len(blk.Select))
	}
	*a.subID++
	sub := &Subquery{
		ID:         *a.subID,
		Block:      blk,
		Scalar:     scalar,
		Correlated: len(blk.CorrelRefs) > 0,
	}
	a.block.Subqueries = append(a.block.Subqueries, sub)
	return sub, nil
}

// checkAggregated verifies that every bare column in an aggregated block's
// output expression appears in GROUP BY.
func (a *analyzer) checkAggregated(e Expr) error {
	switch x := e.(type) {
	case *Col:
		if !containsColumnID(a.block.GroupBy, x.ID) {
			return fmt.Errorf("semantic error: column %s must appear in GROUP BY or inside an aggregate", x.Name)
		}
		return nil
	case *Const, *Param, *AggRef:
		return nil
	case *Bin:
		if err := a.checkAggregated(x.L); err != nil {
			return err
		}
		return a.checkAggregated(x.R)
	case *Neg:
		return a.checkAggregated(x.E)
	case *Not:
		return a.checkAggregated(x.E)
	case *Between:
		for _, sub := range []Expr{x.E, x.Lo, x.Hi} {
			if err := a.checkAggregated(sub); err != nil {
				return err
			}
		}
		return nil
	case *InList:
		if err := a.checkAggregated(x.E); err != nil {
			return err
		}
		for _, le := range x.List {
			if err := a.checkAggregated(le); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("semantic error: expression %s is not allowed over grouped output", e)
	}
}

// requireBoolean checks that e is usable as a predicate.
func requireBoolean(e Expr) error {
	switch x := e.(type) {
	case *Bin:
		if x.Op.IsComparison() || x.Op == OpAnd || x.Op == OpOr {
			return nil
		}
	case *Not, *Between, *InList, *InSub:
		return nil
	}
	return fmt.Errorf("semantic error: %s is not a predicate", e)
}

// comparable checks type compatibility of a comparison's operands.
func comparable(l, r Expr) error {
	lt, rt := l.Type(), r.Type()
	if lt == value.KindNull || rt == value.KindNull {
		return nil
	}
	if lt.Arithmetic() && rt.Arithmetic() {
		return nil
	}
	if lt == rt {
		return nil
	}
	return fmt.Errorf("semantic error: cannot compare %s %s with %s %s", lt, l, rt, r)
}

func arithmeticOperands(l, r Expr) error {
	for _, e := range []Expr{l, r} {
		t := e.Type()
		if !t.Arithmetic() && t != value.KindNull {
			return fmt.Errorf("semantic error: arithmetic on non-numeric %s %s", t, e)
		}
	}
	return nil
}

// containsAggregate scans a parsed expression for aggregate functions.
func containsAggregate(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.FuncExpr:
		return true
	case *sql.BinaryExpr:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case *sql.NotExpr:
		return containsAggregate(x.E)
	case *sql.NegExpr:
		return containsAggregate(x.E)
	case *sql.BetweenExpr:
		return containsAggregate(x.E) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	case *sql.InListExpr:
		if containsAggregate(x.E) {
			return true
		}
		for _, le := range x.List {
			if containsAggregate(le) {
				return true
			}
		}
	}
	return false
}

func containsAggregateSem(e Expr) bool {
	switch x := e.(type) {
	case *AggRef:
		return true
	case *Bin:
		return containsAggregateSem(x.L) || containsAggregateSem(x.R)
	case *Not:
		return containsAggregateSem(x.E)
	case *Neg:
		return containsAggregateSem(x.E)
	}
	return false
}

package sem

// Analysis of data-manipulation statements. "Retrieval for data manipulation
// (UPDATE, DELETE) is treated similarly" (Section 1): the WHERE clause of a
// DELETE or UPDATE is analyzed as a single-relation query block, so the same
// access path selection applies to locating the affected tuples.

import (
	"fmt"

	"systemr/internal/catalog"
	"systemr/internal/sql"
)

// AnalyzeDelete analyzes DELETE FROM t WHERE ... into a single-relation
// query block whose factors locate the tuples to delete.
func AnalyzeDelete(st *sql.DeleteStmt, cat *catalog.Catalog) (*Block, error) {
	sel := &sql.SelectStmt{
		Items: []sql.SelectItem{{Star: true}},
		From:  []sql.TableRef{{Table: st.Table, Alias: st.Alias}},
		Where: st.Where,
	}
	return Analyze(sel, cat)
}

// UpdateSet is one resolved SET assignment.
type UpdateSet struct {
	Col  int
	Expr Expr
}

// AnalyzeUpdate analyzes UPDATE t SET ... WHERE ... into a query block plus
// the resolved assignment expressions (evaluated against each matching
// tuple).
func AnalyzeUpdate(st *sql.UpdateStmt, cat *catalog.Catalog) (*Block, []UpdateSet, error) {
	sel := &sql.SelectStmt{
		Items: []sql.SelectItem{{Star: true}},
		From:  []sql.TableRef{{Table: st.Table, Alias: st.Alias}},
		Where: st.Where,
	}
	counter := 0
	a := &analyzer{cat: cat, subID: &counter}
	blk, err := a.analyzeSelect(sel)
	if err != nil {
		return nil, nil, err
	}
	table := blk.Rels[0].Table
	sets := make([]UpdateSet, 0, len(st.Sets))
	for _, sc := range st.Sets {
		ci := table.ColumnIndex(sc.Column)
		if ci < 0 {
			return nil, nil, fmt.Errorf("semantic error: column %s does not exist in %s", sc.Column, table.Name)
		}
		e, err := a.resolveExpr(sc.Expr, false)
		if err != nil {
			return nil, nil, err
		}
		sets = append(sets, UpdateSet{Col: ci, Expr: e})
	}
	return blk, sets, nil
}

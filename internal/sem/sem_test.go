package sem

import (
	"fmt"
	"strings"
	"testing"

	"systemr/internal/catalog"
	"systemr/internal/sql"
	"systemr/internal/storage"
	"systemr/internal/value"
)

// newCat builds EMP(NAME,DNO,JOB,SAL,MANAGER,EMPNO), DEPT(DNO,DNAME,LOC),
// JOB(JOB,TITLE) — the paper's schema.
func newCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewDisk())
	mustCreate := func(name string, cols []catalog.Column) {
		if _, err := cat.CreateTable(name, cols, ""); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("EMP", []catalog.Column{
		{Name: "NAME", Type: value.KindString},
		{Name: "DNO", Type: value.KindInt},
		{Name: "JOB", Type: value.KindInt},
		{Name: "SAL", Type: value.KindFloat},
		{Name: "MANAGER", Type: value.KindInt},
		{Name: "EMPNO", Type: value.KindInt},
	})
	mustCreate("DEPT", []catalog.Column{
		{Name: "DNO", Type: value.KindInt},
		{Name: "DNAME", Type: value.KindString},
		{Name: "LOC", Type: value.KindString},
	})
	mustCreate("JOB", []catalog.Column{
		{Name: "JOB", Type: value.KindInt},
		{Name: "TITLE", Type: value.KindString},
	})
	return cat
}

func analyze(t *testing.T, text string) *Block {
	t.Helper()
	blk, err := analyzeErr(t, text)
	if err != nil {
		t.Fatalf("Analyze(%q): %v", text, err)
	}
	return blk
}

func analyzeErr(t *testing.T, text string) (*Block, error) {
	t.Helper()
	st, err := sql.Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return Analyze(st.(*sql.SelectStmt), newCat(t))
}

func wantErr(t *testing.T, text, fragment string) {
	t.Helper()
	_, err := analyzeErr(t, text)
	if err == nil {
		t.Fatalf("Analyze(%q) should fail", text)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("Analyze(%q): error %q lacks %q", text, err, fragment)
	}
}

func TestResolveColumns(t *testing.T) {
	blk := analyze(t, "SELECT E.NAME, SAL, DNAME FROM EMP E, DEPT WHERE E.DNO = DEPT.DNO")
	if len(blk.Rels) != 2 || blk.Rels[0].Name != "E" || blk.Rels[1].Name != "DEPT" {
		t.Fatalf("rels: %+v", blk.Rels)
	}
	if len(blk.Select) != 3 {
		t.Fatal("select arity")
	}
	if c := blk.Select[1].(*Col); c.ID != (ColumnID{Rel: 0, Col: 3}) || c.Typ != value.KindFloat {
		t.Fatalf("unqualified SAL: %+v", c)
	}
	if c := blk.Select[2].(*Col); c.ID != (ColumnID{Rel: 1, Col: 1}) {
		t.Fatalf("DNAME: %+v", c)
	}
}

func TestResolutionErrors(t *testing.T) {
	wantErr(t, "SELECT DNO FROM EMP, DEPT", "ambiguous")
	wantErr(t, "SELECT BOGUS FROM EMP", "cannot be resolved")
	wantErr(t, "SELECT NAME FROM NOPE", "does not exist")
	wantErr(t, "SELECT X.NAME FROM EMP", "cannot be resolved")
	wantErr(t, "SELECT NAME FROM EMP, EMP", "duplicate relation name")
	wantErr(t, "SELECT EMP.NOPE FROM EMP", "does not exist")
}

func TestTypeChecking(t *testing.T) {
	wantErr(t, "SELECT NAME FROM EMP WHERE NAME = 5", "cannot compare")
	wantErr(t, "SELECT NAME FROM EMP WHERE NAME + 1 = 2", "arithmetic on non-numeric")
	wantErr(t, "SELECT NAME FROM EMP WHERE SAL", "not a predicate")
	wantErr(t, "SELECT SUM(NAME) FROM EMP", "requires an arithmetic argument")
	wantErr(t, "SELECT NAME FROM EMP WHERE COUNT(*) = 2", "not allowed here")
	// Numeric cross-type comparison is fine.
	analyze(t, "SELECT NAME FROM EMP WHERE SAL > 100 AND DNO = 2.0")
	// NULL compares with anything (statically).
	analyze(t, "SELECT NAME FROM EMP WHERE NAME = NULL")
}

func TestBooleanFactors(t *testing.T) {
	blk := analyze(t, `SELECT NAME FROM EMP, DEPT
		WHERE EMP.DNO = DEPT.DNO AND SAL > 100 AND (JOB = 1 OR JOB = 2) AND LOC = 'DENVER'`)
	if len(blk.Factors) != 4 {
		t.Fatalf("want 4 boolean factors, got %d", len(blk.Factors))
	}
	join := blk.Factors[0]
	if join.EquiJoin == nil || join.Rels.Count() != 2 {
		t.Fatalf("join factor: %+v", join)
	}
	sal := blk.Factors[1]
	if sal.Simple == nil || sal.Simple.Lo == nil || sal.Simple.LoInc || sal.Simple.Hi != nil {
		t.Fatalf("SAL > 100 interval: %+v", sal.Simple)
	}
	or := blk.Factors[2]
	if or.Simple != nil || len(or.SargDNF) != 2 {
		t.Fatalf("OR factor should be a 2-disjunct SARG: %+v", or)
	}
	loc := blk.Factors[3]
	if loc.Simple == nil || !loc.Simple.IsEq() {
		t.Fatalf("LOC eq: %+v", loc.Simple)
	}
}

func TestNotPushdown(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP WHERE NOT (SAL < 10 OR DNO = 3)")
	// NOT(a OR b) → NOT a AND NOT b → two factors with negated operators.
	if len(blk.Factors) != 2 {
		t.Fatalf("want 2 factors after NOT pushdown, got %d: %v", len(blk.Factors), blk.Factors)
	}
	f0 := blk.Factors[0].Simple
	if f0 == nil || f0.Lo == nil || !f0.LoInc {
		t.Fatalf("NOT(SAL < 10) should become SAL >= 10: %+v", f0)
	}
	f1 := blk.Factors[1].Simple
	if f1 == nil || f1.Ne == nil {
		t.Fatalf("NOT(DNO = 3) should become DNO <> 3: %+v", f1)
	}
}

func TestBetweenAndInClassification(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP WHERE SAL BETWEEN 10 AND 20 AND DNO IN (1, 2, 3)")
	btw := blk.Factors[0].Simple
	if btw == nil || btw.Lo == nil || btw.Hi == nil || !btw.LoInc || !btw.HiInc {
		t.Fatalf("between interval: %+v", btw)
	}
	in := blk.Factors[1]
	if in.Simple != nil {
		t.Fatal("IN list is not a single simple predicate")
	}
	if len(in.SargDNF) != 3 {
		t.Fatalf("IN list should be a 3-disjunct SARG: %+v", in.SargDNF)
	}
}

func TestNonSargable(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP WHERE SAL + 1 > 10 AND SAL > DNO")
	for i, f := range blk.Factors {
		if f.SargDNF != nil || f.Simple != nil {
			t.Fatalf("factor %d should be residual: %+v", i, f)
		}
	}
}

func TestCorrelationSingleLevel(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP X WHERE SAL > (SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)")
	if len(blk.Subqueries) != 1 {
		t.Fatal("one subquery expected")
	}
	sub := blk.Subqueries[0]
	if !sub.Correlated || !sub.Scalar {
		t.Fatalf("subquery flags: %+v", sub)
	}
	child := sub.Block
	if child.NumParams != 1 || len(child.CorrelRefs) != 1 {
		t.Fatalf("child params: %+v", child.CorrelRefs)
	}
	cr := child.CorrelRefs[0]
	if cr.FromParam || cr.FromCol != (ColumnID{Rel: 0, Col: 1}) {
		t.Fatalf("correlation source: %+v", cr)
	}
	// The factor referencing the correlated sub depends on the correlation
	// relation (rel 0 of the outer block).
	if !blk.Factors[0].Rels.Has(0) {
		t.Fatalf("factor rels: %v", blk.Factors[0].Rels)
	}
	// Inside the child, DNO = $param is sargable with a parameter bound.
	cf := child.Factors[0]
	if cf.Simple == nil || !cf.Simple.IsEq() || cf.Simple.Lo.Kind != BoundParam {
		t.Fatalf("child factor should be param-sargable: %+v", cf.Simple)
	}
}

func TestCorrelationPassThrough(t *testing.T) {
	// The paper's level-1/level-3 example: the innermost block references a
	// level-1 value; the intermediate block forwards it as a parameter.
	blk := analyze(t, `SELECT NAME FROM EMP X WHERE SAL >
		(SELECT SAL FROM EMP WHERE EMPNO =
			(SELECT MANAGER FROM EMP WHERE EMPNO = X.MANAGER))`)
	level2 := blk.Subqueries[0].Block
	if len(level2.CorrelRefs) != 1 || level2.CorrelRefs[0].FromParam {
		t.Fatalf("level 2 must correlate on a level-1 column: %+v", level2.CorrelRefs)
	}
	level3 := level2.Subqueries[0].Block
	if len(level3.CorrelRefs) != 1 || !level3.CorrelRefs[0].FromParam {
		t.Fatalf("level 3 must receive the value via a pass-through parameter: %+v", level3.CorrelRefs)
	}
	if level3.CorrelRefs[0].ParentParam != level2.CorrelRefs[0].ParamID {
		t.Fatal("pass-through must reference the intermediate block's parameter")
	}
}

func TestAggregationRules(t *testing.T) {
	blk := analyze(t, "SELECT DNO, COUNT(*), AVG(SAL) FROM EMP GROUP BY DNO")
	if !blk.HasAgg || len(blk.Aggs) != 2 || len(blk.GroupBy) != 1 {
		t.Fatalf("agg shape: %+v", blk)
	}
	if blk.Aggs[1].Typ != value.KindFloat {
		t.Fatal("AVG type")
	}
	wantErr(t, "SELECT NAME, COUNT(*) FROM EMP GROUP BY DNO", "must appear in GROUP BY")
	wantErr(t, "SELECT NAME, COUNT(*) FROM EMP", "must appear in GROUP BY")
	wantErr(t, "SELECT * FROM EMP GROUP BY DNO", "cannot be combined")
	wantErr(t, "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO ORDER BY SAL", "must appear in GROUP BY")
	wantErr(t, "SELECT MAX(COUNT(*)) FROM EMP", "not allowed here")
	wantErr(t, "SELECT DNO FROM EMP GROUP BY DNO + 1", "only column references")
}

func TestStarExpansion(t *testing.T) {
	blk := analyze(t, "SELECT * FROM EMP, JOB")
	if len(blk.Select) != 8 {
		t.Fatalf("star expansion: %d columns", len(blk.Select))
	}
	blk = analyze(t, "SELECT JOB.*, NAME FROM EMP, JOB")
	if len(blk.Select) != 3 || blk.SelectNames[0] != "JOB" || blk.SelectNames[1] != "TITLE" {
		t.Fatalf("qualified star: %v", blk.SelectNames)
	}
}

func TestSubqueryColumnCount(t *testing.T) {
	wantErr(t, "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO, DNAME FROM DEPT)", "exactly one column")
}

func TestOrderByValidation(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP ORDER BY SAL DESC, DNO")
	if len(blk.OrderBy) != 2 || !blk.OrderBy[0].Desc || blk.OrderBy[1].Desc {
		t.Fatalf("order keys: %+v", blk.OrderBy)
	}
	wantErr(t, "SELECT NAME FROM EMP ORDER BY SAL + 1", "only column references")
}

func TestRelSet(t *testing.T) {
	var s RelSet
	s = s.Set(0).Set(3)
	if !s.Has(0) || !s.Has(3) || s.Has(1) {
		t.Fatal("set/has")
	}
	if s.Count() != 2 {
		t.Fatal("count")
	}
	if got := s.Members(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("members: %v", got)
	}
	var one RelSet
	one = one.Set(3)
	if !s.Contains(one) || one.Contains(s) {
		t.Fatal("contains")
	}
	if one.Single() != 3 {
		t.Fatal("single")
	}
	if s.Union(one) != s {
		t.Fatal("union")
	}
}

func TestAnalyzeDeleteUpdate(t *testing.T) {
	cat := newCat(t)
	st, _ := sql.Parse("DELETE FROM EMP E WHERE E.SAL > 100")
	blk, err := AnalyzeDelete(st.(*sql.DeleteStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Rels) != 1 || len(blk.Factors) != 1 || blk.Rels[0].Name != "E" {
		t.Fatalf("delete block: %+v", blk)
	}

	st, _ = sql.Parse("UPDATE EMP SET SAL = SAL * 2 WHERE DNO = 1")
	ublk, sets, err := AnalyzeUpdate(st.(*sql.UpdateStmt), cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Col != 3 {
		t.Fatalf("update sets: %+v", sets)
	}
	if len(ublk.Factors) != 1 {
		t.Fatal("update where")
	}
	st, _ = sql.Parse("UPDATE EMP SET NOPE = 1")
	if _, _, err := AnalyzeUpdate(st.(*sql.UpdateStmt), cat); err == nil {
		t.Fatal("unknown SET column must fail")
	}
}

func TestFactorStringsAndBounds(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP WHERE SAL > 10 AND DNO IN (1,2)")
	for _, f := range blk.Factors {
		if f.String() == "" {
			t.Fatal("factor must render")
		}
	}
	b := Bound{Kind: BoundConst, Val: value.NewInt(5)}
	if b.String() != "5" || !b.IsConst() {
		t.Fatal("const bound")
	}
	b = Bound{Kind: BoundParam, Param: 3}
	if b.String() != "$3" || b.IsConst() {
		t.Fatal("param bound")
	}
}

func TestSargDNFNegatedForms(t *testing.T) {
	// NOT BETWEEN → two disjuncts (< lo OR > hi).
	blk := analyze(t, "SELECT NAME FROM EMP WHERE SAL NOT BETWEEN 10 AND 20")
	f := blk.Factors[0]
	if len(f.SargDNF) != 2 {
		t.Fatalf("NOT BETWEEN DNF: %+v", f.SargDNF)
	}
	// NOT IN → one conjunct of <> terms.
	blk = analyze(t, "SELECT NAME FROM EMP WHERE DNO NOT IN (1, 2, 3)")
	f = blk.Factors[0]
	if len(f.SargDNF) != 1 || len(f.SargDNF[0]) != 3 {
		t.Fatalf("NOT IN DNF: %+v", f.SargDNF)
	}
	for _, term := range f.SargDNF[0] {
		if term.Op != value.OpNe {
			t.Fatalf("NOT IN terms must be <>: %+v", term)
		}
	}
}

func TestSargDNFSizeLimit(t *testing.T) {
	// An OR tree exceeding maxSargDisjuncts stays residual.
	pred := "DNO = 0"
	for i := 1; i < 40; i++ {
		pred += fmt.Sprintf(" OR DNO = %d", i)
	}
	blk := analyze(t, "SELECT NAME FROM EMP WHERE ("+pred+")")
	if blk.Factors[0].SargDNF != nil {
		t.Fatal("oversized DNF must not be sargable")
	}
}

func TestClassifyInSubqueryFactor(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'X')")
	f := blk.Factors[0]
	if len(f.Subs) != 1 || f.Subs[0].Scalar {
		t.Fatalf("factor subqueries: %+v", f.Subs)
	}
	if f.SargDNF != nil || f.Simple != nil {
		t.Fatal("IN-subquery factor is residual")
	}
	if f.Rels.Count() != 1 || !f.Rels.Has(0) {
		t.Fatalf("factor rels: %v", f.Rels)
	}
}

func TestScalarSubqueryAsBound(t *testing.T) {
	// Non-correlated scalar subquery: usable as an index bound.
	blk := analyze(t, "SELECT NAME FROM EMP WHERE SAL > (SELECT MAX(SAL) FROM EMP) - 1")
	f := blk.Factors[0]
	// SAL > expr(subquery) — the bound involves arithmetic, so not Simple,
	// and residual.
	if f.Simple != nil {
		t.Fatalf("arithmetic over subquery cannot be a simple bound: %+v", f.Simple)
	}
	blk = analyze(t, "SELECT NAME FROM EMP WHERE SAL > (SELECT MAX(SAL) FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO)")
	f = blk.Factors[0]
	if f.Simple == nil || f.Simple.Lo == nil || f.Simple.Lo.Kind != BoundSub {
		t.Fatalf("plain subquery comparison should be a deferred bound: %+v", f.Simple)
	}
}

func TestCorrelatedBoundNotPreBindable(t *testing.T) {
	// A subquery correlating on THIS block's relation cannot be a scan-open
	// bound: the factor must be residual and reference both "relations".
	blk := analyze(t, "SELECT E.NAME FROM EMP E, DEPT D WHERE E.SAL > (SELECT AVG(SAL) FROM EMP WHERE DNO = D.DNO)")
	f := blk.Factors[0]
	if f.Simple != nil {
		t.Fatal("correlated-on-this-block bound must not be simple")
	}
	if !f.Rels.Has(0) || !f.Rels.Has(1) {
		t.Fatalf("factor must reference E and D: %v", f.Rels)
	}
}

func TestRelsOfExported(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO")
	rels := RelsOf(blk.Factors[0].Expr)
	if rels.Count() != 2 {
		t.Fatalf("RelsOf: %v", rels)
	}
}

func TestHavingAnalysis(t *testing.T) {
	blk := analyze(t, "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO HAVING COUNT(*) > 3 AND DNO < 5")
	if len(blk.Having) != 2 {
		t.Fatalf("having conjuncts: %d", len(blk.Having))
	}
	wantErr(t, "SELECT NAME FROM EMP HAVING COUNT(*) > 1", "HAVING requires")
	wantErr(t, "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO HAVING SAL > 1", "GROUP BY")
	wantErr(t, "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO HAVING DNO + 1", "not a predicate")
}

func TestNegativeBoundFolding(t *testing.T) {
	blk := analyze(t, "SELECT NAME FROM EMP WHERE SAL > -(5.5)")
	f := blk.Factors[0]
	if f.Simple == nil || f.Simple.Lo.Kind != BoundConst || f.Simple.Lo.Val.Float != -5.5 {
		t.Fatalf("negated constant bound: %+v", f.Simple)
	}
}

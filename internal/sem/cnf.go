package sem

import "systemr/internal/value"

// Conversion of the WHERE tree to conjunctive normal form and classification
// of the resulting boolean factors (Section 4): sargable predicates, join
// predicates, and general residuals, plus the DNF search-argument form the
// RSS accepts.

// pushNot drives negations down to the leaves: comparisons flip their
// operator, BETWEEN/IN flip their Negated flag, AND/OR dualize. The result
// contains Not only around irreducible predicates (none, with our grammar).
func pushNot(e Expr, neg bool) Expr {
	switch x := e.(type) {
	case *Not:
		return pushNot(x.E, !neg)
	case *Bin:
		switch {
		case x.Op == OpAnd:
			l, r := pushNot(x.L, neg), pushNot(x.R, neg)
			if neg {
				return &Bin{Op: OpOr, L: l, R: r}
			}
			return &Bin{Op: OpAnd, L: l, R: r}
		case x.Op == OpOr:
			l, r := pushNot(x.L, neg), pushNot(x.R, neg)
			if neg {
				return &Bin{Op: OpAnd, L: l, R: r}
			}
			return &Bin{Op: OpOr, L: l, R: r}
		case x.Op.IsComparison() && neg:
			return &Bin{Op: negateCmp(x.Op), L: x.L, R: x.R}
		default:
			return x
		}
	case *Between:
		if neg {
			return &Between{E: x.E, Lo: x.Lo, Hi: x.Hi, Negated: !x.Negated}
		}
		return x
	case *InList:
		if neg {
			return &InList{E: x.E, List: x.List, Negated: !x.Negated}
		}
		return x
	case *InSub:
		if neg {
			return &InSub{E: x.E, Sub: x.Sub, Negated: !x.Negated}
		}
		return x
	default:
		if neg {
			return &Not{E: e}
		}
		return e
	}
}

func negateCmp(op BinOp) BinOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return op
}

// conjuncts flattens top-level ANDs: each element is one boolean factor.
// (As in System R, the WHERE tree is "considered to be in conjunctive normal
// form" — we do not distribute OR over AND.)
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Expr{e}
}

// exprInfo accumulates what an expression references.
type exprInfo struct {
	rels      RelSet
	usesParam bool
	subs      []*Subquery
}

func scanExpr(e Expr, info *exprInfo) {
	switch x := e.(type) {
	case *Col:
		info.rels = info.rels.Set(x.ID.Rel)
	case *Param:
		info.usesParam = true
	case *Const, *AggRef:
	case *Bin:
		scanExpr(x.L, info)
		scanExpr(x.R, info)
	case *Not:
		scanExpr(x.E, info)
	case *Neg:
		scanExpr(x.E, info)
	case *Between:
		scanExpr(x.E, info)
		scanExpr(x.Lo, info)
		scanExpr(x.Hi, info)
	case *InList:
		scanExpr(x.E, info)
		for _, le := range x.List {
			scanExpr(le, info)
		}
	case *InSub:
		scanExpr(x.E, info)
		info.subs = append(info.subs, x.Sub)
	case *ScalarSub:
		info.subs = append(info.subs, x.Sub)
	}
}

// RelsOf returns the block-local relations referenced by an expression.
func RelsOf(e Expr) RelSet {
	var info exprInfo
	scanExpr(e, &info)
	return info.rels
}

// classify builds a BoolFactor from one conjunct: it records the referenced
// relations, recognizes the single sargable predicate and equi-join shapes,
// and derives the DNF search-argument form when the whole factor is sargable.
func (a *analyzer) classify(e Expr) *BoolFactor {
	var info exprInfo
	scanExpr(e, &info)
	f := &BoolFactor{Expr: e, Rels: info.rels, UsesParam: info.usesParam, Subs: info.subs}
	// A subquery correlated on a column of THIS block makes the factor
	// depend on that column's relation: it can only be evaluated once that
	// relation has been joined in. (Pass-through correlations to outer
	// blocks surface as CorrelRefs of this block itself, not here.)
	for _, sub := range info.subs {
		for _, cr := range sub.Block.CorrelRefs {
			if !cr.FromParam {
				f.Rels = f.Rels.Set(cr.FromCol.Rel)
			}
		}
	}
	f.Simple = a.simplePred(e)
	f.EquiJoin = equiJoin(e)
	if f.Rels.Count() == 1 {
		if dnf, ok := a.sargDNF(e, f.Rels.Single()); ok {
			f.SargDNF = dnf
		}
	}
	return f
}

// boundOf converts an expression to a pre-scan-bindable Bound: a constant, a
// correlation parameter (constant during one execution of this block), or a
// scalar subquery that does not correlate on this block. Constant arithmetic
// is folded.
func (a *analyzer) boundOf(e Expr) (Bound, bool) {
	switch x := e.(type) {
	case *Const:
		return Bound{Kind: BoundConst, Val: x.Val}, true
	case *Param:
		return Bound{Kind: BoundParam, Param: x.ID}, true
	case *Neg:
		inner, ok := a.boundOf(x.E)
		if !ok || inner.Kind != BoundConst {
			return Bound{}, false
		}
		v := inner.Val
		switch v.Kind {
		case value.KindNull:
			return inner, true
		case value.KindInt:
			return Bound{Kind: BoundConst, Val: value.NewInt(-v.Int)}, true
		case value.KindFloat:
			return Bound{Kind: BoundConst, Val: value.NewFloat(-v.Float)}, true
		}
		return Bound{}, false
	case *ScalarSub:
		// Bindable only when the subquery does not reference THIS block's
		// relations: its value is then fixed for the whole execution.
		for _, cr := range x.Sub.Block.CorrelRefs {
			if !cr.FromParam {
				return Bound{}, false
			}
		}
		return Bound{Kind: BoundSub, Sub: x.Sub}, true
	default:
		return Bound{}, false
	}
}

// simplePred recognizes "column comparison-operator value" (and BETWEEN) in
// interval form — the shape that can match an index and define start/stop
// keys.
func (a *analyzer) simplePred(e Expr) *SimplePred {
	switch x := e.(type) {
	case *Bin:
		if !x.Op.IsComparison() {
			return nil
		}
		col, colOK := x.L.(*Col)
		other := x.R
		op := x.Op
		if !colOK {
			col, colOK = x.R.(*Col)
			other = x.L
			if !colOK {
				return nil
			}
			op = flip(op)
		}
		if _, isCol := other.(*Col); isCol {
			return nil // column = column is a join or intra-relation predicate
		}
		b, ok := a.boundOf(other)
		if !ok {
			return nil
		}
		p := &SimplePred{Col: col.ID}
		switch op {
		case OpEq:
			p.Lo, p.Hi = &b, &b
			p.LoInc, p.HiInc = true, true
		case OpNe:
			p.Ne = &b
		case OpLt:
			p.Hi = &b
		case OpLe:
			p.Hi, p.HiInc = &b, true
		case OpGt:
			p.Lo = &b
		case OpGe:
			p.Lo, p.LoInc = &b, true
		}
		return p
	case *Between:
		if x.Negated {
			return nil
		}
		col, ok := x.E.(*Col)
		if !ok {
			return nil
		}
		lo, okLo := a.boundOf(x.Lo)
		hi, okHi := a.boundOf(x.Hi)
		if !okLo || !okHi {
			return nil
		}
		return &SimplePred{Col: col.ID, Lo: &lo, Hi: &hi, LoInc: true, HiInc: true}
	default:
		return nil
	}
}

func flip(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// equiJoin recognizes T1.c1 = T2.c2 across two distinct relations.
func equiJoin(e Expr) *EquiJoinPred {
	b, ok := e.(*Bin)
	if !ok || b.Op != OpEq {
		return nil
	}
	l, lok := b.L.(*Col)
	r, rok := b.R.(*Col)
	if !lok || !rok || l.ID.Rel == r.ID.Rel {
		return nil
	}
	return &EquiJoinPred{Left: l.ID, Right: r.ID}
}

// maxSargDisjuncts bounds DNF expansion; factors beyond it stay residual.
const maxSargDisjuncts = 32

// sargDNF converts a single-relation factor into the RSS's search-argument
// form: a DNF of (column op value) terms, or reports that the factor is not
// sargable (e.g. it compares two columns, or involves arithmetic on a
// column).
func (a *analyzer) sargDNF(e Expr, rel int) ([][]SargTerm, bool) {
	switch x := e.(type) {
	case *Bin:
		switch x.Op {
		case OpAnd:
			l, ok := a.sargDNF(x.L, rel)
			if !ok {
				return nil, false
			}
			r, ok := a.sargDNF(x.R, rel)
			if !ok {
				return nil, false
			}
			if len(l)*len(r) > maxSargDisjuncts {
				return nil, false
			}
			var out [][]SargTerm
			for _, dl := range l {
				for _, dr := range r {
					conj := make([]SargTerm, 0, len(dl)+len(dr))
					conj = append(conj, dl...)
					conj = append(conj, dr...)
					out = append(out, conj)
				}
			}
			return out, true
		case OpOr:
			l, ok := a.sargDNF(x.L, rel)
			if !ok {
				return nil, false
			}
			r, ok := a.sargDNF(x.R, rel)
			if !ok {
				return nil, false
			}
			if len(l)+len(r) > maxSargDisjuncts {
				return nil, false
			}
			return append(l, r...), true
		default:
			return a.sargLeaf(e, rel)
		}
	default:
		return a.sargLeaf(e, rel)
	}
}

func (a *analyzer) sargLeaf(e Expr, rel int) ([][]SargTerm, bool) {
	switch x := e.(type) {
	case *Bin:
		if !x.Op.IsComparison() {
			return nil, false
		}
		col, colOK := x.L.(*Col)
		other := x.R
		op := x.Op
		if !colOK {
			col, colOK = x.R.(*Col)
			other = x.L
			if !colOK {
				return nil, false
			}
			op = flip(op)
		}
		if col.ID.Rel != rel {
			return nil, false
		}
		b, ok := a.boundOf(other)
		if !ok {
			return nil, false
		}
		return [][]SargTerm{{{Col: col.ID, Op: op.CmpOp(), Val: b}}}, true
	case *Between:
		col, ok := x.E.(*Col)
		if !ok || col.ID.Rel != rel {
			return nil, false
		}
		lo, okLo := a.boundOf(x.Lo)
		hi, okHi := a.boundOf(x.Hi)
		if !okLo || !okHi {
			return nil, false
		}
		ge := SargTerm{Col: col.ID, Op: value.OpGe, Val: lo}
		le := SargTerm{Col: col.ID, Op: value.OpLe, Val: hi}
		if x.Negated {
			lt := SargTerm{Col: col.ID, Op: value.OpLt, Val: lo}
			gt := SargTerm{Col: col.ID, Op: value.OpGt, Val: hi}
			return [][]SargTerm{{lt}, {gt}}, true
		}
		return [][]SargTerm{{ge, le}}, true
	case *InList:
		col, ok := x.E.(*Col)
		if !ok || col.ID.Rel != rel {
			return nil, false
		}
		if x.Negated {
			// NOT IN: conjunction of <> terms — one disjunct.
			conj := make([]SargTerm, 0, len(x.List))
			for _, le := range x.List {
				b, ok := a.boundOf(le)
				if !ok {
					return nil, false
				}
				conj = append(conj, SargTerm{Col: col.ID, Op: value.OpNe, Val: b})
			}
			return [][]SargTerm{conj}, true
		}
		if len(x.List) > maxSargDisjuncts {
			return nil, false
		}
		var out [][]SargTerm
		for _, le := range x.List {
			b, ok := a.boundOf(le)
			if !ok {
				return nil, false
			}
			out = append(out, []SargTerm{{Col: col.ID, Op: value.OpEq, Val: b}})
		}
		return out, true
	default:
		return nil, false
	}
}

package systemr

// Conn is the SQL-level session: the layer that gives BEGIN / COMMIT /
// ROLLBACK somewhere to live. DB-level Exec autocommits every statement, so
// transaction control through it would be meaningless; a Conn carries the
// one piece of session state — the current transaction — that those
// statements manipulate. The rsql shell runs on a Conn.

import (
	"context"
	"errors"
	"fmt"

	"systemr/internal/sql"
)

// Conn is a database session: a statement stream with at most one open
// transaction. Statements outside a transaction autocommit exactly as on DB;
// between BEGIN and COMMIT/ROLLBACK they execute on the open transaction. A
// Conn is a single session and must not be used from multiple goroutines
// concurrently; open one Conn per goroutine instead.
type Conn struct {
	db *DB
	tx *Txn
}

// Conn opens a session.
func (db *DB) Conn() *Conn { return &Conn{db: db} }

// Exec runs one statement on the session.
func (c *Conn) Exec(text string) (*Result, error) {
	return c.ExecContext(context.Background(), text)
}

// ExecContext is Exec observing ctx. BEGIN, COMMIT, and ROLLBACK are routed
// by the statement's leading keyword (ordinary statements are not parsed
// twice); everything else runs on the open transaction if there is one, else
// autocommits.
func (c *Conn) ExecContext(ctx context.Context, text string) (*Result, error) {
	switch sql.LeadingKeyword(text) {
	case "BEGIN":
		if err := parseTxnControl(text); err != nil {
			return nil, err
		}
		if c.tx != nil {
			return nil, errors.New("systemr: a transaction is already in progress")
		}
		c.tx = c.db.Begin()
		return &Result{}, nil
	case "COMMIT":
		if err := parseTxnControl(text); err != nil {
			return nil, err
		}
		if c.tx == nil {
			return nil, errors.New("systemr: no transaction in progress")
		}
		err := c.tx.Commit()
		c.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	case "ROLLBACK":
		if err := parseTxnControl(text); err != nil {
			return nil, err
		}
		if c.tx == nil {
			return nil, errors.New("systemr: no transaction in progress")
		}
		err := c.tx.Rollback()
		c.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	if c.tx != nil {
		return c.tx.ExecContext(ctx, text)
	}
	return c.db.ExecContext(ctx, text)
}

// parseTxnControl validates the full text of a transaction-control statement
// (its leading keyword already identified it as one).
func parseTxnControl(text string) error {
	stmt, err := sql.Parse(text)
	if err != nil {
		return err
	}
	switch stmt.(type) {
	case *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt:
		return nil
	}
	return fmt.Errorf("systemr: unexpected statement %T", stmt)
}

// Query is Exec restricted to statements that return rows.
func (c *Conn) Query(text string) (*Result, error) {
	return c.QueryContext(context.Background(), text)
}

// QueryContext is Query observing ctx.
func (c *Conn) QueryContext(ctx context.Context, text string) (*Result, error) {
	res, err := c.ExecContext(ctx, text)
	if err != nil {
		return nil, err
	}
	if res.Columns == nil {
		return nil, fmt.Errorf("systemr: statement is not a query: %s", text)
	}
	return res, nil
}

// InTxn reports whether a transaction is open on the session.
func (c *Conn) InTxn() bool { return c.tx != nil }

// TxnAborted reports whether the session's open transaction was rolled back
// by the engine and awaits a ROLLBACK acknowledgment.
func (c *Conn) TxnAborted() bool { return c.tx != nil && c.tx.Aborted() }

// Close ends the session, rolling back any open transaction.
func (c *Conn) Close() error {
	if c.tx == nil {
		return nil
	}
	err := c.tx.Rollback()
	c.tx = nil
	return err
}

package systemr_test

// MVCC mixed readers+writer benchmark: the scenario snapshot isolation
// exists for. One transaction UPDATEs a table and sits on its uncommitted
// exclusive lock; concurrent SELECTs on the same table either sail through
// on their statement snapshots (default) or queue behind the writer's X
// lock until they time out (DisableSnapshotReads, the PR 6 two-phase-locking
// baseline). TestBenchMVCCJSON measures both modes once and writes
// BENCH_mvcc.json for CI trending, asserting the PR 8 acceptance bar:
// snapshot readers sustain at least 5x the 2PL baseline's read throughput
// with zero reader errors and zero blocking.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"systemr"
)

const mvccBenchReadQuery = "SELECT COUNT(*), SUM(B) FROM T"

// mvccBenchDB builds T(A, B) with rows rows under the given engine config.
func mvccBenchDB(tb testing.TB, rows int, engine systemr.Config) *systemr.DB {
	tb.Helper()
	engine.BufferPages = 4096
	db := systemr.Open(engine)
	db.MustExec("CREATE TABLE T (A INTEGER, B INTEGER)")
	for i := 0; i < rows; i += 100 {
		stmt := "INSERT INTO T VALUES "
		for j := i; j < i+100; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d)", j, j%97)
		}
		db.MustExec(stmt)
	}
	db.MustExec("UPDATE STATISTICS")
	return db
}

// readersUnderWriter opens a transaction that UPDATEs T and holds the lock
// uncommitted, then runs nReaders goroutines issuing the read query for the
// window. It returns completed reads, failed reads, and the max latency of
// any successful read (the blocking witness: a reader that waited on the
// writer's lock pays the wait in its latency).
func readersUnderWriter(tb testing.TB, db *systemr.DB, nReaders int, window time.Duration) (reads, fails int64, maxLat time.Duration) {
	tb.Helper()
	x := db.Begin()
	defer x.Rollback()
	if _, err := x.Exec("UPDATE T SET B = B + 1"); err != nil {
		tb.Fatalf("writer update: %v", err)
	}

	var ok, bad, worst int64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				_, err := db.Query(mvccBenchReadQuery)
				lat := time.Since(start)
				if err != nil {
					atomic.AddInt64(&bad, 1)
					continue
				}
				atomic.AddInt64(&ok, 1)
				for {
					cur := atomic.LoadInt64(&worst)
					if int64(lat) <= cur || atomic.CompareAndSwapInt64(&worst, cur, int64(lat)) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	return ok, bad, time.Duration(atomic.LoadInt64(&worst))
}

// mvccBenchReport is the BENCH_mvcc.json document.
type mvccBenchReport struct {
	ReadQuery        string  `json:"read_query"`
	Rows             int     `json:"rows"`
	Readers          int     `json:"readers"`
	WindowMs         int     `json:"window_ms"`
	SnapshotReads    int64   `json:"snapshot_reads"`
	SnapshotFails    int64   `json:"snapshot_fails"`
	SnapshotMaxLatMs float64 `json:"snapshot_max_latency_ms"`
	BaselineReads    int64   `json:"baseline_2pl_reads"`
	BaselineFails    int64   `json:"baseline_2pl_fails"`
	Speedup          float64 `json:"snapshot_over_baseline_speedup"`
}

// TestBenchMVCCJSON runs the mixed workload in both modes and writes
// BENCH_mvcc.json. Acceptance: with a writer transaction holding an
// uncommitted UPDATE on T, snapshot readers complete >= 5x the reads of the
// 2PL baseline (whose readers queue behind the X lock until LockTimeout),
// with zero reader errors — and no reader latency long enough to have sat
// out a lock wait.
func TestBenchMVCCJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement; skipped in -short")
	}
	const (
		rows    = 2000
		readers = 4
		window  = 300 * time.Millisecond
		lockTO  = 10 * time.Millisecond
	)
	report := mvccBenchReport{
		ReadQuery: mvccBenchReadQuery,
		Rows:      rows,
		Readers:   readers,
		WindowMs:  int(window / time.Millisecond),
	}

	snapDB := mvccBenchDB(t, rows, systemr.Config{})
	warmRun(t, snapDB, mvccBenchReadQuery)
	var snapMax time.Duration
	report.SnapshotReads, report.SnapshotFails, snapMax = readersUnderWriter(t, snapDB, readers, window)
	report.SnapshotMaxLatMs = float64(snapMax) / float64(time.Millisecond)

	// The 2PL baseline needs a lock timeout, or its readers would block for
	// the entire window and the run would measure nothing but the deadline.
	baseDB := mvccBenchDB(t, rows, systemr.Config{
		DisableSnapshotReads: true,
		LockTimeout:          lockTO,
	})
	warmRun(t, baseDB, mvccBenchReadQuery)
	report.BaselineReads, report.BaselineFails, _ = readersUnderWriter(t, baseDB, readers, window)

	base := report.BaselineReads
	if base == 0 {
		base = 1 // the baseline completed nothing: score it one read
	}
	report.Speedup = float64(report.SnapshotReads) / float64(base)

	if report.SnapshotFails != 0 {
		t.Errorf("%d snapshot reads failed under the uncommitted writer, want 0", report.SnapshotFails)
	}
	if report.Speedup < 5 {
		t.Errorf("snapshot read throughput %.1fx the 2PL baseline, below the 5x acceptance bar (snapshot %d, baseline %d reads in %v)",
			report.Speedup, report.SnapshotReads, report.BaselineReads, window)
	}
	// Zero blocking: the writer never commits inside the window, so a reader
	// queued on its lock could not complete at all — completing reads at a
	// mean pace far below the window IS the no-blocking witness. (Max
	// latency is reported but not asserted: a cold first read pays compile
	// and scheduler noise.)
	if report.SnapshotReads > 0 {
		mean := window * time.Duration(readers) / time.Duration(report.SnapshotReads)
		if mean >= window/10 {
			t.Errorf("mean snapshot read latency %v — readers are waiting on something", mean)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_mvcc.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_mvcc.json:\n%s", data)
}

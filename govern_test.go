package systemr_test

// End-to-end tests of the statement execution governor: cancellation,
// timeouts, resource budgets, panic containment, and storage fault
// injection. The invariant throughout: an aborted statement — however it
// aborts — releases every lock and scan, and the very next statement runs
// normally.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"systemr"
	"systemr/internal/rss"
	"systemr/internal/storage"
	"systemr/internal/testutil"
	"systemr/internal/workload"
)

// heavyQuery is an unindexed self-join over 2000 employees: ~4M tuple
// examinations, far more work than any cancellation delay used below.
const heavyQuery = "SELECT COUNT(*) FROM EMP E1, EMP E2 WHERE E1.SAL < E2.SAL"

func newHeavyDB(t testing.TB, cfg workload.EmpConfig) *systemr.DB {
	t.Helper()
	testutil.AssertNoLeaks(t)
	if cfg.Emps == 0 {
		cfg = workload.EmpConfig{Emps: 2000, Depts: 50, Jobs: 10}
	}
	return workload.NewEmpDB(cfg)
}

// assertClean checks the post-statement invariant: no scans, no locks.
func assertClean(t testing.TB, db *systemr.DB) {
	t.Helper()
	if n := rss.OpenScans(); n != 0 {
		t.Fatalf("%d RSI scans still open", n)
	}
	if n := db.Locks().Outstanding(); n != 0 {
		t.Fatalf("%d locks still held", n)
	}
}

// assertUsable runs a follow-up statement after an abort.
func assertUsable(t testing.TB, db *systemr.DB, wantEmps int64) {
	t.Helper()
	res, err := db.Query("SELECT COUNT(*) FROM EMP")
	if err != nil {
		t.Fatalf("follow-up statement after abort: %v", err)
	}
	if got := res.Rows[0][0].(int64); got != wantEmps {
		t.Fatalf("follow-up count = %d, want %d", got, wantEmps)
	}
}

func TestQueryContextCancellationMidScan(t *testing.T) {
	db := newHeavyDB(t, workload.EmpConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := db.QueryContext(ctx, heavyQuery)
	if !errors.Is(err, systemr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: got %v, want ErrCanceled wrapping context.Canceled", err)
	}
	var se *systemr.StatementError
	if !errors.As(err, &se) {
		t.Fatalf("canceled query error is %T, want *StatementError", err)
	}
	// The statement did real work before dying, and the partial cost is
	// reported both on the error and via LastStats.
	if se.Stats.RSICalls == 0 {
		t.Fatalf("partial stats empty: %+v", se.Stats)
	}
	if db.LastStats().RSICalls != se.Stats.RSICalls {
		t.Fatalf("LastStats %+v != error stats %+v", db.LastStats(), se.Stats)
	}
	assertClean(t, db)
	assertUsable(t, db, 2000)
}

func TestStatementTimeout(t *testing.T) {
	db := newHeavyDB(t, workload.EmpConfig{})
	// No way to set StatementTimeout after Open, so build a second engine
	// with the knob. Small dataset keeps setup fast; the self-join is still
	// far slower than 5ms.
	db = workload.NewEmpDB(workload.EmpConfig{Emps: 2000, Depts: 50, Jobs: 10,
		Engine: systemr.Config{StatementTimeout: 5 * time.Millisecond}})
	_, err := db.Query(heavyQuery)
	if !errors.Is(err, systemr.ErrBudgetExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out query: got %v, want ErrBudgetExceeded wrapping DeadlineExceeded", err)
	}
	assertClean(t, db)
	assertUsable(t, db, 2000)
}

func TestMaxRowsScanned(t *testing.T) {
	testutil.AssertNoLeaks(t)
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 300, Depts: 10, Jobs: 4,
		Engine: systemr.Config{MaxRowsScanned: 100}})
	_, err := db.Query("SELECT NAME FROM EMP")
	if !errors.Is(err, systemr.ErrBudgetExceeded) {
		t.Fatalf("full scan over row budget: got %v, want ErrBudgetExceeded", err)
	}
	var se *systemr.StatementError
	if !errors.As(err, &se) || se.Stats.RSICalls == 0 {
		t.Fatalf("row budget abort: error %v lacks partial stats", err)
	}
	assertClean(t, db)
	// A statement under the budget still works.
	if _, err := db.Query("SELECT DNAME FROM DEPT"); err != nil {
		t.Fatalf("small query under row budget: %v", err)
	}
}

func TestMaxPageFetches(t *testing.T) {
	testutil.AssertNoLeaks(t)
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 300, Depts: 10, Jobs: 4,
		Engine: systemr.Config{MaxPageFetches: 2}})
	db.Pool().Flush() // cold buffer: every page access is a real fetch
	_, err := db.Query("SELECT NAME FROM EMP")
	if !errors.Is(err, systemr.ErrBudgetExceeded) {
		t.Fatalf("scan over fetch budget: got %v, want ErrBudgetExceeded", err)
	}
	var se *systemr.StatementError
	if !errors.As(err, &se) || se.Stats.PageFetches == 0 {
		t.Fatalf("fetch budget abort: error %v lacks partial stats", err)
	}
	assertClean(t, db)
}

func TestPreparedStatementGoverned(t *testing.T) {
	db := newHeavyDB(t, workload.EmpConfig{})
	stmt, err := db.Prepare(heavyQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := stmt.RunContext(ctx); !errors.Is(err, systemr.ErrBudgetExceeded) {
		t.Fatalf("prepared run past deadline: got %v, want ErrBudgetExceeded", err)
	}
	assertClean(t, db)
	// The compiled plan is not poisoned by the abort.
	if _, err := stmt.RunContext(context.Background()); err != nil {
		t.Fatalf("prepared re-run after abort: %v", err)
	}
	assertClean(t, db)
}

func TestCursorObservesCancellation(t *testing.T) {
	db := newHeavyDB(t, workload.EmpConfig{})
	stmt, err := db.Prepare("SELECT E1.NAME FROM EMP E1, EMP E2 WHERE E1.SAL < E2.SAL")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := stmt.OpenContext(ctx)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()
	sawErr := false
	for i := 0; i < 100000; i++ {
		_, ok, err := rows.Next()
		if err != nil {
			if !errors.Is(err, systemr.ErrCanceled) {
				t.Fatalf("cursor error: %v", err)
			}
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Fatal("cursor drained without observing cancellation")
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("cursor close after abort: %v", err)
	}
	assertClean(t, db)
	assertUsable(t, db, 2000)
}

// panicInjector simulates an internal storage bug: the Nth page fetch panics
// inside the buffer pool, deep under the executor.
type panicInjector struct{ n int64 }

func (p panicInjector) PageFetch(n int64, id storage.PageID) error {
	if n == p.n {
		panic(fmt.Sprintf("injected panic on page fetch %d (page %v)", n, id))
	}
	return nil
}

func TestPanicContainment(t *testing.T) {
	db := newEmpDeptJobDB(t)
	db.Pool().SetFaultInjector(panicInjector{n: 3})
	db.Pool().Flush()
	_, err := db.Query("SELECT E.NAME, D.DNAME FROM EMP E, DEPT D WHERE E.DNO = D.DNO ORDER BY E.NAME")
	var pe *systemr.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking fetch: got %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 || pe.Value == nil {
		t.Fatalf("PanicError missing diagnostics: %+v", pe)
	}
	assertClean(t, db)
	db.Pool().SetFaultInjector(nil)
	assertUsable(t, db, 300)
}

// TestFaultInjectionSweep fails every page fetch position of a three-table
// join with a sort, one run at a time: run k fails fetch k. Every run must
// surface ErrInjectedFault (never a panic, never a wrong result) and leave
// the engine clean; the sweep ends when a run completes without reaching a
// faulted fetch.
func TestFaultInjectionSweep(t *testing.T) {
	db := newEmpDeptJobDB(t)
	const query = "SELECT E.NAME, D.DNAME, J.TITLE FROM EMP E, DEPT D, JOB J " +
		"WHERE E.DNO = D.DNO AND E.JOB = J.JOB ORDER BY D.DNAME"

	// Baseline: the query works and we know its answer size.
	want, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}

	faulted := 0
	for n := int64(1); ; n++ {
		if n > 100000 {
			t.Fatal("sweep did not terminate: query never completed")
		}
		db.Pool().SetFaultInjector(storage.FailNth{N: n})
		db.Pool().Flush()
		res, err := db.QueryContext(context.Background(), query)
		if err == nil {
			// Fetch n was never reached: the whole query ran clean. Done.
			if len(res.Rows) != len(want.Rows) {
				t.Fatalf("clean run under injector returned %d rows, want %d",
					len(res.Rows), len(want.Rows))
			}
			break
		}
		if !errors.Is(err, systemr.ErrInjectedFault) {
			t.Fatalf("fault at fetch %d: got %v, want ErrInjectedFault", n, err)
		}
		faulted++
		assertClean(t, db)
	}
	if faulted == 0 {
		t.Fatal("sweep injected no faults — query made no page fetches?")
	}
	t.Logf("fault sweep: %d fetch positions failed and recovered", faulted)

	db.Pool().SetFaultInjector(nil)
	assertUsable(t, db, 300)
}

// TestExplainAnalyzeGoverned checks that EXPLAIN ANALYZE — which really
// executes the statement — runs under the same governor plumbing as a plain
// query: resource budgets abort it, and the abort leaves the database clean.
func TestExplainAnalyzeGoverned(t *testing.T) {
	db := newHeavyDB(t, workload.EmpConfig{
		Emps: 2000, Depts: 50, Jobs: 10,
		Engine: systemr.Config{MaxRowsScanned: 100},
	})
	_, err := db.ExplainAnalyze(heavyQuery)
	if !errors.Is(err, systemr.ErrBudgetExceeded) {
		t.Fatalf("EXPLAIN ANALYZE over budget: got %v, want ErrBudgetExceeded", err)
	}
	assertClean(t, db)
	// Plain EXPLAIN only plans, so it stays under the row budget.
	if _, err := db.Explain(heavyQuery); err != nil {
		t.Fatalf("plain EXPLAIN after abort: %v", err)
	}
	// A statement under the budget still works.
	if _, err := db.Query("SELECT DNAME FROM DEPT"); err != nil {
		t.Fatalf("small query under row budget: %v", err)
	}
}

// TestExplainCanceledContext checks that even plain EXPLAIN — no execution at
// all — observes the statement context: a pre-canceled context fails with
// ErrCanceled instead of planning.
func TestExplainCanceledContext(t *testing.T) {
	db := newHeavyDB(t, workload.EmpConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecContext(ctx, "EXPLAIN "+heavyQuery); !errors.Is(err, systemr.ErrCanceled) {
		t.Fatalf("EXPLAIN with canceled context: got %v, want ErrCanceled", err)
	}
	if _, err := db.ExplainAnalyzeContext(ctx, heavyQuery); !errors.Is(err, systemr.ErrCanceled) {
		t.Fatalf("EXPLAIN ANALYZE with canceled context: got %v, want ErrCanceled", err)
	}
	assertClean(t, db)
	assertUsable(t, db, 2000)
}

// An ORDER BY over the row budget aborts inside the sort (run generation
// and spill reads are governed loops, not just the operator boundary) and
// still leaves no scans or locks behind.
func TestMaxRowsScannedDuringSort(t *testing.T) {
	testutil.AssertNoLeaks(t)
	db := workload.NewEmpDB(workload.EmpConfig{Emps: 300, Depts: 10, Jobs: 4,
		Engine: systemr.Config{MaxRowsScanned: 100}})
	_, err := db.Query("SELECT NAME, SAL FROM EMP ORDER BY SAL")
	if !errors.Is(err, systemr.ErrBudgetExceeded) {
		t.Fatalf("sorted scan over row budget: got %v, want ErrBudgetExceeded", err)
	}
	assertClean(t, db)
	// The same query under a sufficient budget completes.
	relaxed := workload.NewEmpDB(workload.EmpConfig{Emps: 50, Depts: 10, Jobs: 4,
		Engine: systemr.Config{MaxRowsScanned: 10000}})
	if _, err := relaxed.Query("SELECT NAME, SAL FROM EMP ORDER BY SAL"); err != nil {
		t.Fatalf("sorted scan under budget: %v", err)
	}
	assertClean(t, relaxed)
}

// A canceled context aborts an ORDER BY whose input scan has already
// drained: the only remaining work is inside the sorter's merge and
// delivery loops, which must observe the governor on their own.
func TestCancellationDuringSortDelivery(t *testing.T) {
	testutil.AssertNoLeaks(t)
	db := newHeavyDB(t, workload.EmpConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, "SELECT NAME, SAL FROM EMP ORDER BY SAL")
	if !errors.Is(err, systemr.ErrCanceled) {
		t.Fatalf("sorted scan under canceled context: got %v, want ErrCanceled", err)
	}
	assertClean(t, db)
}
